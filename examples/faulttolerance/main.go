// Fault tolerance: demonstrates the paper's fault-containment claim
// (§5) and the shared-filesystem migration path (§9).
//
// A tenant's filesystem service crashes mid-run: only that tenant's
// unflushed data is lost, a bystander tenant is untouched, and the
// tenant recovers by remounting from the shared backend — then migrates
// to a different pool without copying any state.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	tb := danaus.NewTestbed(danaus.TestbedConfig{Cores: 6})
	for _, d := range []string{"/containers/victim", "/containers/bystander"} {
		if err := tb.Cluster.ProvisionDir(d); err != nil {
			log.Fatal(err)
		}
	}
	victimPool := tb.NewPool("victim-pool", danaus.CoreMask(0, 1), 8<<30)
	bystanderPool := tb.NewPool("bystander-pool", danaus.CoreMask(2, 3), 8<<30)
	sparePool := tb.NewPool("spare-pool", danaus.CoreMask(4, 5), 8<<30)

	victim, err := victimPool.NewContainer("victim", danaus.MountSpec{
		Config: danaus.D, UpperDir: "/containers/victim",
	})
	if err != nil {
		log.Fatal(err)
	}
	bystander, err := bystanderPool.NewContainer("bystander", danaus.MountSpec{
		Config: danaus.D, UpperDir: "/containers/bystander",
	})
	if err != nil {
		log.Fatal(err)
	}

	tb.Eng.Go("scenario", func(p *danaus.Proc) {
		defer tb.Stop()
		vctx := danaus.Ctx{P: p, T: victim.NewThread()}
		bctx := danaus.Ctx{P: p, T: bystander.NewThread()}

		// Durable state (fsynced) and volatile state (cached only).
		if err := victim.Mount.Default.Mkdir(vctx, "/db"); err != nil {
			log.Fatal(err)
		}
		h, err := victim.Mount.Default.Open(vctx, "/db/wal", danaus.Create|danaus.WriteOnly)
		if err != nil {
			log.Fatal(err)
		}
		h.Write(vctx, 0, 2<<20)
		h.Fsync(vctx)
		h.Close(vctx)
		hv, err := victim.Mount.Default.Open(vctx, "/db/cache", danaus.Create|danaus.WriteOnly)
		if err != nil {
			log.Fatal(err)
		}
		hv.Write(vctx, 0, 1<<20) // never fsynced

		fmt.Println("crashing the victim's filesystem service...")
		victim.Mount.Client.Crash()

		if _, err := victim.Mount.Default.Stat(vctx, "/db/wal"); err != nil {
			fmt.Printf("  victim service dead: %v\n", err)
		}
		if hb, err := bystander.Mount.Default.Open(bctx, "/ok", danaus.Create|danaus.WriteOnly); err == nil {
			hb.Write(bctx, 0, 4096)
			hb.Close(bctx)
			fmt.Println("  bystander tenant unaffected: wrote 4096 bytes")
		}

		// Recover by remounting from the shared backend.
		restarted, err := victimPool.NewContainer("victim-restarted", danaus.MountSpec{
			Config: danaus.D, UpperDir: "/containers/victim",
		})
		if err != nil {
			log.Fatal(err)
		}
		rctx := danaus.Ctx{P: p, T: restarted.NewThread()}
		if info, err := restarted.Mount.Default.Stat(rctx, "/db/wal"); err == nil {
			fmt.Printf("  restarted service sees durable state: /db/wal = %d bytes\n", info.Size)
		}
		if info, err := restarted.Mount.Default.Stat(rctx, "/db/cache"); err == nil && info.Size == 0 {
			// The create reached the MDS synchronously, but the 1 MB of
			// data only ever lived in the crashed client's cache.
			fmt.Println("  unflushed data correctly lost with the crash (file empty)")
		}

		// Migrate the recovered container to a different pool: quiesce
		// (flush) + remount — no state copied.
		moved, err := restarted.MigrateTo(rctx, sparePool)
		if err != nil {
			log.Fatal(err)
		}
		mctx := danaus.Ctx{P: p, T: moved.NewThread()}
		if info, err := moved.Mount.Default.Stat(mctx, "/db/wal"); err == nil {
			fmt.Printf("migrated to %s: /db/wal = %d bytes (virtual time %v)\n",
				moved.Pool.Name, info.Size, p.Now())
		}
	})
	tb.Eng.Run()
}

// Quickstart: build the simulated testbed, reserve a container pool,
// mount a Danaus filesystem for a container, and run a few file
// operations through both the direct interface and the POSIX-like
// library file-descriptor table.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The testbed of the paper's Fig 5: a multicore client host and a
	// Ceph-like cluster of 6 OSDs + 1 MDS.
	tb := danaus.NewTestbed(danaus.TestbedConfig{Cores: 4})

	// Provision the container's writable directory on the shared
	// distributed filesystem.
	if err := tb.Cluster.ProvisionDir("/containers/c0"); err != nil {
		log.Fatal(err)
	}

	// A container pool: 2 reserved cores and 8 GB for this tenant.
	pool := tb.NewPool("tenant-a", danaus.CoreMask(0, 1), 8<<30)

	// A container whose root filesystem is served by a private Danaus
	// filesystem service (union + Ceph client libservices over
	// shared-memory IPC).
	c, err := pool.NewContainer("c0", danaus.MountSpec{
		Config:   danaus.D,
		UpperDir: "/containers/c0",
	})
	if err != nil {
		log.Fatal(err)
	}

	tb.Eng.Go("app", func(p *danaus.Proc) {
		ctx := danaus.Ctx{P: p, T: c.NewThread()}

		// Direct use of the filesystem interface.
		h, err := c.Mount.Default.Open(ctx, "/hello.txt", danaus.Create|danaus.WriteOnly)
		if err != nil {
			log.Fatal(err)
		}
		h.Write(ctx, 0, 4096)
		h.Fsync(ctx)
		h.Close(ctx)

		info, err := c.Mount.Default.Stat(ctx, "/hello.txt")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hello.txt: %d bytes (virtual time %v)\n", info.Size, p.Now())

		// The preloaded filesystem library: private file descriptors
		// routed through the mount table (the paper's §4.1 data
		// structures).
		lib := danaus.NewLibrary(nil)
		lib.AttachMount("/mnt/data", c.Mount.Default)
		fd, err := lib.OpenFD(ctx, "/mnt/data/log", danaus.Create|danaus.Append)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			lib.WriteFD(ctx, fd, 1024)
		}
		lib.SeekFD(fd, 0)
		n, _ := lib.ReadFD(ctx, fd, 3072)
		lib.CloseFD(ctx, fd)
		fmt.Printf("library read back %d bytes through fd %d\n", n, fd)

		// IPC statistics of the Danaus transport.
		fmt.Printf("danaus IPC: %d calls, %d service-thread wakeups\n",
			c.Mount.IPC.Calls(), c.Mount.IPC.Wakeups())
		tb.Stop()
	})
	tb.Eng.Run()
}

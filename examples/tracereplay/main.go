// Trace record/replay: run a production-shaped workload (Zipf user
// popularity, diurnal arrivals, SLO classes) over Danaus once, capture
// every VFS operation with its issue time into a trace, then replay the
// identical op stream against other client configurations. Because the
// replay reissues the recorded arrivals byte for byte, every latency
// delta between rows is attributable to the client stack rather than to
// workload noise. See TRACES.md for the trace format and the
// danausbench command-line workflow.
package main

import (
	"fmt"

	"repro"
)

func main() {
	fmt.Println("Op-trace record/replay (quick scale)")
	fmt.Println()

	res := danaus.RunTraceSweep(danaus.QuickScale)
	for _, row := range res.Rows {
		fmt.Println(row)
	}

	if err := res.Baseline.WriteFile("baseline.trace"); err != nil {
		fmt.Println("write baseline.trace:", err)
		return
	}
	fmt.Println()
	fmt.Printf("recorded %d ops -> baseline.trace (schedule hash %s)\n",
		len(res.Baseline.Ops), res.Baseline.ScheduleHash()[:12])

	fmt.Println()
	fmt.Println("Reading the rows:")
	fmt.Println("  - 'rec' is the recording run: per-tenant tail latency plus the")
	fmt.Println("    per-SLO-class violation ledger of the production workload.")
	fmt.Println("  - 'D' replays the trace under the recorded configuration; its")
	fmt.Println("    schedule must match the recording byte for byte (sched=match).")
	fmt.Println("  - 'K' and 'D+adm' replay the same arrivals under the kernel")
	fmt.Println("    client and under admission control; seq=match confirms no op")
	fmt.Println("    was reordered or rewritten, and the p99/p999 ratios and the")
	fmt.Println("    blame-bucket shift attribute any latency change to the stack.")
	fmt.Println()
	fmt.Println("Replay the saved trace from the command line with:")
	fmt.Println("  go run ./cmd/danausbench -replay baseline.trace -config K -record k.trace")
	fmt.Println("  go run ./cmd/danausbench -tracediff baseline.trace,k.trace")
}

// Multitenant isolation: the paper's headline scenario (§6.2). A
// Fileserver tenant runs next to a noisy RandomIO neighbour, first over
// the kernel Ceph client (K) and then over Danaus (D). The kernel
// client leans on the neighbour's reserved cores when they are idle and
// collapses when they are not; Danaus serves I/O with the tenant's own
// resources and barely notices the neighbour.
package main

import (
	"fmt"

	"repro"
)

func main() {
	fmt.Println("Fileserver tenant vs RandomIO neighbour (quick scale)")
	fmt.Println()
	fmt.Printf("%-16s %12s %18s %14s\n", "case", "FLS MB/s", "neighbor cores", "lock wait/req")
	for _, c := range []danaus.InterferenceCase{
		{Config: danaus.K, FLSCount: 1},
		{Config: danaus.K, FLSCount: 1, Neighbor: "RND"},
		{Config: danaus.D, FLSCount: 1},
		{Config: danaus.D, FLSCount: 1, Neighbor: "RND"},
	} {
		row := danaus.RunInterference(c, danaus.QuickScale)
		fmt.Printf("%-16s %12.1f %17.1f%% %14v\n",
			row.Label, row.FLSThroughputMBps, row.NeighborCoreUtilPct, row.LockWaitPerReq)
	}
	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println("  - With the neighbour idle, the kernel client (K) runs its")
	fmt.Println("    writeback on the neighbour's reserved cores (high neighbour")
	fmt.Println("    utilization even though the neighbour runs nothing).")
	fmt.Println("  - When the neighbour wakes up, K loses those cores and its")
	fmt.Println("    throughput drops, while its kernel lock waits grow.")
	fmt.Println("  - Danaus (D) keeps the neighbour's cores untouched and its")
	fmt.Println("    throughput steady: the tenant's I/O is served end-to-end")
	fmt.Println("    with the tenant's own reserved resources.")
}

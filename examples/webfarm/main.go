// Webfarm startup scaleup: starts a growing fleet of cloned webserver
// containers from a shared image (the paper's Fig 8 scenario) under
// three configurations, printing the real startup time and the context
// switches each transport generated.
//
// The startup traffic is dominated by kernel-initiated I/O (exec of the
// binary, mmap of the dynamic libraries), so Danaus takes its legacy
// FUSE path and the mature kernel union (K/K) wins — while the doubly
// stacked FUSE daemons of F/F pay an order of magnitude more context
// switches than Danaus.
package main

import (
	"fmt"

	"repro"
)

func main() {
	fmt.Println("Cloned webserver container startup (quick scale)")
	fmt.Println()
	fmt.Printf("%-6s %10s %16s %16s\n", "config", "clones", "real time", "context switches")
	for _, cfg := range []danaus.Configuration{danaus.KK, danaus.D, danaus.FF} {
		for _, n := range []int{1, 8, 32} {
			row := danaus.RunStartupScaleup(cfg, n, danaus.QuickScale)
			fmt.Printf("%-6s %10d %16v %16d\n", row.Config, row.Containers, row.RealTime, row.ContextSwitches)
		}
		fmt.Println()
	}
	fmt.Println("The kernel union (K/K) serves the exec/mmap reads natively and")
	fmt.Println("starts containers fastest; Danaus (D) pays the FUSE legacy path")
	fmt.Println("for kernel-initiated I/O but still crosses far fewer context")
	fmt.Println("switches than unionfs-fuse stacked over ceph-fuse (F/F).")
}

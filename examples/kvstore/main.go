// KV store over Danaus: runs the reproduction's LSM key-value store
// (the RocksDB stand-in of §6.3.1) on a container whose root filesystem
// is mounted from network storage through a private Danaus client, then
// prints put/get latencies and store internals.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	tb := danaus.NewTestbed(danaus.TestbedConfig{Cores: 4})
	if err := tb.Cluster.ProvisionDir("/containers/kv0"); err != nil {
		log.Fatal(err)
	}
	pool := tb.NewPool("kv-tenant", danaus.CoreMask(0, 1), 8<<30)
	c, err := pool.NewContainer("kv0", danaus.MountSpec{
		Config:   danaus.D,
		UpperDir: "/containers/kv0",
	})
	if err != nil {
		log.Fatal(err)
	}

	tb.Eng.Go("bench", func(p *danaus.Proc) {
		ctx := danaus.Ctx{P: p, T: c.NewThread()}
		db, err := danaus.OpenKVStore(ctx, danaus.KVStoreConfig{
			FS:            c.Mount.Default,
			Dir:           "/rocksdb",
			MemtableBytes: 8 << 20,
			Eng:           tb.Eng,
			NewThread:     c.NewThread,
		})
		if err != nil {
			log.Fatal(err)
		}

		const (
			valueSize = 128 << 10 // the paper's 128 KB values
			total     = 64 << 20
		)
		rng := rand.New(rand.NewSource(42))
		putLat := danaus.NewHistogram()
		keys := make([]uint64, 0, total/valueSize)
		for written := int64(0); written < total; written += valueSize {
			k := rng.Uint64()
			start := p.Now()
			if err := db.Put(ctx, k, valueSize); err != nil {
				log.Fatal(err)
			}
			putLat.Record(p.Now() - start)
			keys = append(keys, k)
		}

		getLat := danaus.NewHistogram()
		for i := 0; i < 256; i++ {
			k := keys[rng.Intn(len(keys))]
			start := p.Now()
			if _, err := db.Get(ctx, k); err != nil {
				log.Fatal(err)
			}
			getLat.Record(p.Now() - start)
		}

		l0, l1 := db.Levels()
		fmt.Printf("puts: %d  avg %v  p99 %v (stall time %v)\n",
			putLat.Count(), putLat.Mean(), putLat.Quantile(0.99), db.StallTime)
		fmt.Printf("gets: %d  avg %v  p99 %v\n", getLat.Count(), getLat.Mean(), getLat.Quantile(0.99))
		fmt.Printf("store: %d flushes, %d compactions, levels L0=%d L1=%d\n",
			db.Flushes, db.Compactions, l0, l1)
		fmt.Printf("client cache: %d MB resident, %d MB dirty\n",
			c.Mount.Client.Meter().Current()>>20, c.Mount.Client.DirtyBytes()>>20)
		db.Close(ctx)
		tb.Stop()
	})
	tb.Eng.Run()
}

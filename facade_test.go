package danaus_test

import (
	"testing"

	danaus "repro"
)

// TestFacadeSurface exercises the re-exported public API end to end:
// a workload, an experiment runner and the KV store, reached only
// through the facade (as an external consumer would).
func TestFacadeSurface(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Experiment runner through the facade.
	row := danaus.RunSysbench(danaus.SysbenchCase{Config: danaus.D, WithSSB: true}, danaus.QuickScale)
	if row.SSBLatencyP99 <= 0 {
		t.Fatalf("no SSB latency through facade: %+v", row)
	}

	// Workload + KV store through the facade.
	tb := danaus.NewTestbed(danaus.TestbedConfig{Cores: 4})
	tb.Cluster.ProvisionDir("/containers/c0")
	pool := tb.NewPool("t", danaus.CoreMask(0, 1), 8<<30)
	c, err := pool.NewContainer("c0", danaus.MountSpec{Config: danaus.D, UpperDir: "/containers/c0"})
	if err != nil {
		t.Fatal(err)
	}
	tb.Eng.Go("driver", func(p *danaus.Proc) {
		defer tb.Stop()
		ctx := danaus.Ctx{P: p, T: c.NewThread()}
		db, err := danaus.OpenKVStore(ctx, danaus.KVStoreConfig{
			FS: c.Mount.Default, Dir: "/db", MemtableBytes: 4 << 20,
			Eng: tb.Eng, NewThread: c.NewThread,
		})
		if err != nil {
			t.Errorf("open kv: %v", err)
			return
		}
		db.Put(ctx, 1, 128<<10)
		if size, err := db.Get(ctx, 1); err != nil || size != 128<<10 {
			t.Errorf("kv get: %d %v", size, err)
		}
		db.Close(ctx)

		// A facade-constructed workload runs end to end.
		w := &danaus.FileAppend{FS: c.Mount.Default, Path: "/blob", NewThread: c.NewThread, Stats: danaus.NewWorkloadStats()}
		hb, _ := c.Mount.Default.Open(ctx, "/blob", danaus.Create|danaus.WriteOnly)
		hb.Write(ctx, 0, 1<<20)
		hb.Close(ctx)
		g := danaus.NewWorkloadGroup(tb.Eng)
		w.Run(g, danaus.WorkloadClock{Eng: tb.Eng})
		g.Wait(p)
		if w.Stats.Ops.Ops != 1 {
			t.Errorf("facade workload recorded %d ops", w.Stats.Ops.Ops)
		}
	})
	tb.Eng.Run()
}

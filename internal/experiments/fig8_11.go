package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// StartupRow is one point of Fig 8: real time to start N cloned
// webserver containers in a single pool, and the context switches the
// startup generated (Fig 8b).
type StartupRow struct {
	Config          core.Configuration
	Containers      int
	RealTime        time.Duration
	ContextSwitches uint64
}

// String renders the row for the harness.
func (r StartupRow) String() string {
	return fmt.Sprintf("%-5s n=%-4d real=%-14v ctxsw=%d", r.Config, r.Containers, r.RealTime, r.ContextSwitches)
}

// Fig8Counts returns the paper's container sweep (1-256).
func Fig8Counts() []int { return []int{1, 4, 16, 64, 256} }

// Fig8Configs lists the Fig 8 comparison set.
func Fig8Configs() []core.Configuration {
	return []core.Configuration{core.ConfigD, core.ConfigKK, core.ConfigFK, core.ConfigFF}
}

// RunStartupScaleup executes one Fig 8 point: start `clones` cloned
// Lighttpd containers over a shared client in one pool and measure the
// time until every webserver is ready.
func RunStartupScaleup(config core.Configuration, clones int, scale Scale) StartupRow {
	cores := 16
	if cores > 2*clones {
		cores = 2 * clones
	}
	if cores < 4 {
		cores = 4
	}
	r := newScaledRig(cores, scale)
	row := StartupRow{Config: config, Containers: clones}

	// Shared webserver image on the cluster.
	if err := workloads.ProvisionImage(r.tb.Params, "/images/lighttpd", r.tb.Cluster.Provision); err != nil {
		panic(err)
	}
	pool := r.tb.NewPool("web", r.tb.CPU.AllMask(), scale.PoolMem()*8)

	containers := make([]*core.Container, clones)
	var first *core.Container
	for i := range containers {
		upper := fmt.Sprintf("/containers/web%03d", i)
		if err := r.tb.Cluster.ProvisionDir(upper); err != nil {
			panic(err)
		}
		spec := core.MountSpec{Config: config, UpperDir: upper, LowerDir: "/images/lighttpd"}
		if first != nil {
			spec.SharedClient = first.Mount.Client
			spec.SharedKernelMount = first.Mount.KernelMount
		}
		cont, err := pool.NewContainer(fmt.Sprintf("web%03d", i), spec)
		if err != nil {
			panic(err)
		}
		if first == nil {
			first = cont
		}
		containers[i] = cont
	}

	r.runMaster(func(p *sim.Proc) {
		start := r.tb.Eng.Now()
		switchStart := pool.Acct.ContextSwitches()
		clock := workloads.Clock{Eng: r.tb.Eng, From: start}
		g := workloads.NewGroup(r.tb.Eng)
		for _, cont := range containers {
			w := &workloads.Startup{
				Default:   cont.Mount.Default,
				Legacy:    cont.Mount.Legacy,
				Params:    r.tb.Params,
				NewThread: cont.NewThread,
				Stats:     workloads.NewStats(),
			}
			w.Run(g, clock)
		}
		g.Wait(p)
		row.RealTime = r.tb.Eng.Now() - start
		row.ContextSwitches = pool.Acct.ContextSwitches() - switchStart
	})
	return row
}

// FileIORow is one point of Fig 11: timespan and maximum memory of the
// Fileappend or Fileread scaleup.
type FileIORow struct {
	Config     core.Configuration
	Containers int
	Timespan   time.Duration
	MaxMemory  int64
}

// String renders the row for the harness.
func (r FileIORow) String() string {
	return fmt.Sprintf("%-5s n=%-3d timespan=%-14v maxmem=%dMB", r.Config, r.Containers, r.Timespan, r.MaxMemory>>20)
}

// Fig11Counts returns the paper's container sweep (1-32).
func Fig11Counts() []int { return []int{1, 2, 4, 8, 16, 32} }

// Fig11Configs lists the Fig 11 comparison set.
func Fig11Configs() []core.Configuration {
	return []core.Configuration{core.ConfigD, core.ConfigKK, core.ConfigFF, core.ConfigFPFP}
}

// RunFileIOScaleup executes one Fig 11 point: `clones` cloned
// containers over a shared client, each appending to (append=true) or
// reading (append=false) a large file from the shared lower branch.
func RunFileIOScaleup(config core.Configuration, clones int, append bool, scale Scale) FileIORow {
	cores := 2 * clones
	if cores < 4 {
		cores = 4
	}
	if cores > 64 {
		cores = 64
	}
	r := newScaledRig(cores, scale)
	row := FileIORow{Config: config, Containers: clones}

	// The shared lower branch holds the 2 GB target file (scaled).
	fileSize := int64(float64(2<<30) * scale.Factor)
	if fileSize < 16<<20 {
		fileSize = 16 << 20
	}
	if err := r.tb.Cluster.ProvisionDir("/images/data"); err != nil {
		panic(err)
	}
	r.tb.Cluster.Provision("/images/data/blob", fileSize)

	// A single pool holding every clone (the paper: 64 cores, 200 GB).
	pool := r.tb.NewPool("big", r.tb.CPU.AllMask(), scale.PoolMem()*int64(clones)*2)

	containers := make([]*core.Container, clones)
	var first *core.Container
	for i := range containers {
		upper := fmt.Sprintf("/containers/fio%03d", i)
		if err := r.tb.Cluster.ProvisionDir(upper); err != nil {
			panic(err)
		}
		spec := core.MountSpec{Config: config, UpperDir: upper, LowerDir: "/images/data"}
		if first != nil {
			spec.SharedClient = first.Mount.Client
			spec.SharedKernelMount = first.Mount.KernelMount
		}
		cont, err := pool.NewContainer(fmt.Sprintf("fio%03d", i), spec)
		if err != nil {
			panic(err)
		}
		if first == nil {
			first = cont
		}
		containers[i] = cont
	}

	r.runMaster(func(p *sim.Proc) {
		start := r.tb.Eng.Now()
		clock := workloads.Clock{Eng: r.tb.Eng, From: start}
		g := workloads.NewGroup(r.tb.Eng)
		for _, cont := range containers {
			if append {
				w := &workloads.FileAppend{
					FS:        cont.Mount.Default,
					Path:      "/blob",
					NewThread: cont.NewThread,
					Stats:     workloads.NewStats(),
				}
				w.Run(g, clock)
			} else {
				w := &workloads.FileRead{
					FS:        cont.Mount.Default,
					Path:      "/blob",
					NewThread: cont.NewThread,
					Stats:     workloads.NewStats(),
				}
				w.Run(g, clock)
			}
		}
		g.Wait(p)
		row.Timespan = r.tb.Eng.Now() - start
		row.MaxMemory = pool.Memory.MaxSum()
	})
	return row
}

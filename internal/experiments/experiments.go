// Package experiments reproduces every figure of the paper's
// evaluation (§2.1 motivation and §6 evaluation): each Fig* runner
// builds the Fig 5 testbed, deploys container pools with the requested
// Table 1 configurations, drives the Table 2 workloads, and returns
// typed result rows mirroring the published plots.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/kern"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/vfsapi"
	"repro/internal/workloads"
)

// Scale selects experiment sizing. The discrete-event model preserves
// contention shape under scaling, so the default test scale runs in
// seconds of wall time while PaperScale matches the published
// parameters.
type Scale struct {
	// Factor scales dataset sizes (files, bytes).
	Factor float64
	// Duration is the measured window of timed workloads.
	Duration time.Duration
	// Warmup precedes measurement.
	Warmup time.Duration
}

// Predefined scales.
var (
	// QuickScale is for unit tests and -short benchmarks.
	QuickScale = Scale{Factor: 0.02, Duration: 2 * time.Second, Warmup: 500 * time.Millisecond}
	// DefaultScale balances fidelity and wall time for the harness.
	DefaultScale = Scale{Factor: 0.1, Duration: 8 * time.Second, Warmup: time.Second}
	// PaperScale matches the paper's parameters (120 s runs).
	PaperScale = Scale{Factor: 1.0, Duration: 120 * time.Second, Warmup: 5 * time.Second}
)

// PoolMem returns the pool memory reservation at the given scale. The
// paper reserves 8 GB per pool; scaling it with the datasets keeps the
// dirty-threshold and cache-pressure dynamics inside short windows.
func (s Scale) PoolMem() int64 {
	m := int64(float64(8<<30) * s.Factor)
	if m < 128<<20 {
		m = 128 << 20
	}
	return m
}

// Params derives a cost model whose writeback time constants are
// scaled with the experiment: preserving the ratio of file lifetime to
// the flusher intervals keeps the dirty-data dynamics of the paper's
// 120 s runs inside short windows.
func (s Scale) Params() *model.Params {
	p := model.Default()
	if s.Factor < 1 {
		// File lifetime in the Fileserver fileset scales with Factor,
		// so the writeback constants scale with it to preserve the
		// fraction of dirty data that lives long enough to be flushed.
		iv := time.Duration(float64(p.WritebackInterval) * s.Factor)
		if iv < 5*time.Millisecond {
			iv = 5 * time.Millisecond
		}
		if iv < p.WritebackInterval {
			p.WritebackInterval = iv
			p.DirtyExpire = 5 * iv
		}
	}
	return p
}

// Observer, when non-nil, is invoked on every freshly built testbed
// before any pool exists — the hook through which danausbench attaches
// an observability recorder (core.Testbed.AttachObserver) to the runs
// of an experiment. Nil keeps experiments observation-free.
var Observer func(tb *core.Testbed)

// rig bundles a testbed under experiment control.
type rig struct {
	tb *core.Testbed
}

func newRig(cores int) *rig {
	return newScaledRig(cores, Scale{Factor: 1})
}

func newScaledRig(cores int, scale Scale) *rig {
	tb := core.NewTestbed(core.TestbedConfig{Cores: cores, Params: scale.Params()})
	if Observer != nil {
		Observer(tb)
	}
	return &rig{tb: tb}
}

// runMaster executes fn as the orchestration process and drains the
// engine afterwards.
func (r *rig) runMaster(fn func(p *sim.Proc)) {
	r.tb.Eng.Go("master", func(p *sim.Proc) {
		fn(p)
		r.tb.Stop()
	})
	r.tb.Eng.Run()
}

// flsContainer provisions directories and creates one Fileserver
// container of the given configuration in its own 2-core pool at index
// i (cores 2i, 2i+1).
func (r *rig) flsContainer(i int, config core.Configuration, scale Scale) (*core.Pool, *core.Container, error) {
	name := fmt.Sprintf("fls%d", i)
	upper := "/containers/" + name
	if err := r.tb.Cluster.ProvisionDir(upper); err != nil {
		return nil, nil, err
	}
	pool := r.tb.NewPool(name, cpu.MaskRange(2*i, 2*i+2), scale.PoolMem())
	c, err := pool.NewContainer(name, core.MountSpec{Config: config, UpperDir: upper})
	if err != nil {
		return nil, nil, err
	}
	return pool, c, nil
}

// newFileserver builds a Fileserver workload bound to a container.
func newFileserver(c *core.Container, scale Scale, seed int64) *workloads.Fileserver {
	w := &workloads.Fileserver{
		FS:        c.Mount.Default,
		Dir:       "/flsdata",
		NewThread: c.NewThread,
		Seed:      seed,
	}
	w.Defaults(scale.Factor)
	return w
}

// prepare runs the given preparation functions concurrently (each on
// its own process) and waits for all of them.
func prepare(p *sim.Proc, eng *sim.Engine, fns ...func(pp *sim.Proc)) {
	g := workloads.NewGroup(eng)
	for i, fn := range fns {
		fn := fn
		g.Go(fmt.Sprintf("prep%d", i), fn)
	}
	g.Wait(p)
}

// newSyscallLocal wraps the host's local ext4 mount with syscall entry
// costs (the path RND and WBS take to their local datasets).
func newSyscallLocal(tb *core.Testbed) vfsapi.FileSystem {
	return kern.NewSyscalls(tb.Kernel, tb.LocalFS)
}

// clockFor starts a measurement window at now+warmup.
func clockFor(eng *sim.Engine, scale Scale) workloads.Clock {
	now := eng.Now()
	return workloads.Clock{
		Eng:  eng,
		From: now + scale.Warmup,
		Stop: now + scale.Warmup + scale.Duration,
	}
}

// utilWindow samples the utilization of mask between the clock's
// measurement bounds, invoking done with the percentage-of-one-core sum
// (e.g. 2 fully busy cores = 200).
func utilWindow(tb *core.Testbed, clock workloads.Clock, mask cpu.Mask, out *float64) {
	var snap []time.Duration
	tb.Eng.After(clock.From-tb.Eng.Now(), func() {
		snap = tb.CPU.UtilSnapshot()
	})
	tb.Eng.After(clock.Stop-tb.Eng.Now(), func() {
		*out = tb.CPU.Utilization(mask, snap, clock.Stop-clock.From) * 100
	})
}

// lockWindow resets kernel lock statistics at measurement start and
// captures per-request wait/hold at the end.
func lockWindow(tb *core.Testbed, clock workloads.Clock, wait, hold *time.Duration) {
	tb.Eng.After(clock.From-tb.Eng.Now(), func() {
		tb.Kernel.ResetLockStats()
	})
	tb.Eng.After(clock.Stop-tb.Eng.Now(), func() {
		s := tb.Kernel.LockStats()
		*wait = s.AvgWait()
		*hold = s.AvgHold()
	})
}

package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestExperimentsAreDeterministic verifies the headline property of the
// DES substrate: identical runs produce bit-identical results.
func TestExperimentsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	c := InterferenceCase{Config: core.ConfigD, FLSCount: 1, Neighbor: "RND"}
	first := RunInterference(c, QuickScale)
	for i := 0; i < 2; i++ {
		again := RunInterference(c, QuickScale)
		if again != first {
			t.Fatalf("run %d diverged:\n  %+v\nvs\n  %+v", i+2, again, first)
		}
	}

	kv := RunKVScaleup(core.ConfigD, 2, PhasePut, QuickScale)
	if again := RunKVScaleup(core.ConfigD, 2, PhasePut, QuickScale); again != kv {
		t.Fatalf("KV scaleup diverged:\n  %+v\nvs\n  %+v", again, kv)
	}

	st := RunStartupScaleup(core.ConfigFF, 4, QuickScale)
	if again := RunStartupScaleup(core.ConfigFF, 4, QuickScale); again != st {
		t.Fatalf("startup diverged:\n  %+v\nvs\n  %+v", again, st)
	}
}

package experiments

import (
	"testing"

	"repro/internal/core"
)

func TestInterferenceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	alone := RunInterference(InterferenceCase{Config: core.ConfigK, FLSCount: 1}, QuickScale)
	t.Logf("%s: %.1f MB/s, nbr util %.1f%%, lock wait %v hold %v",
		alone.Label, alone.FLSThroughputMBps, alone.NeighborCoreUtilPct, alone.LockWaitPerReq, alone.LockHoldPerReq)
	if alone.FLSThroughputMBps <= 0 {
		t.Fatal("no FLS throughput")
	}
	withRND := RunInterference(InterferenceCase{Config: core.ConfigK, FLSCount: 1, Neighbor: "RND"}, QuickScale)
	t.Logf("%s: %.1f MB/s, nbr util %.1f%%", withRND.Label, withRND.FLSThroughputMBps, withRND.NeighborCoreUtilPct)
	if withRND.FLSThroughputMBps >= alone.FLSThroughputMBps {
		t.Fatalf("RND colocation did not hurt the kernel client: %.1f vs %.1f",
			withRND.FLSThroughputMBps, alone.FLSThroughputMBps)
	}
}

func TestScaleParamsScalesWritebackConstants(t *testing.T) {
	quick := QuickScale.Params()
	paper := PaperScale.Params()
	if quick.WritebackInterval >= paper.WritebackInterval {
		t.Fatalf("quick interval %v not scaled below paper %v",
			quick.WritebackInterval, paper.WritebackInterval)
	}
	if quick.DirtyExpire != 5*quick.WritebackInterval {
		t.Fatalf("expire %v != 5x interval %v", quick.DirtyExpire, quick.WritebackInterval)
	}
	// The floor holds for tiny factors.
	tiny := Scale{Factor: 0.0001}.Params()
	if tiny.WritebackInterval < 5e6 { // 5ms
		t.Fatalf("interval below floor: %v", tiny.WritebackInterval)
	}
	if PoolDefault := PaperScale.PoolMem(); PoolDefault != 8<<30 {
		t.Fatalf("paper pool mem = %d", PoolDefault)
	}
	if QuickScale.PoolMem() < 128<<20 {
		t.Fatalf("quick pool mem below floor: %d", QuickScale.PoolMem())
	}
}

func TestInterferenceCaseLabels(t *testing.T) {
	if got := (InterferenceCase{Config: 1, FLSCount: 7, Neighbor: "RND"}).Label(); got != "7FLS/K+1RND" {
		t.Fatalf("label = %q", got)
	}
	if got := (SysbenchCase{WithSSB: true}).Label(); got != "1FLS/D+1SSB" {
		t.Fatalf("ssb label = %q", got)
	}
}

package experiments

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/vfsapi"
	"repro/internal/workloads"
)

// TestGoldenTraceDeterminism runs a small mixed workload — a Danaus
// Fileserver container next to a kernel-filesystem RandomIO neighbour —
// twice and requires the full engine event trace, the kernel lock
// statistics and the per-core utilization to be identical. This guards
// the hot-path optimizations (quantum coalescing, inline event
// execution, direct proc handoff) at the strongest granularity: not
// just equal results, but an identical event-for-event schedule.
func TestGoldenTraceDeterminism(t *testing.T) {
	scale := Scale{Factor: 0.02}
	type outcome struct {
		trace []sim.TraceEvent
		locks sim.LockStats
		util  []time.Duration
		end   time.Duration
	}
	run := func() outcome {
		r := newScaledRig(4, scale)
		var o outcome
		r.tb.Eng.SetTracer(func(ev sim.TraceEvent) { o.trace = append(o.trace, ev) })
		_, cont, err := r.flsContainer(0, core.ConfigD, scale)
		if err != nil {
			t.Fatal(err)
		}
		fls := newFileserver(cont, scale, 7)
		nbrPool := r.tb.NewPool("nbr", cpu.MaskRange(2, 4), scale.PoolMem())
		rnd := &workloads.RandomIO{
			FS:         kernelLocalFS(r.tb),
			Path:       "/rndfile",
			NewThread:  func() *cpu.Thread { return r.tb.CPU.NewThread(nbrPool.Acct, nbrPool.Mask) },
			Seed:       3,
			LockStress: r.tb.Kernel.SmallOpLockStress,
		}
		rnd.Defaults(scale.Factor)
		r.runMaster(func(p *sim.Proc) {
			prepare(p, r.tb.Eng,
				func(pp *sim.Proc) {
					ctx := vfsapi.Ctx{P: pp, T: cont.NewThread()}
					if err := fls.Prepare(ctx); err != nil {
						panic(err)
					}
				},
				func(pp *sim.Proc) {
					ctx := vfsapi.Ctx{P: pp, T: r.tb.CPU.NewThread(nbrPool.Acct, nbrPool.Mask)}
					if err := rnd.Prepare(ctx); err != nil {
						panic(err)
					}
				})
			clock := clockFor(r.tb.Eng, scale)
			g := workloads.NewGroup(r.tb.Eng)
			fls.Run(g, clock)
			rnd.Run(g, clock)
			g.Wait(p)
		})
		o.locks = r.tb.Kernel.LockStats()
		o.util = r.tb.CPU.UtilSnapshot()
		o.end = r.tb.Eng.Now()
		return o
	}

	a, b := run(), run()
	if len(a.trace) == 0 {
		t.Fatal("tracer observed no events")
	}
	if len(a.trace) != len(b.trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.trace), len(b.trace))
	}
	for i := range a.trace {
		if a.trace[i] != b.trace[i] {
			t.Fatalf("trace diverges at event %d: %+v vs %+v", i, a.trace[i], b.trace[i])
		}
	}
	if a.locks != b.locks {
		t.Errorf("lock stats differ:\n  %+v\n  %+v", a.locks, b.locks)
	}
	if !reflect.DeepEqual(a.util, b.util) {
		t.Errorf("core utilization differs:\n  %v\n  %v", a.util, b.util)
	}
	if a.end != b.end {
		t.Errorf("end times differ: %v vs %v", a.end, b.end)
	}
}

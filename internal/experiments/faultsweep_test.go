package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestFaultSweepRecovery drives the combined crash+spike+stall schedule
// against the replicated user-level client and asserts the robustness
// acceptance criteria: operations keep completing through failover,
// retries are bounded (no op errors out), recovery is observed inside
// the window, and no acknowledged byte is lost.
func TestFaultSweepRecovery(t *testing.T) {
	cases := FaultSweepCases(QuickScale)
	row := RunFaultSweep(cases[1], QuickScale)
	if row.Config != core.ConfigD || row.Replication != 2 {
		t.Fatalf("unexpected case under test: %+v", row)
	}
	if row.VictimOps == 0 {
		t.Fatal("victim completed no operations")
	}
	if row.VictimErrors != 0 {
		t.Fatalf("replicated client surfaced %d op errors; want 0 (failover should absorb the crash)", row.VictimErrors)
	}
	if row.Faults.Retries == 0 {
		t.Fatal("no retries recorded under an OSD crash")
	}
	if row.Faults.Failovers == 0 {
		t.Fatal("no failovers recorded under an OSD crash with replication 2")
	}
	if row.RecoveryTime <= 0 {
		t.Fatal("no recovery observed after the fault armed")
	}
	if max := QuickScale.Duration; row.RecoveryTime > max {
		t.Fatalf("recovery took %v, longer than the whole window %v", row.RecoveryTime, max)
	}
	if row.DataLossBytes != 0 {
		t.Fatalf("lost %d acknowledged bytes; want 0", row.DataLossBytes)
	}
	if row.BystanderMBps == 0 {
		t.Fatal("bystander made no progress")
	}
}

// TestFaultSweepUnreplicatedLongCrash checks the bounded-retry error
// path: with replication 1 there is nowhere to fail over, so reads must
// give up at the op deadline with I/O errors and deadline misses, while
// the unbounded write path recovers once the OSD restarts.
func TestFaultSweepUnreplicatedLongCrash(t *testing.T) {
	cases := FaultSweepCases(QuickScale)
	row := RunFaultSweep(cases[3], QuickScale)
	if row.Replication != 1 {
		t.Fatalf("unexpected case under test: %+v", row)
	}
	if row.VictimErrors == 0 {
		t.Fatal("unreplicated long crash produced no op errors; deadline bound is not firing")
	}
	if row.Faults.DeadlineMisses == 0 {
		t.Fatal("no deadline misses recorded")
	}
	if row.DataLossBytes != 0 {
		t.Fatalf("lost %d acknowledged bytes; want 0 (backfill must recover them)", row.DataLossBytes)
	}
}

// TestFaultSweepDeterminism runs the faulted case twice and requires
// byte-identical rows: the injector schedules on virtual time only.
func TestFaultSweepDeterminism(t *testing.T) {
	cases := FaultSweepCases(QuickScale)
	a := RunFaultSweep(cases[1], QuickScale)
	b := RunFaultSweep(cases[1], QuickScale)
	if a != b {
		t.Fatalf("fault sweep not deterministic:\n  run 1: %v\n  run 2: %v", a, b)
	}
	base1 := RunFaultSweep(cases[0], QuickScale)
	base2 := RunFaultSweep(cases[0], QuickScale)
	if base1 != base2 {
		t.Fatalf("baseline not deterministic:\n  run 1: %v\n  run 2: %v", base1, base2)
	}
}

// TestFaultSweepBaselineClean asserts the empty schedule perturbs
// nothing: no retries, no failovers, no errors, no loss.
func TestFaultSweepBaselineClean(t *testing.T) {
	row := RunFaultSweep(FaultSweepCases(QuickScale)[0], QuickScale)
	if row.Faults != (FaultSweepRow{}.Faults) {
		t.Fatalf("baseline recorded fault activity: %+v", row.Faults)
	}
	if row.VictimErrors != 0 || row.DataLossBytes != 0 || row.RecoveryTime != 0 {
		t.Fatalf("baseline not clean: %v", row)
	}
}

package experiments

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestMonitorSweepDeterministic runs one monitored case twice with the
// same scale and requires byte-identical telemetry artifacts — windows
// CSV, alert ledger, and totals — the monitor-layer analogue of the
// obs golden test. Any divergence means the monitor leaked wall-clock
// or map-iteration order into its output.
func TestMonitorSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	c := MonitorCases()[2] // D+adm crash: no calibration run, cheapest case
	r1 := RunMonitorCase(c, QuickScale)
	r2 := RunMonitorCase(c, QuickScale)

	if r1.VictimFired != r2.VictimFired || r1.VictimCleared != r2.VictimCleared ||
		r1.MeasureEnd != r2.MeasureEnd || r1.Windows != r2.Windows {
		t.Fatalf("monitor rows diverged:\n  %+v\nvs\n  %+v", r1, r2)
	}
	for name, write := range map[string]func(*bytes.Buffer, *telemetry.Monitor) error{
		"windows": func(b *bytes.Buffer, m *telemetry.Monitor) error { return m.WriteWindowsCSV(b) },
		"alerts":  func(b *bytes.Buffer, m *telemetry.Monitor) error { return m.WriteAlertsCSV(b) },
		"totals":  func(b *bytes.Buffer, m *telemetry.Monitor) error { return m.WriteTotalsCSV(b) },
	} {
		var b1, b2 bytes.Buffer
		if err := write(&b1, r1.Monitor); err != nil {
			t.Fatal(err)
		}
		if err := write(&b2, r2.Monitor); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Errorf("%s CSV not byte-identical across identical runs", name)
		}
		if b1.Len() == 0 {
			t.Errorf("%s CSV is empty", name)
		}
	}
	if len(r1.Alerts) == 0 {
		t.Fatal("crash case produced an empty alert ledger — nothing was exercised")
	}
}

// TestMonitorSweepAcceptance runs the full sweep at quick scale and
// checks the acceptance story: the admission-protected Danaus client
// fires AND clears its victim alert around the disturbance, while the
// unprotected kernel client is still in violation when the measurement
// window closes.
func TestMonitorSweepAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows := RunMonitorSweep(QuickScale)
	for _, r := range rows {
		for _, v := range MonitorRowViolations(r) {
			t.Errorf("%s/%s: %s", r.Label, r.Fault, v)
		}
	}
	var dOver, kOver *MonitorRow
	for i := range rows {
		if rows[i].Fault != "overload" {
			continue
		}
		if rows[i].Config == core.ConfigD {
			dOver = &rows[i]
		} else if rows[i].Config == core.ConfigK {
			kOver = &rows[i]
		}
	}
	if dOver == nil || kOver == nil {
		t.Fatal("sweep is missing the D or K overload case")
	}
	if dOver.VictimFired == 0 || dOver.VictimCleared == 0 || dOver.VictimActiveEnd {
		t.Errorf("D overload: want fire+clear within measurement, got fired=%d cleared=%d activeEnd=%v",
			dOver.VictimFired, dOver.VictimCleared, dOver.VictimActiveEnd)
	}
	if !kOver.VictimActiveEnd {
		t.Errorf("K overload: want sustained violation at measurement end, got fired=%d cleared=%d activeEnd=%v",
			kOver.VictimFired, kOver.VictimCleared, kOver.VictimActiveEnd)
	}
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/sim"
	"repro/internal/vfsapi"
	"repro/internal/workloads"
)

// KVRow is one point of the Fig 7 curves: mean put or get latency of
// the key-value store across pools or clones.
type KVRow struct {
	Config core.Configuration
	Count  int // pools (scaleout) or clones (scaleup)
	// PutLatency / GetLatency are means over the measured phase.
	PutLatency time.Duration
	GetLatency time.Duration
}

// String renders the row for the harness.
func (r KVRow) String() string {
	return fmt.Sprintf("%-5s n=%-3d put=%-12v get=%v", r.Config, r.Count, r.PutLatency, r.GetLatency)
}

// KVPhase selects the measured phase.
type KVPhase int

// Phases of the Fig 7 experiments.
const (
	// PhasePut measures random inserts (Fig 7a/7c).
	PhasePut KVPhase = iota
	// PhaseGet populates an out-of-core dataset first, then measures
	// random lookups (Fig 7b/7d).
	PhaseGet
)

// kvInstance is one running KV store bound to a container.
type kvInstance struct {
	cont *core.Container
	db   *kvstore.DB
	put  *workloads.KVPut
	get  *workloads.KVGet
	keys []uint64
}

// openKV opens a store on the container's root filesystem.
func openKV(ctx vfsapi.Ctx, r *rig, cont *core.Container, scale Scale) (*kvstore.DB, error) {
	memtable := int64(float64(64<<20) * scale.Factor * 4)
	if memtable < 4<<20 {
		memtable = 4 << 20
	}
	return kvstore.Open(ctx, kvstore.Config{
		FS:            cont.Mount.Default,
		Dir:           "/rocksdb",
		MemtableBytes: memtable,
		Eng:           r.tb.Eng,
		Params:        r.tb.Params,
		NewThread:     cont.NewThread,
	})
}

// RunKVScaleout executes one Fig 7a/7b point: `pools` independent
// container pools, each with a private client and a private store.
func RunKVScaleout(config core.Configuration, pools int, phase KVPhase, scale Scale) KVRow {
	r := newScaledRig(2*pools, scale)
	row := KVRow{Config: config, Count: pools}
	insts := make([]*kvInstance, pools)
	for i := range insts {
		_, cont, err := r.flsContainer(i, config, scale)
		if err != nil {
			panic(err)
		}
		insts[i] = &kvInstance{cont: cont}
	}
	runKV(r, insts, phase, scale, &row)
	return row
}

// RunKVScaleup executes one Fig 7c/7d point: `clones` cloned containers
// in a single pool, sharing one backend client under private unions.
func RunKVScaleup(config core.Configuration, clones int, phase KVPhase, scale Scale) KVRow {
	cores := 2 * clones
	if cores < 4 {
		cores = 4
	}
	if cores > 64 {
		cores = 64
	}
	r := newScaledRig(cores, scale)
	row := KVRow{Config: config, Count: clones}

	if err := r.tb.Cluster.ProvisionDir("/images/base/etc"); err != nil {
		panic(err)
	}
	r.tb.Cluster.Provision("/images/base/etc/os-release", 4<<10)
	pool := r.tb.NewPool("scaleup", r.tb.CPU.AllMask(), scale.PoolMem()*int64(clones))

	insts := make([]*kvInstance, clones)
	var first *core.Container
	for i := range insts {
		upper := fmt.Sprintf("/containers/clone%03d", i)
		if err := r.tb.Cluster.ProvisionDir(upper); err != nil {
			panic(err)
		}
		spec := core.MountSpec{Config: config, UpperDir: upper, LowerDir: "/images/base"}
		if first != nil {
			spec.SharedClient = first.Mount.Client
			spec.SharedKernelMount = first.Mount.KernelMount
		}
		cont, err := pool.NewContainer(fmt.Sprintf("clone%03d", i), spec)
		if err != nil {
			panic(err)
		}
		if first == nil {
			first = cont
		}
		insts[i] = &kvInstance{cont: cont}
	}
	runKV(r, insts, phase, scale, &row)
	return row
}

// runKV opens the stores, optionally populates them, runs the measured
// phase concurrently across instances and averages the latencies.
func runKV(r *rig, insts []*kvInstance, phase KVPhase, scale Scale, row *KVRow) {
	r.runMaster(func(p *sim.Proc) {
		// Open (and for gets, populate) each store concurrently.
		preps := make([]func(pp *sim.Proc), len(insts))
		for i, in := range insts {
			in := in
			preps[i] = func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: in.cont.NewThread()}
				db, err := openKV(ctx, r, in.cont, scale)
				if err != nil {
					panic(err)
				}
				in.db = db
				if phase == PhaseGet {
					// The paper populates 8 GB before reading back:
					// an out-of-core dataset relative to the client
					// cache.
					total := int64(float64(8<<30) * scale.Factor)
					if total < 32<<20 {
						total = 32 << 20
					}
					keys, err := workloads.Populate(ctx, db, total, 128<<10, int64(i)+13)
					if err != nil {
						panic(err)
					}
					in.keys = keys
				}
			}
		}
		prepare(p, r.tb.Eng, preps...)

		clock := workloads.Clock{Eng: r.tb.Eng, From: r.tb.Eng.Now()}
		g := workloads.NewGroup(r.tb.Eng)
		for i, in := range insts {
			switch phase {
			case PhasePut:
				in.put = &workloads.KVPut{DB: in.db, Seed: int64(i) + 7, NewThread: in.cont.NewThread}
				in.put.Defaults(scale.Factor)
				in.put.Run(g, clock)
			case PhaseGet:
				in.get = &workloads.KVGet{DB: in.db, Keys: in.keys, Seed: int64(i) + 7, NewThread: in.cont.NewThread}
				in.get.Defaults(scale.Factor)
				in.get.Run(g, clock)
			}
		}
		g.Wait(p)

		var putSum, getSum time.Duration
		var putN, getN int
		for _, in := range insts {
			if in.put != nil && in.put.Stats.Latency.Count() > 0 {
				putSum += in.put.Stats.Latency.Mean()
				putN++
			}
			if in.get != nil && in.get.Stats.Latency.Count() > 0 {
				getSum += in.get.Stats.Latency.Mean()
				getN++
			}
			closeCtx := vfsapi.Ctx{P: p, T: in.cont.NewThread()}
			in.db.Close(closeCtx)
		}
		if putN > 0 {
			row.PutLatency = putSum / time.Duration(putN)
		}
		if getN > 0 {
			row.GetLatency = getSum / time.Duration(getN)
		}
	})
}

// Fig7ScaleoutCounts returns the paper's pool sweep (1-32).
func Fig7ScaleoutCounts() []int { return []int{1, 2, 4, 8, 16, 32} }

// Fig7ScaleupCounts returns the paper's clone sweep (1-32).
func Fig7ScaleupCounts() []int { return []int{1, 2, 4, 8, 16, 32} }

// Fig7aConfigs lists the scaleout comparison set.
func Fig7aConfigs() []core.Configuration {
	return []core.Configuration{core.ConfigD, core.ConfigF, core.ConfigK}
}

// Fig7cConfigs lists the scaleup comparison set.
func Fig7cConfigs() []core.Configuration {
	return []core.Configuration{core.ConfigD, core.ConfigFF, core.ConfigFK, core.ConfigKK}
}

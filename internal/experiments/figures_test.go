package experiments

import (
	"testing"

	"repro/internal/core"
)

// The figure smoke tests assert the qualitative shape of each result
// at quick scale: who wins and in which direction, not absolute values.

func TestFig6cSysbenchIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	kAlone := RunSysbench(SysbenchCase{Config: core.ConfigK, WithSSB: false}, QuickScale)
	kBoth := RunSysbench(SysbenchCase{Config: core.ConfigK, WithSSB: true}, QuickScale)
	dAlone := RunSysbench(SysbenchCase{Config: core.ConfigD, WithSSB: false}, QuickScale)
	dBoth := RunSysbench(SysbenchCase{Config: core.ConfigD, WithSSB: true}, QuickScale)
	t.Logf("K: fls alone %v both %v ssb-p99 %v (ssb cores alone %.1f%%)", kAlone.FLSLatencyAvg, kBoth.FLSLatencyAvg, kBoth.SSBLatencyP99, kAlone.SSBCoreUtilPct)
	t.Logf("D: fls alone %v both %v ssb-p99 %v (ssb cores alone %.1f%%)", dAlone.FLSLatencyAvg, dBoth.FLSLatencyAvg, dBoth.SSBLatencyP99, dAlone.SSBCoreUtilPct)

	// The kernel client uses the SSB pool's reserved cores when SSB is
	// idle; Danaus barely touches them.
	if kAlone.SSBCoreUtilPct < 5*dAlone.SSBCoreUtilPct {
		t.Errorf("K should steal far more SSB cores than D: K=%.1f%% D=%.1f%%",
			kAlone.SSBCoreUtilPct, dAlone.SSBCoreUtilPct)
	}
	if kBoth.SSBLatencyP99 <= 0 || dBoth.SSBLatencyP99 <= 0 {
		t.Fatal("missing SSB latency")
	}
	// Colocated Sysbench suffers more next to the kernel client.
	if kBoth.SSBLatencyP99 < dBoth.SSBLatencyP99 {
		t.Errorf("SSB p99 should be worse next to K: K=%v D=%v", kBoth.SSBLatencyP99, dBoth.SSBLatencyP99)
	}
}

func TestFig7aKVPutScaleout(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	pools := 8
	d := RunKVScaleout(core.ConfigD, pools, PhasePut, QuickScale)
	f := RunKVScaleout(core.ConfigF, pools, PhasePut, QuickScale)
	k := RunKVScaleout(core.ConfigK, pools, PhasePut, QuickScale)
	t.Logf("put scaleout n=%d: D=%v F=%v K=%v", pools, d.PutLatency, f.PutLatency, k.PutLatency)
	if d.PutLatency <= 0 || f.PutLatency <= 0 || k.PutLatency <= 0 {
		t.Fatal("missing latencies")
	}
	// Paper Fig 7a: D has the lowest put latency at scaleout.
	if d.PutLatency > f.PutLatency {
		t.Errorf("D put latency should beat F: %v vs %v", d.PutLatency, f.PutLatency)
	}
	if d.PutLatency > k.PutLatency {
		t.Errorf("D put latency should beat K: %v vs %v", d.PutLatency, k.PutLatency)
	}
}

func TestFig7cKVPutScaleup(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	clones := 4
	d := RunKVScaleup(core.ConfigD, clones, PhasePut, QuickScale)
	ff := RunKVScaleup(core.ConfigFF, clones, PhasePut, QuickScale)
	t.Logf("put scaleup n=%d: D=%v F/F=%v", clones, d.PutLatency, ff.PutLatency)
	// Paper Fig 7c: D clearly beats F/F in put scaleup.
	if d.PutLatency >= ff.PutLatency {
		t.Errorf("D should beat F/F in put scaleup: %v vs %v", d.PutLatency, ff.PutLatency)
	}
}

func TestFig8StartupScaleup(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	n := 8
	d := RunStartupScaleup(core.ConfigD, n, QuickScale)
	kk := RunStartupScaleup(core.ConfigKK, n, QuickScale)
	ff := RunStartupScaleup(core.ConfigFF, n, QuickScale)
	t.Logf("startup n=%d: D=%v(%d sw) K/K=%v(%d sw) F/F=%v(%d sw)",
		n, d.RealTime, d.ContextSwitches, kk.RealTime, kk.ContextSwitches, ff.RealTime, ff.ContextSwitches)
	// Paper Fig 8: the kernel path starts containers fastest; D beats
	// F/F clearly; F/F has many times more context switches than D.
	if kk.RealTime >= d.RealTime {
		t.Errorf("K/K should start faster than D: %v vs %v", kk.RealTime, d.RealTime)
	}
	if d.RealTime >= ff.RealTime {
		t.Errorf("D should start faster than F/F: %v vs %v", d.RealTime, ff.RealTime)
	}
	if ff.ContextSwitches < 5*d.ContextSwitches {
		t.Errorf("F/F should context-switch far more than D: %d vs %d", ff.ContextSwitches, d.ContextSwitches)
	}
}

func TestFig9Seqwrite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	pools := 4
	d := RunSeqIOScaleout(core.ConfigD, pools, true, QuickScale)
	k := RunSeqIOScaleout(core.ConfigK, pools, true, QuickScale)
	t.Logf("seqwrite n=%d: %s | %s", pools, d, k)
	// Paper Fig 9 top: D beats K in sequential writes; K accumulates
	// far more I/O wait.
	if d.ThroughputMBps <= k.ThroughputMBps {
		t.Errorf("D should beat K in Seqwrite: %.1f vs %.1f MB/s", d.ThroughputMBps, k.ThroughputMBps)
	}
}

func TestFig9Seqread(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	d := RunSeqIOScaleout(core.ConfigD, 1, false, QuickScale)
	f := RunSeqIOScaleout(core.ConfigF, 1, false, QuickScale)
	k := RunSeqIOScaleout(core.ConfigK, 1, false, QuickScale)
	t.Logf("seqread n=1: D=%.1f F=%.1f K=%.1f MB/s", d.ThroughputMBps, f.ThroughputMBps, k.ThroughputMBps)
	// Paper Fig 9 bottom: cached sequential read — K beats D
	// (client_lock serialization), D beats F (no FUSE crossings).
	if k.ThroughputMBps <= d.ThroughputMBps {
		t.Errorf("K should beat D in cached Seqread: %.1f vs %.1f", k.ThroughputMBps, d.ThroughputMBps)
	}
	if d.ThroughputMBps <= f.ThroughputMBps {
		t.Errorf("D should beat F in cached Seqread: %.1f vs %.1f", d.ThroughputMBps, f.ThroughputMBps)
	}
}

func TestFig10FileserverScaleout(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	pools := 8
	d := RunFileserverScaleout(core.ConfigD, pools, QuickScale)
	k := RunFileserverScaleout(core.ConfigK, pools, QuickScale)
	t.Logf("fileserver n=%d: %s | %s", pools, d, k)
	// Paper Fig 10: D overtakes K by 8 pools.
	if d.ThroughputMBps <= k.ThroughputMBps {
		t.Errorf("D should beat K at %d pools: %.1f vs %.1f MB/s", pools, d.ThroughputMBps, k.ThroughputMBps)
	}
}

func TestFig11aFileappend(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	n := 16
	d := RunFileIOScaleup(core.ConfigD, n, true, QuickScale)
	kk := RunFileIOScaleup(core.ConfigKK, n, true, QuickScale)
	ff := RunFileIOScaleup(core.ConfigFF, n, true, QuickScale)
	t.Logf("fileappend n=%d: %s | %s | %s", n, d, kk, ff)
	// Paper Fig 11a: D tends to the shortest timespan (up to 46% under
	// K/K at 32 containers). Our model keeps D competitive with K/K
	// (within 1.4x — the one recorded shape deviation, see
	// EXPERIMENTS.md) and clearly ahead of F/F.
	if float64(d.Timespan) > 1.4*float64(kk.Timespan) {
		t.Errorf("D should stay within 1.4x of K/K in Fileappend: %v vs %v", d.Timespan, kk.Timespan)
	}
	if d.Timespan >= ff.Timespan {
		t.Errorf("D should beat F/F in Fileappend: %v vs %v", d.Timespan, ff.Timespan)
	}
	if d.MaxMemory <= 0 {
		t.Error("missing memory measurement")
	}
}

func TestFig11bFilereadMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	n := 16
	d := RunFileIOScaleup(core.ConfigD, n, false, QuickScale)
	fpfp := RunFileIOScaleup(core.ConfigFPFP, n, false, QuickScale)
	kk := RunFileIOScaleup(core.ConfigKK, n, false, QuickScale)
	t.Logf("fileread n=%d: %s | %s | %s", n, d, fpfp, kk)
	// Paper Fig 11b: FP/FP uses multiples of D's memory (double
	// caching); K/K finishes faster than D.
	if fpfp.MaxMemory < 2*d.MaxMemory {
		t.Errorf("FP/FP memory should far exceed D: %d vs %d", fpfp.MaxMemory, d.MaxMemory)
	}
	if kk.Timespan >= d.Timespan {
		t.Errorf("K/K should beat D in cached Fileread: %v vs %v", kk.Timespan, d.Timespan)
	}
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vfsapi"
	"repro/internal/workloads"
)

// ScaleoutRow is one point of the Fig 9 / Fig 10 scaleout curves.
type ScaleoutRow struct {
	Config core.Configuration
	Pools  int
	// ThroughputMBps is the aggregate throughput across all pools.
	ThroughputMBps float64
	// UserPct/KernelPct are mean per-pool core utilization percentages
	// (of the pools' own reserved cores).
	UserPct   float64
	KernelPct float64
	// IOWait is total time application threads spent blocked in kernel
	// I/O paths (the paper's iowait bars).
	IOWait time.Duration
}

// RunSeqIOScaleout executes one Fig 9 point: `pools` container pools,
// each with a private client of the given configuration, running
// Seqwrite (write=true) or cached Seqread (write=false).
func RunSeqIOScaleout(config core.Configuration, pools int, write bool, scale Scale) ScaleoutRow {
	r := newScaledRig(2*pools, scale)
	row := ScaleoutRow{Config: config, Pools: pools}

	type inst struct {
		pool *core.Pool
		c    *core.Container
		w    *workloads.SeqIO
	}
	insts := make([]inst, pools)
	for i := range insts {
		pool, cont, err := r.flsContainer(i, config, scale)
		if err != nil {
			panic(err)
		}
		w := &workloads.SeqIO{
			FS:        cont.Mount.Default,
			Dir:       "/seq",
			Write:     write,
			NewThread: cont.NewThread,
		}
		w.Defaults(scale.Factor)
		insts[i] = inst{pool: pool, c: cont, w: w}
	}

	r.runMaster(func(p *sim.Proc) {
		preps := make([]func(pp *sim.Proc), len(insts))
		for i, in := range insts {
			in := in
			preps[i] = func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: in.c.NewThread()}
				if err := in.w.Prepare(ctx); err != nil {
					panic(err)
				}
			}
		}
		prepare(p, r.tb.Eng, preps...)

		clock := clockFor(r.tb.Eng, scale)
		var userStart, kernStart, iowaitStart time.Duration
		r.tb.Eng.After(clock.From-r.tb.Eng.Now(), func() {
			for _, in := range insts {
				s := in.pool.Acct.Snapshot()
				userStart += s.UserTime
				kernStart += s.KernelTime
				iowaitStart += s.IOWait
			}
		})

		g := workloads.NewGroup(r.tb.Eng)
		for _, in := range insts {
			in.w.Run(g, clock)
		}
		g.Wait(p)

		var user, kern, iowait time.Duration
		for _, in := range insts {
			s := in.pool.Acct.Snapshot()
			user += s.UserTime
			kern += s.KernelTime
			iowait += s.IOWait
		}
		window := clock.Window()
		totalCores := float64(2 * pools)
		row.UserPct = float64(user-userStart) / float64(window) / totalCores * 100
		row.KernelPct = float64(kern-kernStart) / float64(window) / totalCores * 100
		row.IOWait = iowait - iowaitStart
		for _, in := range insts {
			row.ThroughputMBps += in.w.Stats.ThroughputMBps(window)
		}
	})
	return row
}

// RunFileserverScaleout executes one Fig 10 point: `pools` pools each
// running a Fileserver instance over a private client.
func RunFileserverScaleout(config core.Configuration, pools int, scale Scale) ScaleoutRow {
	r := newScaledRig(2*pools, scale)
	row := ScaleoutRow{Config: config, Pools: pools}

	type inst struct {
		pool *core.Pool
		c    *core.Container
		w    *workloads.Fileserver
	}
	insts := make([]inst, pools)
	for i := range insts {
		pool, cont, err := r.flsContainer(i, config, scale)
		if err != nil {
			panic(err)
		}
		insts[i] = inst{pool: pool, c: cont, w: newFileserver(cont, scale, int64(i)+1)}
	}

	r.runMaster(func(p *sim.Proc) {
		preps := make([]func(pp *sim.Proc), len(insts))
		for i, in := range insts {
			in := in
			preps[i] = func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: in.c.NewThread()}
				if err := in.w.Prepare(ctx); err != nil {
					panic(err)
				}
			}
		}
		prepare(p, r.tb.Eng, preps...)

		clock := clockFor(r.tb.Eng, scale)
		var userStart, kernStart, iowaitStart time.Duration
		r.tb.Eng.After(clock.From-r.tb.Eng.Now(), func() {
			for _, in := range insts {
				s := in.pool.Acct.Snapshot()
				userStart += s.UserTime
				kernStart += s.KernelTime
				iowaitStart += s.IOWait
			}
		})

		g := workloads.NewGroup(r.tb.Eng)
		for _, in := range insts {
			in.w.Run(g, clock)
		}
		g.Wait(p)

		var user, kern, iowait time.Duration
		for _, in := range insts {
			s := in.pool.Acct.Snapshot()
			user += s.UserTime
			kern += s.KernelTime
			iowait += s.IOWait
		}
		window := clock.Window()
		totalCores := float64(2 * pools)
		row.UserPct = float64(user-userStart) / float64(window) / totalCores * 100
		row.KernelPct = float64(kern-kernStart) / float64(window) / totalCores * 100
		row.IOWait = iowait - iowaitStart
		for _, in := range insts {
			row.ThroughputMBps += in.w.Stats.ThroughputMBps(window)
		}
	})
	return row
}

// Fig9PoolCounts returns the paper's pool sweep for Fig 9.
func Fig9PoolCounts() []int { return []int{1, 2, 4, 8, 16, 32} }

// Fig10PoolCounts returns the paper's pool sweep for Fig 10.
func Fig10PoolCounts() []int { return []int{1, 2, 4, 8, 16} }

// String renders a row for the harness.
func (r ScaleoutRow) String() string {
	return fmt.Sprintf("%-4s pools=%-3d %9.1f MB/s  user %5.1f%% kernel %5.1f%%  iowait %v",
		r.Config, r.Pools, r.ThroughputMBps, r.UserPct, r.KernelPct, r.IOWait)
}

package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestOverloadCaseDeterminism runs the protected 4x case twice with
// identical seeds and requires byte-identical outcomes — in particular
// the shed counts, the acceptance criterion for reproducible
// load-shedding decisions.
func TestOverloadCaseDeterminism(t *testing.T) {
	c := OverloadCase{Label: "D+adm", Config: core.ConfigD, Protected: true, Multiplier: 4}
	a := RunOverloadCase(c, QuickScale)
	b := RunOverloadCase(c, QuickScale)
	if a != b {
		t.Fatalf("same-seed overload runs diverged:\n  %v\n  %v", a, b)
	}
	if a.Shed != b.Shed {
		t.Fatalf("shed counts diverged: %d vs %d", a.Shed, b.Shed)
	}
	if a.Offered == 0 {
		t.Fatalf("aggressor offered no load: %+v", a)
	}
}

// TestOverloadSweepQuick runs the full sweep at quick scale and checks
// the headline acceptance criteria: the protected client holds victim
// p99 within 2x of its unloaded baseline at 4x offered load, sheds a
// meaningful fraction there, and every row passes the overload
// invariants.
func TestOverloadSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("overload sweep is slow")
	}
	rows := RunOverloadSweep(QuickScale)
	if len(rows) != 8 {
		t.Fatalf("want 8 rows, got %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%s", r)
		for _, v := range OverloadRowViolations(r) {
			t.Errorf("invariant: %s", v)
		}
		if r.Multiplier > 0 && r.Offered == 0 {
			t.Errorf("%s %dx: no offered load", r.Label, r.Multiplier)
		}
		if r.Protected {
			if r.Multiplier == 4 && r.VictimP99Ratio > 2.0 {
				t.Errorf("protected victim p99 blew past 2x at 4x load: ratio %.2f", r.VictimP99Ratio)
			}
			if r.Multiplier == 4 && r.Shed == 0 {
				t.Errorf("protected client shed nothing at 4x load")
			}
		}
	}
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/vfsapi"
	"repro/internal/workloads"
)

// CrashSweepCase is one point of the crash-sweep family: a client
// architecture whose client-side component is killed mid-measurement
// and restarted, while a victim and a bystander tenant run side by
// side. The sweep is the paper's containment argument as an
// experiment: a Danaus libservice crash is one tenant's problem, a
// FUSE daemon crash takes its tenant's whole mount, a kernel-client
// crash takes the host.
type CrashSweepCase struct {
	Label       string
	Config      core.Configuration
	Replication int
	// Kind selects which component dies (DanausCrash, FUSECrash or
	// HostCrash); the victim pool is always the target for the
	// tenant-scoped kinds.
	Kind faults.Kind
}

// CrashSweepRow is the outcome of one crash-sweep case.
type CrashSweepRow struct {
	Label       string
	Config      core.Configuration
	Replication int
	Kind        faults.Kind

	// Victim probes: a fsync-per-append WAL writer plus a sequential
	// reader in the crashed pool.
	VictimWriteMBps float64
	VictimErrors    uint64
	// Bystander: a cache-resident reader in the second pool. Its error
	// count is the blast-radius proof — zero for the tenant-scoped
	// crash kinds, non-zero when the whole host goes down.
	BystanderMBps   float64
	BystanderErrors uint64

	// AffectedTenants is the blast radius recorded by the crash domain
	// (pools whose service was interrupted).
	AffectedTenants int
	// QueueShed counts admission waiters evicted at crash time.
	QueueShed int

	// RecoveryTime is the recovery protocol's duration: scheduled
	// restart until MDS sessions are reclaimed and mounts are back.
	RecoveryTime time.Duration
	// VictimRepair is end-to-end repair as the victim saw it: crash
	// instant until its first operation completed again.
	VictimRepair time.Duration

	// DurabilityViolation is acked-but-lost WAL bytes observed through
	// a fresh post-recovery handle: fsync-acknowledged size minus the
	// remounted file size, when positive. The contract is zero — a
	// crash may discard un-synced appends, never acknowledged ones.
	DurabilityViolation int64
}

// CrashSweepCases returns the harness sweep: for each of the three
// architectures, its native crash kind at replication 2, with the
// outage spanning 30-50% of the measurement window.
func CrashSweepCases() []CrashSweepCase {
	return []CrashSweepCase{
		{Label: "danaus-crash", Config: core.ConfigD, Replication: 2, Kind: faults.DanausCrash},
		{Label: "fuse-crash", Config: core.ConfigF, Replication: 2, Kind: faults.FUSECrash},
		{Label: "host-crash", Config: core.ConfigK, Replication: 2, Kind: faults.HostCrash},
	}
}

// crashWindow places the outage inside the measurement window.
func crashWindow(c CrashSweepCase, scale Scale) faults.Window {
	return faults.Window{
		Kind:   c.Kind,
		Tenant: crashTenant(c.Kind),
		Start:  time.Duration(float64(scale.Duration) * 0.3),
		End:    time.Duration(float64(scale.Duration) * 0.5),
	}
}

func crashTenant(k faults.Kind) string {
	if k == faults.HostCrash {
		return ""
	}
	return "fls0"
}

// RunCrashSweep executes one crash-sweep case: victim pool 0 runs a
// WAL writer and reopens its handle after the crash invalidates it,
// bystander pool 1 reads a warm file, and the crash window is
// installed relative to the measurement window.
func RunCrashSweep(c CrashSweepCase, scale Scale) CrashSweepRow {
	r := newScaledRig(4, scale)
	r.tb.Cluster.SetReplication(c.Replication)
	row := CrashSweepRow{Label: c.Label, Config: c.Config, Replication: c.Replication, Kind: c.Kind}

	_, victim, err := r.flsContainer(0, c.Config, scale)
	if err != nil {
		panic(err)
	}
	_, byst, err := r.flsContainer(1, c.Config, scale)
	if err != nil {
		panic(err)
	}

	const walOp = 64 << 10
	const warmSize = 16 << 20

	r.runMaster(func(p *sim.Proc) {
		prepare(p, r.tb.Eng,
			func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: victim.NewThread()}
				h, err := victim.Mount.Default.Open(ctx, "/wal", vfsapi.CREATE|vfsapi.WRONLY)
				if err != nil {
					panic(err)
				}
				if err := h.Close(ctx); err != nil {
					panic(err)
				}
			},
			func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: byst.NewThread()}
				h, err := byst.Mount.Default.Open(ctx, "/warm", vfsapi.CREATE|vfsapi.WRONLY)
				if err != nil {
					panic(err)
				}
				if _, err := h.Append(ctx, warmSize); err != nil {
					panic(err)
				}
				if err := h.Fsync(ctx); err != nil {
					panic(err)
				}
				if err := h.Close(ctx); err != nil {
					panic(err)
				}
			},
		)

		clock := clockFor(r.tb.Eng, scale)
		w := crashWindow(c, scale)
		plan := faults.Plan{Windows: []faults.Window{w}}
		if _, err := faults.InstallWithTargets(r.tb.Eng, r.tb.Cluster, r.tb, plan, clock.From); err != nil {
			panic(err)
		}
		crashAbs := clock.From + w.Start

		writer := workloads.NewStats()
		warm := workloads.NewStats()
		var acked, walSize int64
		var victimRepaired time.Duration

		g := workloads.NewGroup(r.tb.Eng)
		g.Go("wal-writer", func(pp *sim.Proc) {
			ctx := vfsapi.Ctx{P: pp, T: victim.NewThread()}
			h, err := victim.Mount.Default.Open(ctx, "/wal", vfsapi.WRONLY)
			if err != nil {
				panic(err)
			}
			defer func() { h.Close(ctx) }()
			for !clock.Done() {
				start := pp.Now()
				_, werr := h.Append(ctx, walOp)
				if werr == nil {
					walSize += walOp
					werr = h.Fsync(ctx)
				}
				now := pp.Now()
				if werr != nil {
					if clock.Measuring() {
						writer.Errors++
					}
					pp.Sleep(time.Millisecond)
					// The crash invalidated the handle generation; a fresh
					// open succeeds once the client is back. The reopened
					// size discounts whatever appends the crash discarded.
					if nh, oerr := victim.Mount.Default.Open(ctx, "/wal", vfsapi.WRONLY); oerr == nil {
						h.Close(ctx)
						h = nh
						walSize = nh.Size()
					}
					continue
				}
				acked = walSize
				if victimRepaired == 0 && now >= crashAbs {
					victimRepaired = now - crashAbs
				}
				if clock.Measuring() {
					writer.Record(walOp, now-start)
				}
			}
		})
		g.Go("bystander", func(pp *sim.Proc) {
			ctx := vfsapi.Ctx{P: pp, T: byst.NewThread()}
			h, err := byst.Mount.Default.Open(ctx, "/warm", vfsapi.RDONLY)
			if err != nil {
				panic(err)
			}
			defer func() { h.Close(ctx) }()
			var off int64
			for !clock.Done() {
				start := pp.Now()
				n, rerr := h.Read(ctx, off, 128<<10)
				now := pp.Now()
				if rerr != nil {
					if clock.Measuring() {
						warm.Errors++
					}
					pp.Sleep(time.Millisecond)
					if nh, oerr := byst.Mount.Default.Open(ctx, "/warm", vfsapi.RDONLY); oerr == nil {
						h.Close(ctx)
						h = nh
					}
				} else if clock.Measuring() {
					warm.Record(n, now-start)
				}
				off += 128 << 10
				if off >= warmSize {
					off = 0
				}
			}
		})
		g.Wait(p)

		// Durability audit through a fresh post-recovery handle: the
		// remounted WAL must cover every fsync-acknowledged byte.
		ctx := vfsapi.Ctx{P: p, T: victim.NewThread()}
		var remount int64
		if h, oerr := victim.Mount.Default.Open(ctx, "/wal", vfsapi.RDONLY); oerr == nil {
			remount = h.Size()
			h.Close(ctx)
		}
		if loss := acked - remount; loss > 0 {
			row.DurabilityViolation = loss
		}

		window := clock.Window()
		row.VictimWriteMBps = writer.ThroughputMBps(window)
		row.VictimErrors = writer.Errors
		row.BystanderMBps = warm.ThroughputMBps(window)
		row.BystanderErrors = warm.Errors
		row.VictimRepair = victimRepaired
		for _, ev := range r.tb.CrashLog() {
			row.AffectedTenants += len(ev.Affected)
			row.QueueShed += ev.QueueShed
			if ev.Recovered {
				row.RecoveryTime += ev.RecoveryTime()
			}
		}
	})
	return row
}

// CrashRowViolations checks the crash-sweep invariants on one row:
// the durability contract (no fsync-acknowledged byte lost), recovery
// completion (the scheduled restart brought the service back), and the
// paper's blast-radius claim — a Danaus libservice or FUSE daemon
// crash is one tenant's problem while a kernel-client crash interrupts
// every pool on the host. It returns human-readable violation
// descriptions (empty = clean).
func CrashRowViolations(r CrashSweepRow) []string {
	var v []string
	if r.DurabilityViolation > 0 {
		v = append(v, fmt.Sprintf("crashsweep %s %s: durability violated: %d fsync-acked bytes missing after remount",
			r.Config, r.Label, r.DurabilityViolation))
	}
	if r.RecoveryTime <= 0 {
		v = append(v, fmt.Sprintf("crashsweep %s %s: recovery never completed", r.Config, r.Label))
	}
	if r.VictimErrors == 0 {
		v = append(v, fmt.Sprintf("crashsweep %s %s: crash window had no effect: victim saw zero errors", r.Config, r.Label))
	}
	switch r.Kind {
	case faults.DanausCrash, faults.FUSECrash:
		if r.AffectedTenants != 1 {
			v = append(v, fmt.Sprintf("crashsweep %s %s: blast radius violated: %d tenants affected, want 1",
				r.Config, r.Label, r.AffectedTenants))
		}
		if r.BystanderErrors != 0 {
			v = append(v, fmt.Sprintf("crashsweep %s %s: containment violated: bystander saw %d errors",
				r.Config, r.Label, r.BystanderErrors))
		}
	case faults.HostCrash:
		if r.AffectedTenants != 2 {
			v = append(v, fmt.Sprintf("crashsweep %s %s: blast radius violated: %d tenants affected, want 2 (whole host)",
				r.Config, r.Label, r.AffectedTenants))
		}
		if r.BystanderErrors == 0 {
			v = append(v, fmt.Sprintf("crashsweep %s %s: host crash did not interrupt the bystander", r.Config, r.Label))
		}
	}
	return v
}

// String renders a row for the harness.
func (r CrashSweepRow) String() string {
	return fmt.Sprintf("%-4s r=%d %-13s wal %6.1f MB/s err=%-4d byst %6.1f MB/s err=%-4d affected=%d shed=%-3d recover=%-10v repair=%-10v loss=%d",
		r.Config, r.Replication, r.Label,
		r.VictimWriteMBps, r.VictimErrors,
		r.BystanderMBps, r.BystanderErrors,
		r.AffectedTenants, r.QueueShed,
		r.RecoveryTime, r.VictimRepair, r.DurabilityViolation)
}

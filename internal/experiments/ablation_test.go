package experiments

import "testing"

func TestAblationClientLock(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	row := RunAblationClientLock(QuickScale)
	t.Log(row)
	// Removing the coarse lock must lift cached-read throughput (§6.3.2).
	if row.Ablated <= row.Baseline {
		t.Errorf("lock removal did not improve reads: %s", row)
	}
}

func TestAblationWakeupElision(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	row := RunAblationWakeupElision(QuickScale)
	t.Log(row)
	// Disabling polling must cost many more context switches.
	if row.Ablated < 10*row.Baseline {
		t.Errorf("polling removal should multiply switches: %s", row)
	}
}

func TestAblationThreadPinning(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	row := RunAblationThreadPinning(QuickScale)
	t.Log(row)
	if row.Baseline <= 0 || row.Ablated <= 0 {
		t.Fatalf("missing measurements: %s", row)
	}
}

func TestAblationUnionIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	row := RunAblationUnionIntegration(QuickScale)
	t.Log(row)
	// The FUSE crossing between union and client must cost startup time.
	if row.Ablated <= row.Baseline {
		t.Errorf("FUSE crossing should be slower than integration: %s", row)
	}
}

func TestAblationImagePull(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	row := RunAblationImagePull(QuickScale)
	t.Log(row)
	// The pull+expand alone should cost meaningful time compared to
	// starting directly from the shared filesystem.
	if row.Ablated <= 0 || row.Baseline <= 0 {
		t.Fatalf("missing measurements: %s", row)
	}
}

func TestAllAblationsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows := AllAblations(QuickScale)
	if len(rows) != 5 {
		t.Fatalf("ablation count = %d", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.Baseline <= 0 && r.Ablated <= 0 {
			t.Errorf("empty ablation %q", r.Name)
		}
		if seen[r.Name] {
			t.Errorf("duplicate ablation %q", r.Name)
		}
		seen[r.Name] = true
	}
}

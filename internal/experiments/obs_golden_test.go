package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// runObserved runs one fault-sweep case with an engine event counter
// and, when sample >= 0, an attached recorder (sample is its
// SampleInterval; 0 records spans but schedules no sampler events).
// sample < 0 runs without any recorder.
func runObserved(sample time.Duration) (FaultSweepRow, *obs.Recorder, int) {
	var rec *obs.Recorder
	events := 0
	Observer = func(tb *core.Testbed) {
		tb.Eng.SetTracer(func(sim.TraceEvent) { events++ })
		if sample >= 0 {
			rec = obs.New(obs.Config{
				Clock:          tb.Eng.Now,
				SampleInterval: sample,
				MaxEvents:      200_000,
			})
			tb.AttachObserver(rec)
		}
	}
	defer func() { Observer = nil }()
	row := RunFaultSweep(FaultSweepCases(QuickScale)[0], QuickScale)
	return row, rec, events
}

// TestObservabilityGolden runs the same recorded fault-sweep case
// twice and requires byte-identical trace and metrics artifacts — the
// determinism contract of OBSERVABILITY.md — and that the trace
// attributes flusher writeback work to the originating tenant.
func TestObservabilityGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	row1, rec1, _ := runObserved(10 * time.Millisecond)
	row2, rec2, _ := runObserved(10 * time.Millisecond)
	if row1 != row2 {
		t.Fatalf("recorded runs diverged:\n  %+v\nvs\n  %+v", row1, row2)
	}

	var t1, t2, m1, m2 bytes.Buffer
	if err := obs.WriteTrace(&t1, []obs.Run{{Label: "run0", Rec: rec1}}); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteTrace(&t2, []obs.Run{{Label: "run0", Rec: rec2}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("trace artifacts not byte-identical across identical runs")
	}
	if err := obs.WriteMetrics(&m1, []obs.Run{{Label: "run0", Rec: rec1}}); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteMetrics(&m2, []obs.Run{{Label: "run0", Rec: rec2}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
		t.Fatal("metrics artifacts not byte-identical across identical runs")
	}

	// Flusher attribution: the victim pool's dirty WAL data recruits
	// writeback, and its spans must carry the originating tenant even
	// though the work runs on a background flusher.
	trace := t1.String()
	if !strings.Contains(trace, `"name":"writeback"`) {
		t.Fatal("trace has no writeback spans")
	}
	if !strings.Contains(trace, `"op":"writeback","tenant":"fls0"`) {
		t.Fatal("writeback spans not tagged with the originating tenant")
	}
	if !strings.Contains(trace, `"cat":"core"`) {
		t.Fatal("trace has no core slices")
	}
	if !strings.Contains(m1.String(), `"core_util_pct"`) {
		t.Fatal("metrics missing the sampled core_util_pct series")
	}
}

// TestObservabilityZeroOverhead verifies the zero-overhead-when-
// disabled contract: a run with no recorder and a run with a recorder
// whose sampler is off execute the exact same engine schedule (event
// for event) and produce identical rows — the recorder only reads the
// virtual clock.
func TestObservabilityZeroOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rowOff, _, eventsOff := runObserved(-1)
	rowOn, rec, eventsOn := runObserved(0)
	if rowOff != rowOn {
		t.Fatalf("recorder changed results:\n  %+v\nvs\n  %+v", rowOff, rowOn)
	}
	if eventsOff != eventsOn {
		t.Fatalf("recorder changed the engine schedule: %d events without, %d with", eventsOff, eventsOn)
	}
	if len(rec.Slices()) == 0 {
		t.Fatal("recorder with sampler off should still record spans")
	}
}

// runMonitored mirrors runObserved but additionally attaches a
// telemetry Monitor behind the recorder. With SampleInterval 0 the
// monitor is purely event-driven: it must see every facade op while
// adding zero engine events.
func runMonitored() (FaultSweepRow, *telemetry.Monitor, int) {
	var mon *telemetry.Monitor
	events := 0
	Observer = func(tb *core.Testbed) {
		tb.Eng.SetTracer(func(sim.TraceEvent) { events++ })
		rec := obs.New(obs.Config{
			Clock:          tb.Eng.Now,
			SampleInterval: 0,
			MaxEvents:      200_000,
		})
		tb.AttachObserver(rec)
		mon = telemetry.New(telemetry.Config{
			FastWindow:     50 * time.Millisecond,
			SlowWindow:     250 * time.Millisecond,
			SampleInterval: 0,
			SLOs:           []telemetry.SLO{{Name: "err-burn", Budget: 0.02}},
		})
		tb.AttachMonitor(mon)
	}
	defer func() { Observer = nil }()
	row := RunFaultSweep(FaultSweepCases(QuickScale)[0], QuickScale)
	return row, mon, events
}

// TestTelemetryZeroOverhead extends the zero-overhead contract one
// layer up: attaching a telemetry Monitor with its ticker disabled
// (SampleInterval 0) must leave the engine schedule event-identical to
// a bare run and change no results, while the monitor still aggregates
// windows and totals from the event stream alone.
func TestTelemetryZeroOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rowOff, _, eventsOff := runObserved(-1)
	rowOn, mon, eventsOn := runMonitored()
	if rowOff != rowOn {
		t.Fatalf("monitor changed results:\n  %+v\nvs\n  %+v", rowOff, rowOn)
	}
	if eventsOff != eventsOn {
		t.Fatalf("monitor changed the engine schedule: %d events without, %d with", eventsOff, eventsOn)
	}
	if len(mon.Windows()) == 0 {
		t.Fatal("event-driven monitor closed no windows")
	}
	tot := mon.Totals()
	if len(tot) == 0 {
		t.Fatal("event-driven monitor collected no totals")
	}
	var ops uint64
	for _, tt := range tot {
		ops += tt.Ops
	}
	if ops == 0 {
		t.Fatal("event-driven monitor counted zero ops")
	}
}

package experiments

import (
	"testing"
	"time"
)

// traceTestScale keeps the trace-sweep unit test fast: a short window
// still yields a few hundred recorded ops.
var traceTestScale = Scale{Factor: 0.02, Duration: 800 * time.Millisecond, Warmup: 200 * time.Millisecond}

// TestTraceSweepIdentityReplay is the acceptance check of the trace
// layer: recording a run and replaying it under the recorded
// configuration reproduces a byte-identical op schedule, and no sweep
// row violates the replay invariants.
func TestTraceSweepIdentityReplay(t *testing.T) {
	res := RunTraceSweep(traceTestScale)
	if len(res.Rows) != len(TraceCases())+1 {
		t.Fatalf("expected %d rows, got %d", len(TraceCases())+1, len(res.Rows))
	}
	if res.Rows[0].Ops == 0 {
		t.Fatal("baseline recorded no ops")
	}
	if len(res.Rows[0].Classes) == 0 {
		t.Fatal("baseline row carries no SLO class reports")
	}
	for _, row := range res.Rows {
		for _, v := range TraceRowViolations(row) {
			t.Error(v)
		}
	}
	for i, row := range res.Rows[1:] {
		if row.Ops != res.Rows[0].Ops {
			t.Errorf("%s: replayed %d ops, recorded %d", row.Label, row.Ops, res.Rows[0].Ops)
		}
		if res.Replays[i].OpSequence() != res.Baseline.OpSequence() {
			t.Errorf("%s: op sequence diverged from recording", row.Label)
		}
	}
	identity := res.Rows[1]
	if !identity.Identity {
		t.Fatalf("first case is not the identity replay: %+v", identity.Label)
	}
	if got, want := res.Replays[0].Schedule(), res.Baseline.Schedule(); got != want {
		t.Errorf("identity replay schedule differs from recording (hash %s vs %s)",
			res.Replays[0].ScheduleHash()[:12], res.Baseline.ScheduleHash()[:12])
	}
}

// TestTraceReplayDeterminism replays the same recording twice under
// the same configuration and requires byte-identical results —
// latencies included, not just the schedule.
func TestTraceReplayDeterminism(t *testing.T) {
	base, _ := RecordTraceBaseline(traceTestScale)
	c := TraceCases()[0]
	a, _ := ReplayTraceUnder(base, c, traceTestScale)
	b, _ := ReplayTraceUnder(base, c, traceTestScale)
	if a.Schedule() != b.Schedule() {
		t.Error("two identical replays produced different schedules")
	}
	for i := range a.Ops {
		if a.Ops[i].Latency != b.Ops[i].Latency {
			t.Fatalf("op %d: latency %v vs %v across identical replays",
				i, a.Ops[i].Latency, b.Ops[i].Latency)
		}
	}
}

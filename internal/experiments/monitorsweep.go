package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/vfsapi"
	"repro/internal/workloads"
)

// MonitorCase is one point of the monitor-sweep family: a client
// configuration running a victim tenant with a live telemetry monitor
// and SLO burn-rate alerting attached, disturbed mid-measurement by
// either an open-loop overload burst or a client crash. The sweep is
// the alerting story of the isolation argument: on the
// admission-protected Danaus client the victim's alert fires during
// the disturbance and clears once it passes, while the unprotected
// kernel client accumulates an open-loop backlog that keeps the victim
// in violation long after the burst stops.
type MonitorCase struct {
	Label     string
	Config    core.Configuration
	Protected bool
	// Fault selects the disturbance: "overload" (aggressor burst in
	// pool 1) or "crash" (client crash in the victim pool, host crash
	// for the kernel client).
	Fault string
	Kind  faults.Kind // crash kind when Fault == "crash"
}

// MonitorRow is the outcome of one monitor case.
type MonitorRow struct {
	Label     string
	Config    core.Configuration
	Protected bool
	Fault     string

	// SLOTarget is the calibrated latency target (overload cases): a
	// multiple of the same configuration's unloaded victim p99.
	SLOTarget time.Duration

	// Victim alert accounting for the monitored SLO.
	VictimFired   int
	VictimCleared int
	// VictimActiveEnd reports whether the victim alert was still firing
	// at the end of the measurement window — the sustained-violation
	// signal. It is judged at MeasureEnd, not at engine drain: once the
	// workload stops, a starved victim produces no more ops, its windows
	// go quiet, and the slow burn decays — a clear earned by silence, not
	// by recovery.
	VictimActiveEnd bool
	// MeasureEnd is the absolute virtual time the measurement window
	// closed; alert accounting above ignores ledger events after it.
	MeasureEnd time.Duration
	FirstFire  time.Duration // relative to measurement start (0 = never)
	LastClear  time.Duration
	// BystanderFired counts alerts on the other tenant — the alerting
	// view of blast radius.
	BystanderFired int

	Windows int // window rows emitted for all tenants

	// Monitor is the run's telemetry monitor, finalized; danausbench
	// exports its windows CSV and alert ledger.
	Monitor *telemetry.Monitor
	// Alerts is the full ledger (Monitor.Alerts, kept for convenience).
	Alerts []telemetry.AlertEvent
}

// Monitor sweep geometry, all relative to the measurement window so
// the sweep is scale-invariant: the fast window is 1/20 of the
// measurement (100ms at quick scale, 6s at paper scale), the slow
// confirmation window 5 fast windows, and the disturbance spans
// [20%, 45%] of the measurement so the post-disturbance tail is long
// enough for a recovered tenant's alert to clear.
const (
	monFastFrac    = 20
	monSlowFastN   = 5
	monFaultStart  = 0.20
	monFaultEnd    = 0.45
	monTargetScale = 1.25 // SLO target = monTargetScale x unloaded p99
	// monBurstMult sizes the burst so the unprotected client's open-loop
	// backlog outlives the post-burst measurement tail: the kernel
	// client drains roughly 45k ops/s, so 48x the base rate leaves it
	// saturated well past measurement end while the admission-protected
	// client sheds the excess and recovers within a few fast windows.
	monBurstMult = 48
)

// monVictimSLO is the name of the victim's monitored SLO.
const monVictimSLO = "victim-p99"

// MonitorCases returns the sweep: the protected Danaus client versus
// the unprotected kernel client, each under the overload burst and its
// native crash kind.
func MonitorCases() []MonitorCase {
	return []MonitorCase{
		{Label: "D+adm", Config: core.ConfigD, Protected: true, Fault: "overload"},
		{Label: "K", Config: core.ConfigK, Protected: false, Fault: "overload"},
		{Label: "D+adm", Config: core.ConfigD, Protected: true, Fault: "crash", Kind: faults.DanausCrash},
		{Label: "K", Config: core.ConfigK, Protected: false, Fault: "crash", Kind: faults.HostCrash},
	}
}

// RunMonitorSweep executes every case.
func RunMonitorSweep(scale Scale) []MonitorRow {
	cases := MonitorCases()
	rows := make([]MonitorRow, 0, len(cases))
	for _, c := range cases {
		rows = append(rows, RunMonitorCase(c, scale))
	}
	return rows
}

// monitorConfig derives the monitor windows from the scale.
func monitorConfig(scale Scale, slos []telemetry.SLO) telemetry.Config {
	fast := scale.Duration / monFastFrac
	if fast < time.Millisecond {
		fast = time.Millisecond
	}
	return telemetry.Config{
		FastWindow: fast,
		SlowWindow: monSlowFastN * fast,
		// The monitor ticker closes windows through event gaps (a
		// starved victim stops producing events exactly when the alert
		// must keep evaluating) and samples queue depth peaks.
		SampleInterval: fast / 4,
		SLOs:           slos,
	}
}

// calibrateVictim measures the victim's unloaded baseline for the
// configuration: the same testbed, pools, and reader, no disturbance,
// no monitor. It returns the p99 latency and the completions per fast
// window. The overload SLO is set from both, which is what a
// production burn-rate SLO would be: a latency target and a throughput
// floor derived from the service's own baseline.
func calibrateVictim(c MonitorCase, scale Scale) (time.Duration, uint64) {
	tb, victim, _ := monitorTestbed(c, scale, nil)
	stats := workloads.NewStats()
	runMonitorLoad(tb, victim, nil, nil, scale, stats, nil)
	return stats.Latency.Quantile(0.99), stats.Ops.Ops / monFastFrac
}

// monitorTestbed builds the two-pool testbed for a case: victim pool
// 0, aggressor/bystander pool 1, overload protection per the case.
// When mon is non-nil, an observability recorder and the monitor are
// attached BEFORE the pools are created, so every mount gets the
// traced facade that feeds the monitor.
func monitorTestbed(c MonitorCase, scale Scale, mon *telemetry.Monitor) (*core.Testbed, *core.Container, *core.Container) {
	var pol *core.OverloadPolicy
	if c.Protected {
		pol = &core.OverloadPolicy{RetrySeed: 1}
	}
	tb := core.NewTestbed(core.TestbedConfig{Cores: 4, Params: scale.Params(), Overload: pol})
	if mon != nil {
		tb.AttachObserver(obs.New(obs.Config{Clock: tb.Eng.Now}))
		tb.AttachMonitor(mon)
	}
	r := &rig{tb: tb}
	_, victim, err := r.flsContainer(0, c.Config, scale)
	if err != nil {
		panic(err)
	}
	_, agg, err := r.flsContainer(1, c.Config, scale)
	if err != nil {
		panic(err)
	}
	return tb, victim, agg
}

// monitorBurst describes the open-loop disturbance of an overload
// case; From/Stop are resolved against the measurement window once
// preparation has finished.
type monitorBurst struct {
	Rate       float64
	From, Stop time.Duration // absolute virtual times
	Agg        *core.Container
}

// runMonitorLoad drives one monitored run: the victim reads a cold
// dataset closed-loop for the whole measurement; byst, when non-nil,
// runs a warm reader in the other pool (the bystander whose alerts
// measure blast radius); crashPlan, when non-nil, is installed at
// measurement start. SLO counting on mon is armed at measurement start
// so cache-cold warmup latencies stay out of the ledger. The victim's
// measured latencies land in vicStats; the return value is the
// absolute virtual time the measurement ended.
func runMonitorLoad(tb *core.Testbed, victim, byst *core.Container, mon *telemetry.Monitor, scale Scale, vicStats *workloads.Stats, crashPlan *faults.Plan) time.Duration {
	r := &rig{tb: tb}
	coldSize := scale.PoolMem() + scale.PoolMem()/2
	const readChunk = 128 << 10
	const warmSize = 16 << 20
	var measureEnd time.Duration

	r.runMaster(func(p *sim.Proc) {
		preps := []func(pp *sim.Proc){func(pp *sim.Proc) {
			prepColdFile(pp, victim, "/cold", coldSize)
		}}
		if byst != nil {
			preps = append(preps, func(pp *sim.Proc) {
				// Written through the same path as the cold file; at
				// 16MB it stays resident in the bystander's cache.
				prepColdFile(pp, byst, "/warm", warmSize)
			})
		}
		prepare(p, r.tb.Eng, preps...)

		clock := clockFor(r.tb.Eng, scale)
		measureEnd = clock.Stop
		mon.ArmSLOs(clock.From, clock.Stop)
		if crashPlan != nil {
			if _, err := faults.InstallWithTargets(r.tb.Eng, r.tb.Cluster, r.tb, *crashPlan, clock.From); err != nil {
				panic(err)
			}
		}

		g := workloads.NewGroup(r.tb.Eng)
		g.Go("victim-reader", func(pp *sim.Proc) {
			ctx := vfsapi.Ctx{P: pp, T: victim.NewThread()}
			h, err := victim.Mount.Default.Open(ctx, "/cold", vfsapi.RDONLY)
			if err != nil {
				panic(err)
			}
			defer func() { h.Close(ctx) }()
			var off int64
			for !clock.Done() {
				start := pp.Now()
				n, rerr := h.Read(ctx, off, readChunk)
				now := pp.Now()
				if rerr != nil {
					if clock.Measuring() {
						vicStats.Errors++
					}
					pp.Sleep(time.Millisecond)
					// A crash invalidates the handle; reopen once the
					// client is back.
					if nh, oerr := victim.Mount.Default.Open(ctx, "/cold", vfsapi.RDONLY); oerr == nil {
						h.Close(ctx)
						h = nh
					}
				} else if clock.Measuring() {
					vicStats.Record(n, now-start)
				}
				off += readChunk
				if off >= coldSize {
					off = 0
				}
			}
		})
		if byst != nil {
			g.Go("bystander-reader", func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: byst.NewThread()}
				h, err := byst.Mount.Default.Open(ctx, "/warm", vfsapi.RDONLY)
				if err != nil {
					panic(err)
				}
				defer func() { h.Close(ctx) }()
				var off int64
				for !clock.Done() {
					_, rerr := h.Read(ctx, off, readChunk)
					if rerr != nil {
						pp.Sleep(time.Millisecond)
						if nh, oerr := byst.Mount.Default.Open(ctx, "/warm", vfsapi.RDONLY); oerr == nil {
							h.Close(ctx)
							h = nh
						}
					}
					off += readChunk
					if off >= warmSize {
						off = 0
					}
				}
			})
		}
		g.Wait(p)
	})
	return measureEnd
}

// prepColdFile writes and fsyncs a cache-overflowing dataset.
func prepColdFile(pp *sim.Proc, cont *core.Container, path string, size int64) {
	ctx := vfsapi.Ctx{P: pp, T: cont.NewThread()}
	h, err := cont.Mount.Default.Open(ctx, path, vfsapi.CREATE|vfsapi.WRONLY)
	if err != nil {
		panic(err)
	}
	for written := int64(0); written < size; written += 1 << 20 {
		if _, err := h.Append(ctx, 1<<20); err != nil {
			panic(err)
		}
	}
	if err := h.Fsync(ctx); err != nil {
		panic(err)
	}
	if err := h.Close(ctx); err != nil {
		panic(err)
	}
}

// RunMonitorCase runs one monitored point. Overload cases first run an
// unloaded calibration pass to set the victim's latency SLO target,
// then the monitored run with the burst; crash cases monitor an
// error-rate SLO (a crash is an availability event, not a latency
// one). The case manages its own recorder and monitor — the sweep is
// about the monitor, so it is always attached regardless of the
// harness's -obs flags.
func RunMonitorCase(c MonitorCase, scale Scale) MonitorRow {
	row := MonitorRow{Label: c.Label, Config: c.Config, Protected: c.Protected, Fault: c.Fault}

	var slos []telemetry.SLO
	if c.Fault == "overload" {
		base, opsPerWin := calibrateVictim(c, scale)
		if base <= 0 {
			base = time.Millisecond
		}
		row.SLOTarget = time.Duration(float64(base) * monTargetScale)
		slos = []telemetry.SLO{{
			Name: monVictimSLO, Tenant: "fls0", Op: "read",
			Target: row.SLOTarget,
			// MinOps 1 plus a throughput floor at half the calibrated
			// rate: a starved victim completes almost nothing, so the
			// shortfall itself must burn budget — gating on completion
			// volume alone would mute the worst case.
			Budget: 0.05, FireBurn: 1.5, ClearBurn: 1, MinOps: 1,
			ExpectedOps: opsPerWin / 2,
		}}
	} else {
		slos = []telemetry.SLO{{
			Name: monVictimSLO, Op: "read",
			Budget: 0.05, FireBurn: 4, ClearBurn: 1, MinOps: 1,
		}}
	}

	mon := telemetry.New(monitorConfig(scale, slos))
	// Mute SLO counting until the load function knows the measurement
	// interval and arms it: without this, preparation windows with no
	// reads would trip the throughput floor before the workload exists.
	mon.ArmSLOs(time.Duration(1<<62), 0)
	tb, victim, agg := monitorTestbed(c, scale, mon)

	vicStats := workloads.NewStats()
	switch c.Fault {
	case "overload":
		b := &monitorBurst{Rate: overloadBaseRate * monBurstMult, Agg: agg}
		row.MeasureEnd = runMonitorLoadWithBurstWindow(tb, victim, b, mon, scale, vicStats)
	case "crash":
		plan := faults.Plan{Windows: []faults.Window{{
			Kind:   c.Kind,
			Tenant: monCrashTenant(c.Kind),
			Start:  time.Duration(float64(scale.Duration) * monFaultStart),
			End:    time.Duration(float64(scale.Duration) * monFaultEnd),
		}}}
		row.MeasureEnd = runMonitorLoad(tb, victim, agg, mon, scale, vicStats, &plan)
	default:
		panic("monitorsweep: unknown fault " + c.Fault)
	}

	tb.Obs.Finalize()
	row.Monitor = mon
	row.Alerts = mon.Alerts()
	row.Windows = len(mon.Windows())
	summarizeAlerts(&row)
	return row
}

// runMonitorLoadWithBurstWindow is runMonitorLoad plus the open-loop
// burst: the aggressor offers b.Rate inside [monFaultStart,
// monFaultEnd] of the measurement window, resolved after preparation.
// Returns the absolute virtual time the measurement ended.
func runMonitorLoadWithBurstWindow(tb *core.Testbed, victim *core.Container, b *monitorBurst, mon *telemetry.Monitor, scale Scale, vicStats *workloads.Stats) time.Duration {
	r := &rig{tb: tb}
	coldSize := scale.PoolMem() + scale.PoolMem()/2
	const readChunk = 128 << 10
	var measureEnd time.Duration

	r.runMaster(func(p *sim.Proc) {
		prepare(p, r.tb.Eng,
			func(pp *sim.Proc) { prepColdFile(pp, victim, "/cold", coldSize) },
			func(pp *sim.Proc) { prepColdFile(pp, b.Agg, "/cold", coldSize) },
		)

		clock := clockFor(r.tb.Eng, scale)
		measureEnd = clock.Stop
		mon.ArmSLOs(clock.From, clock.Stop)
		b.From = clock.From + time.Duration(float64(scale.Duration)*monFaultStart)
		b.Stop = clock.From + time.Duration(float64(scale.Duration)*monFaultEnd)

		g := workloads.NewGroup(r.tb.Eng)
		g.Go("victim-reader", func(pp *sim.Proc) {
			ctx := vfsapi.Ctx{P: pp, T: victim.NewThread()}
			h, err := victim.Mount.Default.Open(ctx, "/cold", vfsapi.RDONLY)
			if err != nil {
				panic(err)
			}
			defer func() { h.Close(ctx) }()
			var off int64
			for !clock.Done() {
				start := pp.Now()
				n, rerr := h.Read(ctx, off, readChunk)
				now := pp.Now()
				if rerr != nil {
					if clock.Measuring() {
						vicStats.Errors++
					}
					pp.Sleep(time.Millisecond)
				} else if clock.Measuring() {
					vicStats.Record(n, now-start)
				}
				off += readChunk
				if off >= coldSize {
					off = 0
				}
			}
		})
		g.Go("burst-starter", func(pp *sim.Proc) {
			if wait := b.From - pp.Now(); wait > 0 {
				pp.Sleep(wait)
			}
			ol := &workloads.OpenLoop{
				FS:        b.Agg.Mount.Default,
				Path:      "/cold",
				FileSize:  coldSize,
				OpSize:    overloadOpSize,
				Rate:      b.Rate,
				Seed:      42,
				NewThread: b.Agg.NewThread,
			}
			ol.Run(g, workloads.Clock{Eng: r.tb.Eng, From: b.From, Stop: b.Stop})
		})
		g.Wait(p)
	})
	return measureEnd
}

func monCrashTenant(k faults.Kind) string {
	if k == faults.HostCrash {
		return ""
	}
	return "fls0"
}

// summarizeAlerts folds the ledger into the row's victim/bystander
// accounting. Only events up to MeasureEnd count: after the workload
// stops, the engine drain closes empty victim windows whose silence
// decays the slow burn — a "clear" that reflects absence of traffic,
// not recovery. The full ledger (drain events included) stays on the
// row for export.
func summarizeAlerts(row *MonitorRow) {
	active := map[string]bool{}
	for _, e := range row.Alerts {
		if row.MeasureEnd > 0 && e.T > row.MeasureEnd {
			break
		}
		key := e.Tenant + "/" + e.SLO
		victim := e.Tenant == "fls0" && e.SLO == monVictimSLO
		switch e.State {
		case telemetry.AlertFiring:
			active[key] = true
			if victim {
				row.VictimFired++
				if row.FirstFire == 0 {
					row.FirstFire = e.T
				}
			} else {
				row.BystanderFired++
			}
		case telemetry.AlertClear:
			delete(active, key)
			if victim {
				row.VictimCleared++
				row.LastClear = e.T
			}
		}
	}
	row.VictimActiveEnd = active["fls0/"+monVictimSLO]
}

// MonitorRowViolations checks the alerting invariants on one row —
// the acceptance assertions of the sweep. Overload: the protected
// Danaus client must fire the victim's burn-rate alert during the
// burst AND clear it before the run ends, while the unprotected kernel
// client must fire and still be in violation at drain (the open-loop
// backlog outlives the burst). Crash: the victim's error alert must
// fire and clear on the tenant-scoped Danaus crash with the bystander
// untouched; the host crash must alert both tenants. Returns
// human-readable violations (empty = clean).
func MonitorRowViolations(r MonitorRow) []string {
	var v []string
	tag := fmt.Sprintf("monitorsweep %s %s", r.Label, r.Fault)
	if r.VictimFired == 0 {
		v = append(v, tag+": victim alert never fired")
		return v
	}
	switch r.Fault {
	case "overload":
		if r.Protected {
			if r.VictimCleared == 0 {
				v = append(v, tag+": protected victim alert never cleared")
			}
			if r.VictimActiveEnd {
				v = append(v, tag+": protected victim alert still firing at drain")
			}
		} else {
			if !r.VictimActiveEnd {
				v = append(v, tag+": unprotected victim recovered — expected sustained violation")
			}
		}
	case "crash":
		if r.Protected {
			if r.VictimCleared == 0 {
				v = append(v, tag+": victim error alert never cleared after recovery")
			}
			if r.BystanderFired != 0 {
				v = append(v, fmt.Sprintf("%s: containment violated: %d bystander alerts", tag, r.BystanderFired))
			}
		} else {
			if r.BystanderFired == 0 {
				v = append(v, tag+": host crash raised no bystander alert")
			}
		}
	}
	return v
}

// String renders a row for the harness.
func (r MonitorRow) String() string {
	prot := "off"
	if r.Protected {
		prot = "on"
	}
	end := "clear"
	if r.VictimActiveEnd {
		end = "FIRING"
	}
	return fmt.Sprintf("%-5s %-4s prot=%-3s %-8s target=%-12v fired=%d cleared=%d end=%-6s first=%-12v lastclear=%-12v byst=%d windows=%d",
		r.Label, r.Config, prot, r.Fault, r.SLOTarget,
		r.VictimFired, r.VictimCleared, end, r.FirstFire, r.LastClear,
		r.BystanderFired, r.Windows)
}

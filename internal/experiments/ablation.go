package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/vfsapi"
	"repro/internal/workloads"
)

// AblationRow compares a design choice against its removal.
type AblationRow struct {
	Name     string
	Baseline float64 // metric with the design as shipped
	Ablated  float64 // metric with the choice removed/changed
	Unit     string
}

// String renders the row for the harness.
func (r AblationRow) String() string {
	return fmt.Sprintf("%-24s baseline=%.1f%s ablated=%.1f%s (x%.2f)",
		r.Name, r.Baseline, r.Unit, r.Ablated, r.Unit, r.Ablated/r.Baseline)
}

// RunAblationClientLock reproduces the paper's §6.3.2 preliminary
// experiment: removing the coarse client_lock from the user-level
// client (fine-grained locking) lifts the cached sequential read
// throughput of Danaus.
func RunAblationClientLock(scale Scale) AblationRow {
	run := func(lockFraction float64) float64 {
		params := scale.Params()
		params.ClientLockCopyFraction = lockFraction
		r := &rig{tb: core.NewTestbed(core.TestbedConfig{Cores: 2, Params: params})}
		_, cont, err := r.flsContainer(0, core.ConfigD, scale)
		if err != nil {
			panic(err)
		}
		w := &workloads.SeqIO{
			FS: cont.Mount.Default, Dir: "/seq", NewThread: cont.NewThread,
		}
		w.Defaults(scale.Factor)
		r.runMaster(func(p *sim.Proc) {
			prepare(p, r.tb.Eng, func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: cont.NewThread()}
				if err := w.Prepare(ctx); err != nil {
					panic(err)
				}
			})
			clock := clockFor(r.tb.Eng, scale)
			g := workloads.NewGroup(r.tb.Eng)
			w.Run(g, clock)
			g.Wait(p)
		})
		return w.Stats.ThroughputMBps(scale.Duration)
	}
	base := run(model.Default().ClientLockCopyFraction)
	return AblationRow{
		Name:     "client_lock removal",
		Baseline: base,
		Ablated:  run(0), // refactored fine-grained client
		Unit:     "MB/s",
	}
}

// RunAblationWakeupElision quantifies the §3.5 polling service threads:
// with the poll window disabled, every IPC request pays the wakeup
// context switches, inflating Danaus's per-op cost.
func RunAblationWakeupElision(scale Scale) AblationRow {
	run := func(disablePolling bool) float64 {
		params := scale.Params()
		if disablePolling {
			params.IPCPollWindow = 0
		}
		r := &rig{tb: core.NewTestbed(core.TestbedConfig{Cores: 2, Params: params})}
		_, cont, err := r.flsContainer(0, core.ConfigD, scale)
		if err != nil {
			panic(err)
		}
		var switches float64
		r.runMaster(func(p *sim.Proc) {
			ctx := vfsapi.Ctx{P: p, T: cont.NewThread()}
			h, err := cont.Mount.Default.Open(ctx, "/f", vfsapi.CREATE|vfsapi.RDWR)
			if err != nil {
				panic(err)
			}
			for i := 0; i < 2000; i++ {
				h.Write(ctx, int64(i%16)<<10, 1<<10)
			}
			h.Close(ctx)
			switches = float64(cont.Pool.Acct.ContextSwitches())
		})
		return switches
	}
	return AblationRow{
		Name:     "IPC wakeup elision",
		Baseline: run(false),
		Ablated:  run(true),
		Unit:     " switches",
	}
}

// RunAblationThreadPinning quantifies the §3.5 thread-to-queue pinning:
// without it, application threads hop across core groups on every
// request.
func RunAblationThreadPinning(scale Scale) AblationRow {
	run := func(noPinning bool) float64 {
		params := scale.Params()
		r := &rig{tb: core.NewTestbed(core.TestbedConfig{Cores: 8, Params: params})}
		if err := r.tb.Cluster.ProvisionDir("/containers/abl"); err != nil {
			panic(err)
		}
		pool := r.tb.NewPool("abl", r.tb.CPU.AllMask(), scale.PoolMem())
		cont, err := pool.NewContainer("abl", core.MountSpec{Config: core.ConfigD, UpperDir: "/containers/abl"})
		if err != nil {
			panic(err)
		}
		fs := cont.Mount.Default
		if noPinning {
			// Rebuild the transport with pinning disabled, serving the
			// same filesystem instance.
			fs = ipc.New(r.tb.Eng, r.tb.CPU, params, cont.Mount.IPC.Inner(), ipc.Config{
				Name: "abl-nopin", Mask: pool.Mask, Acct: pool.Acct, NoPinning: true,
			})
		}
		w := &workloads.SeqIO{FS: fs, Dir: "/seq", Threads: 8, NewThread: cont.NewThread}
		w.Defaults(scale.Factor)
		r.runMaster(func(p *sim.Proc) {
			prepare(p, r.tb.Eng, func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: cont.NewThread()}
				if err := w.Prepare(ctx); err != nil {
					panic(err)
				}
			})
			clock := clockFor(r.tb.Eng, scale)
			g := workloads.NewGroup(r.tb.Eng)
			w.Run(g, clock)
			g.Wait(p)
		})
		return w.Stats.ThroughputMBps(scale.Duration)
	}
	return AblationRow{
		Name:     "IPC thread pinning",
		Baseline: run(false),
		Ablated:  run(true),
		Unit:     "MB/s",
	}
}

// RunAblationUnionIntegration quantifies the §3.1 filesystem
// integration principle: the Danaus union invoking the client through
// function calls versus crossing a FUSE transport between the two
// libservices (what F/F does).
func RunAblationUnionIntegration(scale Scale) AblationRow {
	startup := func(cfg core.Configuration) float64 {
		row := RunStartupScaleup(cfg, 8, scale)
		return row.RealTime.Seconds() * 1000
	}
	return AblationRow{
		Name:     "union-client integration",
		Baseline: startup(core.ConfigD),  // function calls between libservices
		Ablated:  startup(core.ConfigFF), // a FUSE crossing between the layers
		Unit:     "ms",
	}
}

// AllAblations runs the design-choice ablations DESIGN.md calls out.
func AllAblations(scale Scale) []AblationRow {
	return []AblationRow{
		RunAblationClientLock(scale),
		RunAblationWakeupElision(scale),
		RunAblationThreadPinning(scale),
		RunAblationUnionIntegration(scale),
		RunAblationImagePull(scale),
	}
}

// RunAblationImagePull contrasts the classic container-image flow (pull
// the image from the registry to local disk, expand it, then start)
// with Danaus serving root images directly from the shared filesystem
// with on-demand file transfers — the §8 "images and data on shared
// filesystem" lesson.
func RunAblationImagePull(scale Scale) AblationRow {
	// Shared-filesystem start: the Fig 8 startup over D at 8 clones.
	direct := RunStartupScaleup(core.ConfigD, 8, scale)

	// Classic flow: transfer the image bytes from the registry (the
	// cluster stands in) to the local disks and expand, once per
	// container, before the same startup runs from the local copy.
	r := newScaledRig(4, scale)
	params := r.tb.Params
	imageBytes := params.ExecBinaryBytes + params.MmapLibraryBytes +
		params.StartupAppFileBytes + int64(params.StartupOpCount)*(2<<10)
	var pullTime float64
	r.runMaster(func(p *sim.Proc) {
		pool := r.tb.NewPool("pull", r.tb.CPU.AllMask(), scale.PoolMem())
		th := r.tb.CPU.NewThread(pool.Acct, pool.Mask)
		ctx := vfsapi.Ctx{P: p, T: th}
		start := r.tb.Eng.Now()
		for i := 0; i < 8; i++ {
			// Download: registry -> host over the network.
			if err := r.tb.Cluster.ProvisionDir("/registry"); err != nil {
				panic(err)
			}
			if err := r.tb.Cluster.Provision(fmt.Sprintf("/registry/layer%02d", i), imageBytes); err != nil {
				panic(err)
			}
			info, ino, err := r.tb.Cluster.MetaLookup(ctx, fmt.Sprintf("/registry/layer%02d", i))
			if err != nil {
				panic(err)
			}
			r.tb.Cluster.Read(ctx, ino, 0, info.Size)
			// Expand onto the local disks.
			if err := r.tb.LocalStore.Provision(fmt.Sprintf("/var/lib/images/%02d", i), 0); err != nil {
				panic(err)
			}
			r.tb.LocalArray.Access(p, int64(i)<<30, imageBytes, true)
		}
		pullTime = (r.tb.Eng.Now() - start).Seconds() * 1000
	})

	return AblationRow{
		Name:     "image pull vs shared FS",
		Baseline: direct.RealTime.Seconds() * 1000, // start 8 clones directly
		Ablated:  pullTime,                         // just the pull+expand, before any start
		Unit:     "ms",
	}
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/vfsapi"
	"repro/internal/workloads"
)

// InterferenceRow is one bar (plus companion lines) of Fig 1 and
// Fig 6a/6b: a Fileserver deployment alone or next to a neighbour.
type InterferenceRow struct {
	// Label is the paper's workload symbol, e.g. "7FLS/K+1RND".
	Label string
	// FLSThroughputMBps is the aggregate Fileserver throughput.
	FLSThroughputMBps float64
	// NeighborCoreUtilPct is the utilization of the NEIGHBOUR pool's
	// reserved cores (sum over 2 cores: 0-200%). With the neighbour
	// idle this measures how much the kernel steals them for FLS.
	NeighborCoreUtilPct float64
	// LockWaitPerReq / LockHoldPerReq are kernel per-lock-request
	// times over the window (Fig 1b).
	LockWaitPerReq time.Duration
	LockHoldPerReq time.Duration

	// Diagnostics (not plotted in the paper).
	FLSCoreUtilPct float64       // utilization of the FLS pools' cores
	FLSIOWait      time.Duration // I/O wait accumulated by FLS pools
}

// InterferenceCase selects one bar of Fig 1/6a/6b.
type InterferenceCase struct {
	Config   core.Configuration // ConfigK or ConfigD
	FLSCount int                // 1 or 7
	Neighbor string             // "", "RND" or "WBS"
}

// Label renders the paper's symbol for the case.
func (c InterferenceCase) Label() string {
	s := fmt.Sprintf("%dFLS/%s", c.FLSCount, c.Config)
	if c.Neighbor != "" {
		s += "+1" + c.Neighbor
	}
	return s
}

// RunInterference executes one Fig 1/6a/6b case: FLSCount Fileserver
// instances over the given client configuration, with the neighbour
// pool always reserved (2 cores) and optionally running RND or WBS.
func RunInterference(c InterferenceCase, scale Scale) InterferenceRow {
	// Enabled cores: two per instance including the neighbour pool,
	// matching the paper's "twice the number of running instances".
	cores := 2 * (c.FLSCount + 1)
	r := newScaledRig(cores, scale)
	row := InterferenceRow{Label: c.Label()}

	// Fileserver pools and containers on the cluster.
	type flsInst struct {
		c *core.Container
		w *workloads.Fileserver
	}
	insts := make([]flsInst, c.FLSCount)
	for i := range insts {
		_, cont, err := r.flsContainer(i, c.Config, scale)
		if err != nil {
			panic(err)
		}
		insts[i] = flsInst{c: cont, w: newFileserver(cont, scale, int64(i)+1)}
	}

	// The neighbour pool occupies the last two cores.
	nbrMask := cpu.MaskRange(2*c.FLSCount, 2*c.FLSCount+2)
	nbrPool := r.tb.NewPool("neighbor", nbrMask, scale.PoolMem())

	var rnd *workloads.RandomIO
	var wbs *workloads.Webserver
	localFS := kernelLocalFS(r.tb)
	switch c.Neighbor {
	case "RND":
		rnd = &workloads.RandomIO{
			FS:         localFS,
			Path:       "/rndfile",
			NewThread:  func() *cpu.Thread { return r.tb.CPU.NewThread(nbrPool.Acct, nbrPool.Mask) },
			Seed:       99,
			LockStress: r.tb.Kernel.SmallOpLockStress,
		}
		rnd.Defaults(scale.Factor)
	case "WBS":
		wbs = &workloads.Webserver{
			FS:        localFS,
			Dir:       "/web",
			NewThread: func() *cpu.Thread { return r.tb.CPU.NewThread(nbrPool.Acct, nbrPool.Mask) },
			Seed:      77,
		}
		wbs.Defaults(scale.Factor)
	}

	r.runMaster(func(p *sim.Proc) {
		// Preparation: FLS filesets in parallel, neighbour dataset too.
		preps := make([]func(pp *sim.Proc), 0, len(insts)+1)
		for _, in := range insts {
			in := in
			preps = append(preps, func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: in.c.NewThread()}
				if err := in.w.Prepare(ctx); err != nil {
					panic(err)
				}
			})
		}
		if rnd != nil {
			preps = append(preps, func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: r.tb.CPU.NewThread(nbrPool.Acct, nbrPool.Mask)}
				if err := rnd.Prepare(ctx); err != nil {
					panic(err)
				}
			})
		}
		if wbs != nil {
			preps = append(preps, func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: r.tb.CPU.NewThread(nbrPool.Acct, nbrPool.Mask)}
				if err := wbs.Prepare(ctx); err != nil {
					panic(err)
				}
			})
		}
		prepare(p, r.tb.Eng, preps...)

		clock := clockFor(r.tb.Eng, scale)
		utilWindow(r.tb, clock, nbrMask, &row.NeighborCoreUtilPct)
		utilWindow(r.tb, clock, cpu.MaskRange(0, 2*c.FLSCount), &row.FLSCoreUtilPct)
		lockWindow(r.tb, clock, &row.LockWaitPerReq, &row.LockHoldPerReq)
		var iowaitStart time.Duration
		r.tb.Eng.After(clock.From-r.tb.Eng.Now(), func() {
			for _, in := range insts {
				iowaitStart += in.c.Pool.Acct.IOWait()
			}
		})
		defer func() {}()

		g := workloads.NewGroup(r.tb.Eng)
		for _, in := range insts {
			in.w.Run(g, clock)
		}
		if rnd != nil {
			rnd.Run(g, clock)
		}
		if wbs != nil {
			wbs.Run(g, clock)
		}
		g.Wait(p)

		var mbps float64
		for _, in := range insts {
			mbps += in.w.Stats.ThroughputMBps(clock.Window())
			row.FLSIOWait += in.c.Pool.Acct.IOWait()
		}
		row.FLSIOWait -= iowaitStart
		row.FLSThroughputMBps = mbps
	})
	return row
}

// kernelLocalFS returns the syscall-wrapped local ext4 filesystem of
// the host (where RND and WBS keep their data).
func kernelLocalFS(tb *core.Testbed) vfsapi.FileSystem {
	return newSyscallLocal(tb)
}

// Fig1Cases returns the §2.1 motivation cases (kernel client only).
func Fig1Cases() []InterferenceCase {
	return []InterferenceCase{
		{Config: core.ConfigK, FLSCount: 1},
		{Config: core.ConfigK, FLSCount: 1, Neighbor: "RND"},
		{Config: core.ConfigK, FLSCount: 7},
		{Config: core.ConfigK, FLSCount: 7, Neighbor: "RND"},
	}
}

// Fig6aCases returns the Fig 6a comparison (D vs K, with/without RND).
func Fig6aCases() []InterferenceCase {
	var out []InterferenceCase
	for _, cfg := range []core.Configuration{core.ConfigK, core.ConfigD} {
		for _, n := range []int{1, 7} {
			out = append(out,
				InterferenceCase{Config: cfg, FLSCount: n},
				InterferenceCase{Config: cfg, FLSCount: n, Neighbor: "RND"},
			)
		}
	}
	return out
}

// Fig6bCases returns the Fig 6b comparison (D vs K, with/without WBS).
func Fig6bCases() []InterferenceCase {
	var out []InterferenceCase
	for _, cfg := range []core.Configuration{core.ConfigK, core.ConfigD} {
		for _, n := range []int{1, 7} {
			out = append(out,
				InterferenceCase{Config: cfg, FLSCount: n},
				InterferenceCase{Config: cfg, FLSCount: n, Neighbor: "WBS"},
			)
		}
	}
	return out
}

// SysbenchRow is one group of Fig 6c: latencies of the colocated pair.
type SysbenchRow struct {
	Label string
	// SSBLatencyP99 is the 99th percentile Sysbench event latency.
	SSBLatencyP99 time.Duration
	// FLSLatencyAvg is the mean Fileserver operation latency.
	FLSLatencyAvg time.Duration
	// SSBCoreUtilPct is utilization of the SSB pool's cores.
	SSBCoreUtilPct float64
}

// SysbenchCase selects one Fig 6c group.
type SysbenchCase struct {
	Config  core.Configuration
	WithSSB bool
}

// Label renders the paper's symbol.
func (c SysbenchCase) Label() string {
	s := "1FLS/" + c.Config.String()
	if c.WithSSB {
		s += "+1SSB"
	}
	return s
}

// Fig6cCases returns the Fig 6c comparison.
func Fig6cCases() []SysbenchCase {
	return []SysbenchCase{
		{Config: core.ConfigK, WithSSB: false},
		{Config: core.ConfigK, WithSSB: true},
		{Config: core.ConfigD, WithSSB: false},
		{Config: core.ConfigD, WithSSB: true},
	}
}

// RunSysbench executes one Fig 6c case: 1 FLS instance next to an
// optional Sysbench CPU instance.
func RunSysbench(c SysbenchCase, scale Scale) SysbenchRow {
	r := newScaledRig(4, scale)
	row := SysbenchRow{Label: c.Label()}
	_, cont, err := r.flsContainer(0, c.Config, scale)
	if err != nil {
		panic(err)
	}
	fls := newFileserver(cont, scale, 1)

	ssbMask := cpu.MaskRange(2, 4)
	ssbPool := r.tb.NewPool("ssb", ssbMask, scale.PoolMem())
	ssb := &workloads.Sysbench{
		NewThread: func() *cpu.Thread { return r.tb.CPU.NewThread(ssbPool.Acct, ssbPool.Mask) },
	}
	ssb.Defaults()

	r.runMaster(func(p *sim.Proc) {
		prepare(p, r.tb.Eng, func(pp *sim.Proc) {
			ctx := vfsapi.Ctx{P: pp, T: cont.NewThread()}
			if err := fls.Prepare(ctx); err != nil {
				panic(err)
			}
		})
		clock := clockFor(r.tb.Eng, scale)
		utilWindow(r.tb, clock, ssbMask, &row.SSBCoreUtilPct)
		g := workloads.NewGroup(r.tb.Eng)
		fls.Run(g, clock)
		if c.WithSSB {
			ssb.Run(g, clock)
		}
		g.Wait(p)
		row.FLSLatencyAvg = fls.Stats.Latency.Mean()
		if c.WithSSB {
			row.SSBLatencyP99 = ssb.Stats.Latency.Quantile(0.99)
		}
	})
	return row
}

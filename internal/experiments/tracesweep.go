package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/blame"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfsapi"
	"repro/internal/workloads"
)

// The trace-sweep family records one production-shaped run under the
// Danaus configuration and replays the captured op stream against
// other client configurations — the same arrivals, byte for byte, so
// every latency delta is attributable to the client stack rather than
// to workload noise. See TRACES.md for the workflow.

// Trace-sweep sizing. The fileset is shared by the record run and
// every replay run: replay reissues the recorded ops against a
// freshly prepared, identical fileset.
const (
	traceTenants  = 2
	traceFiles    = 16
	traceOpSize   = 32 << 10
	tracePeakRate = 250.0
	traceUsers    = 1000
)

// traceFileSize scales the per-file size with the experiment.
func traceFileSize(scale Scale) int64 {
	fs := int64(float64(16<<20) * scale.Factor)
	if fs < 256<<10 {
		fs = 256 << 10
	}
	return fs
}

// TraceCase is one replay target of the sweep.
type TraceCase struct {
	Label     string
	Config    core.Configuration
	Admission bool // enable the overload-protection policy
	// Identity marks the replay-under-the-recorded-configuration case,
	// whose schedule must reproduce the recording byte-identically.
	Identity bool
}

// TraceCases returns the sweep: identity replay under D (the
// determinism check), the kernel client, and D with admission control.
func TraceCases() []TraceCase {
	return []TraceCase{
		{Label: "D", Config: core.ConfigD, Identity: true},
		{Label: "K", Config: core.ConfigK},
		{Label: "D+adm", Config: core.ConfigD, Admission: true},
	}
}

// TraceClassRow is one (tenant, SLO class) percentile report of the
// recording run.
type TraceClassRow struct {
	Name       string // tenant/class
	Target     time.Duration
	Tail       trace.Tail
	Violations uint64
}

// TraceTenantRow is one tenant's tail latency in a replay, with ratios
// against the recorded baseline.
type TraceTenantRow struct {
	Tenant    string
	Tail      trace.Tail
	RatioP99  float64
	RatioP999 float64
}

// TraceRow is the outcome of one trace-sweep run (the recording, or
// one replay).
type TraceRow struct {
	Label     string
	Config    core.Configuration
	Admission bool
	Baseline  bool // the recording run itself
	Identity  bool

	Ops     int
	Errors  int
	Skipped int
	// ScheduleMatch reports a byte-identical op schedule against the
	// recording (issue times included); SequenceMatch the time-free
	// per-stream op equality every replay must preserve. Both are true
	// on the baseline row by definition.
	ScheduleMatch bool
	SequenceMatch bool

	Tenants []TraceTenantRow
	Classes []TraceClassRow // baseline run only

	// Buckets is the blame decomposition per request (host-wide);
	// ShiftBucket/ShiftPerReq name the bucket that moved most against
	// the baseline and by how much per request.
	Buckets     []blame.Bucket
	ShiftBucket string
	ShiftPerReq time.Duration
}

// TraceSweepResult bundles the sweep's rows with the traces behind
// them, so the harness can export the recording and per-case diffs.
type TraceSweepResult struct {
	Baseline *trace.Trace
	Rows     []TraceRow
	// Replays holds the re-recorded trace of each replay case, parallel
	// to Rows[1:].
	Replays []*trace.Trace
}

// ensureObs attaches a plain recorder (no sampling) when the harness
// has not installed one: trace capture and blame analysis both need
// the span layer live.
func ensureObs(tb *core.Testbed) *obs.Recorder {
	if tb.Obs == nil {
		tb.AttachObserver(obs.New(obs.Config{Clock: tb.Eng.Now}))
	}
	return tb.Obs
}

// prepTraceFiles creates the production fileset in one container:
// traceFiles files of traceFileSize bytes each, fsynced.
func prepTraceFiles(cont *core.Container, size int64) func(pp *sim.Proc) {
	return func(pp *sim.Proc) {
		ctx := vfsapi.Ctx{P: pp, T: cont.NewThread()}
		fs := cont.Mount.Default
		if err := fs.Mkdir(ctx, "/prod"); err != nil {
			panic(err)
		}
		for i := 0; i < traceFiles; i++ {
			h, err := fs.Open(ctx, fmt.Sprintf("/prod/f%05d", i), vfsapi.CREATE|vfsapi.WRONLY)
			if err != nil {
				panic(err)
			}
			for written := int64(0); written < size; written += 1 << 20 {
				chunk := size - written
				if chunk > 1<<20 {
					chunk = 1 << 20
				}
				if _, err := h.Append(ctx, chunk); err != nil {
					panic(err)
				}
			}
			if err := h.Fsync(ctx); err != nil {
				panic(err)
			}
			if err := h.Close(ctx); err != nil {
				panic(err)
			}
		}
	}
}

// RecordTraceBaseline runs the production-shaped workload — Zipf user
// popularity, diurnal arrivals, SLO classes — on two Danaus pools and
// captures the op stream. Capture starts after fileset preparation, so
// the trace holds exactly the workload's ops with issue times relative
// to capture start.
func RecordTraceBaseline(scale Scale) (*trace.Trace, TraceRow) {
	tb := core.NewTestbed(core.TestbedConfig{Cores: 4, Params: scale.Params()})
	if Observer != nil {
		Observer(tb)
	}
	rec := ensureObs(tb)
	r := &rig{tb: tb}
	row := TraceRow{
		Label: "rec", Config: core.ConfigD, Baseline: true,
		ScheduleMatch: true, SequenceMatch: true,
	}

	conts := make([]*core.Container, traceTenants)
	for i := range conts {
		_, c, err := r.flsContainer(i, core.ConfigD, scale)
		if err != nil {
			panic(err)
		}
		conts[i] = c
	}

	capRec := trace.NewRecorder("D", 0)
	var captured *trace.Trace
	r.runMaster(func(p *sim.Proc) {
		preps := make([]func(*sim.Proc), len(conts))
		for i, c := range conts {
			preps[i] = prepTraceFiles(c, traceFileSize(scale))
		}
		prepare(p, tb.Eng, preps...)

		clock := clockFor(tb.Eng, scale)
		capRec.SetBase(tb.Eng.Now())
		capRec.Attach(rec)

		g := workloads.NewGroup(tb.Eng)
		prods := make([]*workloads.Production, len(conts))
		for i, c := range conts {
			w := &workloads.Production{
				FS: c.Mount.Default, Dir: "/prod",
				Files: traceFiles, FileSize: traceFileSize(scale), OpSize: traceOpSize,
				Users: traceUsers, PeakRate: tracePeakRate,
				Diurnal:   workloads.Diurnal{Period: scale.Duration, Trough: 0.3},
				Seed:      int64(1000 + i),
				NewThread: c.NewThread,
			}
			prods[i] = w
			w.Run(g, clock)
		}
		g.Wait(p)
		rec.SetOpSink(nil)
		captured = capRec.Snapshot()

		for i, w := range prods {
			tenant := fmt.Sprintf("fls%d", i)
			for _, cs := range w.PerClass {
				row.Classes = append(row.Classes, TraceClassRow{
					Name: tenant + "/" + cs.Name, Target: cs.Target,
					Tail: trace.TailOf(cs.Stats.Latency), Violations: cs.Violations,
				})
			}
		}
	})

	row.Ops = len(captured.Ops)
	for i := range captured.Ops {
		if captured.Ops[i].Err {
			row.Errors++
		}
	}
	tails := captured.TenantTails()
	for _, tenant := range captured.Tenants() {
		row.Tenants = append(row.Tenants, TraceTenantRow{
			Tenant: tenant, Tail: tails[tenant], RatioP99: 1, RatioP999: 1,
		})
	}
	row.Buckets = perRequestBuckets(blame.Analyze("rec", rec))
	return captured, row
}

// ReplayTraceUnder replays a recorded trace against the case's
// configuration on a fresh testbed with an identically prepared
// fileset, and reports tail latency and blame against the recording.
func ReplayTraceUnder(t *trace.Trace, c TraceCase, scale Scale) (*trace.Trace, TraceRow) {
	var pol *core.OverloadPolicy
	if c.Admission {
		pol = &core.OverloadPolicy{RetrySeed: 1}
	}
	tb := core.NewTestbed(core.TestbedConfig{Cores: 4, Params: scale.Params(), Overload: pol})
	if Observer != nil {
		Observer(tb)
	}
	rec := ensureObs(tb)
	r := &rig{tb: tb}
	row := TraceRow{Label: c.Label, Config: c.Config, Admission: c.Admission, Identity: c.Identity}

	bindings := map[string]trace.Binding{}
	conts := make([]*core.Container, traceTenants)
	for i := range conts {
		_, cont, err := r.flsContainer(i, c.Config, scale)
		if err != nil {
			panic(err)
		}
		conts[i] = cont
		bindings[fmt.Sprintf("fls%d", i)] = trace.Binding{
			FS: cont.Mount.Default, NewThread: cont.NewThread,
		}
	}

	var replayed *trace.Trace
	var stats *trace.ReplayStats
	r.runMaster(func(p *sim.Proc) {
		preps := make([]func(*sim.Proc), len(conts))
		for i, cont := range conts {
			preps[i] = prepTraceFiles(cont, traceFileSize(scale))
		}
		prepare(p, tb.Eng, preps...)
		replayed, stats = trace.Replay(p, tb.Eng, t, c.Label,
			func(tenant string) (trace.Binding, bool) {
				b, ok := bindings[tenant]
				return b, ok
			})
	})

	row.Ops, row.Errors, row.Skipped = stats.Ops, stats.Errors, stats.Skipped
	d := trace.Compare(t, replayed)
	row.ScheduleMatch = d.ScheduleEqual
	row.SequenceMatch = d.SequenceEqual
	for _, tr := range d.TenantRows() {
		row.Tenants = append(row.Tenants, TraceTenantRow{
			Tenant: tr.Tenant, Tail: tr.B,
			RatioP99: tr.RatioP99(), RatioP999: tr.RatioP999(),
		})
	}
	row.Buckets = perRequestBuckets(blame.Analyze(c.Label, rec))
	return replayed, row
}

// RunTraceSweep records the baseline and replays it under every case,
// filling per-tenant tail ratios and the dominant blame-bucket shift
// against the recording.
func RunTraceSweep(scale Scale) *TraceSweepResult {
	base, baseRow := RecordTraceBaseline(scale)
	res := &TraceSweepResult{Baseline: base, Rows: []TraceRow{baseRow}}
	for _, c := range TraceCases() {
		rt, row := ReplayTraceUnder(base, c, scale)
		row.ShiftBucket, row.ShiftPerReq = bucketShift(baseRow.Buckets, row.Buckets)
		res.Replays = append(res.Replays, rt)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// perRequestBuckets folds a blame report into host-wide per-request
// bucket durations, sorted by name.
func perRequestBuckets(rep blame.Report) []blame.Bucket {
	total := map[string]time.Duration{}
	requests := 0
	for _, t := range rep.Tenants {
		requests += t.Requests
		for _, b := range t.Buckets {
			total[b.Name] += b.Dur
		}
	}
	if requests == 0 {
		return nil
	}
	out := make([]blame.Bucket, 0, len(total))
	for name, dur := range total {
		out = append(out, blame.Bucket{Name: name, Dur: dur / time.Duration(requests)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// bucketShift returns the bucket whose per-request duration moved most
// between the baseline and the replay, and the signed delta.
func bucketShift(base, replay []blame.Bucket) (string, time.Duration) {
	names := map[string]bool{}
	for _, b := range base {
		names[b.Name] = true
	}
	for _, b := range replay {
		names[b.Name] = true
	}
	var topName string
	var topDelta time.Duration
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		delta := blame.BucketDur(replay, n) - blame.BucketDur(base, n)
		abs := delta
		if abs < 0 {
			abs = -abs
		}
		top := topDelta
		if top < 0 {
			top = -top
		}
		if abs > top {
			topName, topDelta = n, delta
		}
	}
	return topName, topDelta
}

// TraceRowViolations checks the replay invariants on one row: no
// recorded tenant may be unbound, every replay must preserve the
// per-stream op sequence, and the identity replay must reproduce the
// recorded schedule byte-identically.
func TraceRowViolations(r TraceRow) []string {
	if r.Baseline {
		return nil
	}
	var v []string
	if r.Skipped > 0 {
		v = append(v, fmt.Sprintf("tracesweep %s: %d ops skipped (unbound tenant)", r.Label, r.Skipped))
	}
	if !r.SequenceMatch {
		v = append(v, fmt.Sprintf("tracesweep %s: replay reordered or rewrote the op sequence", r.Label))
	}
	if r.Identity && !r.ScheduleMatch {
		v = append(v, fmt.Sprintf("tracesweep %s: identity replay diverged from the recorded schedule", r.Label))
	}
	return v
}

// String renders a row for the harness.
func (r TraceRow) String() string {
	var b strings.Builder
	if r.Baseline {
		fmt.Fprintf(&b, "%-6s %-4s            ops=%-6d err=%-4d", r.Label, r.Config, r.Ops, r.Errors)
		for _, t := range r.Tenants {
			fmt.Fprintf(&b, " | %s p50=%-9v p99=%-9v p999=%v",
				t.Tenant, t.Tail.P50.Round(time.Microsecond),
				t.Tail.P99.Round(time.Microsecond), t.Tail.P999.Round(time.Microsecond))
		}
		for _, c := range r.Classes {
			fmt.Fprintf(&b, " | %s p99=%v slo=%v viol=%d/%d",
				c.Name, c.Tail.P99.Round(time.Microsecond), c.Target, c.Violations, c.Tail.Count)
		}
		return b.String()
	}
	adm := "off"
	if r.Admission {
		adm = "on"
	}
	match := func(m bool) string {
		if m {
			return "match"
		}
		return "DRIFT"
	}
	fmt.Fprintf(&b, "%-6s %-4s adm=%-3s ops=%-6d err=%-4d skip=%d sched=%s seq=%s",
		r.Label, r.Config, adm, r.Ops, r.Errors, r.Skipped,
		match(r.ScheduleMatch), match(r.SequenceMatch))
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, " | %s p99=%-9v x%-5.2f p999=%-9v x%-5.2f",
			t.Tenant, t.Tail.P99.Round(time.Microsecond), t.RatioP99,
			t.Tail.P999.Round(time.Microsecond), t.RatioP999)
	}
	if r.ShiftBucket != "" {
		fmt.Fprintf(&b, " | shift %s %+v/req", r.ShiftBucket, r.ShiftPerReq.Round(time.Microsecond))
	}
	return b.String()
}

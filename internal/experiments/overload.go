package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vfsapi"
	"repro/internal/workloads"
)

// OverloadCase is one point of the overload-sweep family: a client
// configuration, with or without the overload-protection policy,
// driven by an open-loop aggressor at a multiple of the base offered
// load while a closed-loop victim measures tail latency.
type OverloadCase struct {
	Label      string
	Config     core.Configuration
	Protected  bool // admission control + breaker + brownout enabled
	Multiplier int  // offered load = Multiplier x base rate; 0 = unloaded
}

// OverloadRow is the outcome of one overload case.
type OverloadRow struct {
	Label      string
	Config     core.Configuration
	Protected  bool
	Multiplier int

	// OfferedRate is the aggressor's configured arrival rate (req/s).
	OfferedRate float64
	// Open-loop aggressor accounting over the whole run.
	Offered   uint64
	Completed uint64
	Shed      uint64
	Failed    uint64
	// ShedRate is Shed/Offered.
	ShedRate float64

	// Victim tail latency inside the measurement window, and its ratio
	// to the same configuration's unloaded (Multiplier 0) value.
	VictimP99      time.Duration
	VictimP99Ratio float64
	VictimMBps     float64

	// Admission is the aggressor pool's admission snapshot after the
	// run drained (zero when unprotected); QueueCap its configured
	// bound — the bounded-queue invariant is Admission.MaxQueued <=
	// QueueCap.
	Admission vfsapi.AdmissionStats
	QueueCap  int

	// BreakerOpens and BrownoutFlips count degraded-mode activity.
	BreakerOpens  uint64
	BrownoutFlips uint64
}

// overloadBaseRate is the base (1x) offered load in requests per
// second. It is chosen so 1x approaches the backend's service capacity
// for cold 256 KiB reads and 4x is firmly past it.
const overloadBaseRate = 1500.0

// overloadOpSize is the aggressor's per-request read size.
const overloadOpSize = 256 << 10

// OverloadCases returns the sweep: the protected Danaus client versus
// the unprotected kernel client at 0x (unloaded baseline), 1x, 2x and
// 4x offered load.
func OverloadCases() []OverloadCase {
	var cases []OverloadCase
	for _, mult := range []int{0, 1, 2, 4} {
		cases = append(cases, OverloadCase{
			Label: "D+adm", Config: core.ConfigD, Protected: true, Multiplier: mult,
		})
	}
	for _, mult := range []int{0, 1, 2, 4} {
		cases = append(cases, OverloadCase{
			Label: "K", Config: core.ConfigK, Protected: false, Multiplier: mult,
		})
	}
	return cases
}

// RunOverloadSweep executes every case and fills VictimP99Ratio
// against each configuration's own unloaded baseline.
func RunOverloadSweep(scale Scale) []OverloadRow {
	cases := OverloadCases()
	rows := make([]OverloadRow, 0, len(cases))
	baseline := map[string]time.Duration{}
	for _, c := range cases {
		row := RunOverloadCase(c, scale)
		if c.Multiplier == 0 {
			baseline[c.Label] = row.VictimP99
		}
		if base := baseline[c.Label]; base > 0 {
			row.VictimP99Ratio = float64(row.VictimP99) / float64(base)
		}
		rows = append(rows, row)
	}
	return rows
}

// RunOverloadCase runs one overload point: victim pool 0 issues
// closed-loop cold reads (the tail-latency probe), aggressor pool 1 is
// driven by the open-loop Poisson generator at the case's offered
// load. Both pools mount the case's configuration; the protection
// policy applies testbed-wide when the case is protected.
func RunOverloadCase(c OverloadCase, scale Scale) OverloadRow {
	var pol *core.OverloadPolicy
	if c.Protected {
		pol = &core.OverloadPolicy{RetrySeed: 1}
	}
	tb := core.NewTestbed(core.TestbedConfig{Cores: 4, Params: scale.Params(), Overload: pol})
	if Observer != nil {
		Observer(tb)
	}
	r := &rig{tb: tb}

	row := OverloadRow{
		Label: c.Label, Config: c.Config, Protected: c.Protected,
		Multiplier:  c.Multiplier,
		OfferedRate: overloadBaseRate * float64(c.Multiplier),
	}

	_, victim, err := r.flsContainer(0, c.Config, scale)
	if err != nil {
		panic(err)
	}
	aggPool, agg, err := r.flsContainer(1, c.Config, scale)
	if err != nil {
		panic(err)
	}

	// Both datasets overflow their pool's cache so reads keep hitting
	// the shared backend — the resource the aggressor overloads.
	coldSize := scale.PoolMem() + scale.PoolMem()/2
	const readChunk = 128 << 10

	r.runMaster(func(p *sim.Proc) {
		prepCold := func(cont *core.Container) func(pp *sim.Proc) {
			return func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: cont.NewThread()}
				h, err := cont.Mount.Default.Open(ctx, "/cold", vfsapi.CREATE|vfsapi.WRONLY)
				if err != nil {
					panic(err)
				}
				for written := int64(0); written < coldSize; written += 1 << 20 {
					if _, err := h.Append(ctx, 1<<20); err != nil {
						panic(err)
					}
				}
				if err := h.Fsync(ctx); err != nil {
					panic(err)
				}
				if err := h.Close(ctx); err != nil {
					panic(err)
				}
			}
		}
		prepare(p, r.tb.Eng, prepCold(victim), prepCold(agg))

		clock := clockFor(r.tb.Eng, scale)
		vicStats := workloads.NewStats()
		aggStats := workloads.NewStats()

		g := workloads.NewGroup(r.tb.Eng)
		g.Go("victim-reader", func(pp *sim.Proc) {
			ctx := vfsapi.Ctx{P: pp, T: victim.NewThread()}
			h, err := victim.Mount.Default.Open(ctx, "/cold", vfsapi.RDONLY)
			if err != nil {
				panic(err)
			}
			defer h.Close(ctx)
			var off int64
			for !clock.Done() {
				start := pp.Now()
				n, rerr := h.Read(ctx, off, readChunk)
				now := pp.Now()
				if rerr != nil {
					if clock.Measuring() {
						vicStats.Errors++
					}
					pp.Sleep(time.Millisecond)
				} else if clock.Measuring() {
					vicStats.Record(n, now-start)
				}
				off += readChunk
				if off >= coldSize {
					off = 0
				}
			}
		})

		var ol *workloads.OpenLoop
		if c.Multiplier > 0 {
			ol = &workloads.OpenLoop{
				FS:        agg.Mount.Default,
				Path:      "/cold",
				FileSize:  coldSize,
				OpSize:    overloadOpSize,
				Rate:      row.OfferedRate,
				Seed:      42,
				NewThread: agg.NewThread,
				Stats:     aggStats,
			}
			ol.Run(g, clock)
		}
		g.Wait(p)

		window := clock.Window()
		row.VictimP99 = vicStats.Latency.Quantile(0.99)
		row.VictimMBps = vicStats.ThroughputMBps(window)
		if ol != nil {
			row.Offered = ol.Offered
			row.Completed = ol.Completed
			row.Shed = ol.Shed
			row.Failed = ol.Failed
			if ol.Offered > 0 {
				row.ShedRate = float64(ol.Shed) / float64(ol.Offered)
			}
		}
		if a := aggPool.Admission; a != nil {
			row.Admission = a.Stats()
			row.QueueCap = a.QueueCap()
		}
		for _, cl := range []*core.Container{victim, agg} {
			if cl.Mount.Client != nil {
				row.BreakerOpens += cl.Mount.Client.BreakerStats().Opens
			}
		}
		row.BrownoutFlips = r.tb.Kernel.BrownoutFlips()
	})
	return row
}

// OverloadRowViolations checks the overload invariants on one row:
// the admission queue never exceeded its configured cap, and every
// offered operation is accounted admitted, shed, or still in flight.
// It returns human-readable violation descriptions (empty = clean).
func OverloadRowViolations(r OverloadRow) []string {
	var v []string
	if r.QueueCap > 0 && r.Admission.MaxQueued > r.QueueCap {
		v = append(v, fmt.Sprintf("overloadsweep %s %dx: bounded-queue violated: max queued %d > cap %d",
			r.Label, r.Multiplier, r.Admission.MaxQueued, r.QueueCap))
	}
	a := r.Admission
	if a.Offered != a.Admitted+a.Shed+uint64(a.InFlight) {
		v = append(v, fmt.Sprintf("overloadsweep %s %dx: admission accounting violated: offered %d != admitted %d + shed %d + in-flight %d",
			r.Label, r.Multiplier, a.Offered, a.Admitted, a.Shed, a.InFlight))
	}
	return v
}

// FaultRowViolations checks the standing faultsweep invariant on one
// row: no acknowledged data may be lost while the cluster holds a
// surviving replica.
func FaultRowViolations(r FaultSweepRow) []string {
	if r.Replication >= 2 && r.DataLossBytes > 0 {
		return []string{fmt.Sprintf("faultsweep %s %s r=%d: zero-data-loss violated: %d acked bytes unrecoverable",
			r.Config, r.Label, r.Replication, r.DataLossBytes)}
	}
	return nil
}

// String renders a row for the harness.
func (r OverloadRow) String() string {
	prot := "off"
	if r.Protected {
		prot = "on"
	}
	return fmt.Sprintf("%-5s %-4s prot=%-3s load=%dx (%5.0f req/s) victim p99 %-12v x%-5.2f %6.1f MB/s  offered=%-6d done=%-6d shed=%-6d (%4.1f%%) maxq=%-3d opens=%-3d brownouts=%d",
		r.Label, r.Config, prot, r.Multiplier, r.OfferedRate,
		r.VictimP99, r.VictimP99Ratio, r.VictimMBps,
		r.Offered, r.Completed, r.Shed, 100*r.ShedRate,
		r.Admission.MaxQueued, r.BreakerOpens, r.BrownoutFlips)
}

package experiments

import (
	"fmt"

	"repro/internal/blame"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vfsapi"
	"repro/internal/workloads"
)

// BlameSweepCase selects one scenario of the blame sweep: Fileserver
// instances of one client configuration, optionally next to the
// RandomIO lock-stress neighbour — the Fig 1 interference narrative
// the blame engine exists to explain.
type BlameSweepCase struct {
	Config   core.Configuration // ConfigK or ConfigD
	FLSCount int
	Neighbor bool // colocate the RND neighbour on its reserved cores
}

// Label renders the case in the paper's workload notation.
func (c BlameSweepCase) Label() string {
	s := fmt.Sprintf("%dFLS/%s", c.FLSCount, c.Config)
	if c.Neighbor {
		s += "+1RND"
	}
	return s
}

// BlameSweepCases returns the swept scenarios: the kernel client alone,
// the kernel client with the lock-stress neighbour (where flusher core
// theft and i_mutex/lru_lock interference appear), and Danaus under
// the same pressure for contrast.
func BlameSweepCases() []BlameSweepCase {
	return []BlameSweepCase{
		{Config: core.ConfigK, FLSCount: 2},
		{Config: core.ConfigK, FLSCount: 2, Neighbor: true},
		{Config: core.ConfigD, FLSCount: 2, Neighbor: true},
	}
}

// RunBlameSweep executes one blame-sweep case with its own recorder
// (independent of the danausbench -trace hook) and returns the blame
// analysis of the full run plus the recording itself, for artifact
// export and leak/determinism checks. A non-nil WhatIf re-runs the
// scenario under the modified cost model: parameter knobs rewrite the
// testbed's Params before construction, and flusher pinning confines
// the kernel writeback threads to the Fileserver pools' own cores so
// they cannot steal the neighbour's reservation.
func RunBlameSweep(c BlameSweepCase, scale Scale, w *blame.WhatIf) (blame.Report, *obs.Recorder) {
	cores := 2 * (c.FLSCount + 1)
	params := scale.Params()
	if w != nil {
		w.Apply(params)
	}
	tb := core.NewTestbed(core.TestbedConfig{Cores: cores, Params: params})
	// SampleInterval stays zero: the recorder adds no engine events, so
	// the schedule is event-for-event the unobserved one.
	rec := obs.New(obs.Config{Clock: tb.Eng.Now})
	tb.AttachObserver(rec)
	if w != nil && w.FlusherPinned {
		tb.Kernel.SetFlusherMask(cpu.MaskRange(0, 2*c.FLSCount))
	}
	r := &rig{tb: tb}

	label := c.Label()
	if w != nil && w.Spec != "" {
		label += " [" + w.Spec + "]"
	}

	type flsInst struct {
		c *core.Container
		w *workloads.Fileserver
	}
	insts := make([]flsInst, c.FLSCount)
	for i := range insts {
		_, cont, err := r.flsContainer(i, c.Config, scale)
		if err != nil {
			panic(err)
		}
		insts[i] = flsInst{c: cont, w: newFileserver(cont, scale, int64(i)+1)}
	}

	nbrMask := cpu.MaskRange(2*c.FLSCount, 2*c.FLSCount+2)
	nbrPool := r.tb.NewPool("neighbor", nbrMask, scale.PoolMem())
	var rnd *workloads.RandomIO
	if c.Neighbor {
		rnd = &workloads.RandomIO{
			FS:         kernelLocalFS(r.tb),
			Path:       "/rndfile",
			NewThread:  func() *cpu.Thread { return r.tb.CPU.NewThread(nbrPool.Acct, nbrPool.Mask) },
			Seed:       99,
			LockStress: r.tb.Kernel.SmallOpLockStress,
		}
		rnd.Defaults(scale.Factor)
	}

	r.runMaster(func(p *sim.Proc) {
		preps := make([]func(pp *sim.Proc), 0, len(insts)+1)
		for _, in := range insts {
			in := in
			preps = append(preps, func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: in.c.NewThread()}
				if err := in.w.Prepare(ctx); err != nil {
					panic(err)
				}
			})
		}
		if rnd != nil {
			preps = append(preps, func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: r.tb.CPU.NewThread(nbrPool.Acct, nbrPool.Mask)}
				if err := rnd.Prepare(ctx); err != nil {
					panic(err)
				}
			})
		}
		prepare(p, r.tb.Eng, preps...)

		clock := clockFor(r.tb.Eng, scale)
		g := workloads.NewGroup(r.tb.Eng)
		for _, in := range insts {
			in.w.Run(g, clock)
		}
		if rnd != nil {
			rnd.Run(g, clock)
		}
		g.Wait(p)
	})

	return blame.Analyze(label, rec), rec
}

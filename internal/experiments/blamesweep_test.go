package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/blame"
	"repro/internal/core"
	"repro/internal/obs"
)

// TestBlameDecompositionInvariant runs the contended blame-sweep case
// at quick scale and checks the engine's core contract on the real
// workload: every traced request's buckets sum exactly to its span
// duration in virtual time, the residual is never negative, and every
// span opened during the run was closed by engine drain.
func TestBlameDecompositionInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	c := BlameSweepCase{Config: core.ConfigK, FLSCount: 2, Neighbor: true}
	rep, rec := RunBlameSweep(c, QuickScale, nil)

	if leaks := rec.LeakedSpans(); len(leaks) != 0 {
		t.Fatalf("%d spans leaked at engine drain: %v", len(leaks), leaks)
	}
	if rep.Requests == 0 {
		t.Fatal("no traced requests")
	}
	for _, r := range rep.PerRequest {
		var sum time.Duration
		for _, b := range r.Buckets {
			sum += b.Dur
			if b.Name == blame.BucketOther && b.Dur < 0 {
				t.Errorf("span %d (%s %s): negative residual %v — wait intervals overlap",
					r.Span, r.Tenant, r.Op, b.Dur)
			}
		}
		if sum != r.Dur {
			t.Errorf("span %d (%s %s): sum(buckets)=%v != dur=%v",
				r.Span, r.Tenant, r.Op, sum, r.Dur)
		}
	}

	// The contended case must actually show blame: requests spent time
	// on the CPU, and the interference matrix is non-empty.
	var cpuRun time.Duration
	for _, tn := range rep.Tenants {
		cpuRun += blame.BucketDur(tn.Buckets, blame.BucketCPURun)
	}
	if cpuRun == 0 {
		t.Error("no cpu-run time attributed in any tenant")
	}
	if len(rep.Interference) == 0 {
		t.Error("contended run produced an empty interference matrix")
	}
}

// TestBlameSweepGolden requires the exported blame artifacts to be
// byte-identical across two identical runs — the determinism contract
// the blamesweep artifacts inherit from the engine.
func TestBlameSweepGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	c := BlameSweepCase{Config: core.ConfigK, FLSCount: 2, Neighbor: true}
	rep1, _ := RunBlameSweep(c, QuickScale, nil)
	rep2, _ := RunBlameSweep(c, QuickScale, nil)

	var j1, j2, c1, c2 bytes.Buffer
	if err := blame.WriteJSON(&j1, []blame.Report{rep1}); err != nil {
		t.Fatal(err)
	}
	if err := blame.WriteJSON(&j2, []blame.Report{rep2}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("blame JSON artifacts not byte-identical across identical runs")
	}
	if err := blame.WriteCSV(&c1, []blame.Report{rep1}); err != nil {
		t.Fatal(err)
	}
	if err := blame.WriteCSV(&c2, []blame.Report{rep2}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("blame CSV artifacts not byte-identical across identical runs")
	}
	if !strings.Contains(j1.String(), `"cpu-run"`) {
		t.Error("blame JSON missing decomposition buckets")
	}
}

// TestBlameWhatIf exercises the full what-if cycle on the contended
// case: predict from the baseline decomposition, deterministically
// re-run under the modified model, and compare.
func TestBlameWhatIf(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	c := BlameSweepCase{Config: core.ConfigK, FLSCount: 2, Neighbor: true}
	base, _ := RunBlameSweep(c, QuickScale, nil)

	w, err := blame.ParseWhatIf("lockcs=0.5,flusher=pinned")
	if err != nil {
		t.Fatal(err)
	}
	measured, rec := RunBlameSweep(c, QuickScale, &w)
	if leaks := rec.LeakedSpans(); len(leaks) != 0 {
		t.Fatalf("what-if re-run leaked spans: %v", leaks)
	}

	cmp := blame.CompareWhatIf(w, base, measured)
	if len(cmp.Rows) == 0 {
		t.Fatal("what-if comparison has no rows")
	}
	for _, r := range cmp.Rows {
		if r.Baseline <= 0 || r.Predicted <= 0 {
			t.Errorf("degenerate row: %+v", r)
		}
		if r.Measured <= 0 {
			t.Errorf("re-run has no measurement for %s: %+v", r.Tenant, r)
		}
	}
	var buf bytes.Buffer
	blame.RenderWhatIf(&buf, cmp)
	if !strings.Contains(buf.String(), "lockcs=0.5") {
		t.Errorf("rendered what-if missing spec:\n%s", buf.String())
	}
}

// runFaultObserved runs the combined-fault sweep case with a recorder
// attached, returning the row and the recording.
func runFaultObserved(t *testing.T) (FaultSweepRow, *obs.Recorder) {
	t.Helper()
	var rec *obs.Recorder
	Observer = func(tb *core.Testbed) {
		rec = obs.New(obs.Config{
			Clock:          tb.Eng.Now,
			SampleInterval: 10 * time.Millisecond,
			MaxEvents:      200_000,
		})
		tb.AttachObserver(rec)
	}
	defer func() { Observer = nil }()
	cases := FaultSweepCases(QuickScale)
	var fc *FaultSweepCase
	for i := range cases {
		if cases[i].Schedule != "" {
			fc = &cases[i]
			break
		}
	}
	if fc == nil {
		t.Fatal("no fault-sweep case with a schedule")
	}
	row := RunFaultSweep(*fc, QuickScale)
	return row, rec
}

// TestObservabilityUnderFaults closes the fault/observability gap: with
// an active fault schedule (OSD crash + net spike + MDS stall) the
// trace and metrics artifacts must still be byte-identical across
// identical runs, spans must not leak, and the metrics JSON must carry
// the victim's fault-handling counters.
func TestObservabilityUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	row1, rec1 := runFaultObserved(t)
	row2, rec2 := runFaultObserved(t)
	if row1 != row2 {
		t.Fatalf("recorded fault runs diverged:\n  %+v\nvs\n  %+v", row1, row2)
	}
	if row1.Faults.Retries+row1.Faults.Failovers == 0 {
		t.Fatal("fault schedule exercised no fault handling")
	}
	if leaks := rec1.LeakedSpans(); len(leaks) != 0 {
		t.Fatalf("spans leaked under faults: %v", leaks)
	}

	var t1, t2, m1, m2 bytes.Buffer
	if err := obs.WriteTrace(&t1, []obs.Run{{Label: "run0", Rec: rec1}}); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteTrace(&t2, []obs.Run{{Label: "run0", Rec: rec2}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("trace artifacts differ across identical fault runs")
	}
	if err := obs.WriteMetrics(&m1, []obs.Run{{Label: "run0", Rec: rec1}}); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteMetrics(&m2, []obs.Run{{Label: "run0", Rec: rec2}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
		t.Fatal("metrics artifacts differ across identical fault runs")
	}
	if !strings.Contains(m1.String(), `"faults"`) {
		t.Fatal("metrics JSON missing fault counters under an active schedule")
	}
	// The blame engine keeps working mid-fault: decompose the same
	// recording and check the invariant on every traced request.
	rep := blame.Decompose("faults", rec1)
	if rep.Requests == 0 {
		t.Fatal("no traced requests under faults")
	}
	for _, r := range rep.PerRequest {
		var sum time.Duration
		for _, b := range r.Buckets {
			sum += b.Dur
		}
		if sum != r.Dur {
			t.Errorf("span %d: sum(buckets)=%v != dur=%v under faults", r.Span, sum, r.Dur)
		}
	}
}

package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/kern"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vfsapi"
	"repro/internal/workloads"
)

// FaultSweepCase is one point of the fault-sweep family: a client
// configuration and replication level driven through a deterministic
// fault schedule while a victim and a bystander tenant run side by
// side.
type FaultSweepCase struct {
	Label       string
	Config      core.Configuration
	Replication int
	// Schedule is a faults.Parse schedule with times relative to the
	// start of the measurement window. The token "@wal" is replaced by
	// the OSD index holding the victim WAL's first object, so the crash
	// always lands on data the victim owns.
	Schedule string
}

// FaultSweepRow is the outcome of one fault-sweep case.
type FaultSweepRow struct {
	Label       string
	Config      core.Configuration
	Replication int

	// Victim probes: a fsync-per-append WAL writer and a cold
	// sequential reader forced to the backend by cache pressure.
	VictimWriteMBps float64
	VictimReadMBps  float64
	// BystanderMBps is the cache-resident reader in the second pool,
	// measuring collateral damage of the victim's faults.
	BystanderMBps float64
	VictimOps     uint64
	VictimErrors  uint64

	// RecoveryTime is the time from the first fault arming until the
	// first victim operation that completed *through* the fault path
	// (its success coincided with a retry or failover), i.e. how long
	// until the client demonstrably worked around the fault. Zero when
	// no fault was scheduled or no operation needed the fault path.
	RecoveryTime time.Duration

	// Fault-handling counters summed over the victim's client.
	Faults metrics.FaultCounters

	// DataLossBytes is acknowledged-but-unrecoverable WAL bytes:
	// fsync-acked size minus what the cluster can reconstruct from live
	// objects and backfill logs. Must be zero at replication >= 2.
	DataLossBytes int64
}

// FaultSweepCases returns the harness sweep: a no-fault baseline, the
// combined crash+spike+stall schedule against the user-level and the
// kernel client at replication 2, and an unreplicated long crash that
// exercises the bounded-retry error path.
func FaultSweepCases(scale Scale) []FaultSweepCase {
	frac := func(f float64) time.Duration {
		return time.Duration(float64(scale.Duration) * f)
	}
	span := func(a, b float64) string {
		return fmt.Sprintf("%v-%v", frac(a), frac(b))
	}
	combined := fmt.Sprintf("osd-crash:@wal:%s;net-spike:client:500us:%s;mds-stall:%s",
		span(0.25, 0.6), span(0.4, 0.7), span(0.5, 0.55))
	long := fmt.Sprintf("osd-crash:@wal:%s", span(0.25, 0.85))
	return []FaultSweepCase{
		{Label: "baseline", Config: core.ConfigD, Replication: 2, Schedule: ""},
		{Label: "crash+spike+stall", Config: core.ConfigD, Replication: 2, Schedule: combined},
		{Label: "crash+spike+stall", Config: core.ConfigK, Replication: 2, Schedule: combined},
		{Label: "long-crash", Config: core.ConfigD, Replication: 1, Schedule: long},
	}
}

// mountFaultStats sums the fault counters of whichever Ceph clients
// back the mount.
func mountFaultStats(m *core.MountResult) metrics.FaultCounters {
	var total metrics.FaultCounters
	if m.Client != nil {
		total.Add(m.Client.FaultStats())
	}
	if m.KernelMount != nil {
		if cs, ok := m.KernelMount.Store().(*kern.CephStore); ok {
			total.Add(cs.FaultStats())
		}
	}
	return total
}

// RunFaultSweep executes one fault-sweep case: victim pool 0 runs the
// WAL writer and the cold reader, bystander pool 1 a cached reader,
// and the schedule is installed relative to the measurement window.
func RunFaultSweep(c FaultSweepCase, scale Scale) FaultSweepRow {
	r := newScaledRig(4, scale)
	r.tb.Cluster.SetReplication(c.Replication)
	row := FaultSweepRow{Label: c.Label, Config: c.Config, Replication: c.Replication}

	_, victim, err := r.flsContainer(0, c.Config, scale)
	if err != nil {
		panic(err)
	}
	_, byst, err := r.flsContainer(1, c.Config, scale)
	if err != nil {
		panic(err)
	}

	// The cold file overflows the victim's cache so reads keep hitting
	// the backend; the bystander file fits comfortably.
	coldSize := scale.PoolMem() + scale.PoolMem()/2
	const warmSize = 16 << 20
	const walOp = 64 << 10
	const readChunk = 256 << 10

	r.runMaster(func(p *sim.Proc) {
		prepare(p, r.tb.Eng,
			func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: victim.NewThread()}
				h, err := victim.Mount.Default.Open(ctx, "/wal", vfsapi.CREATE|vfsapi.WRONLY)
				if err != nil {
					panic(err)
				}
				if err := h.Close(ctx); err != nil {
					panic(err)
				}
				cold, err := victim.Mount.Default.Open(ctx, "/cold", vfsapi.CREATE|vfsapi.WRONLY)
				if err != nil {
					panic(err)
				}
				for written := int64(0); written < coldSize; written += 1 << 20 {
					if _, err := cold.Append(ctx, 1<<20); err != nil {
						panic(err)
					}
				}
				if err := cold.Fsync(ctx); err != nil {
					panic(err)
				}
				if err := cold.Close(ctx); err != nil {
					panic(err)
				}
			},
			func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: byst.NewThread()}
				h, err := byst.Mount.Default.Open(ctx, "/warm", vfsapi.CREATE|vfsapi.WRONLY)
				if err != nil {
					panic(err)
				}
				if _, err := h.Append(ctx, warmSize); err != nil {
					panic(err)
				}
				if err := h.Fsync(ctx); err != nil {
					panic(err)
				}
				if err := h.Close(ctx); err != nil {
					panic(err)
				}
			},
		)

		clock := clockFor(r.tb.Eng, scale)

		walNode, err := r.tb.Cluster.Tree().Lookup("/containers/fls0/wal")
		if err != nil {
			panic(err)
		}
		walIno := walNode.Ino
		sched := strings.ReplaceAll(c.Schedule, "@wal",
			strconv.Itoa(r.tb.Cluster.PlacementOf(walIno, 0)))
		plan, err := faults.Parse(sched)
		if err != nil {
			panic(err)
		}
		if _, err := faults.Install(r.tb.Eng, r.tb.Cluster, plan, clock.From); err != nil {
			panic(err)
		}
		var faultAbs time.Duration
		if !plan.Empty() {
			faultAbs = clock.From + plan.Windows[0].Start
		}

		writer := workloads.NewStats()
		reader := workloads.NewStats()
		warm := workloads.NewStats()
		var acked, walSize int64
		var firstSurvived time.Duration

		// noteSurvival records the first victim op whose success
		// coincided with retry/failover activity after the fault armed.
		noteSurvival := func(before metrics.FaultCounters, t time.Duration) {
			if faultAbs == 0 || t < faultAbs || firstSurvived != 0 {
				return
			}
			after := mountFaultStats(victim.Mount)
			if after.Retries > before.Retries || after.Failovers > before.Failovers {
				firstSurvived = t
			}
		}

		g := workloads.NewGroup(r.tb.Eng)
		g.Go("wal-writer", func(pp *sim.Proc) {
			ctx := vfsapi.Ctx{P: pp, T: victim.NewThread()}
			h, err := victim.Mount.Default.Open(ctx, "/wal", vfsapi.WRONLY)
			if err != nil {
				panic(err)
			}
			defer h.Close(ctx)
			for !clock.Done() {
				before := mountFaultStats(victim.Mount)
				start := pp.Now()
				_, werr := h.Append(ctx, walOp)
				if werr == nil {
					walSize += walOp
					werr = h.Fsync(ctx)
				}
				now := pp.Now()
				if werr != nil {
					if clock.Measuring() {
						writer.Errors++
					}
					pp.Sleep(time.Millisecond)
					continue
				}
				// A successful fsync drained every dirty extent of the
				// WAL, so everything appended so far is acknowledged.
				acked = walSize
				noteSurvival(before, now)
				if clock.Measuring() {
					writer.Record(walOp, now-start)
				}
			}
		})
		g.Go("cold-reader", func(pp *sim.Proc) {
			ctx := vfsapi.Ctx{P: pp, T: victim.NewThread()}
			h, err := victim.Mount.Default.Open(ctx, "/cold", vfsapi.RDONLY)
			if err != nil {
				panic(err)
			}
			defer h.Close(ctx)
			var off int64
			for !clock.Done() {
				before := mountFaultStats(victim.Mount)
				start := pp.Now()
				n, rerr := h.Read(ctx, off, readChunk)
				now := pp.Now()
				if rerr != nil {
					if clock.Measuring() {
						reader.Errors++
					}
					pp.Sleep(time.Millisecond)
					off += readChunk
				} else {
					noteSurvival(before, now)
					if clock.Measuring() {
						reader.Record(n, now-start)
					}
					off += readChunk
				}
				if off >= coldSize {
					off = 0
				}
			}
		})
		g.Go("bystander", func(pp *sim.Proc) {
			ctx := vfsapi.Ctx{P: pp, T: byst.NewThread()}
			h, err := byst.Mount.Default.Open(ctx, "/warm", vfsapi.RDONLY)
			if err != nil {
				panic(err)
			}
			defer h.Close(ctx)
			var off int64
			for !clock.Done() {
				start := pp.Now()
				n, rerr := h.Read(ctx, off, 128<<10)
				now := pp.Now()
				if rerr != nil {
					if clock.Measuring() {
						warm.Errors++
					}
					pp.Sleep(time.Millisecond)
				} else if clock.Measuring() {
					warm.Record(n, now-start)
				}
				off += 128 << 10
				if off >= warmSize {
					off = 0
				}
			}
		})
		g.Wait(p)

		window := clock.Window()
		row.VictimWriteMBps = writer.ThroughputMBps(window)
		row.VictimReadMBps = reader.ThroughputMBps(window)
		row.BystanderMBps = warm.ThroughputMBps(window)
		row.VictimOps = writer.Ops.Ops + reader.Ops.Ops
		row.VictimErrors = writer.Errors + reader.Errors
		if firstSurvived > 0 {
			row.RecoveryTime = firstSurvived - faultAbs
		}
		row.Faults = mountFaultStats(victim.Mount)
		if loss := acked - r.tb.Cluster.StoredSize(walIno); loss > 0 {
			row.DataLossBytes = loss
		}
	})
	return row
}

// String renders a row for the harness.
func (r FaultSweepRow) String() string {
	return fmt.Sprintf("%-4s r=%d %-17s wal %6.1f MB/s read %6.1f MB/s byst %6.1f MB/s  ops=%-5d err=%-3d recover=%-10v retries=%-4d failovers=%-4d misses=%-3d degraded=%-10v loss=%d",
		r.Config, r.Replication, r.Label,
		r.VictimWriteMBps, r.VictimReadMBps, r.BystanderMBps,
		r.VictimOps, r.VictimErrors, r.RecoveryTime,
		r.Faults.Retries, r.Faults.Failovers, r.Faults.DeadlineMisses,
		r.Faults.TimeDegraded, r.DataLossBytes)
}

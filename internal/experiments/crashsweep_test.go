package experiments

import (
	"testing"

	"repro/internal/faults"
)

// TestCrashSweepContainment runs the whole crash-sweep family at quick
// scale and asserts the paper's blast-radius claim row by row through
// the same invariant checker the harness uses: a Danaus libservice or
// FUSE daemon crash degrades only the crashed tenant, a kernel-client
// crash interrupts every pool on the host, recovery completes, and no
// fsync-acknowledged byte is lost.
func TestCrashSweepContainment(t *testing.T) {
	for _, c := range CrashSweepCases() {
		row := RunCrashSweep(c, QuickScale)
		for _, v := range CrashRowViolations(row) {
			t.Error(v)
		}
		if row.VictimRepair <= 0 {
			t.Errorf("%s: victim never completed an operation after the crash", c.Label)
		}
		if row.Kind != faults.HostCrash && row.BystanderMBps == 0 {
			t.Errorf("%s: bystander made no progress", c.Label)
		}
	}
}

// TestCrashSweepDeterminism re-runs the same crash-sweep case twice and
// requires byte-identical rows: the crash schedule, the recovery
// protocol, and every probe around them replay exactly under the
// deterministic engine.
func TestCrashSweepDeterminism(t *testing.T) {
	for _, c := range CrashSweepCases() {
		a := RunCrashSweep(c, QuickScale).String()
		b := RunCrashSweep(c, QuickScale).String()
		if a != b {
			t.Errorf("%s: same-seed runs diverge:\n  %s\n  %s", c.Label, a, b)
		}
	}
}

package experiments

import (
	"os"
	"testing"

	"repro/internal/core"
)

// TestCalibrateFig6a prints the Fig 6a comparison for calibration runs.
// Enable with CALIBRATE=1.
func TestCalibrateFig6a(t *testing.T) {
	if os.Getenv("CALIBRATE") == "" {
		t.Skip("set CALIBRATE=1 to run")
	}
	for _, c := range []InterferenceCase{
		{Config: core.ConfigK, FLSCount: 1},
		{Config: core.ConfigK, FLSCount: 1, Neighbor: "RND"},
		{Config: core.ConfigD, FLSCount: 1},
		{Config: core.ConfigD, FLSCount: 1, Neighbor: "RND"},
		{Config: core.ConfigK, FLSCount: 7},
		{Config: core.ConfigK, FLSCount: 7, Neighbor: "RND"},
		{Config: core.ConfigD, FLSCount: 7},
		{Config: core.ConfigD, FLSCount: 7, Neighbor: "RND"},
	} {
		row := RunInterference(c, QuickScale)
		t.Logf("%-14s  %8.1f MB/s  nbr %6.1f%%  fls %6.1f%%  iowait %10v  wait %10v hold %10v",
			row.Label, row.FLSThroughputMBps, row.NeighborCoreUtilPct, row.FLSCoreUtilPct, row.FLSIOWait, row.LockWaitPerReq, row.LockHoldPerReq)
	}
}

// Package model centralizes the cost-model constants of the simulation.
//
// Every duration or rate that calibrates the discrete-event model lives
// here, so that the relationship between a mechanism (a mode switch, a
// page-cache copy, a lock hold) and its cost is stated exactly once.
// The defaults are calibrated so the reproduced experiments match the
// *shape* of the paper's results (who wins, rough factors, crossovers)
// on the paper's testbed: a 64-core AMD Opteron 6378 client at 2.4 GHz
// with a 20 Gbps bonded NIC, against a Ceph cluster of 6 ramdisk OSDs
// and 1 MDS.
package model

import "time"

// Params holds every tunable of the cost model. Use Default for the
// calibrated configuration; tests override individual fields.
type Params struct {
	// --- Processor ---

	// Quantum is the scheduler time slice: a thread releasing a core
	// after each quantum gives round-robin sharing among contenders.
	Quantum time.Duration
	// ModeSwitchCost is the direct CPU cost of one user/kernel mode
	// switch (trap + return, TLB effects amortized in).
	ModeSwitchCost time.Duration
	// ContextSwitchCost is the CPU cost of switching between threads,
	// paid on each FUSE daemon handoff and on IPC service-thread
	// wakeups (both directions).
	ContextSwitchCost time.Duration
	// MemcpyBytesPerSec is single-core copy bandwidth. Every data
	// movement between caches, buffers and application memory is
	// charged at this rate.
	MemcpyBytesPerSec int64
	// ChecksumBytesPerSec is single-core CRC bandwidth charged by the
	// storage client on wire transfers.
	ChecksumBytesPerSec int64

	// --- Kernel (VFS, page cache, writeback) ---

	// VFSOpCost is fixed in-kernel CPU per VFS operation (path walk,
	// dispatch) beyond lock costs.
	VFSOpCost time.Duration
	// PageSize is the unit of page-cache accounting.
	PageSize int64
	// LRULockHoldPerPage is the hold time of the global page-cache LRU
	// lock charged per page inserted or reclaimed. High combined page
	// rates across tenants queue on this lock (Fig 1b).
	LRULockHoldPerPage time.Duration
	// IMutexHold is the hold time of a per-superblock inode mutex
	// charged per mutating VFS operation.
	IMutexHold time.Duration
	// WritebackLockHold is the hold time of the global writeback list
	// lock charged per dirtying operation and per flusher pass.
	WritebackLockHold time.Duration
	// WritebackInterval is the periodic flusher wakeup (Linux
	// dirty_writeback_centisecs = 5s in the paper's setup... the paper
	// keeps the defaults of 5s expire and 1s writeback).
	WritebackInterval time.Duration
	// DirtyExpire is the age beyond which dirty data is written out
	// regardless of volume.
	DirtyExpire time.Duration
	// FlusherBytesPerSec is per-flusher-thread CPU-limited writeback
	// preparation rate (page scanning + submission). The network adds
	// its own time on top.
	FlusherBytesPerSec int64
	// NumFlushers is the number of kernel writeback threads; they may
	// run on ANY activated core of the host — this is the core-stealing
	// mechanism of Fig 1a.
	NumFlushers int
	// DirtyThrottleCheck is how long a throttled writer sleeps before
	// re-checking the dirty threshold.
	DirtyThrottleCheck time.Duration

	// --- Network ---

	// ClientNICBytesPerSec is the client host's bonded NIC capacity in
	// each direction (20 Gbps = 2.5 GB/s).
	ClientNICBytesPerSec int64
	// ServerNICBytesPerSec is each server VM's NIC capacity per
	// direction (10 GbE).
	ServerNICBytesPerSec int64
	// NetLatency is one-way propagation+switching latency.
	NetLatency time.Duration
	// NetMTU is the transfer chunking unit for pipelining large
	// messages across links.
	NetMTU int64
	// NetCPUBytesPerSec is protocol-processing CPU rate: sending or
	// receiving B bytes costs B/NetCPUBytesPerSec of kernel CPU on the
	// caller's eligible cores.
	NetCPUBytesPerSec int64
	// NetOpCost is fixed per-message kernel CPU (syscall, interrupt).
	NetOpCost time.Duration

	// --- Local disks ---

	// DiskSeqBytesPerSec is sequential throughput of one local disk.
	DiskSeqBytesPerSec int64
	// DiskSeekTime is the positioning cost for a non-contiguous access.
	DiskSeekTime time.Duration
	// DiskStripeUnit is the RAID0 stripe unit across local disks.
	DiskStripeUnit int64

	// --- Ceph backend ---

	// ObjectSize is the striping unit of files across OSD objects.
	ObjectSize int64
	// OSDRamdiskBytesPerSec is each OSD's ramdisk throughput.
	OSDRamdiskBytesPerSec int64
	// OSDOpCost is fixed per-object-operation server CPU.
	OSDOpCost time.Duration
	// OSDJournalFactor multiplies writes for journaling (data+journal).
	OSDJournalFactor float64
	// MDSOpCost is per-metadata-operation cost at the MDS.
	MDSOpCost time.Duration

	// --- FUSE ---

	// FUSERequestOverhead is fixed kernel CPU per FUSE request
	// (request alloc, queueing) beyond switches and copies.
	FUSERequestOverhead time.Duration
	// FUSEMaxWrite caps the size of a single FUSE data request;
	// larger I/O splits into multiple kernel<->daemon round trips.
	FUSEMaxWrite int64

	// --- Danaus IPC (shared-memory queues) ---

	// IPCEnqueueCost is user-level CPU to post or fetch one request
	// descriptor in a shared-memory circular queue.
	IPCEnqueueCost time.Duration
	// IPCWakeupCost is the cost of waking an idle service thread
	// (futex-like), counted as one context switch on each side.
	IPCWakeupCost time.Duration
	// IPCPollWindow is how long a service thread keeps polling its
	// queue after the last request before sleeping; a request arriving
	// within the window avoids the wakeup context switches. Zero
	// disables polling (ablation: every request pays a wakeup).
	IPCPollWindow time.Duration
	// IPCScaleThreshold is the queue backlog beyond which the back
	// driver spawns an extra service thread.
	IPCScaleThreshold int

	// --- Ceph client (libcephfs-like and kernel) ---

	// ClientLockHold is the client_lock hold time per operation in the
	// user-level client (libcephfs's global lock), covering cache
	// lookup and metadata manipulation.
	ClientLockHold time.Duration
	// ClientLockCopyFraction is the fraction of each cache data copy
	// performed while still holding client_lock. This models the
	// coarse locking that caps Danaus cached-read concurrency (§6.3.2).
	ClientLockCopyFraction float64
	// ClientOpCost is fixed user-level CPU per client operation
	// (request marshalling, cache bookkeeping).
	ClientOpCost time.Duration
	// KernelClientOpCost is fixed in-kernel CPU per kernel-Ceph-client
	// operation; the mature kernel client is leaner per-op.
	KernelClientOpCost time.Duration

	// --- Client fault tolerance (retry/failover against backend faults) ---

	// ClientOpDeadline bounds the total time the user-level client
	// spends retrying one data operation before giving up with an I/O
	// error. The kernel client has no such bound (it blocks, like the
	// real CephFS kernel mount) but counts when the deadline would have
	// expired.
	ClientOpDeadline time.Duration
	// ClientRetryBase is the first retry backoff; subsequent retries
	// double it deterministically up to ClientRetryCap.
	ClientRetryBase time.Duration
	// ClientRetryCap caps the exponential retry backoff.
	ClientRetryCap time.Duration
	// ClientMaxRetries bounds retry attempts per operation in the
	// user-level client.
	ClientMaxRetries int
	// BreakerFailureThreshold is the number of consecutive retryable
	// failures that trips the per-client circuit breaker from closed to
	// open (when the breaker is enabled; see cephclient.BreakerConfig).
	BreakerFailureThreshold int
	// BreakerOpenBase is the first open interval after a trip;
	// successive trips double it deterministically up to BreakerOpenCap.
	BreakerOpenBase time.Duration
	// BreakerOpenCap caps the exponential open interval.
	BreakerOpenCap time.Duration
	// BreakerRecoveryTarget is the number of half-open probe successes
	// needed to close the breaker again (slow start doubles the probe
	// budget per success on the way there).
	BreakerRecoveryTarget int

	// --- Union filesystems ---

	// UnionLookupCost is per-branch lookup CPU in a union filesystem.
	UnionLookupCost time.Duration
	// CopyUpChunk is the chunk size used for file-level copy-up.
	CopyUpChunk int64

	// --- Container / application startup (Fig 8) ---

	// ExecBinaryBytes is the size read via the legacy path when a
	// container starts its initial command.
	ExecBinaryBytes int64
	// MmapLibraryBytes is the total dynamic-library bytes mapped at
	// startup via the legacy path.
	MmapLibraryBytes int64
	// StartupAppFileBytes is application file preparation traffic
	// through the default (user-level) path.
	StartupAppFileBytes int64
	// StartupOpCount is the number of small metadata/config operations
	// a starting container issues.
	StartupOpCount int
}

// Default returns the calibrated parameter set. See EXPERIMENTS.md for
// the calibration record against the paper's figures.
func Default() *Params {
	return &Params{
		Quantum:             time.Millisecond,
		ModeSwitchCost:      300 * time.Nanosecond,
		ContextSwitchCost:   2500 * time.Nanosecond,
		MemcpyBytesPerSec:   5 << 30, // 5 GiB/s per core
		ChecksumBytesPerSec: 10 << 30,

		VFSOpCost:          600 * time.Nanosecond,
		PageSize:           4096,
		LRULockHoldPerPage: 1000 * time.Nanosecond,
		IMutexHold:         1200 * time.Nanosecond,
		WritebackLockHold:  400 * time.Nanosecond,
		WritebackInterval:  time.Second,
		DirtyExpire:        5 * time.Second,
		FlusherBytesPerSec: 400 << 20, // flush preparation is CPU-heavy per thread
		NumFlushers:        4,
		DirtyThrottleCheck: 10 * time.Millisecond,

		ClientNICBytesPerSec: 2500 << 20, // ~2.5 GB/s per direction (20 Gbps bonded)
		ServerNICBytesPerSec: 1250 << 20, // 10 GbE per VM
		NetLatency:           50 * time.Microsecond,
		NetMTU:               64 << 10,
		NetCPUBytesPerSec:    2 << 30,
		NetOpCost:            2 * time.Microsecond,

		DiskSeqBytesPerSec: 160 << 20, // 160 MB/s per local disk
		DiskSeekTime:       4 * time.Millisecond,
		DiskStripeUnit:     256 << 10,

		ObjectSize:            4 << 20,
		OSDRamdiskBytesPerSec: 2 << 30,
		OSDOpCost:             15 * time.Microsecond,
		OSDJournalFactor:      1.5,
		MDSOpCost:             25 * time.Microsecond,

		FUSERequestOverhead: 1500 * time.Nanosecond,
		FUSEMaxWrite:        128 << 10,

		IPCEnqueueCost:    250 * time.Nanosecond,
		IPCWakeupCost:     1500 * time.Nanosecond,
		IPCPollWindow:     200 * time.Microsecond,
		IPCScaleThreshold: 64,

		ClientLockHold:         2 * time.Microsecond,
		ClientLockCopyFraction: 0.8,
		ClientOpCost:           1500 * time.Nanosecond,
		KernelClientOpCost:     900 * time.Nanosecond,

		ClientOpDeadline: time.Second,
		ClientRetryBase:  200 * time.Microsecond,
		ClientRetryCap:   20 * time.Millisecond,
		ClientMaxRetries: 64,

		BreakerFailureThreshold: 5,
		BreakerOpenBase:         5 * time.Millisecond,
		BreakerOpenCap:          160 * time.Millisecond,
		BreakerRecoveryTarget:   4,

		UnionLookupCost: 800 * time.Nanosecond,
		CopyUpChunk:     1 << 20,

		ExecBinaryBytes:     1 << 20,
		MmapLibraryBytes:    6 << 20,
		StartupAppFileBytes: 512 << 10,
		StartupOpCount:      40,
	}
}

// CopyTime returns the single-core CPU time to copy n bytes.
func (p *Params) CopyTime(n int64) time.Duration {
	return rateTime(n, p.MemcpyBytesPerSec)
}

// Pages returns the number of pages covering n bytes.
func (p *Params) Pages(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + p.PageSize - 1) / p.PageSize
}

// rateTime converts n bytes at rate bytes/sec into a duration.
func rateTime(n, rate int64) time.Duration {
	if n <= 0 || rate <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(rate) * float64(time.Second))
}

// RateTime is the exported form of rateTime for other packages sharing
// the byte-rate convention.
func RateTime(n, rate int64) time.Duration { return rateTime(n, rate) }

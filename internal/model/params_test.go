package model

import (
	"testing"
	"time"
)

func TestDefaultParamsAreSane(t *testing.T) {
	p := Default()
	positiveDurations := map[string]time.Duration{
		"Quantum": p.Quantum, "ModeSwitchCost": p.ModeSwitchCost,
		"ContextSwitchCost": p.ContextSwitchCost, "VFSOpCost": p.VFSOpCost,
		"LRULockHoldPerPage": p.LRULockHoldPerPage, "IMutexHold": p.IMutexHold,
		"WritebackLockHold": p.WritebackLockHold, "WritebackInterval": p.WritebackInterval,
		"DirtyExpire": p.DirtyExpire, "DirtyThrottleCheck": p.DirtyThrottleCheck,
		"NetLatency": p.NetLatency, "NetOpCost": p.NetOpCost,
		"DiskSeekTime": p.DiskSeekTime, "OSDOpCost": p.OSDOpCost,
		"MDSOpCost": p.MDSOpCost, "FUSERequestOverhead": p.FUSERequestOverhead,
		"IPCEnqueueCost": p.IPCEnqueueCost, "IPCWakeupCost": p.IPCWakeupCost,
		"IPCPollWindow": p.IPCPollWindow, "ClientLockHold": p.ClientLockHold,
		"ClientOpCost": p.ClientOpCost, "KernelClientOpCost": p.KernelClientOpCost,
		"UnionLookupCost": p.UnionLookupCost,
	}
	for name, d := range positiveDurations {
		if d <= 0 {
			t.Errorf("%s = %v, want > 0", name, d)
		}
	}
	positiveRates := map[string]int64{
		"MemcpyBytesPerSec": p.MemcpyBytesPerSec, "ChecksumBytesPerSec": p.ChecksumBytesPerSec,
		"PageSize": p.PageSize, "FlusherBytesPerSec": p.FlusherBytesPerSec,
		"ClientNICBytesPerSec": p.ClientNICBytesPerSec, "ServerNICBytesPerSec": p.ServerNICBytesPerSec,
		"NetMTU": p.NetMTU, "NetCPUBytesPerSec": p.NetCPUBytesPerSec,
		"DiskSeqBytesPerSec": p.DiskSeqBytesPerSec, "DiskStripeUnit": p.DiskStripeUnit,
		"ObjectSize": p.ObjectSize, "OSDRamdiskBytesPerSec": p.OSDRamdiskBytesPerSec,
		"FUSEMaxWrite": p.FUSEMaxWrite, "CopyUpChunk": p.CopyUpChunk,
	}
	for name, v := range positiveRates {
		if v <= 0 {
			t.Errorf("%s = %d, want > 0", name, v)
		}
	}
	if p.ClientLockCopyFraction <= 0 || p.ClientLockCopyFraction > 1 {
		t.Errorf("ClientLockCopyFraction = %v", p.ClientLockCopyFraction)
	}
	if p.OSDJournalFactor < 1 {
		t.Errorf("OSDJournalFactor = %v", p.OSDJournalFactor)
	}
	if p.NumFlushers <= 0 || p.IPCScaleThreshold <= 0 {
		t.Errorf("thread counts: flushers=%d scale=%d", p.NumFlushers, p.IPCScaleThreshold)
	}
	// The paper's writeback defaults: 1s writeback, 5s expire.
	if p.WritebackInterval != time.Second || p.DirtyExpire != 5*time.Second {
		t.Errorf("writeback constants: %v / %v", p.WritebackInterval, p.DirtyExpire)
	}
}

func TestCopyTimeAndPages(t *testing.T) {
	p := Default()
	if got := p.CopyTime(p.MemcpyBytesPerSec); got != time.Second {
		t.Errorf("CopyTime(1s worth) = %v", got)
	}
	if p.CopyTime(0) != 0 || p.CopyTime(-5) != 0 {
		t.Error("non-positive copies should be free")
	}
	if p.Pages(1) != 1 || p.Pages(4096) != 1 || p.Pages(4097) != 2 {
		t.Errorf("page rounding wrong: %d %d %d", p.Pages(1), p.Pages(4096), p.Pages(4097))
	}
	if p.Pages(0) != 0 {
		t.Errorf("Pages(0) = %d", p.Pages(0))
	}
	if RateTime(100, 0) != 0 {
		t.Error("zero rate should be free, not infinite")
	}
}

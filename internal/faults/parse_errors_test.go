package faults

import (
	"strings"
	"testing"
	"time"
)

// The parser must reject malformed schedules with a diagnostic naming
// the offending entry — never panic, never silently drop an entry.
func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"flood:1:1s-2s", "unknown fault kind"},
		{"osd-crash", "want 3 fields, got 1"}, // bare kind, no fields
		{"osd-crash:1:1s-2s:extra", "want 3 fields, got 4"},
		{"osd-degrade:1:1s-2s", "want 4 fields, got 3"},
		{"net-spike:client:1ms", "want 4 fields, got 3"},
		{"mds-stall", "want 2 fields, got 1"},
		{"osd-crash:-2:1s-2s", "bad osd index"},
		{"osd-degrade:1:2x:1s-2s:x", "want 4 fields, got 5"},
		{"osd-degrade:1:zzz:1s-2s", "bad degrade factor"},
		{"net-spike:1:never:1s-2s", "bad latency"},
		{"net-drop:1:0x7:1s-2s", "bad drop period"},
		{"osd-crash:1:1s2s", "bad window, want start-end"},
		{"osd-crash:1:soon-2s", "bad window start"},
		{"osd-crash:1:1s-later", "bad window end"},
		{"osd-crash:1:1s-2s;flood:0:1s-2s", "unknown fault kind"},
		{"danaus-crash:1s-2s", "want 3 fields, got 2"}, // tenant missing entirely
		{"danaus-crash::1s-2s", "bad tenant id"},       // empty tenant
		{"danaus-crash:a b:1s-2s", "bad tenant id"},    // space in tenant
		{"fuse-crash:fls-0:1s-2s", "bad tenant id"},    // '-' would corrupt String round trips
		{"fuse-crash:fls0:1s-2s:extra", "want 3 fields, got 4"},
		{"host-crash:fls0:1s-2s", "want 2 fields, got 3"}, // host crash takes no tenant
		{"host-crash:1s2s", "bad window, want start-end"},
		{"danaus-crash:fls0:soon-2s", "bad window start"},
		{"fuse-crash:fls0:1s-later", "bad window end"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q) accepted a bad schedule", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q does not mention %q", c.spec, err, c.want)
		}
		if !strings.Contains(err.Error(), "bad entry") {
			t.Errorf("Parse(%q) error %q does not name the offending entry", c.spec, err)
		}
	}
}

// Empty schedules and surrounding whitespace are fine; a good entry
// after a bad one must not mask the error.
func TestParseEdges(t *testing.T) {
	for _, s := range []string{"", "  ", ";", " ; "} {
		p, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
		}
		if len(p.Windows) != 0 {
			t.Errorf("Parse(%q) produced %d windows", s, len(p.Windows))
		}
	}
	if _, err := Parse("flood:1:1s-2s;osd-crash:1:1s-2s"); err == nil {
		t.Error("bad first entry masked by a good second one")
	}
}

// Crash windows carry their restart inside the window (crash at Start,
// restart at End): a restart scheduled before the crash, a tenant-less
// tenant crash, and overlapping outages of the same target must all be
// rejected before installation.
func TestValidateRejectsBadCrashWindows(t *testing.T) {
	mk := func(ws ...Window) Plan { return Plan{Windows: ws} }
	for name, p := range map[string]Plan{
		"restart before crash": mk(Window{Kind: DanausCrash, Tenant: "fls0", Start: 2 * time.Second, End: time.Second}),
		"restart at crash":     mk(Window{Kind: FUSECrash, Tenant: "fls0", Start: time.Second, End: time.Second}),
		"missing tenant":       mk(Window{Kind: DanausCrash, Start: 0, End: time.Second}),
		"host restart early":   mk(Window{Kind: HostCrash, Start: time.Second, End: time.Millisecond}),
		"overlapping outages": mk(
			Window{Kind: DanausCrash, Tenant: "fls0", Start: 0, End: time.Second},
			Window{Kind: DanausCrash, Tenant: "fls0", Start: 500 * time.Millisecond, End: 2 * time.Second},
		),
	} {
		if err := p.Validate(6); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The same outage on two different tenants may overlap.
	ok := mk(
		Window{Kind: DanausCrash, Tenant: "fls0", Start: 0, End: time.Second},
		Window{Kind: DanausCrash, Tenant: "fls1", Start: 0, End: time.Second},
	)
	if err := ok.Validate(6); err != nil {
		t.Fatalf("distinct-tenant overlap rejected: %v", err)
	}
}

// Out-of-order window times parse (the syntax is valid) but must be
// rejected by Validate before installation — the injector would
// otherwise arm a window that never disarms.
func TestValidateRejectsOutOfOrderWindow(t *testing.T) {
	p, err := Parse("osd-crash:1:2s-1s")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := p.Validate(6); err == nil {
		t.Fatal("Validate accepted a window ending before it starts")
	}
	// Same shape straight through the struct, for non-parsed plans.
	bad := Plan{Windows: []Window{{Kind: MDSStall, Start: 2 * time.Second, End: time.Second}}}
	if err := bad.Validate(6); err == nil {
		t.Fatal("Validate accepted End < Start")
	}
}

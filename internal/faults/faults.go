// Package faults is the deterministic fault injector of the testbed:
// it schedules fault windows — OSD crashes and degraded media, network
// latency spikes, packet loss and partitions, MDS stalls — as events
// on the simulation engine, so faults arm and disarm at exact virtual
// times and two runs of the same schedule produce identical traces.
//
// A schedule is a Plan of Windows, either built programmatically or
// parsed from the compact text form accepted by Parse:
//
//	osd-crash:<osd>:<start>-<end>
//	osd-degrade:<osd>:<factor>x:<start>-<end>
//	net-spike:<client|osd>:<extra>:<start>-<end>
//	net-drop:<osd>:<every>:<start>-<end>
//	net-partition:<osd>:<start>-<end>
//	mds-stall:<start>-<end>
//	danaus-crash:<tenant>:<start>-<end>
//	fuse-crash:<tenant>:<start>-<end>
//	host-crash:<start>-<end>
//
// entries separated by ';', durations in Go syntax (e.g. "500ms").
// The three client crash kinds kill a client-side component at Start
// and restart it at End: danaus-crash a single tenant's user-level
// library service, fuse-crash a FUSE daemon (taking down every tenant
// mounted through it), host-crash the shared kernel client (every
// tenant on the host). They require crash targets (InstallWithTargets)
// because the affected components live above the cluster.
// Packet loss and partitions target OSD links only: the metadata path
// may stall but never loses messages, which keeps non-idempotent
// metadata operations (create, rename) exactly-once without a
// transaction layer.
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Kind enumerates the injectable fault types.
type Kind int

// Fault kinds.
const (
	// OSDCrash takes an OSD down at Start and restarts it (with
	// backfill recovery) at End.
	OSDCrash Kind = iota
	// OSDDegrade multiplies the OSD's media time by Factor.
	OSDDegrade
	// NetLatency adds Extra latency to the target NIC (OSD, or the
	// client host NIC when OSD is -1).
	NetLatency
	// NetDrop drops every DropEvery-th message on the target OSD's NIC.
	NetDrop
	// NetPartition makes the target OSD's NIC unreachable.
	NetPartition
	// MDSStall freezes metadata processing.
	MDSStall
	// DanausCrash kills one tenant's user-level library service at
	// Start and restarts it (cold cache, MDS session reclaim) at End.
	DanausCrash
	// FUSECrash kills a FUSE daemon — and with it every tenant mounted
	// through that daemon — at Start, restarting it at End.
	FUSECrash
	// HostCrash kills the shared kernel client: every tenant on the
	// host loses its kernel mounts until the restart at End.
	HostCrash
)

var kindNames = map[Kind]string{
	OSDCrash:     "osd-crash",
	OSDDegrade:   "osd-degrade",
	NetLatency:   "net-spike",
	NetDrop:      "net-drop",
	NetPartition: "net-partition",
	MDSStall:     "mds-stall",
	DanausCrash:  "danaus-crash",
	FUSECrash:    "fuse-crash",
	HostCrash:    "host-crash",
}

// ClientCrash reports whether the kind is one of the client-side crash
// faults, which need crash targets rather than cluster state to apply.
func (k Kind) ClientCrash() bool {
	return k == DanausCrash || k == FUSECrash || k == HostCrash
}

// String returns the schedule-syntax name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ClientNIC is the OSD field value targeting the client host NIC
// (valid for NetLatency windows only).
const ClientNIC = -1

// Window is one fault armed at Start and disarmed at End (both
// relative to the offset given to Install).
type Window struct {
	Kind       Kind
	Start, End time.Duration
	// OSD is the target OSD index; ClientNIC targets the client host
	// NIC (NetLatency only). Ignored for MDSStall.
	OSD int
	// Factor is the media slowdown for OSDDegrade windows.
	Factor float64
	// Extra is the added one-way latency for NetLatency windows.
	Extra time.Duration
	// DropEvery is the loss period for NetDrop windows (every Nth
	// message on the link is lost).
	DropEvery uint64
	// Tenant names the crashed pool for DanausCrash and FUSECrash
	// windows. Empty (and ignored) for every other kind — HostCrash
	// takes the whole host down, so it has no per-tenant target.
	Tenant string
}

func (w Window) String() string {
	target := ""
	switch {
	case w.Kind == MDSStall || w.Kind == HostCrash:
	case w.Kind == DanausCrash || w.Kind == FUSECrash:
		target = ":" + w.Tenant
	case w.OSD == ClientNIC:
		target = ":client"
	default:
		target = fmt.Sprintf(":%d", w.OSD)
	}
	extra := ""
	switch w.Kind {
	case OSDDegrade:
		extra = fmt.Sprintf(":%gx", w.Factor)
	case NetLatency:
		extra = fmt.Sprintf(":%v", w.Extra)
	case NetDrop:
		extra = fmt.Sprintf(":%d", w.DropEvery)
	}
	return fmt.Sprintf("%v%s%s:%v-%v", w.Kind, target, extra, w.Start, w.End)
}

// Plan is a full fault schedule.
type Plan struct {
	Windows []Window
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Windows) == 0 }

// String renders the plan in Parse syntax.
func (p Plan) String() string {
	parts := make([]string, len(p.Windows))
	for i, w := range p.Windows {
		parts[i] = w.String()
	}
	return strings.Join(parts, ";")
}

// Validate checks the plan against nOSDs object servers: windows must
// have positive length, targets must exist, drop/partition windows must
// target OSD links, and windows of the same kind on the same target
// must not overlap (a disarm would otherwise cancel a sibling window
// still in force).
func (p Plan) Validate(nOSDs int) error {
	for i, w := range p.Windows {
		if w.End <= w.Start || w.Start < 0 {
			return fmt.Errorf("faults: window %d (%v): bad interval", i, w)
		}
		switch w.Kind {
		case OSDCrash, OSDDegrade, NetDrop, NetPartition:
			if w.OSD < 0 || w.OSD >= nOSDs {
				return fmt.Errorf("faults: window %d (%v): no such osd", i, w)
			}
		case NetLatency:
			if w.OSD != ClientNIC && (w.OSD < 0 || w.OSD >= nOSDs) {
				return fmt.Errorf("faults: window %d (%v): no such target", i, w)
			}
		case MDSStall, HostCrash:
		case DanausCrash, FUSECrash:
			if w.Tenant == "" {
				return fmt.Errorf("faults: window %d (%v): missing tenant", i, w)
			}
		default:
			return fmt.Errorf("faults: window %d: unknown kind %d", i, int(w.Kind))
		}
		if w.Kind == OSDDegrade && w.Factor < 1 {
			return fmt.Errorf("faults: window %d (%v): factor < 1", i, w)
		}
		if w.Kind == NetDrop && w.DropEvery == 0 {
			return fmt.Errorf("faults: window %d (%v): drop period 0", i, w)
		}
		for j := 0; j < i; j++ {
			o := p.Windows[j]
			if o.Kind == w.Kind && o.OSD == w.OSD && o.Tenant == w.Tenant &&
				w.Start < o.End && o.Start < w.End {
				return fmt.Errorf("faults: windows %d and %d overlap on the same target", j, i)
			}
		}
	}
	return nil
}

// Event records one arm or disarm performed by the injector, for
// determinism assertions: two runs of the same schedule must produce
// identical event logs.
type Event struct {
	At     time.Duration // virtual time of the transition
	Window Window
	Armed  bool // true = armed, false = disarmed
}

// CrashTarget is one crashable client-side component (a tenant's
// user-level client, a FUSE daemon plus its client, or the kernel
// client of the whole host). Crash kills it — dropping un-synced dirty
// state and failing in-flight and future operations deterministically —
// and Restart brings it back cold and runs its recovery protocol.
type CrashTarget interface {
	Crash()
	Restart()
}

// CrashTargets resolves a crash window to the component it kills. The
// tenant argument is empty for HostCrash. Implemented by the testbed
// (core.Testbed.CrashTargets), which knows which pools exist and how
// their clients are stacked.
type CrashTargets interface {
	CrashTarget(kind Kind, tenant string) (CrashTarget, error)
}

// Injector is an installed plan: it holds the scheduled transitions
// and logs each one as it fires.
type Injector struct {
	clus   *cluster.Cluster
	events []Event
}

// Install schedules every window of the plan against the engine, with
// window times interpreted relative to offset (an absolute virtual
// time, typically the start of an experiment's measurement window).
// The plan is validated first; an empty plan installs nothing and
// perturbs nothing. Plans containing client crash windows need
// InstallWithTargets.
func Install(eng *sim.Engine, clus *cluster.Cluster, plan Plan, offset time.Duration) (*Injector, error) {
	return InstallWithTargets(eng, clus, nil, plan, offset)
}

// InstallWithTargets is Install plus a crash-target resolver for the
// client crash kinds. Targets are resolved at install time, so a
// schedule naming an unknown tenant fails immediately rather than
// mid-run. A nil resolver rejects plans containing crash windows.
func InstallWithTargets(eng *sim.Engine, clus *cluster.Cluster, targets CrashTargets, plan Plan, offset time.Duration) (*Injector, error) {
	if err := plan.Validate(len(clus.OSDs())); err != nil {
		return nil, err
	}
	in := &Injector{clus: clus}
	now := eng.Now()
	for i, w := range plan.Windows {
		w := w
		if w.Kind.ClientCrash() {
			if targets == nil {
				return nil, fmt.Errorf("faults: window %d (%v): client crash needs InstallWithTargets", i, w)
			}
			tgt, err := targets.CrashTarget(w.Kind, w.Tenant)
			if err != nil {
				return nil, fmt.Errorf("faults: window %d (%v): %w", i, w, err)
			}
			eng.After(offset+w.Start-now, func() { in.applyCrash(eng, w, tgt, true) })
			eng.After(offset+w.End-now, func() { in.applyCrash(eng, w, tgt, false) })
			continue
		}
		eng.After(offset+w.Start-now, func() { in.apply(eng, w, true) })
		eng.After(offset+w.End-now, func() { in.apply(eng, w, false) })
	}
	return in, nil
}

// applyCrash fires one crash or restart transition on a resolved
// client-side target.
func (in *Injector) applyCrash(eng *sim.Engine, w Window, tgt CrashTarget, arm bool) {
	in.events = append(in.events, Event{At: eng.Now(), Window: w, Armed: arm})
	if arm {
		tgt.Crash()
	} else {
		tgt.Restart()
	}
}

// Log returns the transitions performed so far, in firing order.
func (in *Injector) Log() []Event { return in.events }

func (in *Injector) apply(eng *sim.Engine, w Window, arm bool) {
	in.events = append(in.events, Event{At: eng.Now(), Window: w, Armed: arm})
	fab := in.clus.Fabric()
	switch w.Kind {
	case OSDCrash:
		if arm {
			in.clus.OSDs()[w.OSD].Crash()
		} else {
			in.clus.OSDs()[w.OSD].Restart()
		}
	case OSDDegrade:
		f := w.Factor
		if !arm {
			f = 1
		}
		in.clus.OSDs()[w.OSD].SetDegraded(f)
	case NetLatency:
		d := w.Extra
		if !arm {
			d = 0
		}
		if w.OSD == ClientNIC {
			fab.Client.SetExtraLatency(d)
		} else {
			fab.Servers[w.OSD].SetExtraLatency(d)
		}
	case NetDrop:
		var every uint64
		if arm {
			every = w.DropEvery
		}
		fab.Servers[w.OSD].SetDropEvery(every)
	case NetPartition:
		fab.Servers[w.OSD].SetPartitioned(arm)
	case MDSStall:
		in.clus.SetMDSStalled(arm)
	}
}

// Parse reads the compact schedule syntax documented on the package.
// An empty string parses to an empty plan.
func Parse(s string) (Plan, error) {
	var p Plan
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		w, err := parseWindow(entry)
		if err != nil {
			return Plan{}, err
		}
		p.Windows = append(p.Windows, w)
	}
	return p, nil
}

func parseWindow(entry string) (Window, error) {
	bad := func(why string) (Window, error) {
		return Window{}, fmt.Errorf("faults: bad entry %q: %s", entry, why)
	}
	fields := strings.Split(entry, ":")
	var w Window
	switch fields[0] {
	case "osd-crash":
		w.Kind = OSDCrash
	case "osd-degrade":
		w.Kind = OSDDegrade
	case "net-spike":
		w.Kind = NetLatency
	case "net-drop":
		w.Kind = NetDrop
	case "net-partition":
		w.Kind = NetPartition
	case "mds-stall":
		w.Kind = MDSStall
	case "danaus-crash":
		w.Kind = DanausCrash
	case "fuse-crash":
		w.Kind = FUSECrash
	case "host-crash":
		w.Kind = HostCrash
	default:
		return bad("unknown fault kind")
	}
	want := map[Kind]int{
		OSDCrash: 3, OSDDegrade: 4, NetLatency: 4,
		NetDrop: 4, NetPartition: 3, MDSStall: 2,
		DanausCrash: 3, FUSECrash: 3, HostCrash: 2,
	}[w.Kind]
	if len(fields) != want {
		return bad(fmt.Sprintf("want %d fields, got %d", want, len(fields)))
	}
	arg := 1
	switch {
	case w.Kind == MDSStall || w.Kind == HostCrash:
	case w.Kind == DanausCrash || w.Kind == FUSECrash:
		tenant := fields[arg]
		if tenant == "" || strings.ContainsAny(tenant, ";- ") {
			return bad("bad tenant id")
		}
		w.Tenant = tenant
		arg++
	default:
		if w.Kind == NetLatency && fields[arg] == "client" {
			w.OSD = ClientNIC
		} else {
			osd, err := strconv.Atoi(fields[arg])
			if err != nil || osd < 0 {
				return bad("bad osd index")
			}
			w.OSD = osd
		}
		arg++
	}
	switch w.Kind {
	case OSDDegrade:
		f, err := strconv.ParseFloat(strings.TrimSuffix(fields[arg], "x"), 64)
		if err != nil {
			return bad("bad degrade factor")
		}
		w.Factor = f
		arg++
	case NetLatency:
		d, err := time.ParseDuration(fields[arg])
		if err != nil {
			return bad("bad latency")
		}
		w.Extra = d
		arg++
	case NetDrop:
		n, err := strconv.ParseUint(fields[arg], 10, 64)
		if err != nil {
			return bad("bad drop period")
		}
		w.DropEvery = n
		arg++
	}
	span := strings.SplitN(fields[arg], "-", 2)
	if len(span) != 2 {
		return bad("bad window, want start-end")
	}
	start, err := time.ParseDuration(span[0])
	if err != nil {
		return bad("bad window start")
	}
	end, err := time.ParseDuration(span[1])
	if err != nil {
		return bad("bad window end")
	}
	w.Start, w.End = start, end
	return w, nil
}

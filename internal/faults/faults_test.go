package faults

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/sim"
)

func testCluster() (*sim.Engine, *cluster.Cluster) {
	e := sim.NewEngine()
	return e, cluster.New(e, model.Default(), 6)
}

func TestParseRoundTrip(t *testing.T) {
	in := "osd-crash:2:100ms-200ms;osd-degrade:1:8x:50ms-150ms;" +
		"net-spike:client:500µs:10ms-20ms;net-drop:3:4:30ms-40ms;" +
		"net-partition:0:60ms-70ms;mds-stall:80ms-90ms"
	p, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []Kind{OSDCrash, OSDDegrade, NetLatency, NetDrop, NetPartition, MDSStall}
	if len(p.Windows) != len(wantKinds) {
		t.Fatalf("parsed %d windows, want %d", len(p.Windows), len(wantKinds))
	}
	for i, k := range wantKinds {
		if p.Windows[i].Kind != k {
			t.Fatalf("window %d kind %v, want %v", i, p.Windows[i].Kind, k)
		}
	}
	if w := p.Windows[2]; w.OSD != ClientNIC || w.Extra != 500*time.Microsecond {
		t.Fatalf("net-spike window: %+v", w)
	}
	if w := p.Windows[3]; w.DropEvery != 4 {
		t.Fatalf("net-drop window: %+v", w)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", p.String(), err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("round trip changed the plan:\n  %v\n  %v", p, p2)
	}
	if err := p.Validate(6); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

// Round trip of the three client-crash kinds: parse -> String ->
// reparse must be the identity, tenants land on the right field, and
// the host kind carries none.
func TestParseCrashRoundTrip(t *testing.T) {
	in := "danaus-crash:fls0:100ms-200ms;fuse-crash:web1:50ms-150ms;host-crash:300ms-400ms"
	p, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []Window{
		{Kind: DanausCrash, Tenant: "fls0", Start: 100 * time.Millisecond, End: 200 * time.Millisecond},
		{Kind: FUSECrash, Tenant: "web1", Start: 50 * time.Millisecond, End: 150 * time.Millisecond},
		{Kind: HostCrash, Start: 300 * time.Millisecond, End: 400 * time.Millisecond},
	}
	if !reflect.DeepEqual(p.Windows, want) {
		t.Fatalf("parsed windows:\n  %+v\nwant:\n  %+v", p.Windows, want)
	}
	for _, w := range p.Windows {
		if !w.Kind.ClientCrash() {
			t.Fatalf("window %v not classified as a client crash", w)
		}
	}
	if p.String() != in {
		t.Fatalf("String() = %q, want %q", p.String(), in)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", p.String(), err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("round trip changed the plan:\n  %v\n  %v", p, p2)
	}
	if err := p.Validate(6); err != nil {
		t.Fatalf("valid crash plan rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"flood:1:1s-2s",              // unknown kind
		"osd-crash:1",                // missing window
		"osd-crash:one:1s-2s",        // bad osd index
		"osd-crash:1:2s",             // window without '-'
		"osd-crash:1:x-2s",           // bad start
		"osd-crash:1:1s-y",           // bad end
		"osd-degrade:1:fast:1s-2s",   // bad factor
		"net-spike:client:soon:1-2s", // bad extra latency
		"net-drop:1:every:1s-2s",     // bad drop period
		"mds-stall:1:1s-2s",          // extra field
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted a bad entry", s)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	mk := func(ws ...Window) Plan { return Plan{Windows: ws} }
	for name, p := range map[string]Plan{
		"empty interval":   mk(Window{Kind: OSDCrash, OSD: 1, Start: time.Second, End: time.Second}),
		"negative start":   mk(Window{Kind: OSDCrash, OSD: 1, Start: -time.Second, End: time.Second}),
		"no such osd":      mk(Window{Kind: OSDCrash, OSD: 6, Start: 0, End: time.Second}),
		"client partition": mk(Window{Kind: NetPartition, OSD: ClientNIC, Start: 0, End: time.Second}),
		"degrade below 1":  mk(Window{Kind: OSDDegrade, OSD: 0, Factor: 0.5, Start: 0, End: time.Second}),
		"drop period 0":    mk(Window{Kind: NetDrop, OSD: 0, Start: 0, End: time.Second}),
		"overlap same target": mk(
			Window{Kind: OSDCrash, OSD: 2, Start: 0, End: time.Second},
			Window{Kind: OSDCrash, OSD: 2, Start: 500 * time.Millisecond, End: 2 * time.Second},
		),
	} {
		if err := p.Validate(6); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Same kind on different targets, and different kinds on the same
	// target, may overlap freely.
	ok := mk(
		Window{Kind: OSDCrash, OSD: 1, Start: 0, End: time.Second},
		Window{Kind: OSDCrash, OSD: 2, Start: 0, End: time.Second},
		Window{Kind: OSDDegrade, OSD: 1, Factor: 4, Start: 0, End: time.Second},
	)
	if err := ok.Validate(6); err != nil {
		t.Fatalf("valid overlaps rejected: %v", err)
	}
}

// TestInjectorArmsAndDisarms checks the cluster state inside and after
// the windows, and that disarming restores everything.
func TestInjectorArmsAndDisarms(t *testing.T) {
	e, c := testCluster()
	plan, err := Parse("osd-crash:1:10ms-20ms;mds-stall:5ms-15ms;osd-degrade:2:8x:5ms-25ms")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := Install(e, c, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	var down, stalled bool
	var degraded float64
	e.After(12*time.Millisecond, func() {
		down = c.OSDs()[1].Down()
		stalled = c.MDSStalled()
		degraded = c.OSDs()[2].Degraded()
	})
	e.Run()
	if !down || !stalled || degraded != 8 {
		t.Fatalf("mid-window state: down=%v stalled=%v degraded=%v", down, stalled, degraded)
	}
	if c.OSDs()[1].Down() || c.MDSStalled() || c.OSDs()[2].Degraded() != 1 {
		t.Fatal("faults not fully disarmed after the schedule drained")
	}
	log := inj.Log()
	if len(log) != 6 {
		t.Fatalf("logged %d transitions, want 6", len(log))
	}
	for i := 1; i < len(log); i++ {
		if log[i].At < log[i-1].At {
			t.Fatalf("log out of order: %+v", log)
		}
	}
}

// TestInjectorDeterminism: two runs of the same schedule produce
// identical transition logs.
func TestInjectorDeterminism(t *testing.T) {
	run := func() []Event {
		e, c := testCluster()
		plan, err := Parse("osd-crash:1:10ms-20ms;net-spike:client:1ms:5ms-25ms;net-drop:0:7:1ms-30ms")
		if err != nil {
			t.Fatal(err)
		}
		inj, err := Install(e, c, plan, 2*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		e.Run()
		return inj.Log()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("injector logs differ:\n  %+v\n  %+v", a, b)
	}
}

// TestInstallRejectsBadPlan: Install validates before scheduling.
func TestInstallRejectsBadPlan(t *testing.T) {
	e, c := testCluster()
	plan := Plan{Windows: []Window{{Kind: OSDCrash, OSD: 99, End: time.Second}}}
	if _, err := Install(e, c, plan, 0); err == nil || !strings.Contains(err.Error(), "no such osd") {
		t.Fatalf("Install accepted a bad plan (err=%v)", err)
	}
}

package unionfs

import (
	"errors"
	"testing"

	"repro/internal/cpu"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

type rig struct {
	eng   *sim.Engine
	cpus  *cpu.CPU
	upper *memfs.FS
	lower *memfs.FS
	u     *Union
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	cpus := cpu.New(eng, model.Default(), 2)
	upper := memfs.New()
	lower := memfs.New()
	u := New([]Branch{
		{FS: upper, Writable: true},
		{FS: lower},
	}, Config{Kind: cpu.User})
	return &rig{eng: eng, cpus: cpus, upper: upper, lower: lower, u: u}
}

func (r *rig) run(t *testing.T, fn func(ctx vfsapi.Ctx)) {
	t.Helper()
	r.eng.Go("test", func(p *sim.Proc) {
		fn(vfsapi.Ctx{P: p, T: r.cpus.NewThread(cpu.NewAccount("t"), 0)})
	})
	r.eng.Run()
}

func TestLookupOrderTopWins(t *testing.T) {
	r := newRig(t)
	r.lower.Provision("/f", 100)
	r.upper.Provision("/f", 200)
	r.run(t, func(ctx vfsapi.Ctx) {
		info, err := r.u.Stat(ctx, "/f")
		if err != nil || info.Size != 200 {
			t.Fatalf("stat: %+v %v (top should win)", info, err)
		}
	})
}

func TestReadFromLowerBranch(t *testing.T) {
	r := newRig(t)
	r.lower.Provision("/ro", 1000)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := r.u.Open(ctx, "/ro", vfsapi.RDONLY)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := h.Read(ctx, 0, 500); got != 500 {
			t.Fatalf("read %d", got)
		}
		h.Close(ctx)
	})
	if r.lower.Reads != 1 || r.upper.Reads != 0 {
		t.Fatalf("reads upper=%d lower=%d", r.upper.Reads, r.lower.Reads)
	}
	if r.u.CopyUps() != 0 {
		t.Fatal("read-only open caused copy-up")
	}
}

func TestWriteTriggersCopyUp(t *testing.T) {
	r := newRig(t)
	r.lower.Provision("/data", 5<<20)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := r.u.Open(ctx, "/data", vfsapi.WRONLY)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(ctx, 0, 100)
		h.Close(ctx)
	})
	if r.u.CopyUps() != 1 {
		t.Fatalf("copyUps = %d", r.u.CopyUps())
	}
	if r.u.CopyUpBytes() != 5<<20 {
		t.Fatalf("copyUpBytes = %d, want full 5MB", r.u.CopyUpBytes())
	}
	// Upper now holds the full file; lower untouched.
	n, err := r.upper.Tree().Lookup("/data")
	if err != nil || n.Size != 5<<20 {
		t.Fatalf("upper copy: %v size=%d", err, n.Size)
	}
	ln, _ := r.lower.Tree().Lookup("/data")
	if ln.Size != 5<<20 {
		t.Fatal("lower modified by copy-up")
	}
}

func TestTruncOpenSkipsDataCopy(t *testing.T) {
	r := newRig(t)
	r.lower.Provision("/data", 5<<20)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := r.u.Open(ctx, "/data", vfsapi.WRONLY|vfsapi.TRUNC)
		if err != nil {
			t.Fatal(err)
		}
		h.Close(ctx)
	})
	if r.u.CopyUpBytes() != 0 {
		t.Fatalf("TRUNC copy-up moved %d bytes", r.u.CopyUpBytes())
	}
}

func TestAppendAfterCopyUpSeesFullFile(t *testing.T) {
	r := newRig(t)
	r.lower.Provision("/log", 1000)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := r.u.Open(ctx, "/log", vfsapi.WRONLY|vfsapi.APPEND)
		if err != nil {
			t.Fatal(err)
		}
		off, _ := h.Append(ctx, 50)
		if off != 1000 {
			t.Fatalf("append landed at %d, want 1000", off)
		}
		h.Close(ctx)
		info, _ := r.u.Stat(ctx, "/log")
		if info.Size != 1050 {
			t.Fatalf("size = %d", info.Size)
		}
	})
}

func TestUnlinkLowerCreatesWhiteout(t *testing.T) {
	r := newRig(t)
	r.lower.Provision("/gone", 10)
	r.run(t, func(ctx vfsapi.Ctx) {
		if err := r.u.Unlink(ctx, "/gone"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.u.Stat(ctx, "/gone"); !errors.Is(err, vfsapi.ErrNotExist) {
			t.Fatalf("stat after unlink: %v", err)
		}
		// Lower branch still has the file (read-only).
		if _, err := r.lower.Tree().Lookup("/gone"); err != nil {
			t.Fatal("lower branch file was removed")
		}
		// Whiteout marker materialized in the upper branch.
		if _, err := r.upper.Tree().Lookup("/.wh.gone"); err != nil {
			t.Fatal("whiteout marker not created in upper branch")
		}
	})
}

func TestCreateAfterWhiteout(t *testing.T) {
	r := newRig(t)
	r.lower.Provision("/f", 10)
	r.run(t, func(ctx vfsapi.Ctx) {
		r.u.Unlink(ctx, "/f")
		h, err := r.u.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(ctx, 0, 77)
		h.Close(ctx)
		info, err := r.u.Stat(ctx, "/f")
		if err != nil || info.Size != 77 {
			t.Fatalf("recreated file: %+v %v (must be new, not lower's)", info, err)
		}
	})
}

func TestReaddirMergesAndHidesWhiteouts(t *testing.T) {
	r := newRig(t)
	r.lower.Provision("/d/a", 1)
	r.lower.Provision("/d/b", 1)
	r.upper.Provision("/d/b", 2) // shadow
	r.upper.Provision("/d/c", 1)
	r.run(t, func(ctx vfsapi.Ctx) {
		r.u.Unlink(ctx, "/d/a")
		ents, err := r.u.Readdir(ctx, "/d")
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, e := range ents {
			names = append(names, e.Name)
		}
		// a is whited out; .wh.a is an artifact of the upper branch and
		// visible there, matching unionfs-fuse's hidden-file convention.
		want := map[string]bool{"b": true, "c": true, ".wh.a": true}
		for _, n := range names {
			if !want[n] {
				t.Fatalf("unexpected entry %q in %v", n, names)
			}
			delete(want, n)
		}
		if len(want) != 0 {
			t.Fatalf("missing entries %v in %v", want, names)
		}
	})
}

func TestMkdirAndRmdir(t *testing.T) {
	r := newRig(t)
	r.lower.Provision("/d/x", 1)
	r.run(t, func(ctx vfsapi.Ctx) {
		if err := r.u.Mkdir(ctx, "/new"); err != nil {
			t.Fatal(err)
		}
		if err := r.u.Mkdir(ctx, "/d"); !errors.Is(err, vfsapi.ErrExist) {
			t.Fatalf("mkdir existing: %v", err)
		}
		if err := r.u.Rmdir(ctx, "/d"); !errors.Is(err, vfsapi.ErrNotEmpty) {
			t.Fatalf("rmdir non-empty: %v", err)
		}
		r.u.Unlink(ctx, "/d/x")
		if err := r.u.Rmdir(ctx, "/d"); err != nil {
			t.Fatalf("rmdir emptied: %v", err)
		}
		if _, err := r.u.Stat(ctx, "/d"); !errors.Is(err, vfsapi.ErrNotExist) {
			t.Fatalf("stat removed dir: %v", err)
		}
	})
}

func TestRenameLowerFile(t *testing.T) {
	r := newRig(t)
	r.lower.Provision("/old", 123)
	r.run(t, func(ctx vfsapi.Ctx) {
		if err := r.u.Rename(ctx, "/old", "/new"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.u.Stat(ctx, "/old"); !errors.Is(err, vfsapi.ErrNotExist) {
			t.Fatalf("old visible after rename: %v", err)
		}
		info, err := r.u.Stat(ctx, "/new")
		if err != nil || info.Size != 123 {
			t.Fatalf("new: %+v %v", info, err)
		}
	})
	if r.u.CopyUps() != 1 {
		t.Fatalf("cross-branch rename should copy up; copyUps=%d", r.u.CopyUps())
	}
}

func TestRenameTopOnlyPassesThrough(t *testing.T) {
	r := newRig(t)
	r.upper.Provision("/only-top", 9)
	r.run(t, func(ctx vfsapi.Ctx) {
		if err := r.u.Rename(ctx, "/only-top", "/renamed"); err != nil {
			t.Fatal(err)
		}
	})
	if r.u.CopyUps() != 0 {
		t.Fatal("same-branch rename should not copy up")
	}
}

func TestReadOnlyUnionRejectsWrites(t *testing.T) {
	eng := sim.NewEngine()
	cpus := cpu.New(eng, model.Default(), 2)
	lower := memfs.New()
	lower.Provision("/f", 10)
	u := New([]Branch{{FS: lower}}, Config{Kind: cpu.User})
	eng.Go("t", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: cpus.NewThread(cpu.NewAccount("t"), 0)}
		if _, err := u.Open(ctx, "/g", vfsapi.CREATE|vfsapi.WRONLY); !errors.Is(err, vfsapi.ErrReadOnly) {
			t.Errorf("create on ro union: %v", err)
		}
		if err := u.Mkdir(ctx, "/d"); !errors.Is(err, vfsapi.ErrReadOnly) {
			t.Errorf("mkdir on ro union: %v", err)
		}
		if err := u.Unlink(ctx, "/f"); !errors.Is(err, vfsapi.ErrReadOnly) {
			t.Errorf("unlink on ro union: %v", err)
		}
	})
	eng.Run()
}

func TestBranchRootPrefix(t *testing.T) {
	r := newRig(t)
	shared := memfs.New()
	shared.Provision("/images/base/bin/sh", 100)
	u := New([]Branch{
		{FS: r.upper, Root: "/containers/c1", Writable: true},
		{FS: shared, Root: "/images/base"},
	}, Config{Kind: cpu.User})
	r.upper.Tree().MkdirAll("/containers/c1", 0)
	r.run(t, func(ctx vfsapi.Ctx) {
		info, err := u.Stat(ctx, "/bin/sh")
		if err != nil || info.Size != 100 {
			t.Fatalf("prefixed lookup: %+v %v", info, err)
		}
		h, err := u.Open(ctx, "/bin/sh", vfsapi.WRONLY)
		if err != nil {
			t.Fatal(err)
		}
		h.Close(ctx)
		// Copy-up landed inside the upper prefix.
		if _, err := r.upper.Tree().Lookup("/containers/c1/bin/sh"); err != nil {
			t.Fatal("copy-up missed the branch root prefix")
		}
	})
}

func TestOnlyTopBranchWritablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for writable lower branch")
		}
	}()
	New([]Branch{{FS: memfs.New()}, {FS: memfs.New(), Writable: true}}, Config{})
}

func TestOpaqueDirectoryAfterRecreate(t *testing.T) {
	// Removing a directory and recreating it must not resurrect the
	// lower branch's old contents (the AUFS opaque-directory rule).
	r := newRig(t)
	r.lower.Provision("/conf/old.cfg", 100)
	r.lower.Provision("/conf/sub/deep.cfg", 100)
	r.run(t, func(ctx vfsapi.Ctx) {
		// Empty the merged directory, remove it, recreate it.
		r.u.Unlink(ctx, "/conf/old.cfg")
		r.u.Unlink(ctx, "/conf/sub/deep.cfg")
		if err := r.u.Rmdir(ctx, "/conf/sub"); err != nil {
			t.Fatalf("rmdir sub: %v", err)
		}
		if err := r.u.Rmdir(ctx, "/conf"); err != nil {
			t.Fatalf("rmdir: %v", err)
		}
		if err := r.u.Mkdir(ctx, "/conf"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		// The lower files must NOT reappear.
		if _, err := r.u.Stat(ctx, "/conf/old.cfg"); !errors.Is(err, vfsapi.ErrNotExist) {
			t.Fatalf("lower file resurrected: %v", err)
		}
		if _, err := r.u.Stat(ctx, "/conf/sub/deep.cfg"); !errors.Is(err, vfsapi.ErrNotExist) {
			t.Fatalf("deep lower file resurrected: %v", err)
		}
		ents, err := r.u.Readdir(ctx, "/conf")
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if e.Name == "old.cfg" || e.Name == "sub" {
				t.Fatalf("resurrected entry %q in %v", e.Name, ents)
			}
		}
		// New content inside the opaque dir works normally.
		h, err := r.u.Open(ctx, "/conf/new.cfg", vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(ctx, 0, 42)
		h.Close(ctx)
		info, err := r.u.Stat(ctx, "/conf/new.cfg")
		if err != nil || info.Size != 42 {
			t.Fatalf("new file in opaque dir: %+v %v", info, err)
		}
	})
}

// Package unionfs implements the union filesystem libservice: a stack
// of branches with file-level copy-on-write and whiteouts, derived from
// the Unionfs design the paper's AUFS and unionfs-fuse variants share.
//
// The same implementation is deployed three ways in the experiments:
// inside the kernel below a Syscalls boundary (AUFS-like, K/K), behind
// a FUSE transport (unionfs-fuse, F/K F/F FP/FP), and as a Danaus
// libservice invoking the client libservice through plain function
// calls (D) — no extra switches or copies between union and client.
package unionfs

import (
	"errors"
	"sort"
	"strings"
	"time"

	"repro/internal/cpu"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/vfsapi"
)

// Branch is one layer of the union: a subtree of an underlying
// filesystem. The first branch of a Union is the top; only it may be
// writable.
type Branch struct {
	FS       vfsapi.FileSystem
	Root     string // path prefix inside FS ("" = its root)
	Writable bool
}

func (b Branch) full(path string) string {
	if b.Root == "" || b.Root == "/" {
		return path
	}
	return strings.TrimSuffix(b.Root, "/") + path
}

// Config configures a union instance.
type Config struct {
	// Kind selects whether union CPU is charged as kernel time (the
	// AUFS deployment) or user time (unionfs-fuse and Danaus).
	Kind cpu.TimeKind
	// Params supplies the cost model.
	Params *model.Params
}

// Union is a stacked union filesystem. It implements vfsapi.FileSystem.
type Union struct {
	branches  []Branch
	whiteouts map[string]bool
	// opaque marks directories recreated over a whiteout: lookups and
	// listings below them ignore the lower branches entirely (the AUFS
	// opaque-directory semantic).
	opaque map[string]bool
	kind   cpu.TimeKind
	params *model.Params

	copyUps     uint64
	copyUpBytes int64
}

// New creates a union over the given branches (index 0 on top).
func New(branches []Branch, cfg Config) *Union {
	if len(branches) == 0 {
		panic("unionfs: need at least one branch")
	}
	if cfg.Params == nil {
		cfg.Params = model.Default()
	}
	for i, b := range branches {
		if b.Writable && i != 0 {
			panic("unionfs: only the top branch may be writable")
		}
	}
	return &Union{
		branches:  branches,
		whiteouts: map[string]bool{},
		opaque:    map[string]bool{},
		kind:      cfg.Kind,
		params:    cfg.Params,
	}
}

// CopyUps returns the number of files copied to the top branch.
func (u *Union) CopyUps() uint64 { return u.copyUps }

// CopyUpBytes returns the bytes moved by copy-up operations.
func (u *Union) CopyUpBytes() int64 { return u.copyUpBytes }

func (u *Union) top() Branch { return u.branches[0] }

func (u *Union) lookCost(ctx vfsapi.Ctx, branches int) {
	ctx.T.Exec(ctx.P, u.kind, time.Duration(branches)*u.params.UnionLookupCost)
}

// resolve finds the topmost branch containing path. A whiteout hides
// every lower occurrence, and an opaque ancestor directory cuts the
// lower branches off entirely.
func (u *Union) resolve(ctx vfsapi.Ctx, path string) (int, vfsapi.FileInfo, error) {
	if u.whiteouts[path] {
		u.lookCost(ctx, 1)
		return -1, vfsapi.FileInfo{}, vfsapi.ErrNotExist
	}
	limit := len(u.branches)
	if u.underOpaque(path) {
		limit = 1 // only the top branch is visible
	}
	for i := 0; i < limit; i++ {
		b := u.branches[i]
		info, err := b.FS.Stat(ctx, b.full(path))
		u.lookCost(ctx, 1)
		if err == nil {
			return i, info, nil
		}
		if !errors.Is(err, vfsapi.ErrNotExist) {
			return -1, vfsapi.FileInfo{}, err
		}
	}
	return -1, vfsapi.FileInfo{}, vfsapi.ErrNotExist
}

// underOpaque reports whether path or any of its ancestors is an
// opaque directory.
func (u *Union) underOpaque(path string) bool {
	if len(u.opaque) == 0 {
		return false
	}
	p := strings.TrimSuffix(path, "/")
	for p != "" {
		if u.opaque[p] {
			return true
		}
		idx := strings.LastIndex(p, "/")
		if idx <= 0 {
			break
		}
		p = p[:idx]
	}
	return false
}

// ensureDirs creates path's ancestors in the top branch.
func (u *Union) ensureDirs(ctx vfsapi.Ctx, path string) error {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	cur := ""
	for _, part := range parts[:len(parts)-1] {
		cur += "/" + part
		err := u.top().FS.Mkdir(ctx, u.top().full(cur))
		if err != nil && !errors.Is(err, vfsapi.ErrExist) {
			return err
		}
	}
	return nil
}

// copyUp moves path from branch src into the writable top branch,
// chunk by chunk through the union (file-level copy-on-write). With
// truncate set the data copy is skipped.
func (u *Union) copyUp(ctx vfsapi.Ctx, path string, src int, size int64, truncate bool) error {
	if !u.top().Writable {
		return vfsapi.ErrReadOnly
	}
	if err := u.ensureDirs(ctx, path); err != nil {
		return err
	}
	dst, err := u.top().FS.Open(ctx, u.top().full(path), vfsapi.CREATE|vfsapi.WRONLY)
	if err != nil {
		return err
	}
	defer dst.Close(ctx)
	u.copyUps++
	if truncate || size == 0 {
		return nil
	}
	lower, err := u.branches[src].FS.Open(ctx, u.branches[src].full(path), vfsapi.RDONLY)
	if err != nil {
		return err
	}
	defer lower.Close(ctx)
	chunk := u.params.CopyUpChunk
	for off := int64(0); off < size; off += chunk {
		n := chunk
		if off+n > size {
			n = size - off
		}
		if _, err := lower.Read(ctx, off, n); err != nil {
			return err
		}
		if _, err := dst.Write(ctx, off, n); err != nil {
			return err
		}
		u.copyUpBytes += n
	}
	return nil
}

// Open opens path, performing copy-up when a lower file is opened for
// writing.
func (u *Union) Open(ctx vfsapi.Ctx, path string, flags vfsapi.OpenFlag) (vfsapi.Handle, error) {
	defer ctx.Span.Enter(obs.LayerUnion).Exit()
	src, info, err := u.resolve(ctx, path)
	switch {
	case err == nil:
		if info.IsDir {
			return nil, vfsapi.ErrIsDir
		}
		if src == 0 || !flags.Writable() {
			return u.branches[src].FS.Open(ctx, u.branches[src].full(path), flags)
		}
		// Writable open of a lower file: copy up, then open on top.
		if err := u.copyUp(ctx, path, src, info.Size, flags.Has(vfsapi.TRUNC)); err != nil {
			return nil, err
		}
		return u.top().FS.Open(ctx, u.top().full(path), flags&^vfsapi.CREATE)
	case errors.Is(err, vfsapi.ErrNotExist) && flags.Has(vfsapi.CREATE):
		if !u.top().Writable {
			return nil, vfsapi.ErrReadOnly
		}
		if err := u.ensureDirs(ctx, path); err != nil {
			return nil, err
		}
		delete(u.whiteouts, path)
		return u.top().FS.Open(ctx, u.top().full(path), flags)
	default:
		return nil, err
	}
}

// Stat resolves path through the branch stack.
func (u *Union) Stat(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, error) {
	defer ctx.Span.Enter(obs.LayerUnion).Exit()
	_, info, err := u.resolve(ctx, path)
	return info, err
}

// Mkdir creates a directory in the top branch.
func (u *Union) Mkdir(ctx vfsapi.Ctx, path string) error {
	defer ctx.Span.Enter(obs.LayerUnion).Exit()
	if !u.top().Writable {
		return vfsapi.ErrReadOnly
	}
	if _, _, err := u.resolve(ctx, path); err == nil {
		return vfsapi.ErrExist
	}
	if err := u.ensureDirs(ctx, path); err != nil {
		return err
	}
	wasWhiteout := u.whiteouts[path]
	delete(u.whiteouts, path)
	err := u.top().FS.Mkdir(ctx, u.top().full(path))
	if errors.Is(err, vfsapi.ErrExist) {
		err = nil // existed on top but was whited out
	}
	if err != nil {
		return err
	}
	if wasWhiteout {
		// Recreating a removed directory must not resurrect the lower
		// branch's old contents: mark it opaque (AUFS .wh..wh..opq).
		for i := 1; i < len(u.branches); i++ {
			if _, statErr := u.branches[i].FS.Stat(ctx, u.branches[i].full(path)); statErr == nil {
				u.opaque[path] = true
				break
			}
		}
	}
	return nil
}

// Readdir merges the directory contents of every branch, hiding
// whiteouts and deduplicating by name (top branch wins).
func (u *Union) Readdir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	defer ctx.Span.Enter(obs.LayerUnion).Exit()
	seen := map[string]vfsapi.DirEntry{}
	found := false
	prefix := strings.TrimSuffix(path, "/")
	branches := u.branches
	if u.underOpaque(path) {
		branches = u.branches[:1]
	}
	for _, b := range branches {
		ents, err := b.FS.Readdir(ctx, b.full(path))
		u.lookCost(ctx, 1)
		if errors.Is(err, vfsapi.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, err
		}
		found = true
		for _, e := range ents {
			child := prefix + "/" + e.Name
			if u.whiteouts[child] {
				continue
			}
			if _, ok := seen[e.Name]; !ok {
				seen[e.Name] = e
			}
		}
	}
	if !found {
		return nil, vfsapi.ErrNotExist
	}
	out := make([]vfsapi.DirEntry, 0, len(seen))
	for _, e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Unlink removes path: deleted from the top branch if present there,
// and whited out if it exists in any lower branch.
func (u *Union) Unlink(ctx vfsapi.Ctx, path string) error {
	defer ctx.Span.Enter(obs.LayerUnion).Exit()
	src, info, err := u.resolve(ctx, path)
	if err != nil {
		return err
	}
	if info.IsDir {
		return vfsapi.ErrIsDir
	}
	if !u.top().Writable {
		return vfsapi.ErrReadOnly
	}
	if src == 0 {
		if err := u.top().FS.Unlink(ctx, u.top().full(path)); err != nil {
			return err
		}
	}
	// Hide any lower occurrence.
	for i := 1; i < len(u.branches); i++ {
		if _, err := u.branches[i].FS.Stat(ctx, u.branches[i].full(path)); err == nil {
			u.whiteouts[path] = true
			u.chargeWhiteout(ctx, path)
			break
		}
	}
	return nil
}

// chargeWhiteout pays for materializing a whiteout marker in the top
// branch (a small create).
func (u *Union) chargeWhiteout(ctx vfsapi.Ctx, path string) {
	dir := path[:strings.LastIndex(path, "/")+1]
	name := path[strings.LastIndex(path, "/")+1:]
	whPath := u.top().full(dir + ".wh." + name)
	if h, err := u.top().FS.Open(ctx, whPath, vfsapi.CREATE|vfsapi.WRONLY); err == nil {
		h.Close(ctx)
	}
}

// Rmdir removes a directory if the merged view shows it empty.
func (u *Union) Rmdir(ctx vfsapi.Ctx, path string) error {
	defer ctx.Span.Enter(obs.LayerUnion).Exit()
	src, info, err := u.resolve(ctx, path)
	if err != nil {
		return err
	}
	if !info.IsDir {
		return vfsapi.ErrNotDir
	}
	if !u.top().Writable {
		return vfsapi.ErrReadOnly
	}
	ents, err := u.Readdir(ctx, path)
	if err != nil {
		return err
	}
	visible := 0
	for _, e := range ents {
		if !strings.HasPrefix(e.Name, ".wh.") {
			visible++
		}
	}
	if visible > 0 {
		return vfsapi.ErrNotEmpty
	}
	if src == 0 {
		if err := u.top().FS.Rmdir(ctx, u.top().full(path)); err != nil && !errors.Is(err, vfsapi.ErrNotEmpty) {
			return err
		}
	}
	for i := 1; i < len(u.branches); i++ {
		if _, err := u.branches[i].FS.Stat(ctx, u.branches[i].full(path)); err == nil {
			u.whiteouts[path] = true
			break
		}
	}
	return nil
}

// Rename implements rename as copy-up plus whiteout of the source
// (the Unionfs strategy for cross-branch renames); same-branch renames
// on the top branch pass through.
func (u *Union) Rename(ctx vfsapi.Ctx, oldPath, newPath string) error {
	defer ctx.Span.Enter(obs.LayerUnion).Exit()
	src, info, err := u.resolve(ctx, oldPath)
	if err != nil {
		return err
	}
	if !u.top().Writable {
		return vfsapi.ErrReadOnly
	}
	lowerHasOld := false
	for i := 1; i < len(u.branches); i++ {
		if _, err := u.branches[i].FS.Stat(ctx, u.branches[i].full(oldPath)); err == nil {
			lowerHasOld = true
			break
		}
	}
	if src == 0 && !lowerHasOld {
		delete(u.whiteouts, newPath)
		return u.top().FS.Rename(ctx, u.top().full(oldPath), u.top().full(newPath))
	}
	if src != 0 {
		if err := u.copyUp(ctx, oldPath, src, info.Size, false); err != nil {
			return err
		}
	}
	delete(u.whiteouts, newPath)
	if err := u.top().FS.Rename(ctx, u.top().full(oldPath), u.top().full(newPath)); err != nil {
		return err
	}
	u.whiteouts[oldPath] = true
	u.chargeWhiteout(ctx, oldPath)
	return nil
}

package unionfs

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// refModel is a naive flat-namespace oracle for the merged view of a
// two-branch union: a map from path to size.
type refModel struct {
	files map[string]int64
}

func newRefModel(lower map[string]int64) *refModel {
	m := &refModel{files: map[string]int64{}}
	for p, s := range lower {
		m.files[p] = s
	}
	return m
}

// TestUnionMatchesFlatModel drives random operation sequences against a
// two-branch union and the flat oracle, comparing visible state after
// every step.
func TestUnionMatchesFlatModel(t *testing.T) {
	paths := []string{"/f0", "/f1", "/f2", "/f3", "/f4", "/f5"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		cpus := cpu.New(eng, model.Default(), 2)
		upper := memfs.New()
		lower := memfs.New()
		lowerFiles := map[string]int64{}
		for _, p := range paths {
			if rng.Intn(2) == 0 {
				size := rng.Int63n(1 << 20)
				lower.Provision(p, size)
				lowerFiles[p] = size
			}
		}
		u := New([]Branch{{FS: upper, Writable: true}, {FS: lower}}, Config{Kind: cpu.User})
		ref := newRefModel(lowerFiles)

		ok := true
		eng.Go("driver", func(p *sim.Proc) {
			ctx := vfsapi.Ctx{P: p, T: cpus.NewThread(cpu.NewAccount("t"), 0)}
			for step := 0; step < 120 && ok; step++ {
				path := paths[rng.Intn(len(paths))]
				switch rng.Intn(5) {
				case 0: // create or overwrite-extend
					n := rng.Int63n(1<<20) + 1
					h, err := u.Open(ctx, path, vfsapi.CREATE|vfsapi.WRONLY)
					if err != nil {
						ok = false
						t.Logf("seed %d step %d: create %s: %v", seed, step, path, err)
						return
					}
					h.Write(ctx, 0, n)
					h.Close(ctx)
					if old, exists := ref.files[path]; !exists || n > old {
						ref.files[path] = n
					}
				case 1: // append
					n := rng.Int63n(4096) + 1
					h, err := u.Open(ctx, path, vfsapi.WRONLY|vfsapi.APPEND)
					if _, exists := ref.files[path]; !exists {
						if !errors.Is(err, vfsapi.ErrNotExist) {
							ok = false
							t.Logf("seed %d step %d: append missing %s: %v", seed, step, path, err)
						}
						continue
					}
					if err != nil {
						ok = false
						t.Logf("seed %d step %d: append %s: %v", seed, step, path, err)
						return
					}
					h.Append(ctx, n)
					h.Close(ctx)
					ref.files[path] += n
				case 2: // truncate-rewrite
					n := rng.Int63n(1 << 16)
					h, err := u.Open(ctx, path, vfsapi.WRONLY|vfsapi.TRUNC)
					if _, exists := ref.files[path]; !exists {
						if !errors.Is(err, vfsapi.ErrNotExist) {
							ok = false
							t.Logf("seed %d step %d: trunc missing %s: %v", seed, step, path, err)
						}
						continue
					}
					if err != nil {
						ok = false
						t.Logf("seed %d step %d: trunc %s: %v", seed, step, path, err)
						return
					}
					h.Write(ctx, 0, n)
					h.Close(ctx)
					ref.files[path] = n
				case 3: // unlink
					err := u.Unlink(ctx, path)
					if _, exists := ref.files[path]; !exists {
						if !errors.Is(err, vfsapi.ErrNotExist) {
							ok = false
							t.Logf("seed %d step %d: unlink missing %s: %v", seed, step, path, err)
						}
						continue
					}
					if err != nil {
						ok = false
						t.Logf("seed %d step %d: unlink %s: %v", seed, step, path, err)
						return
					}
					delete(ref.files, path)
				case 4: // rename
					dst := paths[rng.Intn(len(paths))]
					if dst == path {
						continue
					}
					err := u.Rename(ctx, path, dst)
					if _, exists := ref.files[path]; !exists {
						if !errors.Is(err, vfsapi.ErrNotExist) {
							ok = false
							t.Logf("seed %d step %d: rename missing %s: %v", seed, step, path, err)
						}
						continue
					}
					if err != nil {
						ok = false
						t.Logf("seed %d step %d: rename %s->%s: %v", seed, step, path, dst, err)
						return
					}
					ref.files[dst] = ref.files[path]
					delete(ref.files, path)
				}
				if !checkView(t, ctx, u, ref, paths, seed, step) {
					ok = false
					return
				}
			}
		})
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// checkView compares the union's visible namespace with the oracle.
func checkView(t *testing.T, ctx vfsapi.Ctx, u *Union, ref *refModel, paths []string, seed int64, step int) bool {
	for _, p := range paths {
		info, err := u.Stat(ctx, p)
		want, exists := ref.files[p]
		switch {
		case exists && err != nil:
			t.Logf("seed %d step %d: %s should exist: %v", seed, step, p, err)
			return false
		case !exists && err == nil:
			t.Logf("seed %d step %d: %s should not exist (size %d)", seed, step, p, info.Size)
			return false
		case exists && info.Size != want:
			t.Logf("seed %d step %d: %s size %d want %d", seed, step, p, info.Size, want)
			return false
		}
	}
	// Readdir agrees with the oracle (ignoring whiteout artifacts).
	ents, err := u.Readdir(ctx, "/")
	if err != nil {
		t.Logf("seed %d step %d: readdir: %v", seed, step, err)
		return false
	}
	visible := map[string]bool{}
	for _, e := range ents {
		if !strings.HasPrefix(e.Name, ".wh.") {
			visible["/"+e.Name] = true
		}
	}
	for p := range ref.files {
		if !visible[p] {
			t.Logf("seed %d step %d: %s missing from readdir %v", seed, step, p, ents)
			return false
		}
	}
	for p := range visible {
		if _, exists := ref.files[p]; !exists {
			t.Logf("seed %d step %d: phantom entry %s", seed, step, p)
			return false
		}
	}
	return true
}

// TestUnionReadSizesMatchModel verifies reads observe the merged sizes
// after copy-up chains.
func TestUnionReadSizesMatchModel(t *testing.T) {
	eng := sim.NewEngine()
	cpus := cpu.New(eng, model.Default(), 2)
	upper := memfs.New()
	lower := memfs.New()
	lower.Provision("/data", 1<<20)
	u := New([]Branch{{FS: upper, Writable: true}, {FS: lower}}, Config{Kind: cpu.User})
	eng.Go("t", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: cpus.NewThread(cpu.NewAccount("t"), 0)}
		for i := 0; i < 5; i++ {
			h, err := u.Open(ctx, "/data", vfsapi.WRONLY|vfsapi.APPEND)
			if err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			h.Append(ctx, 1000)
			h.Close(ctx)
		}
		h, _ := u.Open(ctx, "/data", vfsapi.RDONLY)
		got, _ := h.Read(ctx, 0, 10<<20)
		h.Close(ctx)
		want := int64(1<<20 + 5000)
		if got != want {
			t.Errorf("read %d, want %d", got, want)
		}
	})
	eng.Run()
}

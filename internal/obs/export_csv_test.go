package obs

import (
	"bytes"
	"encoding/csv"
	"testing"
	"time"
)

// TestMetricsCSVQuotingRoundTrip verifies that run labels, tenant and
// series names containing commas, quotes and newlines survive a round
// trip through a standards-conforming CSV reader. The pre-fix exporter
// emitted such labels raw, silently shifting every following column.
func TestMetricsCSVQuotingRoundTrip(t *testing.T) {
	now := time.Duration(0)
	rec := New(Config{Clock: func() time.Duration { return now }})
	label := `sweep,K r=2 "quick"`
	tenant := `fls,0`
	series := `lock_wait,"i_mutex"`
	rec.Sample(tenant, series, 5*time.Millisecond, 42.5)

	var buf bytes.Buffer
	if err := WriteMetricsCSV(&buf, []Run{{Label: label, Rec: rec}}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("exported CSV does not parse: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("want header + 1 row, got %d rows", len(rows))
	}
	row := rows[1]
	if row[0] != label || row[1] != tenant || row[2] != series {
		t.Errorf("fields did not round-trip: %q", row)
	}
	if row[3] != "5000000" || row[4] != "42.5" {
		t.Errorf("numeric columns shifted: %q", row)
	}
}

// TestCSVField pins the quoting rules shared by the metrics and blame
// exporters.
func TestCSVField(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"", ""},
		{"a,b", `"a,b"`},
		{`say "hi"`, `"say ""hi"""`},
		{"two\nlines", "\"two\nlines\""},
	}
	for _, c := range cases {
		if got := CSVField(c.in); got != c.want {
			t.Errorf("CSVField(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestWaitBindingAndLeaks exercises the proc→span wait attribution and
// the span-leak ledger.
func TestWaitBindingAndLeaks(t *testing.T) {
	now := time.Duration(0)
	rec := New(Config{Clock: func() time.Duration { return now }})

	// A wait before any span is bound is counted, not stored.
	rec.Wait(7, "lock", "i_mutex", "kflushd", 0, 0, time.Millisecond)
	if n := rec.UnattributedWaits(); n != 1 {
		t.Fatalf("unattributed = %d, want 1", n)
	}

	sp := rec.StartSpan(7, "fls0", "read")
	now = 2 * time.Millisecond
	rec.Wait(7, "lock", "i_mutex", "kflushd", 0, time.Millisecond, time.Millisecond)
	if len(rec.Waits()) != 1 {
		t.Fatalf("bound wait not recorded: %d", len(rec.Waits()))
	}
	w := rec.Waits()[0]
	if rec.Str(w.Tenant) != "fls0" || rec.Str(w.Kind) != "lock" ||
		rec.Str(w.Resource) != "i_mutex" || rec.Str(w.Holder) != "kflushd" {
		t.Errorf("wait fields wrong: %+v", w)
	}

	if leaks := rec.LeakedSpans(); len(leaks) != 1 {
		t.Fatalf("open span not reported as leak: %v", leaks)
	}
	sp.End(0, nil)
	if leaks := rec.LeakedSpans(); leaks != nil {
		t.Fatalf("ended span still reported leaked: %v", leaks)
	}
	// After End the binding is gone: further waits are unattributed.
	rec.Wait(7, "run", "cpu", "", 0, 0, time.Millisecond)
	if n := rec.UnattributedWaits(); n != 2 {
		t.Fatalf("unattributed after End = %d, want 2", n)
	}
}

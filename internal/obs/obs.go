// Package obs is the cross-layer observability layer of the testbed:
// request-scoped spans recording per-layer enter/exit in virtual time,
// per-core execution slices, and a per-tenant metrics registry, all
// exportable as a Chrome/Perfetto trace and as JSON/CSV metrics (see
// OBSERVABILITY.md).
//
// Two properties shape the design:
//
//   - Zero overhead when disabled. The recorder is carried as a
//     possibly-nil pointer (a nil *Recorder, a nil *Span) and every
//     method is nil-safe, so instrumented code paths simply pass a nil
//     through. No engine events are scheduled and no virtual time is
//     consumed: a run without a recorder is event-for-event identical
//     to an uninstrumented build, and a run WITH a recorder (sampling
//     off) produces identical virtual-time results — the recorder only
//     reads the clock.
//
//   - Determinism. Span and slice identifiers are assigned
//     sequentially in engine order, timestamps are virtual, and the
//     exporters sort every map, so the same schedule produces
//     byte-identical artifacts across runs.
//
// Spans are created at the filesystem facade boundary (see
// vfsapi.Traced) and travel by value inside vfsapi.Ctx through every
// layer; each layer brackets its work with Span.Enter/Scope.Exit.
// Background activity that acts on behalf of a tenant — the kernel
// writeback flusher, the user-level client flusher — opens its own
// span tagged with the *originating* tenant, so core stealing and
// lock waits can be attributed to the pool whose dirty data caused
// them even though the CPU time lands on the kernel's account.
//
// The package deliberately depends only on the standard library and
// internal/metrics, so every simulator layer (sim, cpu, vfsapi, kern,
// cluster, ...) can import it without cycles; the virtual clock is
// injected as a closure instead of importing the engine.
package obs

import (
	"fmt"
	"sort"
	"time"
)

// Layer names one level of the client I/O stack crossed by a span.
// The vocabulary is documented in OBSERVABILITY.md.
type Layer string

// Layer vocabulary, ordered roughly top (application-facing) to
// bottom (storage cluster).
const (
	// LayerRequest is the root slice of a request span, emitted by the
	// vfsapi.Traced facade when the operation completes.
	LayerRequest Layer = "request"
	// LayerIPC is the Danaus shared-memory transport (ipc.Transport).
	LayerIPC Layer = "ipc"
	// LayerFUSE is a FUSE crossing (fusefs.Transport).
	LayerFUSE Layer = "fuse"
	// LayerUnion is the union filesystem (unionfs.Union).
	LayerUnion Layer = "union"
	// LayerClient is the user-level Ceph client (cephclient.Client).
	LayerClient Layer = "client"
	// LayerSyscall is the kernel VFS entry (kern.Syscalls).
	LayerSyscall Layer = "syscall"
	// LayerWriteback is flusher writeback work (kern.Mount.flushPass,
	// cephclient flushPass); its span carries the originating tenant.
	LayerWriteback Layer = "writeback"
	// LayerMDS is a metadata round trip to the MDS.
	LayerMDS Layer = "mds"
	// LayerOSD is object service at an OSD (media + op cost).
	LayerOSD Layer = "osd"
	// LayerNet is time on the network fabric (NIC links, propagation).
	LayerNet Layer = "net"
	// LayerEvent is a zero-duration point marker (Recorder.Mark):
	// circuit-breaker state transitions, brownout flips. The blame
	// engine ignores it (it only decomposes LayerRequest slices).
	LayerEvent Layer = "event"
)

// Config configures a Recorder.
type Config struct {
	// Clock reads the virtual time (typically sim.Engine.Now).
	// Required.
	Clock func() time.Duration
	// SampleInterval is the virtual-time period of the core-utilization
	// and cache-occupancy series sampler (core.Testbed.AttachObserver
	// schedules it). Zero or negative disables sampling — and with it
	// the only engine events observability ever adds.
	SampleInterval time.Duration
	// MaxEvents caps the retained trace events (span slices plus core
	// slices). Beyond the cap events are counted as dropped instead of
	// retained, keeping memory bounded on long runs. Zero means the
	// default of 4M events.
	MaxEvents int
}

// Recorder accumulates the trace events and metrics of one testbed
// run. A nil *Recorder is the disabled state: every method no-ops.
type Recorder struct {
	cfg      Config
	nextSpan uint64
	slices   []SliceEvent
	cores    []CoreEvent
	waits    []WaitEvent
	dropped  uint64

	// procSpan binds each simulated process to the span it is currently
	// serving, so passively observed waits (engine wait observer) can be
	// attributed to a request. Exactly one goroutine runs at any instant
	// in the simulation, so plain map access is safe.
	procSpan map[int32]*Span
	// unattributed counts waits observed on processes with no bound
	// span (warmup traffic, background threads outside their lazy
	// writeback spans).
	unattributed uint64
	// open tracks spans started and not yet ended — the span-leak
	// checker's ledger.
	open map[uint64]*Span

	// Tenant/op/layer/account names are interned to small ids so the
	// (potentially millions of) retained events carry no pointers: the
	// garbage collector never scans the event buffers, which keeps
	// recording overhead flat as they grow.
	syms   []string
	symIdx map[string]Sym

	reg        *Registry
	finalizers []func(*Registry)
	finalized  bool

	// opSink, when set, receives one OpEvent per completed root request
	// span (see OpDone). It is the feed of the trace recorder
	// (internal/trace); nil means no per-op capture.
	opSink func(OpEvent)

	// telOp/telWait, when set, feed the live telemetry monitor
	// (internal/telemetry via core.AttachMonitor). They coexist with
	// opSink — trace capture and live monitoring can run in the same
	// run — and share its contract: pure observations, no engine
	// events, no extra clock reads beyond what OpDone already does.
	telOp   func(OpEvent)
	telWait func(victim, aggressor string, start, dur time.Duration)
}

// Sym is an interned string id, resolvable with Recorder.Str. Ids are
// assigned sequentially in first-use (engine) order, so they are
// deterministic across identical runs.
type Sym uint32

// SliceEvent is one recorded layer crossing of a span: the span spent
// [Start, Start+Dur) inside Layer. String fields are interned
// (Recorder.Str resolves them) to keep the event buffers pointer-free.
type SliceEvent struct {
	Span   uint64
	Proc   int32
	Tenant Sym
	Op     Sym
	Layer  Sym
	Start  time.Duration
	Dur    time.Duration
	Err    bool
}

// WaitEvent is one completed wait interval observed while a bound span
// was being served: the span's process spent [Start, Start+Dur) blocked
// on (or, for Kind "run", executing on) Resource. Holder identifies the
// party occupying the resource when the wait began ("" when not
// applicable). String fields are interned (Recorder.Str resolves them).
type WaitEvent struct {
	Span     uint64
	Proc     int32
	Tenant   Sym
	Op       Sym
	Kind     Sym
	Resource Sym
	Holder   Sym
	// HolderTenant is the tenant of the span the holder process was
	// serving when the wait completed ("" when the holder is not a
	// process or was not serving a traced request). The interference
	// matrix prefers it over Holder: background kernel threads dissolve
	// into the tenant on whose behalf they worked.
	HolderTenant Sym
	Start        time.Duration
	Dur          time.Duration
}

// CoreEvent is one scheduler quantum (or sub-quantum slice) executed
// on a simulated core, attributed to the account that consumed it.
// Account and Kind are interned (Recorder.Str).
type CoreEvent struct {
	Core    int32
	Start   time.Duration
	Dur     time.Duration
	Account Sym
	Kind    Sym // "user" or "kernel"
}

// OpEvent describes one completed VFS operation as seen at the
// facade boundary (vfsapi.Traced): who issued it, what it did, when it
// was issued in virtual time, and how long it took. It carries enough
// to reissue the operation byte-identically (path, flags, offset,
// length), which is what internal/trace records and replays.
type OpEvent struct {
	Proc    int32
	Tenant  string
	Op      string
	Path    string
	Path2   string // rename destination, "" otherwise
	Flags   int    // open flags bitmask, 0 otherwise
	Offset  int64
	Len     int64         // requested length (reissue parameter)
	Bytes   int64         // bytes actually served (short reads < Len)
	Issue   time.Duration // span start (virtual time the op was issued)
	Latency time.Duration
	Err     bool
}

// SetOpSink installs (or, with nil, removes) the per-op event sink.
// The sink fires once per root request span as it completes, in engine
// order. With no sink installed the capture path costs a single nil
// check per op and reads no clock, preserving the
// zero-overhead-when-disabled contract. Nil-safe.
func (r *Recorder) SetOpSink(fn func(OpEvent)) {
	if r == nil {
		return
	}
	r.opSink = fn
}

// SetTelemetrySinks installs (or, with nil, removes) the live
// telemetry feeds: op receives the same OpEvent stream as the op sink,
// wait receives cross-tenant wait attributions (victim charged,
// aggressor blamed) as they are observed. Both coexist with SetOpSink.
// Nil-safe.
func (r *Recorder) SetTelemetrySinks(op func(OpEvent), wait func(victim, aggressor string, start, dur time.Duration)) {
	if r == nil {
		return
	}
	r.telOp = op
	r.telWait = wait
}

// OpDone feeds one completed operation to the op sink and the
// telemetry sink. The traced facade calls it alongside Span.End with
// the reissue parameters the span itself does not carry (path, flags,
// offset, length) plus the bytes actually served. No-op when the
// recorder, every sink, or the span is nil — nested facade crossings
// pass a nil span, so only the root of a request is captured.
func (r *Recorder) OpDone(sp *Span, path, path2 string, flags int, off, n, served int64, err error) {
	if r == nil || sp == nil || (r.opSink == nil && r.telOp == nil) {
		return
	}
	e := OpEvent{
		Proc: sp.proc, Tenant: sp.tenant, Op: sp.op,
		Path: path, Path2: path2, Flags: flags, Offset: off, Len: n, Bytes: served,
		Issue: sp.start, Latency: r.cfg.Clock() - sp.start, Err: err != nil,
	}
	if r.opSink != nil {
		r.opSink(e)
	}
	if r.telOp != nil {
		r.telOp(e)
	}
}

// New creates an enabled recorder. cfg.Clock must be set.
func New(cfg Config) *Recorder {
	if cfg.Clock == nil {
		panic("obs: Config.Clock is required")
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 4 << 20
	}
	return &Recorder{
		cfg: cfg, reg: NewRegistry(), symIdx: map[string]Sym{},
		procSpan: map[int32]*Span{}, open: map[uint64]*Span{},
	}
}

// intern maps a string to its stable id, assigning one on first use.
func (r *Recorder) intern(s string) Sym {
	if id, ok := r.symIdx[s]; ok {
		return id
	}
	id := Sym(len(r.syms))
	r.syms = append(r.syms, s)
	r.symIdx[s] = id
	return id
}

// Str resolves an interned id back to its string. Nil-safe.
func (r *Recorder) Str(id Sym) string {
	if r == nil || int(id) >= len(r.syms) {
		return ""
	}
	return r.syms[id]
}

// Enabled reports whether the recorder collects anything (non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Now reads the recorder's virtual clock.
func (r *Recorder) Now() time.Duration { return r.cfg.Clock() }

// SampleInterval returns the configured sampler period.
func (r *Recorder) SampleInterval() time.Duration {
	if r == nil {
		return 0
	}
	return r.cfg.SampleInterval
}

// Dropped returns how many events were discarded over MaxEvents.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Slices returns the recorded span slices (exporter access).
func (r *Recorder) Slices() []SliceEvent { return r.slices }

// CoreEvents returns the recorded per-core slices (exporter access).
func (r *Recorder) CoreEvents() []CoreEvent { return r.cores }

// Waits returns the recorded wait events (blame-engine access).
func (r *Recorder) Waits() []WaitEvent {
	if r == nil {
		return nil
	}
	return r.waits
}

// UnattributedWaits returns how many observed waits had no bound span.
func (r *Recorder) UnattributedWaits() uint64 {
	if r == nil {
		return 0
	}
	return r.unattributed
}

// Registry returns the metrics registry, or nil when disabled.
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

func (r *Recorder) room() bool {
	if len(r.slices)+len(r.cores)+len(r.waits) >= r.cfg.MaxEvents {
		r.dropped++
		return false
	}
	return true
}

// StartSpan opens a request-scoped span for tenant performing op on
// simulated process proc. Returns nil (a no-op span) when the
// recorder is disabled.
func (r *Recorder) StartSpan(proc int, tenant, op string) *Span {
	if r == nil {
		return nil
	}
	r.nextSpan++
	s := &Span{
		rec: r, id: r.nextSpan, proc: int32(proc),
		tenant: tenant, op: op,
		tenantSym: r.intern(tenant), opSym: r.intern(op),
		start: r.cfg.Clock(),
	}
	r.procSpan[s.proc] = s
	r.open[s.id] = s
	return s
}

// Mark records a zero-duration point event (layer "event") tagged with
// tenant and name — breaker transitions, brownout flips. Unlike
// StartSpan it never binds a process, so a mark emitted mid-request
// cannot steal the wait attribution of the active request span.
// Nil-safe.
func (r *Recorder) Mark(tenant, name string) {
	if r == nil || !r.room() {
		return
	}
	r.nextSpan++
	now := r.cfg.Clock()
	r.slices = append(r.slices, SliceEvent{
		Span: r.nextSpan, Tenant: r.intern(tenant), Op: r.intern(name),
		Layer: r.intern(string(LayerEvent)), Start: now,
	})
}

// Wait attributes one passively observed wait interval to the span
// currently bound to proc. Waits on processes with no bound span
// (warmup traffic, background threads between writeback passes) are
// counted, not stored. When holderID names a process that is itself
// serving a span, the holder is additionally resolved to that span's
// tenant — so a kernel flusher holding i_mutex mid-writeback blames
// the tenant whose dirty data it was flushing. Nil-safe.
func (r *Recorder) Wait(proc int, kind, resource, holder string, holderID int, start, dur time.Duration) {
	if r == nil {
		return
	}
	s, ok := r.procSpan[int32(proc)]
	if !ok {
		r.unattributed++
		return
	}
	holderTenant := ""
	if holderID != 0 {
		if hs, ok := r.procSpan[int32(holderID)]; ok {
			holderTenant = hs.tenant
		}
	}
	// Telemetry sees every attributed wait, even once the bounded event
	// buffer is full — the monitor aggregates online and stores O(1).
	if r.telWait != nil {
		r.telWait(s.tenant, holderTenant, start, dur)
	}
	if !r.room() {
		return
	}
	r.waits = append(r.waits, WaitEvent{
		Span: s.id, Proc: s.proc, Tenant: s.tenantSym, Op: s.opSym,
		Kind: r.intern(kind), Resource: r.intern(resource),
		Holder: r.intern(holder), HolderTenant: r.intern(holderTenant),
		Start: start, Dur: dur,
	})
}

// LeakedSpans describes every span opened but never ended, sorted by
// span id. The test suite asserts this is empty at engine drain: a
// leaked span means an instrumentation point lost an End on some path.
// Nil-safe.
func (r *Recorder) LeakedSpans() []string {
	if r == nil || len(r.open) == 0 {
		return nil
	}
	ids := make([]uint64, 0, len(r.open))
	for id := range r.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		s := r.open[id]
		out = append(out, fmt.Sprintf("span %d proc %d tenant %q op %q started %v",
			s.id, s.proc, s.tenant, s.op, s.start))
	}
	return out
}

// Core records one executed core slice. Nil-safe.
func (r *Recorder) Core(core int, start, dur time.Duration, account, kind string) {
	if r == nil || !r.room() {
		return
	}
	r.cores = append(r.cores, CoreEvent{
		Core: int32(core), Start: start, Dur: dur,
		Account: r.intern(account), Kind: r.intern(kind),
	})
}

// Sample appends one point to the named per-tenant time series
// (tenant "host" is the whole-machine pseudo-tenant). Nil-safe.
func (r *Recorder) Sample(tenant, series string, t time.Duration, v float64) {
	if r == nil {
		return
	}
	r.reg.Tenant(tenant).Series(series).Add(t, v)
}

// OnFinalize registers a harvest function run once by Finalize, in
// registration order. Used to fold end-of-run aggregates (lock stats,
// cache stats, fault counters) into the registry. Nil-safe.
func (r *Recorder) OnFinalize(fn func(*Registry)) {
	if r == nil {
		return
	}
	r.finalizers = append(r.finalizers, fn)
}

// Finalize runs the registered harvest functions exactly once (the
// exporters call it). Nil-safe and idempotent.
func (r *Recorder) Finalize() {
	if r == nil || r.finalized {
		return
	}
	r.finalized = true
	for _, fn := range r.finalizers {
		fn(r.reg)
	}
}

// Span is one request (or one background writeback pass) traveling
// through the stack. A nil *Span is the disabled state: every method
// no-ops, so instrumentation points never test for enablement.
type Span struct {
	rec       *Recorder
	id        uint64
	proc      int32
	tenant    string
	op        string
	tenantSym Sym
	opSym     Sym
	start     time.Duration
}

// Tenant returns the originating tenant tag ("" on a nil span).
func (s *Span) Tenant() string {
	if s == nil {
		return ""
	}
	return s.tenant
}

// Enter brackets entry into a layer; the returned Scope's Exit
// records the slice. Usable as `defer sp.Enter(l).Exit()`. Nil-safe:
// a nil span returns a zero Scope whose Exit no-ops.
func (s *Span) Enter(l Layer) Scope {
	if s == nil {
		return Scope{}
	}
	return Scope{span: s, layer: l, start: s.rec.cfg.Clock()}
}

// End completes the span: it emits the root LayerRequest slice and
// folds the operation into the per-tenant registry (latency
// histogram, op/byte/error counters). Nil-safe.
func (s *Span) End(bytes int64, err error) {
	if s == nil {
		return
	}
	now := s.rec.cfg.Clock()
	if s.rec.room() {
		s.rec.slices = append(s.rec.slices, SliceEvent{
			Span: s.id, Proc: s.proc, Tenant: s.tenantSym, Op: s.opSym,
			Layer: s.rec.intern(string(LayerRequest)),
			Start: s.start, Dur: now - s.start, Err: err != nil,
		})
	}
	if s.rec.procSpan[s.proc] == s {
		delete(s.rec.procSpan, s.proc)
	}
	delete(s.rec.open, s.id)
	s.rec.reg.Tenant(s.tenant).Op(s.op).record(now-s.start, bytes, err)
}

// LockWait attributes a lock-acquisition wait observed while serving
// this span to the span's tenant. Zero waits still count an
// acquisition. Nil-safe.
func (s *Span) LockWait(lock string, wait time.Duration) {
	if s == nil {
		return
	}
	s.rec.reg.Tenant(s.tenant).Lock(lock).addWait(wait)
}

// Scope is an open layer crossing of a span.
type Scope struct {
	span  *Span
	layer Layer
	start time.Duration
}

// Exit closes the crossing and records its slice. No-op on the zero
// Scope.
func (sc Scope) Exit() {
	s := sc.span
	if s == nil {
		return
	}
	if !s.rec.room() {
		return
	}
	now := s.rec.cfg.Clock()
	s.rec.slices = append(s.rec.slices, SliceEvent{
		Span: s.id, Proc: s.proc, Tenant: s.tenantSym, Op: s.opSym,
		Layer: s.rec.intern(string(sc.layer)), Start: sc.start, Dur: now - sc.start,
	})
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Run labels one recorder for export; exporting several runs merges
// them into a single artifact with per-run process groups (the
// harness runs one testbed per experiment case).
type Run struct {
	Label string
	Rec   *Recorder
}

// The trace exporter emits Chrome trace-event JSON (the format
// Perfetto and chrome://tracing load): complete "X" slices with
// microsecond timestamps, one process group per run for the simulated
// cores and one per tenant, plus "M" metadata naming them. Events are
// hand-serialized into a reused buffer — a trace holds millions of
// them, and per-event json.Marshal calls (plus their args maps) would
// dominate the export. See OBSERVABILITY.md for how to open the file.

// appendJSONString appends s as a JSON string literal. Names in the
// simulator are plain identifiers, so the fast path covers everything;
// the encoder fallback keeps exotic input correct anyway.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x7f {
			enc, _ := json.Marshal(s)
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendUsec appends a nanosecond count as decimal microseconds.
func appendUsec(b []byte, ns int64) []byte {
	return strconv.AppendFloat(b, float64(ns)/1e3, 'f', -1, 64)
}

// WriteTrace writes the merged Chrome/Perfetto trace of runs to w.
// Output is deterministic: events are emitted in recording order and
// process ids in sorted tenant order.
func WriteTrace(w io.Writer, runs []Run) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	buf := make([]byte, 0, 256)
	emit := func() error {
		var err error
		if !first {
			_, err = bw.WriteString(",\n")
		}
		first = false
		if err == nil {
			_, err = bw.Write(buf)
		}
		return err
	}
	meta := func(kind string, pid, tid int, name string) error {
		buf = buf[:0]
		buf = append(buf, `{"name":"`...)
		buf = append(buf, kind...)
		buf = append(buf, `","ph":"M","pid":`...)
		buf = strconv.AppendInt(buf, int64(pid), 10)
		buf = append(buf, `,"tid":`...)
		buf = strconv.AppendInt(buf, int64(tid), 10)
		buf = append(buf, `,"args":{"name":`...)
		buf = appendJSONString(buf, name)
		buf = append(buf, `}}`...)
		return emit()
	}
	for i, run := range runs {
		rec := run.Rec
		if rec == nil {
			continue
		}
		rec.Finalize()
		base := i * 100
		corePid := base + 1
		if err := meta("process_name", corePid, 0, run.Label+" cores"); err != nil {
			return err
		}
		maxCore := int32(-1)
		for _, c := range rec.CoreEvents() {
			if c.Core > maxCore {
				maxCore = c.Core
			}
		}
		for c := 0; c <= int(maxCore); c++ {
			if err := meta("thread_name", corePid, c, fmt.Sprintf("core%d", c)); err != nil {
				return err
			}
		}
		// One process per tenant, in sorted tenant order.
		tenantPid := map[Sym]int{}
		for _, s := range rec.Slices() {
			tenantPid[s.Tenant] = 0
		}
		names := make([]string, 0, len(tenantPid))
		bySym := map[Sym]string{}
		for t := range tenantPid {
			bySym[t] = rec.Str(t)
			names = append(names, bySym[t])
		}
		sort.Strings(names)
		byName := map[string]int{}
		for j, t := range names {
			byName[t] = base + 2 + j
		}
		for t := range tenantPid {
			tenantPid[t] = byName[bySym[t]]
		}
		for _, t := range names {
			if err := meta("process_name", byName[t], 0, run.Label+" "+t); err != nil {
				return err
			}
		}
		for _, c := range rec.CoreEvents() {
			buf = buf[:0]
			buf = append(buf, `{"name":`...)
			buf = appendJSONString(buf, rec.Str(c.Account))
			buf = append(buf, `,"cat":"core","ph":"X","ts":`...)
			buf = appendUsec(buf, int64(c.Start))
			buf = append(buf, `,"dur":`...)
			buf = appendUsec(buf, int64(c.Dur))
			buf = append(buf, `,"pid":`...)
			buf = strconv.AppendInt(buf, int64(corePid), 10)
			buf = append(buf, `,"tid":`...)
			buf = strconv.AppendInt(buf, int64(c.Core), 10)
			buf = append(buf, `,"args":{"kind":`...)
			buf = appendJSONString(buf, rec.Str(c.Kind))
			buf = append(buf, `}}`...)
			if err := emit(); err != nil {
				return err
			}
		}
		for _, s := range rec.Slices() {
			buf = buf[:0]
			buf = append(buf, `{"name":`...)
			buf = appendJSONString(buf, rec.Str(s.Layer))
			buf = append(buf, `,"cat":"span","ph":"X","ts":`...)
			buf = appendUsec(buf, int64(s.Start))
			buf = append(buf, `,"dur":`...)
			buf = appendUsec(buf, int64(s.Dur))
			buf = append(buf, `,"pid":`...)
			buf = strconv.AppendInt(buf, int64(tenantPid[s.Tenant]), 10)
			buf = append(buf, `,"tid":`...)
			buf = strconv.AppendInt(buf, int64(s.Proc), 10)
			buf = append(buf, `,"args":{"span":`...)
			buf = strconv.AppendUint(buf, s.Span, 10)
			buf = append(buf, `,"op":`...)
			buf = appendJSONString(buf, rec.Str(s.Op))
			buf = append(buf, `,"tenant":`...)
			buf = appendJSONString(buf, rec.Str(s.Tenant))
			if s.Err {
				buf = append(buf, `,"err":true`...)
			}
			buf = append(buf, `}}`...)
			if err := emit(); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteTraceFile writes the merged trace to path.
func WriteTraceFile(path string, runs []Run) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, runs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// The metrics JSON document. Durations are nanoseconds; map keys are
// sorted by the encoder, so the document is deterministic.
type metricsDoc struct {
	Runs []runDoc `json:"runs"`
}

type runDoc struct {
	Label         string               `json:"label"`
	DroppedEvents uint64               `json:"dropped_events"`
	Tenants       map[string]tenantDoc `json:"tenants"`
}

type tenantDoc struct {
	Ops      map[string]opDoc     `json:"ops,omitempty"`
	Locks    map[string]lockDoc   `json:"locks,omitempty"`
	Counters map[string]int64     `json:"counters,omitempty"`
	Faults   *faultsDoc           `json:"faults,omitempty"`
	Series   map[string]seriesDoc `json:"series,omitempty"`
}

type opDoc struct {
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
	Bytes  int64  `json:"bytes"`
	MinNs  int64  `json:"min_ns"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P90Ns  int64  `json:"p90_ns"`
	P99Ns  int64  `json:"p99_ns"`
	MaxNs  int64  `json:"max_ns"`
}

type lockDoc struct {
	Count     uint64 `json:"count"`
	Contended uint64 `json:"contended"`
	WaitNs    int64  `json:"wait_ns"`
	HoldNs    int64  `json:"hold_ns"`
	MaxWaitNs int64  `json:"max_wait_ns"`
}

type faultsDoc struct {
	Retries        uint64 `json:"retries"`
	Failovers      uint64 `json:"failovers"`
	DeadlineMisses uint64 `json:"deadline_misses"`
	TimeDegradedNs int64  `json:"time_degraded_ns"`
}

type seriesDoc struct {
	Points [][2]float64 `json:"points"` // [t_ns, value]
}

func tenantToDoc(t *TenantMetrics) tenantDoc {
	doc := tenantDoc{}
	if len(t.ops) > 0 {
		doc.Ops = map[string]opDoc{}
		for name, o := range t.ops {
			doc.Ops[name] = opDoc{
				Count: o.Ops, Errors: o.Errors, Bytes: o.Bytes,
				MinNs:  int64(o.Hist.Min()),
				MeanNs: int64(o.Hist.Mean()),
				P50Ns:  int64(o.Hist.Quantile(0.50)),
				P90Ns:  int64(o.Hist.Quantile(0.90)),
				P99Ns:  int64(o.Hist.Quantile(0.99)),
				MaxNs:  int64(o.Hist.Max()),
			}
		}
	}
	if len(t.locks) > 0 {
		doc.Locks = map[string]lockDoc{}
		for name, l := range t.locks {
			doc.Locks[name] = lockDoc{
				Count: l.Count, Contended: l.Contended,
				WaitNs: int64(l.Wait), HoldNs: int64(l.Hold), MaxWaitNs: int64(l.MaxWait),
			}
		}
	}
	if len(t.counters) > 0 {
		doc.Counters = t.counters
	}
	if f := t.faults; f.Retries+f.Failovers+f.DeadlineMisses != 0 || f.TimeDegraded != 0 {
		doc.Faults = &faultsDoc{
			Retries: f.Retries, Failovers: f.Failovers,
			DeadlineMisses: f.DeadlineMisses, TimeDegradedNs: int64(f.TimeDegraded),
		}
	}
	if len(t.series) > 0 {
		doc.Series = map[string]seriesDoc{}
		for name, s := range t.series {
			pts := make([][2]float64, len(s.Points))
			for i, p := range s.Points {
				pts[i] = [2]float64{float64(p.T), p.V}
			}
			doc.Series[name] = seriesDoc{Points: pts}
		}
	}
	return doc
}

// WriteMetrics writes the per-tenant metrics of runs as JSON.
func WriteMetrics(w io.Writer, runs []Run) error {
	doc := metricsDoc{Runs: []runDoc{}}
	for _, run := range runs {
		rec := run.Rec
		if rec == nil {
			continue
		}
		rec.Finalize()
		rd := runDoc{Label: run.Label, DroppedEvents: rec.Dropped(), Tenants: map[string]tenantDoc{}}
		for name, t := range rec.Registry().Tenants() {
			rd.Tenants[name] = tenantToDoc(t)
		}
		doc.Runs = append(doc.Runs, rd)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// CSVField quotes one CSV field per RFC 4180: fields containing a
// comma, a double quote, or a newline are wrapped in double quotes with
// embedded quotes doubled; anything else passes through unchanged. The
// metrics exporter and the blame tables share it so run labels and lock
// names with punctuation survive a round trip through encoding/csv.
func CSVField(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// WriteMetricsCSV writes every time series of runs as CSV rows
// (run,tenant,series,t_ns,value) in sorted run/tenant/series order.
func WriteMetricsCSV(w io.Writer, runs []Run) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("run,tenant,series,t_ns,value\n"); err != nil {
		return err
	}
	for _, run := range runs {
		rec := run.Rec
		if rec == nil {
			continue
		}
		rec.Finalize()
		reg := rec.Registry()
		tenants := make([]string, 0, len(reg.Tenants()))
		for t := range reg.Tenants() {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		for _, tn := range tenants {
			t := reg.Tenants()[tn]
			names := make([]string, 0, len(t.series))
			for n := range t.series {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, sn := range names {
				for _, p := range t.series[sn].Points {
					if _, err := fmt.Fprintf(bw, "%s,%s,%s,%d,%s\n",
						CSVField(run.Label), CSVField(tn), CSVField(sn), int64(p.T),
						strconv.FormatFloat(p.V, 'g', -1, 64)); err != nil {
						return err
					}
				}
			}
		}
	}
	return bw.Flush()
}

// WriteMetricsFile writes metrics to path: CSV time series when the
// path ends in .csv, the full JSON document otherwise.
func WriteMetricsFile(path string, runs []Run) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".csv") {
		werr = WriteMetricsCSV(f, runs)
	} else {
		werr = WriteMetrics(f, runs)
	}
	if werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

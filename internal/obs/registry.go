package obs

import (
	"time"

	"repro/internal/metrics"
)

// Registry is the per-tenant metrics store of one run: operation
// latency histograms and counters, lock-wait attribution, free-form
// counters, fault counters and virtual-time series, keyed by tenant
// name. The pseudo-tenant "host" holds whole-machine aggregates
// (kernel lock totals, per-core busy time, cluster and network
// counters).
type Registry struct {
	tenants map[string]*TenantMetrics
}

// HostTenant is the reserved tenant name for host-wide aggregates.
const HostTenant = "host"

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tenants: map[string]*TenantMetrics{}}
}

// Tenant returns (creating on first use) the named tenant's metrics.
func (g *Registry) Tenant(name string) *TenantMetrics {
	t, ok := g.tenants[name]
	if !ok {
		t = &TenantMetrics{
			ops:      map[string]*OpStats{},
			locks:    map[string]*LockAgg{},
			counters: map[string]int64{},
			series:   map[string]*Series{},
		}
		g.tenants[name] = t
	}
	return t
}

// Tenants returns the tenant map (exporter access; exporters must
// iterate it in sorted key order).
func (g *Registry) Tenants() map[string]*TenantMetrics { return g.tenants }

// TenantMetrics holds every metric attributed to one tenant.
type TenantMetrics struct {
	ops      map[string]*OpStats
	locks    map[string]*LockAgg
	counters map[string]int64
	series   map[string]*Series
	faults   metrics.FaultCounters
}

// Op returns (creating on first use) the stats of one operation type.
func (t *TenantMetrics) Op(name string) *OpStats {
	o, ok := t.ops[name]
	if !ok {
		o = &OpStats{Hist: metrics.NewHistogram()}
		t.ops[name] = o
	}
	return o
}

// Lock returns (creating on first use) the wait aggregate of a lock.
func (t *TenantMetrics) Lock(name string) *LockAgg {
	l, ok := t.locks[name]
	if !ok {
		l = &LockAgg{}
		t.locks[name] = l
	}
	return l
}

// Series returns (creating on first use) the named time series.
func (t *TenantMetrics) Series(name string) *Series {
	s, ok := t.series[name]
	if !ok {
		s = &Series{}
		t.series[name] = s
	}
	return s
}

// SetCounter sets a free-form counter (end-of-run harvest).
func (t *TenantMetrics) SetCounter(name string, v int64) { t.counters[name] = v }

// AddCounter accumulates into a free-form counter.
func (t *TenantMetrics) AddCounter(name string, v int64) { t.counters[name] += v }

// AddFaults accumulates fault-handling counters.
func (t *TenantMetrics) AddFaults(f metrics.FaultCounters) { t.faults.Add(f) }

// Faults returns the accumulated fault counters.
func (t *TenantMetrics) Faults() metrics.FaultCounters { return t.faults }

// Ops returns the op map (exporter access).
func (t *TenantMetrics) Ops() map[string]*OpStats { return t.ops }

// Locks returns the lock map (exporter access).
func (t *TenantMetrics) Locks() map[string]*LockAgg { return t.locks }

// Counters returns the counter map (exporter access).
func (t *TenantMetrics) Counters() map[string]int64 { return t.counters }

// SeriesMap returns the series map (exporter access).
func (t *TenantMetrics) SeriesMap() map[string]*Series { return t.series }

// OpStats aggregates one operation type of one tenant.
type OpStats struct {
	Hist   *metrics.Histogram
	Ops    uint64
	Bytes  int64
	Errors uint64
}

func (o *OpStats) record(d time.Duration, bytes int64, err error) {
	o.Ops++
	o.Bytes += bytes
	if err != nil {
		o.Errors++
	}
	o.Hist.Record(d)
}

// LockAgg aggregates lock behaviour: per-tenant live wait attribution
// (Count/Wait/MaxWait, filled by Span.LockWait) and, for host-level
// aggregates harvested from sim.Mutex stats, contention and hold.
type LockAgg struct {
	Count     uint64
	Contended uint64
	Wait      time.Duration
	Hold      time.Duration
	MaxWait   time.Duration
}

func (l *LockAgg) addWait(w time.Duration) {
	l.Count++
	l.Wait += w
	if w > 0 {
		l.Contended++
	}
	if w > l.MaxWait {
		l.MaxWait = w
	}
}

// Series is a virtual-time series sampled by the testbed's ticker.
type Series struct {
	Points []Point
}

// Point is one sample of a Series.
type Point struct {
	T time.Duration
	V float64
}

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// newTestRecorder returns a recorder over a settable fake clock.
func newTestRecorder() (*Recorder, *time.Duration) {
	clock := new(time.Duration)
	rec := New(Config{Clock: func() time.Duration { return *clock }})
	return rec, clock
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	if rec.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if rec.SampleInterval() != 0 || rec.Dropped() != 0 || rec.Registry() != nil {
		t.Fatal("nil recorder accessors not zero")
	}
	rec.Core(0, 0, time.Millisecond, "a", "user")
	rec.Sample("t", "s", 0, 1)
	rec.OnFinalize(func(*Registry) { t.Fatal("finalizer on nil recorder ran") })
	rec.Finalize()
	if rec.Str(0) != "" {
		t.Fatal("nil recorder Str not empty")
	}

	sp := rec.StartSpan(1, "tenant", "read")
	if sp != nil {
		t.Fatal("nil recorder returned non-nil span")
	}
	if sp.Tenant() != "" {
		t.Fatal("nil span tenant not empty")
	}
	sc := sp.Enter(LayerClient)
	sc.Exit()
	sp.End(10, nil)
	sp.LockWait("lock", time.Millisecond)
	Scope{}.Exit()
}

func TestSpanRecording(t *testing.T) {
	rec, clock := newTestRecorder()
	sp := rec.StartSpan(7, "fls0", "read")
	*clock = 10
	sc := sp.Enter(LayerClient)
	*clock = 30
	sc.Exit()
	sp.LockWait("client_lock", 5)
	*clock = 40
	sp.End(4096, nil)

	slices := rec.Slices()
	if len(slices) != 2 {
		t.Fatalf("got %d slices, want 2", len(slices))
	}
	cl := slices[0]
	if rec.Str(cl.Layer) != "client" || cl.Start != 10 || cl.Dur != 20 {
		t.Fatalf("client slice wrong: %+v", cl)
	}
	root := slices[1]
	if rec.Str(root.Layer) != "request" || root.Start != 0 || root.Dur != 40 ||
		rec.Str(root.Tenant) != "fls0" || rec.Str(root.Op) != "read" || root.Proc != 7 {
		t.Fatalf("root slice wrong: %+v", root)
	}

	tm := rec.Registry().Tenant("fls0")
	op := tm.Ops()["read"]
	if op == nil || op.Ops != 1 || op.Bytes != 4096 || op.Errors != 0 {
		t.Fatalf("op stats wrong: %+v", op)
	}
	lk := tm.Locks()["client_lock"]
	if lk == nil || lk.Count != 1 || lk.Contended != 1 || lk.Wait != 5 {
		t.Fatalf("lock stats wrong: %+v", lk)
	}
}

func TestSpanError(t *testing.T) {
	rec, _ := newTestRecorder()
	sp := rec.StartSpan(0, "t", "open")
	sp.End(0, errors.New("boom"))
	if !rec.Slices()[0].Err {
		t.Fatal("error not recorded on root slice")
	}
	if rec.Registry().Tenant("t").Ops()["open"].Errors != 1 {
		t.Fatal("error not counted")
	}
}

func TestMaxEventsDrop(t *testing.T) {
	clock := new(time.Duration)
	rec := New(Config{Clock: func() time.Duration { return *clock }, MaxEvents: 2})
	rec.Core(0, 0, 1, "a", "user")
	rec.Core(1, 0, 1, "a", "user")
	rec.Core(2, 0, 1, "a", "user") // over cap
	sp := rec.StartSpan(0, "t", "read")
	sp.End(0, nil) // over cap, but registry still updated
	if len(rec.CoreEvents()) != 2 {
		t.Fatalf("cap not enforced: %d core events", len(rec.CoreEvents()))
	}
	if rec.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", rec.Dropped())
	}
	if rec.Registry().Tenant("t").Ops()["read"].Ops != 1 {
		t.Fatal("registry must keep aggregating after the event cap")
	}
}

func TestInternDeterminism(t *testing.T) {
	rec, _ := newTestRecorder()
	a := rec.StartSpan(0, "t0", "read")
	b := rec.StartSpan(0, "t1", "read")
	a.End(0, nil)
	b.End(0, nil)
	if rec.Str(rec.Slices()[0].Tenant) != "t0" || rec.Str(rec.Slices()[1].Tenant) != "t1" {
		t.Fatal("interned tenants resolve wrong")
	}
}

func TestFinalizeOnce(t *testing.T) {
	rec, _ := newTestRecorder()
	n := 0
	rec.OnFinalize(func(reg *Registry) {
		n++
		reg.Tenant(HostTenant).SetCounter("x", 1)
	})
	rec.Finalize()
	rec.Finalize()
	if n != 1 {
		t.Fatalf("finalizer ran %d times", n)
	}
	if rec.Registry().Tenant(HostTenant).Counters()["x"] != 1 {
		t.Fatal("finalizer effect missing")
	}
}

// buildRun records a small fixed scenario.
func buildRun(label string) Run {
	clock := new(time.Duration)
	rec := New(Config{Clock: func() time.Duration { return *clock }})
	rec.Core(0, 0, 100, "fls0", "user")
	rec.Core(1, 50, 25, "kernel", "kernel")
	for i, tenant := range []string{"fls0", "rnd1"} {
		sp := rec.StartSpan(i, tenant, "write")
		*clock += 10
		sc := sp.Enter(LayerIPC)
		*clock += 5
		sc.Exit()
		sp.End(int64(i*100), nil)
	}
	sp := rec.StartSpan(9, "fls0", "writeback")
	wsc := sp.Enter(LayerWriteback)
	*clock += 3
	wsc.Exit()
	sp.End(512, nil)
	rec.Sample("fls0", "core_util_pct", 10, 42.5)
	rec.Sample(HostTenant, "core_util_pct", 10, 120)
	return Run{Label: label, Rec: rec}
}

func TestWriteTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []Run{buildRun("r0"), {Label: "nil", Rec: nil}}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	var sawWriteback, sawCore, sawMeta bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			sawMeta = true
		case "X":
			if ev["cat"] == "core" {
				sawCore = true
			}
			if ev["name"] == "writeback" {
				sawWriteback = true
				args := ev["args"].(map[string]any)
				if args["tenant"] != "fls0" {
					t.Fatalf("writeback span lost originating tenant: %v", args)
				}
			}
		}
	}
	if !sawMeta || !sawCore || !sawWriteback {
		t.Fatalf("missing event kinds: meta=%v core=%v writeback=%v", sawMeta, sawCore, sawWriteback)
	}
}

func TestWriteMetricsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, []Run{buildRun("r0")}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Label   string `json:"label"`
			Tenants map[string]struct {
				Ops map[string]struct {
					Count uint64 `json:"count"`
				} `json:"ops"`
				Series map[string]struct {
					Points [][2]float64 `json:"points"`
				} `json:"series"`
			} `json:"tenants"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics is not valid JSON: %v", err)
	}
	fls := doc.Runs[0].Tenants["fls0"]
	if fls.Ops["write"].Count != 1 || fls.Ops["writeback"].Count != 1 {
		t.Fatalf("fls0 ops wrong: %+v", fls.Ops)
	}
	if len(fls.Series["core_util_pct"].Points) != 1 {
		t.Fatalf("series missing: %+v", fls.Series)
	}
}

func TestWriteMetricsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetricsCSV(&buf, []Run{buildRun("r0")}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "run,tenant,series,t_ns,value" {
		t.Fatalf("csv header wrong: %q", lines[0])
	}
	if len(lines) != 3 { // fls0 + host samples
		t.Fatalf("csv rows = %d, want 3: %v", len(lines), lines)
	}
	if lines[1] != "r0,fls0,core_util_pct,10,42.5" {
		t.Fatalf("csv row wrong: %q", lines[1])
	}
}

func TestExportDeterminism(t *testing.T) {
	mk := func() []Run { return []Run{buildRun("r0"), buildRun("r1")} }
	var t1, t2, m1, m2, c1, c2 bytes.Buffer
	if err := WriteTrace(&t1, mk()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&t2, mk()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("trace export not byte-identical across identical runs")
	}
	if err := WriteMetrics(&m1, mk()); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetrics(&m2, mk()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
		t.Fatal("metrics export not byte-identical across identical runs")
	}
	if err := WriteMetricsCSV(&c1, mk()); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricsCSV(&c2, mk()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("csv export not byte-identical across identical runs")
	}
}

func BenchmarkWriteTrace(b *testing.B) {
	var clock time.Duration
	rec := New(Config{Clock: func() time.Duration { return clock }})
	for i := 0; i < 200000; i++ {
		clock = time.Duration(i) * 100
		rec.Core(i%8, clock, 50, "acct", "user")
		sp := rec.StartSpan(i%32, "tenant0", "read")
		sc := sp.Enter(LayerClient)
		clock += 30
		sc.Exit()
		sp.End(100, nil)
	}
	runs := []Run{{Label: "r", Rec: rec}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteTrace(io.Discard, runs); err != nil {
			b.Fatal(err)
		}
	}
}

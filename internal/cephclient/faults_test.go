package cephclient

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// TestCrashTerminatesBackgroundProcs: a crash mid-writeback must kill
// the client's service threads (flusher, IPC pollers) so the engine
// drains — the fault stays contained to this client.
func TestCrashTerminatesBackgroundProcs(t *testing.T) {
	r := newRig(t, Config{})
	r.eng.Go("test", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: r.cpus.NewThread(r.acct, 0)}
		h, err := r.client.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if _, err := h.Write(ctx, 0, 8<<20); err != nil {
			t.Errorf("write: %v", err)
		}
		p.Sleep(time.Millisecond) // let the flusher start working
		r.client.Crash()
	})
	r.eng.Run()
	if n := r.eng.LiveProcs(); n != 0 {
		t.Fatalf("crash left %d live procs; background services must terminate", n)
	}
}

// dropColdCache evicts a file's cached data so the next read goes to
// the backend.
func dropColdCache(r *rig, ctx vfsapi.Ctx, ino uint64) {
	r.client.lockedMeta(ctx, func() {
		if f, ok := r.client.files[ino]; ok {
			r.client.dropCache(f)
		}
	})
}

// TestReadFailsOverToReplica: with the primary down and replication 2,
// a backend read must succeed via the ring replica and count the
// failover.
func TestReadFailsOverToReplica(t *testing.T) {
	r := newRig(t, Config{})
	r.clus.SetReplication(2)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := r.client.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		h.Write(ctx, 0, 1<<20)
		if err := h.Fsync(ctx); err != nil {
			t.Fatalf("fsync: %v", err)
		}
		h.Close(ctx)

		ino := h.(*chandle).f.ino
		dropColdCache(r, ctx, ino)
		r.clus.OSDs()[r.clus.PlacementOf(ino, 0)].Crash()

		rh, err := r.client.Open(ctx, "/f", vfsapi.RDONLY)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer rh.Close(ctx)
		if _, err := rh.Read(ctx, 0, 256<<10); err != nil {
			t.Fatalf("read with down primary: %v", err)
		}
		fs := r.client.FaultStats()
		if fs.Failovers == 0 {
			t.Fatalf("no failover counted: %+v", fs)
		}
		if fs.Retries == 0 {
			t.Fatalf("no retry counted: %+v", fs)
		}
	})
}

// TestUnreplicatedReadErrsAtDeadline: with nowhere to fail over, the
// bounded retry loop must give up with an I/O error instead of hanging
// the caller forever.
func TestUnreplicatedReadErrsAtDeadline(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := r.client.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		h.Write(ctx, 0, 1<<20)
		if err := h.Fsync(ctx); err != nil {
			t.Fatalf("fsync: %v", err)
		}
		h.Close(ctx)

		ino := h.(*chandle).f.ino
		dropColdCache(r, ctx, ino)
		r.clus.OSDs()[r.clus.PlacementOf(ino, 0)].Crash()

		rh, err := r.client.Open(ctx, "/f", vfsapi.RDONLY)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer rh.Close(ctx)
		start := ctx.P.Now()
		_, rerr := rh.Read(ctx, 0, 256<<10)
		if !errors.Is(rerr, vfsapi.ErrIO) {
			t.Fatalf("read with dead unreplicated primary: err=%v, want ErrIO", rerr)
		}
		if waited := ctx.P.Now() - start; waited > 2*r.client.params.ClientOpDeadline {
			t.Fatalf("read held the caller %v, deadline is %v", waited, r.client.params.ClientOpDeadline)
		}
		fs := r.client.FaultStats()
		if fs.DeadlineMisses == 0 {
			t.Fatalf("no deadline miss counted: %+v", fs)
		}
		// Restart so the ErrOSDDown path doesn't leak into teardown.
		r.clus.OSDs()[r.clus.PlacementOf(ino, 0)].Restart()
	})
}

// TestWriteRetriesAcrossRestart: the unbounded write path must park on
// backoff during an unreplicated outage and complete once the OSD
// restarts, losing nothing.
func TestWriteRetriesAcrossRestart(t *testing.T) {
	r := newRig(t, Config{})
	var restartAt time.Duration
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := r.client.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		ino := h.(*chandle).f.ino
		osd := r.clus.OSDs()[r.clus.PlacementOf(ino, 0)]
		osd.Crash()
		r.eng.After(300*time.Millisecond, func() { osd.Restart() })
		restartAt = r.eng.Now() + 300*time.Millisecond

		h.Write(ctx, 0, 1<<20)
		if err := h.Fsync(ctx); err != nil {
			t.Fatalf("fsync across outage: %v", err)
		}
		if now := ctx.P.Now(); now < restartAt {
			t.Fatalf("fsync returned at %v, before the restart at %v", now, restartAt)
		}
		h.Close(ctx)
		fs := r.client.FaultStats()
		if fs.Retries == 0 || fs.TimeDegraded == 0 {
			t.Fatalf("no retry/degraded time counted: %+v", fs)
		}
		if got := r.clus.StoredSize(ino); got != 1<<20 {
			t.Fatalf("StoredSize = %d after recovery, want %d", got, 1<<20)
		}
	})
}

package cephclient

import (
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/vfsapi"
)

// ErrCrashed is returned by every operation after the filesystem
// service has failed, and by operations on handles that predate a
// crash after the service restarted. It aliases vfsapi.ErrCrashed so
// every client stack (Danaus, FUSE, kernel) fails with the same
// deterministic error.
var ErrCrashed = vfsapi.ErrCrashed

// The vfsapi.FileSystem implementation of the user-level client.

// lookupAttr resolves a path via the attribute cache, falling back to
// an MDS round trip.
func (c *Client) lookupAttr(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, uint64, error) {
	var hit bool
	var e attrEntry
	c.lockedMeta(ctx, func() { e, hit = c.attrs[path] })
	if hit {
		return e.info, e.ino, nil
	}
	c.wire(ctx, 256)
	info, ino, err := c.clus.MetaLookup(ctx, path)
	if err != nil {
		return vfsapi.FileInfo{}, 0, err
	}
	c.lockedMeta(ctx, func() {
		c.attrs[path] = attrEntry{info: info, ino: ino}
		c.paths[ino] = path
	})
	return info, ino, nil
}

// Open opens or creates a file.
func (c *Client) Open(ctx vfsapi.Ctx, path string, flags vfsapi.OpenFlag) (vfsapi.Handle, error) {
	defer ctx.Span.Enter(obs.LayerClient).Exit()
	if err := c.failIfCrashed(ctx); err != nil {
		return nil, err
	}
	c.opCPU(ctx)
	info, ino, err := c.lookupAttr(ctx, path)
	switch {
	case err == nil:
		if info.IsDir {
			return nil, vfsapi.ErrIsDir
		}
	case err == vfsapi.ErrNotExist && flags.Has(vfsapi.CREATE):
		c.wire(ctx, 256)
		ino, err = c.clus.MetaCreate(ctx, path)
		if err != nil {
			return nil, err
		}
		info = vfsapi.FileInfo{Name: path}
		c.lockedMeta(ctx, func() {
			c.attrs[path] = attrEntry{info: info, ino: ino}
			c.paths[ino] = path
		})
	default:
		return nil, err
	}
	// Acquire capabilities matching the open intent; a conflicting
	// holder elsewhere is flushed and invalidated first (§3.4). When a
	// revocation happened, the size we looked up may predate the other
	// client's flush — refetch it.
	kind := cluster.CapRead
	if flags.Writable() {
		kind = cluster.CapWrite
	}
	if c.clus.AcquireCaps(ctx, ino, kind, c) {
		c.lockedMeta(ctx, func() { delete(c.attrs, path) })
		var err error
		info, ino, err = c.lookupAttr(ctx, path)
		if err != nil {
			return nil, err
		}
	}
	f := c.file(ino, info.Size)
	if flags.Has(vfsapi.TRUNC) && flags.Writable() {
		c.lockedMeta(ctx, func() { c.dropCache(f) })
		f.size = 0
		c.wire(ctx, 256)
		if err := c.clus.MetaSetSize(ctx, path, 0); err != nil {
			return nil, err
		}
		c.clus.TruncateObjects(ino, 0)
		c.lockedMeta(ctx, func() {
			if e, ok := c.attrs[path]; ok {
				e.info.Size = 0
				c.attrs[path] = e
			}
		})
	}
	return &chandle{c: c, f: f, path: path, flags: flags, gen: c.gen}, nil
}

// Stat returns metadata, preferring the client's newer size view.
func (c *Client) Stat(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, error) {
	defer ctx.Span.Enter(obs.LayerClient).Exit()
	if err := c.failIfCrashed(ctx); err != nil {
		return vfsapi.FileInfo{}, err
	}
	c.opCPU(ctx)
	info, ino, err := c.lookupAttr(ctx, path)
	if err != nil {
		return vfsapi.FileInfo{}, err
	}
	if f, ok := c.files[ino]; ok && !info.IsDir && f.size > info.Size {
		info.Size = f.size
	}
	return info, nil
}

// Mkdir creates a directory at the MDS.
func (c *Client) Mkdir(ctx vfsapi.Ctx, path string) error {
	defer ctx.Span.Enter(obs.LayerClient).Exit()
	if err := c.failIfCrashed(ctx); err != nil {
		return err
	}
	c.opCPU(ctx)
	c.wire(ctx, 256)
	return c.clus.MetaMkdir(ctx, path)
}

// Readdir lists a directory at the MDS.
func (c *Client) Readdir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	defer ctx.Span.Enter(obs.LayerClient).Exit()
	if err := c.failIfCrashed(ctx); err != nil {
		return nil, err
	}
	c.opCPU(ctx)
	c.wire(ctx, 512)
	return c.clus.MetaReaddir(ctx, path)
}

// Unlink removes a file, dropping local cache state.
func (c *Client) Unlink(ctx vfsapi.Ctx, path string) error {
	defer ctx.Span.Enter(obs.LayerClient).Exit()
	if err := c.failIfCrashed(ctx); err != nil {
		return err
	}
	c.opCPU(ctx)
	c.wire(ctx, 256)
	if err := c.clus.MetaUnlink(ctx, path); err != nil {
		return err
	}
	c.lockedMeta(ctx, func() {
		if e, ok := c.attrs[path]; ok {
			if f, ok := c.files[e.ino]; ok {
				f.unlinked = true
				c.dropCache(f)
				delete(c.files, e.ino)
			}
			delete(c.paths, e.ino)
			delete(c.attrs, path)
		}
	})
	return nil
}

// Rmdir removes an empty directory at the MDS.
func (c *Client) Rmdir(ctx vfsapi.Ctx, path string) error {
	defer ctx.Span.Enter(obs.LayerClient).Exit()
	if err := c.failIfCrashed(ctx); err != nil {
		return err
	}
	c.opCPU(ctx)
	c.wire(ctx, 256)
	return c.clus.MetaRmdir(ctx, path)
}

// Rename moves a file at the MDS and rewrites cached entries.
func (c *Client) Rename(ctx vfsapi.Ctx, oldPath, newPath string) error {
	defer ctx.Span.Enter(obs.LayerClient).Exit()
	if err := c.failIfCrashed(ctx); err != nil {
		return err
	}
	c.opCPU(ctx)
	c.wire(ctx, 256)
	if err := c.clus.MetaRename(ctx, oldPath, newPath); err != nil {
		return err
	}
	c.lockedMeta(ctx, func() {
		if e, ok := c.attrs[oldPath]; ok {
			delete(c.attrs, oldPath)
			c.attrs[newPath] = e
			c.paths[e.ino] = newPath
		}
	})
	return nil
}

// chandle is an open file on the user-level client.
type chandle struct {
	c      *Client
	f      *cfile
	path   string
	flags  vfsapi.OpenFlag
	closed bool
	wrote  bool

	// gen is the client crash generation the handle was opened under; a
	// handle from an older generation is stale after a crash.
	gen uint64

	// Sequential-read detection for the client's readahead.
	raNext   int64
	raWindow int64
}

// Path returns the open path.
func (h *chandle) Path() string { return h.path }

// Size returns the client's size view.
func (h *chandle) Size() int64 { return h.f.size }

// failIfStale rejects operations while the service is down and on
// handles that predate a crash: the restarted service has no state for
// them (its cfile map is cold), so they keep failing with ErrCrashed
// until the application reopens — the replayable-remount contract.
func (h *chandle) failIfStale(ctx vfsapi.Ctx) error {
	if h.c.crashed || h.gen != h.c.gen {
		// Failing is not free: charge one operation's CPU so loops
		// erroring on a stale handle advance simulated time.
		h.c.opCPU(ctx)
		return ErrCrashed
	}
	return nil
}

// Read serves from the object cache, fetching misses from the OSDs.
func (h *chandle) Read(ctx vfsapi.Ctx, off, n int64) (int64, error) {
	defer ctx.Span.Enter(obs.LayerClient).Exit()
	if err := h.failIfStale(ctx); err != nil {
		return 0, err
	}
	if h.closed {
		return 0, vfsapi.ErrClosed
	}
	c := h.c
	c.opCPU(ctx)
	if off >= h.f.size {
		return 0, nil
	}
	if off+n > h.f.size {
		n = h.f.size - off
	}
	if n <= 0 {
		return 0, nil
	}
	c.lockedMeta(ctx, func() { c.touch(h.f) })
	// Readahead (libcephfs prefetches on sequential streams): grow the
	// fetch window while the stream stays sequential.
	fetchLen := n
	const maxReadahead = 512 << 10
	if off == h.raNext {
		if h.raWindow == 0 {
			h.raWindow = maxReadahead / 8
		}
		h.raWindow *= 2
		if h.raWindow > maxReadahead {
			h.raWindow = maxReadahead
		}
	} else {
		h.raWindow = 0 // random access: no readahead
	}
	fetchLen += h.raWindow
	if off+fetchLen > h.f.size {
		fetchLen = h.f.size - off
	}
	h.raNext = off + n
	// Fetch misses with single-fetcher semantics: a range already being
	// fetched by another reader is awaited, not re-fetched (the page
	// in-flight locking of a real client).
	for {
		// The client can crash while this reader is parked on the fetch
		// queue or inside the backend read below; resume as a failure,
		// not as a cache insert against the restarted incarnation.
		if err := h.failIfStale(ctx); err != nil {
			return 0, err
		}
		var gOff, gLen int64
		wait := false
		c.lockedMeta(ctx, func() {
			gaps := h.f.cached.Gaps(off, fetchLen)
			if len(gaps) == 0 {
				return
			}
			g := gaps[0]
			if h.f.fetching.Covered(g.Off, g.Len) > 0 {
				wait = true
				return
			}
			gOff, gLen = g.Off, g.Len
			h.f.fetching.Insert(gOff, gLen)
		})
		if wait {
			c.fetchQ.WaitTimeout(ctx.P, c.params.DirtyThrottleCheck)
			continue
		}
		if gLen == 0 {
			break
		}
		c.wire(ctx, gLen)
		rerr := c.readBackend(ctx, h.f.ino, gOff, gLen)
		if rerr != nil {
			// Release the in-flight claim before failing, or readers
			// waiting on this range would park forever.
			c.lockedMeta(ctx, func() { h.f.fetching.Remove(gOff, gLen) })
			c.fetchQ.Broadcast()
			return 0, rerr
		}
		if err := h.failIfStale(ctx); err != nil {
			c.lockedMeta(ctx, func() { h.f.fetching.Remove(gOff, gLen) })
			c.fetchQ.Broadcast()
			return 0, err
		}
		c.stats.MissBytes += gLen
		c.cacheInsert(ctx, h.f, gOff, gLen)
		c.lockedMeta(ctx, func() { h.f.fetching.Remove(gOff, gLen) })
		c.fetchQ.Broadcast()
	}
	// Copy out of the object cache (partially under client_lock).
	c.stats.ReadBytes += n
	c.copyData(ctx, n, false)
	return n, nil
}

// Write copies into the object cache and marks dirty, throttling at the
// client's dirty limit.
func (h *chandle) Write(ctx vfsapi.Ctx, off, n int64) (int64, error) {
	defer ctx.Span.Enter(obs.LayerClient).Exit()
	if err := h.failIfStale(ctx); err != nil {
		return 0, err
	}
	if h.closed {
		return 0, vfsapi.ErrClosed
	}
	if !h.flags.Writable() && !h.flags.Has(vfsapi.CREATE) {
		return 0, vfsapi.ErrReadOnly
	}
	if n <= 0 {
		return 0, nil
	}
	c := h.c
	c.opCPU(ctx)
	h.wrote = true
	c.stats.WriteBytes += n
	c.copyData(ctx, n, true)
	// copyData waits on client_lock; the writer may resume on the far
	// side of a crash and must fail rather than dirty the restarted
	// incarnation's cache through a dead cfile.
	if err := h.failIfStale(ctx); err != nil {
		return 0, err
	}
	c.cacheInsert(ctx, h.f, off, n)
	if end := off + n; end > h.f.size {
		h.f.size = end
	}
	c.markDirty(ctx, h.f, off, n)
	return n, nil
}

// Append writes at the end of file.
func (h *chandle) Append(ctx vfsapi.Ctx, n int64) (int64, error) {
	defer ctx.Span.Enter(obs.LayerClient).Exit()
	off := h.f.size
	_, err := h.Write(ctx, off, n)
	return off, err
}

// Fsync drains this file's dirty data synchronously.
func (h *chandle) Fsync(ctx vfsapi.Ctx) error {
	defer ctx.Span.Enter(obs.LayerClient).Exit()
	if err := h.failIfStale(ctx); err != nil {
		return err
	}
	if h.closed {
		return vfsapi.ErrClosed
	}
	c := h.c
	for h.f.dirty.Len() > 0 {
		var exts []int64
		c.lockedMeta(ctx, func() {
			for _, e := range h.f.dirty.PopFirst(4 << 20) {
				exts = append(exts, e.Off, e.Len)
			}
		})
		var popped int64
		for i := 0; i < len(exts); i += 2 {
			popped += exts[i+1]
		}
		var werr error
		for i := 0; i < len(exts); i += 2 {
			c.wire(ctx, exts[i+1])
			if werr = c.writePersist(ctx, h.f.ino, exts[i], exts[i+1]); werr != nil {
				break
			}
		}
		if err := h.failIfStale(ctx); err != nil {
			// Crashed mid-persist: the crash already zeroed the dirty
			// accounting with the rest of the cache, so decrementing the
			// popped extents here would double-count the loss.
			return err
		}
		// The popped extents left the dirty set either way; keep the
		// accounting consistent even on a failed persist (the client is
		// stopped — the data is lost, as a crash loses it).
		c.dirtyBytes -= popped
		c.throttleQ.Broadcast()
		if werr != nil {
			return werr
		}
	}
	c.removeDirty(h.f)
	c.pushSize(ctx, h.f)
	return nil
}

// Close releases the handle, pushing the size for written files.
func (h *chandle) Close(ctx vfsapi.Ctx) error {
	defer ctx.Span.Enter(obs.LayerClient).Exit()
	if h.closed {
		return vfsapi.ErrClosed
	}
	if err := h.failIfStale(ctx); err != nil {
		// The handle is dead either way; report the crash but do not
		// push sizes from a pre-crash incarnation into the fresh cache.
		h.closed = true
		return err
	}
	h.closed = true
	h.c.opCPU(ctx)
	if h.wrote && !h.f.unlinked {
		h.c.pushSize(ctx, h.f)
	}
	return nil
}

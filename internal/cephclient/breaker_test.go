package cephclient

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/vfsapi"
)

func testBreaker(seed uint64) (*breaker, *uint64) {
	s := seed
	b := newBreaker(BreakerConfig{
		FailureThreshold: 2,
		OpenBase:         10 * time.Millisecond,
		OpenCap:          80 * time.Millisecond,
		RecoveryTarget:   2,
	}, &s)
	return b, &s
}

// Closed -> open on the failure threshold, short-circuit while open,
// half-open probe after the hold-off, full close after the recovery
// target.
func TestBreakerLifecycle(t *testing.T) {
	b, _ := testBreaker(7)
	now := time.Duration(0)
	if !b.allow(now) {
		t.Fatal("closed breaker denied an op")
	}
	b.onFailure(now)
	if b.state != BreakerClosed {
		t.Fatalf("tripped below threshold: %v", b.state)
	}
	b.onFailure(now)
	if b.state != BreakerOpen {
		t.Fatalf("state = %v after threshold failures, want open", b.state)
	}
	if b.openUntil <= now || b.openUntil > now+10*time.Millisecond {
		t.Fatalf("openUntil %v outside (0, OpenBase]", b.openUntil)
	}
	if b.allow(now) {
		t.Fatal("open breaker admitted an op")
	}
	if b.stats.ShortCircuits != 1 {
		t.Fatalf("short circuits = %d, want 1", b.stats.ShortCircuits)
	}
	if hold := b.holdoff(now); hold <= 0 {
		t.Fatalf("holdoff = %v while open", hold)
	}

	// Past the hold-off: exactly one probe token.
	now = b.openUntil
	if !b.allow(now) {
		t.Fatal("half-open breaker denied the probe")
	}
	if b.state != BreakerHalfOpen || b.stats.Probes != 1 {
		t.Fatalf("state %v probes %d after hold-off", b.state, b.stats.Probes)
	}
	if b.allow(now) {
		t.Fatal("second concurrent probe admitted before first succeeded")
	}
	b.onSuccess() // slow start: tokens grow
	if !b.allow(now) {
		t.Fatal("no token after first probe success")
	}
	b.onSuccess()
	if b.state != BreakerClosed {
		t.Fatalf("state = %v after recovery target, want closed", b.state)
	}
	if b.trips != 0 {
		t.Fatalf("full close must reset the trip count, got %d", b.trips)
	}
}

// A failed probe reopens with a doubled (capped) interval.
func TestBreakerProbeFailureBacksOff(t *testing.T) {
	b, _ := testBreaker(7)
	now := time.Duration(0)
	b.onFailure(now)
	b.onFailure(now)
	first := b.openUntil - now

	now = b.openUntil
	if !b.allow(now) {
		t.Fatal("probe denied")
	}
	b.onFailure(now)
	if b.state != BreakerOpen {
		t.Fatalf("state = %v after probe failure, want open", b.state)
	}
	if b.stats.ProbeFailures != 1 || b.stats.Opens != 2 {
		t.Fatalf("probe failures %d opens %d, want 1/2", b.stats.ProbeFailures, b.stats.Opens)
	}
	second := b.openUntil - now
	// The jittered interval lands in [base/2, base]; doubling the base
	// guarantees the second draw's floor exceeds... nothing absolute, but
	// its ceiling doubles. Check the hard bounds instead.
	if second > 20*time.Millisecond {
		t.Fatalf("second interval %v above doubled base", second)
	}
	if first > 10*time.Millisecond {
		t.Fatalf("first interval %v above base", first)
	}

	// Interval growth is capped at OpenCap no matter how many trips.
	for i := 0; i < 10; i++ {
		now = b.openUntil
		b.allow(now)
		b.onFailure(now)
	}
	if iv := b.openUntil - now; iv > 80*time.Millisecond {
		t.Fatalf("interval %v exceeds cap", iv)
	}
}

// Same seed, same failure timeline: byte-identical open intervals.
// Different seeds must diverge (the jitter is real).
func TestBreakerJitterDeterministic(t *testing.T) {
	trace := func(seed uint64) string {
		b, _ := testBreaker(seed)
		var sb strings.Builder
		now := time.Duration(0)
		for i := 0; i < 6; i++ {
			b.onFailure(now)
			b.onFailure(now)
			fmt.Fprintf(&sb, "%v;", b.openUntil-now)
			now = b.openUntil
			b.allow(now) // consume the probe so the next failure reopens
		}
		return sb.String()
	}
	if a, b := trace(7), trace(7); a != b {
		t.Fatalf("same-seed traces diverged:\n%s\n%s", a, b)
	}
	if a, b := trace(7), trace(8); a == b {
		t.Fatalf("different seeds produced identical jitter: %s", a)
	}
}

// Seeded determinism of the half-open automaton under concurrent
// probes: several reader procs hammer a dead unreplicated primary, the
// breaker trips and cycles open -> half-open -> open while the backend
// stays down, and half-open -> closed once it restarts. The full
// timestamped transition trace must replay byte-identically for the
// same RetrySeed (the jittered open intervals and the engine's probe
// interleaving are both deterministic) and diverge for a different
// seed.
func TestBreakerHalfOpenDeterministicUnderConcurrentProbes(t *testing.T) {
	trace := func(seed uint64) string {
		var sb strings.Builder
		r := newRig(t, Config{
			RetrySeed: seed,
			Breaker: &BreakerConfig{
				FailureThreshold: 2,
				OpenBase:         2 * time.Millisecond,
				OpenCap:          16 * time.Millisecond,
				RecoveryTarget:   2,
			},
		})
		r.client.brk.cfg.OnChange = func(from, to BreakerState) {
			fmt.Fprintf(&sb, "%v:%v->%v;", r.eng.Now(), from, to)
		}
		// A tight retry budget makes each failed read give up quickly, so
		// probes keep re-entering the breaker while the backend is down
		// (the default 64-attempt budget would park every proc inside its
		// first read until the restart).
		r.client.params.ClientMaxRetries = 2
		r.run(t, func(ctx vfsapi.Ctx) {
			h, err := r.client.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			h.Write(ctx, 0, 4<<20)
			if err := h.Fsync(ctx); err != nil {
				t.Fatalf("fsync: %v", err)
			}
			h.Close(ctx)
			ino := h.(*chandle).f.ino
			dropColdCache(r, ctx, ino)

			// Replication 1 with a dead primary: every probe fails until
			// the restart, then the slow-start budget closes the breaker.
			osd := r.clus.OSDs()[r.clus.PlacementOf(ino, 0)]
			osd.Crash()
			for i := 0; i < 3; i++ {
				off := int64(i) << 20
				r.eng.Go(fmt.Sprintf("probe%d", i), func(p *sim.Proc) {
					pctx := vfsapi.Ctx{P: p, T: r.cpus.NewThread(r.acct, 0)}
					rh, err := r.client.Open(pctx, "/f", vfsapi.RDONLY)
					if err != nil {
						t.Errorf("reopen: %v", err)
						return
					}
					defer rh.Close(pctx)
					for n := 0; n < 30; n++ {
						rh.Read(pctx, off+int64(n%4)*256<<10, 256<<10)
						p.Sleep(2 * time.Millisecond)
					}
				})
			}
			ctx.P.Sleep(40 * time.Millisecond)
			osd.Restart()
			// Wait out the probe procs in virtual time (the engine is
			// single-threaded; polling LiveProcs from the test proc is
			// deterministic).
			for r.eng.LiveProcs() > 2 {
				ctx.P.Sleep(time.Millisecond)
			}
		})
		return sb.String()
	}
	a := trace(11)
	if !strings.Contains(a, "open->half-open;") || !strings.Contains(a, "half-open->open;") {
		t.Fatalf("trace missing the half-open->open reopen cycle: %s", a)
	}
	if !strings.Contains(a, "half-open->closed;") {
		t.Fatalf("trace missing half-open->closed recovery: %s", a)
	}
	if b := trace(11); a != b {
		t.Fatalf("same-seed transition traces diverged:\n%s\n%s", a, b)
	}
	if c := trace(12); a == c {
		t.Fatalf("different seeds produced identical transition timing: %s", a)
	}
}

// Satellite regression: retry backoff timing is seeded and exactly
// reproducible — two clients with the same RetrySeed observing the
// same failure sequence sleep byte-identical delays, all within the
// configured cap.
func TestRetryBackoffSeededAndCapped(t *testing.T) {
	run := func(seed uint64) string {
		var delays []time.Duration
		r := newRig(t, Config{
			RetrySeed:     seed,
			RetryObserver: func(d time.Duration) { delays = append(delays, d) },
		})
		r.run(t, func(ctx vfsapi.Ctx) {
			h, err := r.client.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			h.Write(ctx, 0, 1<<20)
			if err := h.Fsync(ctx); err != nil {
				t.Fatalf("fsync: %v", err)
			}
			h.Close(ctx)

			ino := h.(*chandle).f.ino
			dropColdCache(r, ctx, ino)
			// Replication 1 and a dead primary: every read attempt fails
			// and backs off until the retry budget is spent.
			r.clus.OSDs()[r.clus.PlacementOf(ino, 0)].Crash()
			rh, err := r.client.Open(ctx, "/f", vfsapi.RDONLY)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer rh.Close(ctx)
			if _, err := rh.Read(ctx, 0, 256<<10); err == nil {
				t.Fatal("read of unreplicated dead primary succeeded")
			}
		})
		if len(delays) == 0 {
			t.Fatal("no retry delays observed")
		}
		base, cap := r.client.params.ClientRetryBase, r.client.params.ClientRetryCap
		var sb strings.Builder
		for _, d := range delays {
			if d < base/2 || d > cap {
				t.Fatalf("delay %v outside [base/2, cap] = [%v, %v]", d, base/2, cap)
			}
			fmt.Fprintf(&sb, "%v;", d)
		}
		return sb.String()
	}
	a := run(3)
	b := run(3)
	if a != b {
		t.Fatalf("same-seed retry timing diverged:\n%s\n%s", a, b)
	}
	if c := run(4); c == a {
		t.Fatalf("different retry seeds produced identical timing: %s", a)
	}
}

package cephclient

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cpu"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

type rig struct {
	eng    *sim.Engine
	cpus   *cpu.CPU
	clus   *cluster.Cluster
	client *Client
	acct   *cpu.Account
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 4)
	clus := cluster.New(eng, params, 6)
	if cfg.Name == "" {
		cfg.Name = "client"
	}
	acct := cpu.NewAccount("pool")
	if cfg.Acct == nil {
		cfg.Acct = acct
	}
	cl := New(eng, cpus, params, clus, cfg)
	return &rig{eng: eng, cpus: cpus, clus: clus, client: cl, acct: acct}
}

func (r *rig) run(t *testing.T, fn func(ctx vfsapi.Ctx)) {
	t.Helper()
	r.eng.Go("test", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: r.cpus.NewThread(r.acct, 0)}
		fn(ctx)
		r.client.Stop()
	})
	r.eng.Run()
	if r.eng.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", r.eng.LiveProcs())
	}
}

func TestCreateWriteFlushToCluster(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := r.client.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(ctx, 0, 2<<20)
		// Async: nothing on OSDs yet.
		var osd uint64
		for _, o := range r.clus.OSDs() {
			osd += o.BytesWritten()
		}
		if osd != 0 {
			t.Fatalf("write reached OSDs synchronously: %d", osd)
		}
		ctx.P.Sleep(7 * time.Second)
		osd = 0
		for _, o := range r.clus.OSDs() {
			osd += o.BytesWritten()
		}
		if osd != 2<<20 {
			t.Fatalf("flushed %d to OSDs, want 2MB", osd)
		}
		h.Close(ctx)
		// Size visible at the MDS after flush.
		info, _, err := r.clus.MetaLookup(ctx, "/f")
		if err != nil || info.Size != 2<<20 {
			t.Fatalf("MDS size = %d err=%v", info.Size, err)
		}
	})
}

func TestCachedReadAvoidsCluster(t *testing.T) {
	r := newRig(t, Config{})
	r.clus.Provision("/data", 4<<20)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.client.Open(ctx, "/data", vfsapi.RDONLY)
		h.Read(ctx, 0, 4<<20)
		var before uint64
		for _, o := range r.clus.OSDs() {
			before += o.BytesRead()
		}
		if before != 4<<20 {
			t.Fatalf("miss read %d from OSDs", before)
		}
		h.Read(ctx, 0, 4<<20)
		var after uint64
		for _, o := range r.clus.OSDs() {
			after += o.BytesRead()
		}
		if after != before {
			t.Fatal("cached read still hit OSDs")
		}
		h.Close(ctx)
	})
}

func TestClientLockSerializesCachedReads(t *testing.T) {
	// Two threads reading cached data on 4 idle cores: client_lock must
	// show contention — the §6.3.2 Seqread limitation.
	r := newRig(t, Config{})
	r.clus.Provision("/data", 8<<20)
	var warmed bool
	for i := 0; i < 4; i++ {
		r.eng.Go("reader", func(p *sim.Proc) {
			ctx := vfsapi.Ctx{P: p, T: r.cpus.NewThread(r.acct, 0)}
			h, _ := r.client.Open(ctx, "/data", vfsapi.RDONLY)
			if !warmed {
				warmed = true
				h.Read(ctx, 0, 8<<20)
			}
			for i := 0; i < 50; i++ {
				h.Read(ctx, 0, 1<<20)
			}
			h.Close(ctx)
		})
	}
	r.eng.RunUntil(30 * time.Second)
	r.client.Stop()
	r.eng.Run()
	s := r.client.ClientLock().Stats()
	if s.Contended == 0 || s.TotalWait == 0 {
		t.Fatalf("no client_lock contention recorded: %+v", s)
	}
}

func TestDirtyThrottle(t *testing.T) {
	r := newRig(t, Config{CacheLimit: 8 << 20, MaxDirty: 2 << 20})
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.client.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		for i := int64(0); i < 16; i++ {
			h.Write(ctx, i<<20, 1<<20)
		}
		h.Close(ctx)
	})
	if r.acct.IOWait() == 0 {
		t.Fatal("no I/O wait accumulated above dirty limit")
	}
}

func TestCacheLimitEviction(t *testing.T) {
	r := newRig(t, Config{CacheLimit: 4 << 20})
	r.clus.Provision("/big", 16<<20)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.client.Open(ctx, "/big", vfsapi.RDONLY)
		for off := int64(0); off < 16<<20; off += 1 << 20 {
			h.Read(ctx, off, 1<<20)
		}
		if cur := r.client.Meter().Current(); cur > 4<<20 {
			t.Fatalf("cache %d over limit", cur)
		}
		h.Close(ctx)
	})
}

func TestAttrCacheAvoidsMDS(t *testing.T) {
	r := newRig(t, Config{})
	r.clus.Provision("/f", 100)
	r.run(t, func(ctx vfsapi.Ctx) {
		r.client.Stat(ctx, "/f")
		before := r.clus.MDSOps()
		r.client.Stat(ctx, "/f")
		r.client.Stat(ctx, "/f")
		if r.clus.MDSOps() != before {
			t.Fatal("repeated stats hit the MDS")
		}
	})
}

func TestUnlinkDiscardsDirty(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.client.Open(ctx, "/tmp", vfsapi.CREATE|vfsapi.WRONLY)
		h.Write(ctx, 0, 1<<20)
		h.Close(ctx)
		if err := r.client.Unlink(ctx, "/tmp"); err != nil {
			t.Fatal(err)
		}
		ctx.P.Sleep(7 * time.Second)
		var osd uint64
		for _, o := range r.clus.OSDs() {
			osd += o.BytesWritten()
		}
		if osd != 0 {
			t.Fatalf("unlinked dirty data flushed: %d", osd)
		}
		if r.client.DirtyBytes() != 0 || r.client.Meter().Current() != 0 {
			t.Fatal("state not dropped on unlink")
		}
	})
}

func TestFsyncSynchronous(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.client.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		h.Write(ctx, 0, 1<<20)
		if err := h.Fsync(ctx); err != nil {
			t.Fatal(err)
		}
		var osd uint64
		for _, o := range r.clus.OSDs() {
			osd += o.BytesWritten()
		}
		if osd != 1<<20 {
			t.Fatalf("fsync flushed %d", osd)
		}
		h.Close(ctx)
	})
}

func TestDirectoryOps(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(ctx vfsapi.Ctx) {
		if err := r.client.Mkdir(ctx, "/d"); err != nil {
			t.Fatal(err)
		}
		h, _ := r.client.Open(ctx, "/d/f", vfsapi.CREATE|vfsapi.WRONLY)
		h.Close(ctx)
		ents, err := r.client.Readdir(ctx, "/d")
		if err != nil || len(ents) != 1 || ents[0].Name != "f" {
			t.Fatalf("readdir: %v %v", ents, err)
		}
		if err := r.client.Rename(ctx, "/d/f", "/d/g"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.client.Stat(ctx, "/d/g"); err != nil {
			t.Fatal(err)
		}
		if err := r.client.Unlink(ctx, "/d/g"); err != nil {
			t.Fatal(err)
		}
		if err := r.client.Rmdir(ctx, "/d"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.client.Stat(ctx, "/d"); !errors.Is(err, vfsapi.ErrNotExist) {
			t.Fatalf("stat removed: %v", err)
		}
	})
}

func TestFlusherThreadsStayOnPoolCores(t *testing.T) {
	// Client pinned to cores {0,1}: no client activity may appear on
	// cores {2,3} even under flush load — the Danaus isolation property.
	r := newRig(t, Config{Mask: cpu.MaskOf(0, 1), MaxDirty: 1 << 20, CacheLimit: 64 << 20})
	r.eng.Go("writer", func(p *sim.Proc) {
		th := r.cpus.NewThread(r.acct, cpu.MaskOf(0, 1))
		ctx := vfsapi.Ctx{P: p, T: th}
		h, _ := r.client.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		for i := int64(0); i < 32; i++ {
			h.Write(ctx, i<<20, 1<<20)
		}
		h.Close(ctx)
		r.client.Stop()
	})
	r.eng.Run()
	util := r.cpus.UtilSnapshot()
	if util[2] != 0 || util[3] != 0 {
		t.Fatalf("client leaked onto foreign cores: %v", util)
	}
}

func TestTruncate(t *testing.T) {
	r := newRig(t, Config{})
	r.clus.Provision("/t", 1<<20)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := r.client.Open(ctx, "/t", vfsapi.WRONLY|vfsapi.TRUNC)
		if err != nil {
			t.Fatal(err)
		}
		if h.Size() != 0 {
			t.Fatalf("size after trunc = %d", h.Size())
		}
		h.Close(ctx)
		info, _ := r.client.Stat(ctx, "/t")
		if info.Size != 0 {
			t.Fatalf("stat after trunc = %d", info.Size)
		}
	})
}

func TestCrossClientConsistencyViaCaps(t *testing.T) {
	// §3.4: the consistency policy propagates writes to other backend
	// clients. Client A buffers a write; when client B opens the same
	// file, the MDS revokes A's write capability, A flushes, and B sees
	// the full data — before A ever reached its writeback interval.
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 4)
	clus := cluster.New(eng, params, 6)
	a := New(eng, cpus, params, clus, Config{Name: "A"})
	b := New(eng, cpus, params, clus, Config{Name: "B"})
	acct := cpu.NewAccount("t")
	eng.Go("t", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: cpus.NewThread(acct, 0)}
		ha, err := a.Open(ctx, "/shared", vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			t.Error(err)
			return
		}
		ha.Write(ctx, 0, 3<<20) // dirty in A's cache only
		if a.DirtyBytes() == 0 {
			t.Error("write should be buffered in A")
		}

		hb, err := b.Open(ctx, "/shared", vfsapi.RDONLY)
		if err != nil {
			t.Errorf("B open: %v", err)
			return
		}
		if a.DirtyBytes() != 0 {
			t.Errorf("A still dirty after B's conflicting open: %d", a.DirtyBytes())
		}
		if got, _ := hb.Read(ctx, 0, 10<<20); got != 3<<20 {
			t.Errorf("B read %d, want full 3MB", got)
		}
		hb.Close(ctx)
		ha.Close(ctx)
		a.Stop()
		b.Stop()
	})
	eng.Run()
}

func TestSharedReadCapsCoexist(t *testing.T) {
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 4)
	clus := cluster.New(eng, params, 6)
	clus.Provision("/ro", 1<<20)
	a := New(eng, cpus, params, clus, Config{Name: "A"})
	b := New(eng, cpus, params, clus, Config{Name: "B"})
	acct := cpu.NewAccount("t")
	eng.Go("t", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: cpus.NewThread(acct, 0)}
		ha, _ := a.Open(ctx, "/ro", vfsapi.RDONLY)
		ha.Read(ctx, 0, 1<<20)
		cachedA := a.Meter().Current()
		hb, _ := b.Open(ctx, "/ro", vfsapi.RDONLY)
		hb.Read(ctx, 0, 1<<20)
		// Two readers coexist: A's cache must survive B's open.
		if a.Meter().Current() != cachedA {
			t.Errorf("A's cache dropped by a concurrent reader: %d -> %d", cachedA, a.Meter().Current())
		}
		ha.Close(ctx)
		hb.Close(ctx)
		a.Stop()
		b.Stop()
	})
	eng.Run()
}

func TestClientReadaheadOnSequentialStreams(t *testing.T) {
	r := newRig(t, Config{})
	r.clus.Provision("/seq", 8<<20)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.client.Open(ctx, "/seq", vfsapi.RDONLY)
		h.Read(ctx, 0, 64<<10)
		h.Read(ctx, 64<<10, 64<<10)
		var fetched uint64
		for _, o := range r.clus.OSDs() {
			fetched += o.BytesRead()
		}
		if fetched <= 128<<10 {
			t.Fatalf("no readahead: fetched %d", fetched)
		}
		h.Close(ctx)
	})
}

func TestCacheStats(t *testing.T) {
	r := newRig(t, Config{})
	r.clus.Provision("/s", 4<<20)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.client.Open(ctx, "/s", vfsapi.RDONLY)
		h.Read(ctx, 0, 4<<20) // cold
		h.Read(ctx, 0, 4<<20) // hot
		h.Close(ctx)
		s := r.client.Stats()
		if s.ReadBytes != 8<<20 {
			t.Fatalf("read bytes = %d", s.ReadBytes)
		}
		// The cold pass may prefetch slightly ahead; misses stay within
		// one readahead window of the file size.
		if s.MissBytes < 4<<20 || s.MissBytes > 4<<20+512<<10 {
			t.Fatalf("miss bytes = %d", s.MissBytes)
		}
		if hr := s.HitRatio(); hr < 0.4 || hr > 0.6 {
			t.Fatalf("hit ratio = %.2f, want ~0.5", hr)
		}
		hw, _ := r.client.Open(ctx, "/w", vfsapi.CREATE|vfsapi.WRONLY)
		hw.Write(ctx, 0, 1<<20)
		hw.Fsync(ctx)
		hw.Close(ctx)
		if got := r.client.Stats().WriteBytes; got != 1<<20 {
			t.Fatalf("write bytes = %d", got)
		}
	})
}

func TestCrashedClientRejectsOps(t *testing.T) {
	r := newRig(t, Config{})
	r.clus.Provision("/f", 1<<20)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.client.Open(ctx, "/f", vfsapi.RDONLY)
		r.client.Crash()
		if !r.client.Crashed() {
			t.Fatal("Crashed() false after Crash")
		}
		if _, err := r.client.Open(ctx, "/f", vfsapi.RDONLY); !errors.Is(err, ErrCrashed) {
			t.Fatalf("open after crash: %v", err)
		}
		if _, err := r.client.Stat(ctx, "/f"); !errors.Is(err, ErrCrashed) {
			t.Fatalf("stat after crash: %v", err)
		}
		if _, err := h.Read(ctx, 0, 100); !errors.Is(err, ErrCrashed) {
			t.Fatalf("read after crash: %v", err)
		}
		if _, err := h.Write(ctx, 0, 100); !errors.Is(err, ErrCrashed) {
			t.Fatalf("write after crash: %v", err)
		}
		if r.client.Meter().Current() != 0 || r.client.DirtyBytes() != 0 {
			t.Fatal("crash did not drop cached state")
		}
	})
}

func TestClientRepin(t *testing.T) {
	r := newRig(t, Config{Mask: cpu.MaskOf(0, 1), MaxDirty: 1 << 20, CacheLimit: 64 << 20})
	r.eng.Go("writer", func(p *sim.Proc) {
		th := r.cpus.NewThread(r.acct, cpu.MaskOf(0, 1))
		ctx := vfsapi.Ctx{P: p, T: th}
		h, _ := r.client.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		for i := int64(0); i < 8; i++ {
			h.Write(ctx, i<<20, 1<<20)
		}
		before := r.cpus.UtilSnapshot()
		r.client.Repin(cpu.MaskOf(2, 3))
		th.SetAffinity(cpu.MaskOf(2, 3))
		for i := int64(8); i < 16; i++ {
			h.Write(ctx, i<<20, 1<<20)
		}
		h.Close(ctx)
		ctx.P.Sleep(100 * 1e6) // let flushers drain on the new cores
		after := r.cpus.UtilSnapshot()
		if after[2] == before[2] && after[3] == before[3] {
			t.Error("no flusher work on the new cores after repin")
		}
		r.client.Stop()
	})
	r.eng.Run()
}

// Circuit breaker for the client's backend path. When a backend is
// faulted (crashed OSD, partition), the plain retry loop keeps every
// operation burning its full retry budget; the breaker learns after a
// few consecutive failures and fails reads fast while the backend
// recovers, probing with a slow-start budget before trusting it again.
// Writeback is never shed — it holds off until the next probe time
// instead (writeback must not drop data).
package cephclient

import "time"

// BreakerState is the circuit breaker automaton state.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed passes every operation through (healthy backend).
	BreakerClosed BreakerState = iota
	// BreakerOpen fails reads fast and holds writeback off until the
	// open interval elapses.
	BreakerOpen
	// BreakerHalfOpen admits a limited probe budget; successes grow the
	// budget (slow start) until the breaker closes, any failure reopens.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig enables and tunes the per-client circuit breaker.
// Zero-valued fields take the model defaults (see model.Params).
type BreakerConfig struct {
	// FailureThreshold is the run of consecutive retryable failures
	// that trips the breaker.
	FailureThreshold int
	// OpenBase is the first open interval; repeated trips double it up
	// to OpenCap. The actual interval is jittered deterministically to
	// [interval/2, interval] from the client's retry seed.
	OpenBase time.Duration
	// OpenCap caps the exponential open interval.
	OpenCap time.Duration
	// RecoveryTarget is the half-open probe successes needed to close.
	RecoveryTarget int
	// OnChange, when non-nil, observes every state transition.
	OnChange func(from, to BreakerState)
}

// BreakerStats counts breaker activity.
type BreakerStats struct {
	// Opens is the number of closed/half-open -> open transitions.
	Opens uint64
	// ShortCircuits is the number of read operations failed fast while
	// the breaker was open.
	ShortCircuits uint64
	// Probes is the number of operations admitted in half-open state.
	Probes uint64
	// ProbeFailures is the number of half-open probes that failed and
	// reopened the breaker.
	ProbeFailures uint64
}

type breaker struct {
	cfg       BreakerConfig
	rng       *uint64 // shared with the client's retry jitter stream
	state     BreakerState
	failures  int           // consecutive failures while closed
	trips     int           // consecutive opens without a full recovery
	openUntil time.Duration // virtual time the open interval ends
	tokens    int           // half-open probe budget remaining
	successes int           // half-open probe successes so far
	stats     BreakerStats
}

func newBreaker(cfg BreakerConfig, rng *uint64) *breaker {
	return &breaker{cfg: cfg, rng: rng}
}

func (b *breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.cfg.OnChange != nil {
		b.cfg.OnChange(from, to)
	}
}

// allow reports whether a read may proceed at virtual time now. In the
// open state it flips to half-open once the open interval has elapsed;
// in half-open it consumes one probe token per admitted operation.
func (b *breaker) allow(now time.Duration) bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now < b.openUntil {
			b.stats.ShortCircuits++
			return false
		}
		b.transition(BreakerHalfOpen)
		b.tokens = 1
		b.successes = 0
		fallthrough
	default: // BreakerHalfOpen
		if b.tokens <= 0 {
			b.stats.ShortCircuits++
			return false
		}
		b.tokens--
		b.stats.Probes++
		return true
	}
}

// holdoff returns how long a write must wait before attempting the
// backend: the remainder of the open interval, zero otherwise.
func (b *breaker) holdoff(now time.Duration) time.Duration {
	if b.state == BreakerOpen && now < b.openUntil {
		return b.openUntil - now
	}
	return 0
}

// onSuccess records a successful backend attempt. Half-open successes
// grow the probe budget (slow start: the budget doubles with each
// success) until RecoveryTarget closes the breaker and resets the
// exponential open interval.
func (b *breaker) onSuccess() {
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		b.successes++
		if b.successes >= b.cfg.RecoveryTarget {
			b.trips = 0
			b.failures = 0
			b.transition(BreakerClosed)
			return
		}
		b.tokens += 1 << b.successes
	}
}

// onFailure records a failed (retryable) backend attempt at virtual
// time now. A run of FailureThreshold failures trips a closed breaker;
// any half-open failure reopens immediately with a doubled interval.
func (b *breaker) onFailure(now time.Duration) {
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip(now)
		}
	case BreakerHalfOpen:
		b.stats.ProbeFailures++
		b.trip(now)
	}
}

// trip opens the breaker with the seeded-jittered exponential interval.
func (b *breaker) trip(now time.Duration) {
	interval := b.cfg.OpenBase << b.trips
	if interval > b.cfg.OpenCap || interval <= 0 {
		interval = b.cfg.OpenCap
	}
	// Deterministic jitter in [interval/2, interval] desynchronizes
	// recovery probes across clients without sacrificing replayability.
	half := interval / 2
	if half > 0 {
		interval = half + time.Duration(splitmix(b.rng)%uint64(half+1))
	}
	b.trips++
	b.failures = 0
	b.stats.Opens++
	b.openUntil = now + interval
	b.transition(BreakerOpen)
}

// splitmix advances a SplitMix64 state and returns the next value —
// the client's deterministic jitter stream (retry backoff and breaker
// open intervals share it, in engine order).
func splitmix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Package cephclient implements the user-level Ceph filesystem client
// (the libcephfs-like libservice): an object cache for data and
// metadata in user memory, dirty thresholds with user-level flusher
// threads, and the coarse global client_lock whose serialization caps
// cached-read concurrency (§6.3.2 of the paper).
//
// The same client backs both ceph-fuse (configurations F, FP — reached
// through the FUSE transport) and Danaus (configuration D — reached
// through shared-memory IPC or direct function calls from the union
// libservice).
package cephclient

import (
	"container/list"
	"errors"
	"time"

	"repro/internal/cluster"
	"repro/internal/cpu"
	"repro/internal/extent"
	"repro/internal/memacct"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// Config configures one client instance.
type Config struct {
	// Name identifies the client in diagnostics.
	Name string
	// CacheLimit bounds the user-level object cache (the paper sets it
	// to 50% of the pool memory).
	CacheLimit int64
	// MaxDirty is the dirty throttle threshold; defaults to 50% of the
	// cache limit (the paper's setting).
	MaxDirty int64
	// Mask pins the client's threads (service and flushers) to the
	// pool's reserved cores. Zero means unpinned.
	Mask cpu.Mask
	// Acct attributes the client's CPU consumption.
	Acct *cpu.Account
	// Meter attributes the client's cache memory; optional.
	Meter *memacct.Meter
	// Flushers is the number of user-level writeback threads
	// (default 1).
	Flushers int
	// Tenant is the pool the client serves, used to tag flusher
	// writeback spans with their originating tenant. Defaults to Name.
	Tenant string
	// Obs, when non-nil, records flusher writeback spans and
	// per-tenant client_lock wait attribution.
	Obs *obs.Recorder
	// Breaker, when non-nil, enables the per-backend circuit breaker:
	// reads fail fast while it is open, writeback holds off until the
	// next probe time. Nil (the default) keeps the plain retry loop.
	Breaker *BreakerConfig
	// RetrySeed seeds the client's deterministic jitter stream (retry
	// backoff and breaker open intervals). Zero picks a fixed default,
	// so identical configurations replay identically.
	RetrySeed uint64
	// RetryObserver, when non-nil, sees every retry backoff delay as it
	// is slept — the hook the timing-determinism regression test uses.
	RetryObserver func(time.Duration)
}

// Client is a user-level Ceph client. It implements vfsapi.FileSystem.
type Client struct {
	eng    *sim.Engine
	cpus   *cpu.CPU
	params *model.Params
	clus   *cluster.Cluster
	cfg    Config
	meter  *memacct.Meter

	// clientLock is libcephfs's global lock: held for every cache and
	// metadata manipulation and for part of each data copy.
	clientLock *sim.Mutex

	files map[uint64]*cfile
	attrs map[string]attrEntry
	paths map[uint64]string
	lru   *list.List

	dirtyBytes  int64
	dirtyList   []*cfile
	oldestDirty time.Duration

	// CacheStats counts data-path cache behaviour.
	stats CacheStats
	// faults counts retry/failover activity against a faulted backend.
	faults metrics.FaultCounters
	// jitterState is the SplitMix64 stream behind retry and breaker
	// jitter; brk is nil unless Config.Breaker enables the breaker.
	jitterState uint64
	brk         *breaker
	throttleQ   *sim.WaitQueue
	flushQ      *sim.WaitQueue
	fetchQ      *sim.WaitQueue // readers waiting on in-flight fetches
	stopped     bool
	crashed     bool
	threads     []*cpu.Thread // the client's own threads, for repinning

	// gen counts crash incarnations: handles carry the generation they
	// were opened under and go stale when it moves on. sessionEpoch is
	// the client's current MDS session epoch (see cluster sessions).
	gen          uint64
	sessionEpoch uint64
	crashes      uint64
}

type attrEntry struct {
	info vfsapi.FileInfo
	ino  uint64
}

type cfile struct {
	ino        uint64
	gen        uint64 // client crash generation at creation
	size       int64
	cached     extent.Set
	dirty      extent.Set
	fetching   extent.Set // ranges being fetched by another reader
	lruElem    *list.Element
	inDirty    bool
	dirtySince time.Duration
	unlinked   bool
}

// New creates a client and starts its flusher threads.
func New(eng *sim.Engine, cpus *cpu.CPU, params *model.Params, clus *cluster.Cluster, cfg Config) *Client {
	if cfg.CacheLimit <= 0 {
		cfg.CacheLimit = 1 << 62
	}
	if cfg.MaxDirty <= 0 {
		cfg.MaxDirty = cfg.CacheLimit / 2
	}
	if cfg.Acct == nil {
		cfg.Acct = cpu.NewAccount(cfg.Name)
	}
	if cfg.Flushers <= 0 {
		cfg.Flushers = 1
	}
	if cfg.Tenant == "" {
		cfg.Tenant = cfg.Name
	}
	meter := cfg.Meter
	if meter == nil {
		meter = memacct.NewMeter(cfg.Name + ".ulcc")
	}
	c := &Client{
		eng:        eng,
		cpus:       cpus,
		params:     params,
		clus:       clus,
		cfg:        cfg,
		meter:      meter,
		clientLock: sim.NewMutex(eng, cfg.Name+".client_lock"),
		files:      map[uint64]*cfile{},
		attrs:      map[string]attrEntry{},
		paths:      map[uint64]string{},
		lru:        list.New(),
		throttleQ:  sim.NewWaitQueue(eng, cfg.Name+".throttle"),
		flushQ:     sim.NewWaitQueue(eng, cfg.Name+".flush"),
		fetchQ:     sim.NewWaitQueue(eng, cfg.Name+".fetch"),
	}
	c.jitterState = cfg.RetrySeed
	if c.jitterState == 0 {
		c.jitterState = 0x6a09e667f3bcc909 // fixed default: replayable without configuration
	}
	if bc := cfg.Breaker; bc != nil {
		if bc.FailureThreshold <= 0 {
			if bc.FailureThreshold = params.BreakerFailureThreshold; bc.FailureThreshold <= 0 {
				bc.FailureThreshold = 5
			}
		}
		if bc.OpenBase <= 0 {
			if bc.OpenBase = params.BreakerOpenBase; bc.OpenBase <= 0 {
				bc.OpenBase = 5 * time.Millisecond
			}
		}
		if bc.OpenCap < bc.OpenBase {
			if bc.OpenCap = params.BreakerOpenCap; bc.OpenCap < bc.OpenBase {
				bc.OpenCap = bc.OpenBase * 32
			}
		}
		if bc.RecoveryTarget <= 0 {
			if bc.RecoveryTarget = params.BreakerRecoveryTarget; bc.RecoveryTarget <= 0 {
				bc.RecoveryTarget = 4
			}
		}
		c.brk = newBreaker(*bc, &c.jitterState)
	}
	c.sessionEpoch = clus.OpenSession(cfg.Name, c)
	for i := 0; i < cfg.Flushers; i++ {
		eng.Go(cfg.Name+".flusher", func(p *sim.Proc) { c.flusherLoop(p) })
	}
	return c
}

// Stop terminates the flusher threads so the engine can drain, and
// releases any writer still parked on the dirty threshold.
func (c *Client) Stop() {
	c.stopped = true
	c.flushQ.Broadcast()
	c.throttleQ.Broadcast()
}

// Repin moves the client's service threads to a new core mask — the
// §9 dynamic reallocation of underutilized resources: a tenant's
// reservation can grow or shrink at runtime without remounting.
func (c *Client) Repin(mask cpu.Mask) {
	c.cfg.Mask = mask
	for _, th := range c.threads {
		th.SetAffinity(mask)
	}
}

// Crash simulates the failure of this filesystem service: every cached
// and dirty byte is lost, the service threads die, and subsequent
// operations fail with ErrCrashed. Per the paper's fault-containment
// analysis (§5), the blast radius is exactly this client: data already
// flushed to the storage backend survives, and other pools' services
// are untouched. Per the consistency discussion (§3.4), unflushed
// writes are lost and applications must repeat unacknowledged requests.
func (c *Client) Crash() {
	c.crashed = true
	c.gen++
	c.crashes++
	if n := c.meter.Current(); n > 0 {
		c.meter.Free(n)
	}
	c.files = map[uint64]*cfile{}
	c.attrs = map[string]attrEntry{}
	c.paths = map[uint64]string{}
	c.lru.Init()
	c.dirtyBytes = 0
	c.dirtyList = nil
	c.clus.MarkSessionStale(c.cfg.Name)
	c.Stop()
}

// Restart runs the crash-recovery protocol: reclaim the MDS session
// (which fences the dead incarnation's capabilities and issues a fresh
// epoch), then resume service with a cold cache and fresh flusher
// threads. Handles opened before the crash stay stale — applications
// must reopen, the replayable-remount contract. ctx must carry a live
// process for the session round trip.
func (c *Client) Restart(ctx vfsapi.Ctx) error {
	if !c.crashed {
		return nil
	}
	epoch, err := c.clus.ReclaimSession(ctx, c.cfg.Name)
	if err != nil {
		return err
	}
	c.sessionEpoch = epoch
	c.crashed = false
	c.stopped = false
	for i := 0; i < c.cfg.Flushers; i++ {
		c.eng.Go(c.cfg.Name+".flusher", func(p *sim.Proc) { c.flusherLoop(p) })
	}
	return nil
}

// Crashed reports whether the service has failed.
func (c *Client) Crashed() bool { return c.crashed }

// Crashes counts crash events since the client was built.
func (c *Client) Crashes() uint64 { return c.crashes }

// SessionEpoch returns the client's current MDS session epoch.
func (c *Client) SessionEpoch() uint64 { return c.sessionEpoch }

// failIfCrashed is checked on the entry of every operation.
func (c *Client) failIfCrashed(ctx vfsapi.Ctx) error {
	if c.crashed {
		// A failed call still burns an operation's worth of CPU —
		// charging it keeps erroring retry loops moving in simulated
		// time instead of spinning at one virtual instant.
		c.opCPU(ctx)
		return ErrCrashed
	}
	return nil
}

// Meter returns the client cache memory meter.
func (c *Client) Meter() *memacct.Meter { return c.meter }

// Account returns the client's CPU account.
func (c *Client) Account() *cpu.Account { return c.cfg.Acct }

// ClientLock exposes the global lock for contention inspection.
func (c *Client) ClientLock() *sim.Mutex { return c.clientLock }

// DirtyBytes returns bytes awaiting writeback.
func (c *Client) DirtyBytes() int64 { return c.dirtyBytes }

// CacheStats aggregates data-path cache behaviour of a client.
type CacheStats struct {
	// ReadBytes is the total bytes served to readers.
	ReadBytes int64
	// MissBytes is the portion fetched from the backend.
	MissBytes int64
	// WriteBytes is the total bytes written through the cache.
	WriteBytes int64
	// FlushedBytes is the dirty data written back to the backend.
	FlushedBytes int64
}

// HitRatio returns the fraction of read bytes served from the cache.
func (s CacheStats) HitRatio() float64 {
	if s.ReadBytes == 0 {
		return 0
	}
	return 1 - float64(s.MissBytes)/float64(s.ReadBytes)
}

// Stats returns a snapshot of the client's cache statistics.
func (c *Client) Stats() CacheStats { return c.stats }

// FaultStats returns a snapshot of the client's fault-handling
// counters.
func (c *Client) FaultStats() metrics.FaultCounters { return c.faults }

// BreakerStats returns the circuit-breaker counters (zero when the
// breaker is disabled).
func (c *Client) BreakerStats() BreakerStats {
	if c.brk == nil {
		return BreakerStats{}
	}
	return c.brk.stats
}

// BreakerState returns the current breaker state (closed when the
// breaker is disabled).
func (c *Client) BreakerState() BreakerState {
	if c.brk == nil {
		return BreakerClosed
	}
	return c.brk.state
}

// retryable reports whether err is a transient backend fault worth
// retrying (as opposed to a semantic error like ErrNotExist).
func retryable(err error) bool {
	return errors.Is(err, cluster.ErrOSDDown) ||
		errors.Is(err, netsim.ErrPartitioned) ||
		errors.Is(err, netsim.ErrDropped)
}

// backoff sleeps the seeded capped-exponential retry delay, charging
// it as I/O wait, and doubles d up to the cap. The slept delay is
// jittered to [d/2, d] from the client's deterministic jitter stream,
// so concurrent retriers desynchronize while two runs with the same
// seed produce byte-identical delay sequences.
func (c *Client) backoff(ctx vfsapi.Ctx, d *time.Duration) {
	delay := *d
	if half := delay / 2; half > 0 {
		delay = half + time.Duration(splitmix(&c.jitterState)%uint64(half+1))
	}
	if c.cfg.RetryObserver != nil {
		c.cfg.RetryObserver(delay)
	}
	start := c.eng.Now()
	ctx.P.Sleep(delay)
	wait := c.eng.Now() - start
	ctx.T.Account().AddIOWait(wait)
	c.faults.TimeDegraded += wait
	if next := *d * 2; next <= c.params.ClientRetryCap {
		*d = next
	} else {
		*d = c.params.ClientRetryCap
	}
}

// readBackend fetches [off, off+n) of ino with the client's bounded
// retry policy: the first attempt follows the cluster's degraded-aware
// routing; retries cycle through the replication group with capped
// exponential backoff until the per-op deadline or the retry budget
// runs out, at which point the op fails with vfsapi.ErrIO.
func (c *Client) readBackend(ctx vfsapi.Ctx, ino uint64, off, n int64) error {
	if c.brk != nil && !c.brk.allow(c.eng.Now()) {
		// Fail fast: the breaker learned the backend is down, so the op
		// sheds immediately instead of burning its full retry budget.
		return vfsapi.ErrIO
	}
	deadline := c.eng.Now() + c.params.ClientOpDeadline
	backoff := c.params.ClientRetryBase
	repl := c.clus.Replication()
	for try := 0; ; try++ {
		if c.crashed {
			// A crash mid-backoff must not let the next attempt slip
			// through: dead services issue no more requests.
			return ErrCrashed
		}
		var err error
		member := 0
		if try == 0 {
			err = c.clus.Read(ctx, ino, off, n)
		} else {
			member = try % repl
			err = c.clus.ReadReplica(ctx, ino, off, n, member)
		}
		if err == nil {
			if member != 0 {
				c.faults.Failovers++
			}
			if c.brk != nil {
				c.brk.onSuccess()
			}
			return nil
		}
		if c.crashed {
			return ErrCrashed
		}
		if !retryable(err) || c.stopped {
			return err
		}
		if c.brk != nil {
			c.brk.onFailure(c.eng.Now())
		}
		if try+1 >= c.params.ClientMaxRetries || c.eng.Now()+backoff > deadline {
			c.faults.DeadlineMisses++
			return vfsapi.ErrIO
		}
		c.faults.Retries++
		c.backoff(ctx, &backoff)
	}
}

// writePersist stores [off, off+n) of ino durably, retrying until it
// lands: writeback must not drop data the application already handed
// over, so unlike reads there is no retry bound — each attempt
// advances the acting primary through the replication group, and a
// pass of the op deadline is counted (once) as a deadline miss. The
// loop aborts only when the client is stopped or crashed or the error
// is not a transient fault.
func (c *Client) writePersist(ctx vfsapi.Ctx, ino uint64, off, n int64) error {
	deadline := c.eng.Now() + c.params.ClientOpDeadline
	backoff := c.params.ClientRetryBase
	repl := c.clus.Replication()
	missed := false
	for try := 0; ; try++ {
		if c.crashed {
			// The crash already discarded this incarnation's dirty state;
			// persisting more of it from a dead service would be wrong.
			return ErrCrashed
		}
		// An open breaker never sheds writeback (that would drop
		// acknowledged data); it holds the write off until the open
		// interval elapses, then lets it probe with everyone else.
		if c.brk != nil {
			if hold := c.brk.holdoff(c.eng.Now()); hold > 0 && !c.stopped && !c.crashed {
				start := c.eng.Now()
				ctx.P.Sleep(hold)
				wait := c.eng.Now() - start
				ctx.T.Account().AddIOWait(wait)
				c.faults.TimeDegraded += wait
			}
		}
		if c.crashed {
			return ErrCrashed
		}
		acting := try % repl
		err := c.clus.WriteReplica(ctx, ino, off, n, acting)
		if err == nil {
			if acting != 0 {
				c.faults.Failovers++
			}
			if c.brk != nil {
				c.brk.onSuccess()
			}
			return nil
		}
		if c.crashed {
			return ErrCrashed
		}
		if !retryable(err) || c.stopped {
			return err
		}
		if c.brk != nil {
			c.brk.onFailure(c.eng.Now())
		}
		c.faults.Retries++
		if !missed && c.eng.Now() > deadline {
			missed = true
			c.faults.DeadlineMisses++
		}
		c.backoff(ctx, &backoff)
	}
}

// opCPU charges the fixed user-level cost of one client operation.
func (c *Client) opCPU(ctx vfsapi.Ctx) {
	ctx.T.Exec(ctx.P, cpu.User, c.params.ClientOpCost)
}

// lockClient acquires client_lock, attributing any wait to the tenant
// of the traced request in flight (no-op attribution otherwise).
func (c *Client) lockClient(ctx vfsapi.Ctx) {
	if ctx.Span == nil {
		c.clientLock.Lock(ctx.P)
		return
	}
	start := c.eng.Now()
	c.clientLock.Lock(ctx.P)
	ctx.Span.LockWait("client_lock", c.eng.Now()-start)
}

// lockedMeta runs fn holding client_lock with the standard hold charge.
func (c *Client) lockedMeta(ctx vfsapi.Ctx, fn func()) {
	c.lockClient(ctx)
	ctx.T.Exec(ctx.P, cpu.User, c.params.ClientLockHold)
	fn()
	c.clientLock.Unlock(ctx.P)
}

// wire charges the client-side costs of moving n bytes on the network:
// socket syscalls (kernel mode on the caller's cores), protocol CPU,
// and the user-level message checksum.
func (c *Client) wire(ctx vfsapi.Ctx, n int64) {
	ctx.T.ModeSwitch(ctx.P)
	ctx.T.Exec(ctx.P, cpu.Kernel, c.params.NetOpCost)
	ctx.T.ExecBytes(ctx.P, cpu.Kernel, n, c.params.NetCPUBytesPerSec)
	ctx.T.ModeSwitch(ctx.P)
	ctx.T.ExecBytes(ctx.P, cpu.User, n, c.params.ChecksumBytesPerSec)
}

// copyData charges a data copy of n bytes, a fraction of it while
// holding client_lock. The read path holds the lock for most of the
// copy (buffer-head lookup and read completion run under it — the
// concurrency cap of §6.3.2), while buffered writes release it early.
func (c *Client) copyData(ctx vfsapi.Ctx, n int64, write bool) {
	total := c.params.CopyTime(n)
	fraction := c.params.ClientLockCopyFraction
	if write {
		fraction *= 0.25
	}
	under := time.Duration(float64(total) * fraction)
	c.lockClient(ctx)
	ctx.T.Exec(ctx.P, cpu.User, c.params.ClientLockHold+under)
	c.clientLock.Unlock(ctx.P)
	ctx.T.Exec(ctx.P, cpu.User, total-under)
}

func (c *Client) file(ino uint64, size int64) *cfile {
	f, ok := c.files[ino]
	if !ok {
		f = &cfile{ino: ino, gen: c.gen, size: size}
		c.files[ino] = f
	}
	return f
}

func (c *Client) touch(f *cfile) {
	// A crash discards every cfile of its generation; an operation that
	// was blocked across it still holds a dead incarnation's cfile and
	// must not push it into the new LRU (its residency is no longer in
	// the meter, so a later eviction would underflow).
	if f.gen != c.gen {
		return
	}
	if f.lruElem == nil {
		f.lruElem = c.lru.PushBack(f)
		return
	}
	c.lru.MoveToBack(f.lruElem)
}

// cacheInsert adds residency and evicts cold clean data over the limit.
// Caller must NOT hold client_lock.
func (c *Client) cacheInsert(ctx vfsapi.Ctx, f *cfile, off, n int64) {
	c.lockedMeta(ctx, func() {
		if f.gen != c.gen {
			return // stale cfile from before a crash: not accounted
		}
		added := f.cached.Insert(off, n)
		c.meter.Alloc(added)
		c.touch(f)
	})
	if c.meter.Current() > c.cfg.CacheLimit {
		c.evict(ctx)
	}
}

func (c *Client) evict(ctx vfsapi.Ctx) {
	watermark := c.cfg.CacheLimit - c.cfg.CacheLimit/16
	c.lockedMeta(ctx, func() {
		e := c.lru.Front()
		for e != nil && c.meter.Current() > watermark {
			next := e.Next()
			f := e.Value.(*cfile)
			before := f.cached.Len()
			keep := f.dirty.Extents()
			f.cached.Clear()
			for _, d := range keep {
				f.cached.Insert(d.Off, d.Len)
			}
			if freed := before - f.cached.Len(); freed > 0 {
				c.meter.Free(freed)
			}
			if f.cached.Len() == 0 {
				c.lru.Remove(e)
				f.lruElem = nil
			}
			e = next
		}
	})
}

func (c *Client) markDirty(ctx vfsapi.Ctx, f *cfile, off, n int64) {
	var newly int64
	c.lockedMeta(ctx, func() {
		if f.gen != c.gen {
			return // stale cfile from before a crash: not accounted
		}
		newly = f.dirty.Insert(off, n)
		if newly > 0 {
			if !f.inDirty {
				f.inDirty = true
				f.dirtySince = c.eng.Now()
				c.dirtyList = append(c.dirtyList, f)
				if len(c.dirtyList) == 1 {
					c.oldestDirty = f.dirtySince
				}
			}
			c.dirtyBytes += newly
		}
	})
	if c.dirtyBytes >= c.cfg.MaxDirty/2 {
		c.flushQ.Broadcast()
	}
	// The stopped check makes teardown safe: once the client's flusher
	// threads have been stopped nobody can lower the dirty level, so a
	// straggling writer must not spin on the threshold.
	for c.dirtyBytes >= c.cfg.MaxDirty && !c.stopped {
		start := c.eng.Now()
		c.throttleQ.WaitTimeout(ctx.P, c.params.DirtyThrottleCheck)
		ctx.T.Account().AddIOWait(c.eng.Now() - start)
	}
}

// flusherLoop is a user-level writeback thread pinned to the pool's
// cores: Danaus flushes with the tenant's own reserved resources.
func (c *Client) flusherLoop(p *sim.Proc) {
	th := c.cpus.NewThread(c.cfg.Acct, c.cfg.Mask)
	c.threads = append(c.threads, th)
	ctx := vfsapi.Ctx{P: p, T: th}
	for !c.stopped {
		c.flushQ.WaitTimeout(p, c.params.WritebackInterval)
		if c.stopped {
			return
		}
		c.flushPass(ctx)
	}
}

func (c *Client) flushPass(ctx vfsapi.Ctx) {
	const batch = 1 << 20
	// The writeback span is opened lazily on the first dirty file;
	// unlike the kernel flusher (which serves every mount on the host),
	// the user-level flusher only ever works for its own pool — the
	// tenant tag makes that containment visible in the trace.
	var sp *obs.Span
	var sc obs.Scope
	var passTotal int64
	defer func() {
		sc.Exit()
		sp.End(passTotal, nil)
	}()
	for {
		now := c.eng.Now()
		needed := c.dirtyBytes >= c.cfg.MaxDirty/2 ||
			(c.dirtyBytes > 0 && now-c.oldestDirty >= c.params.DirtyExpire)
		if !needed {
			return
		}
		f := c.nextDirtyFile()
		if f == nil {
			return
		}
		if sp == nil && c.cfg.Obs != nil {
			sp = c.cfg.Obs.StartSpan(ctx.P.ID(), c.cfg.Tenant, "writeback")
			sc = sp.Enter(obs.LayerWriteback)
			ctx.Span = sp
		}
		var exts []extent.Extent
		c.lockedMeta(ctx, func() { exts = f.dirty.PopFirst(batch) })
		var total int64
		for _, e := range exts {
			total += e.Len
			if !f.unlinked {
				c.wire(ctx, e.Len)
				c.writePersist(ctx, f.ino, e.Off, e.Len)
				c.stats.FlushedBytes += e.Len
			}
		}
		if c.crashed {
			// Crashed mid-flush: the crash reset the dirty accounting
			// wholesale, so this pass must not decrement it again.
			return
		}
		passTotal += total
		c.dirtyBytes -= total
		if f.dirty.Len() == 0 {
			c.removeDirty(f)
			if !f.unlinked {
				c.pushSize(ctx, f)
			}
		}
		c.throttleQ.Broadcast()
	}
}

func (c *Client) nextDirtyFile() *cfile {
	for len(c.dirtyList) > 0 {
		f := c.dirtyList[0]
		if f.dirty.Len() == 0 {
			c.removeDirty(f)
			continue
		}
		return f
	}
	return nil
}

func (c *Client) removeDirty(f *cfile) {
	for i, g := range c.dirtyList {
		if g == f {
			c.dirtyList = append(c.dirtyList[:i], c.dirtyList[i+1:]...)
			break
		}
	}
	f.inDirty = false
	if len(c.dirtyList) > 0 {
		c.oldestDirty = c.dirtyList[0].dirtySince
	}
}

// pushSize propagates the client's size view to the MDS.
func (c *Client) pushSize(ctx vfsapi.Ctx, f *cfile) {
	path, ok := c.paths[f.ino]
	if !ok {
		return
	}
	c.wire(ctx, 256)
	c.clus.MetaSetSize(ctx, path, f.size)
	if e, ok := c.attrs[path]; ok {
		if f.size > e.info.Size {
			e.info.Size = f.size
			c.attrs[path] = e
		}
	}
}

// RevokeCaps implements cluster.CapHolder: another client wants
// conflicting access to ino, so this client flushes the file's dirty
// data, pushes its size, and drops every cached byte and attribute for
// it. The next access re-fetches fresh state from the backend.
func (c *Client) RevokeCaps(ctx vfsapi.Ctx, ino uint64) {
	f, ok := c.files[ino]
	if !ok {
		if path, ok2 := c.paths[ino]; ok2 {
			delete(c.attrs, path)
		}
		return
	}
	for f.dirty.Len() > 0 {
		var exts []extent.Extent
		c.lockedMeta(ctx, func() { exts = f.dirty.PopFirst(4 << 20) })
		var total int64
		for _, e := range exts {
			c.wire(ctx, e.Len)
			c.writePersist(ctx, f.ino, e.Off, e.Len)
			total += e.Len
		}
		if c.crashed {
			return
		}
		c.dirtyBytes -= total
	}
	c.removeDirty(f)
	c.pushSize(ctx, f)
	c.throttleQ.Broadcast()
	c.lockedMeta(ctx, func() { c.dropCache(f) })
	if path, ok := c.paths[ino]; ok {
		delete(c.attrs, path)
	}
	delete(c.files, ino)
	c.clus.ReleaseCaps(ino, c)
}

// SyncAll synchronously flushes every dirty file and pushes its size
// to the MDS — the quiesce step of container migration (§9): after
// SyncAll the container state is fully visible through the shared
// filesystem from any other client.
func (c *Client) SyncAll(ctx vfsapi.Ctx) {
	for {
		f := c.nextDirtyFile()
		if f == nil {
			return
		}
		for f.dirty.Len() > 0 {
			var exts []extent.Extent
			c.lockedMeta(ctx, func() { exts = f.dirty.PopFirst(4 << 20) })
			var total int64
			for _, e := range exts {
				c.wire(ctx, e.Len)
				c.writePersist(ctx, f.ino, e.Off, e.Len)
				total += e.Len
			}
			if c.crashed {
				return
			}
			c.dirtyBytes -= total
		}
		c.removeDirty(f)
		c.pushSize(ctx, f)
		c.throttleQ.Broadcast()
	}
}

func (c *Client) dropCache(f *cfile) {
	if n := f.cached.Len(); n > 0 {
		c.meter.Free(n)
	}
	f.cached.Clear()
	if f.lruElem != nil {
		c.lru.Remove(f.lruElem)
		f.lruElem = nil
	}
	if d := f.dirty.Len(); d > 0 {
		c.dirtyBytes -= d
		f.dirty.Clear()
		c.removeDirty(f)
		c.throttleQ.Broadcast()
	}
}

// DirtyAudit recomputes dirty accounting from first principles for
// invariant checks in tests: the sum of per-file dirty bytes, the
// number of files in the dirty list, and the tracked counter.
func (c *Client) DirtyAudit() (fileSum int64, listed int, counter int64) {
	for _, f := range c.files {
		fileSum += f.dirty.Len()
	}
	return fileSum, len(c.dirtyList), c.dirtyBytes
}

package core

import (
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// AttachMonitor wires a live telemetry monitor into the testbed on top
// of an attached observer: completed facade ops and cross-tenant wait
// attributions stream into the monitor's windowed aggregates as they
// happen, an admission probe exposes per-pool queue depth and shed
// counts, and engine drain finalizes the trailing window.
//
// Call it after AttachObserver (it feeds off the obs recorder; without
// one it is a no-op) and before the workload starts. Determinism and
// overhead: ingestion uses event-carried virtual times and reads no
// clock, so with SampleInterval == 0 the monitor adds zero engine
// events and the run's schedule is event-for-event identical to an
// unmonitored one. SampleInterval > 0 adds a periodic ticker — still
// deterministic, but an intentional schedule change — that closes
// windows during event gaps and samples queue-depth peaks. A nil
// monitor is a no-op.
func (tb *Testbed) AttachMonitor(mon *telemetry.Monitor) {
	if mon == nil || tb.Obs == nil {
		return
	}
	tb.Monitor = mon
	tb.Obs.SetTelemetrySinks(
		func(e obs.OpEvent) {
			mon.RecordOp(e.Issue+e.Latency, e.Tenant, e.Op, e.Latency, e.Bytes, e.Err)
		},
		func(victim, aggressor string, start, dur time.Duration) {
			mon.RecordWait(start+dur, dur, victim, aggressor)
		},
	)
	mon.SetAdmissionProbe(func() []telemetry.AdmissionSample {
		out := make([]telemetry.AdmissionSample, 0, len(tb.pools))
		for _, p := range tb.pools {
			if p.Admission == nil {
				continue
			}
			s := p.Admission.Stats()
			out = append(out, telemetry.AdmissionSample{
				Tenant: p.Name, Queued: s.Queued, Shed: s.Shed,
			})
		}
		return out
	})
	if iv := mon.SampleInterval(); iv > 0 {
		var tick func()
		tick = func() {
			if tb.stopped {
				return
			}
			mon.Tick(tb.Eng.Now())
			tb.Eng.After(iv, tick)
		}
		tb.Eng.After(iv, tick)
	}
	tb.Obs.OnFinalize(func(*obs.Registry) { mon.Finalize(tb.Eng.Now()) })
}

package core

import (
	"fmt"
	"time"

	"repro/internal/cephclient"
	"repro/internal/cpu"
	"repro/internal/kern"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// AttachObserver wires an observability recorder into the testbed:
// request spans open at every pool mount facade, the CPU scheduler and
// kernel report their activity, a virtual-time ticker samples per-pool
// core utilization and cache occupancy, and a finalizer harvests the
// end-of-run counters of every layer into the recorder's registry.
//
// Call it right after NewTestbed, before creating pools, so the pool
// mounts pick up the recorder. A nil recorder is a no-op.
func (tb *Testbed) AttachObserver(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	tb.Obs = rec
	tb.CPU.SetRecorder(rec)
	tb.Kernel.SetRecorder(rec)
	// Bridge the engine's passive wait observer to the recorder: each
	// completed wait is attributed to the span bound to the waiting
	// process. Observation reads only the clock — the engine schedule is
	// unchanged (the zero-overhead contract).
	tb.Eng.SetWaitObserver(func(p *sim.Proc, kind, resource, holder string, holderID int, start, dur time.Duration) {
		rec.Wait(p.ID(), kind, resource, holder, holderID, start, dur)
	})
	if iv := rec.SampleInterval(); iv > 0 {
		tb.startSampler(rec, iv)
	}
	rec.OnFinalize(func(reg *obs.Registry) { tb.harvest(reg) })
}

// startSampler runs a periodic virtual-time ticker that records core
// utilization (percent of one core, so a busy 2-core pool reads 200)
// and cache occupancy per pool, plus host-wide utilization. It stops
// rescheduling once the testbed is stopped so the engine can drain.
func (tb *Testbed) startSampler(rec *obs.Recorder, iv time.Duration) {
	prev := tb.CPU.UtilSnapshot()
	hostMask := cpu.MaskRange(0, tb.CPU.NumCores())
	var tick func()
	tick = func() {
		if tb.stopped {
			return
		}
		now := tb.Eng.Now()
		rec.Sample(obs.HostTenant, "core_util_pct", now,
			tb.CPU.Utilization(hostMask, prev, iv)*100)
		for _, p := range tb.pools {
			rec.Sample(p.Name, "core_util_pct", now,
				tb.CPU.Utilization(p.Mask, prev, iv)*100)
			rec.Sample(p.Name, "cache_bytes", now, float64(p.Memory.Current()))
		}
		prev = tb.CPU.UtilSnapshot()
		tb.Eng.After(iv, tick)
	}
	tb.Eng.After(iv, tick)
}

// lockAgg converts engine-level mutex statistics to the registry form.
func lockAgg(s sim.LockStats) obs.LockAgg {
	return obs.LockAgg{
		Count:     s.Acquisitions,
		Contended: s.Contended,
		Wait:      s.TotalWait,
		Hold:      s.TotalHold,
		MaxWait:   s.MaxWait,
	}
}

// merge accumulates harvested mutex stats onto a registry aggregate
// (a pool can own several clients sharing the lock name).
func merge(dst *obs.LockAgg, s obs.LockAgg) {
	dst.Count += s.Count
	dst.Contended += s.Contended
	dst.Wait += s.Wait
	dst.Hold += s.Hold
	if s.MaxWait > dst.MaxWait {
		dst.MaxWait = s.MaxWait
	}
}

// harvest dumps the end-of-run counters of every layer into the
// registry: kernel locks and accounting plus cluster/network totals
// under the host pseudo-tenant, and per-pool CPU accounting, cache
// occupancy, client cache/fault/lock stats, union copy-ups, and IPC
// transport counters under each pool's tenant.
func (tb *Testbed) harvest(reg *obs.Registry) {
	host := reg.Tenant(obs.HostTenant)
	for name, ls := range tb.Kernel.LockBreakdown() {
		*host.Lock(name) = lockAgg(ls)
	}
	ks := tb.Kernel.Account().Snapshot()
	host.SetCounter("kernel_cpu_ns", int64(ks.CPUTime))
	host.SetCounter("kernel_iowait_ns", int64(ks.IOWait))
	for core, busy := range tb.CPU.UtilSnapshot() {
		host.SetCounter(fmt.Sprintf("core%d_busy_ns", core), int64(busy))
	}

	var osdRead, osdWritten, osdOps uint64
	for _, o := range tb.Cluster.OSDs() {
		osdRead += o.BytesRead()
		osdWritten += o.BytesWritten()
		osdOps += o.Ops()
	}
	host.SetCounter("osd_bytes_read", int64(osdRead))
	host.SetCounter("osd_bytes_written", int64(osdWritten))
	host.SetCounter("osd_ops", int64(osdOps))
	host.SetCounter("brownout_flips", int64(tb.Kernel.BrownoutFlips()))
	if n := tb.Cluster.SessionsReclaimed(); n > 0 {
		host.SetCounter("mds_sessions_reclaimed", int64(n))
	}
	if n := len(tb.crashLog); n > 0 {
		host.SetCounter("crash_events", int64(n))
		var rec int64
		for _, ev := range tb.crashLog {
			if ev.Recovered {
				rec += int64(ev.RecoveryTime())
			}
		}
		host.SetCounter("crash_recovery_ns", rec)
	}
	host.SetCounter("mds_ops", int64(tb.Cluster.MDSOps()))
	host.SetCounter("mds_queue_delay_ns", int64(tb.Cluster.MDSQueueDelay()))
	if fab := tb.Cluster.Fabric(); fab != nil && fab.Client != nil {
		host.SetCounter("net_tx_bytes", int64(fab.Client.TX.Bytes()))
		host.SetCounter("net_tx_msgs", int64(fab.Client.TX.Messages()))
		host.SetCounter("net_rx_bytes", int64(fab.Client.RX.Bytes()))
		host.SetCounter("net_rx_msgs", int64(fab.Client.RX.Messages()))
	}

	for _, p := range tb.pools {
		t := reg.Tenant(p.Name)
		as := p.Acct.Snapshot()
		t.SetCounter("cpu_ns", int64(as.CPUTime))
		t.SetCounter("user_ns", int64(as.UserTime))
		t.SetCounter("kernel_ns", int64(as.KernelTime))
		t.SetCounter("iowait_ns", int64(as.IOWait))
		t.SetCounter("mode_switches", int64(as.ModeSwitches))
		t.SetCounter("context_switches", int64(as.ContextSwitches))
		t.SetCounter("cache_bytes", p.Memory.Current())
		t.SetCounter("cache_bytes_max", p.Memory.MaxSum())
		if a := p.Admission; a != nil {
			as := a.Stats()
			t.SetCounter("admission_offered", int64(as.Offered))
			t.SetCounter("admission_admitted", int64(as.Admitted))
			t.SetCounter("admission_shed", int64(as.Shed))
			t.SetCounter("admission_max_queued", int64(as.MaxQueued))
			t.SetCounter("admission_queued_ns", int64(as.QueuedTime))
		}
		var crashes uint64
		for _, c := range p.clients {
			crashes += c.Crashes()
		}
		for _, m := range p.kernMounts {
			crashes += m.Crashes()
		}
		if crashes > 0 {
			t.SetCounter("client_crashes", int64(crashes))
		}
		for _, c := range p.clients {
			cs := c.Stats()
			t.AddCounter("cache_read_bytes", cs.ReadBytes)
			t.AddCounter("cache_miss_bytes", cs.MissBytes)
			t.AddCounter("cache_write_bytes", cs.WriteBytes)
			t.AddCounter("cache_flushed_bytes", cs.FlushedBytes)
			t.AddFaults(c.FaultStats())
			if bs := c.BreakerStats(); bs != (cephclient.BreakerStats{}) {
				t.AddCounter("breaker_opens", int64(bs.Opens))
				t.AddCounter("breaker_short_circuits", int64(bs.ShortCircuits))
				t.AddCounter("breaker_probes", int64(bs.Probes))
				t.AddCounter("breaker_probe_failures", int64(bs.ProbeFailures))
			}
			// Live per-request waits land in "client_lock" via
			// Span.LockWait; the full mutex aggregate (including
			// flusher-side holds) is kept under a separate key.
			merge(t.Lock("client_lock_total"), lockAgg(c.ClientLock().Stats()))
		}
		// Scaleup clones share their kernel mount (MountSpec.
		// SharedKernelMount), so fault counters are summed per distinct
		// mount, not per container — a shared mount counted once per
		// clone would double every retry and failover.
		seenMounts := map[*kern.Mount]bool{}
		for _, cont := range p.containers {
			if u := cont.Mount.Union; u != nil {
				t.AddCounter("copy_ups", int64(u.CopyUps()))
				t.AddCounter("copy_up_bytes", u.CopyUpBytes())
			}
			if tr := cont.Mount.IPC; tr != nil {
				t.AddCounter("ipc_calls", int64(tr.Calls()))
				t.AddCounter("ipc_wakeups", int64(tr.Wakeups()))
				t.AddCounter("ipc_scale_events", int64(tr.ScaleEvents()))
			}
			if m := cont.Mount.KernelMount; m != nil && !seenMounts[m] {
				seenMounts[m] = true
				if fs, ok := m.Store().(interface {
					FaultStats() metrics.FaultCounters
				}); ok {
					t.AddFaults(fs.FaultStats())
				}
			}
		}
	}
}

package core

import (
	"fmt"

	"repro/internal/vfsapi"
)

// MigrateTo moves a container to another pool of the same host — the
// migration path §9 of the paper sketches: because both the root image
// and the application data live on the shared network filesystem,
// migration reduces to quiescing the source client (flushing its dirty
// state to the backend) and remounting the same branches through a
// fresh filesystem service in the destination pool. No container state
// is copied between hosts or pools.
//
// The source container is left stopped; the returned container serves
// the same filesystem tree through the destination pool's reserved
// resources.
func (c *Container) MigrateTo(ctx vfsapi.Ctx, dst *Pool) (*Container, error) {
	if c.stopped {
		return nil, fmt.Errorf("core: container %s already migrated", c.Name)
	}
	if c.spec.SharedClient != nil || c.spec.SharedKernelMount != nil {
		return nil, fmt.Errorf("core: cannot migrate %s: it shares a client with other containers", c.Name)
	}

	// Quiesce: push every dirty byte and size to the storage backend so
	// the destination client sees the current state.
	if c.Mount.Client != nil {
		c.Mount.Client.SyncAll(ctx)
		c.Mount.Client.Stop()
	}
	if c.Mount.KernelMount != nil {
		c.Mount.KernelMount.SyncAll(ctx)
	}
	c.stopped = true

	// Remount the same branches in the destination pool.
	return dst.NewContainer(c.Name, c.spec)
}

// Stopped reports whether the container has been migrated away.
func (c *Container) Stopped() bool { return c.stopped }

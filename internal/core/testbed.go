// Package core implements the paper's contribution: the Danaus client
// architecture. It provides the container engine (pools as cgroup
// cpuset + memory reservations), the per-tenant filesystem services
// built from union and client libservices behind shared-memory IPC, the
// dual interface (default user-level path, legacy FUSE path), and the
// composition of every comparison configuration of Table 1 on a shared
// testbed of one client host and one Ceph-like cluster.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/cpu"
	"repro/internal/disk"
	"repro/internal/kern"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Testbed is the full experimental environment: the multicore client
// host (kernel, local disks) and the storage cluster, matching Fig 5.
type Testbed struct {
	Eng     *sim.Engine
	Params  *model.Params
	CPU     *cpu.CPU
	Kernel  *kern.Kernel
	Cluster *cluster.Cluster
	// LocalArray is the client's 4-disk RAID0 used by the RND and WBS
	// local workloads.
	LocalArray *disk.Array
	// LocalFS is the ext4-like kernel filesystem on the array.
	LocalFS *kern.Mount
	// LocalStore is the backing store of LocalFS (for provisioning).
	LocalStore *kern.LocalStore
	// Obs is the attached observability recorder (nil = disabled). Set
	// it via AttachObserver before creating pools so their mounts are
	// traced.
	Obs *obs.Recorder
	// Overload is the client-side overload protection policy (nil =
	// unprotected, the historical behaviour). Pools created after it is
	// set get admission control and circuit breakers.
	Overload *OverloadPolicy
	// Monitor is the attached live telemetry monitor (nil = disabled).
	// Set it via AttachMonitor after AttachObserver.
	Monitor *telemetry.Monitor

	pools   []*Pool
	stopped bool

	// crashLog records every client crash and its recovery (see
	// crash.go); entries are pointers so the asynchronous recovery
	// process can close them in place.
	crashLog []*CrashEvent
}

// TestbedConfig sizes the testbed.
type TestbedConfig struct {
	// Cores activated on the client host (the paper activates twice
	// the number of running instances, 4-64).
	Cores int
	// OSDs in the storage cluster (paper: 6).
	OSDs int
	// Params overrides the cost model (nil = calibrated defaults).
	Params *model.Params
	// LocalMemBytes bounds the page cache of the local ext4 filesystem.
	LocalMemBytes int64
	// Overload enables client-side overload protection for every pool
	// (nil keeps the unprotected behaviour).
	Overload *OverloadPolicy
}

// NewTestbed builds the environment of Fig 5.
func NewTestbed(cfg TestbedConfig) *Testbed {
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.OSDs <= 0 {
		cfg.OSDs = 6
	}
	params := cfg.Params
	if params == nil {
		params = model.Default()
	}
	if cfg.LocalMemBytes <= 0 {
		cfg.LocalMemBytes = 8 << 30
	}
	eng := sim.NewEngine()
	cpus := cpu.New(eng, params, cfg.Cores)
	k := kern.New(eng, cpus, params)
	clus := cluster.New(eng, params, cfg.OSDs)
	arr := disk.NewArray(eng, "local-raid0", 4, params.DiskSeqBytesPerSec, params.DiskSeekTime, params.DiskStripeUnit)
	ls := kern.NewLocalStore(eng, arr)
	localMount := k.Mount(ls, kern.MountConfig{
		Name:     "ext4",
		MemLimit: cfg.LocalMemBytes,
		MaxDirty: cfg.LocalMemBytes / 2,
	})
	return &Testbed{
		Eng:        eng,
		Params:     params,
		CPU:        cpus,
		Kernel:     k,
		Cluster:    clus,
		LocalArray: arr,
		LocalFS:    localMount,
		LocalStore: ls,
		Overload:   cfg.Overload,
	}
}

// NewPool reserves a container pool: a cpuset of cores and a memory
// budget, with its own resource accounting.
func (tb *Testbed) NewPool(name string, mask cpu.Mask, memBytes int64) *Pool {
	p := &Pool{
		tb:        tb,
		Name:      name,
		Mask:      mask,
		Mem:       memBytes,
		Acct:      cpu.NewAccount(name),
		Admission: tb.admissionFor(name),
	}
	tb.pools = append(tb.pools, p)
	return p
}

// Pools returns the reserved pools.
func (tb *Testbed) Pools() []*Pool { return tb.pools }

// Stop terminates all background service threads (kernel flushers and
// every pool's user-level clients) so the engine can drain.
func (tb *Testbed) Stop() {
	tb.stopped = true
	tb.Kernel.Stop()
	for _, p := range tb.pools {
		p.Stop()
	}
}

// PoolMasks partitions the first 2*n cores into n pools of 2 cores, the
// paper's standard reservation for contention experiments.
func (tb *Testbed) PoolMasks(n int) []cpu.Mask {
	if 2*n > tb.CPU.NumCores() {
		panic(fmt.Sprintf("core: %d pools need %d cores, host has %d", n, 2*n, tb.CPU.NumCores()))
	}
	masks := make([]cpu.Mask, n)
	for i := range masks {
		masks[i] = cpu.MaskRange(2*i, 2*i+2)
	}
	return masks
}

package core

import (
	"repro/internal/vfsapi"
)

// The §4.1 overloading of the library file table: besides regular
// files, entries can hold directory streams and pipe endpoints, all
// sharing the same private descriptor space.

// dirStream is an open directory iterator.
type dirStream struct {
	entries []vfsapi.DirEntry
	pos     int
}

// pipeState is the shared buffer of a pipe pair (byte counts only, like
// every data path of the simulation).
type pipeState struct {
	buffered int64
	closed   int // endpoints closed
}

// OpendirFD opens a directory stream and returns its descriptor.
func (l *Library) OpendirFD(ctx vfsapi.Ctx, path string) (int, error) {
	fs, rel, err := l.route(path)
	if err != nil {
		return -1, err
	}
	ents, err := fs.Readdir(ctx, rel)
	if err != nil {
		return -1, err
	}
	return l.insert(&libOpenFile{path: path, dir: &dirStream{entries: ents}}), nil
}

// ReaddirFD returns up to max entries from the stream, advancing it.
// An empty result means end of directory.
func (l *Library) ReaddirFD(fd int, max int) ([]vfsapi.DirEntry, error) {
	of, err := l.file(fd)
	if err != nil {
		return nil, err
	}
	if of.dir == nil {
		return nil, vfsapi.ErrNotDir
	}
	if max <= 0 {
		max = len(of.dir.entries)
	}
	end := of.dir.pos + max
	if end > len(of.dir.entries) {
		end = len(of.dir.entries)
	}
	out := of.dir.entries[of.dir.pos:end]
	of.dir.pos = end
	return out, nil
}

// RewinddirFD resets the stream to the first entry.
func (l *Library) RewinddirFD(fd int) error {
	of, err := l.file(fd)
	if err != nil {
		return err
	}
	if of.dir == nil {
		return vfsapi.ErrNotDir
	}
	of.dir.pos = 0
	return nil
}

// PipeFD creates a pipe and returns its (read, write) descriptors, both
// living in the library file table like any open file.
func (l *Library) PipeFD() (int, int) {
	state := &pipeState{}
	r := l.insert(&libOpenFile{pipe: state, pipeRead: true})
	w := l.insert(&libOpenFile{pipe: state})
	return r, w
}

// WritePipeFD buffers n bytes into the pipe.
func (l *Library) WritePipeFD(fd int, n int64) (int64, error) {
	of, err := l.file(fd)
	if err != nil {
		return 0, err
	}
	if of.pipe == nil || of.pipeRead {
		return 0, vfsapi.ErrBadFlags
	}
	if of.pipe.closed > 0 {
		return 0, vfsapi.ErrClosed
	}
	of.pipe.buffered += n
	return n, nil
}

// ReadPipeFD consumes up to n buffered bytes from the pipe.
func (l *Library) ReadPipeFD(fd int, n int64) (int64, error) {
	of, err := l.file(fd)
	if err != nil {
		return 0, err
	}
	if of.pipe == nil || !of.pipeRead {
		return 0, vfsapi.ErrBadFlags
	}
	if n > of.pipe.buffered {
		n = of.pipe.buffered
	}
	of.pipe.buffered -= n
	return n, nil
}

// insert places an entry in the file table, recycling free descriptors.
func (l *Library) insert(of *libOpenFile) int {
	if n := len(l.freeFDs); n > 0 {
		fd := l.freeFDs[n-1]
		l.freeFDs = l.freeFDs[:n-1]
		l.files[fd] = of
		return fd
	}
	l.files = append(l.files, of)
	return len(l.files) - 1
}

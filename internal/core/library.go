package core

import (
	"sort"
	"strings"

	"repro/internal/vfsapi"
)

// Library is the Danaus filesystem library preloaded into an
// application process (the front driver): it owns the process's mount
// table and library file table, routes each path to the filesystem
// service owning its mount point, and passes anything else to the
// kernel fallback — the dual interface of §3.2.
type Library struct {
	mounts   []libMount // sorted by descending prefix length
	fallback vfsapi.FileSystem
	files    []*libOpenFile // index = private fd
	freeFDs  []int
}

type libMount struct {
	point string
	fs    vfsapi.FileSystem
}

// libOpenFile is one entry of the library file table. Exactly one of
// handle, dir or pipe is set: the table is overloaded for regular
// files, directory streams and pipe endpoints (§4.1).
type libOpenFile struct {
	handle vfsapi.Handle
	path   string
	pos    int64

	dir      *dirStream
	pipe     *pipeState
	pipeRead bool
}

// NewLibrary creates a library with an optional kernel fallback for
// paths outside every Danaus mount.
func NewLibrary(fallback vfsapi.FileSystem) *Library {
	return &Library{fallback: fallback}
}

// AttachMount registers a filesystem service mount at a path prefix.
func (l *Library) AttachMount(point string, fs vfsapi.FileSystem) {
	point = strings.TrimSuffix(point, "/")
	l.mounts = append(l.mounts, libMount{point: point, fs: fs})
	sort.SliceStable(l.mounts, func(i, j int) bool {
		return len(l.mounts[i].point) > len(l.mounts[j].point)
	})
}

// route resolves a path to (filesystem, path inside it).
func (l *Library) route(path string) (vfsapi.FileSystem, string, error) {
	for _, m := range l.mounts {
		if m.point == "" {
			return m.fs, path, nil
		}
		if path == m.point {
			return m.fs, "/", nil
		}
		if strings.HasPrefix(path, m.point+"/") {
			return m.fs, path[len(m.point):], nil
		}
	}
	if l.fallback != nil {
		return l.fallback, path, nil
	}
	return nil, "", vfsapi.ErrNotExist
}

// OpenFD opens a file and returns a private file descriptor from the
// library file table.
func (l *Library) OpenFD(ctx vfsapi.Ctx, path string, flags vfsapi.OpenFlag) (int, error) {
	fs, rel, err := l.route(path)
	if err != nil {
		return -1, err
	}
	h, err := fs.Open(ctx, rel, flags)
	if err != nil {
		return -1, err
	}
	of := &libOpenFile{handle: h, path: path}
	if flags.Has(vfsapi.APPEND) {
		of.pos = h.Size()
	}
	if n := len(l.freeFDs); n > 0 {
		fd := l.freeFDs[n-1]
		l.freeFDs = l.freeFDs[:n-1]
		l.files[fd] = of
		return fd, nil
	}
	l.files = append(l.files, of)
	return len(l.files) - 1, nil
}

func (l *Library) file(fd int) (*libOpenFile, error) {
	if fd < 0 || fd >= len(l.files) || l.files[fd] == nil {
		return nil, vfsapi.ErrClosed
	}
	return l.files[fd], nil
}

// ReadFD reads n bytes at the current position, advancing it.
func (l *Library) ReadFD(ctx vfsapi.Ctx, fd int, n int64) (int64, error) {
	of, err := l.regular(fd)
	if err != nil {
		return 0, err
	}
	got, err := of.handle.Read(ctx, of.pos, n)
	of.pos += got
	return got, err
}

// WriteFD writes n bytes at the current position, advancing it.
func (l *Library) WriteFD(ctx vfsapi.Ctx, fd int, n int64) (int64, error) {
	of, err := l.regular(fd)
	if err != nil {
		return 0, err
	}
	got, err := of.handle.Write(ctx, of.pos, n)
	of.pos += got
	return got, err
}

// PReadFD reads at an explicit offset without moving the position.
func (l *Library) PReadFD(ctx vfsapi.Ctx, fd int, off, n int64) (int64, error) {
	of, err := l.file(fd)
	if err != nil {
		return 0, err
	}
	return of.handle.Read(ctx, off, n)
}

// PWriteFD writes at an explicit offset without moving the position.
func (l *Library) PWriteFD(ctx vfsapi.Ctx, fd int, off, n int64) (int64, error) {
	of, err := l.file(fd)
	if err != nil {
		return 0, err
	}
	return of.handle.Write(ctx, off, n)
}

// SeekFD sets the file position.
func (l *Library) SeekFD(fd int, pos int64) error {
	of, err := l.file(fd)
	if err != nil {
		return err
	}
	of.pos = pos
	return nil
}

// FsyncFD flushes the file.
func (l *Library) FsyncFD(ctx vfsapi.Ctx, fd int) error {
	of, err := l.file(fd)
	if err != nil {
		return err
	}
	return of.handle.Fsync(ctx)
}

// CloseFD closes the descriptor and recycles it, whatever kind of
// entry it holds.
func (l *Library) CloseFD(ctx vfsapi.Ctx, fd int) error {
	of, err := l.file(fd)
	if err != nil {
		return err
	}
	l.files[fd] = nil
	l.freeFDs = append(l.freeFDs, fd)
	if of.pipe != nil {
		of.pipe.closed++
		return nil
	}
	if of.dir != nil {
		return nil
	}
	return of.handle.Close(ctx)
}

// ReadFD/WriteFD and friends require a regular file entry.
func (l *Library) regular(fd int) (*libOpenFile, error) {
	of, err := l.file(fd)
	if err != nil {
		return nil, err
	}
	if of.handle == nil {
		return nil, vfsapi.ErrBadFlags
	}
	return of, nil
}

// OpenFDs returns the number of live descriptors (diagnostics).
func (l *Library) OpenFDs() int {
	n := 0
	for _, f := range l.files {
		if f != nil {
			n++
		}
	}
	return n
}

// Path-level helpers routed through the mount table.

// Stat resolves path metadata.
func (l *Library) Stat(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, error) {
	fs, rel, err := l.route(path)
	if err != nil {
		return vfsapi.FileInfo{}, err
	}
	return fs.Stat(ctx, rel)
}

// Mkdir creates a directory.
func (l *Library) Mkdir(ctx vfsapi.Ctx, path string) error {
	fs, rel, err := l.route(path)
	if err != nil {
		return err
	}
	return fs.Mkdir(ctx, rel)
}

// Readdir lists a directory.
func (l *Library) Readdir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	fs, rel, err := l.route(path)
	if err != nil {
		return nil, err
	}
	return fs.Readdir(ctx, rel)
}

// Unlink removes a file.
func (l *Library) Unlink(ctx vfsapi.Ctx, path string) error {
	fs, rel, err := l.route(path)
	if err != nil {
		return err
	}
	return fs.Unlink(ctx, rel)
}

// Rename moves a file within one mount.
func (l *Library) Rename(ctx vfsapi.Ctx, oldPath, newPath string) error {
	fs, relOld, err := l.route(oldPath)
	if err != nil {
		return err
	}
	fs2, relNew, err := l.route(newPath)
	if err != nil {
		return err
	}
	if fs != fs2 {
		return vfsapi.ErrBadFlags
	}
	return fs.Rename(ctx, relOld, relNew)
}

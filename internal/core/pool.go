package core

import (
	"fmt"

	"repro/internal/cephclient"
	"repro/internal/cpu"
	"repro/internal/fusefs"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/memacct"
	"repro/internal/unionfs"
	"repro/internal/vfsapi"
)

// Pool is a container pool: the reserved cores and memory of one tenant
// on the host, holding its containers and filesystem services.
type Pool struct {
	tb   *Testbed
	Name string
	Mask cpu.Mask
	Mem  int64
	Acct *cpu.Account

	// Memory is the group of cache meters charged to this pool across
	// all of its mounts (client caches and page caches).
	Memory memacct.Group

	// Admission is the pool's bounded admission controller, installed
	// at every mount facade when the testbed has an OverloadPolicy
	// (nil = unprotected).
	Admission *vfsapi.Admission

	containers []*Container
	clients    []*cephclient.Client
	cephFuse   map[*cephclient.Client]*fusefs.Transport
	// fuseDaemons tracks every FUSE daemon the pool runs (ceph-fuse,
	// unionfs-fuse, danaus-legacy) and kernMounts every kernel mount it
	// owns — the process inventory a crash domain kills (crash.go).
	fuseDaemons []*fusefs.Transport
	kernMounts  []*kern.Mount
	mounts      int
}

// Repin changes the pool's core reservation at runtime (§9 dynamic
// reallocation): the pool's clients and IPC transports move to the new
// mask, and threads created afterwards inherit it. CPU consumed so far
// stays attributed to the pool's account.
func (p *Pool) Repin(mask cpu.Mask) {
	if mask == 0 {
		return
	}
	p.Mask = mask
	for _, c := range p.clients {
		c.Repin(mask)
	}
	for _, cont := range p.containers {
		if cont.Mount.IPC != nil {
			cont.Mount.IPC.Repin(mask)
		}
	}
}

// Stop terminates the pool's user-level client flusher threads.
func (p *Pool) Stop() {
	for _, c := range p.clients {
		c.Stop()
	}
}

// Containers returns the pool's containers.
func (p *Pool) Containers() []*Container { return p.containers }

// MountSpec describes one container filesystem: the Table 1
// configuration plus the union branch directories on the shared
// cluster namespace.
type MountSpec struct {
	// Config selects the client system composition.
	Config Configuration
	// LowerDir is the read-only image branch on the cluster; empty
	// disables the union for configurations that allow it (D, K, F, FP
	// run standalone in the paper).
	LowerDir string
	// UpperDir is the writable branch (or the root directory for
	// unionless mounts). Required.
	UpperDir string
	// CacheBytes sizes the user-level client cache (default: 50% of
	// pool memory, the paper's setting).
	CacheBytes int64
	// SharedClient reuses an existing user-level client (pool scaleup:
	// cloned containers share one Ceph client). Nil creates a private
	// client.
	SharedClient *cephclient.Client
	// SharedKernelMount reuses an existing kernel Ceph mount for
	// kernel-client configurations in scaleup.
	SharedKernelMount *kern.Mount
}

// MountResult is an assembled container filesystem.
type MountResult struct {
	// Default is the filesystem reached through the configuration's
	// primary interface (shared-memory IPC for Danaus, syscalls/FUSE
	// otherwise).
	Default vfsapi.FileSystem
	// Legacy is the path taken by kernel-initiated I/O (exec, mmap):
	// the FUSE path for Danaus, identical to Default elsewhere.
	Legacy vfsapi.FileSystem
	// Client is the user-level client if the configuration has one.
	Client *cephclient.Client
	// KernelMount is the kernel Ceph mount if the configuration has one.
	KernelMount *kern.Mount
	// Union is the union filesystem if the configuration stacks one.
	Union *unionfs.Union
	// IPC is the Danaus transport (nil for other configurations).
	IPC *ipc.Transport
}

// newClient creates (or reuses) a user-level Ceph client for the pool.
func (p *Pool) newClient(spec MountSpec) *cephclient.Client {
	if spec.SharedClient != nil {
		return spec.SharedClient
	}
	cache := spec.CacheBytes
	if cache <= 0 {
		cache = p.Mem / 2 // paper: client cache = 50% of pool memory
	}
	meter := memacct.NewMeter(fmt.Sprintf("%s.ulcc%d", p.Name, p.mounts))
	clientName := fmt.Sprintf("%s.client%d", p.Name, p.mounts)
	brk, retrySeed := p.tb.breakerFor(p.Name, clientName)
	c := cephclient.New(p.tb.Eng, p.tb.CPU, p.tb.Params, p.tb.Cluster, cephclient.Config{
		Name:       clientName,
		CacheLimit: cache,
		MaxDirty:   cache / 2, // paper: max dirty = 50% of client cache
		Mask:       p.Mask,
		Acct:       p.Acct,
		Meter:      meter,
		Flushers:   2,
		Tenant:     p.Name,
		Obs:        p.tb.Obs,
		Breaker:    brk,
		RetrySeed:  retrySeed,
	})
	p.clients = append(p.clients, c)
	p.Memory.Add(meter)
	return c
}

// newKernelMount creates (or reuses) a kernel Ceph mount for the pool.
func (p *Pool) newKernelMount(spec MountSpec) *kern.Mount {
	if spec.SharedKernelMount != nil {
		return spec.SharedKernelMount
	}
	meter := memacct.NewMeter(fmt.Sprintf("%s.pagc%d", p.Name, p.mounts))
	m := p.tb.Kernel.Mount(kern.NewCephStore(p.tb.Kernel, p.tb.Cluster), kern.MountConfig{
		Name:     fmt.Sprintf("%s.cephfs%d", p.Name, p.mounts),
		Tenant:   p.Name,
		MemLimit: p.Mem,
		MaxDirty: p.Mem / 2, // paper: max dirty = 50% of pool RAM
		Meter:    meter,
	})
	p.Memory.Add(meter)
	p.kernMounts = append(p.kernMounts, m)
	return m
}

// pagedOver stacks the kernel page cache on a user-level filesystem
// (the FP construction) and returns the syscall-wrapped mount.
func (p *Pool) pagedOver(inner vfsapi.FileSystem, label string) (*kern.Mount, vfsapi.FileSystem) {
	meter := memacct.NewMeter(fmt.Sprintf("%s.%s.pagc%d", p.Name, label, p.mounts))
	m := p.tb.Kernel.Mount(kern.NewFSStore(inner), kern.MountConfig{
		Name:     fmt.Sprintf("%s.%s%d", p.Name, label, p.mounts),
		Tenant:   p.Name,
		MemLimit: p.Mem,
		MaxDirty: p.Mem / 2,
		Meter:    meter,
	})
	p.Memory.Add(meter)
	p.kernMounts = append(p.kernMounts, m)
	return m, kern.NewSyscalls(p.tb.Kernel, m)
}

// fuseOver serves inner through a FUSE daemon owned by the pool.
func (p *Pool) fuseOver(inner vfsapi.FileSystem, label string) *fusefs.Transport {
	t := fusefs.New(p.tb.Eng, p.tb.CPU, p.tb.Params, inner, fusefs.Config{
		Name: fmt.Sprintf("%s.%s%d", p.Name, label, p.mounts),
		Acct: p.Acct,
		Mask: p.Mask,
	})
	p.fuseDaemons = append(p.fuseDaemons, t)
	return t
}

// cephFuseFor returns the single ceph-fuse daemon of a client: there is
// ONE ceph-fuse process per mounted client, so cloned containers that
// share the client also share (and contend on) its daemon threads.
func (p *Pool) cephFuseFor(client *cephclient.Client) *fusefs.Transport {
	if p.cephFuse == nil {
		p.cephFuse = map[*cephclient.Client]*fusefs.Transport{}
	}
	if t, ok := p.cephFuse[client]; ok {
		return t
	}
	t := p.fuseOver(client, "ceph-fuse")
	p.cephFuse[client] = t
	return t
}

// union stacks the union filesystem over branch filesystems.
func (p *Pool) union(upper, lower vfsapi.FileSystem, spec MountSpec, kind cpu.TimeKind) *unionfs.Union {
	branches := []unionfs.Branch{{FS: upper, Root: spec.UpperDir, Writable: true}}
	if spec.LowerDir != "" {
		branches = append(branches, unionfs.Branch{FS: lower, Root: spec.LowerDir})
	}
	return unionfs.New(branches, unionfs.Config{Kind: kind, Params: p.tb.Params})
}

// subtree roots a filesystem at a directory when no union is stacked.
func subtree(fs vfsapi.FileSystem, root string) vfsapi.FileSystem {
	if root == "" || root == "/" {
		return fs
	}
	return &prefixFS{inner: fs, prefix: root}
}

// Mount assembles the filesystem stack of Table 1 for one container.
func (p *Pool) Mount(spec MountSpec) (*MountResult, error) {
	if spec.UpperDir == "" {
		return nil, fmt.Errorf("core: MountSpec.UpperDir is required")
	}
	defer func() { p.mounts++ }()
	res := &MountResult{}
	switch spec.Config {
	case ConfigD:
		client := p.newClient(spec)
		res.Client = client
		var instance vfsapi.FileSystem
		if spec.LowerDir != "" {
			// Union libservice invoking the client libservice through
			// function calls — no crossing between them.
			res.Union = p.union(client, client, spec, cpu.User)
			instance = res.Union
		} else {
			instance = subtree(client, spec.UpperDir)
		}
		res.IPC = ipc.New(p.tb.Eng, p.tb.CPU, p.tb.Params, instance, ipc.Config{
			Name: fmt.Sprintf("%s.svc%d", p.Name, p.mounts),
			Mask: p.Mask,
			Acct: p.Acct,
		})
		res.Default = res.IPC
		res.Legacy = p.fuseOver(instance, "danaus-legacy")

	case ConfigK:
		m := p.newKernelMount(spec)
		res.KernelMount = m
		fs := kern.NewSyscalls(p.tb.Kernel, subtree(m, spec.UpperDir))
		res.Default, res.Legacy = fs, fs

	case ConfigF:
		client := p.newClient(spec)
		res.Client = client
		fs := subtree(p.cephFuseFor(client), spec.UpperDir)
		res.Default, res.Legacy = fs, fs

	case ConfigFP:
		client := p.newClient(spec)
		res.Client = client
		fuse := subtree(p.cephFuseFor(client), spec.UpperDir)
		m, fs := p.pagedOver(fuse, "fusepagc")
		res.KernelMount = m
		res.Default, res.Legacy = fs, fs

	case ConfigKK:
		m := p.newKernelMount(spec)
		res.KernelMount = m
		res.Union = p.union(m, m, spec, cpu.Kernel)
		fs := kern.NewSyscalls(p.tb.Kernel, res.Union)
		res.Default, res.Legacy = fs, fs

	case ConfigFK:
		m := p.newKernelMount(spec)
		res.KernelMount = m
		branch := kern.NewSyscalls(p.tb.Kernel, m)
		res.Union = p.union(branch, branch, spec, cpu.User)
		fs := p.fuseOver(res.Union, "unionfs-fuse")
		res.Default, res.Legacy = fs, fs

	case ConfigFF:
		client := p.newClient(spec)
		res.Client = client
		branch := p.cephFuseFor(client)
		res.Union = p.union(branch, branch, spec, cpu.User)
		fs := p.fuseOver(res.Union, "unionfs-fuse")
		res.Default, res.Legacy = fs, fs

	case ConfigFPFP:
		client := p.newClient(spec)
		res.Client = client
		cephFuse := p.cephFuseFor(client)
		_, branch := p.pagedOver(cephFuse, "cephfusepagc")
		res.Union = p.union(branch, branch, spec, cpu.User)
		unionFuse := p.fuseOver(res.Union, "unionfs-fuse")
		m, fs := p.pagedOver(unionFuse, "unionpagc")
		res.KernelMount = m
		res.Default, res.Legacy = fs, fs

	default:
		return nil, fmt.Errorf("core: unknown configuration %v", spec.Config)
	}
	// The admission controller sits directly under the observability
	// facade: every operation entering the container's mount claims a
	// slot (or is shed), and the queue wait lands inside the request
	// span. Both wrappers are no-ops (return the inner fs) when their
	// feature is off.
	res.Default = vfsapi.Traced(vfsapi.Admitted(res.Default, p.Admission), p.tb.Obs, p.Name)
	res.Legacy = vfsapi.Traced(vfsapi.Admitted(res.Legacy, p.Admission), p.tb.Obs, p.Name)
	return res, nil
}

// NewContainer creates a container in the pool with the given root
// filesystem mount.
func (p *Pool) NewContainer(name string, spec MountSpec) (*Container, error) {
	mr, err := p.Mount(spec)
	if err != nil {
		return nil, err
	}
	c := &Container{Name: name, Pool: p, Mount: mr, spec: spec}
	p.containers = append(p.containers, c)
	return c, nil
}

// Container is one container: a named process group of a pool with its
// root filesystem.
type Container struct {
	Name    string
	Pool    *Pool
	Mount   *MountResult
	spec    MountSpec // retained for migration remounts
	stopped bool
}

// NewThread creates a CPU thread confined to the container's pool
// (its cgroup cpuset) and charged to the pool's account.
func (c *Container) NewThread() *cpu.Thread {
	return c.Pool.tb.CPU.NewThread(c.Pool.Acct, c.Pool.Mask)
}

// prefixFS roots an inner filesystem at a path prefix.
type prefixFS struct {
	inner  vfsapi.FileSystem
	prefix string
}

func (f *prefixFS) full(path string) string { return f.prefix + path }

func (f *prefixFS) Open(ctx vfsapi.Ctx, path string, flags vfsapi.OpenFlag) (vfsapi.Handle, error) {
	return f.inner.Open(ctx, f.full(path), flags)
}

func (f *prefixFS) Stat(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, error) {
	return f.inner.Stat(ctx, f.full(path))
}

func (f *prefixFS) Mkdir(ctx vfsapi.Ctx, path string) error {
	return f.inner.Mkdir(ctx, f.full(path))
}

func (f *prefixFS) Readdir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	return f.inner.Readdir(ctx, f.full(path))
}

func (f *prefixFS) Unlink(ctx vfsapi.Ctx, path string) error {
	return f.inner.Unlink(ctx, f.full(path))
}

func (f *prefixFS) Rmdir(ctx vfsapi.Ctx, path string) error {
	return f.inner.Rmdir(ctx, f.full(path))
}

func (f *prefixFS) Rename(ctx vfsapi.Ctx, oldPath, newPath string) error {
	return f.inner.Rename(ctx, f.full(oldPath), f.full(newPath))
}

package core

import (
	"errors"
	"testing"

	"repro/internal/cpu"
	"repro/internal/kern"
	"repro/internal/nstree"
	"repro/internal/sim"
	"repro/internal/vfsapi"
	"repro/internal/workloads"
)

func newTB(t *testing.T, cores int) *Testbed {
	t.Helper()
	return NewTestbed(TestbedConfig{Cores: cores})
}

// runOn executes fn as a container thread and drains the testbed.
func runOn(t *testing.T, tb *Testbed, c *Container, fn func(ctx vfsapi.Ctx)) {
	t.Helper()
	tb.Eng.Go("app", func(p *sim.Proc) {
		fn(vfsapi.Ctx{P: p, T: c.NewThread()})
		tb.Stop()
	})
	tb.Eng.Run()
	if tb.Eng.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", tb.Eng.LiveProcs())
	}
}

func provisionImage(tb *Testbed, dir string) {
	tb.Cluster.ProvisionDir(dir)
	tb.Cluster.Provision(dir+"/bin/app", 1<<20)
	tb.Cluster.Provision(dir+"/etc/conf", 4<<10)
}

func TestAllConfigurationsServeBasicIO(t *testing.T) {
	for _, cfg := range AllConfigurations() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			tb := newTB(t, 4)
			provisionImage(tb, "/images/base")
			tb.Cluster.ProvisionDir("/containers/c0")
			pool := tb.NewPool("pool0", cpu.MaskOf(0, 1), 8<<30)
			spec := MountSpec{Config: cfg, UpperDir: "/containers/c0"}
			if cfg.HasUnion() || cfg == ConfigD {
				spec.LowerDir = "/images/base"
			}
			c, err := pool.NewContainer("c0", spec)
			if err != nil {
				t.Fatal(err)
			}
			runOn(t, tb, c, func(ctx vfsapi.Ctx) {
				// Read a file from the (lower) image if unioned,
				// otherwise create one.
				if spec.LowerDir != "" {
					h, err := c.Mount.Default.Open(ctx, "/bin/app", vfsapi.RDONLY)
					if err != nil {
						t.Errorf("open image file: %v", err)
						return
					}
					if got, _ := h.Read(ctx, 0, 1<<20); got != 1<<20 {
						t.Errorf("read %d", got)
					}
					h.Close(ctx)
				}
				// Write a private file.
				h, err := c.Mount.Default.Open(ctx, "/data.log", vfsapi.CREATE|vfsapi.WRONLY)
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				if got, _ := h.Write(ctx, 0, 256<<10); got != 256<<10 {
					t.Errorf("wrote %d", got)
				}
				if err := h.Fsync(ctx); err != nil {
					t.Errorf("fsync: %v", err)
				}
				h.Close(ctx)
				info, err := c.Mount.Default.Stat(ctx, "/data.log")
				if err != nil || info.Size != 256<<10 {
					t.Errorf("stat: %+v %v", info, err)
				}
			})
		})
	}
}

func TestDanausDefaultPathAvoidsKernel(t *testing.T) {
	tb := newTB(t, 4)
	tb.Cluster.ProvisionDir("/containers/c0")
	pool := tb.NewPool("pool0", cpu.MaskOf(0, 1), 8<<30)
	c, err := pool.NewContainer("c0", MountSpec{Config: ConfigD, UpperDir: "/containers/c0"})
	if err != nil {
		t.Fatal(err)
	}
	runOn(t, tb, c, func(ctx vfsapi.Ctx) {
		h, _ := c.Mount.Default.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		h.Write(ctx, 0, 1<<20)
		h.Close(ctx)
	})
	// The only kernel involvement should be network syscalls of the
	// client (2 mode switches per wire op), never FUSE/VFS crossings.
	if pool.Acct.ContextSwitches() > 2 {
		t.Fatalf("default path context switches = %d", pool.Acct.ContextSwitches())
	}
	if c.Mount.IPC.Calls() == 0 {
		t.Fatal("no IPC calls recorded on the Danaus path")
	}
}

func TestDanausLegacyPathUsesFUSE(t *testing.T) {
	tb := newTB(t, 4)
	tb.Cluster.ProvisionDir("/containers/c0")
	tb.Cluster.Provision("/containers/c0/bin/sh", 1<<20)
	pool := tb.NewPool("pool0", cpu.MaskOf(0, 1), 8<<30)
	c, _ := pool.NewContainer("c0", MountSpec{Config: ConfigD, UpperDir: "/containers/c0"})
	runOn(t, tb, c, func(ctx vfsapi.Ctx) {
		h, err := c.Mount.Legacy.Open(ctx, "/bin/sh", vfsapi.RDONLY)
		if err != nil {
			t.Errorf("legacy open: %v", err)
			return
		}
		h.Read(ctx, 0, 1<<20)
		h.Close(ctx)
	})
	if pool.Acct.ContextSwitches() < 2 {
		t.Fatal("legacy path did not cross FUSE")
	}
}

func TestDanausAndLegacySeeSameFiles(t *testing.T) {
	tb := newTB(t, 4)
	tb.Cluster.ProvisionDir("/containers/c0")
	pool := tb.NewPool("pool0", cpu.MaskOf(0, 1), 8<<30)
	c, _ := pool.NewContainer("c0", MountSpec{Config: ConfigD, UpperDir: "/containers/c0"})
	runOn(t, tb, c, func(ctx vfsapi.Ctx) {
		h, _ := c.Mount.Default.Open(ctx, "/shared.txt", vfsapi.CREATE|vfsapi.WRONLY)
		h.Write(ctx, 0, 4096)
		h.Close(ctx)
		info, err := c.Mount.Legacy.Stat(ctx, "/shared.txt")
		if err != nil || info.Size != 4096 {
			t.Errorf("legacy view: %+v %v (dual interface must share state)", info, err)
		}
	})
}

func TestCloneSharingThroughSharedClient(t *testing.T) {
	// Scaleup: two cloned containers over one shared client; the shared
	// lower image is cached once.
	tb := newTB(t, 4)
	provisionImage(tb, "/images/base")
	tb.Cluster.ProvisionDir("/containers/c0")
	tb.Cluster.ProvisionDir("/containers/c1")
	pool := tb.NewPool("pool0", cpu.MaskOf(0, 1, 2, 3), 16<<30)
	c0, _ := pool.NewContainer("c0", MountSpec{
		Config: ConfigD, UpperDir: "/containers/c0", LowerDir: "/images/base",
	})
	c1, _ := pool.NewContainer("c1", MountSpec{
		Config: ConfigD, UpperDir: "/containers/c1", LowerDir: "/images/base",
		SharedClient: c0.Mount.Client,
	})
	if c1.Mount.Client != c0.Mount.Client {
		t.Fatal("clone did not share the client")
	}
	runOn(t, tb, c0, func(ctx vfsapi.Ctx) {
		h, _ := c0.Mount.Default.Open(ctx, "/bin/app", vfsapi.RDONLY)
		h.Read(ctx, 0, 1<<20)
		h.Close(ctx)
		var before uint64
		for _, o := range tb.Cluster.OSDs() {
			before += o.BytesRead()
		}
		// The clone reads the same image file: must be served from the
		// shared client cache without OSD traffic.
		h2, err := c1.Mount.Default.Open(ctx, "/bin/app", vfsapi.RDONLY)
		if err != nil {
			t.Errorf("clone open: %v", err)
			return
		}
		h2.Read(ctx, 0, 1<<20)
		h2.Close(ctx)
		var after uint64
		for _, o := range tb.Cluster.OSDs() {
			after += o.BytesRead()
		}
		if after != before {
			t.Errorf("clone read hit OSDs: %d extra bytes", after-before)
		}
	})
}

func TestCloneWritesAreIsolated(t *testing.T) {
	tb := newTB(t, 4)
	provisionImage(tb, "/images/base")
	tb.Cluster.ProvisionDir("/containers/c0")
	tb.Cluster.ProvisionDir("/containers/c1")
	pool := tb.NewPool("pool0", cpu.MaskOf(0, 1, 2, 3), 16<<30)
	c0, _ := pool.NewContainer("c0", MountSpec{Config: ConfigD, UpperDir: "/containers/c0", LowerDir: "/images/base"})
	c1, _ := pool.NewContainer("c1", MountSpec{Config: ConfigD, UpperDir: "/containers/c1", LowerDir: "/images/base", SharedClient: c0.Mount.Client})
	runOn(t, tb, c0, func(ctx vfsapi.Ctx) {
		// c0 modifies an image file (copy-up into its upper branch).
		h, err := c0.Mount.Default.Open(ctx, "/etc/conf", vfsapi.WRONLY|vfsapi.APPEND)
		if err != nil {
			t.Errorf("open for append: %v", err)
			return
		}
		h.Append(ctx, 100)
		h.Close(ctx)
		// c1 still sees the pristine image file.
		info, err := c1.Mount.Default.Stat(ctx, "/etc/conf")
		if err != nil || info.Size != 4<<10 {
			t.Errorf("clone isolation broken: %+v %v", info, err)
		}
		info0, _ := c0.Mount.Default.Stat(ctx, "/etc/conf")
		if info0.Size != 4<<10+100 {
			t.Errorf("c0 modified size = %d", info0.Size)
		}
	})
}

func TestLibraryFDTable(t *testing.T) {
	tb := newTB(t, 4)
	tb.Cluster.ProvisionDir("/containers/c0")
	pool := tb.NewPool("pool0", cpu.MaskOf(0, 1), 8<<30)
	c, _ := pool.NewContainer("c0", MountSpec{Config: ConfigD, UpperDir: "/containers/c0"})
	lib := NewLibrary(nil)
	lib.AttachMount("/mnt/danaus", c.Mount.Default)
	runOn(t, tb, c, func(ctx vfsapi.Ctx) {
		fd, err := lib.OpenFD(ctx, "/mnt/danaus/file", vfsapi.CREATE|vfsapi.RDWR)
		if err != nil {
			t.Errorf("openfd: %v", err)
			return
		}
		if n, _ := lib.WriteFD(ctx, fd, 100); n != 100 {
			t.Errorf("write %d", n)
		}
		if n, _ := lib.WriteFD(ctx, fd, 50); n != 50 {
			t.Errorf("write %d", n)
		}
		lib.SeekFD(fd, 0)
		if n, _ := lib.ReadFD(ctx, fd, 150); n != 150 {
			t.Errorf("sequential read got %d", n)
		}
		if n, _ := lib.PReadFD(ctx, fd, 100, 50); n != 50 {
			t.Errorf("pread got %d", n)
		}
		if err := lib.FsyncFD(ctx, fd); err != nil {
			t.Errorf("fsync: %v", err)
		}
		if err := lib.CloseFD(ctx, fd); err != nil {
			t.Errorf("close: %v", err)
		}
		if _, err := lib.ReadFD(ctx, fd, 1); !errors.Is(err, vfsapi.ErrClosed) {
			t.Errorf("read closed fd: %v", err)
		}
		// FD recycling.
		fd2, _ := lib.OpenFD(ctx, "/mnt/danaus/file", vfsapi.RDONLY)
		if fd2 != fd {
			t.Errorf("fd not recycled: %d vs %d", fd2, fd)
		}
		lib.CloseFD(ctx, fd2)
		if lib.OpenFDs() != 0 {
			t.Errorf("leaked fds: %d", lib.OpenFDs())
		}
		// Paths outside every mount fail without a fallback.
		if _, err := lib.OpenFD(ctx, "/etc/passwd", vfsapi.RDONLY); !errors.Is(err, vfsapi.ErrNotExist) {
			t.Errorf("unrouted path: %v", err)
		}
	})
}

func TestPoolIsolationOfDanausService(t *testing.T) {
	// A Danaus container hammering I/O must not consume the cores of a
	// second pool.
	tb := newTB(t, 4)
	tb.Cluster.ProvisionDir("/containers/c0")
	pool0 := tb.NewPool("pool0", cpu.MaskOf(0, 1), 8<<30)
	tb.NewPool("pool1", cpu.MaskOf(2, 3), 8<<30)
	c, _ := pool0.NewContainer("c0", MountSpec{Config: ConfigD, UpperDir: "/containers/c0"})
	runOn(t, tb, c, func(ctx vfsapi.Ctx) {
		h, _ := c.Mount.Default.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		for i := int64(0); i < 64; i++ {
			h.Write(ctx, i<<20, 1<<20)
		}
		h.Close(ctx)
	})
	util := tb.CPU.UtilSnapshot()
	if util[2] != 0 || util[3] != 0 {
		t.Fatalf("Danaus I/O leaked onto pool1 cores: %v", util)
	}
}

func TestPoolMasks(t *testing.T) {
	tb := newTB(t, 8)
	masks := tb.PoolMasks(3)
	if len(masks) != 3 || masks[0] != cpu.MaskOf(0, 1) || masks[2] != cpu.MaskOf(4, 5) {
		t.Fatalf("masks = %v", masks)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when pools exceed cores")
		}
	}()
	tb.PoolMasks(5)
}

func TestConfigurationStrings(t *testing.T) {
	want := map[Configuration]string{
		ConfigD: "D", ConfigK: "K", ConfigF: "F", ConfigFP: "FP",
		ConfigKK: "K/K", ConfigFK: "F/K", ConfigFF: "F/F", ConfigFPFP: "FP/FP",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%v.String() = %q", c, c.String())
		}
	}
	if !ConfigD.UserLevelClient() || ConfigK.UserLevelClient() {
		t.Fatal("UserLevelClient classification wrong")
	}
	if !ConfigFF.HasUnion() || ConfigF.HasUnion() {
		t.Fatal("HasUnion classification wrong")
	}
}

func TestFFHasMoreContextSwitchesThanD(t *testing.T) {
	// The Fig 8b mechanism at unit scale: the same workload crossing
	// two FUSE daemons (F/F) versus Danaus IPC.
	run := func(cfg Configuration) uint64 {
		tb := newTB(t, 4)
		provisionImage(tb, "/images/base")
		tb.Cluster.ProvisionDir("/containers/c0")
		pool := tb.NewPool("pool0", cpu.MaskOf(0, 1), 8<<30)
		c, err := pool.NewContainer("c0", MountSpec{
			Config: cfg, UpperDir: "/containers/c0", LowerDir: "/images/base",
		})
		if err != nil {
			t.Fatal(err)
		}
		runOn(t, tb, c, func(ctx vfsapi.Ctx) {
			h, _ := c.Mount.Default.Open(ctx, "/out", vfsapi.CREATE|vfsapi.WRONLY)
			for i := int64(0); i < 8; i++ {
				h.Write(ctx, i*256<<10, 256<<10)
			}
			h.Close(ctx)
		})
		return pool.Acct.ContextSwitches()
	}
	dSwitches := run(ConfigD)
	ffSwitches := run(ConfigFF)
	if ffSwitches < 8*dSwitches {
		t.Fatalf("F/F switches = %d, D = %d; expected >= 8x gap", ffSwitches, dSwitches)
	}
}

func TestContainerMigration(t *testing.T) {
	tb := newTB(t, 8)
	provisionImage(tb, "/images/base")
	tb.Cluster.ProvisionDir("/containers/m0")
	src := tb.NewPool("src", cpu.MaskOf(0, 1), 8<<30)
	dst := tb.NewPool("dst", cpu.MaskOf(2, 3), 8<<30)
	c, err := src.NewContainer("m0", MountSpec{
		Config: ConfigD, UpperDir: "/containers/m0", LowerDir: "/images/base",
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Eng.Go("migrator", func(p *sim.Proc) {
		defer tb.Stop()
		ctx := vfsapi.Ctx{P: p, T: c.NewThread()}
		// Write state through the source container (left dirty in its
		// client cache).
		h, _ := c.Mount.Default.Open(ctx, "/state.db", vfsapi.CREATE|vfsapi.WRONLY)
		h.Write(ctx, 0, 2<<20)
		h.Close(ctx)

		moved, err := c.MigrateTo(ctx, dst)
		if err != nil {
			t.Errorf("migrate: %v", err)
			return
		}
		if !c.Stopped() || moved.Pool != dst {
			t.Error("migration bookkeeping wrong")
		}
		// The destination container (fresh client, destination cores)
		// sees the flushed state through the shared backend.
		dctx := vfsapi.Ctx{P: p, T: moved.NewThread()}
		info, err := moved.Mount.Default.Stat(dctx, "/state.db")
		if err != nil || info.Size != 2<<20 {
			t.Errorf("migrated state: %+v %v", info, err)
		}
		// And still sees the shared image.
		if _, err := moved.Mount.Default.Stat(dctx, "/bin/app"); err != nil {
			t.Errorf("migrated image view: %v", err)
		}
		// Double migration is rejected.
		if _, err := c.MigrateTo(ctx, dst); err == nil {
			t.Error("second migration should fail")
		}
	})
	tb.Eng.Run()
	if tb.Eng.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", tb.Eng.LiveProcs())
	}
}

func TestMigrationRejectedForSharedClient(t *testing.T) {
	tb := newTB(t, 4)
	tb.Cluster.ProvisionDir("/containers/s0")
	tb.Cluster.ProvisionDir("/containers/s1")
	pool := tb.NewPool("p", cpu.MaskOf(0, 1), 8<<30)
	dst := tb.NewPool("d", cpu.MaskOf(2, 3), 8<<30)
	c0, _ := pool.NewContainer("s0", MountSpec{Config: ConfigD, UpperDir: "/containers/s0"})
	c1, _ := pool.NewContainer("s1", MountSpec{
		Config: ConfigD, UpperDir: "/containers/s1", SharedClient: c0.Mount.Client,
	})
	runOn(t, tb, c1, func(ctx vfsapi.Ctx) {
		if _, err := c1.MigrateTo(ctx, dst); err == nil {
			t.Error("migration of shared-client container should be rejected")
		}
	})
}

func TestMultipleServicesPerTenantDistinctSettings(t *testing.T) {
	// §5 flexibility: one tenant runs several filesystem services with
	// distinct cache settings.
	tb := newTB(t, 4)
	tb.Cluster.ProvisionDir("/containers/a")
	tb.Cluster.ProvisionDir("/containers/b")
	pool := tb.NewPool("tenant", cpu.MaskOf(0, 1), 8<<30)
	big, err := pool.NewContainer("a", MountSpec{
		Config: ConfigD, UpperDir: "/containers/a", CacheBytes: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	small, err := pool.NewContainer("b", MountSpec{
		Config: ConfigD, UpperDir: "/containers/b", CacheBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if big.Mount.Client == small.Mount.Client {
		t.Fatal("distinct services should have distinct clients")
	}
	runOn(t, tb, small, func(ctx vfsapi.Ctx) {
		// The small-cache service evicts under a working set the big
		// one retains.
		h, _ := small.Mount.Default.Open(ctx, "/ws", vfsapi.CREATE|vfsapi.WRONLY)
		for i := int64(0); i < 32; i++ {
			h.Write(ctx, i<<20, 1<<20)
		}
		h.Fsync(ctx)
		h.Close(ctx)
		if cur := small.Mount.Client.Meter().Current(); cur > 8<<20 {
			t.Errorf("small cache exceeded its limit: %d", cur)
		}
	})
}

func TestLibraryDirectoryStreamsAndPipes(t *testing.T) {
	tb := newTB(t, 4)
	tb.Cluster.ProvisionDir("/containers/c0")
	pool := tb.NewPool("pool0", cpu.MaskOf(0, 1), 8<<30)
	c, _ := pool.NewContainer("c0", MountSpec{Config: ConfigD, UpperDir: "/containers/c0"})
	lib := NewLibrary(nil)
	lib.AttachMount("/mnt", c.Mount.Default)
	runOn(t, tb, c, func(ctx vfsapi.Ctx) {
		lib.Mkdir(ctx, "/mnt/d")
		for _, name := range []string{"a", "b", "c"} {
			fd, _ := lib.OpenFD(ctx, "/mnt/d/"+name, vfsapi.CREATE|vfsapi.WRONLY)
			lib.CloseFD(ctx, fd)
		}
		// Directory stream through the overloaded file table.
		dfd, err := lib.OpendirFD(ctx, "/mnt/d")
		if err != nil {
			t.Errorf("opendir: %v", err)
			return
		}
		first, _ := lib.ReaddirFD(dfd, 2)
		rest, _ := lib.ReaddirFD(dfd, 0)
		if len(first) != 2 || len(rest) != 1 {
			t.Errorf("readdir batches: %d then %d", len(first), len(rest))
		}
		if more, _ := lib.ReaddirFD(dfd, 0); len(more) != 0 {
			t.Errorf("stream should be exhausted, got %d", len(more))
		}
		lib.RewinddirFD(dfd)
		if again, _ := lib.ReaddirFD(dfd, 0); len(again) != 3 {
			t.Errorf("rewind failed: %d entries", len(again))
		}
		// Regular I/O on a directory stream fd is rejected.
		if _, err := lib.ReadFD(ctx, dfd, 10); !errors.Is(err, vfsapi.ErrBadFlags) {
			t.Errorf("read on dirstream: %v", err)
		}
		lib.CloseFD(ctx, dfd)

		// Pipes live in the same table.
		r, w := lib.PipeFD()
		if n, _ := lib.WritePipeFD(w, 100); n != 100 {
			t.Errorf("pipe write %d", n)
		}
		if n, _ := lib.ReadPipeFD(r, 60); n != 60 {
			t.Errorf("pipe read %d", n)
		}
		if n, _ := lib.ReadPipeFD(r, 100); n != 40 {
			t.Errorf("pipe drain %d", n)
		}
		if _, err := lib.ReadPipeFD(w, 1); !errors.Is(err, vfsapi.ErrBadFlags) {
			t.Errorf("read on write end: %v", err)
		}
		lib.CloseFD(ctx, r)
		if _, err := lib.WritePipeFD(w, 1); !errors.Is(err, vfsapi.ErrClosed) {
			t.Errorf("write after peer close: %v", err)
		}
		lib.CloseFD(ctx, w)
	})
}

func TestFaultContainmentOfFailedService(t *testing.T) {
	// §5 Isolation: a failed filesystem service affects the processes
	// of a single pool, not the host kernel or other pools. Data that
	// was flushed to the backend before the crash survives a remount;
	// unflushed writes are lost (§3.4).
	tb := newTB(t, 4)
	tb.Cluster.ProvisionDir("/containers/victim")
	tb.Cluster.ProvisionDir("/containers/bystander")
	victimPool := tb.NewPool("victim", cpu.MaskOf(0, 1), 8<<30)
	otherPool := tb.NewPool("bystander", cpu.MaskOf(2, 3), 8<<30)
	victim, _ := victimPool.NewContainer("victim", MountSpec{Config: ConfigD, UpperDir: "/containers/victim"})
	bystander, _ := otherPool.NewContainer("bystander", MountSpec{Config: ConfigD, UpperDir: "/containers/bystander"})

	tb.Eng.Go("driver", func(p *sim.Proc) {
		defer tb.Stop()
		vctx := vfsapi.Ctx{P: p, T: victim.NewThread()}
		bctx := vfsapi.Ctx{P: p, T: bystander.NewThread()}

		// Durable write (fsynced) and a volatile write (cached only).
		h, _ := victim.Mount.Default.Open(vctx, "/durable", vfsapi.CREATE|vfsapi.WRONLY)
		h.Write(vctx, 0, 1<<20)
		h.Fsync(vctx)
		h.Close(vctx)
		h2, _ := victim.Mount.Default.Open(vctx, "/volatile", vfsapi.CREATE|vfsapi.WRONLY)
		h2.Write(vctx, 0, 1<<20)
		// no fsync, no close: dirty only in the victim's client cache

		victim.Mount.Client.Crash()

		// The victim's service is dead.
		if _, err := victim.Mount.Default.Stat(vctx, "/durable"); err == nil {
			t.Error("crashed service still answers")
		}
		// The bystander pool is completely unaffected.
		hb, err := bystander.Mount.Default.Open(bctx, "/alive", vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			t.Errorf("bystander impacted by foreign crash: %v", err)
			return
		}
		hb.Write(bctx, 0, 4096)
		hb.Close(bctx)

		// Remount (restart the service) in the same pool: durable data
		// is back, the unflushed write never reached the backend.
		restarted, err := victimPool.NewContainer("victim2", MountSpec{Config: ConfigD, UpperDir: "/containers/victim"})
		if err != nil {
			t.Fatalf("remount after crash: %v", err)
		}
		rctx := vfsapi.Ctx{P: p, T: restarted.NewThread()}
		info, err := restarted.Mount.Default.Stat(rctx, "/durable")
		if err != nil || info.Size != 1<<20 {
			t.Errorf("durable data lost: %+v %v", info, err)
		}
		info, err = restarted.Mount.Default.Stat(rctx, "/volatile")
		if err != nil && !errors.Is(err, vfsapi.ErrNotExist) {
			t.Errorf("unexpected error for volatile file: %v", err)
		}
		if err == nil && info.Size == 1<<20 {
			t.Error("unflushed write survived the crash (should be lost)")
		}
	})
	tb.Eng.Run()
}

func TestConsistencyReadAfterWriteSameClient(t *testing.T) {
	// §3.4: when a write returns it has reached the client cache and is
	// visible to a subsequent read through the same backend client,
	// including from a DIFFERENT container sharing that client.
	tb := newTB(t, 4)
	tb.Cluster.ProvisionDir("/containers/w")
	tb.Cluster.ProvisionDir("/containers/r")
	pool := tb.NewPool("p", cpu.MaskOf(0, 1), 8<<30)
	writer, _ := pool.NewContainer("w", MountSpec{Config: ConfigD, UpperDir: "/shared"})
	tb.Cluster.ProvisionDir("/shared")
	reader, _ := pool.NewContainer("r", MountSpec{
		Config: ConfigD, UpperDir: "/shared", SharedClient: writer.Mount.Client,
	})
	runOn(t, tb, writer, func(ctx vfsapi.Ctx) {
		h, _ := writer.Mount.Default.Open(ctx, "/msg", vfsapi.CREATE|vfsapi.WRONLY)
		h.Write(ctx, 0, 777)
		h.Close(ctx)
		// Visible immediately through the shared client, before any
		// flush to the backend.
		rctx := vfsapi.Ctx{P: ctx.P, T: reader.NewThread()}
		hr, err := reader.Mount.Default.Open(rctx, "/msg", vfsapi.RDONLY)
		if err != nil {
			t.Errorf("reader open: %v", err)
			return
		}
		if got, _ := hr.Read(rctx, 0, 10000); got != 777 {
			t.Errorf("read %d bytes, want 777 (write visibility)", got)
		}
		hr.Close(rctx)
	})
}

func TestCentralAdministrationThroughBackend(t *testing.T) {
	// §5 flexibility: administration tasks (e.g. malware scanning,
	// software inventory) run centrally against the storage backend,
	// without touching the containers at all.
	tb := newTB(t, 4)
	provisionImage(tb, "/images/base")
	for _, name := range []string{"a", "b", "c"} {
		tb.Cluster.ProvisionDir("/containers/" + name)
		tb.Cluster.Provision("/containers/"+name+"/secret.bin", 1234)
	}
	// The admin walks the shared namespace directly on the backend.
	var files int
	var bytes int64
	if err := tb.Cluster.Tree().Walk("/containers", func(p string, n *nstree.Node) {
		if !n.Dir {
			files++
			bytes += n.Size
		}
	}); err != nil {
		t.Fatal(err)
	}
	if files != 3 || bytes != 3*1234 {
		t.Fatalf("central scan found %d files / %d bytes", files, bytes)
	}
}

func TestTable1CompositionInvariants(t *testing.T) {
	// Each Table 1 row assembles exactly the caches and layers the
	// paper's configuration matrix specifies.
	type want struct {
		client bool // user-level client cache (UlcC)
		kmount bool // a kernel page cache in the stack (PagC)
		union  bool
		ipc    bool
	}
	wants := map[Configuration]want{
		ConfigD:    {client: true, ipc: true, union: true},
		ConfigK:    {kmount: true},
		ConfigF:    {client: true},
		ConfigFP:   {client: true, kmount: true},
		ConfigKK:   {kmount: true, union: true},
		ConfigFK:   {kmount: true, union: true},
		ConfigFF:   {client: true, union: true},
		ConfigFPFP: {client: true, kmount: true, union: true},
	}
	for cfg, w := range wants {
		cfg, w := cfg, w
		t.Run(cfg.String(), func(t *testing.T) {
			tb := newTB(t, 4)
			provisionImage(tb, "/images/base")
			tb.Cluster.ProvisionDir("/containers/x")
			pool := tb.NewPool("p", cpu.MaskOf(0, 1), 8<<30)
			spec := MountSpec{Config: cfg, UpperDir: "/containers/x"}
			if w.union {
				spec.LowerDir = "/images/base"
			}
			c, err := pool.NewContainer("x", spec)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.Mount.Client != nil; got != w.client {
				t.Errorf("client present=%v want %v", got, w.client)
			}
			if got := c.Mount.KernelMount != nil; got != w.kmount {
				t.Errorf("kernel mount present=%v want %v", got, w.kmount)
			}
			if got := c.Mount.Union != nil; got != w.union {
				t.Errorf("union present=%v want %v", got, w.union)
			}
			if got := c.Mount.IPC != nil; got != w.ipc {
				t.Errorf("ipc present=%v want %v", got, w.ipc)
			}
			if c.Mount.Default == nil || c.Mount.Legacy == nil {
				t.Error("missing interface")
			}
			tb.Stop()
			tb.Eng.Run()
		})
	}
}

func TestLibraryKernelFallback(t *testing.T) {
	// §3.2: a path missing from the mount table goes to the kernel.
	tb := newTB(t, 4)
	tb.Cluster.ProvisionDir("/containers/c0")
	tb.LocalStore.Provision("/etc/hosts", 512)
	pool := tb.NewPool("pool0", cpu.MaskOf(0, 1), 8<<30)
	c, _ := pool.NewContainer("c0", MountSpec{Config: ConfigD, UpperDir: "/containers/c0"})
	lib := NewLibrary(kern.NewSyscalls(tb.Kernel, tb.LocalFS))
	lib.AttachMount("/mnt/ceph", c.Mount.Default)
	runOn(t, tb, c, func(ctx vfsapi.Ctx) {
		// Inside the mount: served by Danaus.
		fd, err := lib.OpenFD(ctx, "/mnt/ceph/x", vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			t.Errorf("danaus path: %v", err)
			return
		}
		lib.CloseFD(ctx, fd)
		// Outside every mount: served by the kernel (local ext4).
		before := pool.Acct.ModeSwitches()
		fd2, err := lib.OpenFD(ctx, "/etc/hosts", vfsapi.RDONLY)
		if err != nil {
			t.Errorf("fallback path: %v", err)
			return
		}
		if n, _ := lib.ReadFD(ctx, fd2, 512); n != 512 {
			t.Errorf("fallback read %d", n)
		}
		lib.CloseFD(ctx, fd2)
		if pool.Acct.ModeSwitches() == before {
			t.Error("fallback path did not enter the kernel")
		}
	})
}

func TestPoolMemoryGroupTracksAllCaches(t *testing.T) {
	// The FP configuration charges BOTH the client cache and the page
	// cache to the pool's memory group (the Fig 11 accounting).
	tb := newTB(t, 4)
	tb.Cluster.Provision("/containers/c0/data", 8<<20)
	pool := tb.NewPool("pool0", cpu.MaskOf(0, 1), 8<<30)
	c, err := pool.NewContainer("c0", MountSpec{Config: ConfigFP, UpperDir: "/containers/c0"})
	if err != nil {
		t.Fatal(err)
	}
	runOn(t, tb, c, func(ctx vfsapi.Ctx) {
		h, err := c.Mount.Default.Open(ctx, "/data", vfsapi.RDONLY)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		h.Read(ctx, 0, 8<<20)
		h.Close(ctx)
		// Double caching: group total ~2x the file (page cache + user
		// cache both hold it).
		if got := pool.Memory.Current(); got < 2*(8<<20) {
			t.Errorf("FP group memory = %d, want >= 16MB (double caching)", got)
		}
		// The individual meters both contribute.
		if c.Mount.Client.Meter().Current() < 8<<20 {
			t.Errorf("client cache = %d", c.Mount.Client.Meter().Current())
		}
		if c.Mount.KernelMount.Meter().Current() < 8<<20 {
			t.Errorf("page cache = %d", c.Mount.KernelMount.Meter().Current())
		}
	})
}

func TestDynamicPoolRepin(t *testing.T) {
	// §9 future work: reallocate a pool's cores at runtime. After the
	// repin, all of the pool's service activity moves to the new cores.
	tb := newTB(t, 4)
	tb.Cluster.ProvisionDir("/containers/c0")
	pool := tb.NewPool("pool0", cpu.MaskOf(0, 1), 8<<30)
	c, _ := pool.NewContainer("c0", MountSpec{Config: ConfigD, UpperDir: "/containers/c0"})
	tb.Eng.Go("app", func(p *sim.Proc) {
		defer tb.Stop()
		th := c.NewThread()
		ctx := vfsapi.Ctx{P: p, T: th}
		h, _ := c.Mount.Default.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		for i := int64(0); i < 8; i++ {
			h.Write(ctx, i<<20, 1<<20)
		}
		before := tb.CPU.UtilSnapshot()
		if before[2] != 0 || before[3] != 0 {
			t.Error("activity on cores 2,3 before repin")
		}
		// Move the pool to cores {2,3}.
		pool.Repin(cpu.MaskOf(2, 3))
		th.SetAffinity(cpu.MaskOf(2, 3))
		for i := int64(8); i < 16; i++ {
			h.Write(ctx, i<<20, 1<<20)
		}
		h.Close(ctx)
		after := tb.CPU.UtilSnapshot()
		if after[0] != before[0] || after[1] != before[1] {
			t.Errorf("activity continued on old cores after repin: %v -> %v", before[:2], after[:2])
		}
		if after[2] == before[2] && after[3] == before[3] {
			t.Error("no activity on the new cores after repin")
		}
	})
	tb.Eng.Run()
}

func TestLegacyInterfaceIdentityPerConfig(t *testing.T) {
	// Only Danaus has a distinct legacy path (FUSE); for every other
	// configuration the kernel-initiated I/O takes the same route as
	// the default interface.
	for _, cfg := range AllConfigurations() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			tb := newTB(t, 4)
			provisionImage(tb, "/images/base")
			tb.Cluster.ProvisionDir("/containers/x")
			pool := tb.NewPool("p", cpu.MaskOf(0, 1), 8<<30)
			spec := MountSpec{Config: cfg, UpperDir: "/containers/x"}
			if cfg.HasUnion() || cfg == ConfigD {
				spec.LowerDir = "/images/base"
			}
			c, err := pool.NewContainer("x", spec)
			if err != nil {
				t.Fatal(err)
			}
			same := c.Mount.Default == c.Mount.Legacy
			if cfg == ConfigD && same {
				t.Error("Danaus must have a distinct legacy path")
			}
			if cfg != ConfigD && !same {
				t.Error("non-Danaus configurations use one path for both")
			}
			tb.Stop()
			tb.Eng.Run()
		})
	}
}

func TestWorkloadsTable2Complete(t *testing.T) {
	rows := workloads.Table2()
	if len(rows) != 9 {
		t.Fatalf("Table 2 rows = %d", len(rows))
	}
	want := []string{"FLS", "RND", "SSB", "WBS"}
	for i, sym := range want {
		if rows[i][0] != sym {
			t.Fatalf("row %d = %q, want %q", i, rows[i][0], sym)
		}
	}
}

package core

import (
	"time"

	"repro/internal/cephclient"
	"repro/internal/vfsapi"
)

// OverloadPolicy enables client-side overload protection for every
// pool of the testbed: a bounded per-tenant admission queue at the
// mount facade, a circuit breaker in each user-level Ceph client, and
// kernel brownout coupling (queues past high water or an open breaker
// tighten dirty thresholds and defer readahead). Nil — the default —
// keeps the historical unprotected behaviour, so existing experiments
// and goldens are unperturbed.
type OverloadPolicy struct {
	// MaxInFlight is the per-pool concurrent-operation budget
	// (default 4 — two reserved cores' worth of I/O concurrency).
	MaxInFlight int
	// QueueCap bounds the per-pool admission queue; arrivals beyond it
	// are shed with vfsapi.ErrOverload (default 32).
	QueueCap int
	// BreakerFailureThreshold..BreakerRecoveryTarget tune the per-client
	// circuit breaker; zero values take the model.Params defaults.
	BreakerFailureThreshold int
	BreakerOpenBase         time.Duration
	BreakerOpenCap          time.Duration
	BreakerRecoveryTarget   int
	// RetrySeed is the base of each client's deterministic jitter
	// stream (per-client streams are derived from it and the client
	// name, so pools do not share a sequence).
	RetrySeed uint64
}

// admissionFor builds the pool's admission controller, coupling its
// high-water signal to kernel brownout and the trace event stream.
func (tb *Testbed) admissionFor(name string) *vfsapi.Admission {
	pol := tb.Overload
	if pol == nil {
		return nil
	}
	return vfsapi.NewAdmission(tb.Eng, name, vfsapi.AdmissionConfig{
		MaxInFlight: pol.MaxInFlight,
		QueueCap:    pol.QueueCap,
		OnPressure: func(high bool) {
			if high {
				tb.Obs.Mark(name, "admission:highwater")
				tb.Kernel.BrownoutEnter()
			} else {
				tb.Obs.Mark(name, "admission:lowwater")
				tb.Kernel.BrownoutExit()
			}
		},
	})
}

// breakerFor builds one client's breaker configuration: a derived
// jitter seed plus a state-change hook that marks transitions in the
// trace and holds the kernel in brownout while the breaker is open or
// probing (it releases only on a full close).
func (tb *Testbed) breakerFor(tenant, clientName string) (*cephclient.BreakerConfig, uint64) {
	pol := tb.Overload
	if pol == nil {
		return nil, 0
	}
	contributing := false
	k := tb.Kernel
	cfg := &cephclient.BreakerConfig{
		FailureThreshold: pol.BreakerFailureThreshold,
		OpenBase:         pol.BreakerOpenBase,
		OpenCap:          pol.BreakerOpenCap,
		RecoveryTarget:   pol.BreakerRecoveryTarget,
		OnChange: func(from, to cephclient.BreakerState) {
			tb.Obs.Mark(tenant, "breaker:"+to.String())
			switch {
			case to == cephclient.BreakerOpen && !contributing:
				contributing = true
				k.BrownoutEnter()
			case to == cephclient.BreakerClosed && contributing:
				contributing = false
				k.BrownoutExit()
			}
		},
	}
	return cfg, seedFor(pol.RetrySeed, clientName)
}

// seedFor derives a per-client jitter seed from the policy base and
// the client name (FNV-1a), so clients draw independent deterministic
// streams.
func seedFor(base uint64, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	s := base ^ h
	if s == 0 {
		s = 1
	}
	return s
}

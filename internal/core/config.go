package core

// Configuration names the client system compositions of Table 1.
type Configuration int

// The eight configurations compared in the paper's evaluation.
const (
	// ConfigD: Danaus — optional union libservice over the Danaus
	// client libservice with the user-level client cache, reached over
	// shared-memory IPC (legacy path over FUSE).
	ConfigD Configuration = iota
	// ConfigK: kernel CephFS client with the page cache.
	ConfigK
	// ConfigF: ceph-fuse with direct I/O — user-level client cache only.
	ConfigF
	// ConfigFP: ceph-fuse with the page cache stacked on top (double
	// caching).
	ConfigFP
	// ConfigKK: AUFS over kernel CephFS, page cache for both.
	ConfigKK
	// ConfigFK: unionfs-fuse (direct I/O) over kernel CephFS.
	ConfigFK
	// ConfigFF: unionfs-fuse over ceph-fuse, both direct I/O — the
	// least memory, the most context switches.
	ConfigFF
	// ConfigFPFP: unionfs-fuse over ceph-fuse with the page cache used
	// by both layers.
	ConfigFPFP
)

// String returns the paper's symbol for the configuration.
func (c Configuration) String() string {
	switch c {
	case ConfigD:
		return "D"
	case ConfigK:
		return "K"
	case ConfigF:
		return "F"
	case ConfigFP:
		return "FP"
	case ConfigKK:
		return "K/K"
	case ConfigFK:
		return "F/K"
	case ConfigFF:
		return "F/F"
	case ConfigFPFP:
		return "FP/FP"
	default:
		return "?"
	}
}

// UserLevelClient reports whether the backend client runs at user level
// (Danaus or ceph-fuse).
func (c Configuration) UserLevelClient() bool {
	switch c {
	case ConfigD, ConfigF, ConfigFP, ConfigFF, ConfigFPFP:
		return true
	}
	return false
}

// HasUnion reports whether the configuration stacks a union filesystem.
func (c Configuration) HasUnion() bool {
	switch c {
	case ConfigKK, ConfigFK, ConfigFF, ConfigFPFP:
		return true
	}
	return false
}

// AllConfigurations lists Table 1 in presentation order.
func AllConfigurations() []Configuration {
	return []Configuration{ConfigD, ConfigK, ConfigF, ConfigFP, ConfigKK, ConfigFK, ConfigFF, ConfigFPFP}
}

package core

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// Crash domains: the testbed-topology side of client crash-recovery.
// The faults package schedules *when* a client crashes and restarts;
// this file resolves *what* dies — which processes, caches and queues —
// for each of the three crash kinds, and accounts the blast radius:
//
//   - danaus-crash: one tenant's libservice process. Its user-level
//     clients die (dirty cache lost, MDS sessions stale), its queued
//     admission waiters are shed, every other tenant is untouched.
//   - fuse-crash: a tenant's FUSE daemons die together with the clients
//     they host — every container mounted through those daemons fails.
//   - host-crash: the kernel client goes down with the node, so every
//     pool — kernel Ceph mounts, user-level clients, FUSE daemons — is
//     interrupted at once. This is the paper's containment contrast:
//     a libservice failure is one tenant's problem, a kernel-client
//     failure is everyone's.
//
// Restart schedules an asynchronous recovery process that reclaims MDS
// sessions (fencing the dead incarnations), restarts flushers and
// daemons, and stamps the recovery time into the crash log.

// CrashEvent is one crash and its recovery, as observed by the testbed.
type CrashEvent struct {
	Kind   faults.Kind
	Tenant string
	// At is when the crash hit; RecoveredAt when the recovery protocol
	// finished (zero until then).
	At          time.Duration
	RecoveredAt time.Duration
	Recovered   bool
	// Affected lists the pools whose filesystem service was interrupted
	// (the blast radius).
	Affected []string
	// QueueShed counts admission waiters evicted at crash time.
	QueueShed int
}

// RecoveryTime returns how long the domain was down, or zero while
// recovery is still pending.
func (ev CrashEvent) RecoveryTime() time.Duration {
	if !ev.Recovered {
		return 0
	}
	return ev.RecoveredAt - ev.At
}

// CrashLog returns a snapshot of every crash the testbed has taken, in
// occurrence order.
func (tb *Testbed) CrashLog() []CrashEvent {
	out := make([]CrashEvent, len(tb.crashLog))
	for i, ev := range tb.crashLog {
		out[i] = *ev
	}
	return out
}

func (tb *Testbed) poolByName(name string) *Pool {
	for _, p := range tb.pools {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// CrashTarget implements faults.CrashTargets over the testbed topology:
// danaus-crash and fuse-crash resolve the named tenant's pool,
// host-crash spans every pool (resolved lazily at crash time so pools
// created after the fault plan is installed are still included).
func (tb *Testbed) CrashTarget(kind faults.Kind, tenant string) (faults.CrashTarget, error) {
	switch kind {
	case faults.DanausCrash, faults.FUSECrash:
		p := tb.poolByName(tenant)
		if p == nil {
			return nil, fmt.Errorf("core: crash target pool %q not found", tenant)
		}
		return &crashDomain{tb: tb, kind: kind, tenant: tenant, pools: []*Pool{p}}, nil
	case faults.HostCrash:
		return &crashDomain{tb: tb, kind: kind, tenant: "host", host: true}, nil
	default:
		return nil, fmt.Errorf("core: %v is not a client-crash kind", kind)
	}
}

// crashDomain is one scheduled crash window's resolved blast radius.
type crashDomain struct {
	tb     *Testbed
	kind   faults.Kind
	tenant string
	pools  []*Pool
	host   bool
	event  *CrashEvent
}

func (d *crashDomain) targets() []*Pool {
	if d.host {
		return d.tb.pools
	}
	return d.pools
}

// Crash kills the domain's processes. It runs from the fault schedule
// (no process context): state is discarded and waiters are woken, but
// no simulated work is performed — dying is free, only recovery costs.
func (d *crashDomain) Crash() {
	ev := &CrashEvent{Kind: d.kind, Tenant: d.tenant, At: d.tb.Eng.Now()}
	for _, p := range d.targets() {
		ev.Affected = append(ev.Affected, p.Name)
		// The user-level clients die under every crash kind that can
		// reach them: the libservice process for danaus-crash, the
		// daemon hosting libcephfs for fuse-crash, the node itself for
		// host-crash. Un-synced dirty state is discarded; data the
		// backend acknowledged (fsync) survives in the cluster.
		for _, c := range p.clients {
			c.Crash()
		}
		if d.kind != faults.DanausCrash {
			for _, t := range p.fuseDaemons {
				t.Crash()
			}
		}
		if d.host {
			for _, m := range p.kernMounts {
				m.Crash()
			}
		}
		// Parked admission waiters are shed with the same deterministic
		// error in-flight operations see — a crashed service cannot hold
		// queue slots hostage.
		if p.Admission != nil {
			ev.QueueShed += p.Admission.ShedQueued(vfsapi.ErrCrashed)
		}
		d.tb.Obs.Mark(p.Name, "crash:"+d.kind.String())
	}
	d.event = ev
	d.tb.crashLog = append(d.tb.crashLog, ev)
}

// Restart spawns the recovery process: session reclaim (with fencing)
// for every dead client, cold remounts, daemon restarts. The recovery
// runs in simulated time on a thread of the crashed domain, so recovery
// cost lands on the right tenant and the crash log's RecoveryTime
// reflects the protocol, not just the scheduled restart instant.
func (d *crashDomain) Restart() {
	if d.tb.stopped {
		return
	}
	ev := d.event
	pools := d.targets()
	acct, mask := d.tb.Kernel.Account(), d.tb.CPU.AllMask()
	if !d.host && len(pools) == 1 {
		acct, mask = pools[0].Acct, pools[0].Mask
	}
	d.tb.Eng.Go("crash-recovery", func(p *sim.Proc) {
		th := d.tb.CPU.NewThread(acct, mask)
		ctx := vfsapi.Ctx{P: p, T: th}
		for _, pool := range pools {
			for _, t := range pool.fuseDaemons {
				t.Restart()
			}
			for _, c := range pool.clients {
				_ = c.Restart(ctx)
			}
			for _, m := range pool.kernMounts {
				_ = m.Restart(ctx)
			}
			d.tb.Obs.Mark(pool.Name, "recover:"+d.kind.String())
		}
		if ev != nil {
			ev.RecoveredAt = d.tb.Eng.Now()
			ev.Recovered = true
		}
	})
}

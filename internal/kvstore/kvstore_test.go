package kvstore

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cpu"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

type rig struct {
	eng  *sim.Engine
	cpus *cpu.CPU
	mem  *memfs.FS
	db   *DB
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	cpus := cpu.New(eng, model.Default(), 4)
	mem := memfs.New()
	acct := cpu.NewAccount("kv")
	cfg.FS = mem
	cfg.Dir = "/db"
	cfg.Eng = eng
	cfg.NewThread = func() *cpu.Thread { return cpus.NewThread(acct, 0) }
	r := &rig{eng: eng, cpus: cpus, mem: mem}
	eng.Go("open", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: cfg.NewThread()}
		db, err := Open(ctx, cfg)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		r.db = db
	})
	// Drain only time-zero events: the compaction threads keep waking
	// on their periodic schedule, so a full Run would never return.
	eng.RunUntil(0)
	if r.db == nil {
		t.Fatal("db not opened")
	}
	return r
}

func (r *rig) run(t *testing.T, fn func(ctx vfsapi.Ctx)) {
	t.Helper()
	r.eng.Go("test", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: r.cpus.NewThread(cpu.NewAccount("t"), 0)}
		fn(ctx)
		r.db.Close(ctx)
	})
	r.eng.Run()
	if r.eng.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", r.eng.LiveProcs())
	}
}

func TestPutGetFromMemtable(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(ctx vfsapi.Ctx) {
		if err := r.db.Put(ctx, 42, 128<<10); err != nil {
			t.Fatal(err)
		}
		size, err := r.db.Get(ctx, 42)
		if err != nil || size != 128<<10 {
			t.Fatalf("get: %d %v", size, err)
		}
		if _, err := r.db.Get(ctx, 43); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing key: %v", err)
		}
	})
}

func TestMemtableFlushCreatesSSTable(t *testing.T) {
	r := newRig(t, Config{MemtableBytes: 1 << 20})
	r.run(t, func(ctx vfsapi.Ctx) {
		for i := uint64(0); i < 20; i++ {
			r.db.Put(ctx, i, 128<<10)
		}
		if r.db.Flushes == 0 {
			t.Fatal("no flush happened")
		}
		// All keys must remain readable from the tables.
		for i := uint64(0); i < 20; i++ {
			if size, err := r.db.Get(ctx, i); err != nil || size != 128<<10 {
				t.Fatalf("get %d after flush: %d %v", i, size, err)
			}
		}
	})
}

func TestCompactionMergesL0IntoL1(t *testing.T) {
	r := newRig(t, Config{MemtableBytes: 1 << 20, L0CompactTrigger: 2})
	r.run(t, func(ctx vfsapi.Ctx) {
		for i := uint64(0); i < 200; i++ {
			r.db.Put(ctx, i, 64<<10)
		}
		// Let the compaction threads run.
		ctx.P.Sleep(5 * 1e9)
		if r.db.Compactions == 0 {
			t.Fatal("no compaction ran")
		}
		l0, l1 := r.db.Levels()
		if l1 == 0 {
			t.Fatalf("no L1 tables after compaction (l0=%d)", l0)
		}
		// Every key still readable.
		for i := uint64(0); i < 200; i += 17 {
			if _, err := r.db.Get(ctx, i); err != nil {
				t.Fatalf("get %d after compaction: %v", i, err)
			}
		}
	})
}

func TestOverwriteKeepsNewestValue(t *testing.T) {
	r := newRig(t, Config{MemtableBytes: 1 << 20, L0CompactTrigger: 2})
	r.run(t, func(ctx vfsapi.Ctx) {
		r.db.Put(ctx, 7, 1000)
		// Force flushes between versions.
		for i := uint64(100); i < 120; i++ {
			r.db.Put(ctx, i, 128<<10)
		}
		r.db.Put(ctx, 7, 2000)
		for i := uint64(200); i < 220; i++ {
			r.db.Put(ctx, i, 128<<10)
		}
		ctx.P.Sleep(5 * 1e9)
		size, err := r.db.Get(ctx, 7)
		if err != nil || size != 2000 {
			t.Fatalf("overwritten key: %d %v (want 2000)", size, err)
		}
	})
}

func TestWALRotatesOnFlush(t *testing.T) {
	r := newRig(t, Config{MemtableBytes: 1 << 20})
	r.run(t, func(ctx vfsapi.Ctx) {
		for i := uint64(0); i < 20; i++ {
			r.db.Put(ctx, i, 128<<10)
		}
		ents, err := r.mem.Readdir(ctx, "/db")
		if err != nil {
			t.Fatal(err)
		}
		wals := 0
		for _, e := range ents {
			if len(e.Name) >= 4 && e.Name[:4] == "wal-" {
				wals++
			}
		}
		// Old WALs deleted after their memtable flushed: exactly one
		// live WAL.
		if wals != 1 {
			t.Fatalf("live WALs = %d, want 1", wals)
		}
	})
}

func TestStallTimeAccumulatesOnFlush(t *testing.T) {
	r := newRig(t, Config{MemtableBytes: 1 << 20})
	r.mem.OpDelay = time.Millisecond // make SSTable writes take time
	r.run(t, func(ctx vfsapi.Ctx) {
		for i := uint64(0); i < 50; i++ {
			r.db.Put(ctx, i, 128<<10)
		}
		if r.db.StallTime == 0 {
			t.Fatal("flushes caused no write stalls")
		}
	})
}

func TestGetReadsIndexAndValue(t *testing.T) {
	r := newRig(t, Config{MemtableBytes: 1 << 20})
	r.run(t, func(ctx vfsapi.Ctx) {
		for i := uint64(0); i < 20; i++ {
			r.db.Put(ctx, i, 128<<10)
		}
		before := r.mem.Reads
		if _, err := r.db.Get(ctx, 3); err != nil {
			t.Fatal(err)
		}
		// Key 3 is in an SSTable: index + value reads.
		if r.mem.Reads != before+2 {
			t.Fatalf("reads for one get = %d, want 2", r.mem.Reads-before)
		}
	})
}

// TestRandomOpsMatchMapOracle drives random put/get sequences against
// the LSM store and a plain map, across flushes and compactions.
func TestRandomOpsMatchMapOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t, Config{MemtableBytes: 1 << 20, L0CompactTrigger: 3})
		oracle := map[uint64]int64{}
		keys := []uint64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}
		ok := true
		r.run(t, func(ctx vfsapi.Ctx) {
			for step := 0; step < 150 && ok; step++ {
				k := keys[rng.Intn(len(keys))]
				if rng.Intn(3) != 0 {
					size := rng.Int63n(256<<10) + 1
					if err := r.db.Put(ctx, k, size); err != nil {
						t.Logf("seed %d: put: %v", seed, err)
						ok = false
						return
					}
					oracle[k] = size
				} else {
					got, err := r.db.Get(ctx, k)
					want, exists := oracle[k]
					switch {
					case exists && err != nil:
						t.Logf("seed %d step %d: get %d: %v", seed, step, k, err)
						ok = false
					case exists && got != want:
						t.Logf("seed %d step %d: get %d = %d want %d", seed, step, k, got, want)
						ok = false
					case !exists && !errors.Is(err, ErrNotFound):
						t.Logf("seed %d step %d: phantom key %d: %d %v", seed, step, k, got, err)
						ok = false
					}
				}
				// Give compactions a chance to interleave.
				if step%25 == 24 {
					ctx.P.Sleep(time.Second)
				}
			}
			// Final check over every key.
			for k, want := range oracle {
				if got, err := r.db.Get(ctx, k); err != nil || got != want {
					t.Logf("seed %d final: key %d = %d,%v want %d", seed, k, got, err, want)
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteTombstones(t *testing.T) {
	r := newRig(t, Config{MemtableBytes: 1 << 20, L0CompactTrigger: 2})
	r.run(t, func(ctx vfsapi.Ctx) {
		r.db.Put(ctx, 7, 1000)
		if err := r.db.Delete(ctx, 7); err != nil {
			t.Fatal(err)
		}
		if _, err := r.db.Get(ctx, 7); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key in memtable: %v", err)
		}
		// Force the tombstone through flush: fill and flush.
		for i := uint64(100); i < 120; i++ {
			r.db.Put(ctx, i, 128<<10)
		}
		if _, err := r.db.Get(ctx, 7); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key resurrected by flush: %v", err)
		}
		// And through compaction.
		ctx.P.Sleep(5 * time.Second)
		if r.db.Compactions == 0 {
			t.Fatal("no compaction ran")
		}
		if _, err := r.db.Get(ctx, 7); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key resurrected by compaction: %v", err)
		}
		// Re-inserting after delete works.
		r.db.Put(ctx, 7, 2000)
		if size, err := r.db.Get(ctx, 7); err != nil || size != 2000 {
			t.Fatalf("reinsert after delete: %d %v", size, err)
		}
	})
}

func TestScanMergesLevelsAndSkipsTombstones(t *testing.T) {
	r := newRig(t, Config{MemtableBytes: 1 << 20, L0CompactTrigger: 2})
	r.run(t, func(ctx vfsapi.Ctx) {
		// Keys 0..29 with size 64KB; delete every third.
		for i := uint64(0); i < 30; i++ {
			r.db.Put(ctx, i, 64<<10)
		}
		for i := uint64(0); i < 30; i += 3 {
			r.db.Delete(ctx, i)
		}
		ctx.P.Sleep(3 * time.Second) // let flush/compaction churn
		count, bytes, err := r.db.Scan(ctx, 0, 29)
		if err != nil {
			t.Fatal(err)
		}
		if count != 20 {
			t.Fatalf("scan found %d live keys, want 20", count)
		}
		if bytes != 20*(64<<10) {
			t.Fatalf("scan bytes = %d", bytes)
		}
		// Sub-range scan.
		count, _, _ = r.db.Scan(ctx, 10, 19)
		// keys 10..19 minus deleted {12,15,18} = 7
		if count != 7 {
			t.Fatalf("subrange scan = %d, want 7", count)
		}
	})
}

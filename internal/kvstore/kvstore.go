// Package kvstore implements a log-structured merge-tree key-value
// store over a vfsapi.FileSystem: write-ahead log, in-memory memtable,
// sorted-run SSTables with L0->L1 compaction, and point gets through a
// per-table index. It stands in for RocksDB in the paper's application
// experiments (§6.3.1): 128 KB values over a container root filesystem
// mounted from network storage.
package kvstore

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cpu"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// Config configures a DB instance.
type Config struct {
	// FS is the filesystem holding the database directory.
	FS vfsapi.FileSystem
	// Dir is the database directory.
	Dir string
	// MemtableBytes is the write buffer size (paper: 64 MB).
	MemtableBytes int64
	// L0CompactTrigger is the number of L0 runs that triggers
	// compaction (RocksDB default 4).
	L0CompactTrigger int
	// CompactionThreads is the background compaction pool (paper: 2).
	CompactionThreads int
	// TargetTableBytes splits merged L1 runs (default 256 MB).
	TargetTableBytes int64
	// Eng, Params, NewThread wire the store into the simulation.
	Eng       *sim.Engine
	Params    *model.Params
	NewThread func() *cpu.Thread
}

// DB is an open key-value store.
type DB struct {
	cfg Config

	mem      map[uint64]int64
	memBytes int64
	wal      vfsapi.Handle
	walSeq   int

	l0         []*sstable // newest first
	l1         []*sstable // sorted by MinKey, disjoint
	nextID     int
	mu         *sim.Mutex
	compactQ   *sim.WaitQueue
	closeQ     *sim.WaitQueue
	stopped    bool
	liveComp   int
	compacting bool

	// Statistics.
	Puts        uint64
	Deletes     uint64
	Gets        uint64
	GetMisses   uint64
	Flushes     uint64
	Compactions uint64
	StallTime   time.Duration
}

type sstable struct {
	id    int
	path  string
	min   uint64
	max   uint64
	bytes int64
	keys  []uint64 // sorted
	sizes []int64
	offs  []int64
}

const entryOverhead = 32 // key + length + CRC per record

// Open creates a DB in cfg.Dir and starts the compaction threads.
func Open(ctx vfsapi.Ctx, cfg Config) (*DB, error) {
	if cfg.MemtableBytes <= 0 {
		cfg.MemtableBytes = 64 << 20
	}
	if cfg.L0CompactTrigger <= 0 {
		cfg.L0CompactTrigger = 4
	}
	if cfg.CompactionThreads <= 0 {
		cfg.CompactionThreads = 2
	}
	if cfg.TargetTableBytes <= 0 {
		cfg.TargetTableBytes = 256 << 20
	}
	if cfg.Params == nil {
		cfg.Params = model.Default()
	}
	if err := cfg.FS.Mkdir(ctx, cfg.Dir); err != nil && !errors.Is(err, vfsapi.ErrExist) {
		return nil, err
	}
	wal, err := cfg.FS.Open(ctx, cfg.Dir+"/wal-000000", vfsapi.CREATE|vfsapi.APPEND)
	if err != nil {
		return nil, err
	}
	db := &DB{
		cfg:      cfg,
		mem:      map[uint64]int64{},
		wal:      wal,
		mu:       sim.NewMutex(cfg.Eng, cfg.Dir+".dbmu"),
		compactQ: sim.NewWaitQueue(cfg.Eng, cfg.Dir+".compact"),
		closeQ:   sim.NewWaitQueue(cfg.Eng, cfg.Dir+".close"),
	}
	for i := 0; i < cfg.CompactionThreads; i++ {
		db.liveComp++
		cfg.Eng.Go("compaction", func(p *sim.Proc) { db.compactionLoop(p) })
	}
	return db, nil
}

// Close stops the background threads, waits for any in-flight
// compaction to finish, and syncs the WAL.
func (db *DB) Close(ctx vfsapi.Ctx) error {
	db.stopped = true
	db.compactQ.Broadcast()
	for db.liveComp > 0 {
		db.closeQ.Wait(ctx.P)
	}
	err := db.wal.Fsync(ctx)
	db.wal.Close(ctx)
	return err
}

// Put inserts key with a value of valueSize bytes: WAL append, memtable
// insert, and a flush (write stall) when the write buffer fills.
func (db *DB) Put(ctx vfsapi.Ctx, key uint64, valueSize int64) error {
	db.Puts++
	if _, err := db.wal.Append(ctx, valueSize+entryOverhead); err != nil {
		return err
	}
	// Memtable insert: skiplist work.
	ctx.T.Exec(ctx.P, cpu.User, 800*time.Nanosecond)
	db.mu.Lock(ctx.P)
	if old, ok := db.mem[key]; ok {
		if old == tombstone {
			db.memBytes -= entryOverhead
		} else {
			db.memBytes -= old + entryOverhead
		}
	}
	db.mem[key] = valueSize
	db.memBytes += valueSize + entryOverhead
	full := db.memBytes >= db.cfg.MemtableBytes
	db.mu.Unlock(ctx.P)
	if full {
		start := db.cfg.Eng.Now()
		if err := db.flush(ctx); err != nil {
			return err
		}
		db.StallTime += db.cfg.Eng.Now() - start
	}
	return nil
}

// Get looks up key: memtable first, then L0 newest-to-oldest, then L1.
// It returns the value size, or ErrNotFound.
func (db *DB) Get(ctx vfsapi.Ctx, key uint64) (int64, error) {
	db.Gets++
	ctx.T.Exec(ctx.P, cpu.User, 600*time.Nanosecond)
	db.mu.Lock(ctx.P)
	if size, ok := db.mem[key]; ok {
		db.mu.Unlock(ctx.P)
		if size == tombstone {
			db.GetMisses++
			return 0, ErrNotFound
		}
		return size, nil
	}
	tables := make([]*sstable, 0, len(db.l0)+1)
	tables = append(tables, db.l0...)
	if t := db.findL1(key); t != nil {
		tables = append(tables, t)
	}
	db.mu.Unlock(ctx.P)

	for _, t := range tables {
		if key < t.min || key > t.max {
			continue
		}
		i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= key })
		if i >= len(t.keys) || t.keys[i] != key {
			// Bloom-filter/index probe on a table without the key.
			ctx.T.Exec(ctx.P, cpu.User, 300*time.Nanosecond)
			continue
		}
		if t.sizes[i] == tombstone {
			db.GetMisses++
			return 0, ErrNotFound
		}
		h, err := db.cfg.FS.Open(ctx, t.path, vfsapi.RDONLY)
		if err != nil {
			return 0, err
		}
		// Index block then the value's data block(s).
		h.Read(ctx, 0, 4096)
		h.Read(ctx, t.offs[i], t.sizes[i])
		h.Close(ctx)
		return t.sizes[i], nil
	}
	db.GetMisses++
	return 0, ErrNotFound
}

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("kvstore: key not found")

// tombstone marks a deleted key in memtables and SSTables until
// compaction into the bottom level drops it.
const tombstone int64 = -1

// Delete removes key: a write-ahead record plus a memtable tombstone,
// resolved like any other write through flush and compaction.
func (db *DB) Delete(ctx vfsapi.Ctx, key uint64) error {
	db.Deletes++
	if _, err := db.wal.Append(ctx, entryOverhead); err != nil {
		return err
	}
	ctx.T.Exec(ctx.P, cpu.User, 800*time.Nanosecond)
	db.mu.Lock(ctx.P)
	if old, ok := db.mem[key]; ok && old != tombstone {
		db.memBytes -= old
	}
	db.mem[key] = tombstone
	db.memBytes += entryOverhead
	full := db.memBytes >= db.cfg.MemtableBytes
	db.mu.Unlock(ctx.P)
	if full {
		return db.flush(ctx)
	}
	return nil
}

// Scan iterates keys in [lo, hi], merging the memtable and every run
// with newest-wins semantics and skipping tombstones. It returns the
// number of live keys and their total value bytes, charging the reads
// of the covered data.
func (db *DB) Scan(ctx vfsapi.Ctx, lo, hi uint64) (int, int64, error) {
	ctx.T.Exec(ctx.P, cpu.User, 2*time.Microsecond)
	db.mu.Lock(ctx.P)
	merged := map[uint64]int64{}
	// Oldest to newest: L1, then L0 oldest-first, then the memtable.
	tables := make([]*sstable, 0, len(db.l1)+len(db.l0))
	tables = append(tables, db.l1...)
	for i := len(db.l0) - 1; i >= 0; i-- {
		tables = append(tables, db.l0[i])
	}
	db.mu.Unlock(ctx.P)

	for _, t := range tables {
		if t.max < lo || t.min > hi {
			continue
		}
		h, err := db.cfg.FS.Open(ctx, t.path, vfsapi.RDONLY)
		if err != nil {
			return 0, 0, err
		}
		h.Read(ctx, 0, 4096) // index block
		i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= lo })
		for ; i < len(t.keys) && t.keys[i] <= hi; i++ {
			size := t.sizes[i]
			if size != tombstone {
				h.Read(ctx, t.offs[i], size)
			}
			merged[t.keys[i]] = size
		}
		h.Close(ctx)
	}
	db.mu.Lock(ctx.P)
	for k, size := range db.mem {
		if k >= lo && k <= hi {
			merged[k] = size
		}
	}
	db.mu.Unlock(ctx.P)

	var count int
	var bytes int64
	for _, size := range merged {
		if size != tombstone {
			count++
			bytes += size
		}
	}
	return count, bytes, nil
}

func (db *DB) findL1(key uint64) *sstable {
	i := sort.Search(len(db.l1), func(i int) bool { return db.l1[i].max >= key })
	if i < len(db.l1) && key >= db.l1[i].min {
		return db.l1[i]
	}
	return nil
}

// flush freezes the memtable and writes it as a new L0 run.
func (db *DB) flush(ctx vfsapi.Ctx) error {
	db.mu.Lock(ctx.P)
	if db.memBytes < db.cfg.MemtableBytes {
		db.mu.Unlock(ctx.P) // another thread already flushed
		return nil
	}
	frozen := db.mem
	db.mem = map[uint64]int64{}
	db.memBytes = 0
	db.mu.Unlock(ctx.P)

	t, err := db.writeTable(ctx, frozen)
	if err != nil {
		return err
	}
	db.mu.Lock(ctx.P)
	db.l0 = append([]*sstable{t}, db.l0...)
	db.Flushes++
	trigger := len(db.l0) >= db.cfg.L0CompactTrigger
	db.mu.Unlock(ctx.P)

	// Start a fresh WAL for the new memtable.
	db.walSeq++
	old := db.wal
	wal, err := db.cfg.FS.Open(ctx, fmt.Sprintf("%s/wal-%06d", db.cfg.Dir, db.walSeq), vfsapi.CREATE|vfsapi.APPEND)
	if err != nil {
		return err
	}
	db.wal = wal
	old.Close(ctx)
	db.cfg.FS.Unlink(ctx, fmt.Sprintf("%s/wal-%06d", db.cfg.Dir, db.walSeq-1))
	if trigger {
		db.compactQ.Broadcast()
	}
	return nil
}

// writeTable materializes a sorted run from a key map.
func (db *DB) writeTable(ctx vfsapi.Ctx, entries map[uint64]int64) (*sstable, error) {
	keys := make([]uint64, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return db.writeSorted(ctx, keys, func(k uint64) int64 { return entries[k] })
}

func (db *DB) writeSorted(ctx vfsapi.Ctx, keys []uint64, sizeOf func(uint64) int64) (*sstable, error) {
	db.nextID++
	t := &sstable{
		id:   db.nextID,
		path: fmt.Sprintf("%s/sst-%06d", db.cfg.Dir, db.nextID),
	}
	h, err := db.cfg.FS.Open(ctx, t.path, vfsapi.CREATE|vfsapi.WRONLY)
	if err != nil {
		return nil, err
	}
	var off int64 = 4096 // index block
	for _, k := range keys {
		size := sizeOf(k)
		t.keys = append(t.keys, k)
		t.sizes = append(t.sizes, size)
		t.offs = append(t.offs, off)
		if size == tombstone {
			off += entryOverhead // tombstones carry no value bytes
		} else {
			off += size + entryOverhead
		}
	}
	if len(keys) > 0 {
		t.min, t.max = keys[0], keys[len(keys)-1]
	}
	t.bytes = off
	// Stream the run out in 1 MB chunks.
	for o := int64(0); o < off; o += 1 << 20 {
		n := int64(1 << 20)
		if o+n > off {
			n = off - o
		}
		if _, err := h.Write(ctx, o, n); err != nil {
			h.Close(ctx)
			return nil, err
		}
	}
	if err := h.Fsync(ctx); err != nil {
		h.Close(ctx)
		return nil, err
	}
	return t, h.Close(ctx)
}

// compactionLoop merges L0 runs into L1 in the background. Compactions
// are serialized across the pool threads: overlapping concurrent merges
// would install L1 runs with intersecting key ranges and serve stale
// versions.
func (db *DB) compactionLoop(p *sim.Proc) {
	defer func() {
		db.liveComp--
		db.closeQ.Broadcast()
	}()
	th := db.cfg.NewThread()
	ctx := vfsapi.Ctx{P: p, T: th}
	for !db.stopped {
		db.compactQ.WaitTimeout(p, 500*time.Millisecond)
		if db.stopped {
			return
		}
		if db.compacting {
			continue
		}
		db.compacting = true
		for len(db.l0) >= db.cfg.L0CompactTrigger && !db.stopped {
			db.compactOnce(ctx)
		}
		db.compacting = false
	}
}

// compactOnce merges the current L0 runs with the overlapping L1 runs.
// The inputs stay visible to readers until the merged outputs are
// installed, so concurrent gets never observe a gap; L0 runs flushed
// while the merge is in flight stay in L0 and remain newer than the
// merged output.
func (db *DB) compactOnce(ctx vfsapi.Ctx) {
	db.mu.Lock(ctx.P)
	if len(db.l0) < db.cfg.L0CompactTrigger {
		db.mu.Unlock(ctx.P)
		return
	}
	l0In := append([]*sstable{}, db.l0...)
	var lo, hi uint64 = ^uint64(0), 0
	for _, t := range l0In {
		if t.min < lo {
			lo = t.min
		}
		if t.max > hi {
			hi = t.max
		}
	}
	var overlap []*sstable
	for _, t := range db.l1 {
		if t.max >= lo && t.min <= hi {
			overlap = append(overlap, t)
		}
	}
	db.mu.Unlock(ctx.P)

	// Read every input run; oldest first so newer runs overwrite.
	inputs := append(append([]*sstable{}, l0In...), overlap...)
	var totalBytes int64
	merged := map[uint64]int64{}
	for i := len(inputs) - 1; i >= 0; i-- {
		t := inputs[i]
		h, err := db.cfg.FS.Open(ctx, t.path, vfsapi.RDONLY)
		if err == nil {
			for o := int64(0); o < t.bytes; o += 1 << 20 {
				h.Read(ctx, o, 1<<20)
			}
			h.Close(ctx)
		}
		for j, k := range t.keys {
			merged[k] = t.sizes[j]
		}
		totalBytes += t.bytes
	}
	// Merge CPU at copy rate.
	ctx.T.ExecBytes(ctx.P, cpu.User, totalBytes, db.cfg.Params.MemcpyBytesPerSec)

	// Write merged runs split at the target table size. This merge
	// covers every older occurrence of its key range (all L0 plus the
	// overlapping bottom level), so tombstones can be dropped here.
	keys := make([]uint64, 0, len(merged))
	for k := range merged {
		if merged[k] == tombstone {
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var outs []*sstable
	for start := 0; start < len(keys); {
		var bytes int64
		end := start
		for end < len(keys) && bytes < db.cfg.TargetTableBytes {
			bytes += merged[keys[end]] + entryOverhead
			end++
		}
		t, err := db.writeSorted(ctx, keys[start:end], func(k uint64) int64 { return merged[k] })
		if err == nil {
			outs = append(outs, t)
		}
		start = end
	}

	// Install: drop exactly the inputs, keep anything flushed meanwhile.
	db.mu.Lock(ctx.P)
	inSet := map[*sstable]bool{}
	for _, t := range inputs {
		inSet[t] = true
	}
	keepL0 := db.l0[:0]
	for _, t := range db.l0 {
		if !inSet[t] {
			keepL0 = append(keepL0, t)
		}
	}
	db.l0 = keepL0
	keepL1 := db.l1[:0]
	for _, t := range db.l1 {
		if !inSet[t] {
			keepL1 = append(keepL1, t)
		}
	}
	db.l1 = append(keepL1, outs...)
	sort.Slice(db.l1, func(i, j int) bool { return db.l1[i].min < db.l1[j].min })
	db.Compactions++
	db.mu.Unlock(ctx.P)

	// Remove the input files.
	for _, t := range inputs {
		db.cfg.FS.Unlink(ctx, t.path)
	}
}

// Levels reports (L0 count, L1 count) for diagnostics.
func (db *DB) Levels() (int, int) { return len(db.l0), len(db.l1) }

// MemtableBytes reports the current write-buffer fill.
func (db *DB) MemtableBytes() int64 { return db.memBytes }

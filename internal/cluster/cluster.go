// Package cluster models the storage backend of the testbed: a Ceph-like
// cluster of object storage devices (OSDs) holding 4 MB file objects on
// ramdisks, and a metadata server (MDS) owning the filesystem namespace.
// Clients reach the cluster through the simulated network fabric; OSD
// media and MDS processing serialize per server, so the backend exhibits
// realistic saturation under scaleout load.
package cluster

import (
	"time"

	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/nstree"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// Cluster is the storage backend: one MDS plus a set of OSDs.
type Cluster struct {
	eng    *sim.Engine
	params *model.Params
	fabric *netsim.Fabric

	osds []*OSD
	mds  *MDS
	caps map[uint64][]capEntry

	// replication is the number of OSD copies per object (Ceph pool
	// "size"). The default of 1 matches the paper's ramdisk evaluation
	// cluster; raising it makes every object write also update the
	// replicas on the next OSDs of the ring.
	replication int
}

// OSD is one object storage device backed by a ramdisk.
type OSD struct {
	index  int
	media  *sim.Mutex
	params *model.Params

	objects      map[objectID]int64 // allocated bytes per object
	bytesRead    uint64
	bytesWritten uint64
	ops          uint64

	// degraded multiplies media service time (fault injection: a
	// recovering or overloaded OSD slows every placement group it
	// hosts, but the data path stays correct).
	degraded float64
}

// SetDegraded slows the OSD's media by the given factor (1 = healthy).
func (o *OSD) SetDegraded(factor float64) {
	if factor < 1 {
		factor = 1
	}
	o.degraded = factor
}

func (o *OSD) mediaTime(n int64) time.Duration {
	d := model.RateTime(n, o.params.OSDRamdiskBytesPerSec)
	if o.degraded > 1 {
		d = time.Duration(float64(d) * o.degraded)
	}
	return d
}

type objectID struct {
	ino uint64
	idx int64
}

// MDS is the metadata server: it owns the namespace tree and serializes
// metadata processing.
type MDS struct {
	cpu    *sim.Mutex
	params *model.Params
	tree   *nstree.Tree
	ops    uint64
}

// New builds a cluster of nOSD object servers and one MDS, wired to the
// last server slots of a fresh fabric (servers 0..nOSD-1 are OSDs,
// server nOSD is the MDS).
func New(eng *sim.Engine, params *model.Params, nOSD int) *Cluster {
	c := &Cluster{
		eng:    eng,
		params: params,
		fabric: netsim.NewFabric(eng, params, nOSD+1),
	}
	for i := 0; i < nOSD; i++ {
		c.osds = append(c.osds, &OSD{
			index:   i,
			media:   sim.NewMutex(eng, "osd.media"),
			params:  params,
			objects: map[objectID]int64{},
		})
	}
	c.mds = &MDS{
		cpu:    sim.NewMutex(eng, "mds.cpu"),
		params: params,
		tree:   nstree.New(),
	}
	c.replication = 1
	return c
}

// SetReplication sets the number of copies kept per object (>= 1).
// Writes fan out to the primary and its ring successors; reads are
// served by the primary.
func (c *Cluster) SetReplication(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(c.osds) {
		n = len(c.osds)
	}
	c.replication = n
}

// Replication returns the configured copy count.
func (c *Cluster) Replication() int { return c.replication }

// Fabric exposes the network for contention inspection in tests.
func (c *Cluster) Fabric() *netsim.Fabric { return c.fabric }

// OSDs returns the object servers.
func (c *Cluster) OSDs() []*OSD { return c.osds }

// Tree returns the authoritative namespace (for zero-cost test setup
// and image preparation; simulated clients use the Meta* calls).
func (c *Cluster) Tree() *nstree.Tree { return c.mds.tree }

// mdsServer is the fabric index of the MDS.
func (c *Cluster) mdsServer() int { return len(c.osds) }

// placement maps an object to its OSD deterministically (a stand-in for
// CRUSH).
func (c *Cluster) placement(ino uint64, objIdx int64) int {
	h := ino*2654435761 + uint64(objIdx)*0x9E3779B97F4A7C15
	return int(h % uint64(len(c.osds)))
}

const (
	metaReqBytes  = 256
	metaRepBytes  = 256
	dataHdrBytes  = 128
	dataRepBytes  = 64
	dirEntryBytes = 64
)

// --- Metadata operations (request/response with the MDS) ---

func (c *Cluster) mdsRPC(ctx vfsapi.Ctx, extraReply int64, op func() error) error {
	c.fabric.Request(ctx.P, c.mdsServer(), metaReqBytes)
	c.mds.cpu.Lock(ctx.P)
	ctx.P.Sleep(c.params.MDSOpCost)
	c.mds.ops++
	err := op()
	c.mds.cpu.Unlock(ctx.P)
	c.fabric.Reply(ctx.P, c.mdsServer(), metaRepBytes+extraReply)
	return err
}

// MetaLookup resolves path at the MDS, returning a snapshot of the node.
func (c *Cluster) MetaLookup(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, uint64, error) {
	var info vfsapi.FileInfo
	var ino uint64
	err := c.mdsRPC(ctx, 0, func() error {
		n, err := c.mds.tree.Lookup(path)
		if err != nil {
			return err
		}
		info = n.Info()
		ino = n.Ino
		return nil
	})
	return info, ino, err
}

// MetaCreate creates a file at the MDS.
func (c *Cluster) MetaCreate(ctx vfsapi.Ctx, path string) (uint64, error) {
	var ino uint64
	err := c.mdsRPC(ctx, 0, func() error {
		n, err := c.mds.tree.Create(path, c.eng.Now())
		if err != nil {
			return err
		}
		ino = n.Ino
		return nil
	})
	return ino, err
}

// MetaMkdir creates a directory at the MDS.
func (c *Cluster) MetaMkdir(ctx vfsapi.Ctx, path string) error {
	return c.mdsRPC(ctx, 0, func() error {
		_, err := c.mds.tree.Mkdir(path, c.eng.Now())
		return err
	})
}

// MetaReaddir lists a directory at the MDS.
func (c *Cluster) MetaReaddir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	var ents []vfsapi.DirEntry
	// Listing cost scales with the directory size; fetch the entries
	// first so the reply transfer can be sized.
	err := c.mdsRPC(ctx, 0, func() error {
		var err error
		ents, err = c.mds.tree.Readdir(path)
		return err
	})
	if err != nil {
		return nil, err
	}
	if n := int64(len(ents)) * dirEntryBytes; n > 0 {
		c.fabric.Reply(ctx.P, c.mdsServer(), n)
	}
	return ents, nil
}

// MetaUnlink removes a file at the MDS.
func (c *Cluster) MetaUnlink(ctx vfsapi.Ctx, path string) error {
	return c.mdsRPC(ctx, 0, func() error {
		_, err := c.mds.tree.Unlink(path)
		return err
	})
}

// MetaRmdir removes a directory at the MDS.
func (c *Cluster) MetaRmdir(ctx vfsapi.Ctx, path string) error {
	return c.mdsRPC(ctx, 0, func() error {
		return c.mds.tree.Rmdir(path)
	})
}

// MetaRename renames at the MDS.
func (c *Cluster) MetaRename(ctx vfsapi.Ctx, oldPath, newPath string) error {
	return c.mdsRPC(ctx, 0, func() error {
		return c.mds.tree.Rename(oldPath, newPath, c.eng.Now())
	})
}

// MetaSetSize updates the authoritative size of path (sent by clients
// when flushing dirty data or closing a written file).
func (c *Cluster) MetaSetSize(ctx vfsapi.Ctx, path string, size int64) error {
	return c.mdsRPC(ctx, 0, func() error {
		n, err := c.mds.tree.Lookup(path)
		if err != nil {
			return err
		}
		if size > n.Size {
			n.Size = size
		}
		n.MTime = c.eng.Now()
		return nil
	})
}

// --- Data operations (request/response with an OSD) ---

// Write stores [off, off+n) of the file identified by ino, splitting
// the range across 4 MB objects placed on the OSDs. The write is
// acknowledged after the primary and every replica have it (the
// replicas are updated by the primary over the server network). It
// blocks the caller for the full round trips.
func (c *Cluster) Write(ctx vfsapi.Ctx, ino uint64, off, n int64) {
	c.eachObject(off, n, func(objIdx, objOff, seg int64) {
		s := c.placement(ino, objIdx)
		c.fabric.Request(ctx.P, s, dataHdrBytes+seg)
		c.osds[s].write(ctx.P, objectID{ino, objIdx}, objOff, seg)
		for r := 1; r < c.replication; r++ {
			rs := (s + r) % len(c.osds)
			// Primary forwards to the replica: replica-side network in
			// plus its media write.
			c.fabric.Servers[rs].RX.Transfer(ctx.P, seg)
			c.osds[rs].write(ctx.P, objectID{ino, objIdx}, objOff, seg)
		}
		c.fabric.Reply(ctx.P, s, dataRepBytes)
	})
}

// Read fetches [off, off+n) of ino from the OSDs.
func (c *Cluster) Read(ctx vfsapi.Ctx, ino uint64, off, n int64) {
	c.eachObject(off, n, func(objIdx, objOff, seg int64) {
		s := c.placement(ino, objIdx)
		osd := c.osds[s]
		c.fabric.Request(ctx.P, s, dataHdrBytes)
		osd.read(ctx.P, objectID{ino, objIdx}, objOff, seg)
		c.fabric.Reply(ctx.P, s, dataRepBytes+seg)
	})
}

func (c *Cluster) eachObject(off, n int64, fn func(objIdx, objOff, seg int64)) {
	size := c.params.ObjectSize
	for n > 0 {
		objIdx := off / size
		objOff := off % size
		seg := size - objOff
		if n < seg {
			seg = n
		}
		fn(objIdx, objOff, seg)
		off += seg
		n -= seg
	}
}

func (o *OSD) write(p *sim.Proc, id objectID, off, n int64) {
	o.media.Lock(p)
	p.Sleep(o.params.OSDOpCost)
	// Journal + data: writes cost JournalFactor × media time.
	mediaBytes := int64(float64(n) * o.params.OSDJournalFactor)
	p.Sleep(o.mediaTime(mediaBytes))
	if end := off + n; end > o.objects[id] {
		o.objects[id] = end
	}
	o.bytesWritten += uint64(n)
	o.ops++
	o.media.Unlock(p)
}

func (o *OSD) read(p *sim.Proc, id objectID, off, n int64) {
	o.media.Lock(p)
	p.Sleep(o.params.OSDOpCost)
	p.Sleep(o.mediaTime(n))
	o.bytesRead += uint64(n)
	o.ops++
	o.media.Unlock(p)
}

// BytesWritten returns total payload bytes stored on this OSD.
func (o *OSD) BytesWritten() uint64 { return o.bytesWritten }

// BytesRead returns total payload bytes served by this OSD.
func (o *OSD) BytesRead() uint64 { return o.bytesRead }

// Ops returns object operations served.
func (o *OSD) Ops() uint64 { return o.ops }

// Objects returns the number of distinct objects stored.
func (o *OSD) Objects() int { return len(o.objects) }

// MDSOps returns metadata operations served by the MDS.
func (c *Cluster) MDSOps() uint64 { return c.mds.ops }

// --- Zero-cost provisioning (experiment setup) ---

// Provision creates path as a file of the given size directly in the
// namespace and allocates its objects, without consuming virtual time.
// Experiments use it to pre-populate container images and datasets.
func (c *Cluster) Provision(path string, size int64) error {
	if err := c.mds.tree.MkdirAll(parentOf(path), 0); err != nil {
		return err
	}
	n, err := c.mds.tree.Create(path, 0)
	if err != nil {
		return err
	}
	n.Size = size
	c.eachObject(0, size, func(objIdx, objOff, seg int64) {
		id := objectID{n.Ino, objIdx}
		o := c.osds[c.placement(n.Ino, objIdx)]
		if end := objOff + seg; end > o.objects[id] {
			o.objects[id] = end
		}
	})
	return nil
}

// ProvisionDir creates a directory (and ancestors) without cost.
func (c *Cluster) ProvisionDir(path string) error {
	return c.mds.tree.MkdirAll(path, 0)
}

func parentOf(path string) string {
	parts := nstree.Split(path)
	if len(parts) <= 1 {
		return "/"
	}
	out := ""
	for _, p := range parts[:len(parts)-1] {
		out += "/" + p
	}
	return out
}

// MDSQueueDelay returns the aggregate wait time observed at the MDS
// lock, a proxy for metadata-path saturation.
func (c *Cluster) MDSQueueDelay() time.Duration { return c.mds.cpu.Stats().TotalWait }

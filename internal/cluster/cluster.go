// Package cluster models the storage backend of the testbed: a Ceph-like
// cluster of object storage devices (OSDs) holding 4 MB file objects on
// ramdisks, and a metadata server (MDS) owning the filesystem namespace.
// Clients reach the cluster through the simulated network fabric; OSD
// media and MDS processing serialize per server, so the backend exhibits
// realistic saturation under scaleout load.
package cluster

import (
	"errors"
	"time"

	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/nstree"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// ErrOSDDown is returned by data operations that reach a crashed OSD.
// Clients recover by retrying against another replica (see the
// cephclient and kern retry paths).
var ErrOSDDown = errors.New("cluster: osd down")

// Cluster is the storage backend: one MDS plus a set of OSDs.
type Cluster struct {
	eng    *sim.Engine
	params *model.Params
	fabric *netsim.Fabric

	osds     []*OSD
	mds      *MDS
	caps     map[uint64][]capEntry
	sessions map[string]*mdsSession

	// replication is the number of OSD copies per object (Ceph pool
	// "size"). The default of 1 matches the paper's ramdisk evaluation
	// cluster; raising it makes every object write also update the
	// replicas on the next OSDs of the ring.
	replication int
}

// OSD is one object storage device backed by a ramdisk.
type OSD struct {
	index  int
	media  *sim.Mutex
	params *model.Params

	objects      map[objectID]int64 // allocated bytes per object
	bytesRead    uint64
	bytesWritten uint64
	ops          uint64

	// degraded multiplies media service time (fault injection: a
	// recovering or overloaded OSD slows every placement group it
	// hosts, but the data path stays correct).
	degraded float64

	// down marks a crashed OSD: every data operation reaching it fails
	// with ErrOSDDown until Restart. Writes that the replication group
	// accepts while a member is down are logged in backfill and applied
	// on restart, so a rejoining OSD recovers the writes it missed.
	down     bool
	backfill map[objectID]int64
}

// SetDegraded slows the OSD's media by the given factor (1 = healthy).
func (o *OSD) SetDegraded(factor float64) {
	if factor < 1 {
		factor = 1
	}
	o.degraded = factor
}

// Degraded returns the current media slowdown factor (<=1 = healthy).
func (o *OSD) Degraded() float64 {
	if o.degraded < 1 {
		return 1
	}
	return o.degraded
}

// Crash marks the OSD down: in-flight and future operations against it
// fail with ErrOSDDown until Restart.
func (o *OSD) Crash() { o.down = true }

// Restart brings a crashed OSD back, applying the backfill log of
// writes its replication groups accepted while it was down — the
// recovering member rejoins with no data loss.
func (o *OSD) Restart() {
	o.down = false
	for id, end := range o.backfill {
		if end > o.objects[id] {
			o.objects[id] = end
		}
	}
	o.backfill = map[objectID]int64{}
}

// Down reports whether the OSD is crashed.
func (o *OSD) Down() bool { return o.down }

// noteBackfill logs a write a down/unreachable member missed.
func (o *OSD) noteBackfill(id objectID, end int64) {
	if end > o.backfill[id] {
		o.backfill[id] = end
	}
}

func (o *OSD) mediaTime(n int64) time.Duration {
	d := model.RateTime(n, o.params.OSDRamdiskBytesPerSec)
	if o.degraded > 1 {
		d = time.Duration(float64(d) * o.degraded)
	}
	return d
}

type objectID struct {
	ino uint64
	idx int64
}

// MDS is the metadata server: it owns the namespace tree and serializes
// metadata processing.
type MDS struct {
	cpu    *sim.Mutex
	params *model.Params
	tree   *nstree.Tree
	ops    uint64

	// sessionsReclaimed counts recovery-protocol session reclaims (see
	// sessions.go).
	sessionsReclaimed uint64

	// stalled freezes metadata processing (fault injection: an MDS
	// failover or journal replay window). Requests queue on stallQ and
	// proceed when the stall clears.
	stalled bool
	stallQ  *sim.WaitQueue
}

// New builds a cluster of nOSD object servers and one MDS, wired to the
// last server slots of a fresh fabric (servers 0..nOSD-1 are OSDs,
// server nOSD is the MDS).
func New(eng *sim.Engine, params *model.Params, nOSD int) *Cluster {
	c := &Cluster{
		eng:    eng,
		params: params,
		fabric: netsim.NewFabric(eng, params, nOSD+1),
	}
	for i := 0; i < nOSD; i++ {
		c.osds = append(c.osds, &OSD{
			index:    i,
			media:    sim.NewMutex(eng, "osd.media"),
			params:   params,
			objects:  map[objectID]int64{},
			backfill: map[objectID]int64{},
		})
	}
	c.mds = &MDS{
		cpu:    sim.NewMutex(eng, "mds.cpu"),
		params: params,
		tree:   nstree.New(),
		stallQ: sim.NewWaitQueue(eng, "mds.stall"),
	}
	c.replication = 1
	return c
}

// SetReplication sets the number of copies kept per object (>= 1).
// Writes fan out to the primary and its ring successors; reads are
// served by the least-degraded member of the group.
func (c *Cluster) SetReplication(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(c.osds) {
		n = len(c.osds)
	}
	c.replication = n
}

// Replication returns the configured copy count.
func (c *Cluster) Replication() int { return c.replication }

// Fabric exposes the network for contention inspection in tests.
func (c *Cluster) Fabric() *netsim.Fabric { return c.fabric }

// OSDs returns the object servers.
func (c *Cluster) OSDs() []*OSD { return c.osds }

// Tree returns the authoritative namespace (for zero-cost test setup
// and image preparation; simulated clients use the Meta* calls).
func (c *Cluster) Tree() *nstree.Tree { return c.mds.tree }

// mdsServer is the fabric index of the MDS.
func (c *Cluster) mdsServer() int { return len(c.osds) }

// placement maps an object to its OSD deterministically (a stand-in for
// CRUSH).
func (c *Cluster) placement(ino uint64, objIdx int64) int {
	h := ino*2654435761 + uint64(objIdx)*0x9E3779B97F4A7C15
	return int(h % uint64(len(c.osds)))
}

// PlacementOf exposes the primary OSD of an object; experiments use it
// to aim fault windows at the OSD serving a known file.
func (c *Cluster) PlacementOf(ino uint64, objIdx int64) int {
	return c.placement(ino, objIdx)
}

// SetMDSStalled freezes or unfreezes metadata processing (fault
// injection: an MDS failover / journal replay window). While stalled,
// metadata requests queue at the server and complete when the stall
// clears; pair every stall with an unstall or queued clients park
// forever.
func (c *Cluster) SetMDSStalled(v bool) {
	c.mds.stalled = v
	if !v {
		c.mds.stallQ.Broadcast()
	}
}

// MDSStalled reports whether metadata processing is frozen.
func (c *Cluster) MDSStalled() bool { return c.mds.stalled }

const (
	metaReqBytes  = 256
	metaRepBytes  = 256
	dataHdrBytes  = 128
	dataRepBytes  = 64
	dirEntryBytes = 64
)

// --- Metadata operations (request/response with the MDS) ---

func (c *Cluster) mdsRPC(ctx vfsapi.Ctx, extraReply int64, op func() error) error {
	defer ctx.Span.Enter(obs.LayerMDS).Exit()
	nsc := ctx.Span.Enter(obs.LayerNet)
	err := c.fabric.Request(ctx.P, c.mdsServer(), metaReqBytes)
	nsc.Exit()
	if err != nil {
		return err
	}
	for c.mds.stalled {
		c.mds.stallQ.Wait(ctx.P)
	}
	c.mds.cpu.Lock(ctx.P)
	ctx.P.Sleep(c.params.MDSOpCost)
	ctx.P.ReportWait("mds", "mds.cpu", "", 0, c.params.MDSOpCost)
	c.mds.ops++
	err = op()
	c.mds.cpu.Unlock(ctx.P)
	nsc = ctx.Span.Enter(obs.LayerNet)
	rerr := c.fabric.Reply(ctx.P, c.mdsServer(), metaRepBytes+extraReply)
	nsc.Exit()
	if rerr != nil && err == nil {
		err = rerr
	}
	return err
}

// MetaLookup resolves path at the MDS, returning a snapshot of the node.
func (c *Cluster) MetaLookup(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, uint64, error) {
	var info vfsapi.FileInfo
	var ino uint64
	err := c.mdsRPC(ctx, 0, func() error {
		n, err := c.mds.tree.Lookup(path)
		if err != nil {
			return err
		}
		info = n.Info()
		ino = n.Ino
		return nil
	})
	return info, ino, err
}

// MetaCreate creates a file at the MDS.
func (c *Cluster) MetaCreate(ctx vfsapi.Ctx, path string) (uint64, error) {
	var ino uint64
	err := c.mdsRPC(ctx, 0, func() error {
		n, err := c.mds.tree.Create(path, c.eng.Now())
		if err != nil {
			return err
		}
		ino = n.Ino
		return nil
	})
	return ino, err
}

// MetaMkdir creates a directory at the MDS.
func (c *Cluster) MetaMkdir(ctx vfsapi.Ctx, path string) error {
	return c.mdsRPC(ctx, 0, func() error {
		_, err := c.mds.tree.Mkdir(path, c.eng.Now())
		return err
	})
}

// MetaReaddir lists a directory at the MDS.
func (c *Cluster) MetaReaddir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	var ents []vfsapi.DirEntry
	// Listing cost scales with the directory size; fetch the entries
	// first so the reply transfer can be sized.
	err := c.mdsRPC(ctx, 0, func() error {
		var err error
		ents, err = c.mds.tree.Readdir(path)
		return err
	})
	if err != nil {
		return nil, err
	}
	if n := int64(len(ents)) * dirEntryBytes; n > 0 {
		if err := c.fabric.Reply(ctx.P, c.mdsServer(), n); err != nil {
			return nil, err
		}
	}
	return ents, nil
}

// MetaUnlink removes a file at the MDS.
func (c *Cluster) MetaUnlink(ctx vfsapi.Ctx, path string) error {
	return c.mdsRPC(ctx, 0, func() error {
		_, err := c.mds.tree.Unlink(path)
		return err
	})
}

// MetaRmdir removes a directory at the MDS.
func (c *Cluster) MetaRmdir(ctx vfsapi.Ctx, path string) error {
	return c.mdsRPC(ctx, 0, func() error {
		return c.mds.tree.Rmdir(path)
	})
}

// MetaRename renames at the MDS.
func (c *Cluster) MetaRename(ctx vfsapi.Ctx, oldPath, newPath string) error {
	return c.mdsRPC(ctx, 0, func() error {
		return c.mds.tree.Rename(oldPath, newPath, c.eng.Now())
	})
}

// MetaSetSize updates the authoritative size of path (sent by clients
// when flushing dirty data or closing a written file).
func (c *Cluster) MetaSetSize(ctx vfsapi.Ctx, path string, size int64) error {
	return c.mdsRPC(ctx, 0, func() error {
		n, err := c.mds.tree.Lookup(path)
		if err != nil {
			return err
		}
		if size > n.Size {
			n.Size = size
		}
		n.MTime = c.eng.Now()
		return nil
	})
}

// --- Data operations (request/response with an OSD) ---

// Write stores [off, off+n) of the file identified by ino, splitting
// the range across 4 MB objects placed on the OSDs. The write is
// acknowledged after the primary and every reachable replica have it
// (the replicas are updated by the primary over the server network).
// It blocks the caller for the full round trips.
func (c *Cluster) Write(ctx vfsapi.Ctx, ino uint64, off, n int64) error {
	return c.WriteReplica(ctx, ino, off, n, 0)
}

// WriteReplica is Write with the acting primary pinned to replication-
// group member `acting` (0 = the placement primary). Clients retry a
// failed write here with the next member acting as primary. Group
// members that are down or unreachable miss the write but have it
// logged for backfill, so they recover it on restart; the write still
// fails if the acting primary itself cannot take it.
func (c *Cluster) WriteReplica(ctx vfsapi.Ctx, ino uint64, off, n int64, acting int) error {
	return c.eachObject(off, n, func(objIdx, objOff, seg int64) error {
		s := c.placement(ino, objIdx)
		a := acting % c.replication
		as := (s + a) % len(c.osds)
		id := objectID{ino, objIdx}
		nsc := ctx.Span.Enter(obs.LayerNet)
		err := c.fabric.Request(ctx.P, as, dataHdrBytes+seg)
		nsc.Exit()
		if err != nil {
			return err
		}
		osc := ctx.Span.Enter(obs.LayerOSD)
		err = c.osds[as].write(ctx.P, id, objOff, seg)
		osc.Exit()
		if err != nil {
			return err
		}
		for r := 0; r < c.replication; r++ {
			if r == a {
				continue
			}
			rs := (s + r) % len(c.osds)
			osd := c.osds[rs]
			if osd.down {
				osd.noteBackfill(id, objOff+seg)
				continue
			}
			// Acting primary forwards to the member: member-side network
			// in plus its media write. A member that became unreachable
			// or crashed mid-write is backfilled later instead of
			// failing the op.
			nsc = ctx.Span.Enter(obs.LayerNet)
			err = c.fabric.Servers[rs].RX.Transfer(ctx.P, seg)
			nsc.Exit()
			if err != nil {
				osd.noteBackfill(id, objOff+seg)
				continue
			}
			osc = ctx.Span.Enter(obs.LayerOSD)
			err = osd.write(ctx.P, id, objOff, seg)
			osc.Exit()
			if err != nil {
				osd.noteBackfill(id, objOff+seg)
			}
		}
		nsc = ctx.Span.Enter(obs.LayerNet)
		err = c.fabric.Reply(ctx.P, as, dataRepBytes)
		nsc.Exit()
		return err
	})
}

// Read fetches [off, off+n) of ino. Each object is served by the
// least-degraded member of its replication group (ties prefer the
// primary), so a slow recovering OSD does not throttle reads that have
// a healthy copy elsewhere.
func (c *Cluster) Read(ctx vfsapi.Ctx, ino uint64, off, n int64) error {
	return c.eachObject(off, n, func(objIdx, objOff, seg int64) error {
		return c.readObject(ctx, ino, objIdx, objOff, seg, -1)
	})
}

// ReadReplica is Read with the serving OSD pinned to replication-group
// member `replica` (0 = primary). Clients cycle through members here
// when the routed read fails.
func (c *Cluster) ReadReplica(ctx vfsapi.Ctx, ino uint64, off, n int64, replica int) error {
	return c.eachObject(off, n, func(objIdx, objOff, seg int64) error {
		return c.readObject(ctx, ino, objIdx, objOff, seg, replica%c.replication)
	})
}

// readObject serves one object read from group member pin, or from the
// least-degraded member when pin is negative. Down members are not
// excluded from routing — liveness is discovered the hard way, via
// ErrOSDDown, as with a real OSD map lagging a crash.
func (c *Cluster) readObject(ctx vfsapi.Ctx, ino uint64, objIdx, objOff, seg int64, pin int) error {
	s := c.placement(ino, objIdx)
	m := pin
	if m < 0 {
		m = 0
		if c.replication > 1 {
			best := c.osds[s].Degraded()
			for r := 1; r < c.replication; r++ {
				if d := c.osds[(s+r)%len(c.osds)].Degraded(); d < best {
					best, m = d, r
				}
			}
		}
	}
	ms := (s + m) % len(c.osds)
	nsc := ctx.Span.Enter(obs.LayerNet)
	err := c.fabric.Request(ctx.P, ms, dataHdrBytes)
	nsc.Exit()
	if err != nil {
		return err
	}
	osc := ctx.Span.Enter(obs.LayerOSD)
	err = c.osds[ms].read(ctx.P, objectID{ino, objIdx}, objOff, seg)
	osc.Exit()
	if err != nil {
		return err
	}
	nsc = ctx.Span.Enter(obs.LayerNet)
	err = c.fabric.Reply(ctx.P, ms, dataRepBytes+seg)
	nsc.Exit()
	return err
}

func (c *Cluster) eachObject(off, n int64, fn func(objIdx, objOff, seg int64) error) error {
	size := c.params.ObjectSize
	for n > 0 {
		objIdx := off / size
		objOff := off % size
		seg := size - objOff
		if n < seg {
			seg = n
		}
		if err := fn(objIdx, objOff, seg); err != nil {
			return err
		}
		off += seg
		n -= seg
	}
	return nil
}

func (o *OSD) write(p *sim.Proc, id objectID, off, n int64) error {
	if o.down {
		return ErrOSDDown
	}
	o.media.Lock(p)
	if o.down {
		// Crashed while the request queued on the media.
		o.media.Unlock(p)
		return ErrOSDDown
	}
	p.Sleep(o.params.OSDOpCost)
	// Journal + data: writes cost JournalFactor × media time.
	mediaBytes := int64(float64(n) * o.params.OSDJournalFactor)
	mt := o.mediaTime(mediaBytes)
	p.Sleep(mt)
	p.ReportWait("osd", "osd.media", "", 0, o.params.OSDOpCost+mt)
	if o.down {
		// Crashed mid-service: the write never persisted.
		o.media.Unlock(p)
		return ErrOSDDown
	}
	if end := off + n; end > o.objects[id] {
		o.objects[id] = end
	}
	o.bytesWritten += uint64(n)
	o.ops++
	o.media.Unlock(p)
	return nil
}

func (o *OSD) read(p *sim.Proc, id objectID, off, n int64) error {
	if o.down {
		return ErrOSDDown
	}
	o.media.Lock(p)
	if o.down {
		o.media.Unlock(p)
		return ErrOSDDown
	}
	p.Sleep(o.params.OSDOpCost)
	mt := o.mediaTime(n)
	p.Sleep(mt)
	p.ReportWait("osd", "osd.media", "", 0, o.params.OSDOpCost+mt)
	if o.down {
		// Crashed mid-service: the reply was never sent.
		o.media.Unlock(p)
		return ErrOSDDown
	}
	o.bytesRead += uint64(n)
	o.ops++
	o.media.Unlock(p)
	return nil
}

// BytesWritten returns total payload bytes stored on this OSD.
func (o *OSD) BytesWritten() uint64 { return o.bytesWritten }

// BytesRead returns total payload bytes served by this OSD.
func (o *OSD) BytesRead() uint64 { return o.bytesRead }

// Ops returns object operations served.
func (o *OSD) Ops() uint64 { return o.ops }

// Objects returns the number of distinct objects stored.
func (o *OSD) Objects() int { return len(o.objects) }

// MDSOps returns metadata operations served by the MDS.
func (c *Cluster) MDSOps() uint64 { return c.mds.ops }

// --- Zero-cost provisioning (experiment setup) ---

// Provision creates path as a file of the given size directly in the
// namespace and allocates its objects, without consuming virtual time.
// Experiments use it to pre-populate container images and datasets.
func (c *Cluster) Provision(path string, size int64) error {
	if err := c.mds.tree.MkdirAll(parentOf(path), 0); err != nil {
		return err
	}
	n, err := c.mds.tree.Create(path, 0)
	if err != nil {
		return err
	}
	n.Size = size
	c.eachObject(0, size, func(objIdx, objOff, seg int64) error {
		id := objectID{n.Ino, objIdx}
		s := c.placement(n.Ino, objIdx)
		for r := 0; r < c.replication; r++ {
			o := c.osds[(s+r)%len(c.osds)]
			if end := objOff + seg; end > o.objects[id] {
				o.objects[id] = end
			}
		}
		return nil
	})
	return nil
}

// TruncateObjects clamps the stored extents of ino's objects to the
// given file size on every replica, without consuming virtual time: in
// Ceph the MDS serves the new size immediately while object trimming
// proceeds asynchronously.
func (c *Cluster) TruncateObjects(ino uint64, size int64) {
	objSize := c.params.ObjectSize
	clamp := func(m map[objectID]int64) {
		for id, end := range m {
			if id.ino != ino {
				continue
			}
			keep := size - id.idx*objSize
			switch {
			case keep <= 0:
				delete(m, id)
			case end > keep:
				m[id] = keep
			}
		}
	}
	for _, o := range c.osds {
		clamp(o.objects)
		clamp(o.backfill)
	}
}

// StoredSize returns the reconstructible size of ino across the
// cluster: for each object, the largest extent held by any OSD (live
// or logged for backfill). Experiments compare it against acknowledged
// writes to assert zero data loss under fault schedules.
func (c *Cluster) StoredSize(ino uint64) int64 {
	objSize := c.params.ObjectSize
	var max int64
	for _, o := range c.osds {
		for id, end := range o.objects {
			if id.ino == ino {
				if v := id.idx*objSize + end; v > max {
					max = v
				}
			}
		}
		for id, end := range o.backfill {
			if id.ino == ino {
				if v := id.idx*objSize + end; v > max {
					max = v
				}
			}
		}
	}
	return max
}

// ProvisionDir creates a directory (and ancestors) without cost.
func (c *Cluster) ProvisionDir(path string) error {
	return c.mds.tree.MkdirAll(path, 0)
}

func parentOf(path string) string {
	parts := nstree.Split(path)
	if len(parts) <= 1 {
		return "/"
	}
	out := ""
	for _, p := range parts[:len(parts)-1] {
		out += "/" + p
	}
	return out
}

// MDSQueueDelay returns the aggregate wait time observed at the MDS
// lock, a proxy for metadata-path saturation.
func (c *Cluster) MDSQueueDelay() time.Duration { return c.mds.cpu.Stats().TotalWait }

package cluster

import (
	"errors"
	"fmt"

	"repro/internal/vfsapi"
)

// MDS session registry (a simplified form of the CephFS/CFS client
// session protocol): every client-side filesystem service registers a
// named session when it mounts. A client crash marks its session stale;
// the restarted client must reclaim it before serving traffic. Reclaim
// fences the stale incarnation — the MDS drops every capability the
// dead client still held, so a zombie cannot block cap acquisition or
// resurrect pre-crash dirty state — and issues a new session epoch.
// Operations presenting a fenced epoch fail with ErrStaleSession.

// ErrStaleSession is returned when a client presents a session epoch
// that the MDS has fenced (the session was reclaimed by a newer
// incarnation, or marked stale by a crash and not yet reclaimed).
var ErrStaleSession = errors.New("cluster: stale mds session")

type mdsSession struct {
	epoch  uint64
	stale  bool
	holder CapHolder
}

// OpenSession registers (or re-registers) a client session under name
// and returns its epoch. The holder — which may be nil for clients that
// never take capabilities — is the CapHolder the MDS will fence if the
// session dies. Opening an existing live session is idempotent.
func (c *Cluster) OpenSession(name string, holder CapHolder) uint64 {
	if c.sessions == nil {
		c.sessions = map[string]*mdsSession{}
	}
	s := c.sessions[name]
	if s == nil {
		s = &mdsSession{epoch: 1, holder: holder}
		c.sessions[name] = s
		return s.epoch
	}
	s.holder = holder
	return s.epoch
}

// MarkSessionStale records that the session's client died. The epoch
// stops validating immediately; capabilities stay until the reclaim
// fences them (the MDS cannot know the client is gone until either a
// reclaim or a timeout, and the deterministic testbed models the
// reclaim path).
func (c *Cluster) MarkSessionStale(name string) {
	if s := c.sessions[name]; s != nil {
		s.stale = true
	}
}

// ReclaimSession is the recovery-protocol step a restarted client runs
// before serving traffic: one metadata round trip that fences the stale
// incarnation (dropping every capability its holder still had) and
// issues a fresh epoch. It returns the new epoch. Reclaiming a session
// that was never opened is an error — the restarted client must be the
// same mount the MDS knew.
func (c *Cluster) ReclaimSession(ctx vfsapi.Ctx, name string) (uint64, error) {
	s := c.sessions[name]
	if s == nil {
		return 0, fmt.Errorf("cluster: reclaim of unknown session %q", name)
	}
	if err := c.mdsRPC(ctx, 0, func() error { return nil }); err != nil {
		return 0, err
	}
	if s.holder != nil {
		c.fenceHolder(s.holder)
	}
	s.stale = false
	s.epoch++
	c.mds.sessionsReclaimed++
	return s.epoch, nil
}

// ValidateSession checks a (name, epoch) pair against the registry:
// stale sessions and superseded epochs fail with ErrStaleSession.
func (c *Cluster) ValidateSession(name string, epoch uint64) error {
	s := c.sessions[name]
	if s == nil || s.stale || s.epoch != epoch {
		return ErrStaleSession
	}
	return nil
}

// SessionsReclaimed counts completed session reclaims (recovery
// protocol runs) since the cluster was built.
func (c *Cluster) SessionsReclaimed() uint64 { return c.mds.sessionsReclaimed }

// SessionCount returns how many sessions are registered. Clients
// without a natural name (the kernel Ceph stores) use it to mint a
// deterministic unique session name at construction.
func (c *Cluster) SessionCount() int { return len(c.sessions) }

// fenceHolder drops every capability the holder has on any inode and
// returns how many entries were fenced. Unlike ReleaseCaps it needs no
// cooperation from the (dead) client.
func (c *Cluster) fenceHolder(holder CapHolder) int {
	fenced := 0
	for ino, entries := range c.caps {
		kept := entries[:0]
		for _, e := range entries {
			if e.holder == holder {
				fenced++
				continue
			}
			kept = append(kept, e)
		}
		if len(kept) == 0 {
			delete(c.caps, ino)
		} else {
			c.caps[ino] = kept
		}
	}
	return fenced
}

package cluster

import (
	"repro/internal/vfsapi"
)

// Capability management (a simplified form of Ceph's caps protocol):
// the MDS tracks which clients hold read or write capabilities on each
// inode. A client acquiring a capability that conflicts with another
// client's holdings triggers a synchronous revocation: the holder
// flushes its dirty state and drops its cache before the acquisition
// completes. This is the §3.4 mechanism that propagates writes between
// backend clients of the same file.

// CapKind is the strength of a capability.
type CapKind int

// Capability kinds.
const (
	// CapRead allows caching file data for reads.
	CapRead CapKind = iota
	// CapWrite allows buffering dirty data for the file.
	CapWrite
)

// CapHolder is a client that can be asked to give up its capabilities
// on an inode (flushing dirty state and dropping its cache).
type CapHolder interface {
	RevokeCaps(ctx vfsapi.Ctx, ino uint64)
}

type capEntry struct {
	holder CapHolder
	kind   CapKind
}

// AcquireCaps grants the holder a capability on ino, synchronously
// revoking conflicting capabilities from other holders first. Two read
// capabilities coexist; a write capability is exclusive against every
// other holder. The revocation work runs on the acquiring caller (it
// blocks until the previous holder's state is safe on the backend).
// It reports whether any revocation happened, so the acquirer knows to
// refresh metadata it may have read before the flush.
func (c *Cluster) AcquireCaps(ctx vfsapi.Ctx, ino uint64, kind CapKind, holder CapHolder) bool {
	if c.caps == nil {
		c.caps = map[uint64][]capEntry{}
	}
	revoked := false
	entries := c.caps[ino]
	kept := entries[:0]
	for _, e := range entries {
		if e.holder == holder {
			continue // re-granted below, possibly upgraded
		}
		conflict := kind == CapWrite || e.kind == CapWrite
		if conflict {
			// One metadata round trip to deliver the revoke, then the
			// holder's writeback.
			c.mdsRPC(ctx, 0, func() error { return nil })
			e.holder.RevokeCaps(ctx, ino)
			revoked = true
			continue
		}
		kept = append(kept, e)
	}
	c.caps[ino] = append(kept, capEntry{holder: holder, kind: kind})
	return revoked
}

// ReleaseCaps drops every capability the holder has on ino.
func (c *Cluster) ReleaseCaps(ino uint64, holder CapHolder) {
	entries := c.caps[ino]
	kept := entries[:0]
	for _, e := range entries {
		if e.holder != holder {
			kept = append(kept, e)
		}
	}
	if len(kept) == 0 {
		delete(c.caps, ino)
		return
	}
	c.caps[ino] = kept
}

// CapHolders returns how many clients hold capabilities on ino
// (diagnostics).
func (c *Cluster) CapHolders(ino uint64) int { return len(c.caps[ino]) }

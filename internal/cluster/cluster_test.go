package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

func newTestCluster(t *testing.T) (*sim.Engine, *Cluster, func(p *sim.Proc) vfsapi.Ctx) {
	t.Helper()
	e := sim.NewEngine()
	params := model.Default()
	c := New(e, params, 6)
	proc := cpu.New(e, params, 4)
	acct := cpu.NewAccount("test")
	mkCtx := func(p *sim.Proc) vfsapi.Ctx {
		return vfsapi.Ctx{P: p, T: proc.NewThread(acct, 0)}
	}
	return e, c, mkCtx
}

func TestMetadataLifecycle(t *testing.T) {
	e, c, mkCtx := newTestCluster(t)
	e.Go("client", func(p *sim.Proc) {
		ctx := mkCtx(p)
		if err := c.MetaMkdir(ctx, "/data"); err != nil {
			t.Errorf("mkdir: %v", err)
		}
		ino, err := c.MetaCreate(ctx, "/data/f")
		if err != nil || ino == 0 {
			t.Errorf("create: ino=%d err=%v", ino, err)
		}
		if err := c.MetaSetSize(ctx, "/data/f", 4096); err != nil {
			t.Errorf("setsize: %v", err)
		}
		info, gotIno, err := c.MetaLookup(ctx, "/data/f")
		if err != nil || info.Size != 4096 || gotIno != ino {
			t.Errorf("lookup: %+v ino=%d err=%v", info, gotIno, err)
		}
		ents, err := c.MetaReaddir(ctx, "/data")
		if err != nil || len(ents) != 1 || ents[0].Name != "f" {
			t.Errorf("readdir: %v err=%v", ents, err)
		}
		if err := c.MetaRename(ctx, "/data/f", "/data/g"); err != nil {
			t.Errorf("rename: %v", err)
		}
		if err := c.MetaUnlink(ctx, "/data/g"); err != nil {
			t.Errorf("unlink: %v", err)
		}
		if err := c.MetaRmdir(ctx, "/data"); err != nil {
			t.Errorf("rmdir: %v", err)
		}
		if _, _, err := c.MetaLookup(ctx, "/data"); !errors.Is(err, vfsapi.ErrNotExist) {
			t.Errorf("lookup removed dir: %v", err)
		}
	})
	e.Run()
	if c.MDSOps() == 0 {
		t.Fatal("MDS served no operations")
	}
}

func TestMetadataOpsTakeTime(t *testing.T) {
	e, c, mkCtx := newTestCluster(t)
	var elapsed time.Duration
	e.Go("client", func(p *sim.Proc) {
		ctx := mkCtx(p)
		start := p.Now()
		c.MetaMkdir(ctx, "/d")
		elapsed = p.Now() - start
	})
	e.Run()
	if elapsed < model.Default().MDSOpCost {
		t.Fatalf("metadata op took %v, below MDS service time", elapsed)
	}
}

func TestWriteStripesAcrossOSDs(t *testing.T) {
	e, c, mkCtx := newTestCluster(t)
	e.Go("client", func(p *sim.Proc) {
		ctx := mkCtx(p)
		ino, err := c.MetaCreate(ctx, "/big")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		c.Write(ctx, ino, 0, 48<<20) // 12 objects of 4 MB over 6 OSDs
	})
	e.Run()
	busy := 0
	var total uint64
	for _, o := range c.OSDs() {
		if o.BytesWritten() > 0 {
			busy++
		}
		total += o.BytesWritten()
	}
	if total != 48<<20 {
		t.Fatalf("total stored = %d, want 48MB", total)
	}
	if busy < 4 {
		t.Fatalf("only %d OSDs used; placement not spreading", busy)
	}
}

func TestReadAfterWriteSameBytes(t *testing.T) {
	e, c, mkCtx := newTestCluster(t)
	e.Go("client", func(p *sim.Proc) {
		ctx := mkCtx(p)
		ino, _ := c.MetaCreate(ctx, "/f")
		c.Write(ctx, ino, 0, 10<<20)
		c.Read(ctx, ino, 0, 10<<20)
	})
	e.Run()
	var r uint64
	for _, o := range c.OSDs() {
		r += o.BytesRead()
	}
	if r != 10<<20 {
		t.Fatalf("read %d bytes from OSDs, want 10MB", r)
	}
}

func TestOSDMediaSerializes(t *testing.T) {
	// Two writers to the SAME object must serialize on that OSD's media,
	// while writers to objects on different OSDs overlap.
	e, c, mkCtx := newTestCluster(t)
	var sameDone time.Duration
	e.Go("w1", func(p *sim.Proc) {
		ctx := mkCtx(p)
		ino, _ := c.MetaCreate(ctx, "/f1")
		c.Write(ctx, ino, 0, 4<<20)
		c.Write(ctx, ino, 0, 4<<20)
		sameDone = p.Now()
	})
	e.Run()
	// 2 × 4MB × journal 1.5 at 2 GB/s = 6ms media floor.
	wantFloor := model.RateTime(12<<20, model.Default().OSDRamdiskBytesPerSec)
	if sameDone < wantFloor {
		t.Fatalf("writes finished at %v, below media floor %v", sameDone, wantFloor)
	}
}

func TestProvisionPopulatesNamespaceWithoutTime(t *testing.T) {
	e, c, mkCtx := newTestCluster(t)
	if err := c.Provision("/images/base/bin/sh", 1<<20); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 0 {
		t.Fatal("provisioning consumed virtual time")
	}
	e.Go("client", func(p *sim.Proc) {
		ctx := mkCtx(p)
		info, _, err := c.MetaLookup(ctx, "/images/base/bin/sh")
		if err != nil || info.Size != 1<<20 {
			t.Errorf("lookup provisioned: %+v err=%v", info, err)
		}
	})
	e.Run()
}

func TestMDSSaturationShowsQueueing(t *testing.T) {
	e, c, mkCtx := newTestCluster(t)
	for i := 0; i < 8; i++ {
		e.Go("client", func(p *sim.Proc) {
			ctx := mkCtx(p)
			for j := 0; j < 50; j++ {
				c.MetaLookup(ctx, "/")
			}
		})
	}
	e.Run()
	if c.MDSQueueDelay() == 0 {
		t.Fatal("8 concurrent metadata streams produced no MDS queueing")
	}
}

// TestPlacementSpreadsProperty checks the object placement balances
// across OSDs for many files (a CRUSH-like uniformity property).
func TestPlacementSpreadsProperty(t *testing.T) {
	e, c, mkCtx := newTestCluster(t)
	e.Go("w", func(p *sim.Proc) {
		ctx := mkCtx(p)
		for i := 0; i < 60; i++ {
			ino, err := c.MetaCreate(ctx, fmt.Sprintf("/f%03d", i))
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			c.Write(ctx, ino, 0, 8<<20) // 2 objects each
		}
	})
	e.Run()
	var min, max uint64 = 1 << 62, 0
	for _, o := range c.OSDs() {
		if o.BytesWritten() < min {
			min = o.BytesWritten()
		}
		if o.BytesWritten() > max {
			max = o.BytesWritten()
		}
	}
	if min == 0 {
		t.Fatal("an OSD received nothing across 120 objects")
	}
	if max > 4*min {
		t.Fatalf("placement skew too high: min=%d max=%d", min, max)
	}
}

// TestLargeFileObjectCount verifies 4MB striping of a large file.
func TestLargeFileObjectCount(t *testing.T) {
	e, c, mkCtx := newTestCluster(t)
	e.Go("w", func(p *sim.Proc) {
		ctx := mkCtx(p)
		ino, _ := c.MetaCreate(ctx, "/big")
		c.Write(ctx, ino, 0, 64<<20)
	})
	e.Run()
	objects := 0
	for _, o := range c.OSDs() {
		objects += o.Objects()
	}
	if objects != 16 {
		t.Fatalf("64MB file stored as %d objects, want 16 x 4MB", objects)
	}
}

func TestDegradedOSDSlowsButStaysCorrect(t *testing.T) {
	run := func(degrade bool) time.Duration {
		e, c, mkCtx := newTestCluster(t)
		if degrade {
			for _, o := range c.OSDs() {
				o.SetDegraded(8)
			}
		}
		e.Go("w", func(p *sim.Proc) {
			ctx := mkCtx(p)
			ino, _ := c.MetaCreate(ctx, "/f")
			c.Write(ctx, ino, 0, 16<<20)
			c.Read(ctx, ino, 0, 16<<20)
		})
		e.Run()
		var stored uint64
		for _, o := range c.OSDs() {
			stored += o.BytesWritten()
		}
		if stored != 16<<20 {
			t.Fatalf("degraded=%v stored %d", degrade, stored)
		}
		return e.Now()
	}
	healthy := run(false)
	degraded := run(true)
	if degraded <= healthy {
		t.Fatalf("degradation had no effect: %v vs %v", degraded, healthy)
	}
}

func TestReplicationFansOutWrites(t *testing.T) {
	e, c, mkCtx := newTestCluster(t)
	c.SetReplication(3)
	if c.Replication() != 3 {
		t.Fatalf("replication = %d", c.Replication())
	}
	e.Go("w", func(p *sim.Proc) {
		ctx := mkCtx(p)
		ino, _ := c.MetaCreate(ctx, "/f")
		c.Write(ctx, ino, 0, 4<<20) // one object
	})
	e.Run()
	var copies int
	var stored uint64
	for _, o := range c.OSDs() {
		if o.BytesWritten() > 0 {
			copies++
		}
		stored += o.BytesWritten()
	}
	if copies != 3 {
		t.Fatalf("object written on %d OSDs, want 3", copies)
	}
	if stored != 3*(4<<20) {
		t.Fatalf("total stored = %d", stored)
	}
}

func TestReplicationClamps(t *testing.T) {
	_, c, _ := newTestCluster(t)
	c.SetReplication(0)
	if c.Replication() != 1 {
		t.Fatalf("clamp low: %d", c.Replication())
	}
	c.SetReplication(100)
	if c.Replication() != 6 {
		t.Fatalf("clamp high: %d", c.Replication())
	}
}

package cluster

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// TestReplicaFanoutIdentical drives a mixed write/truncate/write
// sequence at replication 3 and asserts every member of each object's
// replication group holds byte-identical state.
func TestReplicaFanoutIdentical(t *testing.T) {
	e, c, mkCtx := newTestCluster(t)
	c.SetReplication(3)
	var ino uint64
	e.Go("writer", func(p *sim.Proc) {
		ctx := mkCtx(p)
		var err error
		ino, err = c.MetaCreate(ctx, "/f")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := c.Write(ctx, ino, 0, 10<<20); err != nil {
			t.Errorf("write: %v", err)
		}
		c.TruncateObjects(ino, 5<<20)
		if err := c.Write(ctx, ino, 5<<20, 1<<20); err != nil {
			t.Errorf("extend: %v", err)
		}
	})
	e.Run()

	objSize := c.params.ObjectSize
	seen := 0
	for idx := int64(0); idx*objSize < 6<<20; idx++ {
		id := objectID{ino: ino, idx: idx}
		s := c.PlacementOf(ino, idx)
		end0, ok := c.osds[s].objects[id]
		if !ok {
			t.Fatalf("object %d missing on its primary osd %d", idx, s)
		}
		seen++
		for r := 1; r < 3; r++ {
			m := (s + r) % len(c.osds)
			end, ok := c.osds[m].objects[id]
			if !ok || end != end0 {
				t.Fatalf("object %d: member %d holds end=%d (present=%v), primary holds %d",
					idx, m, end, ok, end0)
			}
		}
	}
	if seen != 2 {
		t.Fatalf("file spans %d objects after truncate to 5MB + extend to 6MB, want 2", seen)
	}
	// The truncated third object must be gone everywhere.
	id2 := objectID{ino: ino, idx: 2}
	for i, o := range c.osds {
		if _, ok := o.objects[id2]; ok {
			t.Fatalf("osd %d still holds the truncated object", i)
		}
	}
	if got := c.StoredSize(ino); got != 6<<20 {
		t.Fatalf("StoredSize = %d, want %d", got, 6<<20)
	}
}

// txBytes sums the server->client traffic of one OSD's NIC.
func txBytes(c *Cluster, osd int) uint64 {
	return c.fabric.Servers[osd].TX.Bytes()
}

// TestReadRoutesToLeastDegradedMember: with a degraded primary the
// replicated read must be served by the healthy replica, and return to
// the primary once it recovers (ties prefer the primary).
func TestReadRoutesToLeastDegradedMember(t *testing.T) {
	e, c, mkCtx := newTestCluster(t)
	c.SetReplication(2)
	e.Go("client", func(p *sim.Proc) {
		ctx := mkCtx(p)
		ino, err := c.MetaCreate(ctx, "/f")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := c.Write(ctx, ino, 0, 1<<20); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		primary := c.PlacementOf(ino, 0)
		replica := (primary + 1) % len(c.osds)

		c.osds[primary].SetDegraded(8)
		p0, r0 := txBytes(c, primary), txBytes(c, replica)
		if err := c.Read(ctx, ino, 0, 1<<20); err != nil {
			t.Errorf("degraded read: %v", err)
		}
		if d := txBytes(c, replica) - r0; d < 1<<20 {
			t.Errorf("replica served %d bytes during primary degradation, want >= 1MB", d)
		}
		if d := txBytes(c, primary) - p0; d >= 1<<20 {
			t.Errorf("degraded primary still served %d data bytes", d)
		}

		c.osds[primary].SetDegraded(1)
		p1 := txBytes(c, primary)
		if err := c.Read(ctx, ino, 0, 1<<20); err != nil {
			t.Errorf("healthy read: %v", err)
		}
		if d := txBytes(c, primary) - p1; d < 1<<20 {
			t.Errorf("healthy primary served %d bytes, want >= 1MB (ties prefer primary)", d)
		}
	})
	e.Run()
}

// TestCrashRestartBackfillRecovery: writes against a group with a down
// member succeed through the acting member, the miss is logged for
// backfill, and a restart replays it so the primary serves reads again
// with no data loss.
func TestCrashRestartBackfillRecovery(t *testing.T) {
	e, c, mkCtx := newTestCluster(t)
	c.SetReplication(2)
	e.Go("client", func(p *sim.Proc) {
		ctx := mkCtx(p)
		ino, err := c.MetaCreate(ctx, "/f")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := c.Write(ctx, ino, 0, 1<<20); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		primary := c.PlacementOf(ino, 0)
		c.osds[primary].Crash()

		// The acting primary is down: the plain write fails fast.
		if err := c.Write(ctx, ino, 0, 2<<20); !errors.Is(err, ErrOSDDown) {
			t.Errorf("write to down primary: err=%v, want ErrOSDDown", err)
		}
		// Advancing the acting member persists through the replica.
		if err := c.WriteReplica(ctx, ino, 0, 2<<20, 1); err != nil {
			t.Errorf("write via replica: %v", err)
		}
		if got := c.StoredSize(ino); got != 2<<20 {
			t.Errorf("StoredSize = %d during outage, want %d", got, 2<<20)
		}
		// Auto-routed reads tie-break to the down primary and surface the
		// fault; pinning the replica works.
		if err := c.Read(ctx, ino, 0, 2<<20); !errors.Is(err, ErrOSDDown) {
			t.Errorf("read via down primary: err=%v, want ErrOSDDown", err)
		}
		if err := c.ReadReplica(ctx, ino, 0, 2<<20, 1); err != nil {
			t.Errorf("read via replica: %v", err)
		}

		c.osds[primary].Restart()
		id := objectID{ino: ino, idx: 0}
		if end := c.osds[primary].objects[id]; end != 2<<20 {
			t.Errorf("backfill after restart: primary holds end=%d, want %d", end, 2<<20)
		}
		if err := c.Read(ctx, ino, 0, 2<<20); err != nil {
			t.Errorf("read after restart: %v", err)
		}
		if got := c.StoredSize(ino); got != 2<<20 {
			t.Errorf("StoredSize = %d after restart, want %d", got, 2<<20)
		}
	})
	e.Run()
}

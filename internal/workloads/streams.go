package workloads

// StreamSeed derives the RNG seed of one worker thread's random stream
// from the workload instance seed, the workload name, and the thread
// id. The previous `Seed + tid*prime` derivation produced linearly
// related (and occasionally colliding) streams across workloads that
// share a base seed — two generators whose seeds differ by a small
// lattice offset draw visibly correlated sequences from math/rand's
// LFSR. Hashing all three inputs through a splitmix64-style finalizer
// makes every (seed, workload, tid) triple an independent stream while
// staying exactly reproducible.
func StreamSeed(seed int64, workload string, tid int) int64 {
	x := uint64(seed)
	// Fold the workload name in FNV-1a style so distinct workloads
	// sharing a seed get distinct stream families.
	const fnvPrime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(workload); i++ {
		h ^= uint64(workload[i])
		h *= fnvPrime
	}
	x ^= h
	x += uint64(tid)*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	return int64(splitmix64(x))
}

// splitmix64 is the finalizer of Steele et al.'s SplitMix generator: a
// bijective avalanche over 64 bits, so nearby inputs map to unrelated
// outputs.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

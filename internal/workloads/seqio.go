package workloads

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// SeqIO generates the Filebench Singlestreamwrite/Singlestreamread
// micro-workloads: each thread streams sequentially through its own
// file (paper settings: 1 GB file, 16 threads, 1 MB transfers, 120 s).
type SeqIO struct {
	FS        vfsapi.FileSystem
	Dir       string
	Threads   int
	FileSize  int64
	IOSize    int64
	Write     bool // true = Seqwrite, false = Seqread
	NewThread func() *cpu.Thread

	Stats *Stats
}

// Defaults fills unset fields with the paper's configuration.
func (w *SeqIO) Defaults(scale float64) {
	if w.Threads == 0 {
		w.Threads = 16
	}
	if w.FileSize == 0 {
		w.FileSize = int64(float64(1<<30) * scale)
		if w.FileSize < 8<<20 {
			w.FileSize = 8 << 20
		}
	}
	if w.IOSize == 0 {
		w.IOSize = 1 << 20
	}
	if w.Stats == nil {
		w.Stats = NewStats()
	}
}

func (w *SeqIO) path(tid int) string {
	return fmt.Sprintf("%s/stream%02d", w.Dir, tid)
}

// Prepare creates the directory, and for Seqread pre-populates the
// per-thread files so reads hit a warm client cache (the paper's
// cached sequential read).
func (w *SeqIO) Prepare(ctx vfsapi.Ctx) error {
	if err := w.FS.Mkdir(ctx, w.Dir); err != nil && !errors.Is(err, vfsapi.ErrExist) {
		return err
	}
	if w.Write {
		return nil
	}
	for t := 0; t < w.Threads; t++ {
		h, err := w.FS.Open(ctx, w.path(t), vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			return err
		}
		per := w.FileSize / int64(w.Threads)
		for off := int64(0); off < per; off += w.IOSize {
			h.Write(ctx, off, w.IOSize)
		}
		if err := h.Fsync(ctx); err != nil {
			h.Close(ctx)
			return err
		}
		if err := h.Close(ctx); err != nil {
			return err
		}
		// Warm the cache with one full read.
		hr, err := w.FS.Open(ctx, w.path(t), vfsapi.RDONLY)
		if err != nil {
			return err
		}
		for off := int64(0); off < per; off += w.IOSize {
			hr.Read(ctx, off, w.IOSize)
		}
		hr.Close(ctx)
	}
	return nil
}

// Run spawns the streaming threads.
func (w *SeqIO) Run(g *Group, clock Clock) {
	for t := 0; t < w.Threads; t++ {
		t := t
		g.Go("seqio", func(p *sim.Proc) { w.worker(p, t, clock) })
	}
}

func (w *SeqIO) worker(p *sim.Proc, tid int, clock Clock) {
	th := w.NewThread()
	ctx := ctxFor(p, th)
	per := w.FileSize / int64(w.Threads)
	for !clock.Done() {
		flags := vfsapi.RDONLY
		if w.Write {
			// Rewrite in place: truncating would discard the dirty data
			// and bypass the writeback path the benchmark exercises.
			flags = vfsapi.CREATE | vfsapi.WRONLY
		}
		h, err := w.FS.Open(ctx, w.path(tid), flags)
		if err != nil {
			w.Stats.Errors++
			return
		}
		for off := int64(0); off < per && !clock.Done(); off += w.IOSize {
			start := clock.Eng.Now()
			var moved int64
			if w.Write {
				moved, _ = h.Write(ctx, off, w.IOSize)
			} else {
				moved, _ = h.Read(ctx, off, w.IOSize)
			}
			if clock.Measuring() {
				w.Stats.Record(moved, clock.Eng.Now()-start)
			}
		}
		h.Close(ctx)
	}
}

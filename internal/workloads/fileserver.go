package workloads

import (
	"errors"
	"math/rand"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// Fileserver emulates the Filebench fileserver personality: a pool of
// worker threads performing whole-file writes, whole-file reads,
// appends, stats and deletes over a directory of medium-size files
// (paper settings: 5 MB mean size, 1000 files, 50 threads, 120 s).
type Fileserver struct {
	// FS is the filesystem under test (a Table 1 configuration).
	FS vfsapi.FileSystem
	// Dir is the working directory inside FS.
	Dir string
	// Threads is the worker count (Filebench default 50).
	Threads int
	// Files is the fileset size.
	Files int
	// MeanFileSize is the mean file size.
	MeanFileSize int64
	// IOSize is the transfer unit (Filebench default 1 MB writes).
	IOSize int64
	// AppendSize is the mean append size (Filebench default 16 KB).
	AppendSize int64
	// NewThread supplies a pinned CPU thread per worker.
	NewThread func() *cpu.Thread
	// Seed makes the instance deterministic.
	Seed int64

	// Stats collects measured operations.
	Stats *Stats
}

// Defaults fills unset fields with the paper's configuration scaled by
// the given factor (1.0 = paper scale).
func (w *Fileserver) Defaults(scale float64) {
	if w.Threads == 0 {
		// The Filebench default is 50 threads over 1000 files; the
		// thread count scales with the fileset so the per-file
		// contention of the personality is preserved at small scale.
		w.Threads = int(50 * scale)
		if w.Threads < 8 {
			w.Threads = 8
		}
	}
	if w.Files == 0 {
		w.Files = int(1000 * scale)
		if w.Files < 10 {
			w.Files = 10
		}
	}
	if w.MeanFileSize == 0 {
		w.MeanFileSize = 5 << 20
	}
	if w.IOSize == 0 {
		w.IOSize = 1 << 20
	}
	if w.AppendSize == 0 {
		w.AppendSize = 16 << 10
	}
	if w.Stats == nil {
		w.Stats = NewStats()
	}
}

// Prepare creates the initial fileset (charged to the caller thread).
func (w *Fileserver) Prepare(ctx vfsapi.Ctx) error {
	if err := w.FS.Mkdir(ctx, w.Dir); err != nil && !errors.Is(err, vfsapi.ErrExist) {
		return err
	}
	rng := rand.New(rand.NewSource(w.Seed))
	for i := 0; i < w.Files; i++ {
		h, err := w.FS.Open(ctx, fileName(w.Dir, i), vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			return err
		}
		size := sizedRand(rng, w.MeanFileSize)
		for off := int64(0); off < size; off += w.IOSize {
			n := w.IOSize
			if off+n > size {
				n = size - off
			}
			if _, err := h.Write(ctx, off, n); err != nil {
				h.Close(ctx)
				return err
			}
		}
		if err := h.Close(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Run spawns the worker threads into g; they loop until clock.Done().
func (w *Fileserver) Run(g *Group, clock Clock) {
	for t := 0; t < w.Threads; t++ {
		t := t
		g.Go("fileserver", func(p *sim.Proc) {
			w.worker(p, t, clock)
		})
	}
}

// worker runs the Filebench fileserver flow: each iteration deletes and
// recreates a file with a whole-file write, appends to another, reads a
// whole file back, and stats a fourth — the personality's exact op
// sequence, giving roughly equal read and write volume.
func (w *Fileserver) worker(p *sim.Proc, tid int, clock Clock) {
	th := w.NewThread()
	ctx := ctxFor(p, th)
	rng := rand.New(rand.NewSource(StreamSeed(w.Seed, "fileserver", tid)))
	for !clock.Done() {
		start := clock.Eng.Now()
		var moved int64

		// createfile + writewholefile + closefile.
		path := fileName(w.Dir, rng.Intn(w.Files))
		w.FS.Unlink(ctx, path)
		if h, err := w.FS.Open(ctx, path, vfsapi.CREATE|vfsapi.WRONLY); err == nil {
			size := sizedRand(rng, w.MeanFileSize)
			for off := int64(0); off < size; off += w.IOSize {
				n := w.IOSize
				if off+n > size {
					n = size - off
				}
				h.Write(ctx, off, n)
				moved += n
			}
			h.Close(ctx)
		} else {
			w.fail()
		}

		// openfile + appendfilerand + closefile.
		path = fileName(w.Dir, rng.Intn(w.Files))
		if h, err := w.FS.Open(ctx, path, vfsapi.WRONLY|vfsapi.APPEND); err == nil {
			n := sizedRand(rng, w.AppendSize)
			h.Append(ctx, n)
			moved += n
			h.Close(ctx)
		} else {
			w.fail()
		}

		// openfile + readwholefile + closefile.
		path = fileName(w.Dir, rng.Intn(w.Files))
		if h, err := w.FS.Open(ctx, path, vfsapi.RDONLY); err == nil {
			size := h.Size()
			for off := int64(0); off < size; off += w.IOSize {
				got, _ := h.Read(ctx, off, w.IOSize)
				moved += got
				if got == 0 {
					break
				}
			}
			h.Close(ctx)
		} else {
			w.fail()
		}

		// statfile.
		if _, err := w.FS.Stat(ctx, fileName(w.Dir, rng.Intn(w.Files))); err != nil {
			w.fail()
		}

		if clock.Measuring() {
			w.Stats.Record(moved, clock.Eng.Now()-start)
		}
	}
}

func (w *Fileserver) fail() { w.Stats.Errors++ }

// Package workloads implements the eight workload generators of the
// paper's Table 2: Filebench Fileserver and Webserver, the sequential
// Seqwrite/Seqread micro-workloads, Stress-ng RandomIO, the Sysbench
// CPU benchmark, a from-scratch LSM key-value store standing in for
// RocksDB, a Lighttpd-style container startup sequence, and the custom
// Fileappend/Fileread benchmarks.
//
// Every workload drives a vfsapi.FileSystem, so the same generator runs
// unchanged against each Table 1 configuration.
package workloads

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// Stats aggregates what a workload instance measured inside its
// measurement window.
type Stats struct {
	Ops     metrics.Counter
	Latency *metrics.Histogram
	Errors  uint64
}

// NewStats returns an empty stats collector.
func NewStats() *Stats { return &Stats{Latency: metrics.NewHistogram()} }

// Record adds one completed operation of n bytes with the given latency.
func (s *Stats) Record(n int64, lat time.Duration) {
	s.Ops.Add(n)
	s.Latency.Record(lat)
}

// ThroughputMBps returns MB/s over the window.
func (s *Stats) ThroughputMBps(window time.Duration) float64 {
	return s.Ops.Throughput(window) / (1 << 20)
}

// Group tracks completion of a set of workload threads so experiments
// can stop background services and drain the engine.
type Group struct {
	eng     *sim.Engine
	pending int
	q       *sim.WaitQueue
}

// NewGroup creates a completion group.
func NewGroup(eng *sim.Engine) *Group {
	return &Group{eng: eng, q: sim.NewWaitQueue(eng, "workload-group")}
}

// Go spawns a workload thread tracked by the group.
func (g *Group) Go(name string, fn func(p *sim.Proc)) {
	g.pending++
	g.eng.Go(name, func(p *sim.Proc) {
		fn(p)
		g.pending--
		if g.pending == 0 {
			g.q.Broadcast()
		}
	})
}

// Wait parks until every spawned thread has finished.
func (g *Group) Wait(p *sim.Proc) {
	for g.pending > 0 {
		g.q.Wait(p)
	}
}

// Pending returns the number of unfinished threads.
func (g *Group) Pending() int { return g.pending }

// Clock abstracts the measurement window: operations recorded before
// From are warmup and discarded.
type Clock struct {
	Eng  *sim.Engine
	From time.Duration
	Stop time.Duration
}

// Measuring reports whether the current time is inside the window.
func (c Clock) Measuring() bool {
	now := c.Eng.Now()
	return now >= c.From && (c.Stop <= 0 || now < c.Stop)
}

// Done reports whether the workload deadline has passed.
func (c Clock) Done() bool {
	return c.Stop > 0 && c.Eng.Now() >= c.Stop
}

// Window returns the measurement window length.
func (c Clock) Window() time.Duration {
	if c.Stop <= 0 {
		return c.Eng.Now() - c.From
	}
	return c.Stop - c.From
}

// fileName builds a deterministic fileset path.
func fileName(dir string, i int) string {
	return fmt.Sprintf("%s/f%05d", dir, i)
}

// sizedRand draws a file size around mean (0.5x..1.5x) — a stand-in for
// Filebench's gamma-distributed file sizes.
func sizedRand(rng *rand.Rand, mean int64) int64 {
	if mean <= 1 {
		return 1
	}
	return mean/2 + rng.Int63n(mean)
}

// ctxFor builds a filesystem context for a workload thread.
func ctxFor(p *sim.Proc, t *cpu.Thread) vfsapi.Ctx { return vfsapi.Ctx{P: p, T: t} }

// Table2 returns the paper's workload symbol inventory (Table 2).
func Table2() [][2]string {
	return [][2]string{
		{"FLS", "Fileserver (Filebench) on Ceph"},
		{"RND", "Random I/O with readahead (Stress-ng) on ext4/RAID0"},
		{"SSB", "CPU benchmark (Sysbench)"},
		{"WBS", "Webserver (Filebench) on ext4/RAID0"},
		{"1FLS/D", "1x Fileserver on user-level Danaus/Ceph cluster"},
		{"7FLS/D", "7x Fileserver on user-level Danaus/Ceph cluster"},
		{"1FLS/K", "1x Fileserver on kernel CephFS/Ceph cluster"},
		{"7FLS/K", "7x Fileserver on kernel CephFS/Ceph cluster"},
		{"X+Y", "X next to Y, X=(1|7)FLS/(D|K), Y=(RND|SSB|WBS)"},
	}
}

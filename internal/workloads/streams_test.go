package workloads

import (
	"math/rand"
	"testing"
)

// TestStreamSeedIndependence is the regression test for the per-tenant
// RNG stream derivation: the old `Seed + tid*prime` scheme gave two
// workloads sharing a base seed linearly related generator seeds, so
// their streams could collide outright (tid1*p1 == tid2*p2 + delta) or
// correlate. StreamSeed must give every (seed, workload, tid) triple a
// distinct seed, and remain exactly reproducible.
func TestStreamSeedIndependence(t *testing.T) {
	workloadNames := []string{"fileserver", "webserver", "kvput", "kvget", "randio"}
	seen := map[int64]string{}
	for _, seed := range []int64{0, 1, 2, 7, 99} {
		for _, name := range workloadNames {
			for tid := 0; tid < 64; tid++ {
				s := StreamSeed(seed, name, tid)
				if prev, dup := seen[s]; dup {
					t.Fatalf("stream seed collision: (%d,%s,%d) == %s", seed, name, tid, prev)
				}
				seen[s] = name
			}
		}
	}

	if a, b := StreamSeed(1, "fileserver", 3), StreamSeed(1, "fileserver", 3); a != b {
		t.Fatalf("StreamSeed not reproducible: %d vs %d", a, b)
	}

	// The old derivation's collision mode: fileserver tid*7919 and
	// webserver tid*104729 from the same base seed. The 7919*119 ==
	// 104729*9 + 2 family of near-misses made streams correlated; with
	// the hash the first draws of sibling streams must differ.
	draws := map[uint64]bool{}
	for tid := 0; tid < 16; tid++ {
		for _, name := range workloadNames {
			r := rand.New(rand.NewSource(StreamSeed(5, name, tid)))
			draws[r.Uint64()] = true
		}
	}
	if len(draws) != 16*len(workloadNames) {
		t.Fatalf("first draws of sibling streams collide: %d distinct of %d", len(draws), 16*len(workloadNames))
	}
}

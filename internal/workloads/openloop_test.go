package workloads

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/vfsapi"
)

func prepOpenLoopFile(t *testing.T, r *rig, p *sim.Proc, size int64) {
	t.Helper()
	ctx := vfsapi.Ctx{P: p, T: r.newThread()}
	h, err := r.mem.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := h.Write(ctx, 0, size); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := h.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// The open-loop generator offers load independent of completions and
// accounts every arrival exactly once.
func TestOpenLoopAccounting(t *testing.T) {
	r := newRig(t)
	w := &OpenLoop{
		FS: r.mem, Path: "/f", FileSize: 1 << 20, OpSize: 64 << 10,
		Rate: 2000, Seed: 5, NewThread: r.newThread, Stats: NewStats(),
	}
	r.run(t, func(p *sim.Proc) {
		prepOpenLoopFile(t, r, p, 1<<20)
		g := NewGroup(r.eng)
		w.Run(g, r.clock(5*time.Millisecond, 50*time.Millisecond))
		g.Wait(p)
	})
	if w.Offered == 0 {
		t.Fatal("no arrivals generated")
	}
	if w.Offered != w.Completed+w.Shed+w.Failed {
		t.Fatalf("accounting: offered %d != completed %d + shed %d + failed %d",
			w.Offered, w.Completed, w.Shed, w.Failed)
	}
	if w.Shed != 0 || w.Failed != 0 {
		t.Fatalf("unthrottled memfs shed/failed ops: %d/%d", w.Shed, w.Failed)
	}
	if w.Stats.Ops.Ops == 0 {
		t.Fatal("no operations recorded in the measurement window")
	}
}

// Same seed, same arrivals: the Poisson process is deterministic.
func TestOpenLoopDeterministic(t *testing.T) {
	counts := make([]uint64, 2)
	for i := range counts {
		r := newRig(t)
		w := &OpenLoop{
			FS: r.mem, Path: "/f", FileSize: 1 << 20, OpSize: 64 << 10,
			Rate: 3000, Seed: 11, NewThread: r.newThread,
		}
		r.run(t, func(p *sim.Proc) {
			prepOpenLoopFile(t, r, p, 1<<20)
			g := NewGroup(r.eng)
			w.Run(g, r.clock(time.Millisecond, 40*time.Millisecond))
			g.Wait(p)
		})
		counts[i] = w.Offered
	}
	if counts[0] != counts[1] {
		t.Fatalf("same-seed arrival counts diverged: %d vs %d", counts[0], counts[1])
	}
}

// shedFS rejects every open with ErrOverload, standing in for a
// saturated admission controller.
type shedFS struct{ vfsapi.FileSystem }

func (s shedFS) Open(vfsapi.Ctx, string, vfsapi.OpenFlag) (vfsapi.Handle, error) {
	return nil, vfsapi.ErrOverload
}

// ErrOverload counts as shed, not failed.
func TestOpenLoopCountsShed(t *testing.T) {
	r := newRig(t)
	w := &OpenLoop{
		FS: shedFS{r.mem}, Path: "/f", FileSize: 1 << 20, OpSize: 64 << 10,
		Rate: 2000, Seed: 5, NewThread: r.newThread,
	}
	r.run(t, func(p *sim.Proc) {
		g := NewGroup(r.eng)
		w.Run(g, r.clock(time.Millisecond, 30*time.Millisecond))
		g.Wait(p)
	})
	if w.Offered == 0 || w.Shed != w.Offered || w.Failed != 0 || w.Completed != 0 {
		t.Fatalf("shed accounting: offered %d shed %d failed %d completed %d",
			w.Offered, w.Shed, w.Failed, w.Completed)
	}
}

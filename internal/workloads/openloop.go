package workloads

import (
	"errors"
	"math/rand"
	"time"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// OpenLoop is a production-shaped open-loop load generator: requests
// arrive as a seeded Poisson process at a configurable offered rate,
// independent of how fast earlier requests complete — unlike the
// closed-loop benchmark clones, queueing delay does not throttle the
// arrival stream, so sustained overload actually accumulates. Each
// arrival opens Path, reads OpSize bytes at a random aligned offset,
// and closes. Arrivals shed by an admission controller
// (vfsapi.ErrOverload) are counted, not retried: the open-loop client
// has moved on.
type OpenLoop struct {
	FS       vfsapi.FileSystem
	Path     string
	FileSize int64 // addressable range for random offsets
	OpSize   int64 // bytes read per request (default 256 KiB)
	// Rate is the offered load in requests per second of virtual time.
	Rate float64
	// Seed drives the arrival process and offset choice.
	Seed      int64
	NewThread func() *cpu.Thread

	Stats *Stats // per-request latency inside the measurement window

	// Offered counts arrivals generated, Completed successful requests,
	// Shed requests refused with ErrOverload, Failed other errors —
	// over the whole run, not just the measurement window.
	Offered   uint64
	Completed uint64
	Shed      uint64
	Failed    uint64
}

// Run starts the dispatcher, which spawns one short-lived thread per
// arrival until the clock expires.
func (w *OpenLoop) Run(g *Group, clock Clock) {
	if w.OpSize <= 0 {
		w.OpSize = 256 << 10
	}
	if w.Rate <= 0 {
		w.Rate = 100
	}
	rng := rand.New(rand.NewSource(w.Seed))
	g.Go("openloop-dispatch", func(p *sim.Proc) {
		for !clock.Done() {
			gap := time.Duration(rng.ExpFloat64() / w.Rate * float64(time.Second))
			if gap <= 0 {
				gap = time.Nanosecond
			}
			p.Sleep(gap)
			if clock.Done() {
				return
			}
			w.Offered++
			off := w.offset(rng)
			g.Go("openloop-req", func(rp *sim.Proc) {
				w.request(rp, clock, off)
			})
		}
	})
}

// offset draws a random OpSize-aligned offset inside the file.
func (w *OpenLoop) offset(rng *rand.Rand) int64 {
	slots := w.FileSize / w.OpSize
	if slots <= 1 {
		return 0
	}
	return rng.Int63n(slots) * w.OpSize
}

func (w *OpenLoop) request(p *sim.Proc, clock Clock, off int64) {
	th := w.NewThread()
	ctx := ctxFor(p, th)
	start := clock.Eng.Now()
	measuring := clock.Measuring()
	h, err := w.FS.Open(ctx, w.Path, vfsapi.RDONLY)
	if err != nil {
		w.fail(err)
		return
	}
	_, err = h.Read(ctx, off, w.OpSize)
	h.Close(ctx)
	if err != nil {
		w.fail(err)
		return
	}
	w.Completed++
	if measuring && w.Stats != nil {
		w.Stats.Record(w.OpSize, clock.Eng.Now()-start)
	}
}

func (w *OpenLoop) fail(err error) {
	if errors.Is(err, vfsapi.ErrOverload) {
		w.Shed++
		return
	}
	w.Failed++
}

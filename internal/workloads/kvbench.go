package workloads

import (
	"errors"
	"math/rand"

	"repro/internal/cpu"
	"repro/internal/kvstore"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// KVPut drives random inserts into a kvstore.DB (the paper's RocksDB
// put workload: 1 thread inserting random 9 B keys with 128 KB values
// until TotalBytes have been written).
type KVPut struct {
	DB         *kvstore.DB
	TotalBytes int64
	ValueSize  int64
	Threads    int
	Seed       int64
	NewThread  func() *cpu.Thread

	Stats *Stats
}

// Defaults fills unset fields with the paper's put configuration.
func (w *KVPut) Defaults(scale float64) {
	if w.Threads == 0 {
		w.Threads = 1
	}
	if w.ValueSize == 0 {
		w.ValueSize = 128 << 10
	}
	if w.TotalBytes == 0 {
		w.TotalBytes = int64(float64(1<<30) * scale)
		if w.TotalBytes < 32<<20 {
			w.TotalBytes = 32 << 20
		}
	}
	if w.Stats == nil {
		w.Stats = NewStats()
	}
}

// Run spawns the put threads; each inserts its share of TotalBytes.
func (w *KVPut) Run(g *Group, clock Clock) {
	per := w.TotalBytes / int64(w.Threads)
	for t := 0; t < w.Threads; t++ {
		t := t
		g.Go("kvput", func(p *sim.Proc) {
			th := w.NewThread()
			ctx := ctxFor(p, th)
			rng := rand.New(rand.NewSource(StreamSeed(w.Seed, "kvput", t)))
			for written := int64(0); written < per; written += w.ValueSize {
				start := clock.Eng.Now()
				if err := w.DB.Put(ctx, rng.Uint64(), w.ValueSize); err != nil {
					w.Stats.Errors++
					continue
				}
				if clock.Measuring() {
					w.Stats.Record(w.ValueSize, clock.Eng.Now()-start)
				}
			}
		})
	}
}

// KVGet drives random point lookups (the paper's out-of-core read
// workload: read back TotalBytes with random gets against an 8 GB
// dataset that exceeds the client cache).
type KVGet struct {
	DB         *kvstore.DB
	Keys       []uint64 // population to draw from
	TotalBytes int64
	ValueSize  int64
	Threads    int
	Seed       int64
	NewThread  func() *cpu.Thread

	Stats *Stats
}

// Defaults fills unset fields with the paper's get configuration.
func (w *KVGet) Defaults(scale float64) {
	if w.Threads == 0 {
		w.Threads = 1
	}
	if w.ValueSize == 0 {
		w.ValueSize = 128 << 10
	}
	if w.TotalBytes == 0 {
		w.TotalBytes = int64(float64(8<<30) * scale)
		if w.TotalBytes < 32<<20 {
			w.TotalBytes = 32 << 20
		}
	}
	if w.Stats == nil {
		w.Stats = NewStats()
	}
}

// Populate inserts a dataset of TotalBytes and returns the keys.
func Populate(ctx vfsapi.Ctx, db *kvstore.DB, totalBytes, valueSize int64, seed int64) ([]uint64, error) {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, 0, totalBytes/valueSize)
	for written := int64(0); written < totalBytes; written += valueSize {
		k := rng.Uint64()
		if err := db.Put(ctx, k, valueSize); err != nil {
			return nil, err
		}
		keys = append(keys, k)
	}
	return keys, nil
}

// Run spawns the get threads; each performs its share of lookups.
func (w *KVGet) Run(g *Group, clock Clock) {
	if len(w.Keys) == 0 {
		panic("workloads: KVGet requires a populated key set")
	}
	per := w.TotalBytes / int64(w.Threads) / w.ValueSize
	for t := 0; t < w.Threads; t++ {
		t := t
		g.Go("kvget", func(p *sim.Proc) {
			th := w.NewThread()
			ctx := ctxFor(p, th)
			rng := rand.New(rand.NewSource(StreamSeed(w.Seed, "kvget", t)))
			for i := int64(0); i < per; i++ {
				key := w.Keys[rng.Intn(len(w.Keys))]
				start := clock.Eng.Now()
				size, err := w.DB.Get(ctx, key)
				if err != nil && !errors.Is(err, kvstore.ErrNotFound) {
					w.Stats.Errors++
					continue
				}
				if clock.Measuring() {
					w.Stats.Record(size, clock.Eng.Now()-start)
				}
			}
		})
	}
}

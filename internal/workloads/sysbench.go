package workloads

import (
	"time"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// Sysbench emulates the Sysbench CPU benchmark: threads compute prime
// numbers in fixed-size events and report per-event latency. It touches
// no filesystem — in the paper it demonstrates that even pure
// computation suffers when the kernel serves a neighbour's I/O with the
// pool's cores (Fig 6c).
type Sysbench struct {
	Threads   int
	EventCPU  time.Duration // pure computation per event
	NewThread func() *cpu.Thread

	Stats *Stats
}

// Defaults fills unset fields (paper: 2 threads, 64-bit prime search).
func (w *Sysbench) Defaults() {
	if w.Threads == 0 {
		w.Threads = 2
	}
	if w.EventCPU == 0 {
		w.EventCPU = time.Millisecond
	}
	if w.Stats == nil {
		w.Stats = NewStats()
	}
}

// Run spawns the compute threads.
func (w *Sysbench) Run(g *Group, clock Clock) {
	for t := 0; t < w.Threads; t++ {
		g.Go("sysbench", func(p *sim.Proc) { w.worker(p, clock) })
	}
}

func (w *Sysbench) worker(p *sim.Proc, clock Clock) {
	th := w.NewThread()
	for !clock.Done() {
		start := clock.Eng.Now()
		th.Exec(p, cpu.User, w.EventCPU)
		if clock.Measuring() {
			// Latency of the event includes any time spent waiting for
			// a core occupied by foreign kernel work.
			w.Stats.Record(0, clock.Eng.Now()-start)
		}
	}
}

package workloads

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// Startup emulates starting a Lighttpd-style webserver container
// (Fig 8): the exec of the initial command and the mmap of its dynamic
// libraries generate kernel-initiated I/O on the LEGACY path, while the
// preparation of application files (config reads, pid file, logs) uses
// the default path.
type Startup struct {
	// Default and Legacy are the container's two interfaces.
	Default vfsapi.FileSystem
	Legacy  vfsapi.FileSystem
	// Params supplies the startup traffic sizes.
	Params *model.Params
	// NewThread supplies the container's init thread.
	NewThread func() *cpu.Thread

	Stats *Stats
}

// ProvisionImage creates the binary, libraries and config files a
// startup expects, under dir in the shared cluster namespace. provision
// is a zero-cost file creator (e.g. Cluster.Provision).
func ProvisionImage(params *model.Params, dir string, provision func(path string, size int64) error) error {
	if err := provision(dir+"/usr/sbin/lighttpd", params.ExecBinaryBytes); err != nil {
		return err
	}
	nLibs := 6
	per := params.MmapLibraryBytes / int64(nLibs)
	for i := 0; i < nLibs; i++ {
		if err := provision(fmt.Sprintf("%s/usr/lib/lib%02d.so", dir, i), per); err != nil {
			return err
		}
	}
	for i := 0; i < params.StartupOpCount; i++ {
		if err := provision(fmt.Sprintf("%s/etc/lighttpd/conf%02d", dir, i), 2<<10); err != nil {
			return err
		}
	}
	if err := provision(dir+"/var/www/index.html", params.StartupAppFileBytes); err != nil {
		return err
	}
	// Runtime directories for the pid file and log.
	if err := provision(dir+"/var/run/.keep", 0); err != nil {
		return err
	}
	return provision(dir+"/var/log/.keep", 0)
}

// Run starts one container and records the startup latency.
func (w *Startup) Run(g *Group, clock Clock) {
	g.Go("startup", func(p *sim.Proc) { w.startOne(p, clock) })
}

func (w *Startup) startOne(p *sim.Proc, clock Clock) {
	th := w.NewThread()
	ctx := ctxFor(p, th)
	params := w.Params
	start := clock.Eng.Now()

	// exec(2): the kernel reads the program image — legacy path.
	w.readWhole(ctx, w.Legacy, "/usr/sbin/lighttpd", 128<<10)

	// mmap(2) of the dynamic libraries — legacy path, page-sized faults
	// batched by readahead.
	for i := 0; i < 6; i++ {
		w.readWhole(ctx, w.Legacy, fmt.Sprintf("/usr/lib/lib%02d.so", i), 128<<10)
	}

	// Configuration parsing — user-level calls on the default path.
	for i := 0; i < params.StartupOpCount; i++ {
		path := fmt.Sprintf("/etc/lighttpd/conf%02d", i)
		if _, err := w.Default.Stat(ctx, path); err != nil {
			w.Stats.Errors++
			continue
		}
		w.readWhole(ctx, w.Default, path, 4<<10)
	}

	// Application file preparation: document root scan + pid + log.
	w.readWhole(ctx, w.Default, "/var/www/index.html", 128<<10)
	if h, err := w.Default.Open(ctx, "/var/run/lighttpd.pid", vfsapi.CREATE|vfsapi.WRONLY); err == nil {
		h.Write(ctx, 0, 16)
		h.Close(ctx)
	} else {
		w.Stats.Errors++
	}
	if h, err := w.Default.Open(ctx, "/var/log/lighttpd.log", vfsapi.CREATE|vfsapi.APPEND); err == nil {
		h.Append(ctx, 4<<10)
		h.Close(ctx)
	} else {
		w.Stats.Errors++
	}

	w.Stats.Record(0, clock.Eng.Now()-start)
}

func (w *Startup) readWhole(ctx vfsapi.Ctx, fs vfsapi.FileSystem, path string, chunk int64) {
	h, err := fs.Open(ctx, path, vfsapi.RDONLY)
	if err != nil {
		w.Stats.Errors++
		return
	}
	size := h.Size()
	for off := int64(0); off < size; off += chunk {
		if got, _ := h.Read(ctx, off, chunk); got == 0 {
			break
		}
	}
	h.Close(ctx)
}

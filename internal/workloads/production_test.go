package workloads

import (
	"math"
	"testing"
	"time"
)

func TestDiurnalMultiplier(t *testing.T) {
	flat := Diurnal{}
	if m := flat.Multiplier(3 * time.Second); m != 1 {
		t.Errorf("flat curve multiplier = %v, want 1", m)
	}
	d := Diurnal{Period: 24 * time.Second, Trough: 0.25}
	if m := d.Multiplier(0); math.Abs(m-0.25) > 1e-9 {
		t.Errorf("trough multiplier = %v, want 0.25", m)
	}
	if m := d.Multiplier(12 * time.Second); math.Abs(m-1) > 1e-9 {
		t.Errorf("peak multiplier = %v, want 1", m)
	}
	for _, at := range []time.Duration{0, 3 * time.Second, 17 * time.Second, 30 * time.Second} {
		if m := d.Multiplier(at); m < 0.25-1e-9 || m > 1+1e-9 {
			t.Errorf("multiplier(%v) = %v outside [trough, 1]", at, m)
		}
	}
	// Clamping: a nonsense trough still yields a valid curve.
	bad := Diurnal{Period: time.Second, Trough: 7}
	if m := bad.Multiplier(0); m < 0 || m > 1 {
		t.Errorf("clamped multiplier = %v", m)
	}
}

func planFor(seed int64) []Arrival {
	w := &Production{Seed: seed, PeakRate: 2000, FileSize: 1 << 20,
		Diurnal: Diurnal{Period: 2 * time.Second, Trough: 0.3}}
	return w.Plan(2 * time.Second)
}

func TestPlanDeterministicAcrossSeeds(t *testing.T) {
	a, b := planFor(7), planFor(7)
	if len(a) == 0 {
		t.Fatal("empty plan")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different plan lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := planFor(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced an identical plan")
	}
}

func TestPlanZipfSkew(t *testing.T) {
	plan := planFor(3)
	counts := map[int]int{}
	for _, a := range plan {
		counts[a.User]++
	}
	// User 0 is the hottest rank of the Zipf draw; it must dominate a
	// mid-popularity user by a wide margin.
	if counts[0] == 0 {
		t.Fatal("hottest user never drawn")
	}
	if counts[0] < 5*counts[100] {
		t.Errorf("weak skew: user0=%d user100=%d", counts[0], counts[100])
	}
}

func TestPlanDiurnalShape(t *testing.T) {
	// One full period: the half around the peak (middle of the period)
	// must receive more arrivals than the trough-adjacent quarters.
	w := &Production{Seed: 11, PeakRate: 5000, FileSize: 1 << 20,
		Diurnal: Diurnal{Period: 4 * time.Second, Trough: 0.1}}
	plan := w.Plan(4 * time.Second)
	var edge, middle int
	for _, a := range plan {
		frac := float64(a.At) / float64(4*time.Second)
		if frac >= 0.25 && frac < 0.75 {
			middle++
		} else {
			edge++
		}
	}
	if middle < 2*edge {
		t.Errorf("diurnal shape missing: middle=%d edge=%d", middle, edge)
	}
}

func TestPlanClassMix(t *testing.T) {
	w := &Production{Seed: 5, PeakRate: 5000, FileSize: 1 << 20}
	plan := w.Plan(2 * time.Second)
	counts := make([]int, len(w.Classes))
	for _, a := range plan {
		counts[a.Class]++
	}
	// DefaultClasses weights 9:1 — the read class must dominate but the
	// commit class must be present.
	if counts[1] == 0 {
		t.Fatal("commit class never drawn")
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 6 || ratio > 13 {
		t.Errorf("class mix ratio %.1f, want ~9", ratio)
	}
}

func TestPlanOffsetsAligned(t *testing.T) {
	w := &Production{Seed: 2, PeakRate: 1000, FileSize: 1 << 20, OpSize: 64 << 10}
	for _, a := range w.Plan(time.Second) {
		if a.Off%(64<<10) != 0 || a.Off < 0 || a.Off >= 1<<20 {
			t.Fatalf("offset %d not aligned inside the file", a.Off)
		}
	}
}

package workloads

import (
	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// FileAppend is the paper's custom Fileappend benchmark (Fig 11a): open
// a large existing file in O_WRONLY|O_APPEND, write AppendBytes and
// close. Over a union filesystem the open triggers a full file-level
// copy-up, so the generated I/O is roughly 50/50 read/write.
type FileAppend struct {
	FS          vfsapi.FileSystem
	Path        string
	AppendBytes int64
	NewThread   func() *cpu.Thread

	Stats *Stats
}

// Run performs the append on one container thread.
func (w *FileAppend) Run(g *Group, clock Clock) {
	if w.AppendBytes == 0 {
		w.AppendBytes = 1 << 20
	}
	g.Go("fileappend", func(p *sim.Proc) {
		th := w.NewThread()
		ctx := ctxFor(p, th)
		start := clock.Eng.Now()
		h, err := w.FS.Open(ctx, w.Path, vfsapi.WRONLY|vfsapi.APPEND)
		if err != nil {
			w.Stats.Errors++
			return
		}
		h.Append(ctx, w.AppendBytes)
		h.Close(ctx)
		w.Stats.Record(w.AppendBytes, clock.Eng.Now()-start)
	})
}

// FileRead is the paper's custom Fileread benchmark (Fig 11b): open a
// large file read-only and stream it in 1 MB blocks.
type FileRead struct {
	FS        vfsapi.FileSystem
	Path      string
	BlockSize int64
	NewThread func() *cpu.Thread

	Stats *Stats
}

// Run performs the sequential read on one container thread.
func (w *FileRead) Run(g *Group, clock Clock) {
	if w.BlockSize == 0 {
		w.BlockSize = 1 << 20
	}
	g.Go("fileread", func(p *sim.Proc) {
		th := w.NewThread()
		ctx := ctxFor(p, th)
		start := clock.Eng.Now()
		h, err := w.FS.Open(ctx, w.Path, vfsapi.RDONLY)
		if err != nil {
			w.Stats.Errors++
			return
		}
		var total int64
		size := h.Size()
		for off := int64(0); off < size; off += w.BlockSize {
			got, _ := h.Read(ctx, off, w.BlockSize)
			total += got
			if got == 0 {
				break
			}
		}
		h.Close(ctx)
		w.Stats.Record(total, clock.Eng.Now()-start)
	})
}

package workloads

import (
	"errors"
	"math/rand"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// Webserver emulates the Filebench webserver personality: threads read
// whole small files (16 KB mean) and periodically append to a shared
// log (paper settings: 50 threads, 200K files on ext4/RAID0).
type Webserver struct {
	FS           vfsapi.FileSystem
	Dir          string
	Threads      int
	Files        int
	MeanFileSize int64
	LogAppend    int64
	NewThread    func() *cpu.Thread
	Seed         int64

	Stats *Stats
}

// Defaults fills unset fields, scaled from the paper's configuration.
func (w *Webserver) Defaults(scale float64) {
	if w.Threads == 0 {
		w.Threads = 50
	}
	if w.Files == 0 {
		w.Files = int(200000 * scale)
		if w.Files < 100 {
			w.Files = 100
		}
	}
	if w.MeanFileSize == 0 {
		w.MeanFileSize = 16 << 10
	}
	if w.LogAppend == 0 {
		w.LogAppend = 16 << 10
	}
	if w.Stats == nil {
		w.Stats = NewStats()
	}
}

// Prepare creates the fileset and the log.
func (w *Webserver) Prepare(ctx vfsapi.Ctx) error {
	if err := w.FS.Mkdir(ctx, w.Dir); err != nil && !errors.Is(err, vfsapi.ErrExist) {
		return err
	}
	rng := rand.New(rand.NewSource(w.Seed))
	for i := 0; i < w.Files; i++ {
		h, err := w.FS.Open(ctx, fileName(w.Dir, i), vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			return err
		}
		h.Write(ctx, 0, sizedRand(rng, w.MeanFileSize))
		if err := h.Close(ctx); err != nil {
			return err
		}
	}
	h, err := w.FS.Open(ctx, w.Dir+"/weblog", vfsapi.CREATE|vfsapi.WRONLY)
	if err != nil {
		return err
	}
	return h.Close(ctx)
}

// Run spawns the webserver threads.
func (w *Webserver) Run(g *Group, clock Clock) {
	for t := 0; t < w.Threads; t++ {
		t := t
		g.Go("webserver", func(p *sim.Proc) { w.worker(p, t, clock) })
	}
}

func (w *Webserver) worker(p *sim.Proc, tid int, clock Clock) {
	th := w.NewThread()
	ctx := ctxFor(p, th)
	rng := rand.New(rand.NewSource(StreamSeed(w.Seed, "webserver", tid)))
	for !clock.Done() {
		start := clock.Eng.Now()
		var moved int64
		// Ten whole-file reads, then one log append (the Filebench
		// webserver flow).
		for r := 0; r < 10 && !clock.Done(); r++ {
			path := fileName(w.Dir, rng.Intn(w.Files))
			h, err := w.FS.Open(ctx, path, vfsapi.RDONLY)
			if err != nil {
				w.Stats.Errors++
				continue
			}
			got, _ := h.Read(ctx, 0, h.Size())
			moved += got
			h.Close(ctx)
		}
		h, err := w.FS.Open(ctx, w.Dir+"/weblog", vfsapi.WRONLY|vfsapi.APPEND)
		if err == nil {
			h.Append(ctx, w.LogAppend)
			moved += w.LogAppend
			h.Close(ctx)
		} else {
			w.Stats.Errors++
		}
		if clock.Measuring() {
			w.Stats.Record(moved, clock.Eng.Now()-start)
		}
	}
}

package workloads

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// Diurnal shapes an arrival rate over a virtual "day": the offered
// rate swings sinusoidally between Trough×peak at the start of each
// period and the full peak rate half a period in. The zero value
// (Period 0) is a flat curve.
type Diurnal struct {
	Period time.Duration // length of one day; <= 0 disables shaping
	Trough float64       // fraction of peak at the low point, clamped to [0,1]
}

// Multiplier returns the rate multiplier in (0,1] at virtual time t.
func (d Diurnal) Multiplier(t time.Duration) float64 {
	if d.Period <= 0 {
		return 1
	}
	trough := math.Min(math.Max(d.Trough, 0), 1)
	phase := 2 * math.Pi * float64(t%d.Period) / float64(d.Period)
	return trough + (1-trough)*0.5*(1-math.Cos(phase))
}

// SLOClass is one request class with a latency objective. Weight sets
// its share of the arrival mix; Write makes it a write+fsync commit
// instead of a read.
type SLOClass struct {
	Name   string
	Target time.Duration
	Weight int
	Write  bool
}

// DefaultClasses is the standard production mix: a read-heavy
// interactive class with a tight SLO and a smaller durable-commit
// class with a looser one.
func DefaultClasses() []SLOClass {
	return []SLOClass{
		{Name: "interactive", Target: 20 * time.Millisecond, Weight: 9, Write: false},
		{Name: "commit", Target: 80 * time.Millisecond, Weight: 1, Write: true},
	}
}

// Arrival is one precomputed request of a production plan: who, when,
// what class, at which file offset. Plans are pure functions of the
// generator parameters, so the same seed always produces the same
// arrival sequence — the property the trace layer's determinism rests
// on.
type Arrival struct {
	At    time.Duration
	User  int
	Class int // index into Classes
	Off   int64
}

// ClassStats aggregates one SLO class's outcome over the measurement
// window.
type ClassStats struct {
	Name   string
	Target time.Duration
	Stats  *Stats
	// Violations counts completed requests whose latency exceeded
	// Target inside the window.
	Violations uint64
}

// Production is the production-shaped open-loop generator: a Zipf
// tenant-popularity distribution over a simulated user population,
// Poisson arrivals shaped by a diurnal curve, and per-request SLO
// classes. It extends OpenLoop from a single flat-rate stream to the
// traffic shape of a large container platform, and reports tail
// percentiles per class instead of throughput.
type Production struct {
	FS  vfsapi.FileSystem
	Dir string
	// Files is the size of the fileset users map onto (user id modulo
	// Files); popular users make popular files. Default 20.
	Files    int
	FileSize int64
	OpSize   int64 // bytes per request (default 64 KiB)
	// Users is the simulated user population size. Default 1000.
	Users int
	// ZipfS/ZipfV parameterize user popularity (rand.Zipf; S > 1,
	// V >= 1). Defaults 1.2 / 1.
	ZipfS float64
	ZipfV float64
	// PeakRate is the peak offered load in requests per second of
	// virtual time; the diurnal curve scales it down off-peak.
	PeakRate float64
	Diurnal  Diurnal
	// Classes is the SLO class mix; nil means DefaultClasses.
	Classes   []SLOClass
	Seed      int64
	NewThread func() *cpu.Thread

	// Offered counts arrivals dispatched, Completed successful
	// requests, Shed admission refusals, Failed other errors — whole
	// run, not just the window.
	Offered   uint64
	Completed uint64
	Shed      uint64
	Failed    uint64
	// PerClass is populated by Run, parallel to Classes.
	PerClass []*ClassStats
}

func (w *Production) defaults() {
	if w.Files <= 0 {
		w.Files = 20
	}
	if w.OpSize <= 0 {
		w.OpSize = 64 << 10
	}
	if w.Users <= 0 {
		w.Users = 1000
	}
	if w.ZipfS <= 1 {
		w.ZipfS = 1.2
	}
	if w.ZipfV < 1 {
		w.ZipfV = 1
	}
	if w.PeakRate <= 0 {
		w.PeakRate = 200
	}
	if len(w.Classes) == 0 {
		w.Classes = DefaultClasses()
	}
}

// Plan precomputes the arrival sequence up to the horizon: a Poisson
// process at PeakRate thinned by the diurnal multiplier, each accepted
// arrival assigned a Zipf-drawn user, a weight-drawn SLO class, and an
// OpSize-aligned offset. Deterministic in (parameters, Seed).
func (w *Production) Plan(until time.Duration) []Arrival {
	w.defaults()
	rng := rand.New(rand.NewSource(w.Seed))
	zipf := rand.NewZipf(rng, w.ZipfS, w.ZipfV, uint64(w.Users-1))
	totalWeight := 0
	for _, c := range w.Classes {
		if c.Weight <= 0 {
			continue
		}
		totalWeight += c.Weight
	}
	if totalWeight == 0 {
		totalWeight = 1
	}
	slots := int64(1)
	if w.FileSize > w.OpSize {
		slots = w.FileSize / w.OpSize
	}
	var plan []Arrival
	var t time.Duration
	for {
		gap := time.Duration(rng.ExpFloat64() / w.PeakRate * float64(time.Second))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		t += gap
		if t >= until {
			return plan
		}
		// Thinning: off-peak arrivals are dropped with probability
		// 1 - multiplier, turning the homogeneous process into the
		// diurnal-shaped one.
		if rng.Float64() > w.Diurnal.Multiplier(t) {
			continue
		}
		cls, pick := 0, rng.Intn(totalWeight)
		for i, c := range w.Classes {
			if c.Weight <= 0 {
				continue
			}
			pick -= c.Weight
			if pick < 0 {
				cls = i
				break
			}
		}
		plan = append(plan, Arrival{
			At:    t,
			User:  int(zipf.Uint64()),
			Class: cls,
			Off:   rng.Int63n(slots) * w.OpSize,
		})
	}
}

// Run precomputes the plan to the clock deadline and starts the
// dispatcher, which spawns one short-lived thread per arrival. Like
// OpenLoop, the loop is open: shed requests are counted, not retried.
func (w *Production) Run(g *Group, clock Clock) {
	w.defaults()
	w.PerClass = make([]*ClassStats, len(w.Classes))
	for i, c := range w.Classes {
		w.PerClass[i] = &ClassStats{Name: c.Name, Target: c.Target, Stats: NewStats()}
	}
	start := clock.Eng.Now()
	plan := w.Plan(clock.Stop - start)
	g.Go("production-dispatch", func(p *sim.Proc) {
		for _, a := range plan {
			if gap := start + a.At - clock.Eng.Now(); gap > 0 {
				p.Sleep(gap)
			}
			if clock.Done() {
				return
			}
			w.Offered++
			a := a
			g.Go("production-req", func(rp *sim.Proc) {
				w.request(rp, clock, a)
			})
		}
	})
}

func (w *Production) request(p *sim.Proc, clock Clock, a Arrival) {
	th := w.NewThread()
	ctx := ctxFor(p, th)
	cls := w.Classes[a.Class]
	path := fileName(w.Dir, a.User%w.Files)
	start := clock.Eng.Now()
	measuring := clock.Measuring()
	var err error
	if cls.Write {
		var h vfsapi.Handle
		h, err = w.FS.Open(ctx, path, vfsapi.WRONLY|vfsapi.CREATE)
		if err == nil {
			_, err = h.Write(ctx, a.Off, w.OpSize)
			if err == nil {
				err = h.Fsync(ctx)
			}
			h.Close(ctx)
		}
	} else {
		var h vfsapi.Handle
		h, err = w.FS.Open(ctx, path, vfsapi.RDONLY)
		if err == nil {
			_, err = h.Read(ctx, a.Off, w.OpSize)
			h.Close(ctx)
		}
	}
	if err != nil {
		if errors.Is(err, vfsapi.ErrOverload) {
			w.Shed++
		} else {
			w.Failed++
		}
		return
	}
	w.Completed++
	if measuring {
		lat := clock.Eng.Now() - start
		st := w.PerClass[a.Class]
		st.Stats.Record(w.OpSize, lat)
		if cls.Target > 0 && lat > cls.Target {
			st.Violations++
		}
	}
}

package workloads

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// RandomIO emulates the Stress-ng RandomIO stressor: threads issue
// random small reads (with readahead batching) and random small writes
// against one file on the local ext4/RAID0 filesystem. Its purpose in
// the paper is to saturate its pool's cores and the shared kernel
// structures (page LRU, writeback) — the noisy neighbour of Fig 1/6a.
type RandomIO struct {
	FS        vfsapi.FileSystem
	Path      string
	Threads   int
	FileSize  int64
	ReadChunk int64 // readahead batch served per read call
	WriteSize int64
	// CPUPerBatch is the request-parsing and page-handling computation
	// of the dense 512-byte op stream each batch stands in for
	// (stress-ng keeps its cores hot).
	CPUPerBatch time.Duration
	// LockStress, when set, charges the shared kernel locks with the
	// per-op holds of the represented small-op stream (ops per batch).
	LockStress func(ctx vfsapi.Ctx, ops int)
	NewThread  func() *cpu.Thread
	Seed       int64

	Stats *Stats
}

// Defaults fills unset fields with the paper's configuration (1 GB
// file, 2 threads, 512-byte requests batched by 128 KB readahead).
func (w *RandomIO) Defaults(scale float64) {
	if w.Threads == 0 {
		w.Threads = 2
	}
	if w.FileSize == 0 {
		w.FileSize = int64(float64(1<<30) * scale)
		if w.FileSize < 16<<20 {
			w.FileSize = 16 << 20
		}
	}
	if w.ReadChunk == 0 {
		w.ReadChunk = 128 << 10
	}
	if w.WriteSize == 0 {
		w.WriteSize = 64 << 10 // 128 x 512 B back-to-back writes
	}
	if w.CPUPerBatch == 0 {
		w.CPUPerBatch = 150 * time.Microsecond
	}
	if w.Stats == nil {
		w.Stats = NewStats()
	}
}

// Prepare creates and fills the per-thread target files.
func (w *RandomIO) Prepare(ctx vfsapi.Ctx) error {
	for t := 0; t < w.Threads; t++ {
		h, err := w.FS.Open(ctx, w.pathFor(t), vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			return err
		}
		for off := int64(0); off < w.FileSize; off += 1 << 20 {
			h.Write(ctx, off, 1<<20)
		}
		if err := h.Fsync(ctx); err != nil {
			h.Close(ctx)
			return err
		}
		if err := h.Close(ctx); err != nil {
			return err
		}
	}
	return nil
}

func (w *RandomIO) pathFor(tid int) string {
	return fmt.Sprintf("%s.%d", w.Path, tid)
}

// Run spawns the stressor threads.
func (w *RandomIO) Run(g *Group, clock Clock) {
	for t := 0; t < w.Threads; t++ {
		t := t
		g.Go("randio", func(p *sim.Proc) { w.worker(p, t, clock) })
	}
}

func (w *RandomIO) worker(p *sim.Proc, tid int, clock Clock) {
	th := w.NewThread()
	ctx := ctxFor(p, th)
	rng := rand.New(rand.NewSource(StreamSeed(w.Seed, "randio", tid)))
	// Each stressor works its own file (stress-ng style), so several
	// kernel flushers end up servicing the noisy neighbour's dirty
	// pages on the slow local disks.
	h, err := w.FS.Open(ctx, w.pathFor(tid), vfsapi.RDWR)
	if err != nil {
		w.Stats.Errors++
		return
	}
	defer h.Close(ctx)
	for !clock.Done() {
		start := clock.Eng.Now()
		var moved int64
		off := rng.Int63n(w.FileSize - w.ReadChunk)
		if rng.Intn(2) == 0 {
			moved, _ = h.Read(ctx, off, w.ReadChunk)
		} else {
			moved, _ = h.Write(ctx, off, w.WriteSize)
		}
		th.Exec(p, cpu.User, w.CPUPerBatch)
		if w.LockStress != nil {
			w.LockStress(ctx, int(w.ReadChunk/512))
		}
		if clock.Measuring() {
			w.Stats.Record(moved, clock.Eng.Now()-start)
		}
	}
}

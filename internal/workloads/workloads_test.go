package workloads

import (
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/kvstore"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

type rig struct {
	eng  *sim.Engine
	cpus *cpu.CPU
	mem  *memfs.FS
	acct *cpu.Account
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	return &rig{
		eng:  eng,
		cpus: cpu.New(eng, model.Default(), 4),
		mem:  memfs.New(),
		acct: cpu.NewAccount("wl"),
	}
}

func (r *rig) newThread() *cpu.Thread { return r.cpus.NewThread(r.acct, 0) }

func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.eng.Go("driver", fn)
	r.eng.Run()
	if r.eng.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", r.eng.LiveProcs())
	}
}

func (r *rig) clock(warm, dur time.Duration) Clock {
	return Clock{Eng: r.eng, From: warm, Stop: warm + dur}
}

func TestGroupWaitsForAllThreads(t *testing.T) {
	r := newRig(t)
	done := 0
	r.run(t, func(p *sim.Proc) {
		g := NewGroup(r.eng)
		for i := 0; i < 5; i++ {
			i := i
			g.Go("w", func(pp *sim.Proc) {
				pp.Sleep(time.Duration(i+1) * time.Millisecond)
				done++
			})
		}
		g.Wait(p)
		if done != 5 {
			t.Errorf("Wait returned before all threads: %d", done)
		}
	})
}

func TestClockWindows(t *testing.T) {
	r := newRig(t)
	c := Clock{Eng: r.eng, From: 10 * time.Millisecond, Stop: 30 * time.Millisecond}
	r.run(t, func(p *sim.Proc) {
		if c.Measuring() || c.Done() {
			t.Error("warmup misclassified")
		}
		p.Sleep(15 * time.Millisecond)
		if !c.Measuring() || c.Done() {
			t.Error("window misclassified")
		}
		p.Sleep(20 * time.Millisecond)
		if c.Measuring() || !c.Done() {
			t.Error("end misclassified")
		}
	})
	if c.Window() != 20*time.Millisecond {
		t.Fatalf("Window = %v", c.Window())
	}
}

func TestFileserverRunsMixAndRecords(t *testing.T) {
	r := newRig(t)
	r.mem.OpDelay = 100 * time.Microsecond // advance virtual time per op
	w := &Fileserver{
		FS: r.mem, Dir: "/fls", Threads: 4, Files: 10,
		MeanFileSize: 256 << 10, NewThread: r.newThread, Seed: 1,
	}
	w.Defaults(0.02)
	r.run(t, func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: r.newThread()}
		if err := w.Prepare(ctx); err != nil {
			t.Fatal(err)
		}
		g := NewGroup(r.eng)
		w.Run(g, r.clock(0, 200*time.Millisecond))
		g.Wait(p)
	})
	if w.Stats.Ops.Ops == 0 || w.Stats.Ops.Bytes == 0 {
		t.Fatal("fileserver recorded nothing")
	}
	if r.mem.Writes == 0 || r.mem.Reads == 0 {
		t.Fatal("fileserver did not mix reads and writes")
	}
	if w.Stats.Errors > w.Stats.Ops.Ops/10 {
		t.Fatalf("too many errors: %d of %d", w.Stats.Errors, w.Stats.Ops.Ops)
	}
}

func TestWebserverIsReadDominated(t *testing.T) {
	r := newRig(t)
	r.mem.OpDelay = 100 * time.Microsecond
	w := &Webserver{
		FS: r.mem, Dir: "/web", Threads: 4, Files: 50,
		NewThread: r.newThread, Seed: 2,
	}
	w.Defaults(0.001)
	r.run(t, func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: r.newThread()}
		if err := w.Prepare(ctx); err != nil {
			t.Fatal(err)
		}
		reads0, writes0 := r.mem.Reads, r.mem.Writes
		g := NewGroup(r.eng)
		w.Run(g, r.clock(0, 100*time.Millisecond))
		g.Wait(p)
		reads, writes := r.mem.Reads-reads0, r.mem.Writes-writes0
		if reads < 5*writes {
			t.Fatalf("webserver should be read-dominated: %d reads, %d writes", reads, writes)
		}
	})
}

func TestSeqIOWriteAndRead(t *testing.T) {
	for _, write := range []bool{true, false} {
		r := newRig(t)
		r.mem.OpDelay = 50 * time.Microsecond
		w := &SeqIO{
			FS: r.mem, Dir: "/seq", Threads: 2, FileSize: 8 << 20,
			Write: write, NewThread: r.newThread,
		}
		w.Defaults(0.01)
		r.run(t, func(p *sim.Proc) {
			ctx := vfsapi.Ctx{P: p, T: r.newThread()}
			if err := w.Prepare(ctx); err != nil {
				t.Fatal(err)
			}
			g := NewGroup(r.eng)
			w.Run(g, r.clock(0, 50*time.Millisecond))
			g.Wait(p)
		})
		if w.Stats.Ops.Bytes == 0 {
			t.Fatalf("seqio write=%v moved no bytes", write)
		}
	}
}

func TestRandomIOPreparesPerThreadFiles(t *testing.T) {
	r := newRig(t)
	w := &RandomIO{
		FS: r.mem, Path: "/rnd", Threads: 2, FileSize: 4 << 20,
		NewThread: r.newThread, Seed: 3,
	}
	w.Defaults(0.01)
	r.run(t, func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: r.newThread()}
		if err := w.Prepare(ctx); err != nil {
			t.Fatal(err)
		}
		for tid := 0; tid < 2; tid++ {
			if _, err := r.mem.Stat(ctx, w.pathFor(tid)); err != nil {
				t.Fatalf("missing per-thread file %d: %v", tid, err)
			}
		}
		g := NewGroup(r.eng)
		w.Run(g, r.clock(0, 20*time.Millisecond))
		g.Wait(p)
	})
	if w.Stats.Ops.Ops == 0 {
		t.Fatal("randio performed no ops")
	}
}

func TestSysbenchLatencyReflectsContention(t *testing.T) {
	// Alone: each 1ms event completes in ~1ms. With a core hog on the
	// same cores, p99 inflates.
	run := func(withHog bool) time.Duration {
		r := newRig(t)
		w := &Sysbench{Threads: 2, NewThread: func() *cpu.Thread {
			return r.cpus.NewThread(r.acct, cpu.MaskOf(0, 1))
		}}
		w.Defaults()
		if withHog {
			for i := 0; i < 2; i++ {
				r.eng.Go("hog", func(p *sim.Proc) {
					th := r.cpus.NewThread(cpu.NewAccount("hog"), cpu.MaskOf(0, 1))
					th.Exec(p, cpu.User, 300*time.Millisecond)
				})
			}
		}
		r.run(t, func(p *sim.Proc) {
			g := NewGroup(r.eng)
			w.Run(g, r.clock(0, 100*time.Millisecond))
			g.Wait(p)
		})
		return w.Stats.Latency.Quantile(0.99)
	}
	alone := run(false)
	contended := run(true)
	if contended < 3*alone/2 {
		t.Fatalf("contention did not inflate SSB p99: %v vs %v", contended, alone)
	}
}

func TestStartupTouchesBothPaths(t *testing.T) {
	r := newRig(t)
	params := model.Default()
	legacy := memfs.New()
	def := memfs.New()
	provision := func(fs *memfs.FS) func(string, int64) error {
		return func(path string, size int64) error { return fs.Provision(path, size) }
	}
	if err := ProvisionImage(params, "", provision(legacy)); err != nil {
		t.Fatal(err)
	}
	if err := ProvisionImage(params, "", provision(def)); err != nil {
		t.Fatal(err)
	}
	w := &Startup{
		Default: def, Legacy: legacy, Params: params,
		NewThread: r.newThread, Stats: NewStats(),
	}
	r.run(t, func(p *sim.Proc) {
		g := NewGroup(r.eng)
		w.Run(g, Clock{Eng: r.eng})
		g.Wait(p)
	})
	if w.Stats.Errors != 0 {
		t.Fatalf("startup had %d errors", w.Stats.Errors)
	}
	if legacy.Reads == 0 {
		t.Fatal("startup never used the legacy path (exec/mmap)")
	}
	if def.Writes == 0 {
		t.Fatal("startup never wrote through the default path (pid/log)")
	}
	if w.Stats.Latency.Count() != 1 {
		t.Fatalf("startup latency samples = %d", w.Stats.Latency.Count())
	}
}

func TestFileAppendAndRead(t *testing.T) {
	r := newRig(t)
	r.mem.Provision("/blob", 4<<20)
	ap := &FileAppend{FS: r.mem, Path: "/blob", NewThread: r.newThread, Stats: NewStats()}
	rd := &FileRead{FS: r.mem, Path: "/blob", NewThread: r.newThread, Stats: NewStats()}
	r.run(t, func(p *sim.Proc) {
		g := NewGroup(r.eng)
		ap.Run(g, Clock{Eng: r.eng})
		g.Wait(p)
		g2 := NewGroup(r.eng)
		rd.Run(g2, Clock{Eng: r.eng})
		g2.Wait(p)
	})
	if ap.Stats.Ops.Bytes != 1<<20 {
		t.Fatalf("append moved %d", ap.Stats.Ops.Bytes)
	}
	// Read sees the appended size.
	if rd.Stats.Ops.Bytes != 4<<20+1<<20 {
		t.Fatalf("read moved %d, want full appended file", rd.Stats.Ops.Bytes)
	}
}

func TestKVPutGetWorkloads(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: r.newThread()}
		db, err := openTestDB(ctx, r)
		if err != nil {
			t.Fatal(err)
		}
		put := &KVPut{DB: db, TotalBytes: 8 << 20, ValueSize: 128 << 10, NewThread: r.newThread, Seed: 4}
		put.Defaults(0.001)
		g := NewGroup(r.eng)
		put.Run(g, Clock{Eng: r.eng})
		g.Wait(p)
		if put.Stats.Ops.Ops == 0 || put.Stats.Errors != 0 {
			t.Fatalf("puts: %d ops %d errors", put.Stats.Ops.Ops, put.Stats.Errors)
		}

		keys, err := Populate(ctx, db, 4<<20, 128<<10, 5)
		if err != nil {
			t.Fatal(err)
		}
		get := &KVGet{DB: db, Keys: keys, TotalBytes: 4 << 20, ValueSize: 128 << 10, NewThread: r.newThread, Seed: 6}
		get.Defaults(0.001)
		g2 := NewGroup(r.eng)
		get.Run(g2, Clock{Eng: r.eng})
		g2.Wait(p)
		if get.Stats.Ops.Ops == 0 {
			t.Fatal("gets recorded nothing")
		}
		db.Close(ctx)
	})
}

func TestStatsThroughput(t *testing.T) {
	s := NewStats()
	s.Record(1<<20, time.Millisecond)
	s.Record(1<<20, 3*time.Millisecond)
	if got := s.ThroughputMBps(2 * time.Second); got != 1 {
		t.Fatalf("ThroughputMBps = %v", got)
	}
	if s.Latency.Mean() != 2*time.Millisecond {
		t.Fatalf("mean latency = %v", s.Latency.Mean())
	}
}

// openTestDB opens a kvstore on the rig's memfs.
func openTestDB(ctx vfsapi.Ctx, r *rig) (*kvstore.DB, error) {
	return kvstore.Open(ctx, kvstore.Config{
		FS: r.mem, Dir: "/db", MemtableBytes: 2 << 20,
		Eng: r.eng, NewThread: r.newThread,
	})
}

package fusefs

import (
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

type rig struct {
	eng  *sim.Engine
	cpus *cpu.CPU
	mem  *memfs.FS
	t    *Transport
	acct *cpu.Account
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 4)
	mem := memfs.New()
	acct := cpu.NewAccount("pool")
	tr := New(eng, cpus, params, mem, Config{Name: "fuse", Acct: acct})
	return &rig{eng: eng, cpus: cpus, mem: mem, t: tr, acct: acct}
}

func (r *rig) run(t *testing.T, fn func(ctx vfsapi.Ctx)) {
	t.Helper()
	r.eng.Go("app", func(p *sim.Proc) {
		fn(vfsapi.Ctx{P: p, T: r.cpus.NewThread(r.acct, 0)})
	})
	r.eng.Run()
}

func TestCrossingCountsSwitches(t *testing.T) {
	r := newRig(t)
	r.mem.Provision("/f", 100)
	r.run(t, func(ctx vfsapi.Ctx) {
		if _, err := r.t.Stat(ctx, "/f"); err != nil {
			t.Fatal(err)
		}
	})
	// One crossing: 2 context switches (to daemon and back).
	if got := r.acct.ContextSwitches(); got != 2 {
		t.Fatalf("context switches = %d, want 2", got)
	}
	// App in/out + daemon in/out = 4 mode switches.
	if got := r.acct.ModeSwitches(); got != 4 {
		t.Fatalf("mode switches = %d, want 4", got)
	}
}

func TestLargeIOSplitsAtRequestSize(t *testing.T) {
	r := newRig(t)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := r.t.Open(ctx, "/big", vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			t.Fatal(err)
		}
		base := r.acct.ContextSwitches()
		if got, _ := h.Write(ctx, 0, 1<<20); got != 1<<20 {
			t.Fatalf("wrote %d", got)
		}
		// 1 MB at 128 KB per request = 8 crossings = 16 switches.
		if d := r.acct.ContextSwitches() - base; d != 16 {
			t.Fatalf("context switches for 1MB write = %d, want 16", d)
		}
		h.Close(ctx)
	})
}

func TestReadStopsAtEOF(t *testing.T) {
	r := newRig(t)
	r.mem.Provision("/small", 200<<10) // 200 KB: less than 2 full requests
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.t.Open(ctx, "/small", vfsapi.RDONLY)
		got, err := h.Read(ctx, 0, 1<<20)
		if err != nil || got != 200<<10 {
			t.Fatalf("read %d err=%v", got, err)
		}
		h.Close(ctx)
	})
}

func TestErrorsPropagateThroughTransport(t *testing.T) {
	r := newRig(t)
	r.run(t, func(ctx vfsapi.Ctx) {
		if _, err := r.t.Open(ctx, "/missing", vfsapi.RDONLY); err != vfsapi.ErrNotExist {
			t.Fatalf("open: %v", err)
		}
		if err := r.t.Unlink(ctx, "/missing"); err != vfsapi.ErrNotExist {
			t.Fatalf("unlink: %v", err)
		}
	})
}

func TestStackedTransportsMultiplySwitches(t *testing.T) {
	// unionfs-fuse over ceph-fuse (F/F) doubles every crossing.
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 4)
	mem := memfs.New()
	mem.Provision("/f", 100)
	acct := cpu.NewAccount("pool")
	innerT := New(eng, cpus, params, mem, Config{Name: "ceph-fuse", Acct: acct})
	outerT := New(eng, cpus, params, innerT, Config{Name: "unionfs-fuse", Acct: acct})
	eng.Go("app", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: cpus.NewThread(acct, 0)}
		outerT.Stat(ctx, "/f")
	})
	eng.Run()
	if got := acct.ContextSwitches(); got != 4 {
		t.Fatalf("stacked context switches = %d, want 4", got)
	}
}

func TestMetadataOpsThroughDaemon(t *testing.T) {
	r := newRig(t)
	r.run(t, func(ctx vfsapi.Ctx) {
		if err := r.t.Mkdir(ctx, "/d"); err != nil {
			t.Fatal(err)
		}
		h, _ := r.t.Open(ctx, "/d/f", vfsapi.CREATE|vfsapi.WRONLY)
		h.Close(ctx)
		ents, err := r.t.Readdir(ctx, "/d")
		if err != nil || len(ents) != 1 {
			t.Fatalf("readdir: %v %v", ents, err)
		}
		if err := r.t.Rename(ctx, "/d/f", "/d/g"); err != nil {
			t.Fatal(err)
		}
		if err := r.t.Unlink(ctx, "/d/g"); err != nil {
			t.Fatal(err)
		}
		if err := r.t.Rmdir(ctx, "/d"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDaemonThreadsRespectMask(t *testing.T) {
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 4)
	mem := memfs.New()
	mem.Provision("/f", 10<<20)
	acct := cpu.NewAccount("pool")
	tr := New(eng, cpus, params, mem, Config{Name: "fuse", Acct: acct, Mask: cpu.MaskOf(0, 1)})
	eng.Go("app", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: cpus.NewThread(acct, cpu.MaskOf(0, 1))}
		h, _ := tr.Open(ctx, "/f", vfsapi.RDONLY)
		h.Read(ctx, 0, 10<<20)
		h.Close(ctx)
	})
	eng.Run()
	util := cpus.UtilSnapshot()
	if util[2] != 0 || util[3] != 0 {
		t.Fatalf("daemon leaked onto foreign cores: %v", util)
	}
}

func TestDaemonThreadPoolGatesConcurrency(t *testing.T) {
	// With a 1-thread daemon and a slow inner filesystem, concurrent
	// requests serialize in the FUSE queue.
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 8)
	mem := memfs.New()
	mem.OpDelay = 10 * time.Millisecond
	mem.Provision("/f", 1<<20)
	acct := cpu.NewAccount("pool")
	tr := New(eng, cpus, params, mem, Config{Name: "fuse", Acct: acct, Threads: 1})
	var last time.Duration
	for i := 0; i < 4; i++ {
		eng.Go("app", func(p *sim.Proc) {
			ctx := vfsapi.Ctx{P: p, T: cpus.NewThread(acct, 0)}
			h, _ := tr.Open(ctx, "/f", vfsapi.RDONLY)
			h.Read(ctx, 0, 1024)
			h.Close(ctx)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	eng.Run()
	// 4 slow reads at 10ms each through one daemon thread serialize to
	// at least 40ms.
	if last < 40*time.Millisecond {
		t.Fatalf("single-thread daemon did not serialize: done at %v", last)
	}

	// The same load over an 8-thread daemon overlaps.
	eng2 := sim.NewEngine()
	cpus2 := cpu.New(eng2, params, 8)
	mem2 := memfs.New()
	mem2.OpDelay = 10 * time.Millisecond
	mem2.Provision("/f", 1<<20)
	acct2 := cpu.NewAccount("pool")
	tr2 := New(eng2, cpus2, params, mem2, Config{Name: "fuse", Acct: acct2, Threads: 8})
	var last2 time.Duration
	for i := 0; i < 4; i++ {
		eng2.Go("app", func(p *sim.Proc) {
			ctx := vfsapi.Ctx{P: p, T: cpus2.NewThread(acct2, 0)}
			h, _ := tr2.Open(ctx, "/f", vfsapi.RDONLY)
			h.Read(ctx, 0, 1024)
			h.Close(ctx)
			if p.Now() > last2 {
				last2 = p.Now()
			}
		})
	}
	eng2.Run()
	if last2 >= last/2 {
		t.Fatalf("wide daemon pool did not overlap: %v vs %v", last2, last)
	}
	if last2 < 10*time.Millisecond {
		t.Fatalf("even overlapped reads cost one service time: %v", last2)
	}
}

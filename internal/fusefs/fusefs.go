// Package fusefs models the FUSE transport: every operation on a FUSE
// mount crosses from the application into the kernel, is queued to a
// user-level daemon (two context switches), pays extra data copies
// through the kernel, and splits large I/O at the FUSE request size.
//
// Stacking transports composes naturally: unionfs-fuse over ceph-fuse
// (configuration F/F) is a Transport whose inner filesystem issues its
// branch operations through a second Transport — which is exactly why
// that configuration shows 9-39x more context switches than Danaus in
// Fig 8b.
package fusefs

import (
	"repro/internal/cpu"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// Transport is a FUSE mount: a user-level daemon serving a filesystem
// through the kernel FUSE channel. It implements vfsapi.FileSystem.
type Transport struct {
	eng    *sim.Engine
	cpus   *cpu.CPU
	params *model.Params
	inner  vfsapi.FileSystem

	// daemonThreads is a pool of CPU threads the daemon side runs on
	// (pinned to the pool's cores like any process of the tenant).
	daemonThreads []*cpu.Thread
	next          int
	// slots gates concurrent requests by the daemon thread count: a
	// FUSE daemon with all threads busy queues further requests, which
	// is what collapses stacked-FUSE configurations when many cloned
	// containers share one ceph-fuse process.
	slots *sim.Resource

	// crashed marks a dead daemon process: requests on the FUSE channel
	// fail with vfsapi.ErrCrashed — the transport error every tenant
	// mounted through this daemon sees — until Restart.
	crashed bool
}

// Config configures the daemon side of a FUSE mount.
type Config struct {
	// Name for diagnostics.
	Name string
	// Acct is the account charged for daemon CPU (the pool's account).
	Acct *cpu.Account
	// Mask pins the daemon threads.
	Mask cpu.Mask
	// Threads is the daemon thread pool size (default 4).
	Threads int
}

// New creates a FUSE mount serving inner through a daemon.
func New(eng *sim.Engine, cpus *cpu.CPU, params *model.Params, inner vfsapi.FileSystem, cfg Config) *Transport {
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	if cfg.Acct == nil {
		cfg.Acct = cpu.NewAccount(cfg.Name + ".fused")
	}
	t := &Transport{
		eng: eng, cpus: cpus, params: params, inner: inner,
		slots: sim.NewResource(eng, cfg.Name+".daemon", int64(cfg.Threads)),
	}
	for i := 0; i < cfg.Threads; i++ {
		t.daemonThreads = append(t.daemonThreads, cpus.NewThread(cfg.Acct, cfg.Mask))
	}
	return t
}

// Inner returns the filesystem served by the daemon.
func (t *Transport) Inner() vfsapi.FileSystem { return t.inner }

// Crash kills the daemon process: every request on the FUSE channel —
// in flight past the syscall entry or issued later — fails with
// vfsapi.ErrCrashed until Restart. The blast radius is every tenant
// mounted through this daemon, which is the paper's argument against
// sharing one ceph-fuse process across containers.
func (t *Transport) Crash() { t.crashed = true }

// Restart brings a fresh daemon process up on the existing mount. The
// daemon itself is stateless here (its caches live in the inner client,
// which recovers separately), so restart is immediate.
func (t *Transport) Restart() { t.crashed = false }

// Crashed reports whether the daemon is dead.
func (t *Transport) Crashed() bool { return t.crashed }

// crossing performs one FUSE round trip: syscall entry, request
// queueing, switch to the daemon, daemon-side execution of fn, switch
// back, and syscall exit. payloadIn/payloadOut are the extra data
// copies through the kernel in each direction.
func (t *Transport) crossing(ctx vfsapi.Ctx, payloadIn, payloadOut int64, fn func(dctx vfsapi.Ctx) error) error {
	defer ctx.Span.Enter(obs.LayerFUSE).Exit()
	p := t.params
	if t.crashed {
		// The kernel aborts requests on a dead FUSE connection at the
		// syscall boundary (ENOTCONN in real life) — no daemon round
		// trip, but the aborted syscall still costs its kernel entry,
		// which keeps erroring loops moving in simulated time.
		ctx.T.ModeSwitch(ctx.P)
		ctx.T.Exec(ctx.P, cpu.Kernel, p.FUSERequestOverhead)
		ctx.T.ModeSwitch(ctx.P)
		return vfsapi.ErrCrashed
	}
	// Application enters the kernel and hands the request to FUSE.
	ctx.T.ModeSwitch(ctx.P)
	ctx.T.Exec(ctx.P, cpu.Kernel, p.FUSERequestOverhead)
	if payloadIn > 0 {
		ctx.T.Exec(ctx.P, cpu.Kernel, p.CopyTime(payloadIn))
	}
	ctx.T.ContextSwitch(ctx.P)

	// Daemon side: wait for a free daemon thread (the request sits in
	// the FUSE queue while all are busy), read the request, pay the
	// copy out of the kernel, and serve it at user level.
	t.slots.Acquire(ctx.P, 1)
	defer t.slots.Release(1)
	if t.crashed {
		// The daemon died while the request sat in the FUSE queue.
		return vfsapi.ErrCrashed
	}
	dth := t.daemonThreads[t.next%len(t.daemonThreads)]
	t.next++
	dctx := vfsapi.Ctx{P: ctx.P, T: dth, Span: ctx.Span}
	dth.ModeSwitch(ctx.P) // daemon returns from read(2) on /dev/fuse
	if payloadIn > 0 {
		dth.Exec(ctx.P, cpu.Kernel, p.CopyTime(payloadIn))
	}
	err := fn(dctx)
	if payloadOut > 0 {
		dth.Exec(ctx.P, cpu.Kernel, p.CopyTime(payloadOut))
	}
	dth.ModeSwitch(ctx.P) // daemon writes the reply

	// Back to the application.
	ctx.T.ContextSwitch(ctx.P)
	if payloadOut > 0 {
		ctx.T.Exec(ctx.P, cpu.Kernel, p.CopyTime(payloadOut))
	}
	ctx.T.ModeSwitch(ctx.P)
	return err
}

// Open crosses to the daemon and wraps the returned handle.
func (t *Transport) Open(ctx vfsapi.Ctx, path string, flags vfsapi.OpenFlag) (vfsapi.Handle, error) {
	var h vfsapi.Handle
	err := t.crossing(ctx, 0, 0, func(dctx vfsapi.Ctx) error {
		var err error
		h, err = t.inner.Open(dctx, path, flags)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &fuseHandle{t: t, inner: h}, nil
}

// Stat crosses to the daemon.
func (t *Transport) Stat(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, error) {
	var info vfsapi.FileInfo
	err := t.crossing(ctx, 0, 0, func(dctx vfsapi.Ctx) error {
		var err error
		info, err = t.inner.Stat(dctx, path)
		return err
	})
	return info, err
}

// Mkdir crosses to the daemon.
func (t *Transport) Mkdir(ctx vfsapi.Ctx, path string) error {
	return t.crossing(ctx, 0, 0, func(dctx vfsapi.Ctx) error {
		return t.inner.Mkdir(dctx, path)
	})
}

// Readdir crosses to the daemon.
func (t *Transport) Readdir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	var ents []vfsapi.DirEntry
	err := t.crossing(ctx, 0, 0, func(dctx vfsapi.Ctx) error {
		var err error
		ents, err = t.inner.Readdir(dctx, path)
		return err
	})
	return ents, err
}

// Unlink crosses to the daemon.
func (t *Transport) Unlink(ctx vfsapi.Ctx, path string) error {
	return t.crossing(ctx, 0, 0, func(dctx vfsapi.Ctx) error {
		return t.inner.Unlink(dctx, path)
	})
}

// Rmdir crosses to the daemon.
func (t *Transport) Rmdir(ctx vfsapi.Ctx, path string) error {
	return t.crossing(ctx, 0, 0, func(dctx vfsapi.Ctx) error {
		return t.inner.Rmdir(dctx, path)
	})
}

// Rename crosses to the daemon.
func (t *Transport) Rename(ctx vfsapi.Ctx, oldPath, newPath string) error {
	return t.crossing(ctx, 0, 0, func(dctx vfsapi.Ctx) error {
		return t.inner.Rename(dctx, oldPath, newPath)
	})
}

type fuseHandle struct {
	t     *Transport
	inner vfsapi.Handle
}

func (h *fuseHandle) Path() string { return h.inner.Path() }
func (h *fuseHandle) Size() int64  { return h.inner.Size() }

// Read splits the request at the FUSE request size, one round trip per
// chunk, each paying the reply copy through the kernel.
func (h *fuseHandle) Read(ctx vfsapi.Ctx, off, n int64) (int64, error) {
	var total int64
	for n > 0 {
		chunk := h.t.params.FUSEMaxWrite
		if n < chunk {
			chunk = n
		}
		var got int64
		err := h.t.crossing(ctx, 0, chunk, func(dctx vfsapi.Ctx) error {
			var err error
			got, err = h.inner.Read(dctx, off, chunk)
			return err
		})
		if err != nil {
			return total, err
		}
		total += got
		off += got
		n -= chunk
		if got < chunk {
			break // EOF
		}
	}
	return total, nil
}

// Write splits at the FUSE request size, one round trip per chunk.
func (h *fuseHandle) Write(ctx vfsapi.Ctx, off, n int64) (int64, error) {
	var total int64
	for n > 0 {
		chunk := h.t.params.FUSEMaxWrite
		if n < chunk {
			chunk = n
		}
		var got int64
		err := h.t.crossing(ctx, chunk, 0, func(dctx vfsapi.Ctx) error {
			var err error
			got, err = h.inner.Write(dctx, off, chunk)
			return err
		})
		if err != nil {
			return total, err
		}
		total += got
		off += got
		n -= chunk
	}
	return total, nil
}

// Append forwards to chunked writes at the current end of file.
func (h *fuseHandle) Append(ctx vfsapi.Ctx, n int64) (int64, error) {
	off := h.inner.Size()
	_, err := h.Write(ctx, off, n)
	return off, err
}

// Fsync crosses to the daemon.
func (h *fuseHandle) Fsync(ctx vfsapi.Ctx) error {
	return h.t.crossing(ctx, 0, 0, func(dctx vfsapi.Ctx) error {
		return h.inner.Fsync(dctx)
	})
}

// Close crosses to the daemon.
func (h *fuseHandle) Close(ctx vfsapi.Ctx) error {
	return h.t.crossing(ctx, 0, 0, func(dctx vfsapi.Ctx) error {
		return h.inner.Close(dctx)
	})
}

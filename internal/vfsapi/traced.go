package vfsapi

import "repro/internal/obs"

// Traced wraps fs so every operation entering it opens a request span
// tagged with tenant, propagated via Ctx.Span, and ended (with byte
// count and error flag) when the operation returns. It is the facade
// boundary of the observability layer: the testbed wraps each pool's
// mounted filesystem with it. A nil recorder returns fs unchanged, so
// the disabled path has zero wrapping overhead.
//
// When the recorder has an op sink installed (obs.SetOpSink), each
// completing root operation is additionally reported with its reissue
// parameters — path, flags, offset, length — which is how
// internal/trace records a run's op stream for replay.
func Traced(fs FileSystem, rec *obs.Recorder, tenant string) FileSystem {
	if rec == nil || fs == nil {
		return fs
	}
	return &tracedFS{inner: fs, rec: rec, tenant: tenant}
}

type tracedFS struct {
	inner  FileSystem
	rec    *obs.Recorder
	tenant string
}

func (t *tracedFS) begin(ctx Ctx, op string) (Ctx, *obs.Span) {
	if ctx.Span != nil {
		// Already inside a traced request (nested facade); keep it.
		return ctx, nil
	}
	proc := 0
	if ctx.P != nil {
		proc = ctx.P.ID()
	}
	sp := t.rec.StartSpan(proc, t.tenant, op)
	ctx.Span = sp
	return ctx, sp
}

func (t *tracedFS) Open(ctx Ctx, path string, flags OpenFlag) (Handle, error) {
	ctx, sp := t.begin(ctx, "open")
	h, err := t.inner.Open(ctx, path, flags)
	t.rec.OpDone(sp, path, "", int(flags), 0, 0, 0, err)
	sp.End(0, err)
	if err != nil {
		return nil, err
	}
	return &tracedHandle{inner: h, fs: t, path: path}, nil
}

func (t *tracedFS) Stat(ctx Ctx, path string) (FileInfo, error) {
	ctx, sp := t.begin(ctx, "stat")
	fi, err := t.inner.Stat(ctx, path)
	t.rec.OpDone(sp, path, "", 0, 0, 0, 0, err)
	sp.End(0, err)
	return fi, err
}

func (t *tracedFS) Mkdir(ctx Ctx, path string) error {
	ctx, sp := t.begin(ctx, "mkdir")
	err := t.inner.Mkdir(ctx, path)
	t.rec.OpDone(sp, path, "", 0, 0, 0, 0, err)
	sp.End(0, err)
	return err
}

func (t *tracedFS) Readdir(ctx Ctx, path string) ([]DirEntry, error) {
	ctx, sp := t.begin(ctx, "readdir")
	ents, err := t.inner.Readdir(ctx, path)
	t.rec.OpDone(sp, path, "", 0, 0, 0, 0, err)
	sp.End(0, err)
	return ents, err
}

func (t *tracedFS) Unlink(ctx Ctx, path string) error {
	ctx, sp := t.begin(ctx, "unlink")
	err := t.inner.Unlink(ctx, path)
	t.rec.OpDone(sp, path, "", 0, 0, 0, 0, err)
	sp.End(0, err)
	return err
}

func (t *tracedFS) Rmdir(ctx Ctx, path string) error {
	ctx, sp := t.begin(ctx, "rmdir")
	err := t.inner.Rmdir(ctx, path)
	t.rec.OpDone(sp, path, "", 0, 0, 0, 0, err)
	sp.End(0, err)
	return err
}

func (t *tracedFS) Rename(ctx Ctx, oldPath, newPath string) error {
	ctx, sp := t.begin(ctx, "rename")
	err := t.inner.Rename(ctx, oldPath, newPath)
	t.rec.OpDone(sp, oldPath, newPath, 0, 0, 0, 0, err)
	sp.End(0, err)
	return err
}

type tracedHandle struct {
	inner Handle
	fs    *tracedFS
	// path is the facade-level open path. Handle ops are recorded with
	// it (not inner.Path(), which lower layers may have resolved to a
	// different namespace), so a replayed open and the ops on its
	// handle key the same path.
	path string
}

func (h *tracedHandle) Read(ctx Ctx, off, n int64) (int64, error) {
	ctx, sp := h.fs.begin(ctx, "read")
	got, err := h.inner.Read(ctx, off, n)
	// Len carries the *requested* length (replay must reissue the
	// original request even when short-read); Bytes carries what was
	// actually served, matching Span.End so telemetry byte totals agree
	// with the metrics registry.
	h.fs.rec.OpDone(sp, h.path, "", 0, off, n, got, err)
	sp.End(got, err)
	return got, err
}

func (h *tracedHandle) Write(ctx Ctx, off, n int64) (int64, error) {
	ctx, sp := h.fs.begin(ctx, "write")
	got, err := h.inner.Write(ctx, off, n)
	h.fs.rec.OpDone(sp, h.path, "", 0, off, n, got, err)
	sp.End(got, err)
	return got, err
}

func (h *tracedHandle) Append(ctx Ctx, n int64) (int64, error) {
	ctx, sp := h.fs.begin(ctx, "append")
	off, err := h.inner.Append(ctx, n)
	h.fs.rec.OpDone(sp, h.path, "", 0, 0, n, n, err)
	sp.End(n, err)
	return off, err
}

func (h *tracedHandle) Fsync(ctx Ctx) error {
	ctx, sp := h.fs.begin(ctx, "fsync")
	err := h.inner.Fsync(ctx)
	h.fs.rec.OpDone(sp, h.path, "", 0, 0, 0, 0, err)
	sp.End(0, err)
	return err
}

func (h *tracedHandle) Close(ctx Ctx) error {
	ctx, sp := h.fs.begin(ctx, "close")
	err := h.inner.Close(ctx)
	h.fs.rec.OpDone(sp, h.path, "", 0, 0, 0, 0, err)
	sp.End(0, err)
	return err
}

func (h *tracedHandle) Size() int64  { return h.inner.Size() }
func (h *tracedHandle) Path() string { return h.inner.Path() }

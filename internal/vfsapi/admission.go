package vfsapi

import (
	"time"

	"repro/internal/sim"
)

// AdmissionConfig bounds the concurrency a tenant may push into the
// client stack. MaxInFlight operations execute at once; up to QueueCap
// more park on a FIFO queue waiting for a slot; anything beyond that is
// shed immediately with ErrOverload. HighWater/LowWater are queue
// depths at which OnPressure fires (true on the way up, false on the
// way down) — the testbed uses it to flip the kernel into brownout.
type AdmissionConfig struct {
	MaxInFlight int
	QueueCap    int
	HighWater   int // queue depth that raises pressure (default 3/4 cap)
	LowWater    int // queue depth that clears pressure (default 1/4 cap)
	OnPressure  func(bool)
}

// AdmissionStats is a point-in-time snapshot of a controller.
// Offered == Admitted + Shed + queued + InFlight-not-yet-finished is
// not an identity of the snapshot alone; the invariant checked by the
// fuzzer is Offered == Admitted + Shed once the run has drained
// (InFlight covers long-lived background ops still mid-flight).
type AdmissionStats struct {
	Offered    uint64
	Admitted   uint64
	Shed       uint64
	InFlight   int
	Queued     int
	MaxQueued  int
	QueuedTime time.Duration
}

// Admission is a bounded admission controller for one tenant facade.
// All state transitions happen in virtual time on the single engine
// thread, so counters and the parked-waiter list stay consistent
// without locking: the region between a counter update and the Wait
// call runs atomically.
type Admission struct {
	eng       *sim.Engine
	cfg       AdmissionConfig
	q         *sim.WaitQueue
	inFlight  int
	queued    int
	pressured bool

	// crashEpoch increments on every ShedQueued flush; a parked waiter
	// that wakes into a newer epoch was evicted by a crash, not handed a
	// slot. grants counts slots handed to waiters by Release but not yet
	// consumed — an evicted waiter holding one returns it to inFlight so
	// the crash cannot leak execution slots.
	crashEpoch uint64
	grants     int
	crashErr   error

	offered    uint64
	admitted   uint64
	shed       uint64
	maxQueued  int
	queuedTime time.Duration
}

// NewAdmission creates a controller on e. Non-positive MaxInFlight or
// QueueCap are clamped to defaults (4 slots, 32 queued); water marks
// default to 3/4 and 1/4 of the queue cap.
func NewAdmission(e *sim.Engine, name string, cfg AdmissionConfig) *Admission {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 32
	}
	if cfg.HighWater <= 0 || cfg.HighWater > cfg.QueueCap {
		cfg.HighWater = cfg.QueueCap * 3 / 4
		if cfg.HighWater < 1 {
			cfg.HighWater = 1
		}
	}
	if cfg.LowWater < 0 || cfg.LowWater >= cfg.HighWater {
		cfg.LowWater = cfg.QueueCap / 4
		if cfg.LowWater >= cfg.HighWater {
			cfg.LowWater = cfg.HighWater - 1
		}
	}
	return &Admission{eng: e, cfg: cfg, q: sim.NewWaitQueue(e, "admission:"+name)}
}

// Admit claims an execution slot for the operation, parking on the
// bounded queue if all slots are busy. It returns ErrOverload without
// blocking when the queue is full. Queue time is charged to the
// caller's thread as I/O wait so it shows up in accounting and in the
// request span (via the engine's wait observer).
func (a *Admission) Admit(ctx Ctx) error {
	a.offered++
	if a.inFlight < a.cfg.MaxInFlight {
		a.inFlight++
		a.admitted++
		return nil
	}
	if a.queued >= a.cfg.QueueCap {
		a.shed++
		return ErrOverload
	}
	a.queued++
	if a.queued > a.maxQueued {
		a.maxQueued = a.queued
	}
	if !a.pressured && a.queued >= a.cfg.HighWater {
		a.pressured = true
		if a.cfg.OnPressure != nil {
			a.cfg.OnPressure(true)
		}
	}
	epoch := a.crashEpoch
	start := a.eng.Now()
	a.q.Wait(ctx.P)
	wait := a.eng.Now() - start
	a.queuedTime += wait
	if ctx.T != nil {
		ctx.T.Account().AddIOWait(wait)
	}
	if a.crashEpoch != epoch {
		// Evicted by ShedQueued: the client died while we were parked.
		// If a releasing op had already handed us its slot, return it —
		// nobody will run on it.
		if a.grants > 0 {
			a.grants--
			a.inFlight--
		}
		a.shed++
		return a.crashErr
	}
	// The releasing operation handed us its slot (see Release): inFlight
	// was not decremented there, so it already counts this operation.
	if a.grants > 0 {
		a.grants--
	}
	a.admitted++
	return nil
}

// ShedQueued evicts every parked waiter with the given deterministic
// error (ErrCrashed when the tenant's client dies mid-queue) and
// returns how many it evicted. Slots already handed to waiters by
// Release are reclaimed by the waiters as they wake, so the bounded
// queue and in-flight accounting survive the crash intact; operations
// arriving after the flush admit normally and fail inside the crashed
// client instead.
func (a *Admission) ShedQueued(err error) int {
	if err == nil {
		err = ErrCrashed
	}
	n := a.queued
	if n == 0 {
		return 0
	}
	a.crashEpoch++
	a.crashErr = err
	a.queued = 0
	if a.pressured {
		a.pressured = false
		if a.cfg.OnPressure != nil {
			a.cfg.OnPressure(false)
		}
	}
	a.q.Broadcast()
	return n
}

// Release returns the slot. If a waiter is queued the slot transfers
// directly to the oldest one (no barging: a new arrival cannot steal
// ahead of parked waiters because inFlight never dips below max while
// the queue drains).
func (a *Admission) Release() {
	if a.queued > 0 && a.q.Signal() {
		a.queued--
		a.grants++
		if a.pressured && a.queued <= a.cfg.LowWater {
			a.pressured = false
			if a.cfg.OnPressure != nil {
				a.cfg.OnPressure(false)
			}
		}
		return
	}
	a.inFlight--
}

// Stats snapshots the counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		Offered:    a.offered,
		Admitted:   a.admitted,
		Shed:       a.shed,
		InFlight:   a.inFlight,
		Queued:     a.queued,
		MaxQueued:  a.maxQueued,
		QueuedTime: a.queuedTime,
	}
}

// QueueCap returns the configured queue bound (for invariant checks).
func (a *Admission) QueueCap() int { return a.cfg.QueueCap }

// Admitted wraps fs so every operation first claims a slot from ctl
// and releases it when the operation returns. Operations shed by the
// controller fail fast with ErrOverload before touching the inner
// stack. A nil controller returns fs unchanged. Install it inside
// Traced so queue time lands in the request span.
func Admitted(fs FileSystem, ctl *Admission) FileSystem {
	if ctl == nil || fs == nil {
		return fs
	}
	return &admittedFS{inner: fs, ctl: ctl}
}

type admittedFS struct {
	inner FileSystem
	ctl   *Admission
}

func (a *admittedFS) Open(ctx Ctx, path string, flags OpenFlag) (Handle, error) {
	if err := a.ctl.Admit(ctx); err != nil {
		return nil, err
	}
	h, err := a.inner.Open(ctx, path, flags)
	a.ctl.Release()
	if err != nil {
		return nil, err
	}
	return &admittedHandle{inner: h, ctl: a.ctl}, nil
}

func (a *admittedFS) Stat(ctx Ctx, path string) (FileInfo, error) {
	if err := a.ctl.Admit(ctx); err != nil {
		return FileInfo{}, err
	}
	fi, err := a.inner.Stat(ctx, path)
	a.ctl.Release()
	return fi, err
}

func (a *admittedFS) Mkdir(ctx Ctx, path string) error {
	if err := a.ctl.Admit(ctx); err != nil {
		return err
	}
	err := a.inner.Mkdir(ctx, path)
	a.ctl.Release()
	return err
}

func (a *admittedFS) Readdir(ctx Ctx, path string) ([]DirEntry, error) {
	if err := a.ctl.Admit(ctx); err != nil {
		return nil, err
	}
	ents, err := a.inner.Readdir(ctx, path)
	a.ctl.Release()
	return ents, err
}

func (a *admittedFS) Unlink(ctx Ctx, path string) error {
	if err := a.ctl.Admit(ctx); err != nil {
		return err
	}
	err := a.inner.Unlink(ctx, path)
	a.ctl.Release()
	return err
}

func (a *admittedFS) Rmdir(ctx Ctx, path string) error {
	if err := a.ctl.Admit(ctx); err != nil {
		return err
	}
	err := a.inner.Rmdir(ctx, path)
	a.ctl.Release()
	return err
}

func (a *admittedFS) Rename(ctx Ctx, oldPath, newPath string) error {
	if err := a.ctl.Admit(ctx); err != nil {
		return err
	}
	err := a.inner.Rename(ctx, oldPath, newPath)
	a.ctl.Release()
	return err
}

type admittedHandle struct {
	inner Handle
	ctl   *Admission
}

func (h *admittedHandle) Read(ctx Ctx, off, n int64) (int64, error) {
	if err := h.ctl.Admit(ctx); err != nil {
		return 0, err
	}
	got, err := h.inner.Read(ctx, off, n)
	h.ctl.Release()
	return got, err
}

func (h *admittedHandle) Write(ctx Ctx, off, n int64) (int64, error) {
	if err := h.ctl.Admit(ctx); err != nil {
		return 0, err
	}
	got, err := h.inner.Write(ctx, off, n)
	h.ctl.Release()
	return got, err
}

func (h *admittedHandle) Append(ctx Ctx, n int64) (int64, error) {
	if err := h.ctl.Admit(ctx); err != nil {
		return 0, err
	}
	off, err := h.inner.Append(ctx, n)
	h.ctl.Release()
	return off, err
}

func (h *admittedHandle) Fsync(ctx Ctx) error {
	if err := h.ctl.Admit(ctx); err != nil {
		return err
	}
	err := h.inner.Fsync(ctx)
	h.ctl.Release()
	return err
}

func (h *admittedHandle) Close(ctx Ctx) error {
	// Close always runs: shedding it would leak the inner handle, and a
	// tenant that cannot close files cannot shed load either. It still
	// counts a slot when one is free, but never queues or sheds.
	h.ctl.offered++
	h.ctl.admitted++
	err := h.inner.Close(ctx)
	return err
}

func (h *admittedHandle) Size() int64  { return h.inner.Size() }
func (h *admittedHandle) Path() string { return h.inner.Path() }

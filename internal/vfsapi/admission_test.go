package vfsapi_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

type admRig struct {
	eng  *sim.Engine
	cpus *cpu.CPU
	acct *cpu.Account
}

func newAdmRig() *admRig {
	eng := sim.NewEngine()
	return &admRig{
		eng:  eng,
		cpus: cpu.New(eng, model.Default(), 4),
		acct: cpu.NewAccount("adm"),
	}
}

func (r *admRig) ctx(p *sim.Proc) vfsapi.Ctx {
	return vfsapi.Ctx{P: p, T: r.cpus.NewThread(r.acct, 0)}
}

func TestAdmissionDefaults(t *testing.T) {
	r := newAdmRig()
	a := vfsapi.NewAdmission(r.eng, "p", vfsapi.AdmissionConfig{})
	if a.QueueCap() != 32 {
		t.Fatalf("default queue cap = %d, want 32", a.QueueCap())
	}
}

// One slot, one queue seat: the first op holds the slot, the second
// queues, the third is shed; releasing the slot hands it to the queued
// op. The ledger must balance at every step.
func TestAdmissionShedsBeyondQueue(t *testing.T) {
	r := newAdmRig()
	a := vfsapi.NewAdmission(r.eng, "p", vfsapi.AdmissionConfig{MaxInFlight: 1, QueueCap: 1})
	var shedErr error
	var queuedRan bool
	r.eng.Go("holder", func(p *sim.Proc) {
		if err := a.Admit(r.ctx(p)); err != nil {
			t.Errorf("holder shed: %v", err)
			return
		}
		p.Sleep(10 * time.Millisecond)
		a.Release()
	})
	r.eng.Go("queued", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		if err := a.Admit(r.ctx(p)); err != nil {
			t.Errorf("queued op shed: %v", err)
			return
		}
		queuedRan = true
		a.Release()
	})
	r.eng.Go("shed", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		shedErr = a.Admit(r.ctx(p))
	})
	r.eng.Run()

	if !errors.Is(shedErr, vfsapi.ErrOverload) {
		t.Fatalf("third op got %v, want ErrOverload", shedErr)
	}
	if !queuedRan {
		t.Fatal("queued op never admitted after release")
	}
	s := a.Stats()
	if s.Offered != 3 || s.Admitted != 2 || s.Shed != 1 {
		t.Fatalf("ledger offered/admitted/shed = %d/%d/%d, want 3/2/1", s.Offered, s.Admitted, s.Shed)
	}
	if s.Offered != s.Admitted+s.Shed+uint64(s.InFlight) {
		t.Fatalf("accounting identity broken: %+v", s)
	}
	if s.MaxQueued != 1 || s.InFlight != 0 || s.Queued != 0 {
		t.Fatalf("maxq/inflight/queued = %d/%d/%d, want 1/0/0", s.MaxQueued, s.InFlight, s.Queued)
	}
	if s.QueuedTime <= 0 {
		t.Fatal("queued op reported no queueing time")
	}
}

// The pressure callback must fire once on the high-water crossing and
// once when the queue drains past low water — not on every admit.
func TestAdmissionPressureHysteresis(t *testing.T) {
	r := newAdmRig()
	var highs, lows int
	a := vfsapi.NewAdmission(r.eng, "p", vfsapi.AdmissionConfig{
		MaxInFlight: 1, QueueCap: 4, HighWater: 2, LowWater: 1,
		OnPressure: func(high bool) {
			if high {
				highs++
			} else {
				lows++
			}
		},
	})
	r.eng.Go("holder", func(p *sim.Proc) {
		if err := a.Admit(r.ctx(p)); err != nil {
			t.Errorf("holder shed: %v", err)
			return
		}
		p.Sleep(10 * time.Millisecond)
		for i := 0; i < 4; i++ {
			a.Release()
		}
	})
	for i := 0; i < 3; i++ {
		i := i
		r.eng.Go("waiter", func(p *sim.Proc) {
			p.Sleep(time.Duration(i+1) * time.Millisecond)
			if err := a.Admit(r.ctx(p)); err != nil {
				t.Errorf("waiter %d shed: %v", i, err)
			}
		})
	}
	r.eng.Run()
	if highs != 1 || lows != 1 {
		t.Fatalf("pressure callbacks high/low = %d/%d, want 1/1", highs, lows)
	}
}

// A client crash while operations are parked on the admission queue:
// every waiter is evicted with the deterministic crash error, the
// ledger accounts them as shed, and nothing stays queued.
func TestAdmissionCrashShedsQueued(t *testing.T) {
	r := newAdmRig()
	a := vfsapi.NewAdmission(r.eng, "p", vfsapi.AdmissionConfig{MaxInFlight: 1, QueueCap: 4})
	errs := make([]error, 2)
	var shedN int
	r.eng.Go("holder", func(p *sim.Proc) {
		if err := a.Admit(r.ctx(p)); err != nil {
			t.Errorf("holder shed: %v", err)
			return
		}
		p.Sleep(5 * time.Millisecond)
		shedN = a.ShedQueued(vfsapi.ErrCrashed)
		p.Sleep(time.Millisecond)
		a.Release()
	})
	for i := 0; i < 2; i++ {
		i := i
		r.eng.Go("waiter", func(p *sim.Proc) {
			p.Sleep(time.Duration(i+1) * time.Millisecond)
			errs[i] = a.Admit(r.ctx(p))
		})
	}
	r.eng.Run()

	if shedN != 2 {
		t.Fatalf("ShedQueued evicted %d waiters, want 2", shedN)
	}
	for i, err := range errs {
		if !errors.Is(err, vfsapi.ErrCrashed) {
			t.Fatalf("waiter %d got %v, want ErrCrashed", i, err)
		}
	}
	s := a.Stats()
	if s.Offered != 3 || s.Admitted != 1 || s.Shed != 2 {
		t.Fatalf("ledger offered/admitted/shed = %d/%d/%d, want 3/1/2", s.Offered, s.Admitted, s.Shed)
	}
	if s.InFlight != 0 || s.Queued != 0 {
		t.Fatalf("crash leaked state: in-flight %d queued %d, want 0/0", s.InFlight, s.Queued)
	}
}

// Regression for the slot-handoff crash race: Release hands the slot to
// the oldest waiter without decrementing inFlight, then the crash sheds
// the queue before the grantee ever runs. The evicted grantee must
// return the slot — otherwise the crash permanently leaks an execution
// slot and the tenant's concurrency shrinks forever.
func TestAdmissionCrashAfterHandoffLeaksNoSlot(t *testing.T) {
	r := newAdmRig()
	a := vfsapi.NewAdmission(r.eng, "p", vfsapi.AdmissionConfig{MaxInFlight: 1, QueueCap: 4})
	errs := make([]error, 2)
	var lateErr error
	r.eng.Go("holder", func(p *sim.Proc) {
		if err := a.Admit(r.ctx(p)); err != nil {
			t.Errorf("holder shed: %v", err)
			return
		}
		p.Sleep(5 * time.Millisecond)
		// Hand the slot to the oldest waiter, then crash in the same
		// virtual instant, before the grantee resumes.
		a.Release()
		a.ShedQueued(vfsapi.ErrCrashed)
	})
	for i := 0; i < 2; i++ {
		i := i
		r.eng.Go("waiter", func(p *sim.Proc) {
			p.Sleep(time.Duration(i+1) * time.Millisecond)
			errs[i] = a.Admit(r.ctx(p))
		})
	}
	r.eng.Go("late", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		lateErr = a.Admit(r.ctx(p))
		if lateErr == nil {
			a.Release()
		}
	})
	r.eng.Run()

	for i, err := range errs {
		if !errors.Is(err, vfsapi.ErrCrashed) {
			t.Fatalf("waiter %d got %v, want ErrCrashed (granted slots must not survive the crash)", i, err)
		}
	}
	if lateErr != nil {
		t.Fatalf("post-crash op shed with %v; the handed-off slot leaked", lateErr)
	}
	s := a.Stats()
	if s.InFlight != 0 || s.Queued != 0 {
		t.Fatalf("crash leaked state: in-flight %d queued %d, want 0/0", s.InFlight, s.Queued)
	}
	if s.Offered != s.Admitted+s.Shed {
		t.Fatalf("drained ledger does not balance: %+v", s)
	}
}

// The decorator wraps every data operation in admit/release; a nil
// controller must leave the filesystem untouched.
func TestAdmittedDecorator(t *testing.T) {
	fs := memfs.New()
	if got := vfsapi.Admitted(fs, nil); got != vfsapi.FileSystem(fs) {
		t.Fatal("nil controller should return the inner filesystem")
	}
	r := newAdmRig()
	a := vfsapi.NewAdmission(r.eng, "p", vfsapi.AdmissionConfig{MaxInFlight: 2, QueueCap: 4})
	wrapped := vfsapi.Admitted(fs, a)
	r.eng.Go("ops", func(p *sim.Proc) {
		ctx := r.ctx(p)
		h, err := wrapped.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if _, err := h.Write(ctx, 0, 4096); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := h.Fsync(ctx); err != nil {
			t.Errorf("fsync: %v", err)
		}
		if err := h.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
		if _, err := wrapped.Stat(ctx, "/f"); err != nil {
			t.Errorf("stat: %v", err)
		}
	})
	r.eng.Run()
	s := a.Stats()
	// Open, Write, Fsync, Close (admission-exempt but ledger-counted),
	// Stat: five offered, all admitted, none shed, nothing residual.
	if s.Offered != 5 || s.Admitted != 5 || s.Shed != 0 {
		t.Fatalf("decorator ledger = %+v, want 5 offered/admitted", s)
	}
	if s.InFlight != 0 || s.Queued != 0 {
		t.Fatalf("residual in-flight/queued: %+v", s)
	}
}

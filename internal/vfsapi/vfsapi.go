// Package vfsapi defines the POSIX-like filesystem contract shared by
// every client path in the simulation: the kernel CephFS client, the
// FUSE clients, the union filesystems and the Danaus libservices all
// implement FileSystem, so workloads are written once and run against
// any configuration of Table 1.
//
// The simulation moves byte *counts*, not byte contents: reads and
// writes carry sizes and offsets, and the model charges the copy,
// cache, lock, network and device costs those sizes imply. Namespace
// semantics (create, unlink, rename, whiteouts, copy-up) are modelled
// exactly.
package vfsapi

import (
	"errors"
	"time"

	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Ctx carries the calling simulated thread through the stack: P is the
// scheduling process and T the CPU thread (affinity + accounting).
// Span, when non-nil, is the request-scoped observability span; layers
// bracket their work with Span.Enter and transports must copy it into
// the daemon-side Ctx they build (see internal/obs).
type Ctx struct {
	P    *sim.Proc
	T    *cpu.Thread
	Span *obs.Span
}

// OpenFlag is a bitmask of POSIX-like open flags.
type OpenFlag int

// Open flags. RDONLY is the zero value.
const (
	RDONLY OpenFlag = 0
	WRONLY OpenFlag = 1 << iota
	RDWR
	CREATE
	TRUNC
	APPEND
	// DIRECT bypasses the kernel page cache (the direct I/O mount
	// option used for configurations F, F/K and F/F).
	DIRECT
)

// Writable reports whether the flags permit writing.
func (f OpenFlag) Writable() bool { return f&(WRONLY|RDWR|APPEND) != 0 }

// Has reports whether flag o is set.
func (f OpenFlag) Has(o OpenFlag) bool { return f&o != 0 }

// FileInfo describes a file or directory.
type FileInfo struct {
	Name  string
	Size  int64
	IsDir bool
	MTime time.Duration // virtual time of last modification
}

// DirEntry is one readdir result.
type DirEntry struct {
	Name  string
	IsDir bool
}

// FileSystem is the POSIX-like interface of every client path.
type FileSystem interface {
	// Open opens (and with CREATE, creates) the file at path.
	Open(ctx Ctx, path string, flags OpenFlag) (Handle, error)
	// Stat returns metadata for path.
	Stat(ctx Ctx, path string) (FileInfo, error)
	// Mkdir creates a directory.
	Mkdir(ctx Ctx, path string) error
	// Readdir lists a directory.
	Readdir(ctx Ctx, path string) ([]DirEntry, error)
	// Unlink removes a file.
	Unlink(ctx Ctx, path string) error
	// Rmdir removes an empty directory.
	Rmdir(ctx Ctx, path string) error
	// Rename moves oldPath to newPath.
	Rename(ctx Ctx, oldPath, newPath string) error
}

// Handle is an open file.
type Handle interface {
	// Read transfers n bytes starting at off, returning the bytes
	// actually read (short at EOF).
	Read(ctx Ctx, off, n int64) (int64, error)
	// Write transfers n bytes starting at off, extending the file as
	// needed.
	Write(ctx Ctx, off, n int64) (int64, error)
	// Append writes n bytes at the current end of file and returns the
	// offset written at.
	Append(ctx Ctx, n int64) (int64, error)
	// Fsync persists buffered data for this file to the backend.
	Fsync(ctx Ctx) error
	// Close releases the handle.
	Close(ctx Ctx) error
	// Size returns the current file size as seen by this client.
	Size() int64
	// Path returns the path the handle was opened with.
	Path() string
}

// Errors returned by FileSystem implementations.
var (
	ErrNotExist = errors.New("file does not exist")
	ErrExist    = errors.New("file already exists")
	ErrIsDir    = errors.New("is a directory")
	ErrNotDir   = errors.New("not a directory")
	ErrNotEmpty = errors.New("directory not empty")
	ErrReadOnly = errors.New("read-only filesystem")
	ErrBadFlags = errors.New("invalid open flags")
	ErrClosed   = errors.New("handle is closed")
	// ErrIO is returned when a client exhausts its retry budget against
	// a faulted backend (crashed OSD, partitioned link) and gives up.
	ErrIO = errors.New("input/output error")
	// ErrOverload is returned when an admission controller sheds an
	// operation because both the in-flight slots and the bounded wait
	// queue are full (see Admission).
	ErrOverload = errors.New("overloaded: admission queue full")
	// ErrCrashed is the deterministic error of a crashed client-side
	// component (Danaus libservice, FUSE daemon, or kernel client):
	// in-flight and subsequent operations fail with it until the
	// component restarts, and handles opened before the crash keep
	// failing with it after recovery until reopened — the replayable
	// remount contract (see internal/faults client crash kinds).
	ErrCrashed = errors.New("client crashed: filesystem service unavailable")
)

package vfsapi

import "testing"

func TestOpenFlagWritable(t *testing.T) {
	cases := []struct {
		flags OpenFlag
		want  bool
	}{
		{RDONLY, false},
		{WRONLY, true},
		{RDWR, true},
		{APPEND, true},
		{CREATE, false}, // create alone is not a write grant
		{WRONLY | TRUNC, true},
		{RDONLY | DIRECT, false},
	}
	for _, c := range cases {
		if got := c.flags.Writable(); got != c.want {
			t.Errorf("Writable(%b) = %v, want %v", c.flags, got, c.want)
		}
	}
}

func TestOpenFlagHas(t *testing.T) {
	f := CREATE | WRONLY | DIRECT
	for _, present := range []OpenFlag{CREATE, WRONLY, DIRECT} {
		if !f.Has(present) {
			t.Errorf("flag %b should be present", present)
		}
	}
	for _, absent := range []OpenFlag{TRUNC, APPEND, RDWR} {
		if f.Has(absent) {
			t.Errorf("flag %b should be absent", absent)
		}
	}
}

func TestErrorsAreDistinct(t *testing.T) {
	errs := []error{ErrNotExist, ErrExist, ErrIsDir, ErrNotDir, ErrNotEmpty, ErrReadOnly, ErrBadFlags, ErrClosed}
	for i, a := range errs {
		for j, b := range errs {
			if i != j && a == b {
				t.Errorf("errors %d and %d alias", i, j)
			}
		}
	}
}

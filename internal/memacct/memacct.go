// Package memacct provides byte-level memory accounting with high-water
// tracking, used for the per-pool and per-cache memory comparisons of
// the paper (Fig 11 bottom: maximum memory vs container count).
package memacct

import "fmt"

// Meter tracks current and maximum bytes charged to one owner (a page
// cache, a user-level client cache, a pool).
type Meter struct {
	name string
	cur  int64
	max  int64
}

// NewMeter creates a named meter.
func NewMeter(name string) *Meter { return &Meter{name: name} }

// Name returns the meter's name.
func (m *Meter) Name() string { return m.name }

// Alloc charges n bytes.
func (m *Meter) Alloc(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("memacct: negative alloc %d on %s", n, m.name))
	}
	m.cur += n
	if m.cur > m.max {
		m.max = m.cur
	}
}

// Free releases n bytes.
func (m *Meter) Free(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("memacct: negative free %d on %s", n, m.name))
	}
	m.cur -= n
	if m.cur < 0 {
		panic(fmt.Sprintf("memacct: underflow on %s", m.name))
	}
}

// Current returns bytes currently charged.
func (m *Meter) Current() int64 { return m.cur }

// Max returns the high-water mark.
func (m *Meter) Max() int64 { return m.max }

// ResetMax sets the high-water mark to the current usage (measurement
// window boundary).
func (m *Meter) ResetMax() { m.max = m.cur }

// Group sums usage across several meters, e.g. all caches of one
// configuration in the Fig 11 memory plots.
type Group struct {
	meters []*Meter
}

// NewGroup creates a group over the given meters.
func NewGroup(meters ...*Meter) *Group { return &Group{meters: meters} }

// Add appends a meter to the group.
func (g *Group) Add(m *Meter) { g.meters = append(g.meters, m) }

// Current returns the summed current usage.
func (g *Group) Current() int64 {
	var t int64
	for _, m := range g.meters {
		t += m.cur
	}
	return t
}

// MaxSum returns the sum of individual high-water marks (an upper bound
// on the true combined peak, adequate for comparative reporting).
func (g *Group) MaxSum() int64 {
	var t int64
	for _, m := range g.meters {
		t += m.max
	}
	return t
}

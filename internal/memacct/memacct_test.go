package memacct

import "testing"

func TestMeterAllocFree(t *testing.T) {
	m := NewMeter("m")
	m.Alloc(100)
	m.Alloc(50)
	if m.Current() != 150 || m.Max() != 150 {
		t.Fatalf("cur=%d max=%d", m.Current(), m.Max())
	}
	m.Free(120)
	if m.Current() != 30 || m.Max() != 150 {
		t.Fatalf("after free cur=%d max=%d", m.Current(), m.Max())
	}
	m.Alloc(40)
	if m.Max() != 150 {
		t.Fatalf("max should not move below prior peak: %d", m.Max())
	}
	m.Alloc(200)
	if m.Max() != 270 {
		t.Fatalf("max should track new peak: %d", m.Max())
	}
	if m.Name() != "m" {
		t.Fatalf("name = %q", m.Name())
	}
}

func TestMeterResetMax(t *testing.T) {
	m := NewMeter("m")
	m.Alloc(100)
	m.Free(60)
	m.ResetMax()
	if m.Max() != 40 {
		t.Fatalf("ResetMax -> %d, want 40", m.Max())
	}
}

func TestMeterUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on underflow")
		}
	}()
	NewMeter("m").Free(1)
}

func TestMeterNegativeAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative alloc")
		}
	}()
	NewMeter("m").Alloc(-5)
}

func TestGroupSums(t *testing.T) {
	a, b := NewMeter("a"), NewMeter("b")
	g := NewGroup(a)
	g.Add(b)
	a.Alloc(100)
	b.Alloc(50)
	if g.Current() != 150 {
		t.Fatalf("group current = %d", g.Current())
	}
	a.Free(100)
	b.Alloc(25)
	if g.Current() != 75 {
		t.Fatalf("group current = %d", g.Current())
	}
	// MaxSum is the sum of individual peaks.
	if g.MaxSum() != 100+75 {
		t.Fatalf("group maxsum = %d", g.MaxSum())
	}
}

// Package extent implements sets of disjoint byte ranges, the core
// bookkeeping structure of every cache in the simulation: the kernel
// page cache and the user-level client cache both track which parts of
// each file are resident (and which are dirty) as extent sets.
package extent

import "sort"

// Extent is the half-open byte range [Off, Off+Len).
type Extent struct {
	Off int64
	Len int64
}

// End returns Off+Len.
func (e Extent) End() int64 { return e.Off + e.Len }

// Set is a collection of disjoint, sorted, coalesced extents. The zero
// value is an empty set ready for use.
type Set struct {
	ext []Extent
}

// Len returns the total bytes covered by the set.
func (s *Set) Len() int64 {
	var t int64
	for _, e := range s.ext {
		t += e.Len
	}
	return t
}

// Count returns the number of disjoint extents.
func (s *Set) Count() int { return len(s.ext) }

// Extents returns a copy of the extents in ascending order.
func (s *Set) Extents() []Extent {
	out := make([]Extent, len(s.ext))
	copy(out, s.ext)
	return out
}

// Insert adds [off, off+n) to the set, merging with any overlapping or
// adjacent extents. It returns the number of bytes newly covered.
func (s *Set) Insert(off, n int64) int64 {
	if n <= 0 {
		return 0
	}
	newExt := Extent{Off: off, Len: n}
	// Find the insertion window: all extents overlapping or adjacent.
	lo := sort.Search(len(s.ext), func(i int) bool { return s.ext[i].End() >= off })
	hi := sort.Search(len(s.ext), func(i int) bool { return s.ext[i].Off > newExt.End() })
	added := n
	mergedOff, mergedEnd := off, newExt.End()
	for _, e := range s.ext[lo:hi] {
		added -= overlap(e, newExt)
		if e.Off < mergedOff {
			mergedOff = e.Off
		}
		if e.End() > mergedEnd {
			mergedEnd = e.End()
		}
	}
	merged := Extent{Off: mergedOff, Len: mergedEnd - mergedOff}
	s.ext = append(s.ext[:lo], append([]Extent{merged}, s.ext[hi:]...)...)
	return added
}

// Remove deletes [off, off+n) from the set, splitting extents as
// needed. It returns the number of bytes actually removed.
func (s *Set) Remove(off, n int64) int64 {
	if n <= 0 {
		return 0
	}
	end := off + n
	var out []Extent
	var removed int64
	for _, e := range s.ext {
		if e.End() <= off || e.Off >= end {
			out = append(out, e)
			continue
		}
		removed += overlap(e, Extent{Off: off, Len: n})
		if e.Off < off {
			out = append(out, Extent{Off: e.Off, Len: off - e.Off})
		}
		if e.End() > end {
			out = append(out, Extent{Off: end, Len: e.End() - end})
		}
	}
	s.ext = out
	return removed
}

// Covered returns how many bytes of [off, off+n) are in the set.
func (s *Set) Covered(off, n int64) int64 {
	var t int64
	probe := Extent{Off: off, Len: n}
	for _, e := range s.ext {
		if e.Off >= probe.End() {
			break
		}
		t += overlap(e, probe)
	}
	return t
}

// Contains reports whether [off, off+n) is fully covered.
func (s *Set) Contains(off, n int64) bool { return s.Covered(off, n) == n }

// Gaps returns the subranges of [off, off+n) NOT covered by the set —
// the cache misses a read must fetch.
func (s *Set) Gaps(off, n int64) []Extent {
	var gaps []Extent
	end := off + n
	cur := off
	for _, e := range s.ext {
		if e.End() <= cur {
			continue
		}
		if e.Off >= end {
			break
		}
		if e.Off > cur {
			gaps = append(gaps, Extent{Off: cur, Len: e.Off - cur})
		}
		if e.End() > cur {
			cur = e.End()
		}
	}
	if cur < end {
		gaps = append(gaps, Extent{Off: cur, Len: end - cur})
	}
	return gaps
}

// PopFirst removes and returns up to max bytes from the lowest-offset
// extents (used by flushers draining dirty sets in file order).
func (s *Set) PopFirst(max int64) []Extent {
	var out []Extent
	var taken int64
	for taken < max && len(s.ext) > 0 {
		e := s.ext[0]
		want := max - taken
		if e.Len <= want {
			out = append(out, e)
			taken += e.Len
			s.ext = s.ext[1:]
		} else {
			out = append(out, Extent{Off: e.Off, Len: want})
			s.ext[0] = Extent{Off: e.Off + want, Len: e.Len - want}
			taken += want
		}
	}
	return out
}

// Clear empties the set.
func (s *Set) Clear() { s.ext = nil }

func overlap(a, b Extent) int64 {
	lo := a.Off
	if b.Off > lo {
		lo = b.Off
	}
	hi := a.End()
	if b.End() < hi {
		hi = b.End()
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

package extent

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertMergesAdjacentAndOverlapping(t *testing.T) {
	var s Set
	if added := s.Insert(0, 10); added != 10 {
		t.Fatalf("added = %d", added)
	}
	if added := s.Insert(10, 10); added != 10 {
		t.Fatalf("adjacent added = %d", added)
	}
	if s.Count() != 1 {
		t.Fatalf("adjacent extents not merged: %v", s.Extents())
	}
	if added := s.Insert(5, 10); added != 0 {
		t.Fatalf("fully-covered insert added %d, want 0", added)
	}
	if added := s.Insert(15, 10); added != 5 {
		t.Fatalf("partial overlap added %d, want 5", added)
	}
	if s.Len() != 25 || s.Count() != 1 {
		t.Fatalf("set = %v len=%d", s.Extents(), s.Len())
	}
}

func TestInsertBridgesGap(t *testing.T) {
	var s Set
	s.Insert(0, 10)
	s.Insert(20, 10)
	if s.Count() != 2 {
		t.Fatalf("expected 2 disjoint extents")
	}
	s.Insert(8, 14) // covers [8,22): bridges both
	if s.Count() != 1 || s.Len() != 30 {
		t.Fatalf("bridge failed: %v", s.Extents())
	}
}

func TestRemoveSplits(t *testing.T) {
	var s Set
	s.Insert(0, 100)
	if removed := s.Remove(40, 20); removed != 20 {
		t.Fatalf("removed = %d", removed)
	}
	if s.Count() != 2 || s.Len() != 80 {
		t.Fatalf("split failed: %v", s.Extents())
	}
	if s.Contains(40, 1) || !s.Contains(0, 40) || !s.Contains(60, 40) {
		t.Fatalf("membership wrong after split: %v", s.Extents())
	}
}

func TestGaps(t *testing.T) {
	var s Set
	s.Insert(10, 10)
	s.Insert(30, 10)
	gaps := s.Gaps(0, 50)
	want := []Extent{{0, 10}, {20, 10}, {40, 10}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", gaps, want)
		}
	}
	if g := s.Gaps(10, 10); g != nil {
		t.Fatalf("fully covered range has gaps: %v", g)
	}
}

func TestPopFirst(t *testing.T) {
	var s Set
	s.Insert(0, 10)
	s.Insert(20, 10)
	got := s.PopFirst(15)
	if len(got) != 2 || got[0] != (Extent{0, 10}) || got[1] != (Extent{20, 5}) {
		t.Fatalf("PopFirst = %v", got)
	}
	if s.Len() != 5 || !s.Contains(25, 5) {
		t.Fatalf("remainder wrong: %v", s.Extents())
	}
}

// bitmapModel is the naive reference implementation for property tests.
type bitmapModel [256]bool

func (m *bitmapModel) insert(off, n int64) int64 {
	var added int64
	for i := off; i < off+n && i < 256; i++ {
		if !m[i] {
			m[i] = true
			added++
		}
	}
	return added
}

func (m *bitmapModel) remove(off, n int64) int64 {
	var removed int64
	for i := off; i < off+n && i < 256; i++ {
		if m[i] {
			m[i] = false
			removed++
		}
	}
	return removed
}

func (m *bitmapModel) covered(off, n int64) int64 {
	var c int64
	for i := off; i < off+n && i < 256; i++ {
		if m[i] {
			c++
		}
	}
	return c
}

func (m *bitmapModel) total() int64 {
	var c int64
	for _, b := range m {
		if b {
			c++
		}
	}
	return c
}

// TestSetMatchesBitmapModel drives random operation sequences against
// both the extent set and a bitmap oracle.
func TestSetMatchesBitmapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		var m bitmapModel
		for step := 0; step < 200; step++ {
			off := rng.Int63n(200)
			n := rng.Int63n(56) + 1
			switch rng.Intn(3) {
			case 0:
				if s.Insert(off, n) != m.insert(off, n) {
					return false
				}
			case 1:
				if s.Remove(off, n) != m.remove(off, n) {
					return false
				}
			case 2:
				if s.Covered(off, n) != m.covered(off, n) {
					return false
				}
			}
			if s.Len() != m.total() {
				return false
			}
			// Invariant: extents sorted, disjoint, non-adjacent.
			prev := Extent{Off: -2, Len: 1}
			for _, e := range s.Extents() {
				if e.Len <= 0 || e.Off < prev.End() || e.Off == prev.End() {
					return false
				}
				prev = e
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestGapsPlusCoveredIsComplete verifies gaps and covered partition any
// probe range.
func TestGapsPlusCoveredIsComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		for i := 0; i < 20; i++ {
			s.Insert(rng.Int63n(500), rng.Int63n(50)+1)
		}
		off := rng.Int63n(400)
		n := rng.Int63n(200) + 1
		var gapTotal int64
		prevEnd := off - 1
		for _, g := range s.Gaps(off, n) {
			if g.Len <= 0 || g.Off <= prevEnd-1 {
				return false
			}
			if s.Covered(g.Off, g.Len) != 0 {
				return false // gaps must be uncovered
			}
			gapTotal += g.Len
			prevEnd = g.End()
		}
		return gapTotal+s.Covered(off, n) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroAndNegativeSizes(t *testing.T) {
	var s Set
	if s.Insert(5, 0) != 0 || s.Insert(5, -3) != 0 {
		t.Fatal("zero/negative insert should add nothing")
	}
	if s.Remove(0, 0) != 0 {
		t.Fatal("zero remove should remove nothing")
	}
	if s.Covered(0, 0) != 0 || s.Contains(0, 0) != true {
		t.Fatal("empty probe: covered 0, contains vacuously true")
	}
}

func TestPopFirstEdgeCases(t *testing.T) {
	var s Set
	if got := s.PopFirst(100); got != nil {
		t.Fatalf("pop from empty = %v", got)
	}
	s.Insert(10, 5)
	if got := s.PopFirst(0); got != nil {
		t.Fatalf("pop zero = %v", got)
	}
	got := s.PopFirst(100)
	if len(got) != 1 || got[0] != (Extent{10, 5}) {
		t.Fatalf("pop all = %v", got)
	}
	if s.Len() != 0 || s.Count() != 0 {
		t.Fatalf("set not drained: %v", s.Extents())
	}
}

func TestClear(t *testing.T) {
	var s Set
	s.Insert(0, 100)
	s.Insert(200, 50)
	s.Clear()
	if s.Len() != 0 || s.Count() != 0 {
		t.Fatal("clear failed")
	}
	s.Insert(5, 5)
	if s.Len() != 5 {
		t.Fatal("set unusable after clear")
	}
}

// Package ipc models the Danaus interprocess communication: fixed-size
// circular request queues in shared memory, one per core group, between
// the filesystem library preloaded into each application (front driver)
// and the filesystem service of the tenant (back driver).
//
// The transport stays entirely at user level: no mode switches and no
// data copies through the kernel. An application thread is pinned to
// the cores of the queue that receives its first request, and service
// threads are pinned to the cores of the queue they serve, minimizing
// migrations and cache-line bouncing (§3.5). A context switch is paid
// only when the target service thread has gone idle; under load the
// service side is already running and requests flow switch-free — the
// source of the 9-39x context-switch gap against stacked FUSE (Fig 8b).
package ipc

import (
	"time"

	"repro/internal/cpu"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// Config configures the transport of one filesystem service.
type Config struct {
	// Name for diagnostics.
	Name string
	// Mask is the pool's reserved cores; one queue is created per core
	// group in it.
	Mask cpu.Mask
	// Acct is the service account (CPU attribution of service threads).
	Acct *cpu.Account
	// NoPinning disables the front driver's thread-to-queue pinning
	// (ablation of the §3.5 placement policy): threads pick queues
	// round-robin on every call and keep their original affinity.
	NoPinning bool
}

// Transport connects applications to a filesystem service over
// shared-memory queues. It implements vfsapi.FileSystem by forwarding
// every operation to the inner filesystem instance on a service thread.
type Transport struct {
	eng    *sim.Engine
	cpus   *cpu.CPU
	params *model.Params
	inner  vfsapi.FileSystem
	cfg    Config

	queues []*queueState
	pinned map[*cpu.Thread]*queueState
	rr     int

	calls       uint64
	wakeups     uint64
	scaleEvents int
}

type queueState struct {
	mask       cpu.Mask
	svcThreads []*cpu.Thread // grows under backlog (§3.5)
	next       int
	inflight   int
	dispatch   *sim.Mutex
	lastServed time.Duration
	everServed bool
}

// New creates the transport with one queue (and one pinned service
// thread) per core group of the pool mask.
func New(eng *sim.Engine, cpus *cpu.CPU, params *model.Params, inner vfsapi.FileSystem, cfg Config) *Transport {
	if cfg.Acct == nil {
		cfg.Acct = cpu.NewAccount(cfg.Name + ".fsvc")
	}
	if cfg.Mask == 0 {
		cfg.Mask = cpus.AllMask()
	}
	t := &Transport{
		eng:    eng,
		cpus:   cpus,
		params: params,
		inner:  inner,
		cfg:    cfg,
		pinned: map[*cpu.Thread]*queueState{},
	}
	for g := 0; g < cpus.NumGroups(); g++ {
		gm := cpus.GroupMask(g) & cfg.Mask
		if gm == 0 {
			continue
		}
		t.queues = append(t.queues, &queueState{
			mask:       gm,
			svcThreads: []*cpu.Thread{cpus.NewThread(cfg.Acct, gm)},
			dispatch:   sim.NewMutex(eng, cfg.Name+".q"),
		})
	}
	if len(t.queues) == 0 {
		panic("ipc: pool mask covers no core group")
	}
	return t
}

// Inner returns the filesystem instance behind the service.
func (t *Transport) Inner() vfsapi.FileSystem { return t.inner }

// Calls returns the number of requests carried.
func (t *Transport) Calls() uint64 { return t.calls }

// Wakeups returns how many requests found the service thread asleep.
func (t *Transport) Wakeups() uint64 { return t.wakeups }

// queueFor pins the calling thread to a queue on first use (§3.5: the
// front driver pins the thread to the cores of the request queue that
// receives its first I/O request).
func (t *Transport) queueFor(th *cpu.Thread) *queueState {
	if t.cfg.NoPinning {
		q := t.queues[t.rr%len(t.queues)]
		t.rr++
		return q
	}
	if q, ok := t.pinned[th]; ok {
		return q
	}
	var q *queueState
	if last := th.LastCore(); last >= 0 {
		for _, cand := range t.queues {
			if cand.mask.Has(last) {
				q = cand
				break
			}
		}
	}
	if q == nil {
		q = t.queues[t.rr%len(t.queues)]
		t.rr++
	}
	t.pinned[th] = q
	th.SetAffinity(q.mask)
	return q
}

// call performs one request/response over the queue: descriptor
// enqueue by the app thread, service-side dispatch and execution on the
// pinned service thread, all at user level.
func (t *Transport) call(ctx vfsapi.Ctx, fn func(dctx vfsapi.Ctx) error) error {
	defer ctx.Span.Enter(obs.LayerIPC).Exit()
	t.calls++
	q := t.queueFor(ctx.T)
	p := t.params

	// Front driver: fill the request descriptor in shared memory.
	ctx.T.Exec(ctx.P, cpu.User, p.IPCEnqueueCost)

	// Wake the service thread if its poll window has lapsed.
	now := t.eng.Now()
	if !q.everServed || now-q.lastServed > t.params.IPCPollWindow {
		t.wakeups++
		ctx.T.ContextSwitch(ctx.P)
		ctx.T.Exec(ctx.P, cpu.User, p.IPCWakeupCost)
	}

	// Back driver: pick a service thread, growing the pool when the
	// queue backlog exceeds the scale threshold (§3.5: extra service
	// threads are added when pending requests accumulate).
	q.inflight++
	if q.inflight > (len(q.svcThreads))*p.IPCScaleThreshold && len(q.svcThreads) < 8 {
		q.svcThreads = append(q.svcThreads, t.cpus.NewThread(t.cfg.Acct, q.mask))
		t.scaleEvents++
	}
	svc := q.svcThreads[q.next%len(q.svcThreads)]
	q.next++

	dctx := vfsapi.Ctx{P: ctx.P, T: svc, Span: ctx.Span}
	q.dispatch.Lock(ctx.P)
	svc.Exec(ctx.P, cpu.User, p.IPCEnqueueCost)
	q.dispatch.Unlock(ctx.P)
	err := fn(dctx)
	q.inflight--
	q.lastServed = t.eng.Now()
	q.everServed = true
	return err
}

// ScaleEvents reports how many extra service threads were spawned in
// response to queue backlog.
func (t *Transport) ScaleEvents() int { return t.scaleEvents }

// Repin moves every service thread (and future pinnings) to the new
// pool mask — the §9 dynamic resource reallocation. Already-pinned
// application threads keep their queues and follow them onto the
// queue's narrowed mask, preserving the §3.5 queue-locality invariant
// (thread affinity == the cores of the queue it enqueues on).
func (t *Transport) Repin(mask cpu.Mask) {
	if mask == 0 {
		return
	}
	t.cfg.Mask = mask
	for _, q := range t.queues {
		q.mask = q.mask & mask
		if q.mask == 0 {
			q.mask = mask
		}
		for _, th := range q.svcThreads {
			th.SetAffinity(q.mask)
		}
	}
	for th, q := range t.pinned {
		th.SetAffinity(q.mask)
	}
}

// Open forwards through the queue and wraps the handle.
func (t *Transport) Open(ctx vfsapi.Ctx, path string, flags vfsapi.OpenFlag) (vfsapi.Handle, error) {
	var h vfsapi.Handle
	err := t.call(ctx, func(dctx vfsapi.Ctx) error {
		var err error
		h, err = t.inner.Open(dctx, path, flags)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &ipcHandle{t: t, inner: h}, nil
}

// Stat forwards through the queue.
func (t *Transport) Stat(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, error) {
	var info vfsapi.FileInfo
	err := t.call(ctx, func(dctx vfsapi.Ctx) error {
		var err error
		info, err = t.inner.Stat(dctx, path)
		return err
	})
	return info, err
}

// Mkdir forwards through the queue.
func (t *Transport) Mkdir(ctx vfsapi.Ctx, path string) error {
	return t.call(ctx, func(dctx vfsapi.Ctx) error { return t.inner.Mkdir(dctx, path) })
}

// Readdir forwards through the queue.
func (t *Transport) Readdir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	var ents []vfsapi.DirEntry
	err := t.call(ctx, func(dctx vfsapi.Ctx) error {
		var err error
		ents, err = t.inner.Readdir(dctx, path)
		return err
	})
	return ents, err
}

// Unlink forwards through the queue.
func (t *Transport) Unlink(ctx vfsapi.Ctx, path string) error {
	return t.call(ctx, func(dctx vfsapi.Ctx) error { return t.inner.Unlink(dctx, path) })
}

// Rmdir forwards through the queue.
func (t *Transport) Rmdir(ctx vfsapi.Ctx, path string) error {
	return t.call(ctx, func(dctx vfsapi.Ctx) error { return t.inner.Rmdir(dctx, path) })
}

// Rename forwards through the queue.
func (t *Transport) Rename(ctx vfsapi.Ctx, oldPath, newPath string) error {
	return t.call(ctx, func(dctx vfsapi.Ctx) error { return t.inner.Rename(dctx, oldPath, newPath) })
}

type ipcHandle struct {
	t     *Transport
	inner vfsapi.Handle
}

func (h *ipcHandle) Path() string { return h.inner.Path() }
func (h *ipcHandle) Size() int64  { return h.inner.Size() }

// Read forwards through the queue; data returns via the caller's
// request buffer in shared memory (no kernel copies).
func (h *ipcHandle) Read(ctx vfsapi.Ctx, off, n int64) (int64, error) {
	var got int64
	err := h.t.call(ctx, func(dctx vfsapi.Ctx) error {
		var err error
		got, err = h.inner.Read(dctx, off, n)
		return err
	})
	return got, err
}

// Write forwards through the queue.
func (h *ipcHandle) Write(ctx vfsapi.Ctx, off, n int64) (int64, error) {
	var got int64
	err := h.t.call(ctx, func(dctx vfsapi.Ctx) error {
		var err error
		got, err = h.inner.Write(dctx, off, n)
		return err
	})
	return got, err
}

// Append forwards through the queue.
func (h *ipcHandle) Append(ctx vfsapi.Ctx, n int64) (int64, error) {
	var off int64
	err := h.t.call(ctx, func(dctx vfsapi.Ctx) error {
		var err error
		off, err = h.inner.Append(dctx, n)
		return err
	})
	return off, err
}

// Fsync forwards through the queue.
func (h *ipcHandle) Fsync(ctx vfsapi.Ctx) error {
	return h.t.call(ctx, func(dctx vfsapi.Ctx) error { return h.inner.Fsync(dctx) })
}

// Close forwards through the queue.
func (h *ipcHandle) Close(ctx vfsapi.Ctx) error {
	return h.t.call(ctx, func(dctx vfsapi.Ctx) error { return h.inner.Close(dctx) })
}

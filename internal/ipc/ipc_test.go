package ipc

import (
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

type rig struct {
	eng  *sim.Engine
	cpus *cpu.CPU
	mem  *memfs.FS
	tr   *Transport
	acct *cpu.Account
}

func newRig(t *testing.T, mask cpu.Mask) *rig {
	t.Helper()
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 8)
	mem := memfs.New()
	acct := cpu.NewAccount("pool")
	tr := New(eng, cpus, params, mem, Config{Name: "svc", Mask: mask, Acct: acct})
	return &rig{eng: eng, cpus: cpus, mem: mem, tr: tr, acct: acct}
}

func (r *rig) run(t *testing.T, fn func(ctx vfsapi.Ctx)) {
	t.Helper()
	r.eng.Go("app", func(p *sim.Proc) {
		fn(vfsapi.Ctx{P: p, T: r.cpus.NewThread(r.acct, cpu.MaskOf(0, 1, 2, 3))})
	})
	r.eng.Run()
}

func TestOperationsForwarded(t *testing.T) {
	r := newRig(t, cpu.MaskOf(0, 1, 2, 3))
	r.mem.Provision("/f", 1000)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := r.tr.Open(ctx, "/f", vfsapi.RDONLY)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := h.Read(ctx, 0, 500); got != 500 {
			t.Fatalf("read %d", got)
		}
		h.Close(ctx)
		hw, _ := r.tr.Open(ctx, "/g", vfsapi.CREATE|vfsapi.WRONLY)
		hw.Write(ctx, 0, 100)
		off, _ := hw.Append(ctx, 20)
		if off != 100 {
			t.Fatalf("append at %d", off)
		}
		hw.Fsync(ctx)
		hw.Close(ctx)
		info, err := r.tr.Stat(ctx, "/g")
		if err != nil || info.Size != 120 {
			t.Fatalf("stat: %+v %v", info, err)
		}
	})
	if r.tr.Calls() == 0 {
		t.Fatal("no calls recorded")
	}
}

func TestNoModeSwitchesOnDefaultPath(t *testing.T) {
	r := newRig(t, cpu.MaskOf(0, 1, 2, 3))
	r.mem.Provision("/f", 1<<20)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.tr.Open(ctx, "/f", vfsapi.RDONLY)
		for i := 0; i < 10; i++ {
			h.Read(ctx, 0, 1<<20)
		}
		h.Close(ctx)
	})
	if got := r.acct.ModeSwitches(); got != 0 {
		t.Fatalf("mode switches on user-level path = %d, want 0", got)
	}
}

func TestBurstAvoidsWakeups(t *testing.T) {
	r := newRig(t, cpu.MaskOf(0, 1, 2, 3))
	r.mem.Provision("/f", 1000)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.tr.Open(ctx, "/f", vfsapi.RDONLY)
		for i := 0; i < 100; i++ {
			h.Read(ctx, 0, 100)
		}
		h.Close(ctx)
	})
	// Back-to-back requests hit a polling service thread: only the
	// first call should need a wakeup.
	if w := r.tr.Wakeups(); w != 1 {
		t.Fatalf("wakeups = %d, want 1 for a tight burst", w)
	}
	if got := r.acct.ContextSwitches(); got != 1 {
		t.Fatalf("context switches = %d, want 1", got)
	}
}

func TestIdleGapCausesWakeup(t *testing.T) {
	r := newRig(t, cpu.MaskOf(0, 1, 2, 3))
	r.mem.Provision("/f", 1000)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.tr.Open(ctx, "/f", vfsapi.RDONLY)
		h.Read(ctx, 0, 100)
		ctx.P.Sleep(10 * time.Millisecond) // let the service thread sleep
		h.Read(ctx, 0, 100)
		h.Close(ctx)
	})
	if w := r.tr.Wakeups(); w != 2 {
		t.Fatalf("wakeups = %d, want 2 (initial + after idle gap)", w)
	}
}

func TestThreadPinnedToQueueGroup(t *testing.T) {
	r := newRig(t, cpu.MaskOf(0, 1, 2, 3))
	r.mem.Provision("/f", 1000)
	var mask cpu.Mask
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.tr.Open(ctx, "/f", vfsapi.RDONLY)
		h.Read(ctx, 0, 100)
		h.Close(ctx)
		mask = ctx.T.Affinity()
	})
	// After the first request the app thread must be pinned to exactly
	// one core group (2 cores).
	if mask.Count() != 2 {
		t.Fatalf("thread affinity after pinning = %v, want one core group", mask)
	}
}

func TestServiceStaysInsidePoolMask(t *testing.T) {
	r := newRig(t, cpu.MaskOf(0, 1))
	r.mem.Provision("/f", 64<<20)
	r.eng.Go("app", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: r.cpus.NewThread(r.acct, cpu.MaskOf(0, 1))}
		h, _ := r.tr.Open(ctx, "/f", vfsapi.RDONLY)
		for i := 0; i < 20; i++ {
			h.Read(ctx, 0, 1<<20)
		}
		h.Close(ctx)
	})
	r.eng.Run()
	util := r.cpus.UtilSnapshot()
	for core := 2; core < 8; core++ {
		if util[core] != 0 {
			t.Fatalf("service work leaked to core %d: %v", core, util)
		}
	}
}

func TestErrorsPropagate(t *testing.T) {
	r := newRig(t, cpu.MaskOf(0, 1, 2, 3))
	r.run(t, func(ctx vfsapi.Ctx) {
		if _, err := r.tr.Open(ctx, "/missing", vfsapi.RDONLY); err != vfsapi.ErrNotExist {
			t.Fatalf("open missing: %v", err)
		}
		if err := r.tr.Mkdir(ctx, "/a/b/c"); err != vfsapi.ErrNotExist {
			t.Fatalf("mkdir under missing: %v", err)
		}
	})
}

func TestDirectoryOpsForwarded(t *testing.T) {
	r := newRig(t, cpu.MaskOf(0, 1, 2, 3))
	r.run(t, func(ctx vfsapi.Ctx) {
		r.tr.Mkdir(ctx, "/d")
		h, _ := r.tr.Open(ctx, "/d/f", vfsapi.CREATE|vfsapi.WRONLY)
		h.Close(ctx)
		ents, err := r.tr.Readdir(ctx, "/d")
		if err != nil || len(ents) != 1 {
			t.Fatalf("readdir %v %v", ents, err)
		}
		if err := r.tr.Rename(ctx, "/d/f", "/d/g"); err != nil {
			t.Fatal(err)
		}
		if err := r.tr.Unlink(ctx, "/d/g"); err != nil {
			t.Fatal(err)
		}
		if err := r.tr.Rmdir(ctx, "/d"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestBacklogSpawnsExtraServiceThreads(t *testing.T) {
	eng := sim.NewEngine()
	params := model.Default()
	params.IPCScaleThreshold = 2 // scale early for the test
	cpus := cpu.New(eng, params, 8)
	mem := memfs.New()
	mem.OpDelay = time.Millisecond // slow service => backlog builds
	mem.Provision("/f", 1<<20)
	acct := cpu.NewAccount("pool")
	tr := New(eng, cpus, params, mem, Config{Name: "svc", Mask: cpu.MaskOf(0, 1), Acct: acct})
	for i := 0; i < 16; i++ {
		eng.Go("app", func(p *sim.Proc) {
			ctx := vfsapi.Ctx{P: p, T: cpus.NewThread(acct, cpu.MaskOf(0, 1))}
			h, _ := tr.Open(ctx, "/f", vfsapi.RDONLY)
			for j := 0; j < 4; j++ {
				h.Read(ctx, 0, 1024)
			}
			h.Close(ctx)
		})
	}
	eng.Run()
	if tr.ScaleEvents() == 0 {
		t.Fatal("sustained backlog never grew the service-thread pool")
	}
}

func TestRepinMovesServiceThreads(t *testing.T) {
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 4)
	mem := memfs.New()
	mem.Provision("/f", 16<<20)
	acct := cpu.NewAccount("pool")
	tr := New(eng, cpus, params, mem, Config{Name: "svc", Mask: cpu.MaskOf(0, 1), Acct: acct})
	eng.Go("app", func(p *sim.Proc) {
		th := cpus.NewThread(acct, cpu.MaskOf(0, 1))
		ctx := vfsapi.Ctx{P: p, T: th}
		h, _ := tr.Open(ctx, "/f", vfsapi.RDONLY)
		for i := 0; i < 8; i++ {
			h.Read(ctx, 0, 1<<20)
		}
		before := cpus.UtilSnapshot()
		tr.Repin(cpu.MaskOf(2, 3))
		th.SetAffinity(cpu.MaskOf(2, 3))
		for i := 0; i < 8; i++ {
			h.Read(ctx, 0, 1<<20)
		}
		h.Close(ctx)
		after := cpus.UtilSnapshot()
		if after[0] != before[0] || after[1] != before[1] {
			t.Errorf("work continued on old cores after repin")
		}
		if after[2] == before[2] && after[3] == before[3] {
			t.Errorf("no work on new cores after repin")
		}
	})
	eng.Run()
}

func TestRepinKeepsQueueLocalityForPinnedThreads(t *testing.T) {
	// Two queues (core groups {0,1} and {2,3}) with one app thread
	// pinned to each. After Repin to an overlapping mask the queues
	// narrow to {1} and {2}; each pinned thread must follow its OWN
	// queue's narrowed mask, not the whole pool mask.
	r := newRig(t, cpu.MaskOf(0, 1, 2, 3))
	r.mem.Provision("/f", 1<<20)
	r.eng.Go("app", func(p *sim.Proc) {
		th0 := r.cpus.NewThread(r.acct, cpu.MaskOf(0, 1, 2, 3))
		th1 := r.cpus.NewThread(r.acct, cpu.MaskOf(0, 1, 2, 3))
		for _, th := range []*cpu.Thread{th0, th1} {
			ctx := vfsapi.Ctx{P: p, T: th}
			h, err := r.tr.Open(ctx, "/f", vfsapi.RDONLY)
			if err != nil {
				t.Fatal(err)
			}
			h.Read(ctx, 0, 1024)
			h.Close(ctx)
		}
		q0, q1 := r.tr.pinned[th0], r.tr.pinned[th1]
		if q0 == nil || q1 == nil {
			t.Fatal("app threads were not pinned by their first request")
		}
		if q0 == q1 {
			t.Fatal("both threads pinned to the same queue; want distinct queues")
		}
		r.tr.Repin(cpu.MaskOf(1, 2))
		if q0.mask == q1.mask {
			t.Fatalf("queues collapsed onto one mask %v after repin", q0.mask)
		}
		if got := th0.Affinity(); got != q0.mask {
			t.Errorf("th0 affinity = %v, want its queue's mask %v", got, q0.mask)
		}
		if got := th1.Affinity(); got != q1.mask {
			t.Errorf("th1 affinity = %v, want its queue's mask %v", got, q1.mask)
		}
	})
	r.eng.Run()
}

package kern

import (
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/vfsapi"
)

// Syscalls wraps a kernel filesystem with the user-entry costs of the
// system-call interface: a mode switch in and out of the kernel plus
// the VFS dispatch cost per operation. Kernel union filesystems and
// their branches run inside one Syscalls boundary (a single crossing),
// which is exactly the advantage the kernel path holds over stacked
// FUSE daemons.
type Syscalls struct {
	kern  *Kernel
	inner vfsapi.FileSystem
}

// NewSyscalls wraps inner with syscall entry/exit costs.
func NewSyscalls(k *Kernel, inner vfsapi.FileSystem) *Syscalls {
	return &Syscalls{kern: k, inner: inner}
}

// Inner returns the wrapped filesystem.
func (s *Syscalls) Inner() vfsapi.FileSystem { return s.inner }

func (s *Syscalls) enter(ctx vfsapi.Ctx) obs.Scope {
	sc := ctx.Span.Enter(obs.LayerSyscall)
	ctx.T.ModeSwitch(ctx.P)
	ctx.T.Exec(ctx.P, cpu.Kernel, s.kern.params.VFSOpCost)
	return sc
}

func (s *Syscalls) exit(ctx vfsapi.Ctx, sc obs.Scope) {
	ctx.T.ModeSwitch(ctx.P)
	sc.Exit()
}

// Open enters the kernel, dispatches, and returns a cost-wrapped handle.
func (s *Syscalls) Open(ctx vfsapi.Ctx, path string, flags vfsapi.OpenFlag) (vfsapi.Handle, error) {
	sc := s.enter(ctx)
	h, err := s.inner.Open(ctx, path, flags)
	s.exit(ctx, sc)
	if err != nil {
		return nil, err
	}
	return &syscallHandle{s: s, inner: h}, nil
}

// Stat performs a syscall-wrapped Stat.
func (s *Syscalls) Stat(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, error) {
	sc := s.enter(ctx)
	info, err := s.inner.Stat(ctx, path)
	s.exit(ctx, sc)
	return info, err
}

// Mkdir performs a syscall-wrapped Mkdir.
func (s *Syscalls) Mkdir(ctx vfsapi.Ctx, path string) error {
	sc := s.enter(ctx)
	err := s.inner.Mkdir(ctx, path)
	s.exit(ctx, sc)
	return err
}

// Readdir performs a syscall-wrapped Readdir.
func (s *Syscalls) Readdir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	sc := s.enter(ctx)
	ents, err := s.inner.Readdir(ctx, path)
	s.exit(ctx, sc)
	return ents, err
}

// Unlink performs a syscall-wrapped Unlink.
func (s *Syscalls) Unlink(ctx vfsapi.Ctx, path string) error {
	sc := s.enter(ctx)
	err := s.inner.Unlink(ctx, path)
	s.exit(ctx, sc)
	return err
}

// Rmdir performs a syscall-wrapped Rmdir.
func (s *Syscalls) Rmdir(ctx vfsapi.Ctx, path string) error {
	sc := s.enter(ctx)
	err := s.inner.Rmdir(ctx, path)
	s.exit(ctx, sc)
	return err
}

// Rename performs a syscall-wrapped Rename.
func (s *Syscalls) Rename(ctx vfsapi.Ctx, oldPath, newPath string) error {
	sc := s.enter(ctx)
	err := s.inner.Rename(ctx, oldPath, newPath)
	s.exit(ctx, sc)
	return err
}

type syscallHandle struct {
	s     *Syscalls
	inner vfsapi.Handle
}

func (h *syscallHandle) Path() string { return h.inner.Path() }
func (h *syscallHandle) Size() int64  { return h.inner.Size() }

func (h *syscallHandle) Read(ctx vfsapi.Ctx, off, n int64) (int64, error) {
	sc := h.s.enter(ctx)
	got, err := h.inner.Read(ctx, off, n)
	h.s.exit(ctx, sc)
	return got, err
}

func (h *syscallHandle) Write(ctx vfsapi.Ctx, off, n int64) (int64, error) {
	sc := h.s.enter(ctx)
	got, err := h.inner.Write(ctx, off, n)
	h.s.exit(ctx, sc)
	return got, err
}

func (h *syscallHandle) Append(ctx vfsapi.Ctx, n int64) (int64, error) {
	sc := h.s.enter(ctx)
	off, err := h.inner.Append(ctx, n)
	h.s.exit(ctx, sc)
	return off, err
}

func (h *syscallHandle) Fsync(ctx vfsapi.Ctx) error {
	sc := h.s.enter(ctx)
	err := h.inner.Fsync(ctx)
	h.s.exit(ctx, sc)
	return err
}

func (h *syscallHandle) Close(ctx vfsapi.Ctx) error {
	sc := h.s.enter(ctx)
	err := h.inner.Close(ctx)
	h.s.exit(ctx, sc)
	return err
}

package kern

import (
	"container/list"
	"time"

	"repro/internal/cpu"
	"repro/internal/extent"
	"repro/internal/memacct"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// Store is the backing of a kernel mount: the local disk filesystem or
// the kernel Ceph client's network path. Data calls block for the
// device or network time they imply.
type Store interface {
	Lookup(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, uint64, error)
	Create(ctx vfsapi.Ctx, path string) (uint64, error)
	Mkdir(ctx vfsapi.Ctx, path string) error
	Readdir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error)
	Unlink(ctx vfsapi.Ctx, path string) (uint64, error)
	Rmdir(ctx vfsapi.Ctx, path string) error
	Rename(ctx vfsapi.Ctx, oldPath, newPath string) error
	SetSize(ctx vfsapi.Ctx, ino uint64, size int64) error
	ReadData(ctx vfsapi.Ctx, ino uint64, off, n int64)
	WriteData(ctx vfsapi.Ctx, ino uint64, off, n int64)
}

// MountConfig configures a kernel mount's caching behaviour.
type MountConfig struct {
	// Name identifies the mount in diagnostics.
	Name string
	// Tenant is the pool the mount's data belongs to, used to tag
	// flusher writeback spans with their originating tenant (the pool
	// whose dirty data recruited the flusher). Defaults to Name.
	Tenant string
	// MemLimit bounds the page-cache bytes this mount may hold (the
	// cgroup memory reservation of its pool).
	MemLimit int64
	// MaxDirty is the dirty-byte throttle threshold (the paper sets it
	// to 50% of pool RAM for the kernel Ceph client).
	MaxDirty int64
	// Meter attributes cache memory; optional.
	Meter *memacct.Meter
}

// Mount is one kernel filesystem instance: a Store fronted by the
// shared page cache. It implements vfsapi.FileSystem.
type Mount struct {
	kern  *Kernel
	store Store
	cfg   MountConfig
	meter *memacct.Meter

	files     map[uint64]*fileState
	lru       *list.List // *fileState, front = coldest
	dirtyList []*fileState

	dirtyBytes  int64
	oldestDirty time.Duration
	bgThresh    int64
	flushing    int // flusher threads currently working this mount
	throttleQ   *sim.WaitQueue

	// Writeback pacing state (balance_dirty_pages): an EWMA of the
	// recently achieved flush rate paces writers when dirty data sits
	// between the background and hard thresholds.
	flushRate     float64 // bytes/sec
	lastFlushDone time.Duration

	readahead int64          // max readahead window; 0 disables
	fetchQ    *sim.WaitQueue // readers waiting on in-flight page reads

	// crashed marks a host/kernel-client crash: operations fail with
	// vfsapi.ErrCrashed until Restart. gen invalidates handles opened
	// before the crash — the remount is replayable, applications reopen.
	crashed bool
	gen     uint64
	crashes uint64
}

type fileState struct {
	ino        uint64
	gen        uint64 // mount crash generation at creation
	size       int64
	cached     extent.Set
	dirty      extent.Set
	fetching   extent.Set // ranges being read in by another thread
	imutex     *sim.Mutex
	lruElem    *list.Element
	inDirty    bool
	dirtySince time.Duration
	unlinked   bool
	flushing   bool // a flusher is writing this file back
}

// Mount attaches a store to the kernel page cache and registers it for
// writeback.
func (k *Kernel) Mount(store Store, cfg MountConfig) *Mount {
	if cfg.MemLimit <= 0 {
		cfg.MemLimit = 1 << 62
	}
	if cfg.MaxDirty <= 0 {
		cfg.MaxDirty = cfg.MemLimit / 2
	}
	if cfg.Tenant == "" {
		cfg.Tenant = cfg.Name
	}
	meter := cfg.Meter
	if meter == nil {
		meter = memacct.NewMeter(cfg.Name + ".pagecache")
	}
	m := &Mount{
		kern:      k,
		store:     store,
		cfg:       cfg,
		meter:     meter,
		files:     map[uint64]*fileState{},
		lru:       list.New(),
		bgThresh:  cfg.MaxDirty / 2,
		throttleQ: sim.NewWaitQueue(k.eng, cfg.Name+".throttle"),
		fetchQ:    sim.NewWaitQueue(k.eng, cfg.Name+".fetch"),
		readahead: 512 << 10,
	}
	if m.bgThresh == 0 {
		m.bgThresh = 1
	}
	k.mounts = append(k.mounts, m)
	return m
}

// maxDirty is the effective hard dirty threshold: the configured limit
// normally, a quarter of it (at least one byte) in brownout, so an
// overloaded backend accumulates a quarter of the buffered state.
func (m *Mount) maxDirty() int64 {
	if m.kern.brownout > 0 {
		if v := m.cfg.MaxDirty / 4; v > 1 {
			return v
		}
		return 1
	}
	return m.cfg.MaxDirty
}

// bgThreshold is the effective background writeback threshold,
// tightened like maxDirty in brownout so flushers start draining early.
func (m *Mount) bgThreshold() int64 {
	if m.kern.brownout > 0 {
		if v := m.bgThresh / 4; v > 1 {
			return v
		}
		return 1
	}
	return m.bgThresh
}

// raWindow is the effective readahead window: zero in brownout —
// speculative fetches are the first work to defer when the backend or
// the admission queues are struggling.
func (m *Mount) raWindow() int64 {
	if m.kern.brownout > 0 {
		return 0
	}
	return m.readahead
}

// Meter returns the mount's page-cache memory meter.
func (m *Mount) Meter() *memacct.Meter { return m.meter }

// DirtyBytes returns the bytes awaiting writeback.
func (m *Mount) DirtyBytes() int64 { return m.dirtyBytes }

// Store returns the backing store.
func (m *Mount) Store() Store { return m.store }

func (m *Mount) file(ino uint64, size int64) *fileState {
	f, ok := m.files[ino]
	if !ok {
		f = &fileState{ino: ino, gen: m.gen, size: size, imutex: m.kern.newInodeLock()}
		m.files[ino] = f
	}
	return f
}

// touch moves f to the hot end of the LRU. Caller holds lru_lock.
func (m *Mount) touch(f *fileState) {
	// A crash discards every fileState of its generation; operations
	// that were blocked across it still hold a dead incarnation's
	// fileState and must not push it into the new LRU (its residency is
	// no longer in the meter, so a later eviction would underflow).
	if f.gen != m.gen {
		return
	}
	if f.lruElem == nil {
		f.lruElem = m.lru.PushBack(f)
		return
	}
	m.lru.MoveToBack(f.lruElem)
}

// chargeLRU acquires the global lru lock and charges the per-page hold
// for touching n bytes of page structures.
func (m *Mount) chargeLRU(ctx vfsapi.Ctx, n int64, fn func()) {
	k := m.kern
	k.lockSpan(ctx, k.lruLock, "lru_lock")
	hold := time.Duration(k.params.Pages(n)) * k.params.LRULockHoldPerPage
	if hold > 0 {
		ctx.T.Exec(ctx.P, cpu.Kernel, hold)
	}
	fn()
	k.lruLock.Unlock(ctx.P)
}

// cacheInsert adds [off,off+n) to f's resident set, evicting cold clean
// pages if the mount exceeds its memory limit. The per-page lock hold
// is charged only for pages actually added: rewriting already-resident
// pages does not touch the LRU lists.
func (m *Mount) cacheInsert(ctx vfsapi.Ctx, f *fileState, off, n int64) {
	k := m.kern
	k.lockSpan(ctx, k.lruLock, "lru_lock")
	if f.gen != m.gen {
		k.lruLock.Unlock(ctx.P)
		return // stale fileState from before a crash: not accounted
	}
	added := f.cached.Insert(off, n)
	m.meter.Alloc(added)
	m.touch(f)
	if hold := time.Duration(k.params.Pages(added)) * k.params.LRULockHoldPerPage; hold > 0 {
		ctx.T.Exec(ctx.P, cpu.Kernel, hold)
	}
	k.lruLock.Unlock(ctx.P)
	if m.meter.Current() > m.cfg.MemLimit {
		m.evict(ctx)
	}
}

// evict reclaims clean pages from the coldest files until the mount is
// below its limit watermark.
func (m *Mount) evict(ctx vfsapi.Ctx) {
	watermark := m.cfg.MemLimit - m.cfg.MemLimit/16
	var freedTotal int64
	m.chargeLRU(ctx, 0, func() {
		e := m.lru.Front()
		for e != nil && m.meter.Current() > watermark {
			next := e.Next()
			f := e.Value.(*fileState)
			freed := reclaimClean(f)
			if freed > 0 {
				m.meter.Free(freed)
				freedTotal += freed
			}
			if f.cached.Len() == 0 {
				m.lru.Remove(e)
				f.lruElem = nil
			}
			e = next
		}
	})
	if freedTotal > 0 {
		// Page-structure work for the reclaimed pages.
		hold := time.Duration(m.kern.params.Pages(freedTotal)) * m.kern.params.LRULockHoldPerPage
		ctx.T.Exec(ctx.P, cpu.Kernel, hold)
	}
}

// reclaimClean drops all clean ranges of f, keeping dirty ones
// resident. It returns the bytes freed.
func reclaimClean(f *fileState) int64 {
	before := f.cached.Len()
	keep := f.dirty.Extents()
	f.cached.Clear()
	for _, e := range keep {
		f.cached.Insert(e.Off, e.Len)
	}
	return before - f.cached.Len()
}

// markDirty records freshly written bytes and applies dirty throttling:
// a writer that pushes the mount past MaxDirty blocks (as I/O wait)
// until the flushers bring it back down.
func (m *Mount) markDirty(ctx vfsapi.Ctx, f *fileState, off, n int64) {
	k := m.kern
	k.lockSpan(ctx, k.writebackLock, "wb_lock")
	ctx.T.Exec(ctx.P, cpu.Kernel, k.params.WritebackLockHold)
	if f.gen != m.gen {
		k.writebackLock.Unlock(ctx.P)
		return // stale fileState from before a crash: not accounted
	}
	newly := f.dirty.Insert(off, n)
	if newly > 0 {
		if !f.inDirty {
			f.inDirty = true
			f.dirtySince = k.eng.Now()
			m.dirtyList = append(m.dirtyList, f)
			if len(m.dirtyList) == 1 {
				m.oldestDirty = f.dirtySince
			}
		}
		m.dirtyBytes += newly
	}
	k.writebackLock.Unlock(ctx.P)

	if m.dirtyBytes >= m.bgThreshold() {
		k.wakeFlushers()
	}
	// balance_dirty_pages: between the background and hard thresholds a
	// writer is paced to the mount's achieved flush rate, with the pause
	// ramping up quadratically as dirty data approaches the limit. A
	// collapsing flush rate (flushers starved of cores by a noisy
	// neighbour) therefore translates directly into writer slowdown.
	if over := m.dirtyBytes - m.bgThreshold(); over > 0 && m.flushRate > 0 {
		span := m.maxDirty() - m.bgThreshold()
		if span < 1 {
			span = 1
		}
		ramp := float64(over) / float64(span)
		if ramp > 1 {
			ramp = 1
		}
		pause := time.Duration(float64(n) / m.flushRate * ramp * ramp * float64(time.Second))
		if pause > 200*time.Millisecond {
			pause = 200 * time.Millisecond
		}
		if pause > 0 {
			start := k.eng.Now()
			m.throttleQ.WaitTimeout(ctx.P, pause)
			ctx.T.Account().AddIOWait(k.eng.Now() - start)
		}
	}
	// Teardown safety: with the flushers stopped nobody can lower the
	// dirty level, so writers must not spin on the threshold.
	for m.dirtyBytes >= m.maxDirty() && !k.stopped && !m.crashed {
		start := k.eng.Now()
		m.throttleQ.WaitTimeout(ctx.P, k.params.DirtyThrottleCheck)
		ctx.T.Account().AddIOWait(k.eng.Now() - start)
	}
}

// flushPass drains the mount toward its background threshold (and past
// the expire age), running on a flusher's roaming thread. It reports
// whether it flushed anything, so idle flushers back off instead of
// re-picking a mount whose dirty files are all claimed.
func (m *Mount) flushPass(ctx vfsapi.Ctx) bool {
	k := m.kern
	const batch = 1 << 20
	progressed := false
	// The writeback span is opened lazily on the first dirty file and
	// tagged with the mount's tenant: the flusher runs on the kernel's
	// account, but the work — and the cores and locks it consumes — is
	// attributed to the pool whose dirty data recruited it.
	var sp *obs.Span
	var sc obs.Scope
	var passTotal int64
	for {
		now := k.eng.Now()
		needed := m.dirtyBytes >= m.bgThreshold() ||
			(m.dirtyBytes > 0 && now-m.oldestDirty >= k.params.DirtyExpire)
		if !needed {
			break
		}
		f := m.nextDirtyFile()
		if f == nil {
			break
		}
		if sp == nil && k.rec != nil {
			sp = k.rec.StartSpan(ctx.P.ID(), m.cfg.Tenant, "writeback")
			sc = sp.Enter(obs.LayerWriteback)
			ctx.Span = sp
		}
		progressed = true
		f.flushing = true
		k.lockSpan(ctx, k.writebackLock, "wb_lock")
		ctx.T.Exec(ctx.P, cpu.Kernel, k.params.WritebackLockHold)
		exts := f.dirty.PopFirst(batch)
		k.writebackLock.Unlock(ctx.P)

		var total int64
		for _, e := range exts {
			total += e.Len
		}
		// The inode mutex is held while the flusher prepares the batch
		// (page scanning and submission CPU), serializing the
		// application's writes to this file against flusher progress —
		// the i_mutex delays the paper's kernel profiling identified.
		// The store transfer itself proceeds under page locks only.
		k.lockSpan(ctx, f.imutex, "i_mutex")
		ctx.T.ExecBytes(ctx.P, cpu.Kernel, total, k.params.FlusherBytesPerSec)
		f.imutex.Unlock(ctx.P)
		for _, e := range exts {
			if !f.unlinked {
				m.store.WriteData(ctx, f.ino, e.Off, e.Len)
			}
		}
		f.flushing = false
		if m.crashed {
			// The crash already zeroed the dirty accounting; subtracting
			// this batch again would drive it negative.
			break
		}
		passTotal += total
		m.updateFlushRate(total)
		m.dirtyBytes -= total
		if f.dirty.Len() == 0 {
			m.removeDirty(f)
			if !f.unlinked {
				m.store.SetSize(ctx, f.ino, f.size)
			}
		}
		m.throttleQ.Broadcast()
	}
	sc.Exit()
	sp.End(passTotal, nil)
	m.flushing--
	return progressed
}

// updateFlushRate folds a completed batch into the pacing EWMA.
func (m *Mount) updateFlushRate(total int64) {
	now := m.kern.eng.Now()
	if m.lastFlushDone > 0 && now > m.lastFlushDone {
		inst := float64(total) / (now - m.lastFlushDone).Seconds()
		if m.flushRate == 0 {
			m.flushRate = inst
		} else {
			m.flushRate = 0.8*m.flushRate + 0.2*inst
		}
	}
	m.lastFlushDone = now
}

// nextDirtyFile returns the longest-dirty file not already being
// flushed by another writeback thread.
func (m *Mount) nextDirtyFile() *fileState {
	i := 0
	for i < len(m.dirtyList) {
		f := m.dirtyList[i]
		if f.dirty.Len() == 0 && !f.flushing {
			m.removeDirty(f)
			continue
		}
		if !f.flushing && f.dirty.Len() > 0 {
			return f
		}
		i++
	}
	return nil
}

func (m *Mount) removeDirty(f *fileState) {
	for i, g := range m.dirtyList {
		if g == f {
			m.dirtyList = append(m.dirtyList[:i], m.dirtyList[i+1:]...)
			break
		}
	}
	f.inDirty = false
	if len(m.dirtyList) > 0 {
		m.oldestDirty = m.dirtyList[0].dirtySince
	}
}

// SyncAll synchronously flushes every dirty file to the store and
// propagates sizes (used when quiescing a mount, e.g. for container
// migration).
func (m *Mount) SyncAll(ctx vfsapi.Ctx) {
	for {
		if m.crashed {
			return
		}
		f := m.nextDirtyFile()
		if f == nil {
			return
		}
		for f.dirty.Len() > 0 {
			exts := f.dirty.PopFirst(4 << 20)
			var total int64
			for _, e := range exts {
				if !f.unlinked {
					m.store.WriteData(ctx, f.ino, e.Off, e.Len)
				}
				total += e.Len
			}
			if m.crashed {
				return
			}
			m.dirtyBytes -= total
		}
		m.removeDirty(f)
		if !f.unlinked {
			m.store.SetSize(ctx, f.ino, f.size)
		}
		m.throttleQ.Broadcast()
	}
}

// Crash models the kernel client dying (for the kernel Ceph mount this
// is effectively a host crash: there is no way to kill the in-kernel
// client without taking the node down). The mount's entire in-memory
// state — page cache, dirty tracking, open-file table — is discarded:
// un-synced dirty data is lost and only store-acknowledged bytes
// survive, every open handle is invalidated via the generation counter,
// and subsequent operations fail with vfsapi.ErrCrashed until Restart.
// It runs outside simulated time: the crash is an external event, not
// work performed by any thread.
func (m *Mount) Crash() {
	m.crashed = true
	m.gen++
	m.crashes++
	for _, f := range m.files {
		if n := f.cached.Len(); n > 0 {
			m.meter.Free(n)
		}
		f.cached.Clear()
		f.dirty.Clear()
		f.fetching.Clear()
		f.lruElem = nil
		f.inDirty = false
	}
	m.files = map[uint64]*fileState{}
	m.lru.Init()
	m.dirtyList = nil
	m.dirtyBytes = 0
	m.flushRate = 0
	if c, ok := m.store.(storeCrasher); ok {
		c.CrashStore()
	}
	m.throttleQ.Broadcast()
	m.fetchQ.Broadcast()
}

// Restart remounts after Crash. The cache stays cold (the file table
// was dropped with the crash), and a store with its own recovery
// protocol — the kernel Ceph client's MDS session reclaim — runs it
// before the mount serves traffic. Pre-crash handles keep failing with
// vfsapi.ErrCrashed: recovery restores the mount, not open files.
func (m *Mount) Restart(ctx vfsapi.Ctx) error {
	if !m.crashed {
		return nil
	}
	if c, ok := m.store.(storeCrasher); ok {
		if err := c.RestartStore(ctx); err != nil {
			return err
		}
	}
	m.crashed = false
	return nil
}

// Crashed reports whether the mount is down.
func (m *Mount) Crashed() bool { return m.crashed }

// Crashes counts Crash calls on this mount.
func (m *Mount) Crashes() uint64 { return m.crashes }

// storeCrasher is implemented by stores that hold their own client
// state (the kernel Ceph client): CrashStore discards it with the
// crash, RestartStore runs the store's recovery protocol on remount.
type storeCrasher interface {
	CrashStore()
	RestartStore(ctx vfsapi.Ctx) error
}

// dropCache removes all residency and dirty state of f (unlink,
// truncate).
func (m *Mount) dropCache(ctx vfsapi.Ctx, f *fileState) {
	m.chargeLRU(ctx, 0, func() {
		if n := f.cached.Len(); n > 0 {
			m.meter.Free(n)
		}
		f.cached.Clear()
		if f.lruElem != nil {
			m.lru.Remove(f.lruElem)
			f.lruElem = nil
		}
	})
	if d := f.dirty.Len(); d > 0 {
		m.dirtyBytes -= d
		f.dirty.Clear()
		m.removeDirty(f)
		m.throttleQ.Broadcast()
	}
}

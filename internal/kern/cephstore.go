package kern

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/vfsapi"
)

// CephStore is the kernel Ceph client backend (configuration K): VFS
// requests reach the cluster over the network, with an in-kernel
// attribute/dentry cache avoiding repeated MDS round trips. Wire
// transfers pay checksum and protocol CPU in kernel mode on the calling
// thread (or the roaming flusher thread during writeback — the
// mechanism that lets the kernel client consume foreign pool cores).
type CephStore struct {
	kern *Kernel
	clus *cluster.Cluster

	attrs map[string]attrEntry // dentry/attribute cache
	paths map[uint64]string    // ino -> authoritative path

	// faults counts retry/failover activity against a faulted backend.
	faults metrics.FaultCounters

	// session identifies this client instance at the MDS; epoch is its
	// current incarnation. crashed fails every operation with
	// vfsapi.ErrCrashed until RestartStore reclaims the session.
	session string
	epoch   uint64
	crashed bool
}

type attrEntry struct {
	info vfsapi.FileInfo
	ino  uint64
}

// NewCephStore creates a kernel Ceph client store against the cluster
// and registers its MDS session.
func NewCephStore(k *Kernel, clus *cluster.Cluster) *CephStore {
	s := &CephStore{
		kern:  k,
		clus:  clus,
		attrs: map[string]attrEntry{},
		paths: map[uint64]string{},
	}
	s.session = fmt.Sprintf("kclient%d", clus.SessionCount())
	s.epoch = clus.OpenSession(s.session, nil)
	return s
}

// CrashStore kills the kernel client's cluster-facing state: the
// attribute cache goes cold, the MDS session is marked stale, and every
// operation fails with vfsapi.ErrCrashed until RestartStore.
func (s *CephStore) CrashStore() {
	s.crashed = true
	s.attrs = map[string]attrEntry{}
	s.paths = map[uint64]string{}
	s.clus.MarkSessionStale(s.session)
}

// RestartStore runs the recovery protocol of a restarted kernel client:
// one MDS round trip reclaims the session, fencing the dead incarnation
// and issuing a fresh epoch, after which the store serves traffic with
// cold caches.
func (s *CephStore) RestartStore(ctx vfsapi.Ctx) error {
	epoch, err := s.clus.ReclaimSession(ctx, s.session)
	if err != nil {
		return err
	}
	s.epoch = epoch
	s.crashed = false
	return nil
}

// SessionEpoch returns the store's current MDS session incarnation.
func (s *CephStore) SessionEpoch() uint64 { return s.epoch }

func (s *CephStore) opCPU(ctx vfsapi.Ctx) {
	ctx.T.Exec(ctx.P, cpu.Kernel, s.kern.params.KernelClientOpCost)
}

// wireCPU charges protocol + checksum processing for n wire bytes.
func (s *CephStore) wireCPU(ctx vfsapi.Ctx, n int64) {
	p := s.kern.params
	ctx.T.Exec(ctx.P, cpu.Kernel, p.NetOpCost)
	ctx.T.ExecBytes(ctx.P, cpu.Kernel, n, p.NetCPUBytesPerSec)
	ctx.T.ExecBytes(ctx.P, cpu.Kernel, n, p.ChecksumBytesPerSec)
}

// Lookup resolves a path, serving repeated lookups from the attribute
// cache.
func (s *CephStore) Lookup(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, uint64, error) {
	if s.crashed {
		return vfsapi.FileInfo{}, 0, vfsapi.ErrCrashed
	}
	s.opCPU(ctx)
	if e, ok := s.attrs[path]; ok {
		return e.info, e.ino, nil
	}
	s.wireCPU(ctx, 256)
	info, ino, err := s.clus.MetaLookup(ctx, path)
	if err != nil {
		return vfsapi.FileInfo{}, 0, err
	}
	s.attrs[path] = attrEntry{info: info, ino: ino}
	s.paths[ino] = path
	return info, ino, nil
}

// Create makes a file at the MDS.
func (s *CephStore) Create(ctx vfsapi.Ctx, path string) (uint64, error) {
	if s.crashed {
		return 0, vfsapi.ErrCrashed
	}
	s.opCPU(ctx)
	s.wireCPU(ctx, 256)
	ino, err := s.clus.MetaCreate(ctx, path)
	if err != nil {
		return 0, err
	}
	s.attrs[path] = attrEntry{info: vfsapi.FileInfo{Name: path}, ino: ino}
	s.paths[ino] = path
	return ino, nil
}

// Mkdir creates a directory at the MDS.
func (s *CephStore) Mkdir(ctx vfsapi.Ctx, path string) error {
	if s.crashed {
		return vfsapi.ErrCrashed
	}
	s.opCPU(ctx)
	s.wireCPU(ctx, 256)
	return s.clus.MetaMkdir(ctx, path)
}

// Readdir lists a directory at the MDS.
func (s *CephStore) Readdir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	if s.crashed {
		return nil, vfsapi.ErrCrashed
	}
	s.opCPU(ctx)
	s.wireCPU(ctx, 512)
	return s.clus.MetaReaddir(ctx, path)
}

// Unlink removes a file at the MDS and invalidates the cached entry.
func (s *CephStore) Unlink(ctx vfsapi.Ctx, path string) (uint64, error) {
	if s.crashed {
		return 0, vfsapi.ErrCrashed
	}
	s.opCPU(ctx)
	var ino uint64
	if e, ok := s.attrs[path]; ok {
		ino = e.ino
	}
	s.wireCPU(ctx, 256)
	if err := s.clus.MetaUnlink(ctx, path); err != nil {
		return 0, err
	}
	delete(s.attrs, path)
	delete(s.paths, ino)
	return ino, nil
}

// Rmdir removes a directory at the MDS.
func (s *CephStore) Rmdir(ctx vfsapi.Ctx, path string) error {
	if s.crashed {
		return vfsapi.ErrCrashed
	}
	s.opCPU(ctx)
	s.wireCPU(ctx, 256)
	return s.clus.MetaRmdir(ctx, path)
}

// Rename moves a file at the MDS, rewriting the cached entries.
func (s *CephStore) Rename(ctx vfsapi.Ctx, oldPath, newPath string) error {
	if s.crashed {
		return vfsapi.ErrCrashed
	}
	s.opCPU(ctx)
	s.wireCPU(ctx, 256)
	if err := s.clus.MetaRename(ctx, oldPath, newPath); err != nil {
		return err
	}
	if e, ok := s.attrs[oldPath]; ok {
		delete(s.attrs, oldPath)
		s.attrs[newPath] = e
		s.paths[e.ino] = newPath
	}
	return nil
}

// SetSize pushes the file size to the MDS.
func (s *CephStore) SetSize(ctx vfsapi.Ctx, ino uint64, size int64) error {
	if s.crashed {
		return vfsapi.ErrCrashed
	}
	path, ok := s.paths[ino]
	if !ok {
		return vfsapi.ErrNotExist
	}
	s.opCPU(ctx)
	s.wireCPU(ctx, 256)
	if err := s.clus.MetaSetSize(ctx, path, size); err != nil {
		return err
	}
	if e, ok := s.attrs[path]; ok {
		if size > e.info.Size || size == 0 {
			e.info.Size = size
		}
		s.attrs[path] = e
	}
	return nil
}

// FaultStats returns a snapshot of the store's fault-handling
// counters.
func (s *CephStore) FaultStats() metrics.FaultCounters { return s.faults }

// kernRetryable mirrors the user-level client's transient-fault test.
func kernRetryable(err error) bool {
	return errors.Is(err, cluster.ErrOSDDown) ||
		errors.Is(err, netsim.ErrPartitioned) ||
		errors.Is(err, netsim.ErrDropped)
}

// retryData runs attempt against the replication group until it
// succeeds. The kernel client blocks like the real CephFS mount: there
// is no per-op deadline and no retry bound — the process hangs in D
// state until the backend recovers (this is exactly the containment
// contrast with the bounded user-level client). The deadline a bounded
// client would have enforced is still counted, once per op, as a
// deadline miss. Kernel shutdown aborts the loop so the engine drains.
func (s *CephStore) retryData(ctx vfsapi.Ctx, attempt func(member int) error) {
	p := s.kern.params
	deadline := ctx.P.Now() + p.ClientOpDeadline
	backoff := p.ClientRetryBase
	repl := s.clus.Replication()
	missed := false
	for try := 0; ; try++ {
		if s.crashed {
			// A crash mid-retry aborts the loop: the in-kernel client is
			// gone, there is nobody left to hang in D state.
			return
		}
		member := 0
		if try > 0 {
			member = try % repl
		}
		err := attempt(member)
		if err == nil {
			if member != 0 {
				s.faults.Failovers++
			}
			return
		}
		if !kernRetryable(err) || s.kern.stopped || s.crashed {
			return
		}
		s.faults.Retries++
		if !missed && ctx.P.Now() > deadline {
			missed = true
			s.faults.DeadlineMisses++
		}
		start := ctx.P.Now()
		ctx.P.Sleep(backoff)
		wait := ctx.P.Now() - start
		ctx.T.Account().AddIOWait(wait)
		s.faults.TimeDegraded += wait
		if next := backoff * 2; next <= p.ClientRetryCap {
			backoff = next
		} else {
			backoff = p.ClientRetryCap
		}
	}
}

// ReadData fetches object data from the OSDs, failing over to ring
// replicas and retrying until the read completes.
func (s *CephStore) ReadData(ctx vfsapi.Ctx, ino uint64, off, n int64) {
	if s.crashed {
		return
	}
	s.opCPU(ctx)
	s.wireCPU(ctx, n)
	s.retryData(ctx, func(member int) error {
		if member == 0 {
			return s.clus.Read(ctx, ino, off, n)
		}
		return s.clus.ReadReplica(ctx, ino, off, n, member)
	})
}

// WriteData stores object data on the OSDs, advancing the acting
// primary through the replication group on retries.
func (s *CephStore) WriteData(ctx vfsapi.Ctx, ino uint64, off, n int64) {
	if s.crashed {
		return
	}
	s.opCPU(ctx)
	s.wireCPU(ctx, n)
	s.retryData(ctx, func(member int) error {
		return s.clus.WriteReplica(ctx, ino, off, n, member)
	})
}

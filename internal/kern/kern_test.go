package kern

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cpu"
	"repro/internal/disk"
	"repro/internal/model"
	"repro/internal/nstree"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// fakeStore records data-path traffic over an in-memory namespace.
type fakeStore struct {
	eng        *sim.Engine
	tree       *nstree.Tree
	nodes      map[uint64]*nstree.Node
	reads      []extentRec
	writes     []extentRec
	writeDelay time.Duration
}

type extentRec struct {
	ino    uint64
	off, n int64
}

func newFakeStore(eng *sim.Engine) *fakeStore {
	return &fakeStore{eng: eng, tree: nstree.New(), nodes: map[uint64]*nstree.Node{}}
}

func (s *fakeStore) Lookup(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, uint64, error) {
	n, err := s.tree.Lookup(path)
	if err != nil {
		return vfsapi.FileInfo{}, 0, err
	}
	s.nodes[n.Ino] = n
	return n.Info(), n.Ino, nil
}

func (s *fakeStore) Create(ctx vfsapi.Ctx, path string) (uint64, error) {
	n, err := s.tree.Create(path, s.eng.Now())
	if err != nil {
		return 0, err
	}
	s.nodes[n.Ino] = n
	return n.Ino, nil
}

func (s *fakeStore) Mkdir(ctx vfsapi.Ctx, path string) error {
	_, err := s.tree.Mkdir(path, 0)
	return err
}

func (s *fakeStore) Readdir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	return s.tree.Readdir(path)
}

func (s *fakeStore) Unlink(ctx vfsapi.Ctx, path string) (uint64, error) {
	n, err := s.tree.Unlink(path)
	if err != nil {
		return 0, err
	}
	return n.Ino, nil
}

func (s *fakeStore) Rmdir(ctx vfsapi.Ctx, path string) error { return s.tree.Rmdir(path) }

func (s *fakeStore) Rename(ctx vfsapi.Ctx, o, n string) error {
	return s.tree.Rename(o, n, 0)
}

func (s *fakeStore) SetSize(ctx vfsapi.Ctx, ino uint64, size int64) error {
	n, ok := s.nodes[ino]
	if !ok {
		return vfsapi.ErrNotExist
	}
	if size > n.Size || size == 0 {
		n.Size = size
	}
	return nil
}

func (s *fakeStore) ReadData(ctx vfsapi.Ctx, ino uint64, off, n int64) {
	s.reads = append(s.reads, extentRec{ino, off, n})
}

func (s *fakeStore) WriteData(ctx vfsapi.Ctx, ino uint64, off, n int64) {
	s.writes = append(s.writes, extentRec{ino, off, n})
	if s.writeDelay > 0 {
		ctx.P.Sleep(s.writeDelay)
	}
}

func (s *fakeStore) totalWritten() int64 {
	var t int64
	for _, w := range s.writes {
		t += w.n
	}
	return t
}

func (s *fakeStore) totalRead() int64 {
	var t int64
	for _, r := range s.reads {
		t += r.n
	}
	return t
}

type testRig struct {
	eng   *sim.Engine
	cpus  *cpu.CPU
	kern  *Kernel
	store *fakeStore
	mount *Mount
	acct  *cpu.Account
}

func newRig(t *testing.T, cfg MountConfig) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 4)
	k := New(eng, cpus, params)
	store := newFakeStore(eng)
	if cfg.Name == "" {
		cfg.Name = "test"
	}
	m := k.Mount(store, cfg)
	return &testRig{eng: eng, cpus: cpus, kern: k, store: store, mount: m, acct: cpu.NewAccount("app")}
}

func (r *testRig) ctx(p *sim.Proc) vfsapi.Ctx {
	return vfsapi.Ctx{P: p, T: r.cpus.NewThread(r.acct, 0)}
}

// run executes fn as a proc and drains the engine (stopping flushers).
func (r *testRig) run(t *testing.T, fn func(ctx vfsapi.Ctx)) {
	t.Helper()
	r.eng.Go("test", func(p *sim.Proc) {
		fn(r.ctx(p))
		r.kern.Stop()
	})
	r.eng.Run()
	if r.eng.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", r.eng.LiveProcs())
	}
}

func TestWriteLandsInCacheThenFlushes(t *testing.T) {
	r := newRig(t, MountConfig{})
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := r.mount.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write(ctx, 0, 1<<20); err != nil {
			t.Fatal(err)
		}
		if got := r.store.totalWritten(); got != 0 {
			t.Fatalf("write reached store synchronously: %d bytes", got)
		}
		if r.mount.DirtyBytes() != 1<<20 {
			t.Fatalf("dirty = %d", r.mount.DirtyBytes())
		}
		// Wait past the expire age + writeback interval: flushers must
		// have drained the file.
		ctx.P.Sleep(7 * time.Second)
		if got := r.store.totalWritten(); got != 1<<20 {
			t.Fatalf("flushed %d bytes, want 1MB", got)
		}
		if r.mount.DirtyBytes() != 0 {
			t.Fatalf("dirty after flush = %d", r.mount.DirtyBytes())
		}
		h.Close(ctx)
	})
	// Flushed size must have reached the store's namespace.
	n, _ := r.store.tree.Lookup("/f")
	if n.Size != 1<<20 {
		t.Fatalf("store size = %d", n.Size)
	}
}

func TestReadMissThenHit(t *testing.T) {
	r := newRig(t, MountConfig{})
	r.store.tree.MkdirAll("/", 0)
	n, _ := r.store.tree.Create("/data", 0)
	n.Size = 2 << 20
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := r.mount.Open(ctx, "/data", vfsapi.RDONLY)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := h.Read(ctx, 0, 1<<20); got != 1<<20 {
			t.Fatalf("read %d", got)
		}
		missTraffic := r.store.totalRead()
		if missTraffic < 1<<20 {
			t.Fatalf("miss fetched %d, want >= 1MB", missTraffic)
		}
		if got, _ := h.Read(ctx, 0, 1<<20); got != 1<<20 {
			t.Fatalf("reread %d", got)
		}
		if r.store.totalRead() != missTraffic {
			t.Fatal("cache hit still fetched from store")
		}
		h.Close(ctx)
	})
}

func TestSequentialReadTriggersReadahead(t *testing.T) {
	r := newRig(t, MountConfig{})
	n, _ := r.store.tree.Create("/seq", 0)
	n.Size = 8 << 20
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.mount.Open(ctx, "/seq", vfsapi.RDONLY)
		h.Read(ctx, 0, 64<<10)
		h.Read(ctx, 64<<10, 64<<10) // sequential: window grows
		fetched := r.store.totalRead()
		if fetched <= 128<<10 {
			t.Fatalf("no readahead: fetched only %d", fetched)
		}
		h.Close(ctx)
	})
}

func TestReadPastEOFAndShortRead(t *testing.T) {
	r := newRig(t, MountConfig{})
	n, _ := r.store.tree.Create("/small", 0)
	n.Size = 1000
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.mount.Open(ctx, "/small", vfsapi.RDONLY)
		if got, _ := h.Read(ctx, 2000, 100); got != 0 {
			t.Fatalf("read past EOF returned %d", got)
		}
		if got, _ := h.Read(ctx, 500, 1000); got != 500 {
			t.Fatalf("short read returned %d, want 500", got)
		}
		h.Close(ctx)
	})
}

func TestDirtyThrottleBlocksWriters(t *testing.T) {
	// Tiny dirty limit and a slow store: the writer must accumulate
	// I/O-wait time while flushers drain.
	r := newRig(t, MountConfig{MaxDirty: 1 << 20})
	r.store.writeDelay = 5 * time.Millisecond
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.mount.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		for i := int64(0); i < 8; i++ {
			h.Write(ctx, i<<20, 1<<20)
		}
		h.Close(ctx)
	})
	if r.acct.IOWait() == 0 {
		t.Fatal("writer above dirty limit accumulated no I/O wait")
	}
}

func TestMemoryLimitEvictsCleanKeepsDirty(t *testing.T) {
	r := newRig(t, MountConfig{MemLimit: 4 << 20, MaxDirty: 64 << 20})
	n, _ := r.store.tree.Create("/big", 0)
	n.Size = 16 << 20
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.mount.Open(ctx, "/big", vfsapi.RDONLY)
		for off := int64(0); off < 16<<20; off += 1 << 20 {
			h.Read(ctx, off, 1<<20)
		}
		if cur := r.mount.Meter().Current(); cur > 4<<20 {
			t.Fatalf("cache %d exceeds 4MB limit", cur)
		}
		h.Close(ctx)

		// Dirty data may not be evicted even under pressure.
		hw, _ := r.mount.Open(ctx, "/w", vfsapi.CREATE|vfsapi.WRONLY)
		hw.Write(ctx, 0, 2<<20)
		h2, _ := r.mount.Open(ctx, "/big", vfsapi.RDONLY)
		for off := int64(0); off < 16<<20; off += 1 << 20 {
			h2.Read(ctx, off, 1<<20)
		}
		if r.mount.DirtyBytes() != 2<<20 {
			t.Fatalf("dirty bytes evicted: %d", r.mount.DirtyBytes())
		}
		h2.Close(ctx)
		hw.Close(ctx)
	})
}

func TestFsyncDrainsSynchronously(t *testing.T) {
	r := newRig(t, MountConfig{})
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.mount.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		h.Write(ctx, 0, 3<<20)
		if err := h.Fsync(ctx); err != nil {
			t.Fatal(err)
		}
		if got := r.store.totalWritten(); got != 3<<20 {
			t.Fatalf("fsync flushed %d", got)
		}
		if r.mount.DirtyBytes() != 0 {
			t.Fatalf("dirty after fsync = %d", r.mount.DirtyBytes())
		}
		h.Close(ctx)
	})
}

func TestUnlinkDropsDirtyWithoutStoreWrites(t *testing.T) {
	r := newRig(t, MountConfig{})
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.mount.Open(ctx, "/tmp", vfsapi.CREATE|vfsapi.WRONLY)
		h.Write(ctx, 0, 1<<20)
		h.Close(ctx)
		if err := r.mount.Unlink(ctx, "/tmp"); err != nil {
			t.Fatal(err)
		}
		ctx.P.Sleep(7 * time.Second) // flusher pass
		if got := r.store.totalWritten(); got != 0 {
			t.Fatalf("unlinked file still flushed %d bytes", got)
		}
		if r.mount.Meter().Current() != 0 {
			t.Fatalf("cache not freed: %d", r.mount.Meter().Current())
		}
	})
}

func TestTruncateDropsCacheAndSize(t *testing.T) {
	r := newRig(t, MountConfig{})
	n, _ := r.store.tree.Create("/t", 0)
	n.Size = 1 << 20
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.mount.Open(ctx, "/t", vfsapi.RDONLY)
		h.Read(ctx, 0, 1<<20)
		h.Close(ctx)
		h2, _ := r.mount.Open(ctx, "/t", vfsapi.WRONLY|vfsapi.TRUNC)
		if h2.Size() != 0 {
			t.Fatalf("size after trunc = %d", h2.Size())
		}
		h2.Close(ctx)
	})
	if n.Size != 0 {
		t.Fatalf("store size after trunc = %d", n.Size)
	}
}

func TestOpenErrors(t *testing.T) {
	r := newRig(t, MountConfig{})
	r.run(t, func(ctx vfsapi.Ctx) {
		if _, err := r.mount.Open(ctx, "/missing", vfsapi.RDONLY); !errors.Is(err, vfsapi.ErrNotExist) {
			t.Fatalf("open missing: %v", err)
		}
		r.mount.Mkdir(ctx, "/d")
		if _, err := r.mount.Open(ctx, "/d", vfsapi.RDONLY); !errors.Is(err, vfsapi.ErrIsDir) {
			t.Fatalf("open dir: %v", err)
		}
		h, _ := r.mount.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		h.Close(ctx)
		if _, err := h.Write(ctx, 0, 10); !errors.Is(err, vfsapi.ErrClosed) {
			t.Fatalf("write closed: %v", err)
		}
		hr, _ := r.mount.Open(ctx, "/f", vfsapi.RDONLY)
		if _, err := hr.Write(ctx, 0, 10); !errors.Is(err, vfsapi.ErrReadOnly) {
			t.Fatalf("write rdonly: %v", err)
		}
		hr.Close(ctx)
	})
}

func TestSyscallsChargeModeSwitches(t *testing.T) {
	r := newRig(t, MountConfig{})
	sys := NewSyscalls(r.kern, r.mount)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := sys.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(ctx, 0, 4096)
		h.Close(ctx)
	})
	// Open + write + close = 3 syscalls = 6 mode switches.
	if got := r.acct.ModeSwitches(); got != 6 {
		t.Fatalf("mode switches = %d, want 6", got)
	}
}

func TestFlusherRunsOnRoamingCores(t *testing.T) {
	// With the app pinned to cores {0,1}, flush work must still appear
	// on cores {2,3} via the roaming flusher threads.
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 4)
	k := New(eng, cpus, params)
	store := newFakeStore(eng)
	m := k.Mount(store, MountConfig{Name: "t", MaxDirty: 1 << 20})
	store.writeDelay = time.Millisecond
	acct := cpu.NewAccount("app")
	// Keep the pool's own cores saturated so flush work must roam.
	for i := 0; i < 2; i++ {
		eng.Go("spinner", func(p *sim.Proc) {
			th := cpus.NewThread(acct, cpu.MaskOf(0, 1))
			th.Exec(p, cpu.User, 5*time.Second)
		})
	}
	eng.Go("writer", func(p *sim.Proc) {
		th := cpus.NewThread(acct, cpu.MaskOf(0, 1))
		ctx := vfsapi.Ctx{P: p, T: th}
		h, _ := m.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		for i := int64(0); i < 64; i++ {
			h.Write(ctx, i<<20, 1<<20)
		}
		h.Close(ctx)
		k.Stop()
	})
	eng.Run()
	util := cpus.UtilSnapshot()
	if util[2]+util[3] == 0 {
		t.Fatal("flushers never used the foreign pool's cores")
	}
	if k.Account().Time(cpu.Kernel) == 0 {
		t.Fatal("kernel account recorded no flusher CPU")
	}
}

func TestAppendExtends(t *testing.T) {
	r := newRig(t, MountConfig{})
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.mount.Open(ctx, "/log", vfsapi.CREATE|vfsapi.APPEND)
		off1, _ := h.Append(ctx, 100)
		off2, _ := h.Append(ctx, 100)
		if off1 != 0 || off2 != 100 || h.Size() != 200 {
			t.Fatalf("appends at %d,%d size %d", off1, off2, h.Size())
		}
		h.Close(ctx)
	})
}

func TestLockStatsAggregation(t *testing.T) {
	r := newRig(t, MountConfig{})
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.mount.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		h.Write(ctx, 0, 1<<20)
		h.Close(ctx)
	})
	s := r.kern.LockStats()
	if s.Acquisitions == 0 {
		t.Fatal("no kernel lock acquisitions recorded")
	}
	r.kern.ResetLockStats()
	if r.kern.LockStats().Acquisitions != 0 {
		t.Fatal("reset did not clear lock stats")
	}
}

func TestLocalStoreJournalAndData(t *testing.T) {
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 2)
	arr := disk.NewArray(eng, "raid0", 4, params.DiskSeqBytesPerSec, params.DiskSeekTime, params.DiskStripeUnit)
	ls := NewLocalStore(eng, arr)
	acct := cpu.NewAccount("a")
	eng.Go("t", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: cpus.NewThread(acct, 0)}
		ino, err := ls.Create(ctx, "/f")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		ls.WriteData(ctx, ino, 0, 1<<20)
		ls.SetSize(ctx, ino, 1<<20)
		info, _, err := ls.Lookup(ctx, "/f")
		if err != nil || info.Size != 1<<20 {
			t.Errorf("lookup: %+v %v", info, err)
		}
		ls.ReadData(ctx, ino, 0, 1<<20)
	})
	eng.Run()
	var written uint64
	for _, d := range arr.Disks() {
		written += d.BytesWritten()
	}
	// 1MB data + journal records (create + setsize).
	if written < 1<<20+2*journalRecordBytes {
		t.Fatalf("disk writes = %d", written)
	}
}

func TestCephStoreAttrCache(t *testing.T) {
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 2)
	clus := cluster.New(eng, params, 6)
	k := New(eng, cpus, params)
	cs := NewCephStore(k, clus)
	clus.Provision("/data/f", 4096)
	acct := cpu.NewAccount("a")
	eng.Go("t", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: cpus.NewThread(acct, 0)}
		if _, _, err := cs.Lookup(ctx, "/data/f"); err != nil {
			t.Errorf("lookup: %v", err)
		}
		before := clus.MDSOps()
		cs.Lookup(ctx, "/data/f")
		cs.Lookup(ctx, "/data/f")
		if clus.MDSOps() != before {
			t.Error("cached lookups still hit the MDS")
		}
		k.Stop()
	})
	eng.Run()
}

func TestSyncAllDrainsEverything(t *testing.T) {
	r := newRig(t, MountConfig{})
	r.run(t, func(ctx vfsapi.Ctx) {
		for i := 0; i < 3; i++ {
			h, _ := r.mount.Open(ctx, fmt.Sprintf("/f%d", i), vfsapi.CREATE|vfsapi.WRONLY)
			h.Write(ctx, 0, 1<<20)
			h.Close(ctx)
		}
		if r.mount.DirtyBytes() != 3<<20 {
			t.Fatalf("dirty = %d", r.mount.DirtyBytes())
		}
		r.mount.SyncAll(ctx)
		if r.mount.DirtyBytes() != 0 {
			t.Fatalf("dirty after SyncAll = %d", r.mount.DirtyBytes())
		}
		if got := r.store.totalWritten(); got != 3<<20 {
			t.Fatalf("store received %d", got)
		}
	})
}

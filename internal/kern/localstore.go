package kern

import (
	"time"

	"repro/internal/cpu"
	"repro/internal/disk"
	"repro/internal/nstree"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// LocalStore is the ext4-like local filesystem backend: a namespace
// tree with a journal, storing file data on a disk array. Metadata
// mutations write a journal record; data lands at per-file virtual
// extents so sequential file I/O stays sequential on the spindles.
type LocalStore struct {
	eng     *sim.Engine
	tree    *nstree.Tree
	array   *disk.Array
	journal int64 // next journal offset (sequential region)
	nodes   map[uint64]*nstree.Node

	// fileRegion spaces files apart in the virtual disk address space
	// so distinct files require seeks between them.
	fileRegion int64
}

const journalRecordBytes = 4096

// NewLocalStore creates an ext4-like store over the given array.
func NewLocalStore(eng *sim.Engine, array *disk.Array) *LocalStore {
	return &LocalStore{
		eng:        eng,
		tree:       nstree.New(),
		array:      array,
		nodes:      map[uint64]*nstree.Node{},
		fileRegion: 8 << 30,
	}
}

// Tree exposes the namespace for zero-cost test provisioning.
func (s *LocalStore) Tree() *nstree.Tree { return s.tree }

// Provision creates a file of the given size without consuming time.
func (s *LocalStore) Provision(path string, size int64) error {
	if err := s.tree.MkdirAll(parentPath(path), 0); err != nil {
		return err
	}
	n, err := s.tree.Create(path, 0)
	if err != nil {
		return err
	}
	n.Size = size
	s.nodes[n.Ino] = n
	return nil
}

// ProvisionDir creates a directory tree without consuming time.
func (s *LocalStore) ProvisionDir(path string) error {
	return s.tree.MkdirAll(path, 0)
}

func parentPath(path string) string {
	parts := nstree.Split(path)
	out := ""
	for _, p := range parts[:max(0, len(parts)-1)] {
		out += "/" + p
	}
	if out == "" {
		return "/"
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// journalWrite appends one journal record (sequential disk write).
func (s *LocalStore) journalWrite(ctx vfsapi.Ctx) {
	s.array.Access(ctx.P, s.journal, journalRecordBytes, true)
	s.journal += journalRecordBytes
}

// metaCPU charges the in-kernel metadata path cost.
func (s *LocalStore) metaCPU(ctx vfsapi.Ctx, path string) {
	k := time.Duration(1+nstree.Depth(path)) * 400 * time.Nanosecond
	ctx.T.Exec(ctx.P, cpu.Kernel, k)
}

// Lookup resolves a path.
func (s *LocalStore) Lookup(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, uint64, error) {
	s.metaCPU(ctx, path)
	n, err := s.tree.Lookup(path)
	if err != nil {
		return vfsapi.FileInfo{}, 0, err
	}
	s.nodes[n.Ino] = n
	return n.Info(), n.Ino, nil
}

// Create makes a file (journaled).
func (s *LocalStore) Create(ctx vfsapi.Ctx, path string) (uint64, error) {
	s.metaCPU(ctx, path)
	n, err := s.tree.Create(path, s.eng.Now())
	if err != nil {
		return 0, err
	}
	s.nodes[n.Ino] = n
	s.journalWrite(ctx)
	return n.Ino, nil
}

// Mkdir makes a directory (journaled).
func (s *LocalStore) Mkdir(ctx vfsapi.Ctx, path string) error {
	s.metaCPU(ctx, path)
	if _, err := s.tree.Mkdir(path, s.eng.Now()); err != nil {
		return err
	}
	s.journalWrite(ctx)
	return nil
}

// Readdir lists a directory.
func (s *LocalStore) Readdir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	s.metaCPU(ctx, path)
	return s.tree.Readdir(path)
}

// Unlink removes a file (journaled).
func (s *LocalStore) Unlink(ctx vfsapi.Ctx, path string) (uint64, error) {
	s.metaCPU(ctx, path)
	n, err := s.tree.Unlink(path)
	if err != nil {
		return 0, err
	}
	s.journalWrite(ctx)
	delete(s.nodes, n.Ino)
	return n.Ino, nil
}

// Rmdir removes a directory (journaled).
func (s *LocalStore) Rmdir(ctx vfsapi.Ctx, path string) error {
	s.metaCPU(ctx, path)
	if err := s.tree.Rmdir(path); err != nil {
		return err
	}
	s.journalWrite(ctx)
	return nil
}

// Rename moves a path (journaled).
func (s *LocalStore) Rename(ctx vfsapi.Ctx, oldPath, newPath string) error {
	s.metaCPU(ctx, oldPath)
	if err := s.tree.Rename(oldPath, newPath, s.eng.Now()); err != nil {
		return err
	}
	s.journalWrite(ctx)
	return nil
}

// SetSize updates a file's size (journaled metadata update).
func (s *LocalStore) SetSize(ctx vfsapi.Ctx, ino uint64, size int64) error {
	n, ok := s.nodes[ino]
	if !ok {
		return vfsapi.ErrNotExist
	}
	if size > n.Size {
		n.Size = size
	} else if size == 0 {
		n.Size = 0
	}
	n.MTime = s.eng.Now()
	s.journalWrite(ctx)
	return nil
}

// ReadData reads from the file's disk extents.
func (s *LocalStore) ReadData(ctx vfsapi.Ctx, ino uint64, off, n int64) {
	s.array.Access(ctx.P, s.phys(ino, off), n, false)
}

// WriteData writes to the file's disk extents.
func (s *LocalStore) WriteData(ctx vfsapi.Ctx, ino uint64, off, n int64) {
	s.array.Access(ctx.P, s.phys(ino, off), n, true)
}

func (s *LocalStore) phys(ino uint64, off int64) int64 {
	return int64(ino%100000)*s.fileRegion + off
}

// Package kern models the shared host kernel: the VFS entry layer, a
// page cache with per-mount memory limits and dirty tracking, global
// kernel locks (page-LRU and writeback list), per-file inode mutexes,
// and roaming writeback flusher threads.
//
// Two properties of this model drive the paper's motivation results:
//
//   - Flusher threads run with a host-wide affinity mask, so dirty data
//     of one container pool is flushed using the idle reserved cores of
//     every other pool (Fig 1a). When those cores become busy, flushing
//     — and therefore write throughput — collapses.
//
//   - All mounts share the kernel's lru and writeback locks, so a
//     high-rate tenant inflates every other tenant's per-request lock
//     wait (Fig 1b).
package kern

import (
	"time"

	"repro/internal/cpu"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// Kernel is one host kernel instance shared by every container pool on
// the machine.
type Kernel struct {
	eng    *sim.Engine
	cpus   *cpu.CPU
	params *model.Params
	acct   *cpu.Account // kernel-thread accounting (flushers)

	// Global locks shared across all mounts.
	lruLock       *sim.Mutex
	writebackLock *sim.Mutex

	mounts     []*Mount
	mountRR    int // rotating scan start for fair writeback across mounts
	flusherQ   *sim.WaitQueue
	flushers   int
	stopped    bool
	inodeLocks []*sim.Mutex // registry for lock statistics

	// flusherThreads are the CPU threads of the writeback flushers;
	// flusherMask, when non-zero, overrides their host-wide affinity
	// (the what-if profiler pins flushers off pool cores with it).
	flusherThreads []*cpu.Thread
	flusherMask    cpu.Mask

	// brownout is a refcount of overload sources (open circuit
	// breakers, admission queues past high water) currently asking the
	// kernel to degrade gracefully. While positive, every mount's dirty
	// thresholds tighten to a quarter and readahead is deferred, so the
	// kernel sheds buffered state instead of growing it into an
	// overloaded backend. brownoutFlips counts off->on transitions.
	brownout      int
	brownoutFlips uint64

	rec *obs.Recorder
}

// SetRecorder attaches an observability recorder: kernel flusher
// passes then open writeback spans tagged with the originating
// tenant, and traced requests get per-tenant lock-wait attribution on
// the shared kernel locks. Nil detaches.
func (k *Kernel) SetRecorder(rec *obs.Recorder) { k.rec = rec }

// lockSpan acquires mu, attributing any wait to the tenant of the
// request being served (ctx.Span) under the given lock name. Without
// an active span it is exactly mu.Lock: the extra clock reads are
// engine-passive, so traced and untraced runs schedule identically.
func (k *Kernel) lockSpan(ctx vfsapi.Ctx, mu *sim.Mutex, name string) {
	if ctx.Span == nil {
		mu.Lock(ctx.P)
		return
	}
	start := k.eng.Now()
	mu.Lock(ctx.P)
	ctx.Span.LockWait(name, k.eng.Now()-start)
}

// New creates the host kernel and starts its writeback flusher threads.
func New(eng *sim.Engine, cpus *cpu.CPU, params *model.Params) *Kernel {
	k := &Kernel{
		eng:           eng,
		cpus:          cpus,
		params:        params,
		acct:          cpu.NewAccount("kernel"),
		lruLock:       sim.NewMutex(eng, "lru_lock"),
		writebackLock: sim.NewMutex(eng, "wb_lock"),
		flusherQ:      sim.NewWaitQueue(eng, "flusherq"),
	}
	for i := 0; i < params.NumFlushers; i++ {
		k.flushers++
		eng.Go("kflushd", func(p *sim.Proc) { k.flusherLoop(p) })
	}
	return k
}

// Account returns the kernel-thread CPU account.
func (k *Kernel) Account() *cpu.Account { return k.acct }

// CPU returns the host processor.
func (k *Kernel) CPU() *cpu.CPU { return k.cpus }

// Params returns the cost model.
func (k *Kernel) Params() *model.Params { return k.params }

// Engine returns the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Stop terminates the flusher threads after their current pass (used at
// the end of an experiment so the engine can drain).
func (k *Kernel) Stop() {
	k.stopped = true
	k.flusherQ.Broadcast()
	for _, m := range k.mounts {
		m.throttleQ.Broadcast()
	}
}

// LockStats aggregates wait/hold statistics across every kernel lock:
// the global lru and writeback locks plus all per-file inode mutexes.
// This is the quantity plotted in Fig 1b (per-request wait and hold).
func (k *Kernel) LockStats() sim.LockStats {
	var agg sim.LockStats
	add := func(s sim.LockStats) {
		agg.Acquisitions += s.Acquisitions
		agg.Contended += s.Contended
		agg.TotalWait += s.TotalWait
		agg.TotalHold += s.TotalHold
		if s.MaxWait > agg.MaxWait {
			agg.MaxWait = s.MaxWait
		}
	}
	add(k.lruLock.Stats())
	add(k.writebackLock.Stats())
	for _, m := range k.inodeLocks {
		add(m.Stats())
	}
	return agg
}

// LockBreakdown returns per-lock-class statistics — the two global
// locks individually plus all inode mutexes aggregated — for the
// observability harvest (host-level rows of the metrics registry).
func (k *Kernel) LockBreakdown() map[string]sim.LockStats {
	var imutex sim.LockStats
	for _, m := range k.inodeLocks {
		s := m.Stats()
		imutex.Acquisitions += s.Acquisitions
		imutex.Contended += s.Contended
		imutex.TotalWait += s.TotalWait
		imutex.TotalHold += s.TotalHold
		if s.MaxWait > imutex.MaxWait {
			imutex.MaxWait = s.MaxWait
		}
	}
	return map[string]sim.LockStats{
		"lru_lock": k.lruLock.Stats(),
		"wb_lock":  k.writebackLock.Stats(),
		"i_mutex":  imutex,
	}
}

// ResetLockStats zeroes all kernel lock statistics (measurement window
// boundary).
func (k *Kernel) ResetLockStats() {
	k.lruLock.ResetStats()
	k.writebackLock.ResetStats()
	for _, m := range k.inodeLocks {
		m.ResetStats()
	}
}

func (k *Kernel) newInodeLock() *sim.Mutex {
	m := sim.NewMutex(k.eng, "i_mutex")
	k.inodeLocks = append(k.inodeLocks, m)
	return m
}

// SmallOpLockStress charges the shared kernel locks with the aggregate
// hold time of `ops` page-granular operations. Workloads that batch a
// dense small-op stream for event economy (the RandomIO stressor's
// 512-byte requests) use it so the lock pressure the stream exerts on
// other tenants is preserved (the Fig 1b mechanism).
func (k *Kernel) SmallOpLockStress(ctx vfsapi.Ctx, ops int) {
	k.lockSpan(ctx, k.lruLock, "lru_lock")
	ctx.T.Exec(ctx.P, cpu.Kernel, time.Duration(ops)*k.params.LRULockHoldPerPage)
	k.lruLock.Unlock(ctx.P)
	k.lockSpan(ctx, k.writebackLock, "wb_lock")
	ctx.T.Exec(ctx.P, cpu.Kernel, time.Duration(ops)*k.params.WritebackLockHold)
	k.writebackLock.Unlock(ctx.P)
}

// wakeFlushers nudges the writeback threads outside their periodic
// schedule (a mount crossed its background dirty threshold).
func (k *Kernel) wakeFlushers() {
	k.flusherQ.Broadcast()
}

// BrownoutEnter registers one overload source. The first source flips
// the kernel into brownout: dirty thresholds tighten to a quarter,
// readahead is deferred, and the flushers are woken to start draining
// against the lowered background threshold.
func (k *Kernel) BrownoutEnter() {
	k.brownout++
	if k.brownout == 1 {
		k.brownoutFlips++
		k.rec.Mark(obs.HostTenant, "brownout:on")
		k.wakeFlushers()
	}
}

// BrownoutExit unregisters one overload source; the last one out
// restores normal thresholds. Unbalanced exits are ignored.
func (k *Kernel) BrownoutExit() {
	if k.brownout == 0 {
		return
	}
	k.brownout--
	if k.brownout == 0 {
		k.rec.Mark(obs.HostTenant, "brownout:off")
		// Writers parked against the tightened threshold re-check
		// against the restored one.
		for _, m := range k.mounts {
			m.throttleQ.Broadcast()
		}
	}
}

// Brownout reports whether any overload source is active.
func (k *Kernel) Brownout() bool { return k.brownout > 0 }

// BrownoutFlips returns how many times brownout engaged.
func (k *Kernel) BrownoutFlips() uint64 { return k.brownoutFlips }

// SetFlusherMask repins every writeback flusher thread — current and
// future — to mask instead of the host-wide default. A zero mask
// restores the roaming behaviour. This is the knob behind the what-if
// profiler's "flusher=pinned" scenario: it removes the Fig 1a core
// theft without changing anything else about the model.
func (k *Kernel) SetFlusherMask(mask cpu.Mask) {
	k.flusherMask = mask
	if mask == 0 {
		mask = k.cpus.AllMask()
	}
	for _, th := range k.flusherThreads {
		th.SetAffinity(mask)
	}
}

// flusherLoop is one kernel writeback thread. Its CPU thread roams the
// entire host: this is the core-stealing behaviour of Fig 1a.
func (k *Kernel) flusherLoop(p *sim.Proc) {
	mask := k.cpus.AllMask()
	if k.flusherMask != 0 {
		mask = k.flusherMask
	}
	th := k.cpus.NewThread(k.acct, mask)
	k.flusherThreads = append(k.flusherThreads, th)
	ctx := vfsapi.Ctx{P: p, T: th}
	for !k.stopped {
		k.flusherQ.WaitTimeout(p, k.params.WritebackInterval)
		if k.stopped {
			return
		}
		for {
			m := k.pickDirtyMount()
			if m == nil {
				break
			}
			if !m.flushPass(ctx) {
				break
			}
		}
	}
}

// pickDirtyMount selects a mount needing writeback: above its
// background threshold, or holding dirty data older than the expire
// age. Several writeback threads may work one mount on distinct files
// (Linux spreads bdi writeback across kworkers), which is how a single
// busy tenant recruits every activated core of the host.
func (k *Kernel) pickDirtyMount() *Mount {
	now := k.eng.Now()
	n := len(k.mounts)
	for i := 0; i < n; i++ {
		m := k.mounts[(k.mountRR+i)%n]
		if m.dirtyBytes == 0 || m.flushing >= k.params.NumFlushers {
			continue
		}
		if m.dirtyBytes >= m.bgThreshold() || now-m.oldestDirty >= k.params.DirtyExpire {
			m.flushing++
			k.mountRR = (k.mountRR + i + 1) % n
			return m
		}
	}
	return nil
}

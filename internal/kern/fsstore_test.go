package kern

import (
	"errors"
	"testing"

	"repro/internal/cpu"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// fsStoreRig mounts a page cache over an inner memfs through FSStore —
// the FP stacking.
type fsStoreRig struct {
	eng   *sim.Engine
	cpus  *cpu.CPU
	kern  *Kernel
	inner *memfs.FS
	mount *Mount
	acct  *cpu.Account
}

func newFSStoreRig(t *testing.T) *fsStoreRig {
	t.Helper()
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 4)
	k := New(eng, cpus, params)
	inner := memfs.New()
	m := k.Mount(NewFSStore(inner), MountConfig{Name: "fp"})
	return &fsStoreRig{eng: eng, cpus: cpus, kern: k, inner: inner, mount: m, acct: cpu.NewAccount("a")}
}

func (r *fsStoreRig) run(t *testing.T, fn func(ctx vfsapi.Ctx)) {
	t.Helper()
	r.eng.Go("t", func(p *sim.Proc) {
		fn(vfsapi.Ctx{P: p, T: r.cpus.NewThread(r.acct, 0)})
		r.kern.Stop()
	})
	r.eng.Run()
}

func TestFSStoreCreateWriteReadThrough(t *testing.T) {
	r := newFSStoreRig(t)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := r.mount.Open(ctx, "/f", vfsapi.CREATE|vfsapi.RDWR)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(ctx, 0, 1<<20)
		if err := h.Fsync(ctx); err != nil {
			t.Fatal(err)
		}
		h.Close(ctx)
		// The flushed data reached the inner filesystem.
		info, err := r.inner.Stat(ctx, "/f")
		if err != nil || info.Size != 1<<20 {
			t.Fatalf("inner state: %+v %v", info, err)
		}
		// Cached read: no additional inner reads after the first fill.
		hr, _ := r.mount.Open(ctx, "/f", vfsapi.RDONLY)
		hr.Read(ctx, 0, 1<<20)
		innerReads := r.inner.Reads
		hr.Read(ctx, 0, 1<<20)
		if r.inner.Reads != innerReads {
			t.Fatal("page-cached read still hit the inner filesystem")
		}
		hr.Close(ctx)
	})
}

func TestFSStoreDoubleCachingCountsTwice(t *testing.T) {
	// The FP construction's memory signature: the page cache above and
	// the inner user-level cache both hold the data.
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 4)
	k := New(eng, cpus, params)
	inner := memfs.New()
	inner.Provision("/data", 8<<20)
	m := k.Mount(NewFSStore(inner), MountConfig{Name: "fp"})
	acct := cpu.NewAccount("a")
	eng.Go("t", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: cpus.NewThread(acct, 0)}
		h, _ := m.Open(ctx, "/data", vfsapi.RDONLY)
		h.Read(ctx, 0, 8<<20)
		h.Close(ctx)
		k.Stop()
	})
	eng.Run()
	if got := m.Meter().Current(); got < 8<<20 {
		t.Fatalf("page cache above the user filesystem holds %d, want >= 8MB", got)
	}
}

func TestFSStoreRenameAndUnlink(t *testing.T) {
	r := newFSStoreRig(t)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, _ := r.mount.Open(ctx, "/a", vfsapi.CREATE|vfsapi.WRONLY)
		h.Write(ctx, 0, 4096)
		h.Fsync(ctx)
		h.Close(ctx)
		if err := r.mount.Rename(ctx, "/a", "/b"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.mount.Stat(ctx, "/a"); !errors.Is(err, vfsapi.ErrNotExist) {
			t.Fatalf("old name visible: %v", err)
		}
		info, err := r.mount.Stat(ctx, "/b")
		if err != nil || info.Size != 4096 {
			t.Fatalf("renamed: %+v %v", info, err)
		}
		if err := r.mount.Unlink(ctx, "/b"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.inner.Stat(ctx, "/b"); !errors.Is(err, vfsapi.ErrNotExist) {
			t.Fatalf("inner file survived unlink: %v", err)
		}
	})
}

func TestFSStoreTruncateViaSetSize(t *testing.T) {
	r := newFSStoreRig(t)
	r.inner.Provision("/t", 1<<20)
	r.run(t, func(ctx vfsapi.Ctx) {
		h, err := r.mount.Open(ctx, "/t", vfsapi.WRONLY|vfsapi.TRUNC)
		if err != nil {
			t.Fatal(err)
		}
		if h.Size() != 0 {
			t.Fatalf("size after trunc = %d", h.Size())
		}
		h.Close(ctx)
		info, _ := r.inner.Stat(ctx, "/t")
		if info.Size != 0 {
			t.Fatalf("inner size after trunc = %d", info.Size)
		}
	})
}

func TestFSStoreDirectoryOps(t *testing.T) {
	r := newFSStoreRig(t)
	r.run(t, func(ctx vfsapi.Ctx) {
		if err := r.mount.Mkdir(ctx, "/d"); err != nil {
			t.Fatal(err)
		}
		h, _ := r.mount.Open(ctx, "/d/x", vfsapi.CREATE|vfsapi.WRONLY)
		h.Close(ctx)
		ents, err := r.mount.Readdir(ctx, "/d")
		if err != nil || len(ents) != 1 {
			t.Fatalf("readdir: %v %v", ents, err)
		}
		if err := r.mount.Unlink(ctx, "/d/x"); err != nil {
			t.Fatal(err)
		}
		if err := r.mount.Rmdir(ctx, "/d"); err != nil {
			t.Fatal(err)
		}
	})
}

// syncCountFS wraps an inner filesystem and counts the fsyncs reaching
// it through opened handles.
type syncCountFS struct {
	vfsapi.FileSystem
	fsyncs int
}

func (f *syncCountFS) Open(ctx vfsapi.Ctx, path string, flags vfsapi.OpenFlag) (vfsapi.Handle, error) {
	h, err := f.FileSystem.Open(ctx, path, flags)
	if err != nil {
		return nil, err
	}
	return &syncCountHandle{Handle: h, fs: f}, nil
}

type syncCountHandle struct {
	vfsapi.Handle
	fs *syncCountFS
}

func (h *syncCountHandle) Fsync(ctx vfsapi.Ctx) error {
	h.fs.fsyncs++
	return h.Handle.Fsync(ctx)
}

// An application fsync on a kernel mount stacked over another
// filesystem (the FP double-caching stack) must propagate to the inner
// filesystem: draining pages via WriteData only moves them into the
// inner cache, so without the forwarded fsync acknowledged data is
// still volatile in the user-level client (found by the fuzz sweep's
// zero-data-loss invariant).
func TestFsyncPropagatesToInnerFilesystem(t *testing.T) {
	eng := sim.NewEngine()
	params := model.Default()
	cpus := cpu.New(eng, params, 4)
	k := New(eng, cpus, params)
	counting := &syncCountFS{FileSystem: memfs.New()}
	m := k.Mount(NewFSStore(counting), MountConfig{Name: "fp"})
	acct := cpu.NewAccount("a")
	eng.Go("t", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p, T: cpus.NewThread(acct, 0)}
		h, err := m.Open(ctx, "/f", vfsapi.CREATE|vfsapi.WRONLY)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if _, err := h.Append(ctx, 64<<10); err != nil {
			t.Errorf("append: %v", err)
		}
		if err := h.Fsync(ctx); err != nil {
			t.Errorf("fsync: %v", err)
		}
		h.Close(ctx)
		k.Stop()
	})
	eng.Run()
	if counting.fsyncs == 0 {
		t.Fatal("fsync on the paged mount never reached the inner filesystem")
	}
}

package kern

import (
	"repro/internal/vfsapi"
)

// FSStore adapts any vfsapi.FileSystem into a kernel mount Store. It is
// how the kernel page cache stacks on top of a FUSE mount (the FP and
// FP/FP configurations, where the kernel AND the user-level client both
// cache the same data — the double-caching memory blowup of Fig 11b).
//
// FSStore synthesizes its own inode numbers and keeps per-file handles
// open on the inner filesystem for the data path.
type FSStore struct {
	inner vfsapi.FileSystem

	nextIno uint64
	inoOf   map[string]uint64
	pathOf  map[uint64]string
	handles map[uint64]vfsapi.Handle
}

// NewFSStore wraps inner as a Store.
func NewFSStore(inner vfsapi.FileSystem) *FSStore {
	return &FSStore{
		inner:   inner,
		inoOf:   map[string]uint64{},
		pathOf:  map[uint64]string{},
		handles: map[uint64]vfsapi.Handle{},
	}
}

func (s *FSStore) ino(path string) uint64 {
	if ino, ok := s.inoOf[path]; ok {
		return ino
	}
	s.nextIno++
	s.inoOf[path] = s.nextIno
	s.pathOf[s.nextIno] = path
	return s.nextIno
}

func (s *FSStore) forget(path string) {
	if ino, ok := s.inoOf[path]; ok {
		delete(s.inoOf, path)
		delete(s.pathOf, ino)
		delete(s.handles, ino)
	}
}

// handle returns an open read-write handle on the inner filesystem for
// ino's path, opening lazily.
func (s *FSStore) handle(ctx vfsapi.Ctx, ino uint64) (vfsapi.Handle, error) {
	if h, ok := s.handles[ino]; ok {
		return h, nil
	}
	path, ok := s.pathOf[ino]
	if !ok {
		return nil, vfsapi.ErrNotExist
	}
	h, err := s.inner.Open(ctx, path, vfsapi.RDWR)
	if err != nil {
		return nil, err
	}
	s.handles[ino] = h
	return h, nil
}

// ForwardOpen propagates an application's open to the inner filesystem
// with the caller's true intent, so semantics that trigger at open time
// below the page cache (union copy-up, truncation) happen when the
// application opens the file — not when writeback eventually pushes
// data down. The opened handle is retained for the data path.
func (s *FSStore) ForwardOpen(ctx vfsapi.Ctx, path string, flags vfsapi.OpenFlag) error {
	// The store keeps one long-lived handle per file; reopen with the
	// write-intent flags when needed.
	ino := s.ino(path)
	if h, ok := s.handles[ino]; ok {
		if !flags.Writable() {
			return nil // existing handle suffices for reads
		}
		h.Close(ctx)
		delete(s.handles, ino)
	}
	h, err := s.inner.Open(ctx, path, flags&^vfsapi.APPEND|vfsapi.RDWR)
	if err != nil {
		return err
	}
	s.handles[ino] = h
	return nil
}

// Lookup resolves a path on the inner filesystem.
func (s *FSStore) Lookup(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, uint64, error) {
	info, err := s.inner.Stat(ctx, path)
	if err != nil {
		return vfsapi.FileInfo{}, 0, err
	}
	return info, s.ino(path), nil
}

// Create makes a file on the inner filesystem.
func (s *FSStore) Create(ctx vfsapi.Ctx, path string) (uint64, error) {
	h, err := s.inner.Open(ctx, path, vfsapi.CREATE|vfsapi.RDWR)
	if err != nil {
		return 0, err
	}
	ino := s.ino(path)
	s.handles[ino] = h
	return ino, nil
}

// Mkdir forwards to the inner filesystem.
func (s *FSStore) Mkdir(ctx vfsapi.Ctx, path string) error { return s.inner.Mkdir(ctx, path) }

// Readdir forwards to the inner filesystem.
func (s *FSStore) Readdir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	return s.inner.Readdir(ctx, path)
}

// Unlink forwards and forgets local state.
func (s *FSStore) Unlink(ctx vfsapi.Ctx, path string) (uint64, error) {
	ino := s.ino(path)
	if h, ok := s.handles[ino]; ok {
		h.Close(ctx)
	}
	if err := s.inner.Unlink(ctx, path); err != nil {
		return 0, err
	}
	s.forget(path)
	return ino, nil
}

// Rmdir forwards to the inner filesystem.
func (s *FSStore) Rmdir(ctx vfsapi.Ctx, path string) error { return s.inner.Rmdir(ctx, path) }

// Rename forwards and rewrites the ino maps.
func (s *FSStore) Rename(ctx vfsapi.Ctx, oldPath, newPath string) error {
	if err := s.inner.Rename(ctx, oldPath, newPath); err != nil {
		return err
	}
	if ino, ok := s.inoOf[oldPath]; ok {
		delete(s.inoOf, oldPath)
		s.inoOf[newPath] = ino
		s.pathOf[ino] = newPath
	}
	return nil
}

// SetSize truncates through the inner filesystem when shrinking to
// zero; size growth is implied by the data writes themselves.
func (s *FSStore) SetSize(ctx vfsapi.Ctx, ino uint64, size int64) error {
	if size != 0 {
		return nil
	}
	path, ok := s.pathOf[ino]
	if !ok {
		return vfsapi.ErrNotExist
	}
	if h, ok := s.handles[ino]; ok {
		h.Close(ctx)
		delete(s.handles, ino)
	}
	h, err := s.inner.Open(ctx, path, vfsapi.WRONLY|vfsapi.TRUNC)
	if err != nil {
		return err
	}
	s.handles[ino] = h
	return nil
}

// ReadData reads through the per-file inner handle.
func (s *FSStore) ReadData(ctx vfsapi.Ctx, ino uint64, off, n int64) {
	if h, err := s.handle(ctx, ino); err == nil {
		h.Read(ctx, off, n)
	}
}

// WriteData writes through the per-file inner handle.
func (s *FSStore) WriteData(ctx vfsapi.Ctx, ino uint64, off, n int64) {
	if h, err := s.handle(ctx, ino); err == nil {
		h.Write(ctx, off, n)
	}
}

// Fsync forwards a sync barrier to the inner filesystem: WriteData
// only moved pages into the inner cache (the FUSE daemon's user-level
// client), so durability requires the inner handle's own fsync — the
// FUSE_FSYNC the kernel sends the daemon on an application fsync.
func (s *FSStore) Fsync(ctx vfsapi.Ctx, ino uint64) error {
	h, err := s.handle(ctx, ino)
	if err != nil {
		return err
	}
	return h.Fsync(ctx)
}

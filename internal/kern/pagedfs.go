package kern

import (
	"repro/internal/cpu"
	"repro/internal/vfsapi"
)

// Mount implements vfsapi.FileSystem: the kernel filesystem path with
// page caching, inode mutexes and writeback. Callers are expected to
// already be in kernel mode (wrap with Syscalls for the user-entry
// costs).

// OpenForwarder is implemented by stores whose backing filesystem has
// open-time semantics of its own (FSStore over a FUSE union): the mount
// forwards each application open so copy-up and truncation fire below
// the page cache at the right moment.
type OpenForwarder interface {
	ForwardOpen(ctx vfsapi.Ctx, path string, flags vfsapi.OpenFlag) error
}

// failIfCrashed is the entry check on every mount-level operation: a
// crashed kernel client fails everything deterministically until the
// remount completes. Failing still costs a syscall's worth of kernel
// time so erroring loops advance simulated time instead of spinning at
// one virtual instant.
func (m *Mount) failIfCrashed(ctx vfsapi.Ctx) error {
	if m.crashed {
		ctx.T.Exec(ctx.P, cpu.Kernel, m.kern.params.VFSOpCost)
		return vfsapi.ErrCrashed
	}
	return nil
}

// Open opens or creates a file.
func (m *Mount) Open(ctx vfsapi.Ctx, path string, flags vfsapi.OpenFlag) (vfsapi.Handle, error) {
	if err := m.failIfCrashed(ctx); err != nil {
		return nil, err
	}
	if fw, ok := m.store.(OpenForwarder); ok && flags.Writable() {
		if err := fw.ForwardOpen(ctx, path, flags); err != nil && !(flags.Has(vfsapi.CREATE) && err == vfsapi.ErrNotExist) {
			return nil, err
		}
	}
	info, ino, err := m.store.Lookup(ctx, path)
	switch {
	case err == nil:
		if info.IsDir {
			return nil, vfsapi.ErrIsDir
		}
	case err == vfsapi.ErrNotExist && flags.Has(vfsapi.CREATE):
		ino, err = m.store.Create(ctx, path)
		if err != nil {
			return nil, err
		}
		info = vfsapi.FileInfo{Name: path}
	default:
		return nil, err
	}
	f := m.file(ino, info.Size)
	if flags.Has(vfsapi.TRUNC) && flags.Writable() {
		m.dropCache(ctx, f)
		f.size = 0
		if err := m.store.SetSize(ctx, ino, 0); err != nil {
			return nil, err
		}
	}
	return &pagedHandle{m: m, f: f, path: path, flags: flags, gen: m.gen, raNext: -1}, nil
}

// Stat returns metadata, preferring the in-kernel (possibly dirty) size.
func (m *Mount) Stat(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, error) {
	if err := m.failIfCrashed(ctx); err != nil {
		return vfsapi.FileInfo{}, err
	}
	info, ino, err := m.store.Lookup(ctx, path)
	if err != nil {
		return vfsapi.FileInfo{}, err
	}
	if f, ok := m.files[ino]; ok && !info.IsDir && f.size > info.Size {
		info.Size = f.size
	}
	return info, nil
}

// Mkdir creates a directory.
func (m *Mount) Mkdir(ctx vfsapi.Ctx, path string) error {
	if err := m.failIfCrashed(ctx); err != nil {
		return err
	}
	return m.store.Mkdir(ctx, path)
}

// Readdir lists a directory.
func (m *Mount) Readdir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	if err := m.failIfCrashed(ctx); err != nil {
		return nil, err
	}
	return m.store.Readdir(ctx, path)
}

// Unlink removes a file and drops its cached state.
func (m *Mount) Unlink(ctx vfsapi.Ctx, path string) error {
	if err := m.failIfCrashed(ctx); err != nil {
		return err
	}
	ino, err := m.store.Unlink(ctx, path)
	if err != nil {
		return err
	}
	if f, ok := m.files[ino]; ok {
		f.unlinked = true
		m.dropCache(ctx, f)
		delete(m.files, ino)
	}
	return nil
}

// Rmdir removes an empty directory.
func (m *Mount) Rmdir(ctx vfsapi.Ctx, path string) error {
	if err := m.failIfCrashed(ctx); err != nil {
		return err
	}
	return m.store.Rmdir(ctx, path)
}

// Rename moves a file.
func (m *Mount) Rename(ctx vfsapi.Ctx, oldPath, newPath string) error {
	if err := m.failIfCrashed(ctx); err != nil {
		return err
	}
	return m.store.Rename(ctx, oldPath, newPath)
}

// pagedHandle is an open file on a kernel mount.
type pagedHandle struct {
	m      *Mount
	f      *fileState
	path   string
	flags  vfsapi.OpenFlag
	gen    uint64 // mount generation at open; stale after a crash
	closed bool
	wrote  bool

	// Sequential-read detection for readahead.
	raNext   int64 // expected next offset; -1 = no stream yet
	raWindow int64
}

// failIfStale fails handle operations after the handle is closed or the
// mount crashed. The generation check keeps pre-crash handles failing
// even after the remount: the file table was rebuilt cold, so the old
// fileState is an orphan and the application must reopen.
func (h *pagedHandle) failIfStale(ctx vfsapi.Ctx) error {
	if h.closed {
		return vfsapi.ErrClosed
	}
	if h.m.crashed || h.gen != h.m.gen {
		ctx.T.Exec(ctx.P, cpu.Kernel, h.m.kern.params.VFSOpCost)
		return vfsapi.ErrCrashed
	}
	return nil
}

// Path returns the open path.
func (h *pagedHandle) Path() string { return h.path }

// Size returns the kernel's view of the file size.
func (h *pagedHandle) Size() int64 { return h.f.size }

// Read serves [off,off+n) from the page cache, fetching misses from the
// store with readahead on sequential streams.
func (h *pagedHandle) Read(ctx vfsapi.Ctx, off, n int64) (int64, error) {
	if err := h.failIfStale(ctx); err != nil {
		return 0, err
	}
	if off >= h.f.size {
		return 0, nil
	}
	if off+n > h.f.size {
		n = h.f.size - off
	}
	if n <= 0 {
		return 0, nil
	}
	m := h.m
	params := m.kern.params

	if h.flags.Has(vfsapi.DIRECT) {
		m.store.ReadData(ctx, h.f.ino, off, n)
		ctx.T.Exec(ctx.P, cpu.Kernel, params.CopyTime(n))
		return n, nil
	}

	// Readahead: grow the window on sequential access, reset on seek.
	// Brownout zeroes the effective window, deferring speculative
	// fetches while the backend or admission queues are overloaded.
	fetchLen := n
	if ra := m.raWindow(); ra > 0 {
		if off == h.raNext {
			if h.raWindow == 0 {
				h.raWindow = ra / 8
			}
			h.raWindow *= 2
			if h.raWindow > ra {
				h.raWindow = ra
			}
		} else {
			h.raWindow = 0 // random access: no readahead
		}
		fetchLen += h.raWindow
		if off+fetchLen > h.f.size {
			fetchLen = h.f.size - off
		}
	}
	h.raNext = off + n

	// Fetch misses with page-lock semantics: ranges being read in by
	// another thread are awaited rather than re-fetched.
	for {
		if err := h.failIfStale(ctx); err != nil {
			// The client died while we waited on a fetch (or mid-loop):
			// the page cache was discarded, fail rather than re-fetch
			// from the dead store.
			return 0, err
		}
		gaps := h.f.cached.Gaps(off, fetchLen)
		if len(gaps) == 0 {
			break
		}
		g := gaps[0]
		if h.f.fetching.Covered(g.Off, g.Len) > 0 {
			m.fetchQ.WaitTimeout(ctx.P, params.DirtyThrottleCheck)
			continue
		}
		h.f.fetching.Insert(g.Off, g.Len)
		m.store.ReadData(ctx, h.f.ino, g.Off, g.Len)
		if err := h.failIfStale(ctx); err != nil {
			// Crashed during the store read: release the claim so other
			// stale waiters cycle out, and fail instead of inserting
			// into the restarted incarnation's cache.
			h.f.fetching.Remove(g.Off, g.Len)
			m.fetchQ.Broadcast()
			return 0, err
		}
		m.cacheInsert(ctx, h.f, g.Off, g.Len)
		h.f.fetching.Remove(g.Off, g.Len)
		m.fetchQ.Broadcast()
	}
	// LRU touch for the access (page flags only — cached reads do not
	// pay per-page lock holds) plus the user-visible copy out.
	m.chargeLRU(ctx, 0, func() { m.touch(h.f) })
	ctx.T.Exec(ctx.P, cpu.Kernel, params.CopyTime(n))
	return n, nil
}

// Write copies [off,off+n) into the page cache and marks it dirty,
// throttling when the mount exceeds its dirty limit.
func (h *pagedHandle) Write(ctx vfsapi.Ctx, off, n int64) (int64, error) {
	if err := h.failIfStale(ctx); err != nil {
		return 0, err
	}
	if !h.flags.Writable() && !h.flags.Has(vfsapi.CREATE) {
		return 0, vfsapi.ErrReadOnly
	}
	if n <= 0 {
		return 0, nil
	}
	m := h.m
	params := m.kern.params
	h.wrote = true

	if h.flags.Has(vfsapi.DIRECT) {
		ctx.T.Exec(ctx.P, cpu.Kernel, params.CopyTime(n))
		m.store.WriteData(ctx, h.f.ino, off, n)
		if end := off + n; end > h.f.size {
			h.f.size = end
			m.store.SetSize(ctx, h.f.ino, end)
		}
		return n, nil
	}

	h.f.imutex.Lock(ctx.P)
	ctx.T.Exec(ctx.P, cpu.Kernel, params.IMutexHold)
	ctx.T.Exec(ctx.P, cpu.Kernel, params.CopyTime(n))
	m.cacheInsert(ctx, h.f, off, n)
	if end := off + n; end > h.f.size {
		h.f.size = end
	}
	h.f.imutex.Unlock(ctx.P)
	m.markDirty(ctx, h.f, off, n)
	if err := h.failIfStale(ctx); err != nil {
		// The client died while the writer was throttled: the pages it
		// buffered are gone, so the write must not report success.
		return 0, err
	}
	return n, nil
}

// Append writes at end of file under the inode mutex.
func (h *pagedHandle) Append(ctx vfsapi.Ctx, n int64) (int64, error) {
	off := h.f.size
	_, err := h.Write(ctx, off, n)
	return off, err
}

// Fsync synchronously drains this file's dirty pages to the store.
func (h *pagedHandle) Fsync(ctx vfsapi.Ctx) error {
	if err := h.failIfStale(ctx); err != nil {
		return err
	}
	m := h.m
	for h.f.dirty.Len() > 0 {
		m.kern.writebackLock.Lock(ctx.P)
		ctx.T.Exec(ctx.P, cpu.Kernel, m.kern.params.WritebackLockHold)
		exts := h.f.dirty.PopFirst(4 << 20)
		m.kern.writebackLock.Unlock(ctx.P)
		var total int64
		for _, e := range exts {
			m.store.WriteData(ctx, h.f.ino, e.Off, e.Len)
			total += e.Len
		}
		if err := h.failIfStale(ctx); err != nil {
			// Crash mid-fsync: the dirty accounting was already zeroed,
			// and the un-acknowledged batch must not count as synced.
			return err
		}
		m.dirtyBytes -= total
		m.throttleQ.Broadcast()
	}
	m.removeDirty(h.f)
	if err := m.store.SetSize(ctx, h.f.ino, h.f.size); err != nil {
		return err
	}
	// Draining pages into the store is only durable when the store
	// itself persists them (disk, kernel Ceph client). A store stacked
	// on another filesystem (FSStore over ceph-fuse: the FP and FP/FP
	// double-caching stacks) merely moved the pages into the inner
	// cache — the fsync must propagate down or acknowledged data is
	// still volatile in the user-level client.
	if fs, ok := m.store.(storeFsyncer); ok {
		return fs.Fsync(ctx, h.f.ino)
	}
	return nil
}

// storeFsyncer is implemented by stores whose WriteData is not itself
// durable and which must forward fsync to a lower layer.
type storeFsyncer interface {
	Fsync(ctx vfsapi.Ctx, ino uint64) error
}

// Close releases the handle, propagating the size for written files.
func (h *pagedHandle) Close(ctx vfsapi.Ctx) error {
	if h.closed {
		return vfsapi.ErrClosed
	}
	if err := h.failIfStale(ctx); err != nil {
		// Closing a stale handle releases it but cannot push the size —
		// the kernel state that tracked it is gone.
		h.closed = true
		return err
	}
	h.closed = true
	if h.wrote && !h.f.unlinked {
		return h.m.store.SetSize(ctx, h.f.ino, h.f.size)
	}
	return nil
}

package cpu

import (
	"fmt"
	"math/bits"
	"strings"
)

// Mask is a set of core IDs (up to 64 cores per host, matching the
// paper's 64-core client machine).
type Mask uint64

// MaskOf returns a mask containing exactly the given cores.
func MaskOf(cores ...int) Mask {
	var m Mask
	for _, c := range cores {
		m |= 1 << uint(c)
	}
	return m
}

// MaskRange returns a mask of cores [lo, hi).
func MaskRange(lo, hi int) Mask {
	var m Mask
	for c := lo; c < hi; c++ {
		m |= 1 << uint(c)
	}
	return m
}

// Has reports whether core c is in the mask.
func (m Mask) Has(c int) bool { return m&(1<<uint(c)) != 0 }

// Count returns the number of cores in the mask.
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// Union returns the union of two masks.
func (m Mask) Union(o Mask) Mask { return m | o }

// Cores returns the core IDs in the mask in ascending order.
func (m Mask) Cores() []int {
	out := make([]int, 0, m.Count())
	for v := uint64(m); v != 0; {
		c := bits.TrailingZeros64(v)
		out = append(out, c)
		v &^= 1 << uint(c)
	}
	return out
}

// String renders the mask as a compact core list.
func (m Mask) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, c := range m.Cores() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	b.WriteByte('}')
	return b.String()
}

// Package cpu models the multicore processor of a host: cores with
// affinity-constrained FIFO scheduling, quantum-based time sharing,
// per-core utilization accounting and per-pool attribution.
//
// The model captures the two scheduling phenomena the paper builds on:
// kernel threads with a host-wide affinity mask consume the reserved
// (idle) cores of other container pools, while Danaus service threads
// pinned to a pool's cores never leave them.
package cpu

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

// CPU is a set of simulated cores scheduled with FIFO admission and
// quantum-sliced round-robin sharing.
type CPU struct {
	eng     *sim.Engine
	params  *model.Params
	cores   []coreState
	waiters []*waiter
	all     Mask
	groupSz int
	scanRR  int // rotating scan start spreads load across idle cores
}

type coreState struct {
	busy     bool
	busyTime time.Duration
}

type waiter struct {
	p        *sim.Proc
	th       *Thread
	assigned int
}

// New creates a processor with n cores grouped in pairs sharing cache
// (matching the Opteron 6378 core-pair L2 organization).
func New(eng *sim.Engine, params *model.Params, n int) *CPU {
	if n <= 0 || n > 64 {
		panic(fmt.Sprintf("cpu: core count %d out of range", n))
	}
	return &CPU{
		eng:     eng,
		params:  params,
		cores:   make([]coreState, n),
		all:     MaskRange(0, n),
		groupSz: 2,
	}
}

// NumCores returns the number of cores.
func (c *CPU) NumCores() int { return len(c.cores) }

// AllMask returns a mask of every core on the host.
func (c *CPU) AllMask() Mask { return c.all }

// GroupOf returns the core-group index (shared-L2 pair) of core id.
func (c *CPU) GroupOf(core int) int { return core / c.groupSz }

// NumGroups returns the number of core groups.
func (c *CPU) NumGroups() int { return (len(c.cores) + c.groupSz - 1) / c.groupSz }

// GroupMask returns the mask of cores in group g.
func (c *CPU) GroupMask(g int) Mask {
	lo := g * c.groupSz
	hi := lo + c.groupSz
	if hi > len(c.cores) {
		hi = len(c.cores)
	}
	return MaskRange(lo, hi) & c.all
}

// Thread is a schedulable entity bound to an Account and an affinity
// mask. Threads are sticky: they prefer the core they last ran on.
type Thread struct {
	cpu      *CPU
	acct     *Account
	mask     Mask
	lastCore int
}

// NewThread creates a thread with the given affinity. A zero mask means
// the thread may run anywhere on the host.
func (c *CPU) NewThread(acct *Account, mask Mask) *Thread {
	if mask == 0 {
		mask = c.all
	}
	return &Thread{cpu: c, acct: acct, mask: mask & c.all, lastCore: -1}
}

// SetAffinity repins the thread to mask (e.g. the front driver pinning
// an application thread to the cores of its first request queue).
func (t *Thread) SetAffinity(mask Mask) {
	if mask != 0 {
		t.mask = mask & t.cpu.all
	}
}

// Affinity returns the current affinity mask.
func (t *Thread) Affinity() Mask { return t.mask }

// LastCore returns the core the thread most recently ran on, or -1.
func (t *Thread) LastCore() int { return t.lastCore }

// Account returns the thread's accounting target.
func (t *Thread) Account() *Account { return t.acct }

// Exec consumes d of CPU time of kind k on a core within the thread's
// affinity mask, waiting FIFO for a core when all are busy and yielding
// the core every scheduler quantum.
func (t *Thread) Exec(p *sim.Proc, k TimeKind, d time.Duration) {
	c := t.cpu
	for d > 0 {
		core := c.acquire(p, t)
		slice := c.params.Quantum
		if d < slice {
			slice = d
		}
		p.Sleep(slice)
		c.cores[core].busyTime += slice
		t.acct.addTime(k, slice)
		t.lastCore = core
		c.release(core)
		d -= slice
	}
}

// ExecBytes consumes CPU time equivalent to processing n bytes at the
// given single-core rate.
func (t *Thread) ExecBytes(p *sim.Proc, k TimeKind, n, bytesPerSec int64) {
	t.Exec(p, k, model.RateTime(n, bytesPerSec))
}

// ModeSwitch charges one user/kernel crossing to the thread.
func (t *Thread) ModeSwitch(p *sim.Proc) {
	t.acct.modeSwitches++
	t.Exec(p, Kernel, t.cpu.params.ModeSwitchCost)
}

// ContextSwitch charges one thread switch to the thread's account.
func (t *Thread) ContextSwitch(p *sim.Proc) {
	t.acct.contextSwitches++
	t.Exec(p, Kernel, t.cpu.params.ContextSwitchCost)
}

// acquire obtains an idle core in the thread's mask, parking FIFO when
// none is available. Released cores are handed directly to the oldest
// compatible waiter, so admission order is preserved.
func (c *CPU) acquire(p *sim.Proc, t *Thread) int {
	// Fast path: sticky core, then a rotating scan so unpinned threads
	// (e.g. kernel flushers) spread across every idle core of the host
	// instead of clustering on the lowest-numbered ones.
	if t.lastCore >= 0 && t.mask.Has(t.lastCore) && !c.cores[t.lastCore].busy {
		c.cores[t.lastCore].busy = true
		return t.lastCore
	}
	eligible := t.mask.Cores()
	if len(eligible) > 0 {
		start := c.scanRR % len(eligible)
		c.scanRR++
		for i := 0; i < len(eligible); i++ {
			core := eligible[(start+i)%len(eligible)]
			if !c.cores[core].busy {
				c.cores[core].busy = true
				return core
			}
		}
	}
	w := &waiter{p: p, th: t, assigned: -1}
	c.waiters = append(c.waiters, w)
	p.Park()
	return w.assigned
}

func (c *CPU) release(core int) {
	for i, w := range c.waiters {
		if w.th.mask.Has(core) {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			w.assigned = core // core stays busy: direct handoff
			c.eng.ScheduleWake(w.p)
			return
		}
	}
	c.cores[core].busy = false
}

// UtilSnapshot captures each core's cumulative busy time.
func (c *CPU) UtilSnapshot() []time.Duration {
	out := make([]time.Duration, len(c.cores))
	for i := range c.cores {
		out[i] = c.cores[i].busyTime
	}
	return out
}

// Utilization returns the summed utilization of the cores in mask over
// the window since the given snapshot, as a fraction of ONE core (so a
// fully busy 2-core mask reports 2.0, rendered as 200%).
func (c *CPU) Utilization(mask Mask, since []time.Duration, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	var busy time.Duration
	for _, core := range mask.Cores() {
		busy += c.cores[core].busyTime - since[core]
	}
	return float64(busy) / float64(window)
}

// Package cpu models the multicore processor of a host: cores with
// affinity-constrained FIFO scheduling, quantum-based time sharing,
// per-core utilization accounting and per-pool attribution.
//
// The model captures the two scheduling phenomena the paper builds on:
// kernel threads with a host-wide affinity mask consume the reserved
// (idle) cores of other container pools, while Danaus service threads
// pinned to a pool's cores never leave them.
package cpu

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
)

// CPU is a set of simulated cores scheduled with FIFO admission and
// quantum-sliced round-robin sharing.
type CPU struct {
	eng     *sim.Engine
	params  *model.Params
	cores   []coreState
	waiters []*waiter
	all     Mask
	groupSz int
	scanRR  int // rotating scan start spreads load across idle cores

	// runPool recycles execRun states (and their step closures) across
	// coalesced Exec calls, keeping the scheduler hot path free of
	// per-call allocations. Safe without locking: exactly one goroutine
	// runs at any instant in the simulation.
	runPool []*execRun

	rec *obs.Recorder
}

// SetRecorder attaches an observability recorder; every executed core
// slice is then mirrored to it as a per-core trace event. Nil detaches.
func (c *CPU) SetRecorder(rec *obs.Recorder) { c.rec = rec }

// kindName renders a TimeKind for trace tags.
func kindName(k TimeKind) string {
	if k == Kernel {
		return "kernel"
	}
	return "user"
}

// recordSlice mirrors one just-charged core slice (ending now) to the
// recorder. Called only at the points that charge busyTime, so the
// trace's per-core tracks reconstruct exactly the scheduler's view.
func (c *CPU) recordSlice(core int, d time.Duration, acct *Account, k TimeKind) {
	if c.rec == nil {
		return
	}
	name := ""
	if acct != nil {
		name = acct.Name
	}
	c.rec.Core(core, c.eng.Now()-d, d, name, kindName(k))
}

type coreState struct {
	busy     bool
	busyTime time.Duration
	occupant *Account // account running on the core while busy
}

type waiter struct {
	p        *sim.Proc
	th       *Thread
	assigned int
}

// New creates a processor with n cores grouped in pairs sharing cache
// (matching the Opteron 6378 core-pair L2 organization).
func New(eng *sim.Engine, params *model.Params, n int) *CPU {
	if n <= 0 || n > 64 {
		panic(fmt.Sprintf("cpu: core count %d out of range", n))
	}
	return &CPU{
		eng:     eng,
		params:  params,
		cores:   make([]coreState, n),
		all:     MaskRange(0, n),
		groupSz: 2,
	}
}

// NumCores returns the number of cores.
func (c *CPU) NumCores() int { return len(c.cores) }

// AllMask returns a mask of every core on the host.
func (c *CPU) AllMask() Mask { return c.all }

// GroupOf returns the core-group index (shared-L2 pair) of core id.
func (c *CPU) GroupOf(core int) int { return core / c.groupSz }

// NumGroups returns the number of core groups.
func (c *CPU) NumGroups() int { return (len(c.cores) + c.groupSz - 1) / c.groupSz }

// GroupMask returns the mask of cores in group g.
func (c *CPU) GroupMask(g int) Mask {
	lo := g * c.groupSz
	hi := lo + c.groupSz
	if hi > len(c.cores) {
		hi = len(c.cores)
	}
	return MaskRange(lo, hi) & c.all
}

// Thread is a schedulable entity bound to an Account and an affinity
// mask. Threads are sticky: they prefer the core they last ran on.
type Thread struct {
	cpu      *CPU
	acct     *Account
	mask     Mask
	lastCore int
}

// NewThread creates a thread with the given affinity. A zero mask means
// the thread may run anywhere on the host.
func (c *CPU) NewThread(acct *Account, mask Mask) *Thread {
	if mask == 0 {
		mask = c.all
	}
	return &Thread{cpu: c, acct: acct, mask: mask & c.all, lastCore: -1}
}

// SetAffinity repins the thread to mask (e.g. the front driver pinning
// an application thread to the cores of its first request queue).
func (t *Thread) SetAffinity(mask Mask) {
	if mask != 0 {
		t.mask = mask & t.cpu.all
	}
}

// Affinity returns the current affinity mask.
func (t *Thread) Affinity() Mask { return t.mask }

// LastCore returns the core the thread most recently ran on, or -1.
func (t *Thread) LastCore() int { return t.lastCore }

// Account returns the thread's accounting target.
func (t *Thread) Account() *Account { return t.acct }

// Exec consumes d of CPU time of kind k on a core within the thread's
// affinity mask, waiting FIFO for a core when all are busy and yielding
// the core every scheduler quantum.
//
// Multi-quantum runs are coalesced: the process parks once and the
// per-quantum bookkeeping (charging, release, re-acquire) runs as
// engine-loop callbacks, so an uncontended 10ms Exec costs one
// park/resume round trip instead of one per quantum. The callbacks
// mirror the slice-per-quantum loop event for event — see the execRun
// invariants — so virtual-time results are bit-identical.
func (t *Thread) Exec(p *sim.Proc, k TimeKind, d time.Duration) {
	if d <= 0 {
		return
	}
	c := t.cpu
	core := c.acquire(p, t)
	if d > c.params.Quantum {
		c.runCoalesced(p, t, k, core, d)
		return
	}
	p.Sleep(d)
	c.cores[core].busyTime += d
	t.acct.addTime(k, d)
	t.lastCore = core
	c.recordSlice(core, d, t.acct, k)
	p.ReportWait("run", "cpu", "", 0, d)
	c.release(core)
}

// execRun drives one coalesced multi-quantum Exec. The owning process
// parks once; per-quantum bookkeeping fires as engine callbacks via
// step. The chain is constructed to be event-for-event identical to the
// historical acquire/Sleep(quantum)/release loop: at every point where
// that loop pushed exactly one engine event (the next Sleep wake, or a
// waiter handoff inside release), the chain pushes exactly one event of
// the same timestamp at the same position in engine seq order. Because
// the event heap breaks timestamp ties by seq, this preserves the
// simulation's event interleaving — and therefore its virtual-time
// results — bit for bit.
type execRun struct {
	c     *CPU
	p     *sim.Proc
	t     *Thread
	kind  TimeKind
	core  int
	d     time.Duration // remaining work, including the in-flight slice
	slice time.Duration // length of the in-flight slice
	final bool          // in-flight slice is the last: its wake resumes p
	lost  bool          // core lost at a boundary: p queued in c.waiters
	w     waiter        // reusable waiter record for the lost case
	step  func()        // reusable boundary callback (captures this run)

	// Wait-observer bookkeeping for the lost-core path: when it began
	// and which account is to blame, captured at enqueue time.
	lostAt time.Duration
	aggr   string
}

// runCoalesced executes the remaining d (> one quantum) of work for t
// on the already-acquired core, parking p until the work is consumed.
func (c *CPU) runCoalesced(p *sim.Proc, t *Thread, k TimeKind, core int, d time.Duration) {
	r := c.getRun()
	r.p, r.t, r.kind, r.core, r.d = p, t, k, core, d
	r.final, r.lost = false, false
	r.slice = c.params.Quantum
	c.eng.After(r.slice, r.step) // same push the old loop's first Sleep made
	for {
		p.Park()
		if r.lost {
			// A boundary callback lost the core; a release just handed
			// us a new one. Mirror the old loop's post-acquire path.
			r.lost = false
			r.core = r.w.assigned
			p.ReportWait("runq", "cpu", r.aggr, 0, c.eng.Now()-r.lostAt)
			if r.d > c.params.Quantum {
				r.slice = c.params.Quantum
				c.eng.After(r.slice, r.step)
				continue
			}
			r.final = true
			r.slice = r.d
			c.eng.ScheduleWakeAfter(p, r.slice)
			continue
		}
		// Final wake: charge the last slice and release, exactly as the
		// old loop's last iteration did after its Sleep returned.
		c.cores[r.core].busyTime += r.slice
		t.acct.addTime(k, r.slice)
		t.lastCore = r.core
		c.recordSlice(r.core, r.slice, t.acct, k)
		p.ReportWait("run", "cpu", "", 0, r.slice)
		c.release(r.core)
		break
	}
	c.putRun(r)
}

// fire is the per-quantum boundary callback of a coalesced run: charge
// the completed slice, then replay release + re-acquire. It performs
// the same state mutations and event pushes, in the same order, as one
// iteration of the historical Exec loop.
func (r *execRun) fire() {
	c := r.c
	c.cores[r.core].busyTime += r.slice
	r.t.acct.addTime(r.kind, r.slice)
	r.t.lastCore = r.core
	c.recordSlice(r.core, r.slice, r.t.acct, r.kind)
	r.p.ReportWait("run", "cpu", "", 0, r.slice)
	r.d -= r.slice
	c.release(r.core)
	core, ok := c.tryAcquire(r.t)
	if !ok {
		// Preempted: queue FIFO exactly where the old loop's acquire
		// would have parked. A later release wakes p with the core.
		r.lost = true
		r.lostAt = c.eng.Now()
		if c.eng.HasWaitObserver() {
			r.aggr = c.runqAggressor(r.t)
		}
		r.w = waiter{p: r.p, th: r.t, assigned: -1}
		c.waiters = append(c.waiters, &r.w)
		return
	}
	r.core = core
	if r.d > c.params.Quantum {
		r.slice = c.params.Quantum
		c.eng.After(r.slice, r.step)
		return
	}
	// Last slice: hand its wake to the parked process so the run ends
	// with the same proc-resume event the old loop's final Sleep pushed.
	r.final = true
	r.slice = r.d
	c.eng.ScheduleWakeAfter(r.p, r.slice)
}

func (c *CPU) getRun() *execRun {
	if n := len(c.runPool); n > 0 {
		r := c.runPool[n-1]
		c.runPool = c.runPool[:n-1]
		return r
	}
	r := &execRun{c: c}
	r.step = r.fire
	return r
}

func (c *CPU) putRun(r *execRun) {
	r.p, r.t = nil, nil
	r.w = waiter{}
	c.runPool = append(c.runPool, r)
}

// ExecBytes consumes CPU time equivalent to processing n bytes at the
// given single-core rate.
func (t *Thread) ExecBytes(p *sim.Proc, k TimeKind, n, bytesPerSec int64) {
	t.Exec(p, k, model.RateTime(n, bytesPerSec))
}

// ModeSwitch charges one user/kernel crossing to the thread.
func (t *Thread) ModeSwitch(p *sim.Proc) {
	t.acct.modeSwitches++
	t.Exec(p, Kernel, t.cpu.params.ModeSwitchCost)
}

// ContextSwitch charges one thread switch to the thread's account.
func (t *Thread) ContextSwitch(p *sim.Proc) {
	t.acct.contextSwitches++
	t.Exec(p, Kernel, t.cpu.params.ContextSwitchCost)
}

// acquire obtains an idle core in the thread's mask, parking FIFO when
// none is available. Released cores are handed directly to the oldest
// compatible waiter, so admission order is preserved.
func (c *CPU) acquire(p *sim.Proc, t *Thread) int {
	if core, ok := c.tryAcquire(t); ok {
		return core
	}
	since := c.eng.Now()
	aggr := ""
	if c.eng.HasWaitObserver() {
		aggr = c.runqAggressor(t)
	}
	w := &waiter{p: p, th: t, assigned: -1}
	c.waiters = append(c.waiters, w)
	p.Park()
	p.ReportWait("runq", "cpu", aggr, 0, c.eng.Now()-since)
	return w.assigned
}

// runqAggressor names the account to blame for a core-acquisition wait
// beginning now: the occupant of a busy core inside the waiter's mask,
// preferring an account different from the waiter's own (that is the
// core-theft case the paper measures — e.g. a host-wide kernel flusher
// squatting on a pool's reserved cores). Ties break on the lowest core
// index, keeping attribution deterministic.
func (c *CPU) runqAggressor(t *Thread) string {
	self := ""
	for w := uint64(t.mask); w != 0; w &= w - 1 {
		core := bits.TrailingZeros64(w)
		cs := &c.cores[core]
		if !cs.busy || cs.occupant == nil {
			continue
		}
		if cs.occupant != t.acct {
			return cs.occupant.Name
		}
		if self == "" {
			self = cs.occupant.Name
		}
	}
	return self
}

// tryAcquire claims an idle core in the thread's mask without blocking.
// Fast path: sticky core, then a rotating scan so unpinned threads
// (e.g. kernel flushers) spread across every idle core of the host
// instead of clustering on the lowest-numbered ones. The scan walks the
// mask with bit operations — ascending core order starting at the
// scanRR-th set bit, wrapping — visiting exactly the sequence the
// former Cores()-slice scan produced, without the allocation.
func (c *CPU) tryAcquire(t *Thread) (int, bool) {
	if t.lastCore >= 0 && t.mask.Has(t.lastCore) && !c.cores[t.lastCore].busy {
		c.cores[t.lastCore].busy = true
		c.cores[t.lastCore].occupant = t.acct
		return t.lastCore, true
	}
	if t.mask != 0 {
		start := c.scanRR % t.mask.Count()
		c.scanRR++
		// rest holds the set bits from the start-th onward; the wrapped
		// remainder is the cleared lower bits.
		rest := uint64(t.mask)
		for i := 0; i < start; i++ {
			rest &= rest - 1
		}
		for _, w := range [2]uint64{rest, uint64(t.mask) &^ rest} {
			for ; w != 0; w &= w - 1 {
				core := bits.TrailingZeros64(w)
				if !c.cores[core].busy {
					c.cores[core].busy = true
					c.cores[core].occupant = t.acct
					return core, true
				}
			}
		}
	}
	return -1, false
}

func (c *CPU) release(core int) {
	for i, w := range c.waiters {
		if w.th.mask.Has(core) {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			w.assigned = core // core stays busy: direct handoff
			c.cores[core].occupant = w.th.acct
			c.eng.ScheduleWake(w.p)
			return
		}
	}
	c.cores[core].busy = false
	c.cores[core].occupant = nil
}

// UtilSnapshot captures each core's cumulative busy time.
func (c *CPU) UtilSnapshot() []time.Duration {
	out := make([]time.Duration, len(c.cores))
	for i := range c.cores {
		out[i] = c.cores[i].busyTime
	}
	return out
}

// Utilization returns the summed utilization of the cores in mask over
// the window since the given snapshot, as a fraction of ONE core (so a
// fully busy 2-core mask reports 2.0, rendered as 200%).
func (c *CPU) Utilization(mask Mask, since []time.Duration, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	var busy time.Duration
	for w := uint64(mask); w != 0; w &= w - 1 {
		core := bits.TrailingZeros64(w)
		busy += c.cores[core].busyTime - since[core]
	}
	return float64(busy) / float64(window)
}

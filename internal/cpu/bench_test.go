package cpu

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

// BenchmarkExecCoalescedUncontended measures a long Exec on an idle
// host: the quantum chain must coalesce the whole 10ms run into one
// park/resume round trip and stay allocation-free via the run pool.
func BenchmarkExecCoalescedUncontended(b *testing.B) {
	eng := sim.NewEngine()
	c := New(eng, model.Default(), 4)
	th := c.NewThread(NewAccount("bench"), 0)
	eng.Go("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			th.Exec(p, User, 10*time.Millisecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
}

// BenchmarkExecSubQuantum measures the short-Exec fast path (the IPC
// and syscall cost charges, far below one quantum).
func BenchmarkExecSubQuantum(b *testing.B) {
	eng := sim.NewEngine()
	c := New(eng, model.Default(), 4)
	th := c.NewThread(NewAccount("bench"), 0)
	eng.Go("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			th.Exec(p, User, time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
}

// BenchmarkExecContended time-shares one core between four threads, so
// every quantum boundary goes through the FIFO waiter queue.
func BenchmarkExecContended(b *testing.B) {
	eng := sim.NewEngine()
	c := New(eng, model.Default(), 1)
	acct := NewAccount("bench")
	const threads = 4
	per := b.N/threads + 1
	for i := 0; i < threads; i++ {
		th := c.NewThread(acct, MaskOf(0))
		eng.Go("bench", func(p *sim.Proc) {
			for j := 0; j < per; j++ {
				th.Exec(p, User, 2*time.Millisecond)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
}

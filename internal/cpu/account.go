package cpu

import "time"

// TimeKind classifies where simulated CPU time is spent, mirroring the
// user/system/iowait split the paper reports.
type TimeKind int

const (
	// User is application- or libservice-level computation.
	User TimeKind = iota
	// Kernel is time executing inside the simulated host kernel.
	Kernel
	// numKinds sizes per-kind arrays.
	numKinds
)

// Account accumulates resource consumption for a container pool (or
// the host kernel itself). It is the unit of attribution for the
// paper's cpu-activity, context-switch and I/O-wait comparisons.
type Account struct {
	Name string

	timeByKind [numKinds]time.Duration
	ioWait     time.Duration

	modeSwitches    uint64
	contextSwitches uint64
}

// NewAccount creates a named account.
func NewAccount(name string) *Account { return &Account{Name: name} }

// CPUTime returns total simulated CPU consumed (user + kernel).
func (a *Account) CPUTime() time.Duration {
	return a.timeByKind[User] + a.timeByKind[Kernel]
}

// Time returns CPU time of one kind.
func (a *Account) Time(k TimeKind) time.Duration { return a.timeByKind[k] }

// IOWait returns accumulated time threads of this account spent blocked
// inside kernel I/O paths (dirty throttling, I/O completion waits).
func (a *Account) IOWait() time.Duration { return a.ioWait }

// AddIOWait records blocked-on-I/O time.
func (a *Account) AddIOWait(d time.Duration) { a.ioWait += d }

// ModeSwitches returns the number of user/kernel crossings charged.
func (a *Account) ModeSwitches() uint64 { return a.modeSwitches }

// ContextSwitches returns the number of thread switches charged.
func (a *Account) ContextSwitches() uint64 { return a.contextSwitches }

func (a *Account) addTime(k TimeKind, d time.Duration) {
	if a == nil {
		return
	}
	a.timeByKind[k] += d
}

// Snapshot captures the account counters for delta reporting across a
// measurement window.
type Snapshot struct {
	CPUTime         time.Duration
	UserTime        time.Duration
	KernelTime      time.Duration
	IOWait          time.Duration
	ModeSwitches    uint64
	ContextSwitches uint64
}

// Snapshot returns the current counter values.
func (a *Account) Snapshot() Snapshot {
	return Snapshot{
		CPUTime:         a.CPUTime(),
		UserTime:        a.timeByKind[User],
		KernelTime:      a.timeByKind[Kernel],
		IOWait:          a.ioWait,
		ModeSwitches:    a.modeSwitches,
		ContextSwitches: a.contextSwitches,
	}
}

// Sub returns the change since an earlier snapshot.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	return Snapshot{
		CPUTime:         s.CPUTime - earlier.CPUTime,
		UserTime:        s.UserTime - earlier.UserTime,
		KernelTime:      s.KernelTime - earlier.KernelTime,
		IOWait:          s.IOWait - earlier.IOWait,
		ModeSwitches:    s.ModeSwitches - earlier.ModeSwitches,
		ContextSwitches: s.ContextSwitches - earlier.ContextSwitches,
	}
}

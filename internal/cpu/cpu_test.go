package cpu

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

func newTestCPU(t *testing.T, cores int) (*sim.Engine, *CPU) {
	t.Helper()
	e := sim.NewEngine()
	return e, New(e, model.Default(), cores)
}

func TestMaskBasics(t *testing.T) {
	m := MaskOf(0, 3, 5)
	if !m.Has(0) || !m.Has(3) || !m.Has(5) || m.Has(1) {
		t.Fatalf("membership wrong for %v", m)
	}
	if m.Count() != 3 {
		t.Fatalf("Count = %d, want 3", m.Count())
	}
	r := MaskRange(2, 6)
	if got := r.Cores(); len(got) != 4 || got[0] != 2 || got[3] != 5 {
		t.Fatalf("MaskRange cores = %v", got)
	}
	if u := m.Union(r); u.Count() != 5 {
		t.Fatalf("union count = %d, want 5 for {0,3,5}∪{2..5}", u.Count())
	}
	if s := MaskOf(1, 2).String(); s != "{1,2}" {
		t.Fatalf("String = %q", s)
	}
}

func TestExecConsumesVirtualTimeOnOneCore(t *testing.T) {
	e, c := newTestCPU(t, 2)
	acct := NewAccount("a")
	var end time.Duration
	e.Go("w", func(p *sim.Proc) {
		th := c.NewThread(acct, 0)
		th.Exec(p, User, 10*time.Millisecond)
		end = p.Now()
	})
	e.Run()
	if end != 10*time.Millisecond {
		t.Fatalf("uncontended exec finished at %v, want 10ms", end)
	}
	if acct.Time(User) != 10*time.Millisecond {
		t.Fatalf("account user time = %v", acct.Time(User))
	}
}

func TestExecTimeSharingIsFair(t *testing.T) {
	// Two CPU-bound threads on one core should each take ~2x wall time.
	e, c := newTestCPU(t, 1)
	acct := NewAccount("a")
	done := make([]time.Duration, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Go("w", func(p *sim.Proc) {
			th := c.NewThread(acct, MaskOf(0))
			th.Exec(p, User, 50*time.Millisecond)
			done[i] = p.Now()
		})
	}
	e.Run()
	for i, d := range done {
		if d < 99*time.Millisecond || d > 101*time.Millisecond {
			t.Fatalf("thread %d finished at %v, want ~100ms (fair sharing)", i, d)
		}
	}
}

func TestAffinityRestrictsCores(t *testing.T) {
	e, c := newTestCPU(t, 4)
	acct := NewAccount("a")
	e.Go("w", func(p *sim.Proc) {
		th := c.NewThread(acct, MaskOf(2))
		th.Exec(p, User, 20*time.Millisecond)
	})
	e.Run()
	util := c.UtilSnapshot()
	for core, busy := range util {
		if core == 2 && busy != 20*time.Millisecond {
			t.Fatalf("core 2 busy %v, want 20ms", busy)
		}
		if core != 2 && busy != 0 {
			t.Fatalf("core %d busy %v, want 0 (affinity violated)", core, busy)
		}
	}
}

func TestKernelThreadsStealIdleReservedCores(t *testing.T) {
	// The Fig 1a mechanism: a host-wide kernel thread spreads onto the
	// idle reserved cores of another pool; once that pool becomes busy,
	// the kernel thread's share of those cores collapses.
	e, c := newTestCPU(t, 4)
	kern := NewAccount("kernel")
	poolB := MaskOf(2, 3)

	// Two roaming kernel threads, each wanting 100ms of CPU.
	for i := 0; i < 4; i++ {
		e.Go("kflush", func(p *sim.Proc) {
			th := c.NewThread(kern, c.AllMask())
			th.Exec(p, Kernel, 100*time.Millisecond)
		})
	}
	start := c.UtilSnapshot()
	e.Run()
	window := e.Now()
	if got := c.Utilization(poolB, start, window); got < 1.9 {
		t.Fatalf("idle pool cores utilization = %.2f, want ~2.0 (kernel steals them)", got)
	}

	// Re-run with pool B busy: kernel threads must share, so pool B's
	// own work gets at least half of its cores.
	e2 := sim.NewEngine()
	c2 := New(e2, model.Default(), 4)
	kern2 := NewAccount("kernel")
	bAcct := NewAccount("poolB")
	for i := 0; i < 4; i++ {
		e2.Go("kflush", func(p *sim.Proc) {
			th := c2.NewThread(kern2, c2.AllMask())
			th.Exec(p, Kernel, 100*time.Millisecond)
		})
	}
	for i := 0; i < 2; i++ {
		e2.Go("bwork", func(p *sim.Proc) {
			th := c2.NewThread(bAcct, poolB)
			th.Exec(p, User, 100*time.Millisecond)
		})
	}
	e2.Run()
	if bAcct.Time(User) != 200*time.Millisecond {
		t.Fatalf("pool B user time = %v, want 200ms", bAcct.Time(User))
	}
}

func TestPinnedThreadsNeverLeaveTheirPool(t *testing.T) {
	e, c := newTestCPU(t, 4)
	acct := NewAccount("danaus")
	pool := MaskOf(0, 1)
	for i := 0; i < 3; i++ {
		e.Go("svc", func(p *sim.Proc) {
			th := c.NewThread(acct, pool)
			th.Exec(p, User, 30*time.Millisecond)
		})
	}
	e.Run()
	util := c.UtilSnapshot()
	if util[2] != 0 || util[3] != 0 {
		t.Fatalf("pinned threads leaked onto foreign cores: %v", util)
	}
	if util[0]+util[1] != 90*time.Millisecond {
		t.Fatalf("pool cores busy %v, want total 90ms", util[:2])
	}
}

func TestFIFOAdmissionUnderContention(t *testing.T) {
	e, c := newTestCPU(t, 1)
	acct := NewAccount("a")
	var order []int
	// Occupy the core, then queue three arrivals in a known order.
	e.Go("hog", func(p *sim.Proc) {
		th := c.NewThread(acct, 0)
		th.Exec(p, User, 10*time.Millisecond)
	})
	for i := 0; i < 3; i++ {
		i := i
		e.Go("w", func(p *sim.Proc) {
			p.Sleep(time.Duration(i+1) * time.Microsecond)
			th := c.NewThread(acct, 0)
			th.Exec(p, User, time.Microsecond)
			order = append(order, i)
		})
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("admission order = %v, want FIFO", order)
		}
	}
}

func TestModeAndContextSwitchAccounting(t *testing.T) {
	e, c := newTestCPU(t, 1)
	acct := NewAccount("a")
	e.Go("w", func(p *sim.Proc) {
		th := c.NewThread(acct, 0)
		th.ModeSwitch(p)
		th.ModeSwitch(p)
		th.ContextSwitch(p)
	})
	e.Run()
	if acct.ModeSwitches() != 2 {
		t.Fatalf("mode switches = %d, want 2", acct.ModeSwitches())
	}
	if acct.ContextSwitches() != 1 {
		t.Fatalf("context switches = %d, want 1", acct.ContextSwitches())
	}
	wantKernel := 2*model.Default().ModeSwitchCost + model.Default().ContextSwitchCost
	if acct.Time(Kernel) != wantKernel {
		t.Fatalf("kernel time = %v, want %v", acct.Time(Kernel), wantKernel)
	}
}

func TestSnapshotDelta(t *testing.T) {
	a := NewAccount("a")
	a.addTime(User, time.Second)
	a.AddIOWait(time.Millisecond)
	s1 := a.Snapshot()
	a.addTime(Kernel, 2*time.Second)
	a.AddIOWait(time.Millisecond)
	d := a.Snapshot().Sub(s1)
	if d.UserTime != 0 || d.KernelTime != 2*time.Second || d.IOWait != time.Millisecond {
		t.Fatalf("delta = %+v", d)
	}
	if d.CPUTime != 2*time.Second {
		t.Fatalf("delta CPU = %v", d.CPUTime)
	}
}

func TestUtilizationWindow(t *testing.T) {
	e, c := newTestCPU(t, 2)
	acct := NewAccount("a")
	e.Go("w", func(p *sim.Proc) {
		th := c.NewThread(acct, MaskOf(0))
		th.Exec(p, User, 40*time.Millisecond)
	})
	start := c.UtilSnapshot()
	e.RunUntil(80 * time.Millisecond)
	got := c.Utilization(MaskOf(0, 1), start, 80*time.Millisecond)
	if got < 0.49 || got > 0.51 {
		t.Fatalf("utilization = %.3f, want ~0.5 (40ms busy over 80ms on 1 of 2 cores)", got)
	}
}

func TestStickyCorePreference(t *testing.T) {
	e, c := newTestCPU(t, 4)
	acct := NewAccount("a")
	e.Go("w", func(p *sim.Proc) {
		th := c.NewThread(acct, 0)
		th.Exec(p, User, time.Millisecond)
		first := th.LastCore()
		th.Exec(p, User, time.Millisecond)
		if th.LastCore() != first {
			t.Errorf("thread migrated from idle sticky core %d to %d", first, th.LastCore())
		}
	})
	e.Run()
}

func TestGroupMask(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, model.Default(), 6)
	if c.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want 3", c.NumGroups())
	}
	if g := c.GroupMask(1); g != MaskOf(2, 3) {
		t.Fatalf("GroupMask(1) = %v", g)
	}
	if c.GroupOf(5) != 2 {
		t.Fatalf("GroupOf(5) = %d", c.GroupOf(5))
	}
}

// TestRoundRobinFairnessProperty: N equal CPU-bound threads on one core
// finish within one quantum of each other, for random N.
func TestRoundRobinFairnessProperty(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		e := sim.NewEngine()
		c := New(e, model.Default(), 1)
		acct := NewAccount("a")
		done := make([]time.Duration, n)
		for i := 0; i < n; i++ {
			i := i
			e.Go("w", func(p *sim.Proc) {
				th := c.NewThread(acct, MaskOf(0))
				th.Exec(p, User, 20*time.Millisecond)
				done[i] = p.Now()
			})
		}
		e.Run()
		var min, max time.Duration = 1 << 62, 0
		for _, d := range done {
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		// Round-robin staggers the final slices by at most one quantum
		// per contender.
		if max-min > time.Duration(n)*model.Default().Quantum {
			t.Fatalf("n=%d unfair finish spread: min=%v max=%v", n, min, max)
		}
		want := time.Duration(n) * 20 * time.Millisecond
		if max != want {
			t.Fatalf("n=%d total runtime %v, want %v (work conservation)", n, max, want)
		}
	}
}

// TestWorkConservation: total busy time equals total demanded CPU.
func TestWorkConservation(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, model.Default(), 3)
	acct := NewAccount("a")
	var demand time.Duration
	for i := 0; i < 7; i++ {
		d := time.Duration(i+1) * 3 * time.Millisecond
		demand += d
		e.Go("w", func(p *sim.Proc) {
			th := c.NewThread(acct, 0)
			th.Exec(p, User, d)
		})
	}
	e.Run()
	var busy time.Duration
	for _, b := range c.UtilSnapshot() {
		busy += b
	}
	if busy != demand {
		t.Fatalf("busy %v != demand %v", busy, demand)
	}
	if acct.CPUTime() != demand {
		t.Fatalf("account %v != demand %v", acct.CPUTime(), demand)
	}
}

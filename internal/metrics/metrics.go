// Package metrics provides the measurement primitives the experiments
// report: latency histograms with percentile queries, operation and
// byte counters, and throughput computation over virtual-time windows.
package metrics

import (
	"math"
	"math/bits"
	"time"
)

// Histogram records durations in exponential buckets (32 sub-buckets
// per power of two, ~3% relative error), supporting mean and quantile
// queries without retaining samples.
type Histogram struct {
	buckets [64 * subBuckets]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const subBuckets = 32

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{min: math.MaxInt64} }

func bucketIndex(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	// Top 5 bits after the leading one select the sub-bucket.
	sub := int((v >> (uint(exp) - 5)) & (subBuckets - 1))
	return (exp-4)*subBuckets + sub
}

func bucketValue(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	exp := idx/subBuckets + 4
	sub := idx % subBuckets
	// The top clamped buckets (exp >= 63) would overflow the int64
	// shifts below; saturate instead of wrapping negative.
	if exp >= 63 {
		return math.MaxInt64
	}
	return (1 << uint(exp)) | (int64(sub) << uint(exp-5))
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := bucketIndex(int64(d))
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest sample, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns the q-quantile (0 < q <= 1), e.g. 0.99 for p99.
// It returns 0 when the histogram is empty; q <= 0 resolves to the
// minimum sample and q > 1 to the maximum. Results are clamped to
// [Min, Max], so single-bucket histograms report exact values.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			v := time.Duration(bucketValue(i))
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Reset clears all samples.
func (h *Histogram) Reset() { *h = Histogram{min: math.MaxInt64} }

// Counter accumulates operation and byte totals for a workload phase.
type Counter struct {
	Ops   uint64
	Bytes int64
}

// Add records one operation moving n bytes.
func (c *Counter) Add(n int64) {
	c.Ops++
	c.Bytes += n
}

// Throughput returns bytes/second over the window.
func (c *Counter) Throughput(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(c.Bytes) / window.Seconds()
}

// OpsPerSec returns operations/second over the window.
func (c *Counter) OpsPerSec(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(c.Ops) / window.Seconds()
}

// FaultCounters aggregates a storage client's fault-handling activity:
// how often operations were retried, completed on a non-primary
// replica, or exhausted their deadline, and how long the client spent
// backing off between attempts. Both the user-level client and the
// kernel Ceph client expose one.
type FaultCounters struct {
	// Retries counts data-operation attempts beyond the first.
	Retries uint64
	// Failovers counts operations that completed against a replica
	// other than the primary.
	Failovers uint64
	// DeadlineMisses counts operations that exhausted the per-op
	// deadline or retry budget (for the kernel client, which blocks
	// instead of failing: operations whose deadline would have expired).
	DeadlineMisses uint64
	// TimeDegraded is the total virtual time spent in retry backoff.
	TimeDegraded time.Duration
}

// Add accumulates other into c (for summing per-client counters).
func (c *FaultCounters) Add(other FaultCounters) {
	c.Retries += other.Retries
	c.Failovers += other.Failovers
	c.DeadlineMisses += other.DeadlineMisses
	c.TimeDegraded += other.TimeDegraded
}

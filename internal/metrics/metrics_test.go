package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("Mean = %v, want 50.5ms", got)
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	p99 := h.Quantile(0.99)
	if p99 < 95*time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("p99 = %v, want ~99ms", p99)
	}
	med := h.Quantile(0.5)
	if med < 47*time.Millisecond || med > 53*time.Millisecond {
		t.Fatalf("median = %v, want ~50ms", med)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Quantile(0.99) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
	h.Record(time.Millisecond)
	if h.Min() != time.Millisecond {
		t.Fatalf("Min after reset = %v", h.Min())
	}
}

// Property: bucketValue(bucketIndex(v)) is within ~3.2% of v.
func TestBucketRelativeErrorProperty(t *testing.T) {
	f := func(raw int64) bool {
		v := raw
		if v < 0 {
			v = -v
		}
		v %= int64(72 * time.Hour)
		idx := bucketIndex(v)
		rep := bucketValue(idx)
		if v < subBuckets {
			return rep == v
		}
		diff := float64(v-rep) / float64(v)
		return diff >= 0 && diff < 1.0/subBuckets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(rng.Int63n(int64(10 * time.Second))))
	}
	prev := time.Duration(-1)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		if v < h.Min() || v > h.Max() {
			t.Fatalf("quantile %v out of [min,max]", v)
		}
		prev = v
	}
}

// Regression: bucketValue must not overflow for the top clamped
// buckets (exp >= 63 used to wrap negative), and Record/Quantile must
// stay well defined at extreme durations.
func TestBucketValueSaturation(t *testing.T) {
	top := len(NewHistogram().buckets) - 1
	for idx := top - 3*subBuckets; idx <= top; idx++ {
		if v := bucketValue(idx); v < 0 {
			t.Fatalf("bucketValue(%d) = %d, negative (overflow)", idx, v)
		}
	}
	prev := int64(-1)
	for idx := 0; idx <= top; idx++ {
		v := bucketValue(idx)
		if v < prev {
			t.Fatalf("bucketValue not monotone at %d: %d < %d", idx, v, prev)
		}
		prev = v
	}
	h := NewHistogram()
	huge := time.Duration(math.MaxInt64)
	h.Record(huge)
	if got := h.Quantile(0.5); got != huge {
		t.Fatalf("Quantile(0.5) after max-duration sample = %v, want %v", got, huge)
	}
	if got := h.Quantile(1.0); got != huge {
		t.Fatalf("Quantile(1.0) = %v, want %v", got, huge)
	}
}

// Regression: a single-sample (single-bucket) histogram must report
// that exact value for every quantile, the mean, min and max.
func TestHistogramSingleBucket(t *testing.T) {
	for _, d := range []time.Duration{0, 1, 17, time.Microsecond, 3 * time.Second} {
		h := NewHistogram()
		h.Record(d)
		h.Record(d)
		h.Record(d)
		for _, q := range []float64{-1, 0, 0.001, 0.5, 0.99, 1.0, 2.0} {
			if got := h.Quantile(q); got != d {
				t.Fatalf("Quantile(%v) of constant %v histogram = %v", q, d, got)
			}
		}
		if h.Mean() != d || h.Min() != d || h.Max() != d {
			t.Fatalf("Mean/Min/Max of constant %v = %v/%v/%v", d, h.Mean(), h.Min(), h.Max())
		}
	}
}

// Regression: count==0 returns defined zeros even for out-of-range q.
func TestHistogramEmptyQuantileEdges(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Mean() != 0 {
		t.Fatalf("empty Mean = %v, want 0", h.Mean())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(100)
	c.Add(300)
	if c.Ops != 2 || c.Bytes != 400 {
		t.Fatalf("counter = %+v", c)
	}
	if got := c.Throughput(2 * time.Second); got != 200 {
		t.Fatalf("Throughput = %v, want 200 B/s", got)
	}
	if got := c.OpsPerSec(time.Second); got != 2 {
		t.Fatalf("OpsPerSec = %v", got)
	}
	if c.Throughput(0) != 0 {
		t.Fatal("zero window should yield 0")
	}
}

// refBucketIndex is the historical bucketIndex with its hand-rolled
// O(64) leading-zero scan, kept as a reference to pin down the
// math/bits implementation on bucket boundaries.
func refBucketIndex(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	lz := 0
	for b := uint64(1) << 63; b != 0 && uint64(v)&b == 0; b >>= 1 {
		lz++
	}
	exp := 63 - lz
	sub := int((v >> (uint(exp) - 5)) & (subBuckets - 1))
	return (exp-4)*subBuckets + sub
}

func TestBucketIndexMatchesReference(t *testing.T) {
	cases := []int64{0, 1, 31, 32, 33, 63, 64, 65, 1 << 40, 1<<40 + 12345}
	for e := uint(5); e < 63; e++ {
		cases = append(cases, int64(1)<<e-1, int64(1)<<e, int64(1)<<e+1)
	}
	for _, v := range cases {
		if got, want := bucketIndex(v), refBucketIndex(v); got != want {
			t.Errorf("bucketIndex(%d) = %d, want %d", v, got, want)
		}
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		v := rng.Int63()
		if got, want := bucketIndex(v), refBucketIndex(v); got != want {
			t.Errorf("bucketIndex(%d) = %d, want %d", v, got, want)
		}
	}
}

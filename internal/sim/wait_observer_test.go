package sim

import (
	"testing"
	"time"
)

type waitRec struct {
	proc, kind, resource, holder string
	start, dur                   time.Duration
}

// TestMutexHolderAttributionUnderHandoff pins the lock-wait attribution
// contract: the reported holder is whoever held the lock when the
// waiter *enqueued*, not whoever handed it over. Under FIFO handoff a
// long queue means the final owner is usually an innocent waiter ahead
// of us; blaming it would charge victims for each other's waits.
func TestMutexHolderAttributionUnderHandoff(t *testing.T) {
	eng := NewEngine()
	var waits []waitRec
	eng.SetWaitObserver(func(p *Proc, kind, resource, holder string, holderID int, start, dur time.Duration) {
		waits = append(waits, waitRec{p.Name(), kind, resource, holder, start, dur})
	})
	m := NewMutex(eng, "i_mutex")

	eng.Go("aggressor", func(p *Proc) {
		m.Lock(p)
		p.Sleep(10 * time.Millisecond) // long critical section
		m.Unlock(p)
	})
	eng.Go("victim-b", func(p *Proc) {
		p.Sleep(time.Millisecond) // queue while aggressor holds the lock
		m.Lock(p)
		p.Sleep(2 * time.Millisecond)
		m.Unlock(p)
	})
	eng.Go("victim-c", func(p *Proc) {
		p.Sleep(2 * time.Millisecond) // queue behind victim-b
		m.Lock(p)
		m.Unlock(p)
	})
	eng.Run()

	if len(waits) != 2 {
		t.Fatalf("want 2 lock waits, got %d: %+v", len(waits), waits)
	}
	b, c := waits[0], waits[1]
	if b.proc != "victim-b" || b.holder != "aggressor" {
		t.Errorf("victim-b wait misattributed: %+v", b)
	}
	if b.dur != 9*time.Millisecond || b.start != time.Millisecond {
		t.Errorf("victim-b wait interval wrong: %+v", b)
	}
	// victim-c enqueued while the aggressor still held the lock but
	// received it from victim-b. Blame must stick to the aggressor.
	if c.proc != "victim-c" || c.holder != "aggressor" {
		t.Errorf("victim-c wait misattributed (handoff blamed instead of holder): %+v", c)
	}
	if c.dur != 10*time.Millisecond || c.start != 2*time.Millisecond {
		t.Errorf("victim-c wait interval wrong: %+v", c)
	}
	for _, w := range waits {
		if w.kind != "lock" || w.resource != "i_mutex" {
			t.Errorf("wrong kind/resource: %+v", w)
		}
	}
}

// TestWaitObserverUncontendedSilent verifies that uncontended locks and
// zero-length waits report nothing: only real waiting is blamed.
func TestWaitObserverUncontendedSilent(t *testing.T) {
	eng := NewEngine()
	var waits []waitRec
	eng.SetWaitObserver(func(p *Proc, kind, resource, holder string, holderID int, start, dur time.Duration) {
		waits = append(waits, waitRec{p.Name(), kind, resource, holder, start, dur})
	})
	m := NewMutex(eng, "free")
	eng.Go("solo", func(p *Proc) {
		m.Lock(p)
		m.Unlock(p)
		p.ReportWait("lock", "free", "", 0, 0) // explicit zero must be dropped
	})
	eng.Run()
	if len(waits) != 0 {
		t.Fatalf("uncontended run reported waits: %+v", waits)
	}
}

// TestWaitQueueReportsWaits verifies WaitQueue waits are observed with
// the queue's name, for both signalled and timed-out waits.
func TestWaitQueueReportsWaits(t *testing.T) {
	eng := NewEngine()
	var waits []waitRec
	eng.SetWaitObserver(func(p *Proc, kind, resource, holder string, holderID int, start, dur time.Duration) {
		waits = append(waits, waitRec{p.Name(), kind, resource, holder, start, dur})
	})
	q := NewWaitQueue(eng, "throttle")
	eng.Go("sleeper", func(p *Proc) {
		q.Wait(p)
		if q.WaitTimeout(p, 3*time.Millisecond) != true {
			t.Error("expected timeout")
		}
	})
	eng.Go("waker", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		q.Signal()
	})
	eng.Run()
	if len(waits) != 2 {
		t.Fatalf("want 2 waitq waits, got %d: %+v", len(waits), waits)
	}
	if waits[0].kind != "waitq" || waits[0].resource != "throttle" || waits[0].dur != 5*time.Millisecond {
		t.Errorf("signalled wait wrong: %+v", waits[0])
	}
	if waits[1].dur != 3*time.Millisecond {
		t.Errorf("timed-out wait wrong: %+v", waits[1])
	}
}

package sim

import "time"

// WaitQueue is a condition-variable-like primitive. Because only one
// process runs at a time in virtual time, the usual lost-wakeup races
// do not exist: callers re-check their condition in a loop around Wait.
type WaitQueue struct {
	eng     *Engine
	name    string
	waiters []*qWaiter
}

type qWaiter struct {
	p     *Proc
	woken bool // set when signalled or timed out; guards double wake
}

// NewWaitQueue creates a named wait queue on e.
func NewWaitQueue(e *Engine, name string) *WaitQueue {
	return &WaitQueue{eng: e, name: name}
}

// Wait parks p until Signal or Broadcast wakes it.
func (q *WaitQueue) Wait(p *Proc) {
	w := &qWaiter{p: p}
	q.waiters = append(q.waiters, w)
	since := q.eng.now
	p.park()
	p.ReportWait("waitq", q.name, "", 0, q.eng.now-since)
}

// WaitTimeout parks p until signalled or until d elapses. It reports
// whether the wait timed out.
func (q *WaitQueue) WaitTimeout(p *Proc, d time.Duration) (timedOut bool) {
	w := &qWaiter{p: p}
	q.waiters = append(q.waiters, w)
	q.eng.After(d, func() {
		if w.woken {
			return
		}
		w.woken = true
		q.remove(w)
		p.wakeReason = wakeTimeout
		q.eng.scheduleWake(p, q.eng.now)
	})
	since := q.eng.now
	timedOut = p.park() == wakeTimeout
	p.ReportWait("waitq", q.name, "", 0, q.eng.now-since)
	return timedOut
}

// Signal wakes the oldest waiter, if any. It reports whether a waiter
// was woken.
func (q *WaitQueue) Signal() bool {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.woken {
			continue
		}
		w.woken = true
		q.eng.scheduleWake(w.p, q.eng.now)
		return true
	}
	return false
}

// Broadcast wakes every current waiter.
func (q *WaitQueue) Broadcast() {
	for _, w := range q.waiters {
		if w.woken {
			continue
		}
		w.woken = true
		q.eng.scheduleWake(w.p, q.eng.now)
	}
	q.waiters = q.waiters[:0]
}

// Len returns the number of parked waiters.
func (q *WaitQueue) Len() int {
	n := 0
	for _, w := range q.waiters {
		if !w.woken {
			n++
		}
	}
	return n
}

func (q *WaitQueue) remove(target *qWaiter) {
	for i, w := range q.waiters {
		if w == target {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

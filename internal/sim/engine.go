// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock over a heap of pending events.
// Simulated processes (Proc) are goroutines that cooperatively hand
// control back to the engine whenever they block on a simulated
// primitive (Sleep, Mutex, WaitQueue, Resource). Exactly one goroutine
// — either the engine loop or a single resumed process — runs at any
// instant, so simulations are fully deterministic: two runs with the
// same seeds produce identical event orders and identical virtual
// timestamps.
package sim

import (
	"fmt"
	"time"
)

// Engine is a discrete-event simulator. The zero value is not usable;
// construct one with NewEngine.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap

	// deadline is the bound of the RunUntil call currently draining the
	// heap (negative: run to exhaustion). Processes consult it when
	// executing elidable events inline — see Proc.park — so inline
	// execution never runs past the engine loop's own stopping point.
	deadline time.Duration

	// parked receives a token whenever the currently running process
	// blocks or terminates, returning control to the engine loop.
	parked chan struct{}

	running    *Proc // process currently executing, nil inside the loop
	liveProcs  int   // processes started and not yet finished
	nextProcID int

	tracer  func(TraceEvent) // optional observer, see SetTracer
	waitObs WaitFn           // optional wait observer, see SetWaitObserver
}

// WaitFn observes one completed wait interval of a process: kind names
// the primitive ("lock", "runq", "run", "net", "osd", "mds", "disk",
// "waitq"), resource the contended object, and holder the party that
// occupied it ("" when not applicable). holderID is the process id of
// the holder when the holder is a process (0 otherwise — e.g. a
// runqueue aggressor is an account, not a process); observers use it to
// resolve the holder to the request it was serving. start is when the
// wait began; start+dur is always the current virtual time.
type WaitFn func(p *Proc, kind, resource, holder string, holderID int, start, dur time.Duration)

// SetWaitObserver installs fn as the engine's wait observer. Waits are
// reported passively — observation schedules no events and reads only
// the virtual clock — so an installed observer never perturbs the
// simulation schedule. A nil fn removes the observer.
func (e *Engine) SetWaitObserver(fn WaitFn) { e.waitObs = fn }

// HasWaitObserver reports whether a wait observer is installed. Callers
// use it to skip attribution work (e.g. scanning for the aggressor of a
// runqueue wait) that only matters when someone is listening.
func (e *Engine) HasWaitObserver() bool { return e.waitObs != nil }

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{
		parked:   make(chan struct{}),
		deadline: -1,
		// Pre-size the heap so steady-state event churn never grows it.
		events: make(eventHeap, 0, 256),
	}
}

// Now returns the current virtual time since the start of the simulation.
func (e *Engine) Now() time.Duration { return e.now }

// LiveProcs returns the number of processes that have been started and
// have not yet returned. Useful in tests to detect leaked processes.
func (e *Engine) LiveProcs() int { return e.liveProcs }

// After schedules fn to run on the engine loop at now+d. Callbacks must
// not block on simulation primitives; spawn a Proc for that.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.push(event{at: e.now + d, fn: fn})
}

// Go starts a new simulated process running fn. The process begins
// executing at the current virtual time, after the caller next yields
// to the engine. Go may be called before Run, from engine callbacks, or
// from inside another process.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	e.nextProcID++
	p := &Proc{
		eng:    e,
		name:   name,
		id:     e.nextProcID,
		resume: make(chan struct{}),
	}
	e.liveProcs++
	go func() {
		// The deferred handoff also covers runtime.Goexit (e.g. a
		// t.Fatal inside a simulated process): the engine regains
		// control instead of deadlocking on a lost park token. The
		// finish trace is emitted here rather than by the engine loop
		// because a process may have been resumed by a direct handoff
		// from a sibling process, not by the loop.
		defer func() {
			p.done = true
			e.liveProcs--
			e.trace(TraceEvent{At: e.now, Kind: TraceFinish, Proc: p.name, ProcID: p.id})
			e.running = nil
			e.parked <- struct{}{}
		}()
		<-p.resume
		fn(p)
	}()
	e.push(event{at: e.now, p: p})
	return p
}

// Run processes events until the event heap is empty. Processes that
// remain blocked on simulated primitives when the heap drains are left
// parked; LiveProcs reports them.
func (e *Engine) Run() {
	e.RunUntil(-1)
}

// RunUntil processes events with timestamps <= deadline, then sets the
// clock to deadline. A negative deadline means run to exhaustion.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.deadline = deadline
	for len(e.events) > 0 {
		if deadline >= 0 && e.events[0].at > deadline {
			break
		}
		ev := e.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		switch {
		case ev.fn != nil:
			e.trace(TraceEvent{At: e.now, Kind: TraceCallback})
			ev.fn()
		case ev.p != nil:
			e.trace(TraceEvent{At: e.now, Kind: TraceResume, Proc: ev.p.name, ProcID: ev.p.id})
			e.resumeProc(ev.p)
		}
	}
	if deadline >= 0 && e.now < deadline {
		e.now = deadline
	}
}

func (e *Engine) resumeProc(p *Proc) {
	if p.done {
		panic(fmt.Sprintf("sim: resuming finished proc %s", p.name))
	}
	p.pendingWake = false
	e.running = p
	p.resume <- struct{}{}
	<-e.parked
}

// ScheduleWake arranges for p to resume at the current virtual time.
// It is the wake half of the Park/ScheduleWake pair used by packages
// that build their own blocking primitives on top of the engine.
func (e *Engine) ScheduleWake(p *Proc) {
	e.scheduleWake(p, e.now)
}

// ScheduleWakeAfter arranges for p to resume at now+d. It lets engine
// callbacks hand a timed wake to a parked process (the CPU scheduler's
// coalesced quantum chain ends this way) without the process burning a
// park/resume round trip on an intermediate Sleep.
func (e *Engine) ScheduleWakeAfter(p *Proc, d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.scheduleWake(p, e.now+d)
}

// scheduleWake arranges for p to resume at absolute time at. A parked
// process must have exactly one pending wake: double wakes corrupt the
// park/resume pairing, so they are rejected loudly.
func (e *Engine) scheduleWake(p *Proc, at time.Duration) {
	if p.pendingWake {
		panic(fmt.Sprintf("sim: double wake for proc %s", p.name))
	}
	p.pendingWake = true
	if at < e.now {
		at = e.now
	}
	e.push(event{at: at, p: p})
}

func (e *Engine) push(ev event) {
	e.seq++
	ev.seq = e.seq
	e.events.push(ev)
}

func (e *Engine) pop() event { return e.events.pop() }

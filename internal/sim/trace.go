package sim

import (
	"fmt"
	"io"
	"time"
)

// TraceEvent describes one occurrence the engine processed: a callback
// firing or a process resuming.
type TraceEvent struct {
	At   time.Duration
	Kind TraceKind
	// Proc identifies the resumed process (empty for callbacks).
	Proc string
	// ProcID is the unique id of the resumed process (0 for callbacks).
	ProcID int
}

// TraceKind classifies trace events.
type TraceKind int

// Trace event kinds.
const (
	// TraceCallback is a timer/engine callback execution.
	TraceCallback TraceKind = iota
	// TraceResume is a process resumption.
	TraceResume
	// TraceFinish is a process termination.
	TraceFinish
)

// String renders the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceCallback:
		return "callback"
	case TraceResume:
		return "resume"
	case TraceFinish:
		return "finish"
	default:
		return "?"
	}
}

// SetTracer installs fn to observe every event the engine processes.
// Passing nil disables tracing. Tracing has no effect on virtual time,
// so a traced run is identical to an untraced one.
func (e *Engine) SetTracer(fn func(TraceEvent)) { e.tracer = fn }

// TraceTo installs a tracer that writes one line per event to w.
func (e *Engine) TraceTo(w io.Writer) {
	e.SetTracer(func(ev TraceEvent) {
		if ev.Kind == TraceCallback {
			fmt.Fprintf(w, "%12v callback\n", ev.At)
			return
		}
		fmt.Fprintf(w, "%12v %-7s %s#%d\n", ev.At, ev.Kind, ev.Proc, ev.ProcID)
	})
}

func (e *Engine) trace(ev TraceEvent) {
	if e.tracer != nil {
		e.tracer(ev)
	}
}

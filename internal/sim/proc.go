package sim

import (
	"fmt"
	"time"
)

// Proc is a simulated process: a goroutine that runs only when resumed
// by the engine and parks whenever it blocks on a simulated primitive.
// All Proc methods must be called from the process's own goroutine.
type Proc struct {
	eng    *Engine
	name   string
	id     int
	resume chan struct{}
	done   bool
	// pendingWake guards the one-pending-wake invariant of the engine.
	pendingWake bool

	// wakeReason carries out-of-band information from whoever woke the
	// process (e.g. whether a timed wait expired).
	wakeReason wakeReason
}

type wakeReason int

const (
	wakeNormal wakeReason = iota
	wakeTimeout
)

// Name returns the debug name given to Go.
func (p *Proc) Name() string { return p.name }

// ID returns the unique process id assigned by the engine.
func (p *Proc) ID() int { return p.id }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

// Park hands control back to the engine and blocks until another
// component calls Engine.ScheduleWake(p). It is the block half of the
// Park/ScheduleWake pair for building custom primitives; the caller is
// responsible for ensuring someone will wake the process.
func (p *Proc) Park() { p.park() }

// park hands control back to the engine and blocks until resumed.
//
// Fast path: before paying the two channel handoffs of a goroutine
// round trip, the parking process executes elidable pending events
// inline — engine callbacks, and its own wake. These are exactly the
// events the engine loop would process next, popped in identical heap
// order with identical clock, trace, and seq effects, so the inline
// path is indistinguishable from the parked one except in wall-clock
// cost. An event that resumes a different process is never elidable
// (it must run on that process's goroutine), and inline execution
// respects the engine's RunUntil deadline.
func (p *Proc) park() wakeReason {
	e := p.eng
	handedOff := false
	for !handedOff && len(e.events) > 0 {
		top := &e.events[0]
		if e.deadline >= 0 && top.at > e.deadline {
			break
		}
		ev := e.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		if ev.fn != nil {
			e.trace(TraceEvent{At: e.now, Kind: TraceCallback})
			ev.fn()
			continue
		}
		if ev.p == p {
			// Own wake reached: resume inline, never having parked.
			p.pendingWake = false
			e.trace(TraceEvent{At: e.now, Kind: TraceResume, Proc: p.name, ProcID: p.id})
			r := p.wakeReason
			p.wakeReason = wakeNormal
			return r
		}
		// The next event resumes another process: switch to it
		// directly — one goroutine handoff instead of two via the
		// engine loop.
		q := ev.p
		if q.done {
			panic(fmt.Sprintf("sim: resuming finished proc %s", q.name))
		}
		q.pendingWake = false
		e.trace(TraceEvent{At: e.now, Kind: TraceResume, Proc: q.name, ProcID: q.id})
		e.running = q
		q.resume <- struct{}{}
		handedOff = true
	}
	if !handedOff {
		// Heap drained (or deadline reached): return control to the
		// engine loop.
		e.running = nil
		e.parked <- struct{}{}
	}
	<-p.resume
	r := p.wakeReason
	p.wakeReason = wakeNormal
	return r
}

// ReportWait reports a wait interval that ended at the current virtual
// time to the engine's wait observer, if one is installed. Primitives
// call it after the fact — once the blocked process has resumed and
// knows how long it waited — so reporting never interacts with the
// park/wake machinery.
func (p *Proc) ReportWait(kind, resource, holder string, holderID int, dur time.Duration) {
	if p.eng.waitObs == nil || dur <= 0 {
		return
	}
	p.eng.waitObs(p, kind, resource, holder, holderID, p.eng.now-dur, dur)
}

// Sleep advances this process's virtual time by d without consuming any
// simulated resource.
func (p *Proc) Sleep(d time.Duration) {
	if d <= 0 {
		d = 0
	}
	p.eng.scheduleWake(p, p.eng.now+d)
	p.park()
}

// Yield reschedules the process at the current time, letting any other
// runnable work at the same timestamp execute first. When no such work
// exists the park/resume round trip is elided entirely.
func (p *Proc) Yield() {
	p.eng.scheduleWake(p, p.eng.now)
	p.park()
}

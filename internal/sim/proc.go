package sim

import "time"

// Proc is a simulated process: a goroutine that runs only when resumed
// by the engine and parks whenever it blocks on a simulated primitive.
// All Proc methods must be called from the process's own goroutine.
type Proc struct {
	eng    *Engine
	name   string
	id     int
	resume chan struct{}
	done   bool
	// pendingWake guards the one-pending-wake invariant of the engine.
	pendingWake bool

	// wakeReason carries out-of-band information from whoever woke the
	// process (e.g. whether a timed wait expired).
	wakeReason wakeReason
}

type wakeReason int

const (
	wakeNormal wakeReason = iota
	wakeTimeout
)

// Name returns the debug name given to Go.
func (p *Proc) Name() string { return p.name }

// ID returns the unique process id assigned by the engine.
func (p *Proc) ID() int { return p.id }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

// Park hands control back to the engine and blocks until another
// component calls Engine.ScheduleWake(p). It is the block half of the
// Park/ScheduleWake pair for building custom primitives; the caller is
// responsible for ensuring someone will wake the process.
func (p *Proc) Park() { p.park() }

// park hands control back to the engine and blocks until resumed.
func (p *Proc) park() wakeReason {
	p.eng.running = nil
	p.eng.parked <- struct{}{}
	<-p.resume
	r := p.wakeReason
	p.wakeReason = wakeNormal
	return r
}

// Sleep advances this process's virtual time by d without consuming any
// simulated resource.
func (p *Proc) Sleep(d time.Duration) {
	if d <= 0 {
		d = 0
	}
	p.eng.scheduleWake(p, p.eng.now+d)
	p.park()
}

// Yield reschedules the process at the current time, letting any other
// runnable work at the same timestamp execute first.
func (p *Proc) Yield() {
	p.eng.scheduleWake(p, p.eng.now)
	p.park()
}

package sim

import "time"

// event is a pending occurrence in virtual time: either an engine
// callback (fn) or the resumption of a parked process (p).
type event struct {
	at  time.Duration
	seq uint64 // tie-break for identical timestamps: FIFO scheduling order
	fn  func()
	p   *Proc
}

// eventHeap is a binary min-heap ordered by (at, seq). A hand-rolled
// heap avoids the interface boxing of container/heap on the hottest
// path of the simulator.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{} // release references
	*h = old[:n]
	if n > 0 {
		h.down(0)
	}
	return top
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

package sim

import (
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsCallbacksInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.After(30*time.Millisecond, func() { got = append(got, 3) })
	e.After(10*time.Millisecond, func() { got = append(got, 1) })
	e.After(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("callback order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOForSimultaneousEvents(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestProcSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEngine()
	var woke time.Duration
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	e.Run()
	if woke != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", woke)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(time.Millisecond)
					trace = append(trace, name)
				}
			})
		}
		e.Run()
		return trace
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); len(got) != len(first) {
			t.Fatalf("trace length varies")
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("nondeterministic trace: %v vs %v", got, first)
				}
			}
		}
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.After(time.Second, func() { fired++ })
	e.After(3*time.Second, func() { fired++ })
	e.RunUntil(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", e.Now())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after drain, want 2", fired)
	}
}

func TestMutexProvidesMutualExclusion(t *testing.T) {
	e := NewEngine()
	m := NewMutex(e, "test")
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		e.Go("worker", func(p *Proc) {
			for j := 0; j < 5; j++ {
				m.Lock(p)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Sleep(time.Millisecond)
				inside--
				m.Unlock(p)
			}
		})
	}
	e.Run()
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInside)
	}
	s := m.Stats()
	if s.Acquisitions != 20 {
		t.Fatalf("Acquisitions = %d, want 20", s.Acquisitions)
	}
	// Total hold is 20 critical sections of 1ms each.
	if s.TotalHold != 20*time.Millisecond {
		t.Fatalf("TotalHold = %v, want 20ms", s.TotalHold)
	}
	if s.Contended == 0 || s.TotalWait == 0 {
		t.Fatalf("expected contention, got %+v", s)
	}
}

func TestMutexFIFOHandoff(t *testing.T) {
	e := NewEngine()
	m := NewMutex(e, "fifo")
	var order []int
	e.Go("holder", func(p *Proc) {
		m.Lock(p)
		p.Sleep(10 * time.Millisecond)
		m.Unlock(p)
	})
	for i := 0; i < 5; i++ {
		i := i
		e.Go("waiter", func(p *Proc) {
			p.Sleep(time.Duration(i+1) * time.Millisecond) // arrive in order
			m.Lock(p)
			order = append(order, i)
			m.Unlock(p)
		})
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("handoff not FIFO: %v", order)
		}
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	e := NewEngine()
	m := NewMutex(e, "panic")
	panicked := false
	e.Go("bad", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		m.Unlock(p)
	})
	e.Run()
	if !panicked {
		t.Fatal("expected panic on unlock by non-owner")
	}
}

func TestWaitQueueSignalWakesOldest(t *testing.T) {
	e := NewEngine()
	q := NewWaitQueue(e, "q")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Go("waiter", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			q.Wait(p)
			order = append(order, i)
		})
	}
	e.Go("signaler", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		for i := 0; i < 3; i++ {
			q.Signal()
			p.Sleep(time.Millisecond)
		}
	})
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("signal order = %v, want FIFO", order)
		}
	}
}

func TestWaitQueueTimeout(t *testing.T) {
	e := NewEngine()
	q := NewWaitQueue(e, "q")
	var timedOut, signalled bool
	var when time.Duration
	e.Go("t", func(p *Proc) {
		timedOut = q.WaitTimeout(p, 50*time.Millisecond)
		when = p.Now()
	})
	e.Go("s", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		signalled = q.WaitTimeout(p, time.Hour)
		_ = signalled
	})
	e.Go("signaler", func(p *Proc) {
		p.Sleep(100 * time.Millisecond)
		q.Signal()
	})
	e.Run()
	if !timedOut {
		t.Fatal("first waiter should have timed out")
	}
	if when != 50*time.Millisecond {
		t.Fatalf("timeout fired at %v, want 50ms", when)
	}
	if signalled {
		t.Fatal("second waiter should have been signalled, not timed out")
	}
	if q.Len() != 0 {
		t.Fatalf("queue should be empty, len=%d", q.Len())
	}
}

func TestWaitQueueSignalAfterTimeoutSkipsStaleWaiter(t *testing.T) {
	e := NewEngine()
	q := NewWaitQueue(e, "q")
	woken := false
	e.Go("short", func(p *Proc) {
		q.WaitTimeout(p, 10*time.Millisecond)
	})
	e.Go("long", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.Wait(p)
		woken = true
	})
	e.Go("signaler", func(p *Proc) {
		p.Sleep(20 * time.Millisecond)
		if !q.Signal() {
			t.Error("Signal found no live waiter")
		}
	})
	e.Run()
	if !woken {
		t.Fatal("long waiter was not woken by the single Signal")
	}
}

func TestWaitQueueBroadcast(t *testing.T) {
	e := NewEngine()
	q := NewWaitQueue(e, "q")
	woken := 0
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *Proc) {
			q.Wait(p)
			woken++
		})
	}
	e.Go("b", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.Broadcast()
	})
	e.Run()
	if woken != 4 {
		t.Fatalf("woken = %d, want 4", woken)
	}
}

func TestResourceCapacityAndFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "disk", 2)
	active, maxActive := 0, 0
	for i := 0; i < 6; i++ {
		e.Go("u", func(p *Proc) {
			r.Acquire(p, 1)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(time.Millisecond)
			active--
			r.Release(1)
		})
	}
	e.Run()
	if maxActive != 2 {
		t.Fatalf("max active = %d, want capacity 2", maxActive)
	}
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d at end, want 0", r.InUse())
	}
	// 6 jobs of 1ms at capacity 2 => busy for 3ms total.
	if r.BusyTime() != 3*time.Millisecond {
		t.Fatalf("BusyTime = %v, want 3ms", r.BusyTime())
	}
}

func TestResourceLargeRequestNotStarved(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "link", 4)
	var bigDone time.Duration
	e.Go("small-stream", func(p *Proc) {
		for i := 0; i < 10; i++ {
			r.Acquire(p, 1)
			p.Sleep(time.Millisecond)
			r.Release(1)
		}
	})
	e.Go("big", func(p *Proc) {
		p.Sleep(time.Microsecond) // arrive just after first small claim
		r.Acquire(p, 4)
		bigDone = p.Now()
		r.Release(4)
	})
	e.Run()
	// FIFO admission: big must get in right after the first small
	// release, not after all ten.
	if bigDone == 0 || bigDone > 2*time.Millisecond {
		t.Fatalf("big request starved: done at %v", bigDone)
	}
}

func TestGoFromWithinProc(t *testing.T) {
	e := NewEngine()
	childRan := false
	e.Go("parent", func(p *Proc) {
		e.Go("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			childRan = true
		})
		p.Sleep(5 * time.Millisecond)
	})
	e.Run()
	if !childRan {
		t.Fatal("child spawned from proc did not run")
	}
}

func BenchmarkEngineSleepWake(b *testing.B) {
	e := NewEngine()
	e.Go("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineYield measures the self-wake fast path: a Yield with
// no competing work at the same timestamp must elide the park/resume
// goroutine round trip entirely.
func BenchmarkEngineYield(b *testing.B) {
	e := NewEngine()
	e.Go("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Yield()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineEventChurn measures raw callback scheduling: each
// iteration pushes and drains one timer event through the heap.
func BenchmarkEngineEventChurn(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(time.Microsecond, tick)
	e.Run()
}

func BenchmarkMutexUncontended(b *testing.B) {
	e := NewEngine()
	m := NewMutex(e, "b")
	e.Go("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			m.Lock(p)
			m.Unlock(p)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkMutexContendedHandoff measures the Unlock-to-waiter handoff
// with a standing queue of 64 workers, the hot path of the Fig 1b
// i_mutex convoys. The waiter ring must keep this allocation-free.
func BenchmarkMutexContendedHandoff(b *testing.B) {
	e := NewEngine()
	m := NewMutex(e, "b")
	const workers = 64
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		e.Go("bench", func(p *Proc) {
			for i := 0; i < per; i++ {
				m.Lock(p)
				p.Sleep(time.Microsecond)
				m.Unlock(p)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

func TestGoexitInsideProcDoesNotDeadlockEngine(t *testing.T) {
	// A test failure inside a simulated process calls runtime.Goexit;
	// the engine must regain control instead of waiting forever.
	e := NewEngine()
	survived := false
	e.Go("dying", func(p *Proc) {
		p.Sleep(time.Millisecond)
		runtime.Goexit()
	})
	e.Go("other", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		survived = true
	})
	e.Run()
	if !survived {
		t.Fatal("engine stalled after a Goexit in another proc")
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d", e.LiveProcs())
	}
}

func TestDoubleWakePanics(t *testing.T) {
	e := NewEngine()
	var target *Proc
	target = e.Go("sleeper", func(p *Proc) {
		p.Sleep(time.Hour) // schedules one wake already
	})
	panicked := false
	e.Go("waker", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.Sleep(time.Millisecond)
		e.ScheduleWake(target) // second pending wake: must be rejected
	})
	e.RunUntil(time.Second)
	if !panicked {
		t.Fatal("double wake was not rejected")
	}
}

func TestEventOrderProperty(t *testing.T) {
	// Random callback schedules always fire in nondecreasing time order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var last time.Duration = -1
		ok := true
		var schedule func(depth int)
		schedule = func(depth int) {
			n := rng.Intn(5) + 1
			for i := 0; i < n; i++ {
				d := time.Duration(rng.Intn(1000)) * time.Microsecond
				e.After(d, func() {
					if e.Now() < last {
						ok = false
					}
					last = e.Now()
					if depth < 3 && rng.Intn(3) == 0 {
						schedule(depth + 1) // nested scheduling
					}
				})
			}
		}
		schedule(0)
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerObservesEventsWithoutChangingTime(t *testing.T) {
	run := func(traced bool) (time.Duration, []TraceEvent) {
		e := NewEngine()
		var events []TraceEvent
		if traced {
			e.SetTracer(func(ev TraceEvent) { events = append(events, ev) })
		}
		e.After(time.Millisecond, func() {})
		e.Go("worker", func(p *Proc) {
			p.Sleep(2 * time.Millisecond)
		})
		e.Run()
		return e.Now(), events
	}
	plainEnd, _ := run(false)
	tracedEnd, events := run(true)
	if plainEnd != tracedEnd {
		t.Fatalf("tracing changed virtual time: %v vs %v", plainEnd, tracedEnd)
	}
	var callbacks, resumes, finishes int
	for _, ev := range events {
		switch ev.Kind {
		case TraceCallback:
			callbacks++
		case TraceResume:
			resumes++
			if ev.Proc != "worker" {
				t.Fatalf("unexpected proc name %q", ev.Proc)
			}
		case TraceFinish:
			finishes++
		}
	}
	if callbacks != 1 || resumes != 2 || finishes != 1 {
		t.Fatalf("trace counts: callbacks=%d resumes=%d finishes=%d", callbacks, resumes, finishes)
	}
}

func TestTraceToWritesLines(t *testing.T) {
	e := NewEngine()
	var buf strings.Builder
	e.TraceTo(&buf)
	e.Go("p", func(p *Proc) { p.Sleep(time.Millisecond) })
	e.Run()
	out := buf.String()
	if !strings.Contains(out, "resume") || !strings.Contains(out, "p#1") {
		t.Fatalf("trace output missing fields:\n%s", out)
	}
}

func TestLockStatsAverages(t *testing.T) {
	e := NewEngine()
	m := NewMutex(e, "avg")
	e.Go("a", func(p *Proc) {
		m.Lock(p)
		p.Sleep(4 * time.Millisecond)
		m.Unlock(p)
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(time.Millisecond)
		m.Lock(p)
		p.Sleep(2 * time.Millisecond)
		m.Unlock(p)
	})
	e.Run()
	s := m.Stats()
	// Holds: 4ms + 2ms over 2 acquisitions = 3ms average.
	if s.AvgHold() != 3*time.Millisecond {
		t.Fatalf("AvgHold = %v", s.AvgHold())
	}
	// Waits: b waited 3ms; averaged over BOTH acquisitions = 1.5ms.
	if s.AvgWait() != 1500*time.Microsecond {
		t.Fatalf("AvgWait = %v", s.AvgWait())
	}
	if s.MaxWait != 3*time.Millisecond {
		t.Fatalf("MaxWait = %v", s.MaxWait)
	}
	m.ResetStats()
	if m.Stats().AvgHold() != 0 || m.Stats().AvgWait() != 0 {
		t.Fatal("reset did not clear averages")
	}
}

func TestMutexLockedAndWaiters(t *testing.T) {
	e := NewEngine()
	m := NewMutex(e, "state")
	e.Go("holder", func(p *Proc) {
		m.Lock(p)
		p.Sleep(10 * time.Millisecond)
		m.Unlock(p)
	})
	e.Go("observer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		if !m.Locked() {
			t.Error("mutex should be held")
		}
	})
	e.Go("waiter", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		m.Lock(p)
		m.Unlock(p)
	})
	e.Go("counter", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		if m.Waiters() != 1 {
			t.Errorf("Waiters = %d, want 1", m.Waiters())
		}
	})
	e.Run()
	if m.Locked() {
		t.Fatal("mutex should be free at the end")
	}
}

func TestMutexManyWaitersFIFOOrder(t *testing.T) {
	// A multi-hundred waiter queue (the Fig 1b i_mutex regime) must
	// drain in strict arrival order through the ring's lazy compaction.
	e := NewEngine()
	m := NewMutex(e, "ring")
	const n = 300
	var order []int
	e.Go("holder", func(p *Proc) {
		m.Lock(p)
		p.Sleep(time.Duration(n+1) * time.Microsecond)
		if got := m.Waiters(); got != n {
			t.Errorf("Waiters() = %d, want %d", got, n)
		}
		m.Unlock(p)
	})
	for i := 0; i < n; i++ {
		i := i
		e.Go("waiter", func(p *Proc) {
			p.Sleep(time.Duration(i+1) * time.Microsecond) // arrive in index order
			m.Lock(p)
			order = append(order, i)
			m.Unlock(p)
		})
	}
	e.Run()
	if len(order) != n {
		t.Fatalf("%d waiters ran, want %d", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("handoff %d went to waiter %d; order not FIFO", i, got)
		}
	}
	if m.Waiters() != 0 || m.Locked() {
		t.Fatalf("mutex not drained: locked=%v waiters=%d", m.Locked(), m.Waiters())
	}
}

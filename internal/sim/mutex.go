package sim

import "time"

// LockStats aggregates contention statistics for a simulated Mutex.
type LockStats struct {
	Acquisitions uint64
	TotalWait    time.Duration
	TotalHold    time.Duration
	MaxWait      time.Duration
	Contended    uint64 // acquisitions that had to wait
}

// AvgWait returns the mean wait time per lock request.
func (s LockStats) AvgWait() time.Duration {
	if s.Acquisitions == 0 {
		return 0
	}
	return s.TotalWait / time.Duration(s.Acquisitions)
}

// AvgHold returns the mean hold time per lock request.
func (s LockStats) AvgHold() time.Duration {
	if s.Acquisitions == 0 {
		return 0
	}
	return s.TotalHold / time.Duration(s.Acquisitions)
}

// Mutex is a simulated mutual-exclusion lock with FIFO handoff and
// wait/hold accounting. It models contended kernel and user-level locks
// (i_mutex, lru_lock, client_lock) whose queueing behaviour the paper
// measures.
type Mutex struct {
	eng      *Engine
	name     string
	owner    *Proc
	lockedAt time.Duration
	// waiters is a FIFO ring: live entries are waiters[whead:]. Unlock
	// advances whead instead of shifting the slice, so a release is O(1)
	// even under the multi-hundred-waiter i_mutex queues of Fig 1b; the
	// dead prefix is compacted lazily.
	waiters []*Proc
	whead   int
	stats   LockStats
}

// NewMutex creates a named simulated mutex on e.
func NewMutex(e *Engine, name string) *Mutex {
	return &Mutex{eng: e, name: name}
}

// Name returns the lock's debug name.
func (m *Mutex) Name() string { return m.name }

// Stats returns a snapshot of the lock's contention statistics.
func (m *Mutex) Stats() LockStats { return m.stats }

// ResetStats zeroes the accumulated statistics (used at measurement
// window boundaries).
func (m *Mutex) ResetStats() { m.stats = LockStats{} }

// Lock acquires m for p, blocking in FIFO order while it is held.
func (m *Mutex) Lock(p *Proc) {
	m.stats.Acquisitions++
	if m.owner == nil {
		m.owner = p
		m.lockedAt = m.eng.now
		return
	}
	m.stats.Contended++
	since := m.eng.now
	// Blame attribution: the party responsible for this wait is whoever
	// held the lock when we queued, not whoever hands it to us — under
	// FIFO handoff the final owner may be an innocent waiter ahead of us.
	holder := m.owner
	m.waiters = append(m.waiters, p)
	p.park()
	// Ownership was handed off in Unlock; record the wait we endured.
	wait := m.eng.now - since
	m.stats.TotalWait += wait
	if wait > m.stats.MaxWait {
		m.stats.MaxWait = wait
	}
	p.ReportWait("lock", m.name, holder.name, holder.id, wait)
}

// Unlock releases m, handing ownership directly to the oldest waiter if
// any. Unlocking a mutex not held by p panics: that is always a bug in
// the simulation model.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic("sim: Mutex.Unlock by non-owner on " + m.name)
	}
	m.stats.TotalHold += m.eng.now - m.lockedAt
	if m.whead == len(m.waiters) {
		m.owner = nil
		return
	}
	next := m.waiters[m.whead]
	m.waiters[m.whead] = nil // release the reference
	m.whead++
	switch {
	case m.whead == len(m.waiters):
		// Queue drained: reuse the backing array from the start.
		m.waiters = m.waiters[:0]
		m.whead = 0
	case m.whead >= 64 && m.whead*2 >= len(m.waiters):
		// The dead prefix dominates a large backlog: compact once.
		// Amortized O(1) per release since the prefix must regrow past
		// the live tail before the next compaction.
		n := copy(m.waiters, m.waiters[m.whead:])
		clearTail := m.waiters[n:]
		for i := range clearTail {
			clearTail[i] = nil
		}
		m.waiters = m.waiters[:n]
		m.whead = 0
	}
	m.owner = next
	m.lockedAt = m.eng.now
	m.eng.scheduleWake(next, m.eng.now)
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// Waiters returns the number of processes queued on the mutex.
func (m *Mutex) Waiters() int { return len(m.waiters) - m.whead }

package sim

import "time"

// Resource is a counting semaphore with FIFO admission, used to model
// capacity-limited hardware such as a disk channel or a network link's
// transmit unit.
type Resource struct {
	eng      *Engine
	name     string
	capacity int64
	inUse    int64
	waiters  []*resWaiter

	busySince time.Duration
	busyTime  time.Duration
}

type resWaiter struct {
	p *Proc
	n int64
}

// NewResource creates a resource with the given capacity.
func NewResource(e *Engine, name string, capacity int64) *Resource {
	if capacity <= 0 {
		panic("sim: Resource capacity must be positive: " + name)
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// Acquire blocks p until n units are available, then claims them.
// Requests are admitted strictly in FIFO order to avoid starvation.
func (r *Resource) Acquire(p *Proc, n int64) {
	if n > r.capacity {
		panic("sim: Resource.Acquire exceeds capacity on " + r.name)
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.claim(n)
		return
	}
	r.waiters = append(r.waiters, &resWaiter{p: p, n: n})
	p.park()
}

// Release returns n units and admits as many queued waiters as now fit,
// in FIFO order.
func (r *Resource) Release(n int64) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: Resource.Release underflow on " + r.name)
	}
	if r.inUse == 0 && len(r.waiters) == 0 {
		r.busyTime += r.eng.now - r.busySince
	}
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			break
		}
		r.waiters = r.waiters[1:]
		r.claim(w.n)
		r.eng.scheduleWake(w.p, r.eng.now)
	}
}

func (r *Resource) claim(n int64) {
	if r.inUse == 0 {
		r.busySince = r.eng.now
	}
	r.inUse += n
}

// InUse returns the number of units currently claimed.
func (r *Resource) InUse() int64 { return r.inUse }

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int64 { return r.capacity }

// Waiters returns the number of queued acquisition requests.
func (r *Resource) Waiters() int { return len(r.waiters) }

// BusyTime returns total virtual time during which the resource had at
// least one unit claimed.
func (r *Resource) BusyTime() time.Duration {
	t := r.busyTime
	if r.inUse > 0 {
		t += r.eng.now - r.busySince
	}
	return t
}

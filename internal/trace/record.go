package trace

import (
	"time"

	"repro/internal/obs"
)

// Recorder captures the op stream of a live run. Attach it to the
// run's obs recorder before the workload starts; every operation
// completing at a traced facade (vfsapi.Traced) is captured with its
// reissue parameters. Snapshot assembles the canonical Trace once the
// engine has drained.
//
// The capture is an observation only: it schedules no engine events
// and reads no clock beyond what the span layer already read, so a
// recorded run is event-for-event identical to an unrecorded one.
type Recorder struct {
	label   string
	byProc  map[int64][]Op
	base    time.Duration
	total   int
	dropped uint64
	max     int
}

// NewRecorder creates a trace recorder. label names the recorded
// configuration (it is stored in the trace header). maxOps caps
// retained ops to bound memory on long runs; <= 0 means 4M.
func NewRecorder(label string, maxOps int) *Recorder {
	if maxOps <= 0 {
		maxOps = 4 << 20
	}
	return &Recorder{label: label, byProc: map[int64][]Op{}, max: maxOps}
}

// SetBase makes captured issue times relative to the given virtual
// time — typically the moment capture starts, after preparation
// traffic. A trace with a zero base carries absolute run times; replay
// re-anchors either kind at its own epoch.
func (r *Recorder) SetBase(t time.Duration) { r.base = t }

// Attach installs the recorder as rec's op sink. Call before the
// workload starts so the capture is complete; detach with
// rec.SetOpSink(nil) to stop capturing (e.g. before teardown traffic).
func (r *Recorder) Attach(rec *obs.Recorder) {
	rec.SetOpSink(r.add)
}

func (r *Recorder) add(e obs.OpEvent) {
	if r.total >= r.max {
		r.dropped++
		return
	}
	id := int64(e.Proc)
	r.byProc[id] = append(r.byProc[id], Op{
		Tenant: e.Tenant, Kind: e.Op,
		Path: e.Path, Path2: e.Path2, Flags: e.Flags,
		Offset: e.Offset, Len: e.Len,
		Issue: e.Issue - r.base, Latency: e.Latency, Err: e.Err,
	})
	r.total++
}

// Count returns how many ops have been captured so far.
func (r *Recorder) Count() int { return r.total }

// Dropped returns how many ops were discarded over the cap.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Snapshot assembles the canonical trace from everything captured so
// far: one stream per originating process, stream ids densely
// renumbered in first-issue order, ops globally ordered by issue time.
func (r *Recorder) Snapshot() *Trace {
	return assemble(r.label, r.byProc)
}

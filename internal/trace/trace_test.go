package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// sampleTrace builds a small canonical trace by hand.
func sampleTrace() *Trace {
	streams := map[int64][]Op{
		7: {
			{Tenant: "a", Kind: "open", Path: "/f", Flags: 1, Issue: 10, Latency: 5},
			{Tenant: "a", Kind: "write", Path: "/f", Offset: 4096, Len: 512, Issue: 15, Latency: 9, Err: true},
			{Tenant: "a", Kind: "close", Path: "/f", Issue: 24, Latency: 1},
		},
		3: {
			{Tenant: "b", Kind: "rename", Path: "/x", Path2: "/y", Issue: 12, Latency: 3},
		},
	}
	return assemble("sample", streams)
}

func TestAssembleCanonicalizes(t *testing.T) {
	tr := sampleTrace()
	if got := len(tr.Ops); got != 4 {
		t.Fatalf("ops = %d, want 4", got)
	}
	// Stream 7 issues first (t=10) so it gets rank 0; stream 3 rank 1.
	wantStreams := []int{0, 1, 0, 0}
	wantKinds := []string{"open", "rename", "write", "close"}
	for i, op := range tr.Ops {
		if op.Seq != i {
			t.Errorf("op %d: seq = %d", i, op.Seq)
		}
		if op.Stream != wantStreams[i] || op.Kind != wantKinds[i] {
			t.Errorf("op %d: (stream %d, %s), want (%d, %s)",
				i, op.Stream, op.Kind, wantStreams[i], wantKinds[i])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != tr.Label {
		t.Errorf("label %q, want %q", back.Label, tr.Label)
	}
	if len(back.Ops) != len(tr.Ops) {
		t.Fatalf("ops %d, want %d", len(back.Ops), len(tr.Ops))
	}
	for i := range tr.Ops {
		if back.Ops[i] != tr.Ops[i] {
			t.Errorf("op %d: %+v != %+v", i, back.Ops[i], tr.Ops[i])
		}
	}
	var again bytes.Buffer
	if err := back.Write(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != first {
		t.Error("write→read→write is not byte-identical")
	}
	if back.Schedule() != tr.Schedule() || back.ScheduleHash() != tr.ScheduleHash() {
		t.Error("schedule changed across round trip")
	}
}

func TestReadErrorPaths(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")

	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"empty", "", "empty file"},
		{"garbage header", "not json\n", "bad header"},
		{"wrong version", `{"danaus_op_trace":99,"label":"x","ops":0}` + "\n", "unsupported version"},
		{"not a trace", `{"hello":"world"}` + "\n", "unsupported version"},
		{"truncated", strings.Join(lines[:len(lines)-1], "\n") + "\n", "truncated"},
		{"corrupt op line", lines[0] + "\n{broken\n", "line 2"},
		{"seq out of order", lines[0] + "\n" + lines[2] + "\n" + lines[1] + "\n" + lines[3] + "\n" + lines[4] + "\n", "out of order"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(c.input))
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestRecorderCapturesViaObsSink(t *testing.T) {
	var now time.Duration
	rec := obs.New(obs.Config{Clock: func() time.Duration { return now }})
	cap := NewRecorder("unit", 0)
	cap.SetBase(5)
	cap.Attach(rec)

	now = 10
	sp := rec.StartSpan(42, "tenant0", "read")
	now = 30
	rec.OpDone(sp, "/data", "", 0, 4096, 1024, 1024, nil)
	sp.End(1024, nil)

	now = 31
	sp2 := rec.StartSpan(43, "tenant1", "open")
	now = 40
	rec.OpDone(sp2, "/other", "", 3, 0, 0, 0, fmt.Errorf("boom"))
	sp2.End(0, fmt.Errorf("boom"))

	if cap.Count() != 2 {
		t.Fatalf("captured %d ops, want 2", cap.Count())
	}
	tr := cap.Snapshot()
	want := []Op{
		{Seq: 0, Stream: 0, Tenant: "tenant0", Kind: "read", Path: "/data", Offset: 4096, Len: 1024, Issue: 5, Latency: 20},
		{Seq: 1, Stream: 1, Tenant: "tenant1", Kind: "open", Path: "/other", Flags: 3, Issue: 26, Latency: 9, Err: true},
	}
	for i := range want {
		if tr.Ops[i] != want[i] {
			t.Errorf("op %d: %+v, want %+v", i, tr.Ops[i], want[i])
		}
	}
}

func TestOpSinkIgnoresNestedSpans(t *testing.T) {
	rec := obs.New(obs.Config{Clock: func() time.Duration { return 0 }})
	cap := NewRecorder("unit", 0)
	cap.Attach(rec)
	// A nil span is what the traced facade passes for nested crossings.
	rec.OpDone(nil, "/ignored", "", 0, 0, 0, 0, nil)
	if cap.Count() != 0 {
		t.Errorf("nested (nil-span) op was captured")
	}
}

func TestRecorderCap(t *testing.T) {
	rec := obs.New(obs.Config{Clock: func() time.Duration { return 0 }})
	cap := NewRecorder("unit", 2)
	cap.Attach(rec)
	for i := 0; i < 5; i++ {
		sp := rec.StartSpan(1, "t", "read")
		rec.OpDone(sp, "/f", "", 0, 0, 0, 0, nil)
		sp.End(0, nil)
	}
	if cap.Count() != 2 || cap.Dropped() != 3 {
		t.Errorf("count=%d dropped=%d, want 2/3", cap.Count(), cap.Dropped())
	}
}

func TestOpSequenceInvariantUnderLatencyDrift(t *testing.T) {
	a := sampleTrace()
	b := sampleTrace()
	// Shift issue times and latencies the way a slower replay would.
	for i := range b.Ops {
		b.Ops[i].Issue += time.Duration(i) * 7
		b.Ops[i].Latency *= 3
	}
	if a.Schedule() == b.Schedule() {
		t.Error("schedules should differ after issue-time drift")
	}
	if a.OpSequence() != b.OpSequence() {
		t.Error("op sequence must be invariant under timing drift")
	}
}

func TestTailOfKnownDistribution(t *testing.T) {
	h := metrics.NewHistogram()
	// 1..1000 µs uniformly: p50 ≈ 500µs, p99 ≈ 990µs, p999 ≈ 999µs.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	tail := TailOf(h)
	if tail.Count != 1000 {
		t.Fatalf("count %d", tail.Count)
	}
	check := func(name string, got, want time.Duration) {
		// The histogram's exponential buckets promise ~3% relative error.
		diff := float64(got-want) / float64(want)
		if diff < -0.04 || diff > 0.04 {
			t.Errorf("%s = %v, want %v ±4%%", name, got, want)
		}
	}
	check("p50", tail.P50, 500*time.Microsecond)
	check("p99", tail.P99, 990*time.Microsecond)
	check("p999", tail.P999, 999*time.Microsecond)
}

func TestCompareFlagsScheduleAndSequence(t *testing.T) {
	a := sampleTrace()

	identical := sampleTrace()
	d := Compare(a, identical)
	if !d.ScheduleEqual || !d.SequenceEqual {
		t.Error("identical traces must compare schedule- and sequence-equal")
	}

	drifted := sampleTrace()
	drifted.Ops[2].Issue += 100
	d = Compare(a, drifted)
	if d.ScheduleEqual {
		t.Error("drifted issue time must break schedule equality")
	}
	if !d.SequenceEqual {
		t.Error("drifted issue time must preserve sequence equality")
	}

	rewritten := sampleTrace()
	rewritten.Ops[2].Len = 999
	d = Compare(a, rewritten)
	if d.SequenceEqual {
		t.Error("rewritten op must break sequence equality")
	}
}

func TestCompareRatios(t *testing.T) {
	mk := func(lat time.Duration) *Trace {
		streams := map[int64][]Op{}
		for s := int64(0); s < 4; s++ {
			var ops []Op
			for i := 0; i < 250; i++ {
				ops = append(ops, Op{
					Tenant: "t0", Kind: "read", Path: "/f",
					Issue: time.Duration(i) * time.Millisecond, Latency: lat,
				})
			}
			streams[s] = ops
		}
		return assemble("mk", streams)
	}
	d := Compare(mk(time.Millisecond), mk(3*time.Millisecond))
	rows := d.TenantRows()
	if len(rows) != 1 {
		t.Fatalf("tenant rows: %d", len(rows))
	}
	r := rows[0]
	if r.RatioP99() < 2.8 || r.RatioP99() > 3.2 {
		t.Errorf("p99 ratio %.2f, want ~3", r.RatioP99())
	}
	if r.RatioP999() < 2.8 || r.RatioP999() > 3.2 {
		t.Errorf("p999 ratio %.2f, want ~3", r.RatioP999())
	}
	var csv bytes.Buffer
	if err := d.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "t0,*") {
		t.Errorf("CSV missing aggregate row:\n%s", csv.String())
	}
	var rendered bytes.Buffer
	d.Render(&rendered)
	if !strings.Contains(rendered.String(), "tracediff") {
		t.Error("Render missing header line")
	}
}

// TestAssembleDeterministicUnderMapOrder feeds assemble the same
// streams under shuffled map insertion orders: canonicalization must
// not depend on Go map iteration.
func TestAssembleDeterministicUnderMapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	build := func(order []int64) *Trace {
		streams := map[int64][]Op{}
		for _, id := range order {
			streams[id] = []Op{
				{Tenant: "t", Kind: "open", Path: fmt.Sprintf("/f%d", id), Issue: time.Duration(id)},
				{Tenant: "t", Kind: "close", Path: fmt.Sprintf("/f%d", id), Issue: time.Duration(id) + 5},
			}
		}
		return assemble("x", streams)
	}
	ids := []int64{9, 2, 5, 1, 7, 3}
	want := build(ids).Schedule()
	for trial := 0; trial < 10; trial++ {
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		if got := build(ids).Schedule(); got != want {
			t.Fatalf("assemble depends on map order (trial %d)", trial)
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	tr := sampleTrace()
	path := t.TempDir() + "/sample.trace"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schedule() != tr.Schedule() {
		t.Error("file round trip changed the schedule")
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Error("reading a missing file must fail")
	}
}

package trace

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// Binding tells the replayer how to reissue one tenant's operations:
// against which (mounted) filesystem, and on threads of which
// container. The target testbed's configuration is free to differ
// from the recorded one — that is the point.
type Binding struct {
	FS        vfsapi.FileSystem
	NewThread func() *cpu.Thread
}

// ReplayStats summarizes one replay.
type ReplayStats struct {
	// Ops counts operations reissued, Errors the subset that failed
	// (including admission sheds), Skipped operations dropped because
	// their tenant had no binding.
	Ops     int
	Errors  int
	Skipped int
}

// Replay reissues the trace against the bound filesystems and returns
// the re-recorded trace of what actually happened (same canonical
// form as a live recording) plus summary stats.
//
// Each stream runs as its own simulated process, spawned in stream-id
// order; within a stream ops are strictly sequential. An op is issued
// at its recorded virtual time, or immediately after its stream
// predecessor completes when the target configuration is slower than
// the recorded one — so replaying under the recorded configuration
// reproduces the recorded schedule byte-identically, while a slower
// configuration shows up as issue-time drift and latency deltas, never
// as reordering (see Trace.OpSequence).
//
// Handles are tracked per stream by path: a recorded open binds the
// path, later ops on the path reuse the handle, close releases it. An
// op on a path with no live handle (a trace cut mid-stream) opens one
// on demand. Errors are counted, never fatal: a shed or failed op in
// the original run is reissued like any other.
//
// p is the calling process; Replay blocks it until every stream
// finishes. label names the replayed configuration in the returned
// trace.
func Replay(p *sim.Proc, eng *sim.Engine, t *Trace, label string, bind func(tenant string) (Binding, bool)) (*Trace, *ReplayStats) {
	// Recorded issue times are relative to the recording's capture
	// start; re-anchor them at the current virtual time, and express
	// the returned trace relative to the same epoch so it compares
	// directly against the input.
	epoch := eng.Now()
	stats := &ReplayStats{}
	byStream := map[int][]int{}
	for i := range t.Ops {
		byStream[t.Ops[i].Stream] = append(byStream[t.Ops[i].Stream], i)
	}
	ids := make([]int, 0, len(byStream))
	for id := range byStream {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	results := map[int64][]Op{}
	pending := 0
	q := sim.NewWaitQueue(eng, "trace-replay")
	for _, id := range ids {
		id, opIdx := id, byStream[id]
		pending++
		eng.Go(fmt.Sprintf("replay-s%d", id), func(sp *sim.Proc) {
			results[int64(id)] = replayStream(sp, eng, epoch, t, opIdx, bind, stats)
			pending--
			if pending == 0 {
				q.Broadcast()
			}
		})
	}
	for pending > 0 {
		q.Wait(p)
	}
	return assemble(label, results), stats
}

// replayStream reissues one stream's ops sequentially and returns the
// re-recorded ops.
func replayStream(sp *sim.Proc, eng *sim.Engine, epoch time.Duration, t *Trace, opIdx []int, bind func(string) (Binding, bool), stats *ReplayStats) []Op {
	handles := map[string]vfsapi.Handle{}
	threads := map[string]*cpu.Thread{}
	out := make([]Op, 0, len(opIdx))
	for _, i := range opIdx {
		op := &t.Ops[i]
		b, ok := bind(op.Tenant)
		if !ok {
			stats.Skipped++
			continue
		}
		th := threads[op.Tenant]
		if th == nil {
			th = b.NewThread()
			threads[op.Tenant] = th
		}
		if d := epoch + op.Issue - eng.Now(); d > 0 {
			sp.Sleep(d)
		}
		ctx := vfsapi.Ctx{P: sp, T: th}
		issue := eng.Now()
		err := reissue(ctx, b.FS, op, handles)
		done := eng.Now()
		stats.Ops++
		if err != nil {
			stats.Errors++
		}
		out = append(out, Op{
			Tenant: op.Tenant, Kind: op.Kind,
			Path: op.Path, Path2: op.Path2, Flags: op.Flags,
			Offset: op.Offset, Len: op.Len,
			Issue: issue - epoch, Latency: done - issue, Err: err != nil,
		})
	}
	return out
}

// reissue executes one recorded op against fs, maintaining the
// stream's handle table.
func reissue(ctx vfsapi.Ctx, fs vfsapi.FileSystem, op *Op, handles map[string]vfsapi.Handle) error {
	ensure := func(flags vfsapi.OpenFlag) (vfsapi.Handle, error) {
		if h, ok := handles[op.Path]; ok {
			return h, nil
		}
		h, err := fs.Open(ctx, op.Path, flags)
		if err != nil {
			return nil, err
		}
		handles[op.Path] = h
		return h, nil
	}
	switch op.Kind {
	case "open":
		h, err := fs.Open(ctx, op.Path, vfsapi.OpenFlag(op.Flags))
		if err != nil {
			return err
		}
		handles[op.Path] = h
		return nil
	case "stat":
		_, err := fs.Stat(ctx, op.Path)
		return err
	case "mkdir":
		return fs.Mkdir(ctx, op.Path)
	case "readdir":
		_, err := fs.Readdir(ctx, op.Path)
		return err
	case "unlink":
		return fs.Unlink(ctx, op.Path)
	case "rmdir":
		return fs.Rmdir(ctx, op.Path)
	case "rename":
		return fs.Rename(ctx, op.Path, op.Path2)
	case "read":
		h, err := ensure(vfsapi.RDONLY)
		if err != nil {
			return err
		}
		_, err = h.Read(ctx, op.Offset, op.Len)
		return err
	case "write":
		h, err := ensure(vfsapi.WRONLY | vfsapi.CREATE)
		if err != nil {
			return err
		}
		_, err = h.Write(ctx, op.Offset, op.Len)
		return err
	case "append":
		h, err := ensure(vfsapi.WRONLY | vfsapi.CREATE)
		if err != nil {
			return err
		}
		_, err = h.Append(ctx, op.Len)
		return err
	case "fsync":
		h, err := ensure(vfsapi.WRONLY | vfsapi.CREATE)
		if err != nil {
			return err
		}
		return h.Fsync(ctx)
	case "close":
		h, ok := handles[op.Path]
		if !ok {
			return nil
		}
		delete(handles, op.Path)
		return h.Close(ctx)
	default:
		return fmt.Errorf("trace: unknown op kind %q", op.Kind)
	}
}

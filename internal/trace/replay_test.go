package trace

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// nullFS is a stub filesystem with a fixed per-op service time — just
// enough to exercise the replayer's scheduling without a testbed.
type nullFS struct {
	cost time.Duration
	ops  int
	fail map[string]bool // op kinds forced to fail
}

func (f *nullFS) serve(ctx vfsapi.Ctx, kind string) error {
	f.ops++
	if f.cost > 0 && ctx.P != nil {
		ctx.P.Sleep(f.cost)
	}
	if f.fail[kind] {
		return vfsapi.ErrIO
	}
	return nil
}

func (f *nullFS) Open(ctx vfsapi.Ctx, path string, flags vfsapi.OpenFlag) (vfsapi.Handle, error) {
	if err := f.serve(ctx, "open"); err != nil {
		return nil, err
	}
	return &nullHandle{fs: f, path: path}, nil
}
func (f *nullFS) Stat(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, error) {
	return vfsapi.FileInfo{Name: path}, f.serve(ctx, "stat")
}
func (f *nullFS) Mkdir(ctx vfsapi.Ctx, path string) error  { return f.serve(ctx, "mkdir") }
func (f *nullFS) Unlink(ctx vfsapi.Ctx, path string) error { return f.serve(ctx, "unlink") }
func (f *nullFS) Rmdir(ctx vfsapi.Ctx, path string) error  { return f.serve(ctx, "rmdir") }
func (f *nullFS) Rename(ctx vfsapi.Ctx, a, b string) error { return f.serve(ctx, "rename") }
func (f *nullFS) Readdir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	return nil, f.serve(ctx, "readdir")
}

type nullHandle struct {
	fs   *nullFS
	path string
}

func (h *nullHandle) Read(ctx vfsapi.Ctx, off, n int64) (int64, error) {
	return n, h.fs.serve(ctx, "read")
}
func (h *nullHandle) Write(ctx vfsapi.Ctx, off, n int64) (int64, error) {
	return n, h.fs.serve(ctx, "write")
}
func (h *nullHandle) Append(ctx vfsapi.Ctx, n int64) (int64, error) {
	return 0, h.fs.serve(ctx, "append")
}
func (h *nullHandle) Fsync(ctx vfsapi.Ctx) error { return h.fs.serve(ctx, "fsync") }
func (h *nullHandle) Close(ctx vfsapi.Ctx) error { return h.fs.serve(ctx, "close") }
func (h *nullHandle) Size() int64                { return 0 }
func (h *nullHandle) Path() string               { return h.path }

// syntheticTrace builds streams of open/read/close requests whose
// inter-op slack exceeds cost, so a replay against a nullFS with that
// cost reproduces the schedule exactly.
func syntheticTrace(streams, requests int, cost time.Duration) *Trace {
	byStream := map[int64][]Op{}
	for s := 0; s < streams; s++ {
		var ops []Op
		at := time.Duration(s) * time.Millisecond
		for r := 0; r < requests; r++ {
			path := fmt.Sprintf("/s%d/f%d", s, r%7)
			ops = append(ops,
				Op{Tenant: "t0", Kind: "open", Path: path, Issue: at, Latency: cost},
				Op{Tenant: "t0", Kind: "read", Path: path, Offset: int64(r) * 4096, Len: 4096, Issue: at + cost, Latency: cost},
				Op{Tenant: "t0", Kind: "close", Path: path, Issue: at + 2*cost, Latency: cost},
			)
			at += 10 * time.Millisecond
		}
		byStream[int64(s)] = ops
	}
	return assemble("synthetic", byStream)
}

func bindNull(fs *nullFS) func(string) (Binding, bool) {
	return func(string) (Binding, bool) {
		return Binding{FS: fs, NewThread: func() *cpu.Thread { return nil }}, true
	}
}

func TestReplayReproducesSchedule(t *testing.T) {
	const cost = 50 * time.Microsecond
	in := syntheticTrace(3, 5, cost)
	fs := &nullFS{cost: cost}
	eng := sim.NewEngine()
	var out *Trace
	var stats *ReplayStats
	eng.Go("master", func(p *sim.Proc) {
		out, stats = Replay(p, eng, in, "null", bindNull(fs))
	})
	eng.Run()
	if stats.Ops != len(in.Ops) || stats.Errors != 0 || stats.Skipped != 0 {
		t.Fatalf("stats %+v, want %d ops clean", stats, len(in.Ops))
	}
	if out.Schedule() != in.Schedule() {
		t.Error("replay against matching service time must reproduce the schedule")
	}
	if out.Label != "null" {
		t.Errorf("label %q", out.Label)
	}
}

func TestReplaySlowTargetKeepsSequence(t *testing.T) {
	const cost = 50 * time.Microsecond
	in := syntheticTrace(2, 4, cost)
	// The target is 40x slower than the recorded config: issue times
	// must drift (an op waits for its stream predecessor) but the
	// per-stream op sequence must be untouched.
	fs := &nullFS{cost: 40 * cost}
	eng := sim.NewEngine()
	var out *Trace
	eng.Go("master", func(p *sim.Proc) {
		out, _ = Replay(p, eng, in, "slow", bindNull(fs))
	})
	eng.Run()
	d := Compare(in, out)
	if d.ScheduleEqual {
		t.Error("a 40x slower target cannot reproduce the schedule")
	}
	if !d.SequenceEqual {
		t.Error("replay must never reorder or rewrite ops")
	}
}

func TestReplayCountsErrorsAndSkips(t *testing.T) {
	in := syntheticTrace(2, 3, time.Microsecond)
	fs := &nullFS{cost: time.Microsecond, fail: map[string]bool{"read": true}}
	eng := sim.NewEngine()
	var out *Trace
	var stats *ReplayStats
	eng.Go("master", func(p *sim.Proc) {
		out, stats = Replay(p, eng, in, "err", bindNull(fs))
	})
	eng.Run()
	if stats.Errors != 6 { // one failed read per request
		t.Errorf("errors = %d, want 6", stats.Errors)
	}
	errs := 0
	for i := range out.Ops {
		if out.Ops[i].Err {
			errs++
		}
	}
	if errs != stats.Errors {
		t.Errorf("output trace marks %d errors, stats say %d", errs, stats.Errors)
	}

	// Unbound tenants are skipped, not fatal.
	eng2 := sim.NewEngine()
	var stats2 *ReplayStats
	eng2.Go("master", func(p *sim.Proc) {
		_, stats2 = Replay(p, eng2, in, "skip", func(string) (Binding, bool) {
			return Binding{}, false
		})
	})
	eng2.Run()
	if stats2.Skipped != len(in.Ops) || stats2.Ops != 0 {
		t.Errorf("stats %+v, want all %d skipped", stats2, len(in.Ops))
	}
}

func TestReplayOnDemandOpen(t *testing.T) {
	// A trace cut mid-stream: a read with no recorded open.
	in := assemble("cut", map[int64][]Op{
		0: {{Tenant: "t0", Kind: "read", Path: "/orphan", Len: 4096, Issue: 0}},
	})
	fs := &nullFS{}
	eng := sim.NewEngine()
	var stats *ReplayStats
	eng.Go("master", func(p *sim.Proc) {
		_, stats = Replay(p, eng, in, "cut", bindNull(fs))
	})
	eng.Run()
	if stats.Errors != 0 || stats.Ops != 1 {
		t.Errorf("stats %+v", stats)
	}
	if fs.ops != 2 { // on-demand open + the read
		t.Errorf("fs served %d ops, want 2 (open-on-demand + read)", fs.ops)
	}
}

package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/metrics"
)

// Tail is the percentile summary the experiment rows report.
type Tail struct {
	Count int
	P50   time.Duration
	P99   time.Duration
	P999  time.Duration
}

// TailOf summarizes a histogram.
func TailOf(h *metrics.Histogram) Tail {
	return Tail{
		Count: int(h.Count()),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

// TenantTails summarizes a trace's per-tenant latency distributions.
func (t *Trace) TenantTails() map[string]Tail {
	hists := map[string]*metrics.Histogram{}
	for i := range t.Ops {
		h := hists[t.Ops[i].Tenant]
		if h == nil {
			h = metrics.NewHistogram()
			hists[t.Ops[i].Tenant] = h
		}
		h.Record(t.Ops[i].Latency)
	}
	out := make(map[string]Tail, len(hists))
	for tenant, h := range hists {
		out[tenant] = TailOf(h)
	}
	return out
}

// DiffRow compares one (tenant, op-kind) latency distribution between
// two traces. Kind "" aggregates all of the tenant's ops.
type DiffRow struct {
	Tenant string
	Kind   string
	A, B   Tail
}

// RatioP99 returns B's p99 as a multiple of A's (0 when A is empty).
func (r DiffRow) RatioP99() float64 { return ratio(r.A.P99, r.B.P99) }

// RatioP999 returns B's p999 as a multiple of A's (0 when A is empty).
func (r DiffRow) RatioP999() float64 { return ratio(r.A.P999, r.B.P999) }

func ratio(a, b time.Duration) float64 {
	if a <= 0 {
		return 0
	}
	return float64(b) / float64(a)
}

// Diff is the comparison of two traces — typically one recorded run
// and its replay under another configuration, or two replays of the
// same recording.
type Diff struct {
	LabelA, LabelB string
	OpsA, OpsB     int
	// ScheduleEqual reports byte-identical op schedules (same ops, same
	// issue times); SequenceEqual the weaker time-free property (same
	// ops in the same per-stream order). Replay guarantees the latter
	// across any configuration and the former under the recorded one.
	ScheduleEqual bool
	SequenceEqual bool
	// Rows hold per-tenant aggregates (Kind "") followed by
	// per-(tenant, kind) breakdowns, sorted.
	Rows []DiffRow
}

// Compare diffs two traces' latency distributions.
func Compare(a, b *Trace) *Diff {
	d := &Diff{
		LabelA: a.Label, LabelB: b.Label,
		OpsA: len(a.Ops), OpsB: len(b.Ops),
		ScheduleEqual: a.Schedule() == b.Schedule(),
		SequenceEqual: a.OpSequence() == b.OpSequence(),
	}
	type key struct{ tenant, kind string }
	hists := map[key][2]*metrics.Histogram{}
	ensure := func(k key) [2]*metrics.Histogram {
		h, ok := hists[k]
		if !ok {
			h = [2]*metrics.Histogram{metrics.NewHistogram(), metrics.NewHistogram()}
			hists[k] = h
		}
		return h
	}
	fold := func(t *Trace, side int) {
		for i := range t.Ops {
			op := &t.Ops[i]
			ensure(key{op.Tenant, ""})[side].Record(op.Latency)
			ensure(key{op.Tenant, op.Kind})[side].Record(op.Latency)
		}
	}
	fold(a, 0)
	fold(b, 1)
	keys := make([]key, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tenant != keys[j].tenant {
			return keys[i].tenant < keys[j].tenant
		}
		return keys[i].kind < keys[j].kind
	})
	for _, k := range keys {
		h := hists[k]
		d.Rows = append(d.Rows, DiffRow{
			Tenant: k.tenant, Kind: k.kind,
			A: TailOf(h[0]), B: TailOf(h[1]),
		})
	}
	return d
}

// TenantRows returns only the per-tenant aggregate rows (Kind "").
func (d *Diff) TenantRows() []DiffRow {
	out := make([]DiffRow, 0, len(d.Rows))
	for _, r := range d.Rows {
		if r.Kind == "" {
			out = append(out, r)
		}
	}
	return out
}

// Render writes the human-readable diff table.
func (d *Diff) Render(w io.Writer) {
	eq := func(b bool) string {
		if b {
			return "equal"
		}
		return "DIFFERS"
	}
	fmt.Fprintf(w, "tracediff A=%s (%d ops) B=%s (%d ops) schedule=%s sequence=%s\n",
		d.LabelA, d.OpsA, d.LabelB, d.OpsB, eq(d.ScheduleEqual), eq(d.SequenceEqual))
	fmt.Fprintf(w, "%-10s %-8s %8s | %10s %10s %10s | %10s %10s %10s | %7s %7s\n",
		"tenant", "op", "n(A/B)", "p50.A", "p99.A", "p999.A", "p50.B", "p99.B", "p999.B", "x.p99", "x.p999")
	for _, r := range d.Rows {
		kind := r.Kind
		if kind == "" {
			kind = "*"
		}
		fmt.Fprintf(w, "%-10s %-8s %8s | %10s %10s %10s | %10s %10s %10s | %7.2f %7.2f\n",
			r.Tenant, kind, fmt.Sprintf("%d/%d", r.A.Count, r.B.Count),
			fmtDur(r.A.P50), fmtDur(r.A.P99), fmtDur(r.A.P999),
			fmtDur(r.B.P50), fmtDur(r.B.P99), fmtDur(r.B.P999),
			r.RatioP99(), r.RatioP999())
	}
}

// WriteCSV writes the diff as CSV (durations in microseconds).
func (d *Diff) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "tenant,op,count_a,count_b,p50_a_us,p99_a_us,p999_a_us,p50_b_us,p99_b_us,p999_b_us,ratio_p99,ratio_p999"); err != nil {
		return err
	}
	us := func(v time.Duration) float64 { return float64(v) / float64(time.Microsecond) }
	for _, r := range d.Rows {
		kind := r.Kind
		if kind == "" {
			kind = "*"
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.3f,%.3f\n",
			r.Tenant, kind, r.A.Count, r.B.Count,
			us(r.A.P50), us(r.A.P99), us(r.A.P999),
			us(r.B.P50), us(r.B.P99), us(r.B.P999),
			r.RatioP99(), r.RatioP999()); err != nil {
			return err
		}
	}
	return nil
}

func fmtDur(v time.Duration) string {
	return v.Round(time.Microsecond).String()
}

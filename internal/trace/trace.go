// Package trace records the VFS op stream of any testbed run into a
// versioned, deterministic trace file, replays it against any client
// configuration, and diffs per-op latency between configurations —
// the capture→replay→diff loop that turns every scenario ever run
// into a reusable benchmark (see TRACES.md).
//
// A trace is a sequence of operations grouped into streams. A stream
// is one originating thread of the recorded run: operations within a
// stream were issued sequentially (each after the previous completed),
// so replay preserves per-stream order while streams proceed
// concurrently. Stream ids are canonicalized to dense ranks ordered by
// first issue time, so the same run recorded twice produces
// byte-identical files regardless of process-id assignment.
//
// File format (JSONL, version 1): a header object
//
//	{"danaus_op_trace":1,"label":"...","ops":N}
//
// followed by exactly N op objects, one per line, in seq order:
//
//	{"seq":0,"stream":0,"tenant":"fls0","op":"open","path":"/d/f00000",
//	 "flags":1,"off":0,"len":0,"issue_ns":1000000,"lat_ns":52000}
//
// Durations are integer nanoseconds of virtual time. Optional fields
// (path2, flags, off, len, err) are omitted when zero. See TRACES.md
// for full field semantics and the determinism guarantees.
package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// Version is the trace file format version this package reads and
// writes. Read rejects files with any other version.
const Version = 1

// Op is one recorded VFS operation. Seq is its global position in the
// trace (issue order); Stream the canonical id of the issuing thread.
// Path, Path2, Flags, Offset and Len carry everything needed to
// reissue the operation byte-identically; Issue and Latency record
// when it was issued in virtual time and how long it took.
type Op struct {
	Seq     int           `json:"seq"`
	Stream  int           `json:"stream"`
	Tenant  string        `json:"tenant"`
	Kind    string        `json:"op"`
	Path    string        `json:"path,omitempty"`
	Path2   string        `json:"path2,omitempty"` // rename destination
	Flags   int           `json:"flags,omitempty"` // open flags bitmask
	Offset  int64         `json:"off,omitempty"`
	Len     int64         `json:"len,omitempty"`
	Issue   time.Duration `json:"issue_ns"`
	Latency time.Duration `json:"lat_ns"`
	Err     bool          `json:"err,omitempty"`
}

// Trace is a recorded op stream.
type Trace struct {
	Label string
	Ops   []Op
}

// header is the first line of a trace file.
type header struct {
	Version int    `json:"danaus_op_trace"`
	Label   string `json:"label"`
	Ops     int    `json:"ops"`
}

// Streams returns the distinct stream ids, ascending. Canonical traces
// have dense ids 0..n-1.
func (t *Trace) Streams() []int {
	seen := map[int]bool{}
	for i := range t.Ops {
		seen[t.Ops[i].Stream] = true
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Tenants returns the distinct tenant names, sorted.
func (t *Trace) Tenants() []string {
	seen := map[string]bool{}
	for i := range t.Ops {
		seen[t.Ops[i].Tenant] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Schedule renders the op schedule — everything about the trace except
// measured latencies and the label — as one line per op. Two runs that
// issued the same operations at the same virtual times have
// byte-identical schedules even when the operations took different
// times to complete; this is the object the replay-determinism
// guarantee is stated over.
func (t *Trace) Schedule() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops %d\n", len(t.Ops))
	for i := range t.Ops {
		op := &t.Ops[i]
		fmt.Fprintf(&b, "%d %d %s %s %q %q %d %d %d %d\n",
			op.Seq, op.Stream, op.Tenant, op.Kind, op.Path, op.Path2,
			op.Flags, op.Offset, op.Len, int64(op.Issue))
	}
	return b.String()
}

// ScheduleHash returns the sha256 of Schedule() in hex — a compact
// equality token for logs and fuzz artifacts.
func (t *Trace) ScheduleHash() string {
	sum := sha256.Sum256([]byte(t.Schedule()))
	return hex.EncodeToString(sum[:])
}

// OpSequence renders the time-free projection of the trace: per
// stream, in stream order, each op's reissue parameters without issue
// times. Replaying a trace under a *different* configuration shifts
// issue times (an op cannot be reissued before its stream predecessor
// completes) but never reorders or rewrites ops, so OpSequence is
// invariant across configurations while Schedule is not.
func (t *Trace) OpSequence() string {
	var b strings.Builder
	for _, id := range t.Streams() {
		fmt.Fprintf(&b, "stream %d\n", id)
		for i := range t.Ops {
			op := &t.Ops[i]
			if op.Stream != id {
				continue
			}
			fmt.Fprintf(&b, "%s %s %q %q %d %d %d\n",
				op.Tenant, op.Kind, op.Path, op.Path2,
				op.Flags, op.Offset, op.Len)
		}
	}
	return b.String()
}

// Write serializes the trace in format Version. Output is
// deterministic: identical traces produce identical bytes.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Version: Version, Label: t.Label, Ops: len(t.Ops)}); err != nil {
		return err
	}
	for i := range t.Ops {
		if err := enc.Encode(&t.Ops[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the trace to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a trace, validating the header version, every op line,
// and that the op count and seq numbering match the header. Truncated
// or corrupt files fail with a line-numbered error.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty file")
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if h.Version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d (have %d)", h.Version, Version)
	}
	t := &Trace{Label: h.Label, Ops: make([]Op, 0, h.Ops)}
	line := 1
	for sc.Scan() {
		line++
		var op Op
		if err := json.Unmarshal(sc.Bytes(), &op); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if op.Seq != len(t.Ops) {
			return nil, fmt.Errorf("trace: line %d: seq %d out of order (want %d)", line, op.Seq, len(t.Ops))
		}
		t.Ops = append(t.Ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.Ops) != h.Ops {
		return nil, fmt.Errorf("trace: truncated: header declares %d ops, found %d", h.Ops, len(t.Ops))
	}
	return t, nil
}

// ReadFile reads a trace from path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// assemble canonicalizes raw per-stream op lists into a Trace: streams
// are ranked by (first issue time, original id) and renumbered to
// dense ids in rank order, then all ops are merged into one global
// issue-order sequence (ties broken by stream rank; per-stream order
// preserved) and numbered. Both the recorder and the replayer produce
// traces through this one function, so the canonical form — and with
// it byte-identity of identical runs — is shared.
func assemble(label string, streams map[int64][]Op) *Trace {
	type stream struct {
		orig  int64
		first time.Duration
		ops   []Op
	}
	ranked := make([]stream, 0, len(streams))
	total := 0
	for id, ops := range streams {
		if len(ops) == 0 {
			continue
		}
		ranked = append(ranked, stream{orig: id, first: ops[0].Issue, ops: ops})
		total += len(ops)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].first != ranked[j].first {
			return ranked[i].first < ranked[j].first
		}
		return ranked[i].orig < ranked[j].orig
	})
	type keyed struct {
		op   Op
		rank int
		idx  int // position within the stream
	}
	all := make([]keyed, 0, total)
	for rank := range ranked {
		for idx, op := range ranked[rank].ops {
			all = append(all, keyed{op: op, rank: rank, idx: idx})
		}
	}
	// Issue times are nondecreasing within a stream (ops are issued
	// sequentially), so (issue, rank, in-stream index) is a total order
	// that preserves per-stream order.
	sort.Slice(all, func(i, j int) bool {
		if all[i].op.Issue != all[j].op.Issue {
			return all[i].op.Issue < all[j].op.Issue
		}
		if all[i].rank != all[j].rank {
			return all[i].rank < all[j].rank
		}
		return all[i].idx < all[j].idx
	})
	out := &Trace{Label: label, Ops: make([]Op, 0, total)}
	for i := range all {
		op := all[i].op
		op.Seq = i
		op.Stream = all[i].rank
		out.Ops = append(out.Ops, op)
	}
	return out
}

package trace

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// BenchmarkTraceReplay measures the replay engine itself — per-stream
// scheduling, handle tracking, re-recording — against a fixed-cost
// stub filesystem, excluding the client-stack simulation cost. Guarded
// by benchguard (ci/bench-baseline.txt).
func BenchmarkTraceReplay(b *testing.B) {
	const cost = 10 * time.Microsecond
	in := syntheticTrace(16, 40, cost) // 1920 ops
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := &nullFS{cost: cost}
		eng := sim.NewEngine()
		var stats *ReplayStats
		eng.Go("master", func(p *sim.Proc) {
			_, stats = Replay(p, eng, in, "bench", bindNull(fs))
		})
		eng.Run()
		if stats.Ops != len(in.Ops) {
			b.Fatalf("replayed %d/%d ops", stats.Ops, len(in.Ops))
		}
	}
}

// Package memfs provides a zero-cost in-memory vfsapi.FileSystem over
// a namespace tree. It consumes no virtual time and is used as a test
// double and as the reference model in property-based tests of the
// stacked filesystems.
package memfs

import (
	"time"

	"repro/internal/nstree"
	"repro/internal/vfsapi"
)

// FS is an in-memory filesystem. The zero value is not usable; call New.
type FS struct {
	tree *nstree.Tree

	// OpDelay, when set, makes each data read and write consume that
	// much virtual time — handy for tests that need a slow backend.
	OpDelay time.Duration

	// Counters for behavioural assertions in tests.
	Reads  int64
	Writes int64
	Opens  int64
}

// New creates an empty filesystem.
func New() *FS { return &FS{tree: nstree.New()} }

// Tree exposes the namespace for direct provisioning.
func (f *FS) Tree() *nstree.Tree { return f.tree }

// Provision creates a file of the given size (ancestors included).
func (f *FS) Provision(path string, size int64) error {
	if err := f.tree.MkdirAll(parent(path), 0); err != nil {
		return err
	}
	n, err := f.tree.Create(path, 0)
	if err != nil {
		return err
	}
	n.Size = size
	return nil
}

func parent(path string) string {
	parts := nstree.Split(path)
	out := ""
	for _, p := range parts[:len(parts)-1] {
		out += "/" + p
	}
	if out == "" {
		return "/"
	}
	return out
}

// Open opens or creates a file.
func (f *FS) Open(ctx vfsapi.Ctx, path string, flags vfsapi.OpenFlag) (vfsapi.Handle, error) {
	f.Opens++
	n, err := f.tree.Lookup(path)
	switch {
	case err == nil:
		if n.Dir {
			return nil, vfsapi.ErrIsDir
		}
	case err == vfsapi.ErrNotExist && flags.Has(vfsapi.CREATE):
		n, err = f.tree.Create(path, 0)
		if err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	if flags.Has(vfsapi.TRUNC) && flags.Writable() {
		n.Size = 0
	}
	return &handle{fs: f, n: n, path: path, flags: flags}, nil
}

// Stat returns metadata for path.
func (f *FS) Stat(ctx vfsapi.Ctx, path string) (vfsapi.FileInfo, error) {
	n, err := f.tree.Lookup(path)
	if err != nil {
		return vfsapi.FileInfo{}, err
	}
	return n.Info(), nil
}

// Mkdir creates a directory.
func (f *FS) Mkdir(ctx vfsapi.Ctx, path string) error {
	_, err := f.tree.Mkdir(path, 0)
	return err
}

// Readdir lists a directory.
func (f *FS) Readdir(ctx vfsapi.Ctx, path string) ([]vfsapi.DirEntry, error) {
	return f.tree.Readdir(path)
}

// Unlink removes a file.
func (f *FS) Unlink(ctx vfsapi.Ctx, path string) error {
	_, err := f.tree.Unlink(path)
	return err
}

// Rmdir removes an empty directory.
func (f *FS) Rmdir(ctx vfsapi.Ctx, path string) error { return f.tree.Rmdir(path) }

// Rename moves a path.
func (f *FS) Rename(ctx vfsapi.Ctx, oldPath, newPath string) error {
	return f.tree.Rename(oldPath, newPath, 0)
}

type handle struct {
	fs     *FS
	n      *nstree.Node
	path   string
	flags  vfsapi.OpenFlag
	closed bool
}

func (h *handle) Path() string { return h.path }
func (h *handle) Size() int64  { return h.n.Size }

func (h *handle) Read(ctx vfsapi.Ctx, off, n int64) (int64, error) {
	if h.closed {
		return 0, vfsapi.ErrClosed
	}
	h.fs.Reads++
	if h.fs.OpDelay > 0 {
		ctx.P.Sleep(h.fs.OpDelay)
	}
	if off >= h.n.Size {
		return 0, nil
	}
	if off+n > h.n.Size {
		n = h.n.Size - off
	}
	return n, nil
}

func (h *handle) Write(ctx vfsapi.Ctx, off, n int64) (int64, error) {
	if h.closed {
		return 0, vfsapi.ErrClosed
	}
	if !h.flags.Writable() && !h.flags.Has(vfsapi.CREATE) {
		return 0, vfsapi.ErrReadOnly
	}
	h.fs.Writes++
	if h.fs.OpDelay > 0 {
		ctx.P.Sleep(h.fs.OpDelay)
	}
	if end := off + n; end > h.n.Size {
		h.n.Size = end
	}
	return n, nil
}

func (h *handle) Append(ctx vfsapi.Ctx, n int64) (int64, error) {
	off := h.n.Size
	_, err := h.Write(ctx, off, n)
	return off, err
}

func (h *handle) Fsync(ctx vfsapi.Ctx) error {
	if h.closed {
		return vfsapi.ErrClosed
	}
	return nil
}

func (h *handle) Close(ctx vfsapi.Ctx) error {
	if h.closed {
		return vfsapi.ErrClosed
	}
	h.closed = true
	return nil
}

package memfs

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/vfsapi"
)

func run(t *testing.T, fn func(ctx vfsapi.Ctx)) {
	t.Helper()
	eng := sim.NewEngine()
	eng.Go("t", func(p *sim.Proc) { fn(vfsapi.Ctx{P: p}) })
	eng.Run()
}

func TestBasicLifecycle(t *testing.T) {
	fs := New()
	run(t, func(ctx vfsapi.Ctx) {
		h, err := fs.Open(ctx, "/f", vfsapi.CREATE|vfsapi.RDWR)
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := h.Write(ctx, 0, 100); n != 100 {
			t.Fatalf("write %d", n)
		}
		if off, _ := h.Append(ctx, 50); off != 100 {
			t.Fatalf("append at %d", off)
		}
		if n, _ := h.Read(ctx, 0, 1000); n != 150 {
			t.Fatalf("read %d", n)
		}
		if err := h.Fsync(ctx); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(ctx); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(ctx); !errors.Is(err, vfsapi.ErrClosed) {
			t.Fatalf("double close: %v", err)
		}
		info, err := fs.Stat(ctx, "/f")
		if err != nil || info.Size != 150 {
			t.Fatalf("stat: %+v %v", info, err)
		}
	})
	if fs.Opens != 1 || fs.Writes != 2 || fs.Reads != 1 {
		t.Fatalf("counters: opens=%d writes=%d reads=%d", fs.Opens, fs.Writes, fs.Reads)
	}
}

func TestProvisionCreatesAncestors(t *testing.T) {
	fs := New()
	if err := fs.Provision("/a/b/c/file", 42); err != nil {
		t.Fatal(err)
	}
	run(t, func(ctx vfsapi.Ctx) {
		info, err := fs.Stat(ctx, "/a/b/c/file")
		if err != nil || info.Size != 42 {
			t.Fatalf("stat: %+v %v", info, err)
		}
		ents, err := fs.Readdir(ctx, "/a/b")
		if err != nil || len(ents) != 1 || !ents[0].IsDir {
			t.Fatalf("readdir: %v %v", ents, err)
		}
	})
}

func TestOpDelayConsumesVirtualTime(t *testing.T) {
	fs := New()
	fs.OpDelay = 5 * time.Millisecond
	fs.Provision("/f", 100)
	eng := sim.NewEngine()
	var elapsed time.Duration
	eng.Go("t", func(p *sim.Proc) {
		ctx := vfsapi.Ctx{P: p}
		h, _ := fs.Open(ctx, "/f", vfsapi.RDWR)
		h.Read(ctx, 0, 10)
		h.Write(ctx, 0, 10)
		h.Close(ctx)
		elapsed = p.Now()
	})
	eng.Run()
	if elapsed != 10*time.Millisecond {
		t.Fatalf("elapsed %v, want 10ms", elapsed)
	}
}

func TestErrors(t *testing.T) {
	fs := New()
	fs.Provision("/f", 1)
	run(t, func(ctx vfsapi.Ctx) {
		if _, err := fs.Open(ctx, "/missing", vfsapi.RDONLY); !errors.Is(err, vfsapi.ErrNotExist) {
			t.Fatalf("open missing: %v", err)
		}
		fs.Mkdir(ctx, "/d")
		if _, err := fs.Open(ctx, "/d", vfsapi.RDONLY); !errors.Is(err, vfsapi.ErrIsDir) {
			t.Fatalf("open dir: %v", err)
		}
		h, _ := fs.Open(ctx, "/f", vfsapi.RDONLY)
		if _, err := h.Write(ctx, 0, 1); !errors.Is(err, vfsapi.ErrReadOnly) {
			t.Fatalf("write rdonly: %v", err)
		}
		h.Close(ctx)
		if err := fs.Rename(ctx, "/f", "/g"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Unlink(ctx, "/g"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rmdir(ctx, "/d"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTruncate(t *testing.T) {
	fs := New()
	fs.Provision("/f", 1000)
	run(t, func(ctx vfsapi.Ctx) {
		h, _ := fs.Open(ctx, "/f", vfsapi.WRONLY|vfsapi.TRUNC)
		if h.Size() != 0 {
			t.Fatalf("size after trunc = %d", h.Size())
		}
		h.Close(ctx)
	})
}

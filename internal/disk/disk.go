// Package disk models rotating local disks and RAID0 arrays: sequential
// transfers run at media rate, non-contiguous accesses pay a seek, and
// requests serialize per spindle.
package disk

import (
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

// Disk is a single spindle.
type Disk struct {
	eng    *sim.Engine
	name   string
	seqBps int64
	seek   time.Duration
	mu     *sim.Mutex
	head   int64 // next contiguous position

	bytesRead    uint64
	bytesWritten uint64
	seeks        uint64
}

// NewDisk creates a disk with the given sequential rate and seek time.
func NewDisk(eng *sim.Engine, name string, seqBytesPerSec int64, seek time.Duration) *Disk {
	return &Disk{
		eng:    eng,
		name:   name,
		seqBps: seqBytesPerSec,
		seek:   seek,
		mu:     sim.NewMutex(eng, name+".chan"),
		head:   -1,
	}
}

// Access performs one I/O of n bytes at offset off, blocking the caller
// for queueing, any seek, and the media transfer.
func (d *Disk) Access(p *sim.Proc, off, n int64, write bool) {
	if n <= 0 {
		return
	}
	d.mu.Lock(p)
	media := model.RateTime(n, d.seqBps)
	if d.head != off {
		p.Sleep(d.seek)
		d.seeks++
		media += d.seek
	}
	p.Sleep(model.RateTime(n, d.seqBps))
	p.ReportWait("disk", d.name, "", 0, media)
	d.head = off + n
	if write {
		d.bytesWritten += uint64(n)
	} else {
		d.bytesRead += uint64(n)
	}
	d.mu.Unlock(p)
}

// Seeks returns the number of seeks performed.
func (d *Disk) Seeks() uint64 { return d.seeks }

// BytesRead returns total bytes read from media.
func (d *Disk) BytesRead() uint64 { return d.bytesRead }

// BytesWritten returns total bytes written to media.
func (d *Disk) BytesWritten() uint64 { return d.bytesWritten }

// Array is a RAID0 stripe set over several disks. The paper's client
// stores RND and WBS datasets on ext4 over four local disks in RAID0.
type Array struct {
	disks  []*Disk
	stripe int64
}

// NewArray builds a RAID0 array of n identical disks.
func NewArray(eng *sim.Engine, name string, n int, seqBytesPerSec int64, seek time.Duration, stripe int64) *Array {
	if n <= 0 {
		panic("disk: array needs at least one disk")
	}
	if stripe <= 0 {
		stripe = 256 << 10
	}
	a := &Array{stripe: stripe}
	for i := 0; i < n; i++ {
		a.disks = append(a.disks, NewDisk(eng, name, seqBytesPerSec, seek))
	}
	return a
}

// Disks returns the member spindles.
func (a *Array) Disks() []*Disk { return a.disks }

// Access performs one logical I/O spanning [off, off+n), split into
// per-stripe-unit segments routed to the owning spindles.
func (a *Array) Access(p *sim.Proc, off, n int64, write bool) {
	for n > 0 {
		unitEnd := (off/a.stripe + 1) * a.stripe
		seg := unitEnd - off
		if n < seg {
			seg = n
		}
		d := a.disks[(off/a.stripe)%int64(len(a.disks))]
		// Per-disk offsets preserve contiguity of logically sequential
		// streams: stripe k of a file lands after stripe k-len(disks).
		d.Access(p, off/int64(len(a.disks)), seg, write)
		off += seg
		n -= seg
	}
}

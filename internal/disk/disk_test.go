package disk

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSequentialAccessAvoidsSeeks(t *testing.T) {
	e := sim.NewEngine()
	d := NewDisk(e, "d", 100<<20, 4*time.Millisecond)
	e.Go("w", func(p *sim.Proc) {
		for off := int64(0); off < 10<<20; off += 1 << 20 {
			d.Access(p, off, 1<<20, true)
		}
	})
	e.Run()
	if d.Seeks() != 1 {
		t.Fatalf("sequential stream caused %d seeks, want 1 (initial)", d.Seeks())
	}
	if d.BytesWritten() != 10<<20 {
		t.Fatalf("bytes written = %d", d.BytesWritten())
	}
	// 10 MB at 100 MB/s = 100ms + one 4ms seek.
	want := 100*time.Millisecond + 4*time.Millisecond
	if e.Now() != want {
		t.Fatalf("elapsed %v, want %v", e.Now(), want)
	}
}

func TestRandomAccessPaysSeeks(t *testing.T) {
	e := sim.NewEngine()
	d := NewDisk(e, "d", 100<<20, 4*time.Millisecond)
	e.Go("r", func(p *sim.Proc) {
		offsets := []int64{0, 50 << 20, 10 << 20, 90 << 20}
		for _, off := range offsets {
			d.Access(p, off, 4096, false)
		}
	})
	e.Run()
	if d.Seeks() != 4 {
		t.Fatalf("random accesses caused %d seeks, want 4", d.Seeks())
	}
}

func TestDiskSerializesRequests(t *testing.T) {
	e := sim.NewEngine()
	d := NewDisk(e, "d", 100<<20, 0)
	var last time.Duration
	for i := 0; i < 4; i++ {
		e.Go("r", func(p *sim.Proc) {
			d.Access(p, 0, 25<<20, false)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	e.Run()
	// 4 × 25 MB at 100 MB/s must serialize to 1s.
	if last != time.Second {
		t.Fatalf("last access at %v, want 1s", last)
	}
}

func TestArrayStripesAcrossDisks(t *testing.T) {
	e := sim.NewEngine()
	a := NewArray(e, "raid0", 4, 100<<20, 0, 256<<10)
	e.Go("w", func(p *sim.Proc) {
		a.Access(p, 0, 4<<20, true) // 16 stripe units over 4 disks
	})
	e.Run()
	for i, d := range a.Disks() {
		if d.BytesWritten() != 1<<20 {
			t.Fatalf("disk %d got %d bytes, want 1MB (even striping)", i, d.BytesWritten())
		}
	}
}

func TestArrayParallelStreamsUseAllSpindles(t *testing.T) {
	e := sim.NewEngine()
	a := NewArray(e, "raid0", 4, 100<<20, 0, 256<<10)
	var last time.Duration
	// Four threads each write 25 MB to disjoint regions: aggregate
	// 100 MB over 4×100 MB/s should take well under the 1s a single
	// spindle would need.
	for i := 0; i < 4; i++ {
		base := int64(i) * (256 << 20)
		e.Go("w", func(p *sim.Proc) {
			a.Access(p, base, 25<<20, true)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	e.Run()
	if last >= time.Second {
		t.Fatalf("parallel streams took %v; no spindle parallelism", last)
	}
}

func TestArraySequentialStreamStaysContiguousPerSpindle(t *testing.T) {
	// A logically sequential stream should cost ~one seek per spindle,
	// not one per stripe unit.
	e := sim.NewEngine()
	a := NewArray(e, "raid0", 4, 100<<20, 4*time.Millisecond, 256<<10)
	e.Go("w", func(p *sim.Proc) {
		for off := int64(0); off < 16<<20; off += 1 << 20 {
			a.Access(p, off, 1<<20, true)
		}
	})
	e.Run()
	var seeks uint64
	for _, d := range a.Disks() {
		seeks += d.Seeks()
	}
	if seeks != 4 {
		t.Fatalf("sequential stream caused %d seeks, want 4 (one per spindle)", seeks)
	}
}

func TestZeroLengthAccessIsFree(t *testing.T) {
	e := sim.NewEngine()
	d := NewDisk(e, "d", 100<<20, 4*time.Millisecond)
	e.Go("r", func(p *sim.Proc) {
		d.Access(p, 0, 0, false)
	})
	e.Run()
	if e.Now() != 0 || d.Seeks() != 0 {
		t.Fatalf("zero access consumed time: %v, %d seeks", e.Now(), d.Seeks())
	}
}

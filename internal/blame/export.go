package blame

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
)

// WriteJSON emits one or more blame reports as a deterministic JSON
// document (all slices are pre-sorted; no map iteration reaches the
// encoder).
func WriteJSON(w io.Writer, reps []Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Runs []Report `json:"runs"`
	}{Runs: reps})
}

// WriteCSV emits blame reports as flat rows with a uniform schema:
//
//	section,run,tenant,name,resource,ns,count
//
// section "blame" carries per-tenant buckets (name = bucket, count =
// requests); section "interference" carries matrix cells (tenant =
// victim, name = aggressor). Fields are quoted per RFC 4180 via
// obs.CSVField, so labels containing commas or quotes round-trip.
func WriteCSV(w io.Writer, reps []Report) error {
	if _, err := fmt.Fprintln(w, "section,run,tenant,name,resource,ns,count"); err != nil {
		return err
	}
	for _, rep := range reps {
		run := obs.CSVField(rep.Label)
		for _, t := range rep.Tenants {
			for _, b := range t.Buckets {
				if _, err := fmt.Fprintf(w, "blame,%s,%s,%s,,%d,%d\n",
					run, obs.CSVField(t.Tenant), obs.CSVField(b.Name),
					b.Dur.Nanoseconds(), t.Requests); err != nil {
					return err
				}
			}
		}
		for _, c := range rep.Interference {
			if _, err := fmt.Fprintf(w, "interference,%s,%s,%s,%s,%d,%d\n",
				run, obs.CSVField(c.Victim), obs.CSVField(c.Aggressor),
				obs.CSVField(c.Resource), c.Wait.Nanoseconds(), c.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteWhatIfJSON emits a what-if comparison as deterministic JSON.
func WriteWhatIfJSON(w io.Writer, rep WhatIfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Render writes a human-readable blame summary: per-tenant bucket
// tables then the interference matrix.
func Render(w io.Writer, rep Report) {
	fmt.Fprintf(w, "blame %q: %d requests\n", rep.Label, rep.Requests)
	if rep.Unattributed > 0 {
		fmt.Fprintf(w, "  (%d waits outside any span)\n", rep.Unattributed)
	}
	for _, t := range rep.Tenants {
		mean := time.Duration(0)
		if t.Requests > 0 {
			mean = t.Total / time.Duration(t.Requests)
		}
		fmt.Fprintf(w, "\n%s: %d requests (%d cache hits, %d errors), mean %s\n",
			t.Tenant, t.Requests, t.CacheHits, t.Errors, mean.Round(time.Microsecond))
		for _, b := range t.Buckets {
			pct := 0.0
			if t.Total > 0 {
				pct = 100 * float64(b.Dur) / float64(t.Total)
			}
			fmt.Fprintf(w, "  %-18s %14s %6.1f%%\n",
				b.Name, b.Dur.Round(time.Microsecond), pct)
		}
	}
	fmt.Fprintln(w)
	RenderMatrix(w, rep.Interference)
}

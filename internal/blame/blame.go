// Package blame is the latency attribution engine of the testbed: it
// turns the raw spans and passively observed wait intervals of an
// internal/obs recording into answers to "which resource — and which
// tenant holding it — is to blame for this request's latency, and by
// how much?".
//
// Three analyses build on one recording:
//
//   - Critical-path decomposition (Decompose): every traced request's
//     end-to-end latency is split into exclusive buckets — cpu-run,
//     runqueue-wait, per-lock waits, IPC queueing, net transfer, OSD
//     device, MDS service, local disk, dirty throttling — plus an
//     "other" residual, with the invariant that the buckets sum
//     exactly to the span duration in virtual time.
//
//   - Per-tenant interference matrix (Interference): each wait on a
//     held resource becomes a victim×aggressor cell. The aggressor is
//     the tenant the holder was serving when it held the resource, so
//     a kernel flusher squatting on i_mutex mid-writeback blames the
//     pool whose dirty data recruited it, and flusher core theft shows
//     up as runqueue cells against the kernel account.
//
//   - What-if profiling (WhatIf): a parameterized virtual speedup
//     (NIC 2x, lock critical sections halved, flushers pinned off pool
//     cores) is both predicted from the baseline decomposition and
//     measured by deterministically re-running the scenario with the
//     modified cost model, per tenant.
//
// Everything here is a pure function of a finished recording: outputs
// are deterministic (sorted, virtual-time) and byte-identical across
// identical runs.
package blame

import (
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// Bucket names used by the decomposition, beyond the dynamic
// "lock:<name>" and "wait:<name>" families.
const (
	BucketCPURun   = "cpu-run"
	BucketRunqueue = "runqueue-wait"
	BucketIPCQueue = "ipc-queue"
	BucketNet      = "net"
	BucketOSD      = "osd"
	BucketMDS      = "mds"
	BucketDisk     = "disk"
	BucketThrottle = "dirty-throttle"
	BucketOther    = "other"
)

// bucketOf classifies one wait record into its decomposition bucket.
// Lock waits fold into the service bucket of the resource the lock
// guards (an IPC dispatch queue, the MDS CPU, OSD media, a NIC
// transmit channel); all remaining locks keep their own
// "lock:<name>" bucket so i_mutex/lru_lock blame stays visible.
func bucketOf(kind, resource string) string {
	switch kind {
	case "run":
		return BucketCPURun
	case "runq":
		return BucketRunqueue
	case "net":
		return BucketNet
	case "osd":
		return BucketOSD
	case "mds":
		return BucketMDS
	case "disk":
		return BucketDisk
	case "waitq":
		if strings.Contains(resource, "throttle") {
			return BucketThrottle
		}
		return "wait:" + resource
	case "lock":
		switch {
		case strings.HasSuffix(resource, ".q"):
			return BucketIPCQueue
		case resource == "mds.cpu":
			return BucketMDS
		case resource == "osd.media":
			return BucketOSD
		case strings.HasSuffix(resource, ".xmit"):
			return BucketNet
		case strings.HasSuffix(resource, ".chan"):
			return BucketDisk
		default:
			return "lock:" + resource
		}
	}
	return "wait:" + kind
}

// Bucket is one exclusive latency component of a request or aggregate.
type Bucket struct {
	Name string        `json:"name"`
	Dur  time.Duration `json:"dur_ns"`
}

// Request is the decomposition of one traced request: Buckets sum
// exactly to Dur (the residual is the "other" bucket).
type Request struct {
	Span     uint64        `json:"span"`
	Tenant   string        `json:"tenant"`
	Op       string        `json:"op"`
	Start    time.Duration `json:"start_ns"`
	Dur      time.Duration `json:"dur_ns"`
	Err      bool          `json:"err,omitempty"`
	CacheHit bool          `json:"cache_hit,omitempty"`
	Buckets  []Bucket      `json:"buckets"`
}

// OpBlame aggregates the decomposition over one tenant's operation.
type OpBlame struct {
	Op       string        `json:"op"`
	Requests int           `json:"requests"`
	Total    time.Duration `json:"total_ns"`
	Buckets  []Bucket      `json:"buckets"`
}

// TenantBlame aggregates the decomposition over one tenant.
type TenantBlame struct {
	Tenant    string        `json:"tenant"`
	Requests  int           `json:"requests"`
	CacheHits int           `json:"cache_hits"`
	Errors    int           `json:"errors"`
	Total     time.Duration `json:"total_ns"`
	Buckets   []Bucket      `json:"buckets"`
	Ops       []OpBlame     `json:"ops"`
}

// Report is the blame analysis of one recorded run. PerRequest holds
// the full decomposition for tests and what-if arithmetic; the
// exported artifacts carry the tenant/op aggregates and the
// interference matrix.
type Report struct {
	Label        string        `json:"label"`
	Requests     int           `json:"requests"`
	Unattributed uint64        `json:"unattributed_waits,omitempty"`
	Tenants      []TenantBlame `json:"tenants"`
	Interference []Cell        `json:"interference"`
	PerRequest   []Request     `json:"-"`
}

// sortedBuckets renders a bucket map deterministically (by name).
func sortedBuckets(m map[string]time.Duration) []Bucket {
	out := make([]Bucket, 0, len(m))
	for n, d := range m {
		out = append(out, Bucket{Name: n, Dur: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// BucketDur returns the duration of the named bucket in bs (0 when
// absent).
func BucketDur(bs []Bucket, name string) time.Duration {
	for _, b := range bs {
		if b.Name == name {
			return b.Dur
		}
	}
	return 0
}

// Decompose runs the critical-path decomposition over a finished
// recording: every span that emitted a root request slice is split
// into exclusive buckets from the wait records attributed to it, with
// the unexplained remainder in "other". Because a simulated process is
// either running or blocked on exactly one primitive, the leaf wait
// intervals of a span never overlap, so sum(buckets) == span duration
// holds exactly in virtual time (the residual is never negative; the
// test suite enforces this for every traced request).
func Decompose(label string, rec *obs.Recorder) Report {
	rep := Report{Label: label}
	if rec == nil {
		return rep
	}
	rep.Unattributed = rec.UnattributedWaits()
	// Wait records grouped by owning span, preserving engine order.
	type leaf struct {
		bucket string
		dur    time.Duration
	}
	bySpan := map[uint64][]leaf{}
	for _, w := range rec.Waits() {
		bySpan[w.Span] = append(bySpan[w.Span], leaf{
			bucket: bucketOf(rec.Str(w.Kind), rec.Str(w.Resource)),
			dur:    w.Dur,
		})
	}

	reqLayer := string(obs.LayerRequest)
	for _, s := range rec.Slices() {
		if rec.Str(s.Layer) != reqLayer {
			continue
		}
		buckets := map[string]time.Duration{}
		var explained time.Duration
		for _, l := range bySpan[s.Span] {
			buckets[l.bucket] += l.dur
			explained += l.dur
		}
		if resid := s.Dur - explained; resid != 0 {
			buckets[BucketOther] += resid
		}
		r := Request{
			Span: s.Span, Tenant: rec.Str(s.Tenant), Op: rec.Str(s.Op),
			Start: s.Start, Dur: s.Dur, Err: s.Err,
			Buckets: sortedBuckets(buckets),
		}
		r.CacheHit = buckets[BucketNet] == 0 && buckets[BucketOSD] == 0 &&
			buckets[BucketMDS] == 0 && buckets[BucketDisk] == 0
		rep.PerRequest = append(rep.PerRequest, r)
	}
	rep.Requests = len(rep.PerRequest)
	rep.Tenants = aggregate(rep.PerRequest)
	return rep
}

// aggregate folds per-request decompositions into sorted per-tenant
// (and per-tenant-op) totals.
func aggregate(reqs []Request) []TenantBlame {
	type opKey struct{ tenant, op string }
	tb := map[string]*TenantBlame{}
	tbBuckets := map[string]map[string]time.Duration{}
	ob := map[opKey]*OpBlame{}
	obBuckets := map[opKey]map[string]time.Duration{}
	for _, r := range reqs {
		t := tb[r.Tenant]
		if t == nil {
			t = &TenantBlame{Tenant: r.Tenant}
			tb[r.Tenant] = t
			tbBuckets[r.Tenant] = map[string]time.Duration{}
		}
		t.Requests++
		t.Total += r.Dur
		if r.CacheHit {
			t.CacheHits++
		}
		if r.Err {
			t.Errors++
		}
		for _, b := range r.Buckets {
			tbBuckets[r.Tenant][b.Name] += b.Dur
		}
		k := opKey{r.Tenant, r.Op}
		o := ob[k]
		if o == nil {
			o = &OpBlame{Op: r.Op}
			ob[k] = o
			obBuckets[k] = map[string]time.Duration{}
		}
		o.Requests++
		o.Total += r.Dur
		for _, b := range r.Buckets {
			obBuckets[k][b.Name] += b.Dur
		}
	}
	names := make([]string, 0, len(tb))
	for n := range tb {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]TenantBlame, 0, len(names))
	for _, n := range names {
		t := tb[n]
		t.Buckets = sortedBuckets(tbBuckets[n])
		for k, o := range ob {
			if k.tenant == n {
				o.Buckets = sortedBuckets(obBuckets[k])
				t.Ops = append(t.Ops, *o)
			}
		}
		sort.Slice(t.Ops, func(i, j int) bool { return t.Ops[i].Op < t.Ops[j].Op })
		out = append(out, *t)
	}
	return out
}

// Analyze runs the full blame pass over one recording: decomposition
// plus the interference matrix, in one Report.
func Analyze(label string, rec *obs.Recorder) Report {
	rep := Decompose(label, rec)
	rep.Interference = Interference(rec)
	return rep
}

package blame

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/model"
)

// WhatIf is a parameterized virtual speedup applied to the cost model
// for a deterministic re-run, plus the arithmetic to predict its
// effect from a baseline blame report. The zero value (and scale 1)
// means "unchanged".
type WhatIf struct {
	// Spec is the original user spec string, kept for labels.
	Spec string `json:"spec"`
	// NICScale multiplies client and server NIC bandwidth (2 = "nic=2x").
	NICScale float64 `json:"nic_scale,omitempty"`
	// OSDScale multiplies OSD ramdisk bandwidth.
	OSDScale float64 `json:"osd_scale,omitempty"`
	// LockCSScale multiplies kernel and client lock critical-section
	// hold times (0.5 = halved sections, "lockcs=0.5").
	LockCSScale float64 `json:"lockcs_scale,omitempty"`
	// FlusherPinned repins kernel flusher threads off the pool cores
	// ("flusher=pinned"); the rig decides the actual mask.
	FlusherPinned bool `json:"flusher_pinned,omitempty"`
}

// ParseWhatIf parses a spec like "nic=2x,osd=2x,lockcs=0.5,flusher=pinned".
// Any subset of knobs may appear; unknown keys or malformed values are
// errors.
func ParseWhatIf(spec string) (WhatIf, error) {
	w := WhatIf{Spec: spec, NICScale: 1, OSDScale: 1, LockCSScale: 1}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return w, fmt.Errorf("what-if: %q is not key=value", part)
		}
		switch key {
		case "nic", "osd":
			f, err := strconv.ParseFloat(strings.TrimSuffix(val, "x"), 64)
			if err != nil || f <= 0 {
				return w, fmt.Errorf("what-if: bad scale %q (want e.g. %s=2x)", part, key)
			}
			if key == "nic" {
				w.NICScale = f
			} else {
				w.OSDScale = f
			}
		case "lockcs":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return w, fmt.Errorf("what-if: bad fraction %q (want e.g. lockcs=0.5)", part)
			}
			w.LockCSScale = f
		case "flusher":
			if val != "pinned" {
				return w, fmt.Errorf("what-if: unknown flusher mode %q (want flusher=pinned)", val)
			}
			w.FlusherPinned = true
		default:
			return w, fmt.Errorf("what-if: unknown knob %q", key)
		}
	}
	return w, nil
}

// Apply rewrites the cost model in place for the re-run. Pinning is
// not a Params knob; the experiment rig applies it via
// kern.Kernel.SetFlusherMask.
func (w WhatIf) Apply(p *model.Params) {
	if w.NICScale > 0 && w.NICScale != 1 {
		p.ClientNICBytesPerSec = int64(float64(p.ClientNICBytesPerSec) * w.NICScale)
		p.ServerNICBytesPerSec = int64(float64(p.ServerNICBytesPerSec) * w.NICScale)
	}
	if w.OSDScale > 0 && w.OSDScale != 1 {
		p.OSDRamdiskBytesPerSec = int64(float64(p.OSDRamdiskBytesPerSec) * w.OSDScale)
	}
	if w.LockCSScale != 1 {
		scale := func(d time.Duration) time.Duration {
			return time.Duration(float64(d) * w.LockCSScale)
		}
		p.LRULockHoldPerPage = scale(p.LRULockHoldPerPage)
		p.IMutexHold = scale(p.IMutexHold)
		p.WritebackLockHold = scale(p.WritebackLockHold)
		p.ClientLockHold = scale(p.ClientLockHold)
	}
}

// Predict estimates, from the baseline decomposition alone, each
// tenant's mean request latency under the what-if: time in a sped-up
// bucket shrinks proportionally (a k× faster resource keeps 1/k of the
// time), lock-wait time scales with the critical sections feeding it,
// and pinning the flushers removes the runqueue interference the
// kernel account inflicted. Means (not totals) are used so predictions
// stay comparable when the re-run completes a different number of
// requests.
func (w WhatIf) Predict(base Report) map[string]time.Duration {
	// Kernel-attributed runqueue interference per victim, for pinning.
	kernRunq := map[string]time.Duration{}
	for _, c := range base.Interference {
		if c.Resource == "cpu" && c.Aggressor == "kernel" {
			kernRunq[c.Victim] += c.Wait
		}
	}
	out := make(map[string]time.Duration, len(base.Tenants))
	for _, t := range base.Tenants {
		if t.Requests == 0 {
			continue
		}
		saved := 0.0
		if w.NICScale > 1 {
			saved += float64(BucketDur(t.Buckets, BucketNet)) * (1 - 1/w.NICScale)
		}
		if w.OSDScale > 1 {
			saved += float64(BucketDur(t.Buckets, BucketOSD)) * (1 - 1/w.OSDScale)
		}
		if w.LockCSScale < 1 {
			var lockWait time.Duration
			for _, b := range t.Buckets {
				if strings.HasPrefix(b.Name, "lock:") {
					lockWait += b.Dur
				}
			}
			saved += float64(lockWait) * (1 - w.LockCSScale)
		}
		if w.FlusherPinned {
			saved += float64(kernRunq[t.Tenant])
		}
		mean := float64(t.Total) / float64(t.Requests)
		pred := mean - saved/float64(t.Requests)
		if pred < 0 {
			pred = 0
		}
		out[t.Tenant] = time.Duration(pred)
	}
	return out
}

// WhatIfRow compares one tenant's mean request latency across the
// baseline run, the decomposition-based prediction, and the measured
// re-run under the modified model.
type WhatIfRow struct {
	Tenant    string        `json:"tenant"`
	Baseline  time.Duration `json:"baseline_mean_ns"`
	Predicted time.Duration `json:"predicted_mean_ns"`
	Measured  time.Duration `json:"measured_mean_ns"`
}

// WhatIfReport is the artifact of one what-if experiment.
type WhatIfReport struct {
	Label string      `json:"label"`
	Spec  string      `json:"spec"`
	Rows  []WhatIfRow `json:"rows"`
}

// CompareWhatIf joins the baseline report, its prediction, and the
// measured re-run into per-tenant rows sorted by tenant.
func CompareWhatIf(w WhatIf, base, measured Report) WhatIfReport {
	rep := WhatIfReport{Label: base.Label, Spec: w.Spec}
	pred := w.Predict(base)
	meas := map[string]time.Duration{}
	for _, t := range measured.Tenants {
		if t.Requests > 0 {
			meas[t.Tenant] = t.Total / time.Duration(t.Requests)
		}
	}
	for _, t := range base.Tenants {
		if t.Requests == 0 {
			continue
		}
		rep.Rows = append(rep.Rows, WhatIfRow{
			Tenant:    t.Tenant,
			Baseline:  t.Total / time.Duration(t.Requests),
			Predicted: pred[t.Tenant],
			Measured:  meas[t.Tenant],
		})
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Tenant < rep.Rows[j].Tenant })
	return rep
}

// RenderWhatIf writes the comparison as a text table with the
// prediction error against the measured re-run.
func RenderWhatIf(wr io.Writer, rep WhatIfReport) {
	fmt.Fprintf(wr, "what-if %q (%s): mean request latency\n", rep.Spec, rep.Label)
	fmt.Fprintf(wr, "%-12s %14s %14s %14s %10s\n",
		"tenant", "baseline", "predicted", "measured", "pred.err")
	for _, r := range rep.Rows {
		errPct := "-"
		if r.Measured > 0 {
			errPct = fmt.Sprintf("%+.1f%%",
				100*float64(r.Predicted-r.Measured)/float64(r.Measured))
		}
		fmt.Fprintf(wr, "%-12s %14s %14s %14s %10s\n",
			r.Tenant,
			r.Baseline.Round(time.Microsecond),
			r.Predicted.Round(time.Microsecond),
			r.Measured.Round(time.Microsecond),
			errPct)
	}
}

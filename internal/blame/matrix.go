package blame

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/obs"
)

// Cell is one victim×aggressor entry of the interference matrix: the
// victim tenant spent Wait blocked on Resource while the aggressor
// tenant held it (locks) or occupied it (cores), across Count waits.
type Cell struct {
	Victim    string        `json:"victim"`
	Aggressor string        `json:"aggressor"`
	Resource  string        `json:"resource"`
	Wait      time.Duration `json:"wait_ns"`
	Count     int           `json:"count"`
}

// Interference builds the per-tenant interference matrix from the
// contended waits of a recording. Only waits with an identified other
// party contribute: lock waits blame the tenant the holder was serving
// when the victim enqueued (falling back to the raw holder process
// name for unbound holders such as idle kernel threads), and runqueue
// waits blame the account occupying the victim's cores. Self-cells
// (victim == aggressor) are kept — intra-tenant queueing is real
// latency, just not cross-tenant interference.
func Interference(rec *obs.Recorder) []Cell {
	if rec == nil {
		return nil
	}
	type key struct{ victim, aggressor, resource string }
	agg := map[key]*Cell{}
	for _, w := range rec.Waits() {
		kind := rec.Str(w.Kind)
		if kind != "lock" && kind != "runq" {
			continue
		}
		aggressor := rec.Str(w.HolderTenant)
		if aggressor == "" {
			aggressor = rec.Str(w.Holder)
		}
		if aggressor == "" {
			continue
		}
		k := key{rec.Str(w.Tenant), aggressor, rec.Str(w.Resource)}
		c := agg[k]
		if c == nil {
			c = &Cell{Victim: k.victim, Aggressor: k.aggressor, Resource: k.resource}
			agg[k] = c
		}
		c.Wait += w.Dur
		c.Count++
	}
	out := make([]Cell, 0, len(agg))
	for _, c := range agg {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Victim != b.Victim {
			return a.Victim < b.Victim
		}
		if a.Aggressor != b.Aggressor {
			return a.Aggressor < b.Aggressor
		}
		return a.Resource < b.Resource
	})
	return out
}

// RenderMatrix writes the interference matrix as a text grid of total
// wait per victim (rows) × aggressor (columns), summed over resources,
// followed by the per-resource cell detail.
func RenderMatrix(w io.Writer, cells []Cell) {
	if len(cells) == 0 {
		fmt.Fprintln(w, "interference: none recorded")
		return
	}
	victims, aggressors := []string{}, []string{}
	seenV, seenA := map[string]bool{}, map[string]bool{}
	sum := map[[2]string]time.Duration{}
	for _, c := range cells {
		if !seenV[c.Victim] {
			seenV[c.Victim] = true
			victims = append(victims, c.Victim)
		}
		if !seenA[c.Aggressor] {
			seenA[c.Aggressor] = true
			aggressors = append(aggressors, c.Aggressor)
		}
		sum[[2]string{c.Victim, c.Aggressor}] += c.Wait
	}
	sort.Strings(victims)
	sort.Strings(aggressors)

	fmt.Fprintln(w, "interference matrix (total wait, victim rows × aggressor columns)")
	fmt.Fprintf(w, "%-14s", "victim\\aggr")
	for _, a := range aggressors {
		fmt.Fprintf(w, " %12s", a)
	}
	fmt.Fprintln(w)
	for _, v := range victims {
		fmt.Fprintf(w, "%-14s", v)
		for _, a := range aggressors {
			d, ok := sum[[2]string{v, a}]
			if !ok {
				fmt.Fprintf(w, " %12s", "-")
				continue
			}
			fmt.Fprintf(w, " %12s", d.Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "cells (victim <- aggressor @ resource: wait / count)")
	for _, c := range cells {
		fmt.Fprintf(w, "  %s <- %s @ %s: %s / %d\n",
			c.Victim, c.Aggressor, c.Resource, c.Wait.Round(time.Microsecond), c.Count)
	}
}

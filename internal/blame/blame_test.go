package blame

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// newRec returns a recorder with a settable virtual clock.
func newRec() (*obs.Recorder, *time.Duration) {
	now := new(time.Duration)
	return obs.New(obs.Config{Clock: func() time.Duration { return *now }}), now
}

func TestBucketOf(t *testing.T) {
	cases := []struct{ kind, resource, want string }{
		{"run", "cpu", BucketCPURun},
		{"runq", "cpu", BucketRunqueue},
		{"net", "client.nic", BucketNet},
		{"osd", "osd.media", BucketOSD},
		{"mds", "mds.cpu", BucketMDS},
		{"disk", "sda", BucketDisk},
		{"waitq", "dirty_throttle", BucketThrottle},
		{"waitq", "reap", "wait:reap"},
		{"lock", "fls0.q", BucketIPCQueue},
		{"lock", "mds.cpu", BucketMDS},
		{"lock", "osd.media", BucketOSD},
		{"lock", "client.xmit", BucketNet},
		{"lock", "sda.chan", BucketDisk},
		{"lock", "i_mutex", "lock:i_mutex"},
		{"lock", "lru_lock", "lock:lru_lock"},
	}
	for _, c := range cases {
		if got := bucketOf(c.kind, c.resource); got != c.want {
			t.Errorf("bucketOf(%s,%s) = %s, want %s", c.kind, c.resource, got, c.want)
		}
	}
}

// TestDecomposeInvariant builds two synthetic requests and checks the
// core contract: the buckets of each request sum exactly to its span
// duration, with the unexplained time in "other" and cache hits
// detected from the absence of backend buckets.
func TestDecomposeInvariant(t *testing.T) {
	rec, now := newRec()

	// Request 1 (tenant fls0): 2ms cpu + 3ms lock + 4ms net + 1ms unexplained.
	sp := rec.StartSpan(1, "fls0", "read")
	rec.Wait(1, "run", "cpu", "", 0, 0, ms(2))
	rec.Wait(1, "lock", "i_mutex", "kflushd", 0, ms(2), ms(3))
	rec.Wait(1, "net", "client.nic", "", 0, ms(5), ms(4))
	*now = ms(10)
	sp.End(4096, nil)

	// Request 2 (tenant fls0): pure cpu, fully explained — a cache hit.
	sp2 := rec.StartSpan(1, "fls0", "read")
	rec.Wait(1, "run", "cpu", "", 0, ms(10), ms(5))
	*now = ms(15)
	sp2.End(4096, nil)

	rep := Decompose("unit", rec)
	if rep.Requests != 2 || len(rep.PerRequest) != 2 {
		t.Fatalf("want 2 requests, got %+v", rep)
	}
	for _, r := range rep.PerRequest {
		var sum time.Duration
		for _, b := range r.Buckets {
			sum += b.Dur
		}
		if sum != r.Dur {
			t.Errorf("span %d: sum(buckets)=%s != dur=%s", r.Span, sum, r.Dur)
		}
	}
	r1, r2 := rep.PerRequest[0], rep.PerRequest[1]
	if BucketDur(r1.Buckets, BucketOther) != ms(1) {
		t.Errorf("residual wrong: %+v", r1.Buckets)
	}
	if r1.CacheHit || !r2.CacheHit {
		t.Errorf("cache-hit detection wrong: r1=%v r2=%v", r1.CacheHit, r2.CacheHit)
	}

	if len(rep.Tenants) != 1 {
		t.Fatalf("want 1 tenant, got %+v", rep.Tenants)
	}
	tn := rep.Tenants[0]
	if tn.Tenant != "fls0" || tn.Requests != 2 || tn.CacheHits != 1 || tn.Total != ms(15) {
		t.Errorf("tenant aggregate wrong: %+v", tn)
	}
	if got := BucketDur(tn.Buckets, BucketCPURun); got != ms(7) {
		t.Errorf("aggregated cpu-run = %s, want 7ms", got)
	}
	if len(tn.Ops) != 1 || tn.Ops[0].Op != "read" || tn.Ops[0].Requests != 2 {
		t.Errorf("op aggregate wrong: %+v", tn.Ops)
	}
}

// TestInterferenceMatrix checks aggressor resolution: the holder's
// bound tenant wins, the raw holder name is the fallback, runqueue
// waits use the occupant account, and cells sort deterministically.
func TestInterferenceMatrix(t *testing.T) {
	rec, now := newRec()

	// Aggressor proc 2 runs a span for tenant "rnd" and holds i_mutex.
	agg := rec.StartSpan(2, "rnd", "randio")
	// Victim proc 1 (tenant fls0) waits on that lock: HolderTenant
	// resolves through proc 2's binding.
	vic := rec.StartSpan(1, "fls0", "read")
	rec.Wait(1, "lock", "i_mutex", "randio", 2, 0, ms(4))
	// A second wait on an unbound holder falls back to the raw name.
	rec.Wait(1, "lock", "lru_lock", "kflushd", 0, ms(4), ms(2))
	// Runqueue interference names the account directly (no holder id).
	rec.Wait(1, "runq", "cpu", "kernel", 0, ms(6), ms(3))
	// Non-contended kinds are excluded from the matrix.
	rec.Wait(1, "net", "client.nic", "", 0, ms(9), ms(1))
	*now = ms(10)
	vic.End(0, nil)
	agg.End(0, nil)

	cells := Interference(rec)
	if len(cells) != 3 {
		t.Fatalf("want 3 cells, got %+v", cells)
	}
	want := []Cell{
		{Victim: "fls0", Aggressor: "kernel", Resource: "cpu", Wait: ms(3), Count: 1},
		{Victim: "fls0", Aggressor: "kflushd", Resource: "lru_lock", Wait: ms(2), Count: 1},
		{Victim: "fls0", Aggressor: "rnd", Resource: "i_mutex", Wait: ms(4), Count: 1},
	}
	for i, c := range cells {
		if c != want[i] {
			t.Errorf("cell %d = %+v, want %+v", i, c, want[i])
		}
	}

	var buf bytes.Buffer
	RenderMatrix(&buf, cells)
	out := buf.String()
	if !strings.Contains(out, "fls0") || !strings.Contains(out, "i_mutex") {
		t.Errorf("rendered matrix missing content:\n%s", out)
	}
}

func TestParseWhatIf(t *testing.T) {
	w, err := ParseWhatIf("nic=2x,osd=4x,lockcs=0.5,flusher=pinned")
	if err != nil {
		t.Fatal(err)
	}
	if w.NICScale != 2 || w.OSDScale != 4 || w.LockCSScale != 0.5 || !w.FlusherPinned {
		t.Errorf("parsed wrong: %+v", w)
	}
	if w2, err := ParseWhatIf("nic=1.5"); err != nil || w2.NICScale != 1.5 {
		t.Errorf("bare scale should parse: %+v %v", w2, err)
	}
	for _, bad := range []string{"nic=fast", "turbo=2x", "flusher=faster", "lockcs=-1", "nic"} {
		if _, err := ParseWhatIf(bad); err == nil {
			t.Errorf("ParseWhatIf(%q) should fail", bad)
		}
	}
}

func TestWhatIfApply(t *testing.T) {
	p := *model.Default()
	base := p
	w := WhatIf{NICScale: 2, OSDScale: 2, LockCSScale: 0.5}
	w.Apply(&p)
	if p.ClientNICBytesPerSec != 2*base.ClientNICBytesPerSec ||
		p.ServerNICBytesPerSec != 2*base.ServerNICBytesPerSec {
		t.Errorf("NIC not scaled: %d vs %d", p.ClientNICBytesPerSec, base.ClientNICBytesPerSec)
	}
	if p.OSDRamdiskBytesPerSec != 2*base.OSDRamdiskBytesPerSec {
		t.Errorf("OSD not scaled")
	}
	if p.IMutexHold != base.IMutexHold/2 || p.LRULockHoldPerPage != base.LRULockHoldPerPage/2 ||
		p.WritebackLockHold != base.WritebackLockHold/2 || p.ClientLockHold != base.ClientLockHold/2 {
		t.Errorf("lock holds not scaled: %+v", p)
	}
	// Quantum etc untouched.
	if p.Quantum != base.Quantum || p.MDSOpCost != base.MDSOpCost {
		t.Errorf("unrelated params changed")
	}
}

// TestWhatIfPredict pins the prediction arithmetic on a hand-built
// report: mean latency minus the shrunk share of each affected bucket.
func TestWhatIfPredict(t *testing.T) {
	base := Report{
		Tenants: []TenantBlame{{
			Tenant: "fls0", Requests: 2, Total: ms(20),
			Buckets: []Bucket{
				{Name: BucketCPURun, Dur: ms(4)},
				{Name: BucketNet, Dur: ms(8)},
				{Name: "lock:i_mutex", Dur: ms(6)},
				{Name: BucketOther, Dur: ms(2)},
			},
		}},
		Interference: []Cell{
			{Victim: "fls0", Aggressor: "kernel", Resource: "cpu", Wait: ms(2), Count: 1},
		},
	}
	// nic=2x: net 8ms -> saves 4ms. lockcs=0.5: lock 6ms -> saves 3ms.
	// pinned: kernel runq 2ms -> saves 2ms. Total saved 9ms over 2
	// requests = 4.5ms off the 10ms mean.
	w := WhatIf{NICScale: 2, OSDScale: 1, LockCSScale: 0.5, FlusherPinned: true}
	pred := w.Predict(base)
	want := ms(10) - ms(9)/2
	if got := pred["fls0"]; got != want {
		t.Errorf("predicted mean = %s, want %s", got, want)
	}

	measured := Report{Tenants: []TenantBlame{{Tenant: "fls0", Requests: 4, Total: ms(24)}}}
	cmp := CompareWhatIf(w, base, measured)
	if len(cmp.Rows) != 1 {
		t.Fatalf("want 1 row: %+v", cmp)
	}
	r := cmp.Rows[0]
	if r.Baseline != ms(10) || r.Predicted != want || r.Measured != ms(6) {
		t.Errorf("comparison row wrong: %+v", r)
	}
	var buf bytes.Buffer
	RenderWhatIf(&buf, cmp)
	if !strings.Contains(buf.String(), "fls0") {
		t.Errorf("rendered what-if missing tenant:\n%s", buf.String())
	}
}

// TestWriteCSVQuoting checks the blame CSV schema survives a
// standards-conforming reader even with hostile labels.
func TestWriteCSVQuoting(t *testing.T) {
	rep := Report{
		Label: `sweep,K "quick"`,
		Tenants: []TenantBlame{{
			Tenant: "fls,0", Requests: 3,
			Buckets: []Bucket{{Name: BucketCPURun, Dur: ms(1)}},
		}},
		Interference: []Cell{
			{Victim: "fls,0", Aggressor: `agg"r`, Resource: "i_mutex", Wait: ms(2), Count: 5},
		},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Report{rep}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("blame CSV does not parse: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("want header + 2 rows, got %d", len(rows))
	}
	b := rows[1]
	if b[0] != "blame" || b[1] != rep.Label || b[2] != "fls,0" || b[3] != BucketCPURun ||
		b[5] != "1000000" || b[6] != "3" {
		t.Errorf("blame row did not round-trip: %q", b)
	}
	i := rows[2]
	if i[0] != "interference" || i[2] != "fls,0" || i[3] != `agg"r` || i[4] != "i_mutex" ||
		i[5] != "2000000" || i[6] != "5" {
		t.Errorf("interference row did not round-trip: %q", i)
	}
}

// TestWriteJSONDeterministic re-encodes the same report and requires
// byte-identical output.
func TestWriteJSONDeterministic(t *testing.T) {
	rec, now := newRec()
	sp := rec.StartSpan(1, "fls0", "read")
	rec.Wait(1, "run", "cpu", "", 0, 0, ms(2))
	*now = ms(3)
	sp.End(0, nil)
	rep := Analyze("det", rec)

	var a, b bytes.Buffer
	if err := WriteJSON(&a, []Report{rep}); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, []Report{rep}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("JSON encoding not deterministic")
	}
	if !strings.Contains(a.String(), `"cpu-run"`) {
		t.Errorf("JSON missing bucket: %s", a.String())
	}
}

package telemetry

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func TestSketchQuantiles(t *testing.T) {
	var s Sketch
	for i := 1; i <= 1000; i++ {
		s.Record(time.Duration(i) * time.Microsecond)
	}
	if s.Count() != 1000 {
		t.Fatalf("count = %d", s.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
		{0.999, 999 * time.Microsecond},
	}
	for _, c := range checks {
		got := s.Quantile(c.q)
		rel := math.Abs(float64(got-c.want)) / float64(c.want)
		if rel > 0.15 {
			t.Errorf("q%.3f = %v, want ~%v (rel err %.3f)", c.q, got, c.want, rel)
		}
	}
	if s.Quantile(1.0) != time.Millisecond {
		t.Errorf("q1.0 = %v, want clamp to max %v", s.Quantile(1.0), time.Millisecond)
	}
}

func TestSketchSingleValueExact(t *testing.T) {
	var s Sketch
	for i := 0; i < 10; i++ {
		s.Record(123456 * time.Nanosecond)
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if got := s.Quantile(q); got != 123456*time.Nanosecond {
			t.Errorf("q%v = %v, want exact 123456ns (min==max clamp)", q, got)
		}
	}
}

func TestSketchReset(t *testing.T) {
	var s Sketch
	s.Record(time.Millisecond)
	s.Record(time.Second)
	s.Reset()
	if s.Count() != 0 || s.Sum() != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("reset left state: count=%d sum=%v", s.Count(), s.Sum())
	}
	s.Record(2 * time.Microsecond)
	if s.Count() != 1 || s.Quantile(0.5) != 2*time.Microsecond {
		t.Fatalf("post-reset record broken: %v", s.Quantile(0.5))
	}
}

func TestSketchIndexMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<20; v = v*5/4 + 1 {
		idx := sketchIndex(v)
		if idx < prev {
			t.Fatalf("index not monotone at %d: %d < %d", v, idx, prev)
		}
		if lo := sketchValue(idx); lo > v {
			t.Fatalf("bucket lower bound %d > value %d", lo, v)
		}
		prev = idx
	}
	if sketchIndex(math.MaxInt64) >= sketchBuckets {
		t.Fatal("max value overflows bucket array")
	}
}

func TestMonitorWindowsAndTotals(t *testing.T) {
	m := New(Config{FastWindow: time.Second})
	// Window 0: 3 reads for A (one error), 1 write for B.
	m.RecordOp(100*time.Millisecond, "A", "read", 5*time.Millisecond, 4096, false)
	m.RecordOp(200*time.Millisecond, "A", "read", 7*time.Millisecond, 4096, false)
	m.RecordOp(300*time.Millisecond, "A", "read", 9*time.Millisecond, 0, true)
	m.RecordOp(400*time.Millisecond, "B", "write", 2*time.Millisecond, 8192, false)
	// Window 2 (window 1 empty): 1 read for A.
	m.RecordOp(2500*time.Millisecond, "A", "read", 1*time.Millisecond, 100, false)
	m.Finalize(3 * time.Second)

	rows := m.Windows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (A@0, B@0, A@2)", len(rows))
	}
	if rows[0].Tenant != "A" || rows[0].Index != 0 || rows[0].Ops != 3 || rows[0].Errors != 1 || rows[0].Bytes != 8192 {
		t.Errorf("row0 = %+v", rows[0])
	}
	if rows[1].Tenant != "B" || rows[1].Ops != 1 {
		t.Errorf("row1 = %+v", rows[1])
	}
	if rows[2].Tenant != "A" || rows[2].Index != 2 || rows[2].Ops != 1 {
		t.Errorf("row2 = %+v", rows[2])
	}

	tot := m.Totals()
	if len(tot) != 2 {
		t.Fatalf("totals = %+v", tot)
	}
	if tot[0].Tenant != "A" || tot[0].Op != "read" || tot[0].Ops != 4 || tot[0].Errors != 1 ||
		tot[0].Bytes != 8292 || tot[0].LatSum != 22*time.Millisecond {
		t.Errorf("total A/read = %+v", tot[0])
	}
	if tot[1].Tenant != "B" || tot[1].Op != "write" || tot[1].Ops != 1 || tot[1].Bytes != 8192 {
		t.Errorf("total B/write = %+v", tot[1])
	}

	// Finalize is idempotent and further records are ignored.
	m.RecordOp(5*time.Second, "A", "read", time.Millisecond, 1, false)
	m.Finalize(10 * time.Second)
	if len(m.Windows()) != 3 || len(m.Totals()) != 2 {
		t.Error("post-finalize records leaked into windows/totals")
	}
}

func TestMonitorInterferenceTopAggressor(t *testing.T) {
	m := New(Config{FastWindow: time.Second})
	m.RecordOp(10*time.Millisecond, "victim", "read", time.Millisecond, 1, false)
	m.RecordWait(20*time.Millisecond, 3*time.Millisecond, "victim", "agg2")
	m.RecordWait(30*time.Millisecond, 5*time.Millisecond, "victim", "agg1")
	m.RecordWait(40*time.Millisecond, 2*time.Millisecond, "victim", "agg2")
	// Ignored: self-wait and zero duration.
	m.RecordWait(50*time.Millisecond, time.Millisecond, "victim", "victim")
	m.RecordWait(60*time.Millisecond, 0, "victim", "agg1")
	m.Finalize(time.Second)

	rows := m.Windows()
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	// agg1 and agg2 both at 5ms: deterministic tie-break by name.
	if rows[0].TopAggressor != "agg1" || rows[0].TopAggressorWait != 5*time.Millisecond {
		t.Errorf("top aggressor = %q/%v, want agg1/5ms", rows[0].TopAggressor, rows[0].TopAggressorWait)
	}
}

func TestMonitorAdmissionProbe(t *testing.T) {
	shed := uint64(0)
	queued := 0
	m := New(Config{FastWindow: time.Second, SampleInterval: 100 * time.Millisecond})
	m.SetAdmissionProbe(func() []AdmissionSample {
		return []AdmissionSample{{Tenant: "A", Queued: queued, Shed: shed}}
	})
	m.RecordOp(50*time.Millisecond, "A", "read", time.Millisecond, 1, false)
	queued, shed = 7, 3
	m.Tick(200 * time.Millisecond)
	queued, shed = 2, 5
	m.Tick(400 * time.Millisecond)
	// Window 1: shed grows to 9.
	queued, shed = 1, 9
	m.RecordOp(1100*time.Millisecond, "A", "read", time.Millisecond, 1, false)
	m.Tick(1200 * time.Millisecond)
	m.Finalize(2 * time.Second)

	rows := m.Windows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Queued != 7 || rows[0].Shed != 5 {
		t.Errorf("window0 queued=%d shed=%d, want 7/5", rows[0].Queued, rows[0].Shed)
	}
	if rows[1].Queued != 1 || rows[1].Shed != 4 {
		t.Errorf("window1 queued=%d shed=%d, want 1/4", rows[1].Queued, rows[1].Shed)
	}
}

// alertSLO returns a 1%-budget latency SLO that fires at burn 10 and
// clears below 1, needing at least 5 ops per fast window.
func alertSLO() SLO {
	return SLO{Name: "p99", Op: "read", Target: 10 * time.Millisecond,
		Budget: 0.01, FireBurn: 10, ClearBurn: 1, MinOps: 5}
}

func TestSLOFireAndClear(t *testing.T) {
	m := New(Config{FastWindow: time.Second, SlowWindow: 4 * time.Second, SLOs: []SLO{alertSLO()}})
	step := func(win int64, lat time.Duration) {
		base := time.Duration(win) * time.Second
		for i := 0; i < 10; i++ {
			m.RecordOp(base+time.Duration(i+1)*50*time.Millisecond, "A", "read", lat, 1, false)
		}
	}
	// Windows 0-1 healthy, 2-4 violating (all ops over target -> burn
	// 100 in fast and climbing in slow), 5-9 healthy again.
	for w := int64(0); w < 10; w++ {
		lat := time.Millisecond
		if w >= 2 && w <= 4 {
			lat = 50 * time.Millisecond
		}
		step(w, lat)
	}
	m.Finalize(10 * time.Second)

	alerts := m.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("alerts = %v, want fire+clear", alerts)
	}
	fire, clear := alerts[0], alerts[1]
	if fire.State != AlertFiring || fire.Tenant != "A" || fire.SLO != "p99" {
		t.Errorf("fire = %+v", fire)
	}
	if fire.T != 3*time.Second {
		t.Errorf("fire at %v, want 3s (close of first violating window)", fire.T)
	}
	if clear.State != AlertClear || clear.T <= fire.T {
		t.Errorf("clear = %+v", clear)
	}
	if fire.FastBurn < 99 || fire.SlowBurn < 10 {
		t.Errorf("burns at fire: fast=%.1f slow=%.1f", fire.FastBurn, fire.SlowBurn)
	}
}

func TestSLOSingleBadWindowDoesNotFire(t *testing.T) {
	// One violating fast window inside a long slow window must not trip
	// the slow burn: the multi-window rule suppresses blips.
	m := New(Config{FastWindow: time.Second, SlowWindow: 60 * time.Second, SLOs: []SLO{alertSLO()}})
	for w := int64(0); w < 30; w++ {
		base := time.Duration(w) * time.Second
		lat := time.Millisecond
		if w == 10 {
			lat = 50 * time.Millisecond
		}
		for i := 0; i < 10; i++ {
			m.RecordOp(base+time.Duration(i+1)*50*time.Millisecond, "A", "read", lat, 1, false)
		}
	}
	m.Finalize(30 * time.Second)
	if len(m.Alerts()) != 0 {
		t.Fatalf("alerts = %v, want none for a single bad window", m.Alerts())
	}
}

func TestSLOErrorRate(t *testing.T) {
	slo := SLO{Name: "errors", Budget: 0.01, FireBurn: 10, ClearBurn: 1, MinOps: 5}
	m := New(Config{FastWindow: time.Second, SlowWindow: 2 * time.Second, SLOs: []SLO{slo}})
	for i := 0; i < 10; i++ {
		m.RecordOp(time.Duration(i+1)*50*time.Millisecond, "A", "read", time.Millisecond, 1, i%2 == 0)
	}
	m.Finalize(time.Second)
	alerts := m.Alerts()
	if len(alerts) != 1 || alerts[0].State != AlertFiring {
		t.Fatalf("alerts = %v, want one fire (50%% errors vs 1%% budget)", alerts)
	}
}

func TestSLOPinnedTenant(t *testing.T) {
	slo := alertSLO()
	slo.Tenant = "A"
	m := New(Config{FastWindow: time.Second, SlowWindow: 2 * time.Second, SLOs: []SLO{slo}})
	for i := 0; i < 10; i++ {
		ts := time.Duration(i+1) * 50 * time.Millisecond
		m.RecordOp(ts, "A", "read", 50*time.Millisecond, 1, false)
		m.RecordOp(ts, "B", "read", 50*time.Millisecond, 1, false)
	}
	m.Finalize(time.Second)
	alerts := m.Alerts()
	if len(alerts) != 1 || alerts[0].Tenant != "A" {
		t.Fatalf("alerts = %v, want exactly one for pinned tenant A", alerts)
	}
}

func TestSLOExpectedOpsShortfall(t *testing.T) {
	// A throughput floor of 10 ops/window with an armed interval covering
	// the whole run: windows 2-3 starve completely, so the shortfall
	// alone must fire the alert even though every completed op is fast.
	slo := SLO{Name: "floor", Op: "read", Target: 10 * time.Millisecond,
		Budget: 0.05, FireBurn: 2, ClearBurn: 1, MinOps: 1, ExpectedOps: 10}
	m := New(Config{FastWindow: time.Second, SlowWindow: 2 * time.Second, SLOs: []SLO{slo}})
	m.ArmSLOs(0, 0)
	for w := int64(0); w < 6; w++ {
		if w >= 2 && w <= 3 {
			continue // total starvation
		}
		base := time.Duration(w) * time.Second
		for i := 0; i < 10; i++ {
			m.RecordOp(base+time.Duration(i+1)*50*time.Millisecond, "A", "read", time.Millisecond, 1, false)
		}
	}
	m.Finalize(6 * time.Second)
	alerts := m.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("alerts = %v, want fire during starvation + clear after", alerts)
	}
	if alerts[0].State != AlertFiring || alerts[0].T != 3*time.Second {
		t.Errorf("fire = %+v, want firing at 3s (close of first starved window)", alerts[0])
	}
	if alerts[1].State != AlertClear {
		t.Errorf("clear = %+v", alerts[1])
	}
}

func TestSLOExpectedOpsUnarmedNoPenalty(t *testing.T) {
	// The same starvation with SLO counting never armed: idle windows
	// must not read as outages (prep and drain phases look exactly like
	// this).
	slo := SLO{Name: "floor", Op: "read", Budget: 0.05, FireBurn: 2, ClearBurn: 1,
		MinOps: 1, ExpectedOps: 10}
	m := New(Config{FastWindow: time.Second, SlowWindow: 2 * time.Second, SLOs: []SLO{slo}})
	m.ArmSLOs(time.Duration(1<<62), 0)
	m.RecordOp(100*time.Millisecond, "A", "read", time.Millisecond, 1, false)
	m.Finalize(6 * time.Second)
	if len(m.Alerts()) != 0 {
		t.Fatalf("alerts = %v, want none while unarmed", m.Alerts())
	}
}

func TestArmSLOsInterval(t *testing.T) {
	// Errors before armAt and after disarmAt bypass SLO counting; the
	// windowed aggregates still see every op.
	slo := SLO{Name: "errors", Budget: 0.01, FireBurn: 2, ClearBurn: 1, MinOps: 1}
	m := New(Config{FastWindow: time.Second, SlowWindow: 2 * time.Second, SLOs: []SLO{slo}})
	m.ArmSLOs(2*time.Second, 4*time.Second)
	for w := int64(0); w < 6; w++ {
		base := time.Duration(w) * time.Second
		for i := 0; i < 10; i++ {
			// Every op errors in windows 0-1 (pre-arm) and 4-5 (post-
			// disarm); windows 2-3 are clean.
			err := w < 2 || w >= 4
			m.RecordOp(base+time.Duration(i+1)*50*time.Millisecond, "A", "read", time.Millisecond, 1, err)
		}
	}
	m.Finalize(6 * time.Second)
	if len(m.Alerts()) != 0 {
		t.Fatalf("alerts = %v, want none — every error fell outside the armed interval", m.Alerts())
	}
	tot := m.Totals()
	if len(tot) != 1 || tot[0].Ops != 60 || tot[0].Errors == 0 {
		t.Fatalf("totals must still count unarmed ops: %+v", tot)
	}
}

func TestArmSLOsStraddlingWindowNoPenalty(t *testing.T) {
	// The ExpectedOps penalty applies only to windows FULLY inside the
	// armed interval. Window 1 straddles armAt (spans 1s-2s, arm at
	// 1.5s): its ops complete pre-arm so the SLO tallies zero — if the
	// window were treated as armed, the shortfall penalty would read
	// 10 missing ops at burn 20 and fire at t=2s. The exemption keeps
	// it silent.
	slo := SLO{Name: "floor", Budget: 0.05, FireBurn: 2, ClearBurn: 1,
		MinOps: 1, ExpectedOps: 10}
	m := New(Config{FastWindow: time.Second, SlowWindow: 2 * time.Second, SLOs: []SLO{slo}})
	m.ArmSLOs(1500*time.Millisecond, 0)
	for i := 0; i < 10; i++ {
		m.RecordOp(time.Second+time.Duration(i+1)*40*time.Millisecond, "A", "read", time.Millisecond, 1, false)
		m.RecordOp(2*time.Second+time.Duration(i+1)*40*time.Millisecond, "A", "read", time.Millisecond, 1, false)
	}
	m.Finalize(3 * time.Second)
	if len(m.Alerts()) != 0 {
		t.Fatalf("alerts = %v, want none — the straddling window is exempt from the shortfall penalty", m.Alerts())
	}
}

func TestSnapshot(t *testing.T) {
	m := New(Config{FastWindow: time.Second, SlowWindow: 2 * time.Second, SLOs: []SLO{alertSLO()}})
	for i := 0; i < 10; i++ {
		m.RecordOp(time.Duration(i+1)*50*time.Millisecond, "A", "read", 50*time.Millisecond, 64, false)
	}
	// Mid-window snapshot: nothing closed yet.
	h := m.Snapshot(900 * time.Millisecond)
	if len(h.Tenants) != 0 || h.ActiveAlerts != 0 {
		t.Fatalf("early snapshot = %+v", h)
	}
	// Snapshot after the window boundary closes it and fires the alert.
	h = m.Snapshot(1100 * time.Millisecond)
	if h.ActiveAlerts != 1 || len(h.Tenants) != 1 {
		t.Fatalf("snapshot = %+v", h)
	}
	th := h.Tenants[0]
	if th.Tenant != "A" || th.Last.Ops != 10 || len(th.Firing) != 1 || th.Firing[0] != "p99" {
		t.Errorf("tenant health = %+v", th)
	}
}

func TestNilMonitorSafe(t *testing.T) {
	var m *Monitor
	m.RecordOp(0, "A", "read", 0, 0, false)
	m.RecordWait(0, time.Millisecond, "A", "B")
	m.Tick(time.Second)
	m.Finalize(time.Second)
	m.SetAdmissionProbe(nil)
	if m.Windows() != nil || m.Alerts() != nil || m.Totals() != nil {
		t.Error("nil monitor returned data")
	}
	if h := m.Snapshot(time.Second); h.ActiveAlerts != 0 || len(h.Tenants) != 0 {
		t.Error("nil snapshot not zero")
	}
	var buf bytes.Buffer
	if err := m.WriteWindowsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteAlertsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteTotalsCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestExportDeterminism(t *testing.T) {
	run := func() (string, string, string) {
		m := New(Config{FastWindow: time.Second, SlowWindow: 3 * time.Second, SLOs: []SLO{alertSLO()}})
		for w := int64(0); w < 6; w++ {
			base := time.Duration(w) * time.Second
			lat := time.Millisecond
			if w >= 2 && w <= 3 {
				lat = 50 * time.Millisecond
			}
			for i := 0; i < 8; i++ {
				m.RecordOp(base+time.Duration(i+1)*100*time.Millisecond, "A", "read", lat, 512, false)
				m.RecordOp(base+time.Duration(i+1)*100*time.Millisecond, "B", "write", lat/2, 256, i == 0)
			}
			m.RecordWait(base+500*time.Millisecond, 2*time.Millisecond, "A", "B")
		}
		m.Finalize(6 * time.Second)
		var w1, w2, w3 bytes.Buffer
		if err := m.WriteWindowsCSV(&w1); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteAlertsCSV(&w2); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteTotalsCSV(&w3); err != nil {
			t.Fatal(err)
		}
		return w1.String(), w2.String(), w3.String()
	}
	a1, a2, a3 := run()
	b1, b2, b3 := run()
	if a1 != b1 || a2 != b2 || a3 != b3 {
		t.Fatal("exports differ across identical runs")
	}
	if len(a2) <= len("t_us,tenant,slo,state,fast_burn,slow_burn\n") {
		t.Fatal("alert ledger empty — scenario should fire")
	}
}

func TestWindowRingEviction(t *testing.T) {
	m := New(Config{FastWindow: time.Second, MaxWindows: 4})
	for w := int64(0); w < 10; w++ {
		m.RecordOp(time.Duration(w)*time.Second+time.Millisecond, "A", "read", time.Millisecond, 1, false)
	}
	m.Finalize(10 * time.Second)
	if len(m.Windows()) != 4 {
		t.Fatalf("retained = %d, want 4", len(m.Windows()))
	}
	if m.EvictedWindows() != 6 {
		t.Fatalf("evicted = %d, want 6", m.EvictedWindows())
	}
	// Totals survive eviction.
	tot := m.Totals()
	if len(tot) != 1 || tot[0].Ops != 10 {
		t.Fatalf("totals after eviction = %+v", tot)
	}
}

func TestCSVFieldQuoting(t *testing.T) {
	cases := map[string]string{
		"plain":    "plain",
		"a,b":      `"a,b"`,
		`q"uote`:   `"q""uote"`,
		"nl\nhere": "\"nl\nhere\"",
	}
	for in, want := range cases {
		if got := csvField(in); got != want {
			t.Errorf("csvField(%q) = %q, want %q", in, got, want)
		}
	}
}

// Package telemetry is a deterministic, virtual-time streaming
// telemetry layer. It consumes the obs span/op stream (fed by
// core.AttachMonitor through obs telemetry sinks) and maintains, online,
// per-tenant windowed aggregates — op/byte/error rates, log-linear
// latency sketches with p50/p99/p999, admission queue depths and sheds,
// and a victim×aggressor interference snapshot — plus per-tenant SLO
// monitors with multi-window burn-rate alerting and a Snapshot() health
// API, the sensor interface for a future adaptive controller.
//
// Determinism contract: the Monitor never reads a wall clock or any
// clock at all — every method takes the current virtual time, and
// ingestion uses event-carried completion times. All iteration that
// produces output is over sorted keys, so windows CSV, alert ledger,
// and Snapshot are byte-identical across runs of the same scenario and
// seed. A nil *Monitor is a no-op on every method, matching the obs
// zero-overhead-when-disabled contract.
package telemetry

import (
	"sort"
	"time"
)

// Config parameterises a Monitor. Zero values pick defaults.
type Config struct {
	// FastWindow is the tumbling aggregation window (default 1s of
	// virtual time). All rates, sketches, and the fast SLO burn window
	// use it.
	FastWindow time.Duration
	// SlowWindow is the rolling confirmation window for burn-rate
	// alerting (default 60s). It is rounded up to a whole number of
	// fast windows.
	SlowWindow time.Duration
	// SampleInterval > 0 asks the host (core.AttachMonitor) to install
	// a periodic engine ticker driving Tick. The Monitor itself never
	// schedules anything; with SampleInterval == 0 it is purely
	// event-driven and contributes zero engine events.
	SampleInterval time.Duration
	// MaxWindows bounds the retained window-row ring (default 16384
	// rows). Older rows are evicted; running totals are unaffected.
	MaxWindows int
	// SLOs to monitor. Specs with Tenant == "" are instantiated lazily
	// per observed tenant.
	SLOs []SLO
}

// AdmissionSample is one tenant's admission-control state, reported by
// the probe installed with SetAdmissionProbe.
type AdmissionSample struct {
	Tenant string
	Queued int    // instantaneous queue depth
	Shed   uint64 // cumulative sheds since start
}

// WindowRow is one tenant's aggregate over one closed fast window.
type WindowRow struct {
	Index  int64         // window ordinal: Start / FastWindow
	Start  time.Duration // virtual time
	End    time.Duration
	Tenant string

	Ops    uint64
	Errors uint64
	Bytes  int64

	P50  time.Duration
	P99  time.Duration
	P999 time.Duration
	Mean time.Duration

	Queued int    // max sampled admission queue depth in the window
	Shed   uint64 // sheds during this window

	TopAggressor     string // tenant charged the most wait time against us
	TopAggressorWait time.Duration
}

// Total is the running per-(tenant, op) sum over all closed windows
// plus the finalized partial window — the exportable counterpart of
// the obs metrics registry, used by the telemetry-consistency fuzz
// invariant.
type Total struct {
	Tenant string
	Op     string
	Ops    uint64
	Errors uint64
	Bytes  int64
	LatSum time.Duration
}

type totKey struct {
	tenant string
	op     string
}

// opAgg accumulates one (tenant, op) pair inside the open window.
type opAgg struct {
	ops    uint64
	errors uint64
	bytes  int64
	latSum time.Duration
}

// tenantWindow is one tenant's open fast window.
type tenantWindow struct {
	ops    uint64
	errors uint64
	bytes  int64
	sketch Sketch
	byOp   map[string]*opAgg

	queued   int // max of probe samples this window
	lastShed uint64
	shed     uint64 // delta accumulated from probe samples

	waitBy map[string]time.Duration // aggressor tenant -> wait charged
}

// Monitor is the streaming telemetry aggregator. Create with New; a
// nil Monitor is safe to call.
type Monitor struct {
	fast  time.Duration
	slowN int
	cfg   Config

	cur     int64 // index of the open fast window
	started bool

	tenants map[string]*tenantWindow
	slos    map[sloKey]*sloState
	totals  map[totKey]*Total

	// SLO arming interval: ops completing before armAt or after
	// disarmAt (when > 0) bypass SLO counting, and the ExpectedOps
	// shortfall penalty applies only to windows fully inside it.
	armAt    time.Duration
	disarmAt time.Duration

	rows    []WindowRow
	evicted int // rows dropped from the front of the ring

	lastRow map[string]WindowRow // most recent closed row per tenant

	probe func() []AdmissionSample

	alerts    []AlertEvent
	finalized bool
}

// New builds a Monitor from cfg.
func New(cfg Config) *Monitor {
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = time.Second
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = 60 * time.Second
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = 16384
	}
	slowN := int((cfg.SlowWindow + cfg.FastWindow - 1) / cfg.FastWindow)
	if slowN < 1 {
		slowN = 1
	}
	cfg.SLOs = append([]SLO(nil), cfg.SLOs...)
	m := &Monitor{
		fast:    cfg.FastWindow,
		slowN:   slowN,
		cfg:     cfg,
		tenants: make(map[string]*tenantWindow),
		slos:    make(map[sloKey]*sloState),
		totals:  make(map[totKey]*Total),
		lastRow: make(map[string]WindowRow),
	}
	for i := range m.cfg.SLOs {
		spec := m.cfg.SLOs[i].withDefaults()
		m.cfg.SLOs[i] = spec
		if spec.Tenant != "" {
			k := sloKey{slo: spec.Name, tenant: spec.Tenant}
			m.slos[k] = newSLOState(spec, spec.Tenant, slowN)
		}
	}
	return m
}

// SampleInterval reports the configured ticker interval (0 = none).
// Safe on nil.
func (m *Monitor) SampleInterval() time.Duration {
	if m == nil {
		return 0
	}
	return m.cfg.SampleInterval
}

// ArmSLOs restricts SLO counting to ops completing in [from, until]
// (until == 0 means no upper bound): warmup, preparation, and
// post-measurement drain traffic still land in the windowed aggregates,
// but the alert ledger reflects only the measured interval — the
// telemetry equivalent of a maintenance window. The ExpectedOps
// shortfall penalty likewise applies only to windows fully inside the
// armed interval, so idle time outside it does not read as an outage.
// Safe on nil.
func (m *Monitor) ArmSLOs(from, until time.Duration) {
	if m == nil {
		return
	}
	m.armAt, m.disarmAt = from, until
}

// armed reports whether the window [start, end] lies inside the SLO
// arming interval.
func (m *Monitor) armed(start, end time.Duration) bool {
	return start >= m.armAt && (m.disarmAt == 0 || end <= m.disarmAt)
}

// SetAdmissionProbe installs a callback enumerating per-tenant
// admission state. It is invoked at window closes and ticks; it must
// be deterministic (sorted output not required — samples are keyed by
// tenant).
func (m *Monitor) SetAdmissionProbe(probe func() []AdmissionSample) {
	if m == nil {
		return
	}
	m.probe = probe
}

func (m *Monitor) window(tenant string) *tenantWindow {
	w := m.tenants[tenant]
	if w == nil {
		w = &tenantWindow{byOp: make(map[string]*opAgg), waitBy: make(map[string]time.Duration)}
		m.tenants[tenant] = w
		// Lazily instantiate per-tenant SLO monitors.
		for _, spec := range m.cfg.SLOs {
			if spec.Tenant != "" {
				continue
			}
			k := sloKey{slo: spec.Name, tenant: tenant}
			if _, ok := m.slos[k]; !ok {
				m.slos[k] = newSLOState(spec, tenant, m.slowN)
			}
		}
	}
	return w
}

// advance closes every fast window strictly before the one containing
// now. Event times arrive in engine order, so now is monotone.
func (m *Monitor) advance(now time.Duration) {
	idx := int64(now / m.fast)
	if !m.started {
		m.cur = idx
		m.started = true
		return
	}
	for m.cur < idx {
		m.closeWindow((m.cur + 1) * int64(m.fast))
		m.cur++
	}
}

// RecordOp ingests one completed VFS op. now is the op's virtual
// completion time; err covers both real failures and admission sheds
// (shed ops surface as errored OpEvents). Safe on nil.
func (m *Monitor) RecordOp(now time.Duration, tenant, op string, latency time.Duration, bytes int64, err bool) {
	if m == nil || m.finalized {
		return
	}
	m.advance(now)
	w := m.window(tenant)
	w.ops++
	w.bytes += bytes
	if err {
		w.errors++
	}
	w.sketch.Record(latency)
	a := w.byOp[op]
	if a == nil {
		a = &opAgg{}
		w.byOp[op] = a
	}
	a.ops++
	a.bytes += bytes
	a.latSum += latency
	if err {
		a.errors++
	}
	if now < m.armAt || (m.disarmAt > 0 && now > m.disarmAt) {
		return
	}
	for _, spec := range m.cfg.SLOs {
		t := spec.Tenant
		if t == "" {
			t = tenant
		} else if t != tenant {
			continue
		}
		if st := m.slos[sloKey{slo: spec.Name, tenant: t}]; st != nil {
			st.record(op, latency, err)
		}
	}
}

// RecordWait charges dur of lock/resource wait suffered by victim to
// aggressor, feeding the live interference snapshot. Safe on nil.
func (m *Monitor) RecordWait(now time.Duration, dur time.Duration, victim, aggressor string) {
	if m == nil || m.finalized || dur <= 0 {
		return
	}
	if victim == "" || aggressor == "" || victim == aggressor {
		return
	}
	m.advance(now)
	m.window(victim).waitBy[aggressor] += dur
}

// Tick advances the window grid to now and samples the admission
// probe. Driven by the optional engine ticker (SampleInterval > 0);
// never required for correctness, only for closing windows during
// event gaps and catching intra-window queue-depth peaks. Safe on nil.
func (m *Monitor) Tick(now time.Duration) {
	if m == nil || m.finalized {
		return
	}
	m.advance(now)
	m.sampleAdmission()
}

func (m *Monitor) sampleAdmission() {
	if m.probe == nil {
		return
	}
	for _, s := range m.probe() {
		w := m.window(s.Tenant)
		if s.Queued > w.queued {
			w.queued = s.Queued
		}
		if s.Shed > w.lastShed {
			w.shed += s.Shed - w.lastShed
			w.lastShed = s.Shed
		}
	}
}

// closeWindow emits one WindowRow per tenant with activity, folds the
// window into the running totals, and evaluates every SLO monitor.
// Note: the admission probe is NOT sampled here. Windows close lazily
// when a later event arrives, so the probe's state at close time may
// already reflect activity past the window boundary; sampling it would
// smear that activity into the old window. Only Tick (in-window) and
// Finalize (before advancing) sample the probe.
func (m *Monitor) closeWindow(endUnits int64) {
	end := time.Duration(endUnits)
	start := end - m.fast

	names := make([]string, 0, len(m.tenants))
	for name := range m.tenants {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		w := m.tenants[name]
		if w.ops == 0 && w.shed == 0 && len(w.waitBy) == 0 {
			continue
		}
		row := WindowRow{
			Index:  int64(start / m.fast),
			Start:  start,
			End:    end,
			Tenant: name,
			Ops:    w.ops,
			Errors: w.errors,
			Bytes:  w.bytes,
			P50:    w.sketch.Quantile(0.50),
			P99:    w.sketch.Quantile(0.99),
			P999:   w.sketch.Quantile(0.999),
			Mean:   w.sketch.Mean(),
			Queued: w.queued,
			Shed:   w.shed,
		}
		for agg, wait := range w.waitBy {
			if wait > row.TopAggressorWait ||
				(wait == row.TopAggressorWait && wait > 0 && agg < row.TopAggressor) {
				row.TopAggressor = agg
				row.TopAggressorWait = wait
			}
		}
		for op, a := range w.byOp {
			k := totKey{tenant: name, op: op}
			t := m.totals[k]
			if t == nil {
				t = &Total{Tenant: name, Op: op}
				m.totals[k] = t
			}
			t.Ops += a.ops
			t.Errors += a.errors
			t.Bytes += a.bytes
			t.LatSum += a.latSum
		}
		m.rows = append(m.rows, row)
		m.lastRow[name] = row

		// Reset in place: keep maps to avoid per-window allocation.
		w.ops, w.errors, w.bytes = 0, 0, 0
		w.sketch.Reset()
		for op := range w.byOp {
			delete(w.byOp, op)
		}
		for agg := range w.waitBy {
			delete(w.waitBy, agg)
		}
		w.queued, w.shed = 0, 0
	}
	if over := len(m.rows) - m.cfg.MaxWindows; over > 0 {
		m.rows = append(m.rows[:0], m.rows[over:]...)
		m.evicted += over
	}

	armed := m.armed(start, end)
	for _, k := range sortedSLOKeys(m.slos) {
		if ev, ok := m.slos[k].closeWindow(end, armed); ok {
			m.alerts = append(m.alerts, ev)
		}
	}
}

// Finalize closes the trailing partial window at now. Idempotent;
// further Record calls are ignored afterwards. Safe on nil.
func (m *Monitor) Finalize(now time.Duration) {
	if m == nil || m.finalized {
		return
	}
	// Sample before advancing so trailing admission deltas land in the
	// window they occurred in rather than a synthetic final one.
	m.sampleAdmission()
	m.advance(now)
	hasOpen := false
	for _, w := range m.tenants {
		if w.ops > 0 || w.shed > 0 || len(w.waitBy) > 0 {
			hasOpen = true
			break
		}
	}
	if hasOpen || m.probe != nil {
		m.closeWindow((m.cur + 1) * int64(m.fast))
	}
	m.finalized = true
}

// Windows returns the retained window rows in emission order. The
// slice is shared; do not mutate. Safe on nil.
func (m *Monitor) Windows() []WindowRow {
	if m == nil {
		return nil
	}
	return m.rows
}

// EvictedWindows reports how many rows were dropped from the ring.
func (m *Monitor) EvictedWindows() int {
	if m == nil {
		return 0
	}
	return m.evicted
}

// Alerts returns the alert ledger in fire/clear order. Safe on nil.
func (m *Monitor) Alerts() []AlertEvent {
	if m == nil {
		return nil
	}
	return m.alerts
}

// Totals returns the per-(tenant, op) running sums over all closed
// windows, sorted by tenant then op. Call after Finalize for the
// sum-of-windows == registry-total invariant. Safe on nil.
func (m *Monitor) Totals() []Total {
	if m == nil {
		return nil
	}
	keys := make([]totKey, 0, len(m.totals))
	for k := range m.totals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tenant != keys[j].tenant {
			return keys[i].tenant < keys[j].tenant
		}
		return keys[i].op < keys[j].op
	})
	out := make([]Total, 0, len(keys))
	for _, k := range keys {
		out = append(out, *m.totals[k])
	}
	return out
}

// TenantHealth is one tenant's state in a health snapshot.
type TenantHealth struct {
	Tenant string
	Last   WindowRow // most recent closed window
	Firing []string  // SLO names currently firing for this tenant
}

// Health is the live view returned by Snapshot — the sensor interface
// for the adaptive controller (ROADMAP item 4).
type Health struct {
	T            time.Duration // virtual time of the snapshot
	WindowsOpen  int64         // index of the open fast window
	Tenants      []TenantHealth
	ActiveAlerts int
}

// Snapshot advances the window grid to now and reports the most recent
// closed window per tenant plus currently-firing alerts. Deterministic
// given a deterministic now. Safe on nil (returns zero Health).
func (m *Monitor) Snapshot(now time.Duration) Health {
	if m == nil {
		return Health{}
	}
	if !m.finalized {
		m.advance(now)
	}
	h := Health{T: now, WindowsOpen: m.cur}
	firing := make(map[string][]string)
	for _, k := range sortedSLOKeys(m.slos) {
		if m.slos[k].state == AlertFiring {
			firing[k.tenant] = append(firing[k.tenant], k.slo)
			h.ActiveAlerts++
		}
	}
	names := make([]string, 0, len(m.lastRow))
	for name := range m.lastRow {
		names = append(names, name)
	}
	for name := range firing {
		if _, ok := m.lastRow[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		h.Tenants = append(h.Tenants, TenantHealth{
			Tenant: name,
			Last:   m.lastRow[name],
			Firing: firing[name],
		})
	}
	return h
}

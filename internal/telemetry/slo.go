package telemetry

import (
	"fmt"
	"sort"
	"time"
)

// SLO declares a per-tenant service-level objective evaluated online by
// the Monitor. Two flavours share one struct:
//
//   - latency SLO: Target > 0; an op is "bad" when its latency exceeds
//     Target (optionally filtered to a single Op name);
//   - error SLO: Target == 0; an op is "bad" when it returns an error.
//
// Budget is the allowed bad fraction (e.g. 0.01 = 1% of ops may be
// bad). The burn rate of a window is badFraction/Budget: burn 1.0
// consumes the budget exactly, burn 10 consumes it 10x too fast.
//
// Alerting uses the classic multi-window scheme: an alert fires only
// when BOTH the fast window (reacts quickly) and the slow window
// (confirms it is not a blip) burn at >= FireBurn, and clears when
// both drop below ClearBurn. Fire/clear transitions are appended to a
// deterministic alert ledger.
type SLO struct {
	Name   string        // ledger label, e.g. "read-p99"
	Tenant string        // "" = instantiate per observed tenant
	Op     string        // "" = all ops, else e.g. "read"
	Target time.Duration // latency threshold; 0 = error-rate SLO

	Budget    float64 // allowed bad fraction, e.g. 0.01
	FireBurn  float64 // fire when fast AND slow burn >= this
	ClearBurn float64 // clear when fast AND slow burn < this
	MinOps    uint64  // ignore fast windows with fewer ops

	// ExpectedOps, when > 0, is the baseline number of completions
	// expected per fast window (typically a fraction of the unloaded
	// rate). A shortfall counts the missing completions as bad events: a
	// fully starved victim completes almost nothing, so a purely
	// volume-weighted latency burn would read near zero exactly when the
	// service is at its worst — silence must burn budget, not bank it.
	// The penalty applies only inside the armed interval (ArmSLOs), so
	// idle periods before warmup or after the workload stops do not
	// read as outages.
	ExpectedOps uint64
}

func (s SLO) withDefaults() SLO {
	if s.Budget <= 0 {
		s.Budget = 0.01
	}
	if s.FireBurn <= 0 {
		s.FireBurn = 10
	}
	if s.ClearBurn <= 0 {
		s.ClearBurn = 1
	}
	if s.MinOps == 0 {
		s.MinOps = 1
	}
	return s
}

// AlertState is the lifecycle state of one (SLO, tenant) monitor.
type AlertState int

const (
	AlertClear AlertState = iota
	AlertFiring
)

func (s AlertState) String() string {
	if s == AlertFiring {
		return "firing"
	}
	return "clear"
}

// AlertEvent is one fire or clear transition in the alert ledger.
type AlertEvent struct {
	T        time.Duration // virtual time of the window close that flipped state
	Tenant   string
	SLO      string
	State    AlertState
	FastBurn float64 // burn rates at the transition
	SlowBurn float64
}

func (e AlertEvent) String() string {
	return fmt.Sprintf("%12v %-10s %-14s %-6s fast=%.2f slow=%.2f",
		e.T, e.Tenant, e.SLO, e.State, e.FastBurn, e.SlowBurn)
}

// sloCounts is the exact bad/total tally for one fast window. Bad ops
// are counted at ingestion against the SLO target, never re-derived
// from the latency sketch, so burn rates are exact.
type sloCounts struct {
	total uint64
	bad   uint64
}

// sloState tracks one (SLO, tenant) pair: the open fast window's
// counts plus a ring of the most recent closed fast windows that
// together form the slow window.
type sloState struct {
	spec   SLO
	tenant string

	open sloCounts   // accumulating fast window
	ring []sloCounts // closed fast windows, ring[head] = oldest
	head int
	n    int // populated entries

	slow  sloCounts // running sum over ring
	state AlertState
}

func newSLOState(spec SLO, tenant string, slowN int) *sloState {
	if slowN < 1 {
		slowN = 1
	}
	return &sloState{spec: spec, tenant: tenant, ring: make([]sloCounts, slowN)}
}

func (s *sloState) record(op string, latency time.Duration, err bool) {
	if s.spec.Op != "" && s.spec.Op != op {
		return
	}
	s.open.total++
	if s.spec.Target > 0 {
		if latency > s.spec.Target {
			s.open.bad++
		}
	} else if err {
		s.open.bad++
	}
}

func burn(c sloCounts, budget float64) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.bad) / float64(c.total) / budget
}

// closeWindow folds the open fast window into the slow ring and
// evaluates the alert condition. armed reports whether the window lies
// inside the SLO arming interval; the ExpectedOps shortfall penalty is
// applied only then. It returns a transition event when the state
// flips, with ok=false otherwise.
func (s *sloState) closeWindow(end time.Duration, armed bool) (AlertEvent, bool) {
	fast := s.open
	s.open = sloCounts{}
	if armed && s.spec.ExpectedOps > 0 && fast.total < s.spec.ExpectedOps {
		fast.bad += s.spec.ExpectedOps - fast.total
		fast.total = s.spec.ExpectedOps
	}

	if s.n == len(s.ring) {
		old := s.ring[s.head]
		s.slow.total -= old.total
		s.slow.bad -= old.bad
	} else {
		s.n++
	}
	s.ring[s.head] = fast
	s.head = (s.head + 1) % len(s.ring)
	s.slow.total += fast.total
	s.slow.bad += fast.bad

	fb := burn(fast, s.spec.Budget)
	sb := burn(s.slow, s.spec.Budget)

	switch s.state {
	case AlertClear:
		if fast.total >= s.spec.MinOps && fb >= s.spec.FireBurn && sb >= s.spec.FireBurn {
			s.state = AlertFiring
			return AlertEvent{T: end, Tenant: s.tenant, SLO: s.spec.Name, State: AlertFiring, FastBurn: fb, SlowBurn: sb}, true
		}
	case AlertFiring:
		if fb < s.spec.ClearBurn && sb < s.spec.ClearBurn {
			s.state = AlertClear
			return AlertEvent{T: end, Tenant: s.tenant, SLO: s.spec.Name, State: AlertClear, FastBurn: fb, SlowBurn: sb}, true
		}
	}
	return AlertEvent{}, false
}

// sloKey orders (slo, tenant) states deterministically.
type sloKey struct {
	slo    string
	tenant string
}

func sortedSLOKeys(m map[sloKey]*sloState) []sloKey {
	keys := make([]sloKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].slo != keys[j].slo {
			return keys[i].slo < keys[j].slo
		}
		return keys[i].tenant < keys[j].tenant
	})
	return keys
}

package telemetry

import (
	"testing"
	"time"
)

// BenchmarkTelemetryWindow measures the live-aggregation hot path: ops
// streaming through tumbling windows with an SLO monitor attached,
// including the window-close work (sketch quantiles, totals fold, SLO
// evaluation). One iteration = one recorded op; windows close every
// 1000 ops. Gated by benchguard via ci/bench-baseline.txt.
func BenchmarkTelemetryWindow(b *testing.B) {
	m := New(Config{
		FastWindow: time.Millisecond,
		SlowWindow: 60 * time.Millisecond,
		MaxWindows: 64,
		SLOs:       []SLO{{Name: "p99", Target: 10 * time.Microsecond, Budget: 0.01}},
	})
	lat := []time.Duration{3 * time.Microsecond, 8 * time.Microsecond, 15 * time.Microsecond, 40 * time.Microsecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := time.Duration(i) * time.Microsecond
		m.RecordOp(now, "bench", "read", lat[i&3], 4096, i&63 == 0)
	}
}

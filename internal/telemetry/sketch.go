package telemetry

import (
	"math"
	"math/bits"
	"time"
)

// Sketch is a compact log-linear latency sketch: 8 sub-buckets per
// power of two (~12% relative error), sized for one live aggregation
// window rather than a whole run. Unlike metrics.Histogram it tracks
// the touched bucket range so Reset costs O(buckets used this window),
// keeping the per-window churn of the streaming monitor flat even when
// thousands of windows close over a long run.
type Sketch struct {
	buckets [sketchBuckets]uint32
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	lo, hi  int // touched index bounds (inclusive), lo > hi when empty
}

const (
	sketchSub     = 8
	sketchBuckets = 62 * sketchSub
)

func sketchIndex(v int64) int {
	if v < sketchSub {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	sub := int((v >> (uint(exp) - 3)) & (sketchSub - 1))
	idx := (exp-2)*sketchSub + sub
	if idx >= sketchBuckets {
		idx = sketchBuckets - 1
	}
	return idx
}

func sketchValue(idx int) int64 {
	if idx < sketchSub {
		return int64(idx)
	}
	exp := idx/sketchSub + 2
	sub := idx % sketchSub
	if exp >= 63 {
		return math.MaxInt64
	}
	return (1 << uint(exp)) | (int64(sub) << uint(exp-3))
}

// Record adds one sample.
func (s *Sketch) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := sketchIndex(int64(d))
	if s.count == 0 {
		s.lo, s.hi = idx, idx
		s.min, s.max = d, d
	} else {
		if idx < s.lo {
			s.lo = idx
		}
		if idx > s.hi {
			s.hi = idx
		}
		if d < s.min {
			s.min = d
		}
		if d > s.max {
			s.max = d
		}
	}
	s.buckets[idx]++
	s.count++
	s.sum += d
}

// Count returns the number of samples.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the total of all samples.
func (s *Sketch) Sum() time.Duration { return s.sum }

// Mean returns the average sample, or 0 when empty.
func (s *Sketch) Mean() time.Duration {
	if s.count == 0 {
		return 0
	}
	return s.sum / time.Duration(s.count)
}

// Quantile returns the q-quantile (e.g. 0.99 for p99), clamped to
// [min, max] so single-bucket sketches report exact values. Empty
// sketches return 0.
func (s *Sketch) Quantile(q float64) time.Duration {
	if s.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.count)))
	if target == 0 {
		target = 1
	}
	if target >= s.count {
		return s.max
	}
	var seen uint64
	for i := s.lo; i <= s.hi; i++ {
		seen += uint64(s.buckets[i])
		if seen >= target {
			v := time.Duration(sketchValue(i))
			if v > s.max {
				v = s.max
			}
			if v < s.min {
				v = s.min
			}
			return v
		}
	}
	return s.max
}

// Reset clears the sketch, touching only the buckets used since the
// last reset.
func (s *Sketch) Reset() {
	if s.count == 0 {
		return
	}
	for i := s.lo; i <= s.hi; i++ {
		s.buckets[i] = 0
	}
	s.count, s.sum, s.min, s.max = 0, 0, 0, 0
	s.lo, s.hi = 1, 0
}

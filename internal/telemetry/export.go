package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// WriteWindowsCSV writes the retained window rows as deterministic
// CSV. Durations are integer microseconds so files are byte-identical
// across runs of the same scenario and seed. Safe on nil (writes only
// the header).
func (m *Monitor) WriteWindowsCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "index,start_us,end_us,tenant,ops,errors,bytes,p50_us,p99_us,p999_us,mean_us,queued,shed,top_aggressor,top_aggressor_wait_us"); err != nil {
		return err
	}
	for _, r := range m.Windows() {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d\n",
			r.Index, r.Start.Microseconds(), r.End.Microseconds(), csvField(r.Tenant),
			r.Ops, r.Errors, r.Bytes,
			r.P50.Microseconds(), r.P99.Microseconds(), r.P999.Microseconds(), r.Mean.Microseconds(),
			r.Queued, r.Shed,
			csvField(r.TopAggressor), r.TopAggressorWait.Microseconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteAlertsCSV writes the alert ledger as deterministic CSV. Safe on
// nil (writes only the header).
func (m *Monitor) WriteAlertsCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "t_us,tenant,slo,state,fast_burn,slow_burn"); err != nil {
		return err
	}
	for _, e := range m.Alerts() {
		if _, err := fmt.Fprintf(bw, "%d,%s,%s,%s,%.4f,%.4f\n",
			e.T.Microseconds(), csvField(e.Tenant), csvField(e.SLO), e.State,
			e.FastBurn, e.SlowBurn); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTotalsCSV writes the per-(tenant, op) running totals — the
// sum-of-windows side of the telemetry-consistency invariant. Safe on
// nil (writes only the header).
func (m *Monitor) WriteTotalsCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "tenant,op,ops,errors,bytes,lat_sum_us"); err != nil {
		return err
	}
	for _, t := range m.Totals() {
		if _, err := fmt.Fprintf(bw, "%s,%s,%d,%d,%d,%d\n",
			csvField(t.Tenant), csvField(t.Op), t.Ops, t.Errors, t.Bytes, t.LatSum.Microseconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// csvField quotes a field only when it contains a comma, quote, or
// newline, matching the quoting used by the other exporters.
func csvField(s string) string {
	needs := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ',', '"', '\n', '\r':
			needs = true
		}
	}
	if !needs {
		return s
	}
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			out = append(out, '"', '"')
		} else {
			out = append(out, s[i])
		}
	}
	out = append(out, '"')
	return string(out)
}

package nstree

import (
	"errors"
	"testing"

	"repro/internal/vfsapi"
)

func TestCreateLookupUnlink(t *testing.T) {
	tr := New()
	if err := tr.MkdirAll("/a/b", 0); err != nil {
		t.Fatal(err)
	}
	n, err := tr.Create("/a/b/f.txt", 5)
	if err != nil {
		t.Fatal(err)
	}
	n.Size = 123
	got, err := tr.Lookup("/a/b/f.txt")
	if err != nil || got.Size != 123 || got.Dir {
		t.Fatalf("lookup: %v %+v", err, got)
	}
	if _, err := tr.Create("/a/b/f.txt", 0); !errors.Is(err, vfsapi.ErrExist) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := tr.Unlink("/a/b/f.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Lookup("/a/b/f.txt"); !errors.Is(err, vfsapi.ErrNotExist) {
		t.Fatalf("lookup after unlink: %v", err)
	}
}

func TestLookupErrors(t *testing.T) {
	tr := New()
	if _, err := tr.Lookup("/missing"); !errors.Is(err, vfsapi.ErrNotExist) {
		t.Fatalf("got %v", err)
	}
	tr.Create("/file", 0)
	if _, err := tr.Lookup("/file/below"); !errors.Is(err, vfsapi.ErrNotDir) {
		t.Fatalf("descend through file: %v", err)
	}
	if _, err := tr.Create("/no/such/dir/f", 0); !errors.Is(err, vfsapi.ErrNotExist) {
		t.Fatalf("create under missing dir: %v", err)
	}
	if _, err := tr.Unlink("/"); !errors.Is(err, vfsapi.ErrExist) {
		t.Fatalf("unlink root: %v", err)
	}
}

func TestMkdirAllIdempotentAndConflicts(t *testing.T) {
	tr := New()
	if err := tr.MkdirAll("/x/y/z", 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.MkdirAll("/x/y/z", 0); err != nil {
		t.Fatalf("idempotent MkdirAll: %v", err)
	}
	tr.Create("/x/y/file", 0)
	if err := tr.MkdirAll("/x/y/file/sub", 0); !errors.Is(err, vfsapi.ErrNotDir) {
		t.Fatalf("MkdirAll through file: %v", err)
	}
}

func TestRmdir(t *testing.T) {
	tr := New()
	tr.MkdirAll("/d/sub", 0)
	if err := tr.Rmdir("/d"); !errors.Is(err, vfsapi.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := tr.Rmdir("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	tr.Create("/f", 0)
	if err := tr.Rmdir("/f"); !errors.Is(err, vfsapi.ErrNotDir) {
		t.Fatalf("rmdir file: %v", err)
	}
}

func TestRenamePreservesInoAndSize(t *testing.T) {
	tr := New()
	tr.MkdirAll("/a", 0)
	tr.MkdirAll("/b", 0)
	n, _ := tr.Create("/a/f", 0)
	n.Size = 77
	ino := n.Ino
	if err := tr.Rename("/a/f", "/b/g", 9); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Lookup("/a/f"); !errors.Is(err, vfsapi.ErrNotExist) {
		t.Fatal("old path still present")
	}
	got, err := tr.Lookup("/b/g")
	if err != nil || got.Size != 77 || got.Ino != ino || got.MTime != 9 {
		t.Fatalf("renamed node: %v %+v", err, got)
	}
}

func TestRenameOverwritesFileNotDir(t *testing.T) {
	tr := New()
	tr.Create("/src", 0)
	tr.Create("/dst", 0)
	if err := tr.Rename("/src", "/dst", 0); err != nil {
		t.Fatalf("rename over file: %v", err)
	}
	tr.Create("/src2", 0)
	tr.MkdirAll("/dir", 0)
	if err := tr.Rename("/src2", "/dir", 0); !errors.Is(err, vfsapi.ErrIsDir) {
		t.Fatalf("rename over dir: %v", err)
	}
}

func TestReaddirSorted(t *testing.T) {
	tr := New()
	tr.MkdirAll("/d", 0)
	for _, name := range []string{"/d/zeta", "/d/alpha", "/d/mid"} {
		tr.Create(name, 0)
	}
	tr.MkdirAll("/d/sub", 0)
	ents, err := tr.Readdir("/d")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "sub", "zeta"}
	if len(ents) != len(want) {
		t.Fatalf("entries = %v", ents)
	}
	for i, e := range ents {
		if e.Name != want[i] {
			t.Fatalf("entries = %v, want %v", ents, want)
		}
		if e.Name == "sub" && !e.IsDir {
			t.Fatal("sub should be a dir")
		}
	}
	if _, err := tr.Readdir("/d/alpha"); !errors.Is(err, vfsapi.ErrNotDir) {
		t.Fatalf("readdir file: %v", err)
	}
}

func TestWalkVisitsAll(t *testing.T) {
	tr := New()
	tr.MkdirAll("/a/b", 0)
	tr.Create("/a/b/f1", 0)
	tr.Create("/a/f2", 0)
	var paths []string
	if err := tr.Walk("/", func(p string, n *Node) {
		paths = append(paths, p)
	}); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"": true, "/a": true, "/a/b": true, "/a/b/f1": true, "/a/f2": true}
	if len(paths) != len(want) {
		t.Fatalf("walk visited %v", paths)
	}
	for _, p := range paths {
		if !want[p] {
			t.Fatalf("unexpected path %q in %v", p, paths)
		}
	}
}

func TestSplitAndDepth(t *testing.T) {
	if d := Depth("/a//b/./c/"); d != 3 {
		t.Fatalf("Depth = %d, want 3", d)
	}
	if got := Split("/"); len(got) != 0 {
		t.Fatalf("Split(/) = %v", got)
	}
}

func TestUniqueInos(t *testing.T) {
	tr := New()
	tr.MkdirAll("/d", 0)
	seen := map[uint64]bool{}
	for _, p := range []string{"/d/a", "/d/b", "/d/c"} {
		n, err := tr.Create(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[n.Ino] {
			t.Fatalf("duplicate ino %d", n.Ino)
		}
		seen[n.Ino] = true
	}
}

func TestRenameIntoOwnSubtreeAndRoot(t *testing.T) {
	tr := New()
	tr.MkdirAll("/a/b", 0)
	// Renaming the root is rejected.
	if err := tr.Rename("/", "/c", 0); !errors.Is(err, vfsapi.ErrExist) {
		t.Fatalf("rename root: %v", err)
	}
	// Rename a directory into another directory.
	tr.MkdirAll("/dst", 0)
	if err := tr.Rename("/a/b", "/dst/b", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Lookup("/dst/b"); err != nil {
		t.Fatal("renamed dir missing")
	}
}

// Package nstree implements the hierarchical namespace shared by the
// simulated metadata stores: the MDS of the Ceph cluster and the local
// ext4-like filesystem both manage their files with a Tree.
package nstree

import (
	"sort"
	"strings"
	"time"

	"repro/internal/vfsapi"
)

// Node is a file or directory in the namespace.
type Node struct {
	Name     string
	Dir      bool
	Size     int64
	MTime    time.Duration
	Children map[string]*Node // directories only

	// Ino is a unique identifier assigned at creation, stable across
	// renames (used as the cache key by clients).
	Ino uint64
}

// Tree is a rooted namespace with POSIX-style path operations.
type Tree struct {
	root    *Node
	nextIno uint64
}

// New creates a tree with an empty root directory.
func New() *Tree {
	t := &Tree{}
	t.root = &Node{Name: "/", Dir: true, Children: map[string]*Node{}, Ino: t.ino()}
	return t
}

func (t *Tree) ino() uint64 {
	t.nextIno++
	return t.nextIno
}

// Split normalizes a path into its components, ignoring empty segments.
func Split(path string) []string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" && p != "." {
			out = append(out, p)
		}
	}
	return out
}

// Depth returns the number of components in path (lookup cost scales
// with it).
func Depth(path string) int { return len(Split(path)) }

// Lookup resolves path to a node.
func (t *Tree) Lookup(path string) (*Node, error) {
	n := t.root
	for _, part := range Split(path) {
		if !n.Dir {
			return nil, vfsapi.ErrNotDir
		}
		child, ok := n.Children[part]
		if !ok {
			return nil, vfsapi.ErrNotExist
		}
		n = child
	}
	return n, nil
}

// lookupParent resolves the parent directory of path and returns it
// with the final component.
func (t *Tree) lookupParent(path string) (*Node, string, error) {
	parts := Split(path)
	if len(parts) == 0 {
		return nil, "", vfsapi.ErrExist // operating on the root
	}
	n := t.root
	for _, part := range parts[:len(parts)-1] {
		child, ok := n.Children[part]
		if !ok {
			return nil, "", vfsapi.ErrNotExist
		}
		if !child.Dir {
			return nil, "", vfsapi.ErrNotDir
		}
		n = child
	}
	return n, parts[len(parts)-1], nil
}

// Create makes a file node at path, failing if it exists.
func (t *Tree) Create(path string, mtime time.Duration) (*Node, error) {
	parent, name, err := t.lookupParent(path)
	if err != nil {
		return nil, err
	}
	if _, ok := parent.Children[name]; ok {
		return nil, vfsapi.ErrExist
	}
	n := &Node{Name: name, MTime: mtime, Ino: t.ino()}
	parent.Children[name] = n
	return n, nil
}

// Mkdir makes a directory node at path.
func (t *Tree) Mkdir(path string, mtime time.Duration) (*Node, error) {
	parent, name, err := t.lookupParent(path)
	if err != nil {
		return nil, err
	}
	if _, ok := parent.Children[name]; ok {
		return nil, vfsapi.ErrExist
	}
	n := &Node{Name: name, Dir: true, Children: map[string]*Node{}, MTime: mtime, Ino: t.ino()}
	parent.Children[name] = n
	return n, nil
}

// MkdirAll creates path and any missing ancestors.
func (t *Tree) MkdirAll(path string, mtime time.Duration) error {
	n := t.root
	for _, part := range Split(path) {
		child, ok := n.Children[part]
		if !ok {
			child = &Node{Name: part, Dir: true, Children: map[string]*Node{}, MTime: mtime, Ino: t.ino()}
			n.Children[part] = child
		} else if !child.Dir {
			return vfsapi.ErrNotDir
		}
		n = child
	}
	return nil
}

// Unlink removes the file at path.
func (t *Tree) Unlink(path string) (*Node, error) {
	parent, name, err := t.lookupParent(path)
	if err != nil {
		return nil, err
	}
	n, ok := parent.Children[name]
	if !ok {
		return nil, vfsapi.ErrNotExist
	}
	if n.Dir {
		return nil, vfsapi.ErrIsDir
	}
	delete(parent.Children, name)
	return n, nil
}

// Rmdir removes the empty directory at path.
func (t *Tree) Rmdir(path string) error {
	parent, name, err := t.lookupParent(path)
	if err != nil {
		return err
	}
	n, ok := parent.Children[name]
	if !ok {
		return vfsapi.ErrNotExist
	}
	if !n.Dir {
		return vfsapi.ErrNotDir
	}
	if len(n.Children) > 0 {
		return vfsapi.ErrNotEmpty
	}
	delete(parent.Children, name)
	return nil
}

// Rename moves oldPath to newPath, replacing a non-directory target.
func (t *Tree) Rename(oldPath, newPath string, mtime time.Duration) error {
	oldParent, oldName, err := t.lookupParent(oldPath)
	if err != nil {
		return err
	}
	n, ok := oldParent.Children[oldName]
	if !ok {
		return vfsapi.ErrNotExist
	}
	newParent, newName, err := t.lookupParent(newPath)
	if err != nil {
		return err
	}
	if target, ok := newParent.Children[newName]; ok {
		if target.Dir {
			return vfsapi.ErrIsDir
		}
	}
	delete(oldParent.Children, oldName)
	n.Name = newName
	n.MTime = mtime
	newParent.Children[newName] = n
	return nil
}

// Readdir lists the directory at path in sorted order.
func (t *Tree) Readdir(path string) ([]vfsapi.DirEntry, error) {
	n, err := t.Lookup(path)
	if err != nil {
		return nil, err
	}
	if !n.Dir {
		return nil, vfsapi.ErrNotDir
	}
	out := make([]vfsapi.DirEntry, 0, len(n.Children))
	for _, c := range n.Children {
		out = append(out, vfsapi.DirEntry{Name: c.Name, IsDir: c.Dir})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Info converts a node to a FileInfo.
func (n *Node) Info() vfsapi.FileInfo {
	return vfsapi.FileInfo{Name: n.Name, Size: n.Size, IsDir: n.Dir, MTime: n.MTime}
}

// Walk visits every node under path in depth-first order.
func (t *Tree) Walk(path string, fn func(p string, n *Node)) error {
	n, err := t.Lookup(path)
	if err != nil {
		return err
	}
	var rec func(prefix string, n *Node)
	rec = func(prefix string, n *Node) {
		fn(prefix, n)
		if !n.Dir {
			return
		}
		names := make([]string, 0, len(n.Children))
		for name := range n.Children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rec(prefix+"/"+name, n.Children[name])
		}
	}
	base := "/" + strings.Join(Split(path), "/")
	if base == "/" {
		base = ""
	}
	rec(base, n)
	return nil
}

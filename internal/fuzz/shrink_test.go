package fuzz

import (
	"strings"
	"testing"
	"time"
)

// knownBad builds a deliberately fat failing scenario: two three-thread
// tenants, three fault windows, a shared mount and a long window.
func knownBad() Scenario {
	return Scenario{
		Seed:        42,
		Replication: 2,
		SharedMount: true,
		Factor:      0.02,
		CacheFrac:   2,
		Warmup:      10 * time.Millisecond,
		Duration:    120 * time.Millisecond,
		Schedule: "osd-crash:@wal:10ms-20ms;" +
			"net-spike:client:1ms:30ms-50ms;" +
			"mds-stall:60ms-70ms",
		Tenants: []Tenant{
			{Workload: "fileserver", Threads: 3},
			{Workload: "kvput", Threads: 3},
		},
	}
}

// spikeOracle fails any scenario whose schedule still has the
// net-spike window — the one ingredient the "failure" depends on.
func spikeOracle(evals *int) Oracle {
	return func(sc Scenario) []Violation {
		*evals++
		if strings.Contains(sc.Schedule, "net-spike") {
			return []Violation{{Checker: "blame-sum", Detail: "synthetic"}}
		}
		return nil
	}
}

func TestShrinkReducesToMinimalReproducer(t *testing.T) {
	evals := 0
	min := Shrink(knownBad(), "blame-sum", spikeOracle(&evals), 100)

	if len(min.Tenants) != 0 {
		t.Errorf("shrunk scenario keeps %d tenants, want 0", len(min.Tenants))
	}
	windows := min.ScheduleWindows()
	if len(windows) != 1 || !strings.Contains(windows[0], "net-spike") {
		t.Errorf("shrunk schedule %q, want only the net-spike window", min.Schedule)
	}
	if min.Duration != minDuration {
		t.Errorf("shrunk duration %v, want the %v floor", min.Duration, minDuration)
	}
	if min.SharedMount {
		t.Error("shrunk scenario keeps the shared mount")
	}
	if evals > 100 {
		t.Errorf("shrinker spent %d oracle evaluations over its budget of 100", evals)
	}
	// The reduction must preserve the failure.
	if vs := spikeOracle(new(int))(min); len(vs) == 0 {
		t.Error("shrunk scenario no longer fails the oracle")
	}
}

// A different checker failing is not the failure being chased: the
// shrinker must not keep reductions that only fail some other way.
func TestShrinkTracksNamedChecker(t *testing.T) {
	oracle := func(sc Scenario) []Violation {
		if len(sc.Tenants) == 2 {
			return []Violation{{Checker: "span-leak", Detail: "needs both tenants"}}
		}
		return []Violation{{Checker: "blame-sum", Detail: "anything smaller"}}
	}
	min := Shrink(knownBad(), "span-leak", oracle, 100)
	if len(min.Tenants) != 2 {
		t.Fatalf("shrunk to %d tenants; span-leak needed both", len(min.Tenants))
	}
}

func TestHalveSpan(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"osd-crash:@wal:10ms-30ms", "osd-crash:@wal:10ms-20ms", true},
		{"mds-stall:60ms-70ms", "mds-stall:60ms-65ms", true},
		{"net-spike:client:1ms:30ms-50ms", "net-spike:client:1ms:30ms-40ms", true},
		{"host-crash:12ms-14ms", "host-crash:12ms-13ms", true},
		{"host-crash:12ms-13ms", "", false}, // 500µs half is below the floor
		{"nonsense", "", false},
		{"mds-stall:garbage-span", "", false},
	}
	for _, c := range cases {
		got, ok := halveSpan(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("halveSpan(%q) = %q, %v; want %q, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// A crash entry the failure does not depend on must be dropped outright.
func TestShrinkDropsIrrelevantCrash(t *testing.T) {
	sc := knownBad()
	sc.Crash = "fuse-crash:victim:40ms-80ms"
	evals := 0
	min := Shrink(sc, "blame-sum", spikeOracle(&evals), 200)
	if min.Crash != "" {
		t.Errorf("shrunk scenario keeps irrelevant crash %q", min.Crash)
	}
	if !strings.Contains(min.Schedule, "net-spike") {
		t.Errorf("shrunk schedule %q lost the failing ingredient", min.Schedule)
	}
}

// When the crash itself is the failing ingredient the shrinker must keep
// it but minimize everything else — including the crash downtime,
// event-by-event, down to the span floor.
func TestShrinkMinimizesCrashEvent(t *testing.T) {
	sc := knownBad()
	sc.Crash = "fuse-crash:victim:40ms-80ms"
	oracle := func(c Scenario) []Violation {
		if c.Crash != "" {
			return []Violation{{Checker: "crash-consistency", Detail: "synthetic"}}
		}
		return nil
	}
	min := Shrink(sc, "crash-consistency", oracle, 300)
	if min.Crash == "" {
		t.Fatal("shrinker dropped the crash the failure depends on")
	}
	if min.Schedule != "" {
		t.Errorf("shrunk scenario keeps fault schedule %q", min.Schedule)
	}
	if len(min.Tenants) != 0 {
		t.Errorf("shrunk scenario keeps %d tenants", len(min.Tenants))
	}
	before := scheduledFaultTime(sc)
	after := scheduledFaultTime(min)
	if after >= before {
		t.Errorf("crash downtime not minimized: %v -> %v", before, after)
	}
	// 40ms of downtime halves down to the 1ms+ floor well within budget.
	if after > 2*time.Millisecond {
		t.Errorf("crash downtime %v, want at or near the span floor", after)
	}
	if vs := oracle(min); len(vs) == 0 {
		t.Error("shrunk scenario no longer fails the oracle")
	}
}

// With a budget of zero reductions the input comes back unchanged.
func TestShrinkExhaustedBudgetReturnsInput(t *testing.T) {
	sc := knownBad()
	evals := 0
	min := Shrink(sc, "blame-sum", spikeOracle(&evals), 1)
	// One evaluation allowed: the first candidate may be probed but no
	// cascade of reductions can complete, and the result must still
	// fail the oracle.
	if !strings.Contains(min.Schedule, "net-spike") {
		t.Fatalf("budget-starved shrink lost the failing ingredient: %q", min.Schedule)
	}
}

package fuzz

import (
	"strings"
	"testing"
	"time"
)

// knownBad builds a deliberately fat failing scenario: two three-thread
// tenants, three fault windows, a shared mount and a long window.
func knownBad() Scenario {
	return Scenario{
		Seed:        42,
		Replication: 2,
		SharedMount: true,
		Factor:      0.02,
		CacheFrac:   2,
		Warmup:      10 * time.Millisecond,
		Duration:    120 * time.Millisecond,
		Schedule: "osd-crash:@wal:10ms-20ms;" +
			"net-spike:client:1ms:30ms-50ms;" +
			"mds-stall:60ms-70ms",
		Tenants: []Tenant{
			{Workload: "fileserver", Threads: 3},
			{Workload: "kvput", Threads: 3},
		},
	}
}

// spikeOracle fails any scenario whose schedule still has the
// net-spike window — the one ingredient the "failure" depends on.
func spikeOracle(evals *int) Oracle {
	return func(sc Scenario) []Violation {
		*evals++
		if strings.Contains(sc.Schedule, "net-spike") {
			return []Violation{{Checker: "blame-sum", Detail: "synthetic"}}
		}
		return nil
	}
}

func TestShrinkReducesToMinimalReproducer(t *testing.T) {
	evals := 0
	min := Shrink(knownBad(), "blame-sum", spikeOracle(&evals), 100)

	if len(min.Tenants) != 0 {
		t.Errorf("shrunk scenario keeps %d tenants, want 0", len(min.Tenants))
	}
	windows := min.ScheduleWindows()
	if len(windows) != 1 || !strings.Contains(windows[0], "net-spike") {
		t.Errorf("shrunk schedule %q, want only the net-spike window", min.Schedule)
	}
	if min.Duration != minDuration {
		t.Errorf("shrunk duration %v, want the %v floor", min.Duration, minDuration)
	}
	if min.SharedMount {
		t.Error("shrunk scenario keeps the shared mount")
	}
	if evals > 100 {
		t.Errorf("shrinker spent %d oracle evaluations over its budget of 100", evals)
	}
	// The reduction must preserve the failure.
	if vs := spikeOracle(new(int))(min); len(vs) == 0 {
		t.Error("shrunk scenario no longer fails the oracle")
	}
}

// A different checker failing is not the failure being chased: the
// shrinker must not keep reductions that only fail some other way.
func TestShrinkTracksNamedChecker(t *testing.T) {
	oracle := func(sc Scenario) []Violation {
		if len(sc.Tenants) == 2 {
			return []Violation{{Checker: "span-leak", Detail: "needs both tenants"}}
		}
		return []Violation{{Checker: "blame-sum", Detail: "anything smaller"}}
	}
	min := Shrink(knownBad(), "span-leak", oracle, 100)
	if len(min.Tenants) != 2 {
		t.Fatalf("shrunk to %d tenants; span-leak needed both", len(min.Tenants))
	}
}

// With a budget of zero reductions the input comes back unchanged.
func TestShrinkExhaustedBudgetReturnsInput(t *testing.T) {
	sc := knownBad()
	evals := 0
	min := Shrink(sc, "blame-sum", spikeOracle(&evals), 1)
	// One evaluation allowed: the first candidate may be probed but no
	// cascade of reductions can complete, and the result must still
	// fail the oracle.
	if !strings.Contains(min.Schedule, "net-spike") {
		t.Fatalf("budget-starved shrink lost the failing ingredient: %q", min.Schedule)
	}
}

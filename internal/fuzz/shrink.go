package fuzz

import (
	"fmt"
	"strings"
	"time"
)

// Oracle evaluates a scenario and returns its invariant violations.
// The shrinker treats it as a black box; DefaultOracle runs the real
// pipeline.
type Oracle func(Scenario) []Violation

// DefaultOracle runs the scenario through Evaluate and the full
// checker registry.
func DefaultOracle(sc Scenario) []Violation { return CheckAll(Evaluate(sc)) }

// minDuration is the shortest measurement window the shrinker tries.
const minDuration = 30 * time.Millisecond

// Shrink reduces a failing scenario to a smaller reproducer that still
// violates the named checker: it greedily drops tenants, drops and
// bisects fault windows, reduces thread counts, and halves the window,
// re-running the oracle after each candidate and keeping every
// reduction that preserves the failure. budget caps oracle
// evaluations (each is a full scenario pipeline); <= 0 means 100.
func Shrink(sc Scenario, checker string, oracle Oracle, budget int) Scenario {
	if budget <= 0 {
		budget = 100
	}
	still := func(c Scenario) bool {
		if budget <= 0 {
			return false
		}
		budget--
		for _, v := range oracle(c) {
			if v.Checker == checker {
				return true
			}
		}
		return false
	}

	cur := sc
	for pass := 0; pass < 8; pass++ {
		improved := false

		// Drop tenants, last first (indices shift on removal).
		for i := len(cur.Tenants) - 1; i >= 0; i-- {
			cand := cur
			cand.Tenants = append(append([]Tenant{}, cur.Tenants[:i]...), cur.Tenants[i+1:]...)
			if still(cand) {
				cur = cand
				improved = true
			}
		}

		// Drop fault windows one at a time.
		windows := cur.ScheduleWindows()
		for i := len(windows) - 1; i >= 0; i-- {
			rest := append(append([]string{}, windows[:i]...), windows[i+1:]...)
			cand := cur
			cand.Schedule = strings.Join(rest, ";")
			if still(cand) {
				cur = cand
				windows = rest
				improved = true
			}
		}
		// Bisect what remains: try keeping only the first half, then
		// only the second (useful when single drops all fail).
		if n := len(windows); n > 1 {
			for _, half := range [][]string{windows[:n/2], windows[n/2:]} {
				cand := cur
				cand.Schedule = strings.Join(half, ";")
				if still(cand) {
					cur = cand
					windows = cand.ScheduleWindows()
					improved = true
					break
				}
			}
		}
		// Event-level minimization: halve each surviving window's span in
		// place (entries stay textual so "@wal" placeholders survive). A
		// reproducer with a 40ms OSD outage that still fails with 20ms is
		// a faster, sharper artifact.
		windows = cur.ScheduleWindows()
		for i := range windows {
			short, ok := halveSpan(windows[i])
			if !ok {
				continue
			}
			next := append([]string{}, windows...)
			next[i] = short
			cand := cur
			cand.Schedule = strings.Join(next, ";")
			if still(cand) {
				cur = cand
				windows = cand.ScheduleWindows()
				improved = true
			}
		}

		// The crash dimension shrinks like any other fault event: drop it
		// if the failure survives without it, else halve its downtime.
		if cur.Crash != "" {
			cand := cur
			cand.Crash = ""
			if still(cand) {
				cur = cand
				improved = true
			} else if short, ok := halveSpan(cur.Crash); ok {
				cand = cur
				cand.Crash = short
				if still(cand) {
					cur = cand
					improved = true
				}
			}
		}

		// Drop the trace-replay dimension when the failure survives
		// without it (its own checker never does, so determinism
		// reproducers keep the dimension).
		if cur.TraceReplay {
			cand := cur
			cand.TraceReplay = false
			if still(cand) {
				cur = cand
				improved = true
			}
		}

		// Same for the telemetry dimension: its own checker needs it, any
		// other failure shrinks to a monitor-free run.
		if cur.Telemetry {
			cand := cur
			cand.Telemetry = false
			if still(cand) {
				cur = cand
				improved = true
			}
		}

		// Reduce tenant thread counts to one.
		for i := range cur.Tenants {
			if cur.Tenants[i].Threads <= 1 {
				continue
			}
			cand := cur
			cand.Tenants = append([]Tenant{}, cur.Tenants...)
			cand.Tenants[i].Threads = 1
			if still(cand) {
				cur = cand
				improved = true
			}
		}

		// Shorten the run.
		if cur.Duration/2 >= minDuration {
			cand := cur
			cand.Duration = cur.Duration / 2
			if still(cand) {
				cur = cand
				improved = true
			}
		}
		if cur.SharedMount {
			cand := cur
			cand.SharedMount = false
			if still(cand) {
				cur = cand
				improved = true
			}
		}

		// Drop the overload dimension entirely, or failing that halve
		// the offered rate (a lighter aggressor shrinks the run).
		if cur.OfferedLoad > 0 {
			cand := cur
			cand.OfferedLoad, cand.AdmitQueue = 0, 0
			if still(cand) {
				cur = cand
				improved = true
			} else if cur.OfferedLoad >= 200 {
				cand = cur
				cand.OfferedLoad = cur.OfferedLoad / 2
				if still(cand) {
					cur = cand
					improved = true
				}
			}
		}

		if !improved || budget <= 0 {
			break
		}
	}
	return cur
}

// halveSpan rewrites a fault entry's trailing "start-end" span to cover
// only the first half of its duration, leaving everything before the
// last ':' (kind, target, "@wal" placeholders) untouched. Returns false
// when the entry has no parseable span or the span is already too short
// to split cleanly.
func halveSpan(entry string) (string, bool) {
	idx := strings.LastIndex(entry, ":")
	if idx < 0 {
		return "", false
	}
	prefix, span := entry[:idx+1], entry[idx+1:]
	startStr, endStr, ok := strings.Cut(span, "-")
	if !ok {
		return "", false
	}
	start, err1 := time.ParseDuration(startStr)
	end, err2 := time.ParseDuration(endStr)
	if err1 != nil || err2 != nil {
		return "", false
	}
	half := (end - start) / 2
	if half < time.Millisecond {
		return "", false
	}
	return fmt.Sprintf("%s%v-%v", prefix, start, start+half), true
}

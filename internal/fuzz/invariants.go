package fuzz

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/blame"
	"repro/internal/metrics"
)

// Outcome bundles the runs of one scenario for the checkers: the run
// itself, its byte-identical replay, and (when the scenario has
// co-tenants) the solo isolation baseline.
type Outcome struct {
	Scenario Scenario
	Full     *Result
	Replay   *Result
	Solo     *Result
	// TraceRuns holds the two clean-testbed replays of the captured op
	// trace (empty unless the scenario has the TraceReplay dimension).
	TraceRuns []TraceReplayRun
}

// Violation is one invariant breach found in an outcome.
type Violation struct {
	Checker string
	Detail  string
}

func (v Violation) String() string { return v.Checker + ": " + v.Detail }

// Checker is one machine-verifiable invariant run against every
// scenario outcome. Check returns one detail string per breach.
type Checker struct {
	Name  string
	Check func(o *Outcome) []string
}

// Checkers returns the invariant registry, in reporting order.
func Checkers() []Checker {
	return []Checker{
		{Name: "zero-data-loss", Check: checkDataLoss},
		{Name: "blame-sum", Check: checkBlameSum},
		{Name: "span-leak", Check: checkSpanLeak},
		{Name: "replay-determinism", Check: checkReplay},
		{Name: "isolation-bound", Check: checkIsolation},
		{Name: "fault-accounting", Check: checkFaultAccounting},
		{Name: "bounded-queue", Check: checkBoundedQueue},
		{Name: "admission-accounting", Check: checkAdmissionAccounting},
		{Name: "crash-consistency", Check: checkCrashConsistency},
		{Name: "trace-replay-determinism", Check: checkTraceReplay},
		{Name: "telemetry-consistency", Check: checkTelemetry},
	}
}

// checkTelemetry: with the telemetry dimension active, the monitor must
// have seen ops, its windowed per-(tenant, op) sums must equal the
// metrics registry's facade counters exactly (same events, counted once
// each, through two independent pipelines), and the exported telemetry
// artifacts must be byte-identical across the replay.
func checkTelemetry(o *Outcome) []string {
	if !o.Scenario.Telemetry {
		return nil
	}
	var out []string
	for _, lr := range o.runs() {
		label, r := lr.label, lr.res
		if len(r.TelTotals) == 0 {
			out = append(out, label+": telemetry monitor attached but saw no ops")
			continue
		}
		if r.TelWindows == 0 {
			out = append(out, label+": telemetry monitor closed no windows")
		}
		bad := 0
		for _, d := range diffOpCounts(r.TelTotals, r.TelRegistry) {
			bad++
			if bad <= 3 {
				out = append(out, label+": "+d)
			}
		}
		if bad > 3 {
			out = append(out, fmt.Sprintf("%s: ... and %d more telemetry count mismatches", label, bad-3))
		}
	}
	if o.Replay != nil && o.Full.TelHash != o.Replay.TelHash {
		out = append(out, fmt.Sprintf("telemetry artifacts diverged between run and replay: %s vs %s",
			o.Full.TelHash[:12], o.Replay.TelHash[:12]))
	}
	return out
}

// diffOpCounts compares the monitor-side and registry-side aggregates
// entry by entry. Both slices are sorted by (tenant, op), so a merge
// walk names every entry missing from one side as well as every
// counter mismatch.
func diffOpCounts(mon, reg []TelOpCount) []string {
	var out []string
	i, j := 0, 0
	for i < len(mon) || j < len(reg) {
		switch {
		case j >= len(reg) || (i < len(mon) && (mon[i].Tenant < reg[j].Tenant ||
			(mon[i].Tenant == reg[j].Tenant && mon[i].Op < reg[j].Op))):
			out = append(out, fmt.Sprintf("%s/%s: monitor counted %d ops the registry never saw",
				mon[i].Tenant, mon[i].Op, mon[i].Ops))
			i++
		case i >= len(mon) || mon[i].Tenant != reg[j].Tenant || mon[i].Op != reg[j].Op:
			out = append(out, fmt.Sprintf("%s/%s: registry counted %d ops the monitor never saw",
				reg[j].Tenant, reg[j].Op, reg[j].Ops))
			j++
		default:
			if mon[i] != reg[j] {
				out = append(out, fmt.Sprintf("%s/%s: monitor %d ops/%d err/%d B/mean %v != registry %d ops/%d err/%d B/mean %v",
					mon[i].Tenant, mon[i].Op,
					mon[i].Ops, mon[i].Errors, mon[i].Bytes, mon[i].Mean,
					reg[j].Ops, reg[j].Errors, reg[j].Bytes, reg[j].Mean))
			}
			i++
			j++
		}
	}
	return out
}

// checkTraceReplay: with the trace dimension active, the run must have
// captured ops, the rerun must capture a byte-identical trace, and the
// two clean-testbed replays of the capture must produce identical
// schedules while preserving the recorded per-stream op sequence with
// nothing skipped.
func checkTraceReplay(o *Outcome) []string {
	if !o.Scenario.TraceReplay {
		return nil
	}
	var out []string
	if o.Full.TraceOps == 0 {
		out = append(out, "trace capture recorded no ops")
	}
	if o.Replay != nil && o.Full.TraceHash != o.Replay.TraceHash {
		out = append(out, fmt.Sprintf("captured trace diverged between run and rerun: %s vs %s",
			o.Full.TraceHash[:12], o.Replay.TraceHash[:12]))
	}
	if len(o.TraceRuns) == 2 && o.TraceRuns[0].Hash != o.TraceRuns[1].Hash {
		out = append(out, fmt.Sprintf("two replays of one trace produced different schedules: %s vs %s",
			o.TraceRuns[0].Hash[:12], o.TraceRuns[1].Hash[:12]))
	}
	for i, r := range o.TraceRuns {
		if r.Skipped > 0 {
			out = append(out, fmt.Sprintf("replay %d skipped %d ops (unbound tenant)", i, r.Skipped))
		}
		if !r.SequenceOK {
			out = append(out, fmt.Sprintf("replay %d reordered or rewrote the recorded op sequence", i))
		}
	}
	return out
}

// checkCrashConsistency: a scheduled client crash must actually happen
// and recover, and the durability contract must hold across it — the
// WAL size visible through a fresh post-recovery handle covers every
// byte fsync acknowledged. Un-synced appends may vanish (that is the
// crash model), but acknowledged data may not.
func checkCrashConsistency(o *Outcome) []string {
	if o.Scenario.Crash == "" {
		return nil
	}
	var out []string
	for _, lr := range o.runs() {
		label, r := lr.label, lr.res
		if r.CrashEvents == 0 {
			out = append(out, fmt.Sprintf("%s: crash scheduled (%s) but no crash event recorded",
				label, o.Scenario.Crash))
			continue
		}
		if r.CrashRecovered != r.CrashEvents {
			out = append(out, fmt.Sprintf("%s: %d crash(es) but only %d recovered",
				label, r.CrashEvents, r.CrashRecovered))
		}
		if r.CrashAffected == 0 {
			out = append(out, fmt.Sprintf("%s: crash event with empty blast radius", label))
		}
		if r.RemountSize < r.AckedBytes {
			out = append(out, fmt.Sprintf("%s: remounted WAL is %d bytes but fsync acknowledged %d (lost %d acked bytes)",
				label, r.RemountSize, r.AckedBytes, r.AckedBytes-r.RemountSize))
		}
	}
	return out
}

// checkBoundedQueue: no pool's admission queue may ever exceed its
// configured cap — the backpressure bound that load shedding exists to
// enforce.
func checkBoundedQueue(o *Outcome) []string {
	var out []string
	for _, lr := range o.runs() {
		for _, a := range lr.res.Admission {
			if a.Stats.MaxQueued > a.QueueCap {
				out = append(out, fmt.Sprintf("%s: pool %s max queued %d exceeds cap %d",
					lr.label, a.Tenant, a.Stats.MaxQueued, a.QueueCap))
			}
		}
	}
	return out
}

// checkAdmissionAccounting: every operation offered to a pool's
// admission controller must be accounted exactly once — admitted, shed,
// or still in flight at drain (which itself must be zero once the
// engine has drained every workload).
func checkAdmissionAccounting(o *Outcome) []string {
	var out []string
	for _, lr := range o.runs() {
		for _, a := range lr.res.Admission {
			if a.Stats.Offered != a.Stats.Admitted+a.Stats.Shed+uint64(a.Stats.InFlight) {
				out = append(out, fmt.Sprintf("%s: pool %s offered %d != admitted %d + shed %d + in-flight %d",
					lr.label, a.Tenant, a.Stats.Offered, a.Stats.Admitted, a.Stats.Shed, a.Stats.InFlight))
			}
			if a.Stats.InFlight != 0 || a.Stats.Queued != 0 {
				out = append(out, fmt.Sprintf("%s: pool %s drained with %d in flight, %d queued",
					lr.label, a.Tenant, a.Stats.InFlight, a.Stats.Queued))
			}
		}
	}
	return out
}

// CheckAll runs the full registry over an outcome.
func CheckAll(o *Outcome) []Violation {
	var out []Violation
	for _, c := range Checkers() {
		for _, d := range c.Check(o) {
			out = append(out, Violation{Checker: c.Name, Detail: d})
		}
	}
	return out
}

// checkDataLoss: bytes the victim's fsync acknowledged must be
// reconstructible from the cluster (live objects plus backfill logs)
// once every fault window has disarmed — the client never acks
// unpersisted data, at any replication level.
func checkDataLoss(o *Outcome) []string {
	var out []string
	for _, lr := range o.runs() {
		label, r := lr.label, lr.res
		if r.AckedBytes > r.StoredBytes {
			out = append(out, fmt.Sprintf("%s: acked %d bytes but cluster stores %d (lost %d)",
				label, r.AckedBytes, r.StoredBytes, r.AckedBytes-r.StoredBytes))
		}
	}
	return out
}

// checkBlameSum: every traced request's blame buckets must sum exactly
// to its span duration, with no negative bucket (the "other" residual
// in particular must never go negative — a negative residual means the
// engine attributed overlapping waits to one span).
func checkBlameSum(o *Outcome) []string {
	var out []string
	for _, lr := range o.runs() {
		label, r := lr.label, lr.res
		bad := 0
		for _, req := range r.Report.PerRequest {
			var sum time.Duration
			var negative string
			for _, b := range req.Buckets {
				sum += b.Dur
				if b.Dur < 0 && negative == "" {
					negative = b.Name
				}
			}
			if sum != req.Dur || negative != "" {
				bad++
				if bad <= 3 {
					out = append(out, fmt.Sprintf("%s: span %d (%s/%s): buckets sum %v vs dur %v, negative=%q other=%v",
						label, req.Span, req.Tenant, req.Op, sum, req.Dur, negative,
						blame.BucketDur(req.Buckets, blame.BucketOther)))
				}
			}
		}
		if bad > 3 {
			out = append(out, fmt.Sprintf("%s: ... and %d more blame-sum breaches", label, bad-3))
		}
	}
	return out
}

// checkSpanLeak: the span ledger must be empty at engine drain — a
// leaked span means an instrumentation point lost an End on some path.
func checkSpanLeak(o *Outcome) []string {
	var out []string
	for _, lr := range o.runs() {
		label, r := lr.label, lr.res
		if n := len(r.Leaked); n > 0 {
			out = append(out, fmt.Sprintf("%s: %d leaked span(s): %s", label, n, r.Leaked[0]))
		}
	}
	return out
}

// checkReplay: the same scenario must replay to byte-identical
// artifacts and an identical summary digest.
func checkReplay(o *Outcome) []string {
	if o.Replay == nil {
		return nil
	}
	var out []string
	if o.Full.ArtifactHash != o.Replay.ArtifactHash {
		out = append(out, fmt.Sprintf("artifact hash diverged: %s vs %s",
			o.Full.ArtifactHash[:12], o.Replay.ArtifactHash[:12]))
	}
	if o.Full.Summary != o.Replay.Summary {
		out = append(out, fmt.Sprintf("summary diverged: %q vs %q", o.Full.Summary, o.Replay.Summary))
	}
	return out
}

// isolationFloorOps is the minimum sample size before the isolation
// bound is meaningful.
const isolationFloorOps = 5

// IsolationBound predicts the worst victim mean latency the
// architecture model tolerates under the scenario, given the solo
// baseline mean: a multiplicative share factor for every party that
// can contend on the shared layers (co-tenant pools; doubled on
// kernel-client paths where the page cache, flusher pool and kernel
// locks are shared — Fig 1's point), plus the scheduled fault time
// (one operation can stall for at most the armed windows) and fixed
// slack for retry backoff granularity.
func IsolationBound(sc Scenario, solo time.Duration) time.Duration {
	mult := time.Duration(2 * (1 + len(sc.Tenants)))
	if !sc.Config.UserLevelClient() {
		mult *= 2
	}
	bound := solo*mult + scheduledFaultTime(sc) + 10*time.Millisecond
	return bound
}

// scheduledFaultTime sums the scenario's fault window lengths,
// including the crash window — a crashed client is down (and its
// recovery cold) for at least that long.
func scheduledFaultTime(sc Scenario) time.Duration {
	entries := sc.ScheduleWindows()
	if sc.Crash != "" {
		entries = append(entries, sc.Crash)
	}
	var total time.Duration
	for _, entry := range entries {
		span := entry[strings.LastIndex(entry, ":")+1:]
		start, end, ok := strings.Cut(span, "-")
		if !ok {
			continue
		}
		s, err1 := time.ParseDuration(start)
		e, err2 := time.ParseDuration(end)
		if err1 == nil && err2 == nil && e > s {
			total += e - s
		}
	}
	return total
}

// checkIsolation: with co-tenants present, the victim's mean latency
// must stay within the model-predicted bound of its solo baseline.
func checkIsolation(o *Outcome) []string {
	if o.Solo == nil {
		return nil
	}
	var out []string
	check := func(kind string, full, fullOps, solo, soloOps int64) {
		if fullOps < isolationFloorOps || soloOps < isolationFloorOps {
			return
		}
		bound := IsolationBound(o.Scenario, time.Duration(solo))
		if time.Duration(full) > bound {
			out = append(out, fmt.Sprintf("%s mean %v exceeds bound %v (solo %v, %d tenants)",
				kind, time.Duration(full), bound, time.Duration(solo), len(o.Scenario.Tenants)))
		}
	}
	check("write", int64(o.Full.WriteMean), int64(o.Full.WriteOps), int64(o.Solo.WriteMean), int64(o.Solo.WriteOps))
	check("read", int64(o.Full.ReadMean), int64(o.Full.ReadOps), int64(o.Solo.ReadMean), int64(o.Solo.ReadOps))
	return out
}

// checkFaultAccounting: without a fault schedule (and without a crash,
// whose recovery retries are legitimate) no fault-handling activity may
// be counted, and the registry's harvested per-tenant fault aggregate
// must equal the direct per-mount sum (each shared client or kernel
// mount counted exactly once).
func checkFaultAccounting(o *Outcome) []string {
	var out []string
	for _, lr := range o.runs() {
		label, r := lr.label, lr.res
		if o.Scenario.Schedule == "" && o.Scenario.Crash == "" && r.Faults != (metrics.FaultCounters{}) {
			out = append(out, fmt.Sprintf("%s: fault counters without a schedule: %+v", label, r.Faults))
		}
		if r.RegistryFaults != r.Faults {
			out = append(out, fmt.Sprintf("%s: registry faults %+v != mount faults %+v",
				label, r.RegistryFaults, r.Faults))
		}
	}
	return out
}

// labeledResult names one run of an outcome.
type labeledResult struct {
	label string
	res   *Result
}

// runs enumerates the outcome's non-nil results in stable order (so
// violation details are deterministic).
func (o *Outcome) runs() []labeledResult {
	var out []labeledResult
	if o.Full != nil {
		out = append(out, labeledResult{"full", o.Full})
	}
	if o.Replay != nil {
		out = append(out, labeledResult{"replay", o.Replay})
	}
	if o.Solo != nil {
		out = append(out, labeledResult{"solo", o.Solo})
	}
	return out
}

package fuzz

import (
	"bytes"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

// The generator must emit only scenarios the runner accepts: parseable
// fault schedules (after @wal resolution), bounded tenant lists, and
// windows inside the measurement window.
func TestGeneratedScenariosAreValid(t *testing.T) {
	for i := 0; i < 200; i++ {
		sc := Generate(7, i)
		if sc.Duration < 60*time.Millisecond || sc.Duration > 160*time.Millisecond {
			t.Fatalf("scenario %d: duration %v out of range", i, sc.Duration)
		}
		if len(sc.Tenants) > 2 {
			t.Fatalf("scenario %d: %d tenants", i, len(sc.Tenants))
		}
		for _, tn := range sc.Tenants {
			if tn.Threads < 1 || tn.Threads > 3 {
				t.Fatalf("scenario %d: tenant threads %d", i, tn.Threads)
			}
		}
		sched := strings.ReplaceAll(sc.Schedule, "@wal", "0")
		plan, err := faults.Parse(sched)
		if err != nil {
			t.Fatalf("scenario %d: schedule %q: %v", i, sc.Schedule, err)
		}
		if err := plan.Validate(1); err != nil {
			t.Fatalf("scenario %d: schedule %q: %v", i, sc.Schedule, err)
		}
		for _, w := range plan.Windows {
			if w.End > sc.Duration {
				t.Fatalf("scenario %d: window end %v past duration %v", i, w.End, sc.Duration)
			}
		}
		if (sc.OfferedLoad > 0) != (sc.AdmitQueue > 0) {
			t.Fatalf("scenario %d: overload dimension half-drawn: ol=%d q=%d", i, sc.OfferedLoad, sc.AdmitQueue)
		}
		if sc.OfferedLoad < 0 || sc.OfferedLoad > 1600 || sc.AdmitQueue < 0 || sc.AdmitQueue > 16 {
			t.Fatalf("scenario %d: overload draw out of range: ol=%d q=%d", i, sc.OfferedLoad, sc.AdmitQueue)
		}
	}
}

// TestGenerateDrawsOverloadDimension confirms the overload dimension
// actually appears in a sweep-sized sample (a dead dimension would
// silently stop exercising the admission invariants).
func TestGenerateDrawsOverloadDimension(t *testing.T) {
	n := 0
	for i := 0; i < 100; i++ {
		if Generate(1, i).OfferedLoad > 0 {
			n++
		}
	}
	if n < 10 {
		t.Fatalf("only %d/100 scenarios drew the overload dimension", n)
	}
}

// TestOverloadScenarioRuns pushes one overloaded, admission-protected
// scenario through the full pipeline and requires the open-loop
// aggressor to have run and every invariant — including the two
// admission invariants — to hold.
func TestOverloadScenarioRuns(t *testing.T) {
	sc := Scenario{
		Seed: 99, Config: core.ConfigD, Replication: 2, Factor: 0.01, CacheFrac: 2,
		Warmup: 10 * time.Millisecond, Duration: 60 * time.Millisecond,
		OfferedLoad: 1600, AdmitQueue: 4,
	}
	o := Evaluate(sc)
	if vs := CheckAll(o); len(vs) > 0 {
		t.Fatalf("overloaded scenario violates invariants: %v", vs)
	}
	if o.Full.OLOffered == 0 {
		t.Fatalf("aggressor offered nothing: %s", o.Full.Summary)
	}
	if len(o.Full.Admission) == 0 {
		t.Fatalf("no admission snapshot despite admitq=4")
	}
}

// TestTraceReplayScenarioRuns pushes one trace-recording scenario
// through the full pipeline: the capture must be non-empty, both
// clean-testbed replays must run, and every invariant — including
// trace-replay-determinism — must hold.
func TestTraceReplayScenarioRuns(t *testing.T) {
	sc := Scenario{
		Seed: 42, Config: core.ConfigD, Replication: 2, Factor: 0.01, CacheFrac: 2,
		Warmup: 10 * time.Millisecond, Duration: 60 * time.Millisecond,
		TraceReplay: true,
	}
	o := Evaluate(sc)
	if vs := CheckAll(o); len(vs) > 0 {
		t.Fatalf("trace-replay scenario violates invariants: %v", vs)
	}
	if o.Full.TraceOps == 0 {
		t.Fatalf("capture empty: %s", o.Full.Summary)
	}
	if len(o.TraceRuns) != 2 {
		t.Fatalf("want 2 trace replays, got %d", len(o.TraceRuns))
	}
	if o.TraceRuns[0].Ops != o.Full.TraceOps {
		t.Fatalf("replay reissued %d of %d captured ops", o.TraceRuns[0].Ops, o.Full.TraceOps)
	}
}

// TestGenerateDrawsTraceReplayDimension confirms the trace dimension
// appears in a sweep-sized sample.
func TestGenerateDrawsTraceReplayDimension(t *testing.T) {
	n := 0
	for i := 0; i < 100; i++ {
		if Generate(1, i).TraceReplay {
			n++
		}
	}
	if n < 10 {
		t.Fatalf("only %d/100 scenarios drew the trace-replay dimension", n)
	}
}

// TestTelemetryScenarioRuns pushes one monitored scenario — with a
// client crash so the error-rate SLO has something to burn on (fault
// windows alone are absorbed by client retries and never error at the
// facade) — through the full pipeline: the monitor must see ops and
// close windows, the ledger must record the outage, and every invariant
// — including telemetry-consistency — must hold.
func TestTelemetryScenarioRuns(t *testing.T) {
	sc := Scenario{
		Seed: 17, Config: core.ConfigD, Replication: 2, Factor: 0.01, CacheFrac: 2,
		Warmup: 10 * time.Millisecond, Duration: 80 * time.Millisecond,
		Crash:     "danaus-crash:victim:20ms-45ms",
		Tenants:   []Tenant{{Workload: "randio", Threads: 1}},
		Telemetry: true,
	}
	o := Evaluate(sc)
	if vs := CheckAll(o); len(vs) > 0 {
		t.Fatalf("telemetry scenario violates invariants: %v", vs)
	}
	if len(o.Full.TelTotals) == 0 || o.Full.TelWindows == 0 {
		t.Fatalf("monitor saw nothing: %s", o.Full.Summary)
	}
	if o.Full.TelAlerts == 0 {
		t.Fatalf("a 25ms client outage burned no error budget: %s", o.Full.Summary)
	}
	if o.Full.TelHash != o.Replay.TelHash {
		t.Fatalf("telemetry artifacts diverged: %s vs %s", o.Full.TelHash, o.Replay.TelHash)
	}
}

// TestGenerateDrawsTelemetryDimension confirms the telemetry dimension
// appears in a sweep-sized sample.
func TestGenerateDrawsTelemetryDimension(t *testing.T) {
	n := 0
	for i := 0; i < 100; i++ {
		if Generate(1, i).Telemetry {
			n++
		}
	}
	if n < 10 {
		t.Fatalf("only %d/100 scenarios drew the telemetry dimension", n)
	}
}

// Generation is a pure function of (baseSeed, index).
func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		a, b := Generate(3, i), Generate(3, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("scenario %d: %v != %v", i, a, b)
		}
	}
}

// WriteSpec and ParseSpec must round-trip every generated scenario
// (the ID is sweep-local and intentionally not serialized).
func TestSpecRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		sc := Generate(11, i)
		var buf bytes.Buffer
		if err := WriteSpec(&buf, sc, "header comment"); err != nil {
			t.Fatalf("scenario %d: write: %v", i, err)
		}
		got, err := ParseSpec(&buf)
		if err != nil {
			t.Fatalf("scenario %d: parse: %v", i, err)
		}
		sc.ID = 0
		if !reflect.DeepEqual(got, sc) {
			t.Fatalf("scenario %d round-trip:\n got %#v\nwant %#v", i, got, sc)
		}
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"duration",                      // no key=value
		"duration=60ms\ntenant=bogus:2", // unknown workload
		"duration=60ms\ntenant=kvput:0", // bad thread count
		"duration=60ms\nnope=1",         // unknown key
		"config=D",                      // missing duration
		"duration=60ms\nconfig=Z",       // unknown configuration
	} {
		if _, err := ParseSpec(strings.NewReader(spec)); err == nil {
			t.Fatalf("spec %q parsed without error", spec)
		}
	}
}

// Regression reproducers from the first fuzz sweeps, shrunk by the
// shrinker. Each pinned a real bug; all must stay green.
var reproSpecs = []struct {
	name string
	bug  string
	spec string
}{
	{
		name: "fp-fsync-durability",
		bug: "zero-data-loss: FSStore.WriteData only moved pages into the " +
			"inner user-level client cache; pagedHandle.Fsync never forwarded " +
			"the sync barrier, so acked WAL bytes were volatile (kern/fsstore.go)",
		spec: `seed=6081629404161346924
config=FP
replication=1
sharedmount=false
factor=0.01
cachefrac=3
warmup=20ms
duration=35ms`,
	},
	{
		name: "shared-mount-fault-double-count",
		bug: "fault-accounting: the observability harvest added a shared " +
			"kernel mount's fault counters once per container, doubling every " +
			"retry and failover for scaleup clones (core/observe.go)",
		spec: `seed=461848893719337019
config=K
replication=2
sharedmount=true
factor=0.03
cachefrac=4
warmup=10ms
duration=30ms
schedule=net-drop:@wal:7:7.2ms-18ms`,
	},
	{
		name: "net-spike-mid-sleep-blame-skew",
		bug: "blame-sum: netsim.Link.Transfer re-read extraLatency after its " +
			"propagation sleep, so a spike window arming mid-sleep inflated " +
			"the reported net wait and drove the span's \"other\" residual " +
			"negative (netsim/netsim.go)",
		spec: `seed=4550845468758065865
config=D
replication=1
sharedmount=false
factor=0.03
cachefrac=4
warmup=20ms
duration=120ms
schedule=net-spike:client:1ms:70.8ms-94.8ms`,
	},
}

func TestShrunkReproducersStayFixed(t *testing.T) {
	for _, rs := range reproSpecs {
		rs := rs
		t.Run(rs.name, func(t *testing.T) {
			sc, err := ParseSpec(strings.NewReader(rs.spec))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if vs := CheckAll(Evaluate(sc)); len(vs) > 0 {
				t.Errorf("regressed: %s", rs.bug)
				for _, v := range vs {
					t.Errorf("  %v", v)
				}
			}
		})
	}
}

// Two sweeps of the same (N, seed) must produce byte-identical output
// and the same aggregate hash — the replay-determinism contract at the
// sweep level.
func TestSweepDeterministic(t *testing.T) {
	run := func() (Summary, string) {
		var buf bytes.Buffer
		sum, err := Sweep(Options{N: 4, Seed: 1, Out: &buf})
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		return sum, buf.String()
	}
	sum1, out1 := run()
	sum2, out2 := run()
	if sum1.Violations != 0 {
		t.Fatalf("seed-1 smoke sweep found violations:\n%s", out1)
	}
	if sum1.AggregateHash != sum2.AggregateHash {
		t.Fatalf("aggregate hash diverged: %s vs %s", sum1.AggregateHash, sum2.AggregateHash)
	}
	if out1 != out2 {
		t.Fatalf("sweep output diverged:\n--- run 1\n%s--- run 2\n%s", out1, out2)
	}
}

// Reproducer specs written by the sweep parse back to the scenario the
// shrinker produced.
func TestSweepWritesParseableRepros(t *testing.T) {
	// A synthetic always-fails oracle is not reachable through Sweep
	// (it uses DefaultOracle), so exercise the writer directly.
	sc := Generate(1, 0)
	var buf bytes.Buffer
	if err := WriteSpec(&buf, sc, "violation: synthetic: detail"); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "# danaus fuzz scenario spec v1\n# violation: synthetic: detail\n") {
		t.Fatalf("spec header malformed:\n%s", buf.String())
	}
	if _, err := ParseSpec(&buf); err != nil {
		t.Fatalf("parse: %v", err)
	}
}

// scheduledFaultTime feeds the isolation bound; it must sum window
// lengths and ignore malformed entries rather than fail.
func TestScheduledFaultTime(t *testing.T) {
	sc := Scenario{Schedule: "osd-crash:@wal:10ms-30ms;mds-stall:5ms-10ms"}
	if got := scheduledFaultTime(sc); got != 25*time.Millisecond {
		t.Fatalf("scheduledFaultTime = %v, want 25ms", got)
	}
	if got := scheduledFaultTime(Scenario{}); got != 0 {
		t.Fatalf("empty schedule: %v, want 0", got)
	}
}

func TestGenerateSeedVariesByIndex(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 100; i++ {
		sc := Generate(1, i)
		if prev, dup := seen[sc.Seed]; dup {
			t.Fatalf("scenarios %d and %d share workload seed %d", prev, i, sc.Seed)
		}
		seen[sc.Seed] = i
		if sc.ID != i {
			t.Fatalf("scenario %d has ID %d", i, sc.ID)
		}
		_ = strconv.Itoa(i)
	}
}

package fuzz

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// Tenant is one co-located workload instance sharing the testbed with
// the victim probe, in its own 2-core pool.
type Tenant struct {
	// Workload names the generator: "fileserver", "webserver", "kvput"
	// (cluster-backed, own container) or "randio" (local ext4, the
	// paper's noisy neighbour).
	Workload string
	// Threads is the worker count of the instance.
	Threads int
}

// Scenario is one randomly composed but fully deterministic testbed
// run: a Table 1 client configuration, replication and cache sizing, a
// scale, a fault schedule, and a workload mix. Every field is
// serializable (WriteSpec/ParseSpec round-trip), so a failing scenario
// is a replayable artifact.
type Scenario struct {
	// ID is the scenario's index in its sweep (0 for hand-built ones).
	ID int
	// Seed drives every workload RNG stream of the run.
	Seed int64
	// Config is the client system composition under test.
	Config core.Configuration
	// Replication is the cluster's object replication level.
	Replication int
	// SharedMount clones the victim container over the victim's client
	// (or kernel mount), the paper's scaleup sharing mode.
	SharedMount bool
	// Factor scales dataset sizes and pool memory (experiments.Scale).
	Factor float64
	// CacheFrac sizes the user-level client cache as PoolMem/CacheFrac
	// (0 = the default half).
	CacheFrac int
	// Warmup precedes the measurement window.
	Warmup time.Duration
	// Duration is the measurement window; fault windows land inside it.
	Duration time.Duration
	// Schedule is a faults.Parse schedule relative to the window start;
	// the token "@wal" resolves to the OSD holding the victim WAL's
	// first object.
	Schedule string
	// Tenants are the co-located workloads (the victim probe always
	// runs; an empty list is a solo scenario).
	Tenants []Tenant
	// OfferedLoad, when positive, drives an open-loop Poisson aggressor
	// against the victim mount at this many requests per second — the
	// overload dimension.
	OfferedLoad int
	// AdmitQueue, when positive, enables the testbed-wide overload
	// policy with this admission queue cap (bounded queues, circuit
	// breakers, brownout).
	AdmitQueue int
	// Crash, when non-empty, is one client-crash fault entry
	// ("danaus-crash:victim:10ms-20ms", "fuse-crash:...", "host-crash:...")
	// installed alongside Schedule — the crash dimension. The victim's
	// probes reopen their handles after the crash, and the
	// crash-consistency checker verifies the durability contract.
	Crash string
	// TraceReplay records the run's VFS op stream (internal/trace) and
	// replays it twice against clean testbeds — the trace-replay-
	// determinism dimension: both replays must produce byte-identical
	// schedules and preserve the recorded per-stream op sequence.
	TraceReplay bool
	// Telemetry attaches the live telemetry monitor
	// (internal/telemetry) to the run — the telemetry-consistency
	// dimension: the monitor's windowed per-(tenant, op) sums must equal
	// the metrics registry's facade counters at drain, and the windows
	// and alert-ledger artifacts must be byte-identical across the
	// replay.
	Telemetry bool
}

// tenantWorkloads are the generator's workload vocabulary.
var tenantWorkloads = []string{"fileserver", "webserver", "kvput", "randio"}

// genConfigs are the configurations the generator draws from, weighted
// toward the paper's two main contenders.
var genConfigs = []core.Configuration{
	core.ConfigD, core.ConfigD, core.ConfigK, core.ConfigK, core.ConfigF, core.ConfigFP,
}

// pctOf returns p percent of d.
func pctOf(d time.Duration, p int) time.Duration {
	return d * time.Duration(p) / 100
}

// Generate derives scenario `index` of the sweep seeded with baseSeed.
// The same (baseSeed, index) pair always produces the same scenario.
func Generate(baseSeed int64, index int) Scenario {
	r := newRNG(uint64(baseSeed)<<17 ^ uint64(index+1)*0x9e3779b97f4a7c15)
	sc := Scenario{
		ID:          index,
		Seed:        int64(r.next() >> 1),
		Config:      pick(r, genConfigs),
		Replication: pick(r, []int{1, 2, 2, 3}),
		SharedMount: r.chance(1, 4),
		Factor:      pick(r, []float64{0.01, 0.02, 0.03}),
		CacheFrac:   pick(r, []int{2, 3, 4}),
		Warmup:      pick(r, []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}),
		Duration:    time.Duration(60+20*r.intn(6)) * time.Millisecond,
	}

	nTenants := pick(r, []int{0, 1, 1, 1, 2, 2})
	for i := 0; i < nTenants; i++ {
		sc.Tenants = append(sc.Tenants, Tenant{
			Workload: pick(r, tenantWorkloads),
			Threads:  1 + r.intn(3),
		})
	}

	// Fault schedule: up to three windows inside the measurement
	// window, each kind at most once so same-kind windows can never
	// overlap on one target (the injector rejects that).
	nWindows := pick(r, []int{0, 0, 1, 1, 2, 2, 3})
	kinds := []int{0, 1, 2, 3, 4, 5}
	var entries []string
	for i := 0; i < nWindows; i++ {
		ki := r.intn(len(kinds))
		kind := kinds[ki]
		kinds = append(kinds[:ki], kinds[ki+1:]...)
		start := pctOf(sc.Duration, 5+r.intn(55))
		end := start + pctOf(sc.Duration, 5+r.intn(30))
		span := fmt.Sprintf("%v-%v", start, end)
		switch kind {
		case 0:
			entries = append(entries, "osd-crash:@wal:"+span)
		case 1:
			entries = append(entries, fmt.Sprintf("osd-degrade:@wal:%dx:%s", pick(r, []int{2, 4, 8}), span))
		case 2:
			target := pick(r, []string{"client", "@wal"})
			extra := pick(r, []time.Duration{200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond})
			entries = append(entries, fmt.Sprintf("net-spike:%s:%v:%s", target, extra, span))
		case 3:
			entries = append(entries, fmt.Sprintf("net-drop:@wal:%d:%s", pick(r, []int{2, 3, 7}), span))
		case 4:
			entries = append(entries, "net-partition:@wal:"+span)
		case 5:
			entries = append(entries, "mds-stall:"+span)
		}
	}
	sc.Schedule = strings.Join(entries, ";")

	// Overload dimension, drawn last so the earlier draws of a given
	// (seed, index) pair keep their historical values: an open-loop
	// aggressor at the victim mount plus the admission policy bounding
	// its queue.
	if r.chance(1, 3) {
		sc.OfferedLoad = pick(r, []int{400, 800, 1600})
		sc.AdmitQueue = pick(r, []int{4, 8, 16})
	}

	// Crash dimension, drawn after overload (again: new draws come last
	// so historical scenarios keep their shape): one client-crash window
	// matched to the architecture under test — the Danaus libservice for
	// D, the FUSE daemon for configurations mounted through one, the
	// whole host for the kernel client.
	if r.chance(1, 4) {
		start := pctOf(sc.Duration, 10+r.intn(40))
		down := pctOf(sc.Duration, 10+r.intn(20))
		span := fmt.Sprintf("%v-%v", start, start+down)
		switch {
		case sc.Config == core.ConfigD:
			sc.Crash = "danaus-crash:victim:" + span
		case sc.Config.UserLevelClient():
			sc.Crash = "fuse-crash:victim:" + span
		default:
			sc.Crash = "host-crash:" + span
		}
	}

	// Trace-replay dimension, again drawn last: record the op stream and
	// make replay determinism an invariant of the scenario.
	sc.TraceReplay = r.chance(1, 3)

	// Telemetry dimension, the newest draw (so every earlier draw of a
	// given (seed, index) pair keeps its historical value): attach the
	// live monitor and make the sum-of-windows == registry-totals
	// identity an invariant of the scenario.
	sc.Telemetry = r.chance(1, 3)
	return sc
}

// ScheduleWindows returns the schedule's entries (empty slice for an
// empty schedule) — the shrinker drops entries without resolving the
// "@wal" placeholder.
func (sc Scenario) ScheduleWindows() []string {
	if sc.Schedule == "" {
		return nil
	}
	return strings.Split(sc.Schedule, ";")
}

// String renders the scenario compactly for sweep output.
func (sc Scenario) String() string {
	tenants := make([]string, len(sc.Tenants))
	for i, t := range sc.Tenants {
		tenants[i] = fmt.Sprintf("%s:%d", t.Workload, t.Threads)
	}
	shared := ""
	if sc.SharedMount {
		shared = " shared"
	}
	overload := ""
	if sc.OfferedLoad > 0 || sc.AdmitQueue > 0 {
		overload = fmt.Sprintf(" ol=%d/q%d", sc.OfferedLoad, sc.AdmitQueue)
	}
	crash := ""
	if sc.Crash != "" {
		crash = " crash=" + sc.Crash
	}
	tr := ""
	if sc.TraceReplay {
		tr = " tracereplay"
	}
	tel := ""
	if sc.Telemetry {
		tel = " telemetry"
	}
	return fmt.Sprintf("cfg=%v r=%d%s cache=1/%d f=%g win=%v+%v tenants=[%s] faults=%d%s%s%s%s",
		sc.Config, sc.Replication, shared, sc.CacheFrac, sc.Factor,
		sc.Warmup, sc.Duration, strings.Join(tenants, " "), len(sc.ScheduleWindows()), overload, crash, tr, tel)
}

// configNames maps Table 1 symbols to configurations for spec parsing.
var configNames = func() map[string]core.Configuration {
	m := map[string]core.Configuration{}
	for _, c := range core.AllConfigurations() {
		m[c.String()] = c
	}
	return m
}()

// ParseConfiguration resolves a Table 1 symbol ("D", "K", "F/K", ...).
func ParseConfiguration(s string) (core.Configuration, error) {
	c, ok := configNames[s]
	if !ok {
		names := make([]string, 0, len(configNames))
		for n := range configNames {
			names = append(names, n)
		}
		sort.Strings(names)
		return 0, fmt.Errorf("fuzz: unknown configuration %q (want one of %s)", s, strings.Join(names, " "))
	}
	return c, nil
}

// WriteSpec serializes the scenario as a replayable spec file. Comment
// lines describing the violation may be passed through as header.
func WriteSpec(w io.Writer, sc Scenario, header ...string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# danaus fuzz scenario spec v1")
	for _, h := range header {
		fmt.Fprintln(bw, "# "+h)
	}
	fmt.Fprintf(bw, "seed=%d\n", sc.Seed)
	fmt.Fprintf(bw, "config=%v\n", sc.Config)
	fmt.Fprintf(bw, "replication=%d\n", sc.Replication)
	fmt.Fprintf(bw, "sharedmount=%t\n", sc.SharedMount)
	fmt.Fprintf(bw, "factor=%s\n", strconv.FormatFloat(sc.Factor, 'g', -1, 64))
	fmt.Fprintf(bw, "cachefrac=%d\n", sc.CacheFrac)
	fmt.Fprintf(bw, "warmup=%v\n", sc.Warmup)
	fmt.Fprintf(bw, "duration=%v\n", sc.Duration)
	if sc.Schedule != "" {
		fmt.Fprintf(bw, "schedule=%s\n", sc.Schedule)
	}
	if sc.OfferedLoad > 0 {
		fmt.Fprintf(bw, "offeredload=%d\n", sc.OfferedLoad)
	}
	if sc.AdmitQueue > 0 {
		fmt.Fprintf(bw, "admitq=%d\n", sc.AdmitQueue)
	}
	if sc.Crash != "" {
		fmt.Fprintf(bw, "crash=%s\n", sc.Crash)
	}
	if sc.TraceReplay {
		fmt.Fprintln(bw, "tracereplay=true")
	}
	if sc.Telemetry {
		fmt.Fprintln(bw, "telemetry=true")
	}
	for _, t := range sc.Tenants {
		fmt.Fprintf(bw, "tenant=%s:%d\n", t.Workload, t.Threads)
	}
	return bw.Flush()
}

// ParseSpec reads a spec file written by WriteSpec.
func ParseSpec(r io.Reader) (Scenario, error) {
	var sc Scenario
	sn := bufio.NewScanner(r)
	line := 0
	for sn.Scan() {
		line++
		text := strings.TrimSpace(sn.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, val, ok := strings.Cut(text, "=")
		if !ok {
			return sc, fmt.Errorf("fuzz: spec line %d: want key=value, got %q", line, text)
		}
		var err error
		switch key {
		case "seed":
			sc.Seed, err = strconv.ParseInt(val, 10, 64)
		case "config":
			sc.Config, err = ParseConfiguration(val)
		case "replication":
			sc.Replication, err = strconv.Atoi(val)
		case "sharedmount":
			sc.SharedMount, err = strconv.ParseBool(val)
		case "factor":
			sc.Factor, err = strconv.ParseFloat(val, 64)
		case "cachefrac":
			sc.CacheFrac, err = strconv.Atoi(val)
		case "warmup":
			sc.Warmup, err = time.ParseDuration(val)
		case "duration":
			sc.Duration, err = time.ParseDuration(val)
		case "schedule":
			sc.Schedule = val
		case "offeredload":
			sc.OfferedLoad, err = strconv.Atoi(val)
		case "admitq":
			sc.AdmitQueue, err = strconv.Atoi(val)
		case "crash":
			sc.Crash = val
		case "tracereplay":
			sc.TraceReplay, err = strconv.ParseBool(val)
		case "telemetry":
			sc.Telemetry, err = strconv.ParseBool(val)
		case "tenant":
			name, threads, ok := strings.Cut(val, ":")
			if !ok {
				return sc, fmt.Errorf("fuzz: spec line %d: want tenant=<workload>:<threads>", line)
			}
			n, terr := strconv.Atoi(threads)
			if terr != nil || n <= 0 {
				return sc, fmt.Errorf("fuzz: spec line %d: bad thread count %q", line, threads)
			}
			valid := false
			for _, w := range tenantWorkloads {
				if w == name {
					valid = true
				}
			}
			if !valid {
				return sc, fmt.Errorf("fuzz: spec line %d: unknown workload %q", line, name)
			}
			sc.Tenants = append(sc.Tenants, Tenant{Workload: name, Threads: n})
		default:
			return sc, fmt.Errorf("fuzz: spec line %d: unknown key %q", line, key)
		}
		if err != nil {
			return sc, fmt.Errorf("fuzz: spec line %d: bad %s: %v", line, key, err)
		}
	}
	if err := sn.Err(); err != nil {
		return sc, err
	}
	if sc.Duration <= 0 {
		return sc, fmt.Errorf("fuzz: spec needs duration > 0")
	}
	if sc.Replication <= 0 {
		sc.Replication = 2
	}
	if sc.Factor <= 0 {
		sc.Factor = 0.02
	}
	if sc.Warmup <= 0 {
		sc.Warmup = 10 * time.Millisecond
	}
	return sc, nil
}

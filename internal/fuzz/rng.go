// Package fuzz is the deterministic scenario fuzzer of the testbed: a
// seeded generator composes random-but-reproducible scenarios — a
// Table 1 client configuration, a workload mix, a scale, and a fault
// schedule — runs each one on a fresh testbed, and checks a registry
// of machine-verifiable invariants against the finished run (zero data
// loss, blame buckets sum to span, span-leak ledger empty, isolation
// bound, replay determinism). A failing scenario is automatically
// shrunk to a minimal reproducer and serialized as a replayable spec
// file (see ParseSpec / WriteSpec).
//
// Everything is a pure function of the seed: the same seed produces
// the same scenarios, the same runs, and byte-identical summary
// output, so a reproducer filed from CI replays exactly on a laptop.
package fuzz

// rng is a self-contained SplitMix64 generator. The fuzzer does not
// use math/rand for scenario generation so that the scenario stream is
// stable across Go releases (math/rand's algorithm is unspecified).
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

// next returns the next 64 random bits (Steele et al.'s SplitMix64).
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// pick returns a uniform element of choices.
func pick[T any](r *rng, choices []T) T {
	return choices[r.intn(len(choices))]
}

// chance returns true with probability num/den.
func (r *rng) chance(num, den int) bool {
	return r.intn(den) < num
}

package fuzz

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Options configures a fuzz sweep.
type Options struct {
	// N is the number of scenarios to run.
	N int
	// Seed seeds the scenario generator.
	Seed int64
	// Out receives the sweep's (deterministic) progress lines; nil
	// discards them.
	Out io.Writer
	// ReproDir, when set, receives one shrunk reproducer spec file per
	// failing scenario (created on demand).
	ReproDir string
	// ShrinkBudget caps oracle evaluations per shrink (<= 0: 60).
	ShrinkBudget int
	// MaxShrinks caps how many failing scenarios are shrunk (the rest
	// are only reported); <= 0 means 5.
	MaxShrinks int
}

// Summary is the outcome of a sweep.
type Summary struct {
	Scenarios  int
	Violations int
	// ByChecker counts violations per invariant name.
	ByChecker map[string]int
	// AggregateHash fingerprints the whole sweep (every scenario's
	// artifacts and summaries); two runs of the same sweep must match.
	AggregateHash string
	// Repros lists written reproducer spec files.
	Repros []string
}

// Sweep generates and evaluates N seeded scenarios, checks every
// invariant on each, shrinks failures to minimal reproducers, and
// returns the aggregate. All output on Out is a pure function of
// (N, Seed): no wall-clock times, no map iteration.
func Sweep(o Options) (Summary, error) {
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 60
	}
	if o.MaxShrinks <= 0 {
		o.MaxShrinks = 5
	}
	sum := Summary{Scenarios: o.N, ByChecker: map[string]int{}}
	agg := sha256.New()
	shrunk := 0

	for i := 0; i < o.N; i++ {
		sc := Generate(o.Seed, i)
		out := Evaluate(sc)
		vs := CheckAll(out)
		fmt.Fprintf(agg, "%04d %s %s\n", i, out.Full.ArtifactHash, out.Full.Summary)

		if len(vs) == 0 {
			fmt.Fprintf(o.Out, "fuzz %04d %s ok %s\n", i, sc, out.Full.Summary)
			continue
		}
		sum.Violations += len(vs)
		for _, v := range vs {
			sum.ByChecker[v.Checker]++
			fmt.Fprintf(o.Out, "fuzz %04d %s VIOLATION %s\n", i, sc, v)
			fmt.Fprintf(agg, "%04d VIOLATION %s\n", i, v)
		}

		if shrunk >= o.MaxShrinks {
			continue
		}
		shrunk++
		min := Shrink(sc, vs[0].Checker, DefaultOracle, o.ShrinkBudget)
		fmt.Fprintf(o.Out, "fuzz %04d shrunk to: %s\n", i, min)
		if o.ReproDir != "" {
			if err := os.MkdirAll(o.ReproDir, 0o755); err != nil {
				return sum, err
			}
			path := filepath.Join(o.ReproDir, fmt.Sprintf("repro-%04d.spec", i))
			f, err := os.Create(path)
			if err != nil {
				return sum, err
			}
			header := []string{fmt.Sprintf("violation: %s", vs[0])}
			werr := WriteSpec(f, min, header...)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return sum, werr
			}
			sum.Repros = append(sum.Repros, path)
			fmt.Fprintf(o.Out, "fuzz %04d reproducer: %s\n", i, path)
		}
	}

	sum.AggregateHash = hex.EncodeToString(agg.Sum(nil))
	names := make([]string, 0, len(sum.ByChecker))
	for n := range sum.ByChecker {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(o.Out, "fuzz sweep: %d scenario(s), %d violation(s), sweep-hash=%s\n",
		sum.Scenarios, sum.Violations, sum.AggregateHash[:16])
	for _, n := range names {
		fmt.Fprintf(o.Out, "  %-20s %d\n", n, sum.ByChecker[n])
	}
	return sum, nil
}

// RunSpec evaluates one scenario loaded from a spec file and reports
// its violations (the reproducer replay path).
func RunSpec(out io.Writer, sc Scenario) []Violation {
	if out == nil {
		out = io.Discard
	}
	res := Evaluate(sc)
	vs := CheckAll(res)
	fmt.Fprintf(out, "spec %s\n", sc)
	fmt.Fprintf(out, "  full:   %s\n", res.Full.Summary)
	fmt.Fprintf(out, "  replay: %s\n", res.Replay.Summary)
	if res.Solo != nil {
		fmt.Fprintf(out, "  solo:   %s\n", res.Solo.Summary)
	}
	if len(vs) == 0 {
		fmt.Fprintln(out, "  ok: all invariants hold")
	}
	for _, v := range vs {
		fmt.Fprintf(out, "  VIOLATION %s\n", v)
	}
	return vs
}

package fuzz

import (
	"testing"
	"time"

	"repro/internal/core"
)

// BenchmarkFuzzScenarioRun anchors the cost of one fuzz pipeline run
// (testbed build, victim probe, invariant evidence collection) for the
// CI bench-guard: a sweep is N of these, so a hot-path regression here
// multiplies directly into fuzz-smoke wall time.
func BenchmarkFuzzScenarioRun(b *testing.B) {
	sc := Scenario{
		Seed:        1,
		Config:      core.ConfigK,
		Replication: 2,
		Factor:      0.01,
		CacheFrac:   2,
		Warmup:      10 * time.Millisecond,
		Duration:    30 * time.Millisecond,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunScenario(sc, false)
	}
}
